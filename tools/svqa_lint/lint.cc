#include "svqa_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace svqa_lint {
namespace {

/// Every suppressible rule id. "bad-suppression" is deliberately not
/// here: a broken escape hatch must not be able to hide itself.
const std::set<std::string>& RuleIds() {
  static const std::set<std::string> kIds = {
      "layer-dag",      "virtual-time",    "unchecked-result",
      "nodiscard-type", "lock-annotation", "frozen-mutation",
      "durable-io",     "raw-logging"};
  return kIds;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------------
// Token stream
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;  // 1-based
  bool ident = false;
};

/// Tokenizes masked code into identifiers and punctuation. "::" and
/// "->" are kept as single tokens so qualifier/member-access checks can
/// look at exactly one preceding token.
std::vector<Token> Tokenize(const std::vector<std::string>& code) {
  std::vector<Token> out;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& line = code[li];
    std::size_t i = 0;
    while (i < line.size()) {
      char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (IsIdentStart(c)) {
        std::size_t j = i + 1;
        while (j < line.size() && IsIdentChar(line[j])) ++j;
        out.push_back(
            {line.substr(i, j - i), static_cast<int>(li + 1), true});
        i = j;
        continue;
      }
      if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        out.push_back({"::", static_cast<int>(li + 1), false});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        out.push_back({"->", static_cast<int>(li + 1), false});
        i += 2;
        continue;
      }
      out.push_back({std::string(1, c), static_cast<int>(li + 1), false});
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Suppressions {
  std::set<std::string> file_rules;
  // line -> rules allowed on that line and the next.
  std::map<int, std::set<std::string>> line_rules;
  std::vector<Diagnostic> errors;  // bad-suppression findings

  bool Active(const std::string& rule, int line) const {
    if (file_rules.count(rule) != 0) return true;
    for (int l : {line, line - 1}) {
      auto it = line_rules.find(l);
      if (it != line_rules.end() && it->second.count(rule) != 0) return true;
    }
    return false;
  }
};

/// Parses `svqa-lint: allow(...)` / `allow-file(...)` markers out of the
/// per-line comment text. Unknown rule names become bad-suppression
/// diagnostics; an escape that names nothing real is itself a defect.
Suppressions ParseSuppressions(const std::string& file,
                               const std::vector<std::string>& comments) {
  Suppressions sup;
  const std::string kTag = "svqa-lint:";
  for (std::size_t li = 0; li < comments.size(); ++li) {
    const std::string& text = comments[li];
    std::size_t pos = text.find(kTag);
    while (pos != std::string::npos) {
      std::size_t p = pos + kTag.size();
      while (p < text.size() &&
             std::isspace(static_cast<unsigned char>(text[p])) != 0)
        ++p;
      bool file_scope = false;
      if (text.compare(p, 10, "allow-file") == 0) {
        file_scope = true;
        p += 10;
      } else if (text.compare(p, 5, "allow") == 0) {
        p += 5;
      } else {
        sup.errors.push_back({file, static_cast<int>(li + 1),
                              "bad-suppression",
                              "malformed svqa-lint marker (expected "
                              "'allow(rule)' or 'allow-file(rule)')"});
        break;
      }
      std::size_t open = text.find('(', p);
      std::size_t close =
          open == std::string::npos ? std::string::npos : text.find(')', open);
      if (open == std::string::npos || close == std::string::npos ||
          Trim(text.substr(p, open - p)) != "") {
        sup.errors.push_back({file, static_cast<int>(li + 1),
                              "bad-suppression",
                              "malformed svqa-lint marker (missing rule "
                              "list parentheses)"});
        break;
      }
      std::stringstream rules(text.substr(open + 1, close - open - 1));
      std::string rule;
      bool any = false;
      while (std::getline(rules, rule, ',')) {
        rule = Trim(rule);
        if (rule.empty()) continue;
        any = true;
        if (RuleIds().count(rule) == 0) {
          sup.errors.push_back(
              {file, static_cast<int>(li + 1), "bad-suppression",
               "unknown rule '" + rule + "' in suppression"});
          continue;
        }
        if (file_scope) {
          sup.file_rules.insert(rule);
        } else {
          sup.line_rules[static_cast<int>(li + 1)].insert(rule);
        }
      }
      if (!any) {
        sup.errors.push_back({file, static_cast<int>(li + 1),
                              "bad-suppression",
                              "empty rule list in suppression"});
      }
      pos = text.find(kTag, close == std::string::npos ? p : close);
    }
  }
  return sup;
}

// ---------------------------------------------------------------------------
// Rule: layer-dag
// ---------------------------------------------------------------------------

/// Extracts `#include "..."` targets from the *raw* source (the masker
/// blanks string literals, which is exactly where include paths live).
std::vector<std::pair<int, std::string>> QuotedIncludes(
    const std::string& content) {
  std::vector<std::pair<int, std::string>> out;
  std::istringstream in(content);
  std::string line;
  int ln = 0;
  while (std::getline(in, line)) {
    ++ln;
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos || line[i] != '#') continue;
    ++i;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])) != 0)
      ++i;
    if (line.compare(i, 7, "include") != 0) continue;
    std::size_t open = line.find('"', i + 7);
    if (open == std::string::npos) continue;
    std::size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    out.emplace_back(ln, line.substr(open + 1, close - open - 1));
  }
  return out;
}

void CheckLayerDag(const std::string& file, const std::string& layer,
                   const std::string& content, const LayerSpec& spec,
                   std::vector<Diagnostic>* diags) {
  if (!spec.HasLayer(layer)) {
    diags->push_back({file, 1, "layer-dag",
                      "file lives in layer '" + layer +
                          "' which is not declared in the layer spec"});
    return;
  }
  for (const auto& [line, inc] : QuotedIncludes(content)) {
    std::size_t slash = inc.find('/');
    if (slash == std::string::npos) continue;
    const std::string target = inc.substr(0, slash);
    if (!spec.HasLayer(target)) continue;  // not a layered path
    if (target == layer || spec.Allows(layer, target)) continue;
    diags->push_back(
        {file, line, "layer-dag",
         "layer '" + layer + "' may not include \"" + inc + "\" (layer '" +
             target + "' is not in its allowed dependency set)"});
  }
}

// ---------------------------------------------------------------------------
// Rule: virtual-time
// ---------------------------------------------------------------------------

/// Identifiers banned wherever they appear: these only name wall-clock
/// or entropy sources.
const std::set<std::string>& BannedAnywhere() {
  static const std::set<std::string> kBanned = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "random_device"};
  return kBanned;
}

/// Identifiers banned as *calls* (global or std-qualified). Member
/// calls (`x.time(...)`) and other-namespace qualifications are fine.
const std::set<std::string>& BannedCalls() {
  static const std::set<std::string> kBanned = {
      "time",   "rand",     "srand",         "getenv",       "setenv",
      "mktime", "localtime", "gmtime",       "clock_gettime", "gettimeofday"};
  return kBanned;
}

void CheckVirtualTime(const std::string& file, const std::vector<Token>& toks,
                      std::vector<Diagnostic>* diags) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!t.ident) continue;
    if (BannedAnywhere().count(t.text) != 0) {
      diags->push_back(
          {file, t.line, "virtual-time",
           "'" + t.text +
               "' is wall-clock/entropy state; src/ must run on SimClock "
               "virtual time (see DESIGN.md, \"Static invariants\")"});
      continue;
    }
    if (BannedCalls().count(t.text) == 0) continue;
    // Must syntactically be a call.
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    // Member access is some other API that happens to share the name.
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;
    // Qualified: only std:: (and the global ::) forms are the C library.
    if (i > 0 && toks[i - 1].text == "::") {
      if (i >= 2 && toks[i - 2].ident && toks[i - 2].text != "std") continue;
    }
    diags->push_back(
        {file, t.line, "virtual-time",
         "call to '" + t.text +
             "' reads ambient wall-clock/environment state; src/ must be "
             "replayable on SimClock virtual time"});
  }
}

// ---------------------------------------------------------------------------
// Rule: frozen-mutation
// ---------------------------------------------------------------------------

/// Layers whose request paths must treat the graph as immutable: they
/// execute against published snapshots, so a mutating Graph call there
/// is a write into state a concurrent reader may be scanning.
const std::set<std::string>& FrozenLayers() {
  static const std::set<std::string> kLayers = {"exec", "serve"};
  return kLayers;
}

/// The mutating (non-const) Graph API — everything else on Graph is a
/// const read.
const std::set<std::string>& GraphMutators() {
  static const std::set<std::string> kMutators = {"AddVertex", "AddEdge"};
  return kMutators;
}

void CheckFrozenMutation(const std::string& file, const std::string& layer,
                         const std::vector<Token>& toks,
                         std::vector<Diagnostic>* diags) {
  if (FrozenLayers().count(layer) == 0) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!t.ident || GraphMutators().count(t.text) == 0) continue;
    // Must syntactically be a call...
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    // ...through member access (`g.AddEdge`, `g->AddVertex`) or a
    // qualified name (`Graph::AddEdge`). A free function that happens to
    // share the name is some other API and stays out of scope.
    if (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->" &&
                   toks[i - 1].text != "::")) {
      continue;
    }
    diags->push_back(
        {file, t.line, "frozen-mutation",
         "call to mutating Graph API '" + t.text + "' in layer '" + layer +
             "'; this layer executes against immutable snapshots — build "
             "graphs on the ingest side and publish via Freeze(), or "
             "suppress with a rationale if this is genuinely pre-publish "
             "construction"});
  }
}

// ---------------------------------------------------------------------------
// Rule: durable-io
// ---------------------------------------------------------------------------

/// Stream types whose mere mention marks a raw-file write path.
/// `ifstream` is deliberately legal — reads have no durability contract
/// to violate; `fstream` is banned because it can write.
const std::set<std::string>& BannedIoTypes() {
  static const std::set<std::string> kBanned = {"ofstream", "fstream",
                                                "wofstream", "wfstream"};
  return kBanned;
}

/// C-library file-opening calls banned as calls (global or
/// std-qualified), mirroring the virtual-time call heuristic.
const std::set<std::string>& BannedIoCalls() {
  static const std::set<std::string> kBanned = {"fopen", "freopen",
                                                "tmpfile"};
  return kBanned;
}

void CheckDurableIo(const std::string& file, const std::string& layer,
                    const std::vector<Token>& toks,
                    std::vector<Diagnostic>* diags) {
  // src/storage *is* the raw-I/O boundary: StorageEnv backends own the
  // fopen/fsync/rename dance everything else must inherit.
  if (layer == "storage") return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!t.ident) continue;
    // `#include <fstream>` names the header, not a write path — and a
    // file may include it for the (legal) ifstream reader.
    if (i >= 2 && toks[i - 1].text == "<" && toks[i - 2].text == "include")
      continue;
    if (BannedIoTypes().count(t.text) != 0) {
      diags->push_back(
          {file, t.line, "durable-io",
           "'" + t.text +
               "' writes files without the StorageEnv durability contract "
               "(atomic rename, sync, fault injection); route writes "
               "through storage::StorageEnv (see DESIGN.md, \"Durability "
               "& crash recovery\")"});
      continue;
    }
    if (BannedIoCalls().count(t.text) == 0) continue;
    // Must syntactically be a call.
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    // Member access is some other API that shares the name.
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;
    // Qualified: only std:: (and the global ::) forms are the C library.
    if (i > 0 && toks[i - 1].text == "::") {
      if (i >= 2 && toks[i - 2].ident && toks[i - 2].text != "std") continue;
    }
    diags->push_back(
        {file, t.line, "durable-io",
         "call to '" + t.text +
             "' opens raw file handles outside src/storage; durable "
             "writes must route through storage::StorageEnv"});
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-logging
// ---------------------------------------------------------------------------

/// Console stream objects whose mention marks a raw logging path. cout
/// is banned alongside cerr: src/ is a library — stdout belongs to the
/// tools, benches, and examples that link it.
const std::set<std::string>& BannedLogStreams() {
  static const std::set<std::string> kBanned = {"cerr",  "cout",  "clog",
                                                "wcerr", "wcout", "wclog"};
  return kBanned;
}

/// C stdio writers banned as calls (global or std-qualified), mirroring
/// the virtual-time call heuristic. snprintf/sprintf stay legal — they
/// format into caller-owned buffers and emit nothing.
const std::set<std::string>& BannedLogCalls() {
  static const std::set<std::string> kBanned = {
      "printf", "fprintf", "vprintf", "vfprintf",
      "puts",   "fputs",   "putchar", "fputc",     "perror"};
  return kBanned;
}

void CheckRawLogging(const std::string& file, const std::vector<Token>& toks,
                     std::vector<Diagnostic>* diags) {
  // src/util/logging.* IS the sanctioned sink: the SVQA_LOG backend owns
  // the library's one serialized stderr write.
  if (file.rfind("src/util/logging.", 0) == 0) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!t.ident) continue;
    if (BannedLogStreams().count(t.text) != 0) {
      // Member access (`x.cerr`) is some other API; a "::"-qualified
      // name counts only as std:: (or the global ::).
      if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
        continue;
      if (i > 0 && toks[i - 1].text == "::" && i >= 2 && toks[i - 2].ident &&
          toks[i - 2].text != "std") {
        continue;
      }
      diags->push_back(
          {file, t.line, "raw-logging",
           "'" + t.text +
               "' writes to the console outside util::logging; route "
               "messages through SVQA_LOG(level) so they honor the "
               "process log level and stay line-atomic (see DESIGN.md, "
               "\"Static invariants\")"});
      continue;
    }
    if (BannedLogCalls().count(t.text) == 0) continue;
    // Must syntactically be a call.
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    // Member access is some other API that shares the name.
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
      continue;
    // Qualified: only std:: (and the global ::) forms are the C library.
    if (i > 0 && toks[i - 1].text == "::") {
      if (i >= 2 && toks[i - 2].ident && toks[i - 2].text != "std") continue;
    }
    diags->push_back(
        {file, t.line, "raw-logging",
         "call to '" + t.text +
             "' bypasses util::logging; route messages through "
             "SVQA_LOG(level) so they honor the process log level and "
             "stay line-atomic"});
  }
}

// ---------------------------------------------------------------------------
// Rule: unchecked-result
// ---------------------------------------------------------------------------

/// Flags ValueOrDie() with no visible `ok()` check (or outcome-
/// propagating macro) on the same or the preceding few lines. A lexical
/// heuristic, deliberately: it catches the "grab the value, skip the
/// check" pattern, and the suppression comment is the documented way to
/// assert infallibility.
constexpr int kOkLookbackLines = 8;

void CheckUncheckedResult(const std::string& file,
                          const std::vector<Token>& toks,
                          std::vector<Diagnostic>* diags) {
  // Pre-collect lines containing an ok() call or a checking macro.
  std::set<int> check_lines;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!t.ident) continue;
    if ((t.text == "ok" && i + 1 < toks.size() && toks[i + 1].text == "(") ||
        t.text == "SVQA_ASSIGN_OR_RETURN" || t.text == "SVQA_RETURN_NOT_OK") {
      check_lines.insert(t.line);
    }
  }
  for (const Token& t : toks) {
    if (!t.ident || t.text != "ValueOrDie") continue;
    bool checked = false;
    for (int l = t.line; l >= t.line - kOkLookbackLines && !checked; --l) {
      checked = check_lines.count(l) != 0;
    }
    if (checked) continue;
    diags->push_back(
        {file, t.line, "unchecked-result",
         "ValueOrDie() without a nearby ok() check; verify the Result "
         "first, or document infallibility with "
         "// svqa-lint: allow(unchecked-result)"});
  }
}

// ---------------------------------------------------------------------------
// Rules: nodiscard-type + lock-annotation (shared scope walk)
// ---------------------------------------------------------------------------

/// Type names that must be declared SVQA_NODISCARD: the outcome
/// carriers of the error model.
const std::set<std::string>& OutcomeTypes() {
  static const std::set<std::string> kTypes = {"Status", "Result", "StatusOr"};
  return kTypes;
}

struct Scope {
  bool is_class = false;
  std::string name;
  bool has_guarded = false;
  std::vector<int> mutex_member_lines;
};

void CheckTypesAndLocks(const std::string& file, const std::vector<Token>& toks,
                        std::vector<Diagnostic>* diags) {
  std::vector<Scope> stack;
  // Pending class/struct head seen but its '{' not yet reached.
  bool pending = false;
  bool pending_is_class = false;
  std::string pending_name;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.ident && (t.text == "class" || t.text == "struct")) {
      // `enum class` declares no record scope; `friend class X;` and
      // template parameters (`template <class T>`) are not definitions
      // either — those die at the ';'/'>' before any '{'.
      if (i > 0 && toks[i - 1].ident && toks[i - 1].text == "enum") continue;
      if (i > 0 && toks[i - 1].ident && toks[i - 1].text == "friend") continue;
      // Gather head identifiers: attribute macros (SVQA_NODISCARD) may
      // precede the name; the name is the last identifier before a
      // non-identifier token.
      bool has_nodiscard = false;
      std::string name;
      std::size_t j = i + 1;
      while (j < toks.size() && toks[j].ident) {
        if (toks[j].text == "SVQA_NODISCARD") {
          has_nodiscard = true;
        } else {
          name = toks[j].text;
        }
        ++j;
      }
      if (name.empty()) continue;  // anonymous struct or `template <class T>`
      pending = true;
      pending_is_class = true;
      pending_name = name;

      if (OutcomeTypes().count(name) != 0 && !has_nodiscard) {
        // Definition (a '{' before the next ';') or forward declaration?
        bool definition = false;
        for (std::size_t k = j; k < toks.size(); ++k) {
          if (toks[k].text == "{") {
            definition = true;
            break;
          }
          if (toks[k].text == ";") break;
        }
        if (definition) {
          diags->push_back(
              {file, t.line, "nodiscard-type",
               "outcome type '" + name +
                   "' must be declared SVQA_NODISCARD (util/annotations.h) "
                   "so discarded results are compile-time diagnostics"});
        }
      }
      continue;
    }
    if (t.text == ";" && pending) {
      pending = false;  // forward declaration
      continue;
    }
    if (t.text == "{") {
      Scope s;
      if (pending) {
        s.is_class = pending_is_class;
        s.name = pending_name;
        pending = false;
      }
      stack.push_back(s);
      continue;
    }
    if (t.text == "}") {
      if (!stack.empty()) {
        Scope s = stack.back();
        stack.pop_back();
        if (s.is_class && !s.has_guarded && !s.mutex_member_lines.empty()) {
          for (int line : s.mutex_member_lines) {
            diags->push_back(
                {file, line, "lock-annotation",
                 "class '" + s.name +
                     "' declares a Mutex member but no SVQA_GUARDED_BY "
                     "field annotation; state the lock's protection set"});
          }
        }
      }
      continue;
    }
    if (!t.ident || stack.empty()) continue;

    if (t.text == "SVQA_GUARDED_BY" || t.text == "SVQA_PT_GUARDED_BY") {
      // Credit the innermost enclosing class scope.
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->is_class) {
          it->has_guarded = true;
          break;
        }
      }
      continue;
    }
    // A `Mutex name_;` member of the innermost scope (which must be a
    // class body). Pointer/reference members and locals in member
    // functions do not match: the next tokens must be exactly
    // `<identifier> ;` or `<identifier> SVQA_GUARDED_BY`-style
    // annotation, and the innermost scope must be the class itself.
    if (t.text == "Mutex" && stack.back().is_class && i + 2 < toks.size() &&
        toks[i + 1].ident && toks[i + 1].text != "SVQA_GUARDED_BY" &&
        (toks[i + 2].text == ";" || toks[i + 2].ident)) {
      stack.back().mutex_member_lines.push_back(t.line);
    }
  }
}

// ---------------------------------------------------------------------------
// File orchestration
// ---------------------------------------------------------------------------

bool IsSourceFile(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx";
}

}  // namespace

std::string FormatDiagnostic(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": error: [" + d.rule + "] " +
         d.message;
}

bool LayerSpec::Parse(const std::string& text, LayerSpec* out,
                      std::string* error) {
  out->allowed_.clear();
  out->order_.clear();
  std::istringstream in(text);
  std::string line;
  int ln = 0;
  std::vector<std::pair<std::string, std::vector<std::string>>> raw;
  while (std::getline(in, line)) {
    ++ln;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      *error = "layers spec line " + std::to_string(ln) +
               ": expected '<layer>: [deps...]'";
      return false;
    }
    std::string layer = Trim(line.substr(0, colon));
    if (layer.empty()) {
      *error = "layers spec line " + std::to_string(ln) + ": empty layer name";
      return false;
    }
    if (out->allowed_.count(layer) != 0) {
      *error = "layers spec line " + std::to_string(ln) + ": layer '" + layer +
               "' declared twice";
      return false;
    }
    std::vector<std::string> deps;
    std::stringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.push_back(dep);
    out->allowed_[layer] = {};
    out->order_.push_back(layer);
    raw.emplace_back(layer, std::move(deps));
  }
  // Deps must name declared layers; a typo must not silently allow or
  // forbid anything.
  for (const auto& [layer, deps] : raw) {
    for (const std::string& d : deps) {
      if (out->allowed_.count(d) == 0) {
        *error = "layer '" + layer + "' depends on undeclared layer '" + d +
                 "'";
        return false;
      }
      if (d == layer) {
        *error = "layer '" + layer + "' lists itself as a dependency";
        return false;
      }
      out->allowed_[layer].insert(d);
    }
  }
  // Transitive closure (allowed includes are inherited through deps).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [layer, deps] : out->allowed_) {
      std::set<std::string> next = deps;
      for (const std::string& d : deps) {
        const std::set<std::string>& dd = out->allowed_.at(d);
        next.insert(dd.begin(), dd.end());
      }
      if (next.size() != deps.size()) {
        deps = std::move(next);
        changed = true;
      }
    }
  }
  // A cyclic spec makes the DAG vacuous; reject it outright.
  for (const auto& [layer, deps] : out->allowed_) {
    if (deps.count(layer) != 0) {
      *error = "layer spec contains a dependency cycle through '" + layer +
               "'";
      return false;
    }
  }
  return true;
}

bool LayerSpec::Allows(const std::string& from, const std::string& to) const {
  auto it = allowed_.find(from);
  return it != allowed_.end() && it->second.count(to) != 0;
}

MaskedSource MaskSource(const std::string& content) {
  MaskedSource out;
  std::string code_line;
  std::string comment_line;

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the ')delim' terminator

  auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comments.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < content.size() && content[i + 1] == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && i + 1 < content.size() &&
                   content[i + 1] == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && i + 1 < content.size() &&
                   content[i + 1] == '"' &&
                   (i == 0 || !IsIdentChar(content[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t open = content.find('(', i + 2);
          if (open != std::string::npos) {
            raw_delim = ")" + content.substr(i + 2, open - i - 2) + "\"";
            state = State::kRawString;
            code_line += ' ';
            i = open;  // skip past the '('
          } else {
            code_line += c;
          }
        } else if (c == '"') {
          state = State::kString;
          code_line += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += ' ';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < content.size() && content[i + 1] == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < content.size()) {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < content.size()) {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  // Only a final unterminated line is pending; a trailing '\n' already
  // flushed it.
  if (!content.empty() && content.back() != '\n') flush_line();
  return out;
}

std::vector<Diagnostic> LintFile(const std::string& rel_path,
                                 const std::string& content,
                                 const LayerSpec& spec) {
  // Only src/ carries the invariants; tests, bench and examples are
  // free to use wall clocks, to die on results, and to include from
  // anywhere — they are leaves of the dependency graph by construction.
  if (rel_path.rfind("src/", 0) != 0) return {};
  std::size_t slash = rel_path.find('/', 4);
  if (slash == std::string::npos) return {};  // stray file directly in src/
  const std::string layer = rel_path.substr(4, slash - 4);

  MaskedSource masked = MaskSource(content);
  Suppressions sup = ParseSuppressions(rel_path, masked.comments);
  std::vector<Token> toks = Tokenize(masked.code);

  std::vector<Diagnostic> found;
  CheckLayerDag(rel_path, layer, content, spec, &found);
  CheckVirtualTime(rel_path, toks, &found);
  CheckDurableIo(rel_path, layer, toks, &found);
  CheckRawLogging(rel_path, toks, &found);
  CheckFrozenMutation(rel_path, layer, toks, &found);
  CheckUncheckedResult(rel_path, toks, &found);
  CheckTypesAndLocks(rel_path, toks, &found);

  std::vector<Diagnostic> out;
  for (Diagnostic& d : found) {
    if (!sup.Active(d.rule, d.line)) out.push_back(std::move(d));
  }
  for (Diagnostic& d : sup.errors) out.push_back(std::move(d));
  std::sort(out.begin(), out.end(), [](const Diagnostic& a,
                                       const Diagnostic& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  namespace fs = std::filesystem;
  fs::path root = ".";
  std::string layers_path;
  std::vector<std::string> paths;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      out << "usage: svqa_lint [--root <dir>] [--layers <spec>] [path ...]\n"
             "Checks SVQA project invariants (layer DAG, virtual-time\n"
             "purity, mandatory error checking, lock-annotation coverage)\n"
             "over src/. Exit: 0 clean, 1 violations, 2 usage/spec error.\n";
      return 0;
    }
    if (a == "--root" || a == "--layers") {
      if (i + 1 >= args.size()) {
        err << "svqa_lint: " << a << " requires an argument\n";
        return 2;
      }
      if (a == "--root") {
        root = args[++i];
      } else {
        layers_path = args[++i];
      }
      continue;
    }
    if (a.rfind("--", 0) == 0) {
      err << "svqa_lint: unknown flag '" << a << "'\n";
      return 2;
    }
    paths.push_back(a);
  }
  if (paths.empty()) paths.push_back("src");
  if (layers_path.empty()) layers_path = (root / "tools/layers.txt").string();

  std::ifstream spec_in(layers_path);
  if (!spec_in) {
    err << "svqa_lint: cannot read layer spec '" << layers_path << "'\n";
    return 2;
  }
  std::stringstream spec_text;
  spec_text << spec_in.rdbuf();
  LayerSpec spec;
  std::string spec_error;
  if (!LayerSpec::Parse(spec_text.str(), &spec, &spec_error)) {
    err << "svqa_lint: " << spec_error << "\n";
    return 2;
  }

  const fs::path abs_root = fs::absolute(root).lexically_normal();
  std::vector<fs::path> files;
  std::error_code ec;
  for (const std::string& p : paths) {
    fs::path full = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (fs::is_directory(full, ec)) {
      for (fs::recursive_directory_iterator it(full, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
    } else {
      err << "svqa_lint: no such file or directory: '" << full.string()
          << "'\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Diagnostic> all;
  for (const fs::path& f : files) {
    std::ifstream in(f);
    if (!in) {
      err << "svqa_lint: cannot read '" << f.string() << "'\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string rel = fs::absolute(f)
                                .lexically_normal()
                                .lexically_relative(abs_root)
                                .generic_string();
    std::vector<Diagnostic> diags = LintFile(rel, buf.str(), spec);
    all.insert(all.end(), diags.begin(), diags.end());
  }

  for (const Diagnostic& d : all) out << FormatDiagnostic(d) << "\n";
  if (all.empty()) {
    out << "svqa_lint: clean (" << files.size() << " files)\n";
    return 0;
  }
  out << "svqa_lint: " << all.size() << " violation(s)\n";
  return 1;
}

}  // namespace svqa_lint
