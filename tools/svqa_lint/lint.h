#ifndef SVQA_TOOLS_SVQA_LINT_LINT_H_
#define SVQA_TOOLS_SVQA_LINT_LINT_H_

/// \file
/// svqa_lint — project-invariant static analyzer for the SVQA tree.
///
/// The compiler enforces types and the thread-safety annotations; this
/// tool enforces the *project* invariants that neither can see. It is a
/// lightweight lexer (comments and literals are masked out, then rules
/// run over identifier tokens), deliberately not a libclang frontend:
/// the rules below need only token- and scope-level structure, and a
/// dependency-free binary can gate every build, everywhere.
///
/// Rule families (ids are what `allow(...)` suppressions name):
///   layer-dag        — `#include` edges between src/<layer>/ directories
///                      must respect the declarative spec in
///                      tools/layers.txt.
///   virtual-time     — wall clocks and ambient nondeterminism
///                      (std::chrono::{system,steady,high_resolution}_clock,
///                      time()/rand()/srand(), std::random_device,
///                      getenv(), ...) are banned in src/; replay of the
///                      SimClock execution model must stay bit-for-bit.
///   unchecked-result — `ValueOrDie()` / unguarded value access on
///                      Result in src/ without a nearby `ok()` check.
///   nodiscard-type   — outcome-carrying types (Status, Result,
///                      StatusOr) must be declared SVQA_NODISCARD.
///   lock-annotation  — a class declaring a `util::Mutex` member must
///                      carry at least one SVQA_GUARDED_BY field
///                      annotation.
///   frozen-mutation  — calls to the mutating Graph API (AddVertex,
///                      AddEdge) are banned under src/exec/ and
///                      src/serve/: those layers execute against
///                      published immutable snapshots (FrozenGraph), so
///                      graph construction belongs to the ingest side.
///                      Genuinely pre-publish construction may suppress
///                      with a rationale comment.
///
/// Suppressions:
///   // svqa-lint: allow(rule[, rule...])       same line or next line
///   // svqa-lint: allow-file(rule[, rule...])  whole file
/// Unknown rule names in a suppression are themselves a diagnostic
/// (`bad-suppression`) so stale escapes cannot rot silently.

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace svqa_lint {

/// One finding. `file` is the path as given to the linter, `line` is
/// 1-based, `rule` is one of the rule ids above (or "bad-suppression").
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Renders "file:line: error: [rule] message".
std::string FormatDiagnostic(const Diagnostic& d);

/// The declarative layer DAG parsed from tools/layers.txt.
///
/// Spec grammar (one layer per line, '#' comments):
///   <layer>: [dep [dep ...]]
/// A layer may include its own headers and those of any listed dep,
/// transitively closed at load time. Parse() rejects unknown dep names
/// and cyclic specs so a bad spec is a hard configuration error
/// (exit 2), never a silently-vacuous gate.
class LayerSpec {
 public:
  /// Parses spec text; on failure returns false and sets *error.
  static bool Parse(const std::string& text, LayerSpec* out,
                    std::string* error);

  bool HasLayer(const std::string& layer) const {
    return allowed_.count(layer) != 0;
  }
  /// True when `from` may #include headers of `to`.
  bool Allows(const std::string& from, const std::string& to) const;

  /// Layer names in spec order (for diagnostics).
  const std::vector<std::string>& layers() const { return order_; }

 private:
  std::map<std::string, std::set<std::string>> allowed_;
  std::vector<std::string> order_;
};

/// A source file with comments and string/char literals blanked out
/// (line structure preserved) plus the comment text gathered per line —
/// rules scan `code`, the suppression parser scans `comments`.
struct MaskedSource {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

/// Masks `content`. Handles //, /*...*/, "...", '...' and raw string
/// literals; newlines inside multi-line constructs are preserved so
/// diagnostics keep real line numbers.
MaskedSource MaskSource(const std::string& content);

/// Lints one file. `rel_path` must be repo-root-relative with '/'
/// separators (e.g. "src/exec/executor.cc"); rules only fire for files
/// under src/ — tests, bench and examples are free by design.
std::vector<Diagnostic> LintFile(const std::string& rel_path,
                                 const std::string& content,
                                 const LayerSpec& spec);

/// Command-line entry point (what main() calls; tests call it too).
///
///   svqa_lint [--root <dir>] [--layers <spec>] [path ...]
///
/// Paths are files or directories (walked recursively for C++ sources),
/// interpreted relative to --root (default: cwd); the default path set
/// is {src}. Exit codes: 0 clean, 1 violations found, 2 usage/spec/IO
/// error.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace svqa_lint

#endif  // SVQA_TOOLS_SVQA_LINT_LINT_H_
