#include <iostream>
#include <string>
#include <vector>

#include "svqa_lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return svqa_lint::RunCli(args, std::cout, std::cerr);
}
