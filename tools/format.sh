#!/usr/bin/env bash
# Formatting gate: clang-format over every tracked C++ source, driven
# by the repo-root .clang-format.
#
# Usage: tools/format.sh          # rewrite files in place
#        tools/format.sh --check  # diff-free or die (what CI runs)
#
# tests/lint_fixtures/ is excluded: those files carry *seeded*
# violations whose line numbers the svqa_lint self-tests assert
# exactly — a formatter pass shifting them would silently invalidate
# the fixtures.
#
# Exit codes: 0 clean/formatted, 1 --check found drift, 2 missing tool.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format.sh: clang-format not found" >&2
  echo "format.sh: install it (e.g. apt-get install clang-format)" >&2
  exit 2
fi

mapfile -t files < <(git ls-files \
  '*.cc' '*.cpp' '*.cxx' '*.h' '*.hh' '*.hpp' \
  ':!tests/lint_fixtures')

if [ "${#files[@]}" -eq 0 ]; then
  echo "format.sh: no tracked C++ sources" >&2
  exit 0
fi

if [ "${1:-}" = "--check" ]; then
  clang-format --dry-run -Werror "${files[@]}"
  echo "format.sh: clean (${#files[@]} files)"
else
  clang-format -i "${files[@]}"
  echo "format.sh: formatted ${#files[@]} files"
fi
