#include <iostream>
#include <string>
#include <vector>

#include "svqa_trace/svqa_trace.h"

int main(int argc, char** argv) {
  return svqa_trace::RunCli(std::vector<std::string>(argv + 1, argv + argc),
                            std::cout, std::cerr);
}
