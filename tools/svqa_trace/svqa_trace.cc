#include "svqa_trace/svqa_trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_map>

namespace svqa_trace {
namespace {

// Matches obs::FormatMicros byte for byte (reimplemented: stdlib-only).
std::string FormatMicros(double v) {
  if (v == 0) v = 0;  // never render "-0.000"
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Chrome-trace JSON parsing. A deliberately small recursive-descent
// parser: we only need `ph == "X"` complete events with name / tid /
// ts / dur and the optional args.id / args.parent the Tracer emits.

struct Cursor {
  const std::string& s;
  std::size_t i = 0;
};

void SkipWs(Cursor& c) {
  while (c.i < c.s.size() &&
         (c.s[c.i] == ' ' || c.s[c.i] == '\t' || c.s[c.i] == '\n' ||
          c.s[c.i] == '\r')) {
    ++c.i;
  }
}

bool Fail(std::string* error, const std::string& msg) {
  *error = msg;
  return false;
}

bool ParseStringToken(Cursor& c, std::string* out, std::string* error) {
  SkipWs(c);
  if (c.i >= c.s.size() || c.s[c.i] != '"') {
    return Fail(error, "expected string");
  }
  ++c.i;
  out->clear();
  while (c.i < c.s.size()) {
    char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (ch != '\\') {
      out->push_back(ch);
      continue;
    }
    if (c.i >= c.s.size()) break;
    char esc = c.s[c.i++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (c.i + 4 > c.s.size()) return Fail(error, "truncated \\u escape");
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          char h = c.s[c.i++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return Fail(error, "bad \\u escape");
        }
        // Span names are ASCII; anything beyond basic latin degrades to '?'.
        out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
        break;
      }
      default:
        return Fail(error, "bad escape in string");
    }
  }
  return Fail(error, "unterminated string");
}

bool ParseNumberToken(Cursor& c, double* out, std::string* error) {
  SkipWs(c);
  const char* begin = c.s.c_str() + c.i;
  char* end = nullptr;
  *out = std::strtod(begin, &end);
  if (end == begin) return Fail(error, "expected number");
  c.i += static_cast<std::size_t>(end - begin);
  return true;
}

bool SkipValue(Cursor& c, std::string* error);

bool SkipMembers(Cursor& c, char close, std::string* error) {
  // Past the opening brace/bracket; consumes members through `close`.
  SkipWs(c);
  if (c.i < c.s.size() && c.s[c.i] == close) {
    ++c.i;
    return true;
  }
  for (;;) {
    if (close == '}') {
      std::string key;
      if (!ParseStringToken(c, &key, error)) return false;
      SkipWs(c);
      if (c.i >= c.s.size() || c.s[c.i] != ':') {
        return Fail(error, "expected ':'");
      }
      ++c.i;
    }
    if (!SkipValue(c, error)) return false;
    SkipWs(c);
    if (c.i >= c.s.size()) return Fail(error, "unterminated container");
    if (c.s[c.i] == ',') {
      ++c.i;
      continue;
    }
    if (c.s[c.i] == close) {
      ++c.i;
      return true;
    }
    return Fail(error, "expected ',' or container close");
  }
}

bool SkipValue(Cursor& c, std::string* error) {
  SkipWs(c);
  if (c.i >= c.s.size()) return Fail(error, "unexpected end of input");
  char ch = c.s[c.i];
  if (ch == '"') {
    std::string scratch;
    return ParseStringToken(c, &scratch, error);
  }
  if (ch == '{') {
    ++c.i;
    return SkipMembers(c, '}', error);
  }
  if (ch == '[') {
    ++c.i;
    return SkipMembers(c, ']', error);
  }
  if (c.s.compare(c.i, 4, "true") == 0) { c.i += 4; return true; }
  if (c.s.compare(c.i, 5, "false") == 0) { c.i += 5; return true; }
  if (c.s.compare(c.i, 4, "null") == 0) { c.i += 4; return true; }
  double scratch = 0;
  return ParseNumberToken(c, &scratch, error);
}

bool ParseArgsObject(Cursor& c, TraceEvent* ev, std::string* error) {
  SkipWs(c);
  if (c.i >= c.s.size() || c.s[c.i] != '{') {
    return Fail(error, "expected args object");
  }
  ++c.i;
  SkipWs(c);
  if (c.i < c.s.size() && c.s[c.i] == '}') {
    ++c.i;
    return true;
  }
  for (;;) {
    std::string key;
    if (!ParseStringToken(c, &key, error)) return false;
    SkipWs(c);
    if (c.i >= c.s.size() || c.s[c.i] != ':') return Fail(error, "expected ':'");
    ++c.i;
    if (key == "id" || key == "parent") {
      double v = 0;
      if (!ParseNumberToken(c, &v, error)) return false;
      if (key == "id") ev->id = static_cast<uint32_t>(v);
      else ev->parent = static_cast<uint32_t>(v);
    } else if (!SkipValue(c, error)) {
      return false;
    }
    SkipWs(c);
    if (c.i >= c.s.size()) return Fail(error, "unterminated args object");
    if (c.s[c.i] == ',') { ++c.i; continue; }
    if (c.s[c.i] == '}') { ++c.i; return true; }
    return Fail(error, "expected ',' or '}' in args object");
  }
}

bool ParseEventObject(Cursor& c, TraceEvent* ev, bool* is_complete,
                      std::string* error) {
  SkipWs(c);
  if (c.i >= c.s.size() || c.s[c.i] != '{') {
    return Fail(error, "expected event object");
  }
  ++c.i;
  *is_complete = true;  // an event without "ph" still counts
  SkipWs(c);
  if (c.i < c.s.size() && c.s[c.i] == '}') {
    ++c.i;
    return true;
  }
  for (;;) {
    std::string key;
    if (!ParseStringToken(c, &key, error)) return false;
    SkipWs(c);
    if (c.i >= c.s.size() || c.s[c.i] != ':') return Fail(error, "expected ':'");
    ++c.i;
    if (key == "name") {
      if (!ParseStringToken(c, &ev->name, error)) return false;
    } else if (key == "ph") {
      std::string ph;
      if (!ParseStringToken(c, &ph, error)) return false;
      *is_complete = ph == "X";
    } else if (key == "tid") {
      double v = 0;
      if (!ParseNumberToken(c, &v, error)) return false;
      ev->tid = static_cast<uint64_t>(v);
    } else if (key == "ts") {
      if (!ParseNumberToken(c, &ev->ts, error)) return false;
    } else if (key == "dur") {
      if (!ParseNumberToken(c, &ev->dur, error)) return false;
    } else if (key == "args") {
      if (!ParseArgsObject(c, ev, error)) return false;
    } else if (!SkipValue(c, error)) {
      return false;
    }
    SkipWs(c);
    if (c.i >= c.s.size()) return Fail(error, "unterminated event object");
    if (c.s[c.i] == ',') { ++c.i; continue; }
    if (c.s[c.i] == '}') { ++c.i; return true; }
    return Fail(error, "expected ',' or '}' in event object");
  }
}

bool ParseChromeTrace(const std::string& content,
                      std::vector<TraceEvent>* out, std::string* error) {
  Cursor c{content};
  SkipWs(c);
  if (c.i >= c.s.size() || c.s[c.i] != '[') {
    return Fail(error, "expected '[' at start of Chrome trace");
  }
  ++c.i;
  SkipWs(c);
  if (c.i < c.s.size() && c.s[c.i] == ']') {
    ++c.i;
    return true;
  }
  for (;;) {
    TraceEvent ev;
    bool complete = false;
    if (!ParseEventObject(c, &ev, &complete, error)) return false;
    if (complete) out->push_back(std::move(ev));
    SkipWs(c);
    if (c.i >= c.s.size()) return Fail(error, "unterminated event array");
    if (c.s[c.i] == ',') { ++c.i; continue; }
    if (c.s[c.i] == ']') { ++c.i; return true; }
    return Fail(error, "expected ',' or ']' in event array");
  }
}

// ---------------------------------------------------------------------------
// Flight-recorder dump parsing. Record lines look like
//   `  q7 exec.attempt start=0.000 dur=912.500`
// under `flight recorder:` / `lane N (...)` headers.

bool ParseFlightLine(const std::string& line, TraceEvent* ev) {
  std::size_t p = 3;  // past "  q"
  std::size_t digits = 0;
  uint64_t tid = 0;
  while (p < line.size() && line[p] >= '0' && line[p] <= '9') {
    tid = tid * 10 + static_cast<uint64_t>(line[p] - '0');
    ++p;
    ++digits;
  }
  if (digits == 0 || p >= line.size() || line[p] != ' ') return false;
  ++p;
  std::size_t name_end = line.find(" start=", p);
  if (name_end == std::string::npos || name_end == p) return false;
  ev->tid = tid;
  ev->name = line.substr(p, name_end - p);
  const char* cur = line.c_str() + name_end + 7;  // past " start="
  char* end = nullptr;
  ev->ts = std::strtod(cur, &end);
  if (end == cur) return false;
  if (std::string(end).rfind(" dur=", 0) != 0) return false;
  cur = end + 5;
  ev->dur = std::strtod(cur, &end);
  return end != cur;
}

bool ParseFlightDump(const std::string& content,
                     std::vector<TraceEvent>* out, std::string* error) {
  std::istringstream in(content);
  std::string line;
  bool saw_header = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.rfind("flight recorder:", 0) == 0) {
      saw_header = true;
      continue;
    }
    if (line.rfind("lane ", 0) == 0) continue;
    if (line.rfind("  q", 0) == 0) {
      TraceEvent ev;
      if (!ParseFlightLine(line, &ev)) {
        return Fail(error, "malformed record at line " +
                               std::to_string(line_no) + ": " + line);
      }
      out->push_back(std::move(ev));
      continue;
    }
    if (!saw_header) break;  // not a flight dump at all — clearer error below
    return Fail(error, "unrecognized line " + std::to_string(line_no) +
                           " (expected a flight-recorder dump): " + line);
  }
  if (!saw_header) {
    return Fail(error,
                "not a trace artifact (expected Chrome-trace JSON or a "
                "'flight recorder:' dump header)");
  }
  return true;
}

// ---------------------------------------------------------------------------
// Parent normalization.

// Ring lanes append on span *close*, so children precede parents and
// records from many queries interleave; re-derive nesting per tid from
// interval containment. Sort (start asc, dur desc, input order) puts
// every enclosing span before its children; a stack of still-open
// intervals then yields each span's innermost enclosure.
void ReconstructParents(std::vector<TraceEvent*>& group) {
  std::stable_sort(group.begin(), group.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->ts != b->ts) return a->ts < b->ts;
                     return a->dur > b->dur;
                   });
  constexpr double kEps = 1e-9;
  struct Open {
    double end;
    uint32_t id;
  };
  std::vector<Open> stack;
  uint32_t next_id = 1;
  for (TraceEvent* ev : group) {
    while (!stack.empty() && stack.back().end <= ev->ts + kEps) {
      stack.pop_back();
    }
    ev->id = next_id++;
    ev->parent = stack.empty() ? 0 : stack.back().id;
    stack.push_back({ev->ts + ev->dur, ev->id});
  }
}

void NormalizeParents(std::vector<TraceEvent>* events) {
  std::map<uint64_t, std::vector<TraceEvent*>> by_tid;
  for (TraceEvent& ev : *events) by_tid[ev.tid].push_back(&ev);
  for (auto& [tid, group] : by_tid) {
    (void)tid;
    bool ids_ok = true;
    std::set<uint32_t> seen;
    for (const TraceEvent* ev : group) {
      if (ev->id == 0 || !seen.insert(ev->id).second) {
        ids_ok = false;
        break;
      }
    }
    if (!ids_ok) ReconstructParents(group);
  }
}

// ---------------------------------------------------------------------------
// Analysis over normalized events.

struct Node {
  const TraceEvent* ev = nullptr;
  double child_micros = 0;
  std::vector<std::size_t> children;  // indices into the tid group
};

// (dur desc, ts asc, id asc) — the obs::TraceAnalysis dominance order.
bool Dominates(const TraceEvent& a, const TraceEvent& b) {
  if (a.dur != b.dur) return a.dur > b.dur;
  if (a.ts != b.ts) return a.ts < b.ts;
  return a.id < b.id;
}

// Builds the span forest of one tid: nodes in input order, children
// resolved through (id -> index); a parent id that is absent (evicted
// from the ring) degrades that span to a root.
std::vector<Node> BuildForest(const std::vector<const TraceEvent*>& group,
                              std::vector<std::size_t>* roots) {
  std::unordered_map<uint32_t, std::size_t> index;
  index.reserve(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) index[group[i]->id] = i;
  std::vector<Node> nodes(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) nodes[i].ev = group[i];
  for (std::size_t i = 0; i < group.size(); ++i) {
    const TraceEvent* ev = group[i];
    auto it = ev->parent != 0 ? index.find(ev->parent) : index.end();
    if (it != index.end() && it->second != i) {
      nodes[it->second].children.push_back(i);
      nodes[it->second].child_micros += ev->dur;
    } else {
      roots->push_back(i);
    }
  }
  return nodes;
}

std::map<uint64_t, std::vector<const TraceEvent*>> GroupByTid(
    const std::vector<TraceEvent>& events) {
  std::map<uint64_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& ev : events) by_tid[ev.tid].push_back(&ev);
  return by_tid;
}

// ---------------------------------------------------------------------------
// CLI helpers.

void PrintUsage(std::ostream& err) {
  err << "usage: svqa_trace <command> [args]\n"
      << "  aggregate FILE [--require NAME ...]   per-span-name totals\n"
      << "  top FILE [--k N]                      slowest queries\n"
      << "  critical FILE [--tid N]               one query's critical path\n"
      << "  diff A B [--tolerance F]              per-name drift gate\n";
}

bool LoadTrace(const std::string& path, std::vector<TraceEvent>* events,
               std::ostream& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "svqa_trace: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  if (!ParseTrace(buf.str(), events, &error)) {
    err << "svqa_trace: " << path << ": " << error << "\n";
    return false;
  }
  return true;
}

void PrintAggregate(const std::vector<TraceEvent>& events,
                    const std::vector<NameStats>& stats, std::ostream& out) {
  out << "trace: " << events.size() << " span(s) across "
      << GroupByTid(events).size() << " thread(s)\n";
  if (stats.empty()) return;
  char line[160];
  std::snprintf(line, sizeof(line), "%-24s %6s %14s %14s %14s\n", "name",
                "count", "total", "self", "max");
  out << line;
  for (const NameStats& s : stats) {
    std::snprintf(line, sizeof(line), "%-24s %6llu %14s %14s %14s\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.count),
                  FormatMicros(s.total_micros).c_str(),
                  FormatMicros(s.self_micros).c_str(),
                  FormatMicros(s.max_micros).c_str());
    out << line;
  }
}

int CmdAggregate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  if (args.empty()) {
    PrintUsage(err);
    return 2;
  }
  std::vector<std::string> required;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--require" && i + 1 < args.size()) {
      required.push_back(args[++i]);
    } else {
      err << "svqa_trace: unexpected argument '" << args[i] << "'\n";
      return 2;
    }
  }
  std::vector<TraceEvent> events;
  if (!LoadTrace(args[0], &events, err)) return 2;
  std::vector<NameStats> stats = Aggregate(events);
  PrintAggregate(events, stats, out);
  int missing = 0;
  for (const std::string& name : required) {
    bool found = false;
    for (const NameStats& s : stats) {
      if (s.name == name) {
        found = true;
        break;
      }
    }
    if (!found) {
      err << "svqa_trace: missing required span name: " << name << "\n";
      ++missing;
    }
  }
  return missing > 0 ? 1 : 0;
}

int CmdTop(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty()) {
    PrintUsage(err);
    return 2;
  }
  std::size_t k = 10;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--k" && i + 1 < args.size()) {
      char* end = nullptr;
      k = static_cast<std::size_t>(std::strtoull(args[++i].c_str(), &end, 10));
      if (end == args[i].c_str() || *end != '\0' || k == 0) {
        err << "svqa_trace: --k wants a positive integer\n";
        return 2;
      }
    } else {
      err << "svqa_trace: unexpected argument '" << args[i] << "'\n";
      return 2;
    }
  }
  std::vector<TraceEvent> events;
  if (!LoadTrace(args[0], &events, err)) return 2;
  std::vector<ThreadStats> threads = ByThread(events);
  const std::size_t shown = std::min(k, threads.size());
  out << "top " << shown << " of " << threads.size()
      << " thread(s) by root micros:\n";
  for (std::size_t i = 0; i < shown; ++i) {
    const ThreadStats& t = threads[i];
    out << "q" << t.tid << " total=" << FormatMicros(t.root_micros)
        << " roots=" << t.roots << " spans=" << t.spans << "\n";
  }
  return 0;
}

int CmdCritical(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.empty()) {
    PrintUsage(err);
    return 2;
  }
  bool have_tid = false;
  uint64_t tid = 0;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--tid" && i + 1 < args.size()) {
      char* end = nullptr;
      tid = std::strtoull(args[++i].c_str(), &end, 10);
      if (end == args[i].c_str() || *end != '\0') {
        err << "svqa_trace: --tid wants an integer\n";
        return 2;
      }
      have_tid = true;
    } else {
      err << "svqa_trace: unexpected argument '" << args[i] << "'\n";
      return 2;
    }
  }
  std::vector<TraceEvent> events;
  if (!LoadTrace(args[0], &events, err)) return 2;
  if (!have_tid) {
    std::vector<ThreadStats> threads = ByThread(events);
    if (threads.empty()) {
      err << "svqa_trace: trace is empty\n";
      return 1;
    }
    tid = threads[0].tid;
  }
  std::vector<PathStep> path = CriticalPath(events, tid);
  if (path.empty()) {
    err << "svqa_trace: no spans for tid " << tid << "\n";
    return 1;
  }
  out << "critical path tid=" << tid << " (" << path.size() << " steps, "
      << FormatMicros(path.front().dur) << " micros):\n";
  for (const PathStep& step : path) {
    out << std::string(static_cast<std::size_t>(step.depth + 1) * 2, ' ')
        << step.name << " start=" << FormatMicros(step.ts)
        << " dur=" << FormatMicros(step.dur)
        << " self=" << FormatMicros(step.self) << "\n";
  }
  return 0;
}

int CmdDiff(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.size() < 2) {
    PrintUsage(err);
    return 2;
  }
  double tolerance = 0.05;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--tolerance" && i + 1 < args.size()) {
      char* end = nullptr;
      tolerance = std::strtod(args[++i].c_str(), &end);
      if (end == args[i].c_str() || *end != '\0' || !(tolerance >= 0) ||
          !std::isfinite(tolerance)) {
        err << "svqa_trace: --tolerance wants a non-negative number\n";
        return 2;
      }
    } else {
      err << "svqa_trace: unexpected argument '" << args[i] << "'\n";
      return 2;
    }
  }
  std::vector<TraceEvent> a_events, b_events;
  if (!LoadTrace(args[0], &a_events, err)) return 2;
  if (!LoadTrace(args[1], &b_events, err)) return 2;
  std::map<std::string, NameStats> a_stats, b_stats;
  for (NameStats& s : Aggregate(a_events)) a_stats[s.name] = std::move(s);
  for (NameStats& s : Aggregate(b_events)) b_stats[s.name] = std::move(s);

  std::set<std::string> names;
  for (const auto& [name, s] : a_stats) { (void)s; names.insert(name); }
  for (const auto& [name, s] : b_stats) { (void)s; names.insert(name); }

  char tol[32];
  std::snprintf(tol, sizeof(tol), "%.3f", tolerance);
  out << "diff " << args[0] << " " << args[1] << " tolerance=" << tol << "\n";
  int findings = 0;
  // Relative drift against the first file (the baseline); the max(1)
  // floor keeps near-zero spans from tripping the gate on noise.
  const auto drift = [](double base, double fresh) {
    return std::fabs(fresh - base) / std::max(std::fabs(base), 1.0);
  };
  for (const std::string& name : names) {
    auto a_it = a_stats.find(name);
    auto b_it = b_stats.find(name);
    if (a_it == a_stats.end()) {
      out << "only in " << args[1] << ": " << name << "\n";
      ++findings;
      continue;
    }
    if (b_it == b_stats.end()) {
      out << "only in " << args[0] << ": " << name << "\n";
      ++findings;
      continue;
    }
    const NameStats& a = a_it->second;
    const NameStats& b = b_it->second;
    const struct {
      const char* what;
      double base;
      double fresh;
    } checks[] = {{"total", a.total_micros, b.total_micros},
                  {"self", a.self_micros, b.self_micros}};
    for (const auto& check : checks) {
      const double rel = drift(check.base, check.fresh);
      if (rel > tolerance) {
        char relbuf[32];
        std::snprintf(relbuf, sizeof(relbuf), "%.3f", rel);
        out << "drift " << name << " " << check.what << " "
            << FormatMicros(check.base) << " -> " << FormatMicros(check.fresh)
            << " (rel " << relbuf << " > " << tol << ")\n";
        ++findings;
      }
    }
  }
  if (findings == 0) {
    out << "diff: clean (" << names.size() << " span name(s) compared)\n";
    return 0;
  }
  out << "diff: " << findings << " finding(s)\n";
  return 1;
}

}  // namespace

bool ParseTrace(const std::string& content, std::vector<TraceEvent>* out,
                std::string* error) {
  out->clear();
  std::size_t i = 0;
  while (i < content.size() &&
         (content[i] == ' ' || content[i] == '\t' || content[i] == '\n' ||
          content[i] == '\r')) {
    ++i;
  }
  const bool json = i < content.size() && content[i] == '[';
  if (json) {
    if (!ParseChromeTrace(content, out, error)) return false;
  } else {
    if (!ParseFlightDump(content, out, error)) return false;
  }
  NormalizeParents(out);
  return true;
}

std::vector<NameStats> Aggregate(const std::vector<TraceEvent>& events) {
  std::map<std::string, NameStats> by_name;
  for (const auto& [tid, group] : GroupByTid(events)) {
    (void)tid;
    std::vector<std::size_t> roots;
    std::vector<Node> nodes = BuildForest(group, &roots);
    for (const Node& node : nodes) {
      NameStats& s = by_name[node.ev->name];
      s.name = node.ev->name;
      ++s.count;
      s.total_micros += node.ev->dur;
      s.self_micros += node.ev->dur - node.child_micros;
      s.max_micros = std::max(s.max_micros, node.ev->dur);
    }
  }
  std::vector<NameStats> out;
  out.reserve(by_name.size());
  for (auto& [name, s] : by_name) {
    (void)name;
    out.push_back(std::move(s));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const NameStats& a, const NameStats& b) {
                     if (a.total_micros != b.total_micros) {
                       return a.total_micros > b.total_micros;
                     }
                     return a.name < b.name;
                   });
  return out;
}

std::vector<ThreadStats> ByThread(const std::vector<TraceEvent>& events) {
  std::vector<ThreadStats> out;
  for (const auto& [tid, group] : GroupByTid(events)) {
    std::vector<std::size_t> roots;
    std::vector<Node> nodes = BuildForest(group, &roots);
    ThreadStats t;
    t.tid = tid;
    t.spans = group.size();
    t.roots = roots.size();
    for (std::size_t r : roots) t.root_micros += nodes[r].ev->dur;
    out.push_back(t);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ThreadStats& a, const ThreadStats& b) {
                     if (a.root_micros != b.root_micros) {
                       return a.root_micros > b.root_micros;
                     }
                     return a.tid < b.tid;
                   });
  return out;
}

std::vector<PathStep> CriticalPath(const std::vector<TraceEvent>& events,
                                   uint64_t tid) {
  std::vector<PathStep> path;
  auto by_tid = GroupByTid(events);
  auto it = by_tid.find(tid);
  if (it == by_tid.end()) return path;
  std::vector<std::size_t> roots;
  std::vector<Node> nodes = BuildForest(it->second, &roots);
  if (roots.empty()) return path;
  std::size_t cur = roots[0];
  for (std::size_t r : roots) {
    if (Dominates(*nodes[r].ev, *nodes[cur].ev)) cur = r;
  }
  int depth = 0;
  for (;;) {
    const Node& node = nodes[cur];
    PathStep step;
    step.name = node.ev->name;
    step.depth = depth;
    step.ts = node.ev->ts;
    step.dur = node.ev->dur;
    step.self = node.ev->dur - node.child_micros;
    path.push_back(std::move(step));
    if (node.children.empty()) break;
    std::size_t next = node.children[0];
    for (std::size_t child : node.children) {
      if (Dominates(*nodes[child].ev, *nodes[next].ev)) next = child;
    }
    cur = next;
    ++depth;
  }
  return path;
}

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty()) {
    PrintUsage(err);
    return 2;
  }
  const std::string& cmd = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (cmd == "aggregate") return CmdAggregate(rest, out, err);
  if (cmd == "top") return CmdTop(rest, out, err);
  if (cmd == "critical") return CmdCritical(rest, out, err);
  if (cmd == "diff") return CmdDiff(rest, out, err);
  err << "svqa_trace: unknown command '" << cmd << "'\n";
  PrintUsage(err);
  return 2;
}

}  // namespace svqa_trace
