#ifndef SVQA_TOOLS_SVQA_TRACE_SVQA_TRACE_H_
#define SVQA_TOOLS_SVQA_TRACE_SVQA_TRACE_H_

/// \file
/// svqa_trace — offline trace analytics over the observability
/// artifacts the stack emits: Chrome-trace JSON (`Tracer::ToJson`,
/// bench_serve --trace_out) and flight-recorder text dumps
/// (`FlightRecorder::Dump`, server statsz artifacts).
///
/// Subcommands:
///
///   aggregate FILE [--require NAME ...]
///     Per-span-name count / total / self / max virtual micros across
///     every thread (query) in the file, ordered (total desc, name
///     asc). `--require` asserts a span name appears at least once —
///     the CI gate for "the trace artifact actually contains an
///     execution", catching an instrumentation regression that would
///     otherwise just produce an empty-but-valid artifact.
///
///   top FILE [--k N]
///     The N slowest queries by summed root-span micros (default 10),
///     ordered (total desc, tid asc).
///
///   critical FILE [--tid N]
///     Root-to-leaf critical path of one query (default: the slowest),
///     matching obs::TraceAnalysis — longest root, then the longest
///     child at every level, ties (dur desc, start asc, id asc).
///
///   diff A B [--tolerance F]
///     Compares per-name total/self micros between two traces;
///     relative drift beyond the tolerance (default 0.05) or a span
///     name present in only one file is a failure. The CI use: catch a
///     virtual-cost regression between two bench_serve artifacts.
///
/// Exit codes follow svqa_lint / bench_check: 0 clean, 1 findings
/// (missing required span, empty critical path, diff drift), 2 usage /
/// parse / IO errors. Stdlib-only on purpose, same as the other tools:
/// the gate must build anywhere the project builds, so the analyzer is
/// deliberately reimplemented here rather than linking svqa_obs.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace svqa_trace {

/// One span, either read from Chrome-trace `args` ids or reconstructed
/// from interval containment. (tid, id) is unique; parent is an id
/// within the same tid, 0 = root.
struct TraceEvent {
  uint64_t tid = 0;
  std::string name;
  double ts = 0;
  double dur = 0;
  uint32_t id = 0;
  uint32_t parent = 0;
};

/// Parses either supported format (auto-detected: leading '[' means
/// Chrome-trace JSON, anything else is a flight-recorder dump).
/// Chrome events carry explicit ids; flight records do not, so their
/// parentage is reconstructed per tid by interval containment (sort by
/// start asc / dur desc, nest under the enclosing open span). Returns
/// false and sets *error on malformed input.
bool ParseTrace(const std::string& content, std::vector<TraceEvent>* out,
                std::string* error);

/// Per-span-name aggregate, (total desc, name asc). `self` is duration
/// minus direct children, so recursion never double-counts.
struct NameStats {
  std::string name;
  uint64_t count = 0;
  double total_micros = 0;
  double self_micros = 0;
  double max_micros = 0;
};
std::vector<NameStats> Aggregate(const std::vector<TraceEvent>& events);

/// Per-query totals for `top`, (total desc, tid asc).
struct ThreadStats {
  uint64_t tid = 0;
  uint64_t spans = 0;
  uint64_t roots = 0;
  double root_micros = 0;  // summed root durations
};
std::vector<ThreadStats> ByThread(const std::vector<TraceEvent>& events);

/// One step of a query's critical path.
struct PathStep {
  std::string name;
  int depth = 0;
  double ts = 0;
  double dur = 0;
  double self = 0;
};
std::vector<PathStep> CriticalPath(const std::vector<TraceEvent>& events,
                                   uint64_t tid);

/// Command-line entry point (what main() calls; tests call it too).
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace svqa_trace

#endif  // SVQA_TOOLS_SVQA_TRACE_SVQA_TRACE_H_
