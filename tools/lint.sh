#!/usr/bin/env bash
# Lint gate for the concurrency static-analysis layer.
#
# Runs the `lint` CMake preset: a clang build with
#   -Wthread-safety -Werror=thread-safety  (annotation enforcement)
#   -Werror                                (general warning cleanliness)
#   clang-tidy over every TU              (.clang-tidy check set)
#
# Usage: tools/lint.sh [--fix]
#   --fix  re-run clang-tidy with -fix over the compile database after
#          the build (applies trivial auto-fixes in place).
#
# Exits non-zero on the first diagnostic, so CI can gate on it directly.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

missing=()
command -v clang++ >/dev/null 2>&1 || missing+=("clang++")
command -v clang-tidy >/dev/null 2>&1 || missing+=("clang-tidy")
if [ "${#missing[@]}" -ne 0 ]; then
  echo "lint.sh: missing required tools: ${missing[*]}" >&2
  echo "lint.sh: install clang + clang-tidy (e.g. apt-get install clang clang-tidy)" >&2
  exit 2
fi

echo "== configure (preset: lint) =="
cmake --preset lint

echo "== build + clang-tidy (preset: lint) =="
cmake --build --preset lint -j "$(nproc)"

if [ "${1:-}" = "--fix" ]; then
  echo "== clang-tidy --fix over compile database =="
  mapfile -t sources < <(git ls-files 'src/*.cc' 'tests/*.cc' 'bench/*.cc' 'examples/*.cc')
  run_tidy="$(command -v run-clang-tidy || true)"
  if [ -n "${run_tidy}" ]; then
    "${run_tidy}" -p build/lint -fix "${sources[@]}"
  else
    for f in "${sources[@]}"; do
      clang-tidy -p build/lint -fix "$f"
    done
  fi
fi

echo "lint.sh: clean"
