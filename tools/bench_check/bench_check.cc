#include "bench_check/bench_check.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

namespace bench_check {
namespace {

// ---------------------------------------------------------------------------
// JSON parsing (flat array-of-objects subset, as JsonEmitter writes)
// ---------------------------------------------------------------------------

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  std::string error;

  bool Fail(const std::string& what) {
    error = what + " at byte " + std::to_string(i);
    return false;
  }
  void SkipWs() {
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])) != 0)
      ++i;
  }
  bool Expect(char c) {
    SkipWs();
    if (i >= s.size() || s[i] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++i;
    return true;
  }
  bool ParseString(std::string* out) {
    SkipWs();
    if (i >= s.size() || s[i] != '"') return Fail("expected string");
    ++i;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      // The emitter never escapes, but tolerate \" anyway.
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      out->push_back(s[i++]);
    }
    if (i >= s.size()) return Fail("unterminated string");
    ++i;
    return true;
  }
  bool ParseNumber(double* out) {
    SkipWs();
    const char* begin = s.c_str() + i;
    char* end = nullptr;
    *out = std::strtod(begin, &end);
    if (end == begin) return Fail("expected number");
    i += static_cast<std::size_t>(end - begin);
    return true;
  }
  bool ParseObject(Record* rec) {
    if (!Expect('{')) return false;
    SkipWs();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Expect(':')) return false;
      SkipWs();
      if (i < s.size() && s[i] == '"') {
        std::string value;
        if (!ParseString(&value)) return false;
        rec->strings[key] = value;
        if (key == "name") rec->name = std::move(value);
      } else {
        double value = 0;
        if (!ParseNumber(&value)) return false;
        rec->metrics[key] = value;
      }
      SkipWs();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      return Expect('}');
    }
  }
};

/// The identity a record is matched under across files.
std::string RecordKey(const Record& r) {
  std::ostringstream key;
  key << r.name << " (workers=" << r.workers()
      << ", policy=" << r.cache_policy() << ")";
  return key.str();
}

double ToleranceFor(const std::string& metric, const CheckOptions& options) {
  auto it = options.metric_tolerance.find(metric);
  return it == options.metric_tolerance.end() ? options.tolerance
                                              : it->second;
}

/// Relative deviation with a sane zero-baseline convention: counts near
/// zero compare absolutely (denominator clamps at 1).
double Deviation(double base, double fresh) {
  return std::fabs(fresh - base) / std::max(std::fabs(base), 1.0);
}

std::string Fmt(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

/// Resolves a `name[@workers]:metric` selector; nullptr + message on
/// no/ambiguous match.
const Record* Resolve(const std::vector<Record>& records,
                      const std::string& name, double workers,
                      const std::string& require_text,
                      std::vector<std::string>* failures) {
  const Record* found = nullptr;
  for (const Record& r : records) {
    if (r.name != name) continue;
    if (workers >= 0 && r.workers() != workers) continue;
    if (found != nullptr) {
      failures->push_back("require '" + require_text + "': selector '" +
                          name +
                          "' is ambiguous (add @workers to pick one "
                          "record of the sweep)");
      return nullptr;
    }
    found = &r;
  }
  if (found == nullptr) {
    failures->push_back("require '" + require_text + "': no record named '" +
                        name + "' in the fresh file");
  }
  return found;
}

bool MetricOf(const Record& r, const std::string& metric, double* out,
              const std::string& require_text,
              std::vector<std::string>* failures) {
  auto it = r.metrics.find(metric);
  if (it == r.metrics.end()) {
    failures->push_back("require '" + require_text + "': record '" + r.name +
                        "' has no metric '" + metric + "'");
    return false;
  }
  *out = it->second;
  return true;
}

/// Splits `name[@workers]:metric` on the *last* ':' (names contain '/'
/// but never ':').
bool SplitSelector(const std::string& term, std::string* name,
                   double* workers, std::string* metric) {
  std::size_t colon = term.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= term.size()) {
    return false;
  }
  *name = term.substr(0, colon);
  *metric = term.substr(colon + 1);
  *workers = -1;
  std::size_t at = name->rfind('@');
  if (at != std::string::npos) {
    char* end = nullptr;
    const std::string w = name->substr(at + 1);
    *workers = std::strtod(w.c_str(), &end);
    if (end == w.c_str() || *end != '\0') return false;
    *name = name->substr(0, at);
  }
  return !name->empty() && !metric->empty();
}

}  // namespace

bool ParseRecords(const std::string& json, std::vector<Record>* out,
                  std::string* error) {
  out->clear();
  Parser p{json, 0, ""};
  if (!p.Expect('[')) {
    *error = p.error;
    return false;
  }
  p.SkipWs();
  if (p.i < json.size() && json[p.i] == ']') {
    ++p.i;
    return true;
  }
  while (true) {
    Record rec;
    if (!p.ParseObject(&rec)) {
      *error = p.error;
      return false;
    }
    if (rec.name.empty()) {
      *error = "record " + std::to_string(out->size()) +
               " has no \"name\" field";
      return false;
    }
    out->push_back(std::move(rec));
    p.SkipWs();
    if (p.i < json.size() && json[p.i] == ',') {
      ++p.i;
      continue;
    }
    if (!p.Expect(']')) {
      *error = p.error;
      return false;
    }
    return true;
  }
}

std::vector<std::string> CompareRecords(const std::vector<Record>& baseline,
                                        const std::vector<Record>& fresh,
                                        const CheckOptions& options) {
  std::vector<std::string> failures;
  // Group by key, then compare i-th with i-th; the emitters write a
  // deterministic record order, so positional matching within a key is
  // exact.
  std::map<std::string, std::vector<const Record*>> base_by_key;
  std::map<std::string, std::vector<const Record*>> fresh_by_key;
  for (const Record& r : baseline) base_by_key[RecordKey(r)].push_back(&r);
  for (const Record& r : fresh) fresh_by_key[RecordKey(r)].push_back(&r);

  for (const auto& [key, base_recs] : base_by_key) {
    auto it = fresh_by_key.find(key);
    if (it == fresh_by_key.end()) {
      failures.push_back("baseline record '" + key +
                         "' missing from the fresh run");
      continue;
    }
    const auto& fresh_recs = it->second;
    if (fresh_recs.size() != base_recs.size()) {
      failures.push_back("record '" + key + "': baseline has " +
                         std::to_string(base_recs.size()) +
                         " occurrence(s), fresh has " +
                         std::to_string(fresh_recs.size()));
      continue;
    }
    for (std::size_t i = 0; i < base_recs.size(); ++i) {
      for (const auto& [metric, base_value] : base_recs[i]->metrics) {
        if (options.skip_metrics.count(metric) != 0) continue;
        auto mit = fresh_recs[i]->metrics.find(metric);
        if (mit == fresh_recs[i]->metrics.end()) {
          failures.push_back("record '" + key + "': metric '" + metric +
                             "' missing from the fresh run");
          continue;
        }
        const double tol = ToleranceFor(metric, options);
        const double dev = Deviation(base_value, mit->second);
        if (dev > tol) {
          failures.push_back(
              "record '" + key + "': " + metric + " drifted " +
              Fmt(dev * 100.0) + "% (baseline " + Fmt(base_value) +
              ", fresh " + Fmt(mit->second) + ", tolerance " +
              Fmt(tol * 100.0) + "%)");
        }
      }
    }
  }
  // A fresh record absent from the baseline means the committed file
  // was not regenerated after a bench change: also a failure.
  for (const auto& [key, recs] : fresh_by_key) {
    (void)recs;
    if (base_by_key.count(key) == 0) {
      failures.push_back("fresh record '" + key +
                         "' not in the baseline (regenerate and commit "
                         "the BENCH file)");
    }
  }
  return failures;
}

bool ParseRequire(const std::string& text, RequireAssertion* out,
                  std::string* error) {
  std::istringstream in(text);
  std::string num, slash, den, op, bound;
  if (!(in >> num >> slash >> den >> op >> bound) || slash != "/") {
    *error = "expected \"name[@w]:metric / name[@w]:metric <op> bound\"";
    return false;
  }
  std::string trailing;
  if (in >> trailing) {
    *error = "trailing tokens after the bound";
    return false;
  }
  out->text = text;
  if (!SplitSelector(num, &out->num_name, &out->num_workers,
                     &out->num_metric) ||
      !SplitSelector(den, &out->den_name, &out->den_workers,
                     &out->den_metric)) {
    *error = "malformed selector (want name[@workers]:metric)";
    return false;
  }
  if (op == ">=") {
    out->op = RequireAssertion::Op::kGe;
  } else if (op == "<=") {
    out->op = RequireAssertion::Op::kLe;
  } else if (op == "==") {
    out->op = RequireAssertion::Op::kEq;
  } else {
    *error = "unknown operator '" + op + "' (want >=, <= or ==)";
    return false;
  }
  char* end = nullptr;
  out->bound = std::strtod(bound.c_str(), &end);
  if (end == bound.c_str() || *end != '\0') {
    *error = "malformed bound '" + bound + "'";
    return false;
  }
  return true;
}

std::vector<std::string> CheckRequires(
    const std::vector<Record>& fresh,
    const std::vector<RequireAssertion>& assertions) {
  std::vector<std::string> failures;
  for (const RequireAssertion& a : assertions) {
    const Record* num =
        Resolve(fresh, a.num_name, a.num_workers, a.text, &failures);
    const Record* den =
        Resolve(fresh, a.den_name, a.den_workers, a.text, &failures);
    if (num == nullptr || den == nullptr) continue;
    double nv = 0, dv = 0;
    if (!MetricOf(*num, a.num_metric, &nv, a.text, &failures) ||
        !MetricOf(*den, a.den_metric, &dv, a.text, &failures)) {
      continue;
    }
    if (dv == 0) {
      failures.push_back("require '" + a.text + "': denominator is zero");
      continue;
    }
    const double ratio = nv / dv;
    bool ok = false;
    switch (a.op) {
      case RequireAssertion::Op::kGe:
        ok = ratio >= a.bound;
        break;
      case RequireAssertion::Op::kLe:
        ok = ratio <= a.bound;
        break;
      case RequireAssertion::Op::kEq:
        ok = std::fabs(ratio - a.bound) <=
             1e-9 * std::max(std::fabs(a.bound), 1.0);
        break;
    }
    if (!ok) {
      failures.push_back("require '" + a.text + "' failed: ratio is " +
                         Fmt(ratio) + " (" + Fmt(nv) + " / " + Fmt(dv) +
                         ")");
    }
  }
  return failures;
}

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  std::string baseline_path;
  std::string fresh_path;
  CheckOptions options;
  std::vector<RequireAssertion> reqs;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      out << "usage: bench_check --baseline FILE --fresh FILE\n"
             "                   [--tolerance F] [--metric-tolerance "
             "name=F ...]\n"
             "                   [--check-metric name ...]\n"
             "                   [--require \"A:m / B:m >= X\" ...]\n"
             "Diffs a fresh BENCH_*.json against the committed baseline\n"
             "and evaluates ratio assertions over the fresh records.\n"
             "Exit: 0 clean, 1 check failures, 2 usage/parse error.\n";
      return 0;
    }
    auto next = [&](std::string* value) {
      if (i + 1 >= args.size()) {
        err << "bench_check: " << a << " requires an argument\n";
        return false;
      }
      *value = args[++i];
      return true;
    };
    std::string value;
    if (a == "--baseline") {
      if (!next(&baseline_path)) return 2;
    } else if (a == "--fresh") {
      if (!next(&fresh_path)) return 2;
    } else if (a == "--tolerance") {
      if (!next(&value)) return 2;
      options.tolerance = std::atof(value.c_str());
    } else if (a == "--metric-tolerance") {
      if (!next(&value)) return 2;
      std::size_t eq = value.find('=');
      if (eq == std::string::npos || eq == 0) {
        err << "bench_check: --metric-tolerance wants name=F, got '"
            << value << "'\n";
        return 2;
      }
      options.metric_tolerance[value.substr(0, eq)] =
          std::atof(value.c_str() + eq + 1);
    } else if (a == "--check-metric") {
      if (!next(&value)) return 2;
      options.skip_metrics.erase(value);
    } else if (a == "--require") {
      if (!next(&value)) return 2;
      RequireAssertion req;
      std::string error;
      if (!ParseRequire(value, &req, &error)) {
        err << "bench_check: bad --require '" << value << "': " << error
            << "\n";
        return 2;
      }
      reqs.push_back(std::move(req));
    } else {
      err << "bench_check: unknown argument '" << a << "'\n";
      return 2;
    }
  }
  if (fresh_path.empty()) {
    err << "bench_check: --fresh is required\n";
    return 2;
  }
  if (baseline_path.empty() && reqs.empty()) {
    err << "bench_check: nothing to do (want --baseline and/or "
           "--require)\n";
    return 2;
  }

  auto load = [&err](const std::string& path, std::vector<Record>* records) {
    std::ifstream in(path);
    if (!in) {
      err << "bench_check: cannot read '" << path << "'\n";
      return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!ParseRecords(buf.str(), records, &error)) {
      err << "bench_check: " << path << ": " << error << "\n";
      return false;
    }
    return true;
  };

  std::vector<Record> fresh;
  if (!load(fresh_path, &fresh)) return 2;

  std::vector<std::string> failures;
  if (!baseline_path.empty()) {
    std::vector<Record> baseline;
    if (!load(baseline_path, &baseline)) return 2;
    failures = CompareRecords(baseline, fresh, options);
  }
  std::vector<std::string> require_failures =
      CheckRequires(fresh, reqs);
  failures.insert(failures.end(), require_failures.begin(),
                  require_failures.end());

  for (const std::string& f : failures) out << "bench_check: " << f << "\n";
  if (failures.empty()) {
    out << "bench_check: clean (" << fresh.size() << " records";
    if (!reqs.empty()) {
      out << ", " << reqs.size() << " assertion(s)";
    }
    out << ")\n";
    return 0;
  }
  out << "bench_check: " << failures.size() << " failure(s)\n";
  return 1;
}

}  // namespace bench_check
