#ifndef SVQA_TOOLS_BENCH_CHECK_BENCH_CHECK_H_
#define SVQA_TOOLS_BENCH_CHECK_BENCH_CHECK_H_

/// \file
/// bench_check — regression gate over the BENCH_*.json perf records.
///
/// The benches emit flat JSON arrays (bench_common.h JsonEmitter): one
/// object per benchmark record, string `name`/`cache_policy` fields and
/// numeric metrics. CI regenerates those records every release build;
/// this tool diffs the fresh file against the committed baseline and
/// fails the job when a deterministic metric drifts past its tolerance,
/// so a perf regression (or an unregenerated baseline) is a red build
/// rather than a silently rotting JSON file.
///
/// Two kinds of checks:
///
///   Baseline diff  — records are matched by (name, workers,
///     cache_policy). Every numeric metric present in both is compared
///     as relative deviation; metrics measured in host wall time
///     (wall_micros, throughput_qps, bytes_allocated) are skipped by
///     default because the committed baseline and the CI runner are
///     different machines. Records missing from either side fail.
///
///   Require assertions — `--require "A:metric / B:metric >= 1.5"`
///     evaluates a ratio between two records of the *fresh* file. Both
///     sides run on the same machine in the same process, so this is
///     where wall-time and allocation claims (frozen-vs-mutable
///     speedups) are enforced. Operators: >=, <=, == (relative 1e-9).
///     Selectors are `name[@workers]:metric`; `@workers` disambiguates
///     sweeps that emit one record per worker count.
///
/// Exit codes follow svqa_lint: 0 clean, 1 check failures, 2 usage /
/// parse / IO errors. Like svqa_lint it is stdlib-only on purpose — the
/// gate must build anywhere the project builds.

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace bench_check {

/// One benchmark record: the flat JSON object, split into string fields
/// and numeric metrics.
struct Record {
  std::string name;
  std::map<std::string, std::string> strings;  // includes "name"
  std::map<std::string, double> metrics;

  double workers() const {
    auto it = metrics.find("workers");
    return it == metrics.end() ? 1.0 : it->second;
  }
  std::string cache_policy() const {
    auto it = strings.find("cache_policy");
    return it == strings.end() ? "" : it->second;
  }
};

/// Parses a JsonEmitter-style file: an array of flat objects whose
/// values are strings or numbers (no nesting — the emitter never writes
/// any). On failure returns false and sets *error with a position.
bool ParseRecords(const std::string& json, std::vector<Record>* out,
                  std::string* error);

/// Tolerances for the baseline diff.
struct CheckOptions {
  /// Maximum relative deviation |fresh - base| / max(|base|, 1) before
  /// a metric counts as a regression.
  double tolerance = 0.15;
  /// Per-metric overrides of `tolerance` (e.g. {"hit_rate", 0.02}).
  std::map<std::string, double> metric_tolerance;
  /// Metrics never diffed against the baseline: host-machine-dependent
  /// measurements. Assert these with `--require` ratios instead.
  std::set<std::string> skip_metrics = {"wall_micros", "throughput_qps",
                                        "bytes_allocated"};
};

/// Diffs fresh against baseline; returns one human-readable line per
/// failure (empty = clean).
std::vector<std::string> CompareRecords(const std::vector<Record>& baseline,
                                        const std::vector<Record>& fresh,
                                        const CheckOptions& options);

/// A parsed `--require` assertion: num/den selectors plus the bound.
struct RequireAssertion {
  std::string text;  // original, for messages
  std::string num_name, num_metric;
  std::string den_name, den_metric;
  double num_workers = -1;  // -1 = any (must be unique)
  double den_workers = -1;
  enum class Op { kGe, kLe, kEq } op = Op::kGe;
  double bound = 0;
};

/// Parses `"name[@workers]:metric / name[@workers]:metric <op> bound"`
/// (whitespace-separated: term / term op bound). Returns false and sets
/// *error on malformed input.
bool ParseRequire(const std::string& text, RequireAssertion* out,
                  std::string* error);

/// Evaluates assertions over the fresh records; returns failure lines.
std::vector<std::string> CheckRequires(
    const std::vector<Record>& fresh,
    const std::vector<RequireAssertion>& assertions);

/// Command-line entry point (what main() calls; tests call it too).
///
///   bench_check --baseline FILE --fresh FILE
///               [--tolerance F] [--metric-tolerance name=F ...]
///               [--check-metric name ...]   (un-skip a wall metric)
///               [--require "A:m / B:m >= X" ...]
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace bench_check

#endif  // SVQA_TOOLS_BENCH_CHECK_BENCH_CHECK_H_
