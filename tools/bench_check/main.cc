#include <iostream>
#include <string>
#include <vector>

#include "bench_check/bench_check.h"

int main(int argc, char** argv) {
  return bench_check::RunCli(std::vector<std::string>(argv + 1, argv + argc),
                             std::cout, std::cerr);
}
