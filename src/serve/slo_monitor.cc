#include "serve/slo_monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/trace.h"

namespace svqa::serve {

namespace {

/// Exemplar ordering everywhere: slowest first, ids breaking ties — a
/// total order, so merging per-bucket lists is order-independent.
bool SlowerFirst(const SloExemplar& a, const SloExemplar& b) {
  if (a.latency_micros != b.latency_micros) {
    return a.latency_micros > b.latency_micros;
  }
  return a.query_id < b.query_id;
}

/// Nearest-rank percentile over merged bucket counts: the inclusive
/// upper bound of the bucket containing rank ceil(q * count); -2 for
/// the overflow bucket, -1 for an empty window.
int64_t NearestRank(const std::vector<uint64_t>& counts,
                    const std::vector<uint64_t>& bounds, uint64_t count,
                    double q) {
  if (count == 0) return -1;
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * count)));
  uint64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen >= rank) {
      return b < bounds.size() ? static_cast<int64_t>(bounds[b]) : -2;
    }
  }
  return -2;
}

std::string PercentileString(int64_t p) {
  if (p == -1) return "-";
  if (p == -2) return "inf";
  return std::to_string(p);
}

}  // namespace

Status SloOptions::Validate() const {
  if (!(window_micros > 0) || !std::isfinite(window_micros)) {
    return Status::InvalidArgument(
        "SloOptions.window_micros must be positive and finite");
  }
  if (num_buckets == 0 || num_buckets > 4096) {
    return Status::InvalidArgument(
        "SloOptions.num_buckets must be in [1, 4096]");
  }
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    if (latency_target_micros[c] == 0) {
      return Status::InvalidArgument(
          "SloOptions.latency_target_micros must be >= 1");
    }
  }
  if (!(objective > 0) || !(objective < 1)) {
    return Status::InvalidArgument(
        "SloOptions.objective must be in (0, 1) exclusive");
  }
  if (max_exemplars > 64) {
    return Status::InvalidArgument(
        "SloOptions.max_exemplars too large (max 64 per class)");
  }
  return Status::OK();
}

const std::vector<uint64_t>& SloMonitor::LatencyBounds() {
  // Log-spaced (three per decade) from 100 us to 100 s of virtual
  // latency — the range the serve experiments report — plus the
  // implicit overflow bucket above.
  static const std::vector<uint64_t>* bounds = new std::vector<uint64_t>{
      100,        215,        464,        1'000,      2'154,
      4'641,      10'000,     21'544,     46'415,     100'000,
      215'443,    464'158,    1'000'000,  2'154'434,  4'641'588,
      10'000'000, 21'544'346, 46'415'888, 100'000'000};
  return *bounds;
}

SloMonitor::SloMonitor(SloOptions options) : options_(options) {
  classes_.resize(kNumPriorityClasses);
  for (auto& ring : classes_) ring.resize(options_.num_buckets);
}

void SloMonitor::Record(PriorityClass priority, double completion_micros,
                        double latency_micros, uint64_t query_id) {
  const std::vector<uint64_t>& bounds = LatencyBounds();
  const int cls = static_cast<int>(priority);
  if (cls < 0 || cls >= kNumPriorityClasses) return;
  if (completion_micros < 0) completion_micros = 0;
  if (latency_micros < 0) latency_micros = 0;
  const uint64_t idx =
      static_cast<uint64_t>(completion_micros / bucket_width_micros());

  MutexLock lock(&mu_);
  high_water_micros_ = std::max(high_water_micros_, completion_micros);
  TimeBucket& slot = classes_[cls][idx % options_.num_buckets];
  if (slot.index != idx) {
    if (slot.index != TimeBucket::kUnused && idx < slot.index) {
      // Older than the whole ring (a straggler completing long after
      // the window moved on): count it, never corrupt a fresh bucket.
      ++late_drops_;
      return;
    }
    slot.index = idx;
    slot.counts.assign(bounds.size() + 1, 0);
    slot.count = 0;
    slot.over_target = 0;
    slot.exemplars.clear();
  }
  const uint64_t lat = static_cast<uint64_t>(latency_micros);
  const std::size_t b =
      std::lower_bound(bounds.begin(), bounds.end(), lat) - bounds.begin();
  ++slot.counts[b];
  ++slot.count;
  if (lat > options_.latency_target_micros[cls]) ++slot.over_target;
  SloExemplar ex;
  ex.query_id = query_id;
  ex.latency_micros = latency_micros;
  slot.exemplars.insert(
      std::upper_bound(slot.exemplars.begin(), slot.exemplars.end(), ex,
                       SlowerFirst),
      ex);
  if (slot.exemplars.size() > options_.max_exemplars) {
    slot.exemplars.resize(options_.max_exemplars);
  }
}

SloSnapshot SloMonitor::Snapshot() const {
  double now;
  {
    MutexLock lock(&mu_);
    now = high_water_micros_;
  }
  return SnapshotAt(now);
}

SloSnapshot SloMonitor::SnapshotAt(double now_micros) const {
  const std::vector<uint64_t>& bounds = LatencyBounds();
  SloSnapshot snap;
  snap.window_micros = options_.window_micros;
  snap.objective = options_.objective;
  const uint64_t cur_idx = static_cast<uint64_t>(std::max(0.0, now_micros) /
                                                 bucket_width_micros());

  MutexLock lock(&mu_);
  snap.late_drops = late_drops_;
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    SloSnapshot::PerClass& out = snap.classes[c];
    std::vector<uint64_t> merged(bounds.size() + 1, 0);
    std::vector<SloExemplar> exemplars;
    for (const TimeBucket& slot : classes_[c]) {
      const bool live = slot.index != TimeBucket::kUnused &&
                        slot.index <= cur_idx &&
                        slot.index + options_.num_buckets > cur_idx;
      if (!live) continue;
      for (std::size_t b = 0; b < merged.size(); ++b) {
        merged[b] += slot.counts[b];
      }
      out.count += slot.count;
      out.over_target += slot.over_target;
      exemplars.insert(exemplars.end(), slot.exemplars.begin(),
                       slot.exemplars.end());
    }
    out.p50 = NearestRank(merged, bounds, out.count, 0.50);
    out.p95 = NearestRank(merged, bounds, out.count, 0.95);
    out.p99 = NearestRank(merged, bounds, out.count, 0.99);
    if (out.count > 0) {
      // Ratio of two integers over a constant: deterministic no matter
      // what order the window was filled in.
      out.burn_rate = (static_cast<double>(out.over_target) /
                       static_cast<double>(out.count)) /
                      (1.0 - options_.objective);
    }
    out.overloaded = out.burn_rate > 1.0;
    std::sort(exemplars.begin(), exemplars.end(), SlowerFirst);
    if (exemplars.size() > options_.max_exemplars) {
      exemplars.resize(options_.max_exemplars);
    }
    out.exemplars = std::move(exemplars);
  }
  return snap;
}

uint64_t SloMonitor::late_drops() const {
  MutexLock lock(&mu_);
  return late_drops_;
}

std::string SloSnapshot::ToText() const {
  std::ostringstream out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", objective);
  out << "slo window=" << obs::FormatMicros(window_micros)
      << " objective=" << buf << " late_drops=" << late_drops << "\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-12s %9s %6s %10s %10s %10s %6s %s\n",
                "class", "count", "over", "p50", "p95", "p99", "burn",
                "state");
  out << line;
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const PerClass& pc = classes[c];
    std::snprintf(buf, sizeof(buf), "%.2f", pc.burn_rate);
    std::snprintf(
        line, sizeof(line), "%-12s %9llu %6llu %10s %10s %10s %6s %s\n",
        PriorityClassName(static_cast<PriorityClass>(c)),
        static_cast<unsigned long long>(pc.count),
        static_cast<unsigned long long>(pc.over_target),
        PercentileString(pc.p50).c_str(), PercentileString(pc.p95).c_str(),
        PercentileString(pc.p99).c_str(), buf,
        pc.overloaded ? "OVERLOADED" : "ok");
    out << line;
    for (const SloExemplar& ex : pc.exemplars) {
      out << "  exemplar q" << ex.query_id
          << " latency=" << obs::FormatMicros(ex.latency_micros) << "\n";
    }
  }
  return out.str();
}

}  // namespace svqa::serve
