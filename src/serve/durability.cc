#include "serve/durability.h"

#include <algorithm>
#include <utility>

#include "aggregator/snapshot_codec.h"
#include "serve/graph_snapshot_store.h"

namespace svqa::serve {

SnapshotDurability::SnapshotDurability(storage::StorageEnv* env,
                                       std::string dir,
                                       DurabilityOptions options)
    : env_(env),
      dir_(std::move(dir)),
      options_(options),
      wal_(env, dir_) {}

void SnapshotDurability::SetMetrics(const obs::StackMetrics* metrics) {
  MutexLock lock(&mu_);
  metrics_ = metrics;
}

void SnapshotDurability::NoteFailure(const Status& s) {
  ++stats_.persist_failures;
  stats_.last_error = s.ToString();
}

Status SnapshotDurability::AppendWal(uint64_t generation,
                                     const std::string& encoded) {
  if (!options_.wal_ingest) return Status::OK();
  Status s = wal_.Append(generation, encoded);
  if (!s.ok()) {
    // A failed append leaves the log refusing writes (its tail may be
    // torn). Rewriting the valid prefix drops only the torn bytes —
    // never an acked generation — so repair once and retry, keeping
    // ingest retryable after a transient storage fault.
    if (wal_.TruncateThrough(0).ok()) {
      s = wal_.Append(generation, encoded);
    }
  }
  if (s.ok()) {
    ++stats_.wal_appends;
    stats_.wal_bytes += encoded.size();
    if (metrics_ != nullptr) metrics_->wal_appends->Incr();
  } else if (metrics_ != nullptr) {
    metrics_->wal_append_failures->Incr();
  }
  return s;
}

Result<uint64_t> SnapshotDurability::LogIntent(
    const aggregator::MergedGraph& merged,
    const graph::SymbolTable* symbols) {
  MutexLock lock(&mu_);
  const uint64_t generation = next_generation_++;
  std::string encoded = storage::EncodeSnapshot(
      aggregator::ToSnapshotData(merged, generation, symbols));
  if (Status s = AppendWal(generation, encoded); !s.ok()) {
    NoteFailure(s);
    return s;
  }
  pending_.push_back(Pending{generation, std::move(encoded), false});
  return generation;
}

void SnapshotDurability::OnPublish(const aggregator::MergedGraph& merged,
                                   const graph::SymbolTable* symbols) {
  MutexLock lock(&mu_);
  Pending p;
  if (!pending_.empty()) {
    p = std::move(pending_.front());
    pending_.pop_front();
  } else {
    p.generation = next_generation_++;
    p.encoded = storage::EncodeSnapshot(
        aggregator::ToSnapshotData(merged, p.generation, symbols));
    if (Status s = AppendWal(p.generation, p.encoded); !s.ok()) {
      // Live-republish path: record the gap but keep serving (see class
      // comment). A snapshot write below can still restore durability.
      NoteFailure(s);
    }
  }
  stats_.last_generation = p.generation;
  ++publish_seq_;
  if (p.generation == 0) return;  // conservative-empty republish
  const bool due = options_.persist_snapshots &&
                   options_.snapshot_every > 0 &&
                   publish_seq_ % options_.snapshot_every == 0;
  if (due || p.already_durable) {
    if (p.encoded.empty()) {
      p.encoded = storage::EncodeSnapshot(
          aggregator::ToSnapshotData(merged, p.generation, symbols));
    }
    PersistSnapshot(p.generation, p.encoded, p.already_durable);
  }
}

void SnapshotDurability::PersistSnapshot(uint64_t generation,
                                         const std::string& encoded,
                                         bool skip_if_present) {
  storage::SnapshotWriter writer(env_, dir_,
                                 {.keep = options_.keep_snapshots});
  if (skip_if_present &&
      env_->FileExists(dir_ + "/" + storage::SnapshotFileName(generation))) {
    return;
  }
  Result<std::string> written = writer.WriteEncoded(generation, encoded);
  if (!written.ok()) {
    NoteFailure(written.status());
    return;
  }
  ++stats_.snapshots_written;
  stats_.snapshot_bytes += encoded.size();
  if (metrics_ != nullptr) metrics_->snapshot_writes->Incr();
  // The snapshot now covers every logged generation <= `generation`;
  // shrink the WAL so replay stays O(tail), and repair any torn tail a
  // failed append left behind.
  if (Status s = wal_.TruncateThrough(generation); s.ok()) {
    ++stats_.wal_truncations;
  } else {
    NoteFailure(s);
  }
}

Result<storage::RecoveryReport> SnapshotDurability::WarmStart(
    GraphSnapshotStore* store) {
  storage::RecoveryManager::Options ropts;
  {
    MutexLock lock(&mu_);
    ropts.metrics = metrics_;
  }
  storage::RecoveryManager manager(env_, dir_, ropts);
  storage::RecoveredState recovered = manager.Recover();
  const storage::RecoveryReport& report = recovered.report;

  aggregator::MergedGraph merged;
  uint64_t generation = 0;
  bool publish = false;
  if (recovered.state.has_value()) {
    Result<aggregator::MergedGraph> rebuilt =
        aggregator::FromSnapshotData(*recovered.state);
    if (rebuilt.ok()) {
      aggregator::RestoreSymbols(*recovered.state, store->symbols().get());
      merged = std::move(*rebuilt);
      generation = recovered.state->generation;
      publish = true;
    } else {
      // Decode verified the bytes, so a rebuild failure means the
      // writer persisted an inconsistent graph — degrade to the empty
      // conservative mode rather than serving it.
      recovered.report.rung = storage::RecoveryRung::kConservativeEmpty;
      recovered.report.notes.push_back("recovered graph rejected: " +
                                       rebuilt.status().ToString());
      publish = true;
    }
  } else if (report.rung == storage::RecoveryRung::kConservativeEmpty) {
    publish = true;  // explicit empty-graph conservative mode
  }

  {
    MutexLock lock(&mu_);
    next_generation_ =
        std::max(next_generation_, report.recovered_generation + 1);
    if (publish) {
      // The republish below must not re-log what is already durable.
      pending_.push_back(Pending{generation, std::string(), true});
    }
  }
  if (publish) {
    store->Publish(std::move(merged));
  }
  return recovered.report;
}

DurabilityStats SnapshotDurability::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace svqa::serve
