#ifndef SVQA_SERVE_DURABILITY_H_
#define SVQA_SERVE_DURABILITY_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "aggregator/merger.h"
#include "graph/interning.h"
#include "obs/observability.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "storage/storage_env.h"
#include "storage/wal.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/result.h"

namespace svqa::serve {

class GraphSnapshotStore;

/// \brief Tuning for SnapshotDurability.
struct DurabilityOptions {
  /// WAL-log every publish (sync before the in-memory swap).
  bool wal_ingest = true;
  /// Persist a full snapshot file for every Nth publish.
  bool persist_snapshots = true;
  uint64_t snapshot_every = 1;
  /// Snapshot generations retained on disk.
  std::size_t keep_snapshots = 3;
};

/// \brief How an engine/server opts into durability: an environment
/// (real FsEnv or a test SimFs), a directory, and the knobs. A null env
/// means "volatile, exactly as before".
struct DurabilitySetup {
  storage::StorageEnv* env = nullptr;  ///< Not owned; nullptr disables.
  std::string dir = "svqa_db";
  DurabilityOptions options;

  bool enabled() const { return env != nullptr; }
};

/// \brief Point-in-time durability counters.
struct DurabilityStats {
  uint64_t last_generation = 0;
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t snapshots_written = 0;
  uint64_t snapshot_bytes = 0;
  uint64_t wal_truncations = 0;
  /// WAL appends or snapshot writes that failed (the in-memory publish
  /// proceeded; the failure is recorded here and in `last_error`).
  uint64_t persist_failures = 0;
  std::string last_error;
};

/// \brief Glue between the in-memory GraphSnapshotStore and the storage
/// layer: WAL-before-publish, periodic snapshot files, WAL truncation,
/// and warm-start recovery.
///
/// Two write paths:
///  - `LogIntent` + store Publish (the engine's ingest): the WAL append
///    happens first and a failure *fails the ingest* — the in-memory
///    store is never ahead of the log on this path.
///  - store Publish alone (live republish through serve::SvqaServer):
///    `OnPublish` WAL-logs inside the publish. A storage failure here
///    is recorded but does not take serving down (availability over
///    durability for live traffic; the gap is exactly what a crash
///    would have lost anyway).
///
/// Thread-safety: all methods lock one internal mutex; WAL generation
/// order therefore matches append order even under concurrent
/// publishers.
class SnapshotDurability {
 public:
  SnapshotDurability(storage::StorageEnv* env, std::string dir,
                     DurabilityOptions options = {});

  /// Durably logs the intent to publish `merged` before the store
  /// mutates. Returns the assigned generation; on error nothing was
  /// acknowledged and the caller must not publish.
  SVQA_NODISCARD Result<uint64_t> LogIntent(
      const aggregator::MergedGraph& merged,
      const graph::SymbolTable* symbols) SVQA_EXCLUDES(mu_);

  /// Hook called by GraphSnapshotStore::Publish before the snapshot
  /// build/swap. Consumes a pending LogIntent when one exists (engine
  /// path); otherwise WAL-logs here. Then persists a snapshot file when
  /// one is due and truncates the WAL behind it. Never fails the
  /// publish — see class comment.
  void OnPublish(const aggregator::MergedGraph& merged,
                 const graph::SymbolTable* symbols) SVQA_EXCLUDES(mu_);

  /// Startup recovery: loads the newest verified snapshot, replays the
  /// WAL tail, quarantines damage, republishes the recovered state into
  /// `store` (or an empty conservative graph when durable state existed
  /// but nothing survived), and primes the generation counter. On
  /// kColdStart nothing is published. Call before serving traffic.
  SVQA_NODISCARD Result<storage::RecoveryReport> WarmStart(
      GraphSnapshotStore* store) SVQA_EXCLUDES(mu_);

  /// Wires the pre-registered obs handles (WAL appends/failures,
  /// snapshot writes, recovery telemetry). Not owned; must outlive this
  /// object. Typically called by SvqaServer before traffic.
  void SetMetrics(const obs::StackMetrics* metrics) SVQA_EXCLUDES(mu_);

  DurabilityStats stats() const SVQA_EXCLUDES(mu_);
  const std::string& dir() const { return dir_; }
  storage::StorageEnv* env() const { return env_; }

 private:
  struct Pending {
    uint64_t generation = 0;
    std::string encoded;
    /// Recovered republish: already on disk, skip WAL + dedupe snapshot.
    bool already_durable = false;
  };

  /// Appends + syncs one WAL record; updates stats.
  Status AppendWal(uint64_t generation, const std::string& encoded)
      SVQA_REQUIRES(mu_);
  /// Writes the snapshot file for `generation` and truncates the WAL.
  void PersistSnapshot(uint64_t generation, const std::string& encoded,
                       bool skip_if_present) SVQA_REQUIRES(mu_);
  void NoteFailure(const Status& s) SVQA_REQUIRES(mu_);

  storage::StorageEnv* const env_;
  const std::string dir_;
  const DurabilityOptions options_;
  mutable Mutex mu_;
  storage::IngestWal wal_;
  uint64_t next_generation_ SVQA_GUARDED_BY(mu_) = 1;
  uint64_t publish_seq_ SVQA_GUARDED_BY(mu_) = 0;
  std::deque<Pending> pending_ SVQA_GUARDED_BY(mu_);
  DurabilityStats stats_ SVQA_GUARDED_BY(mu_);
  const obs::StackMetrics* metrics_ SVQA_GUARDED_BY(mu_) = nullptr;
};

}  // namespace svqa::serve

#endif  // SVQA_SERVE_DURABILITY_H_
