#ifndef SVQA_SERVE_REQUEST_H_
#define SVQA_SERVE_REQUEST_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "exec/executor.h"
#include "exec/explain.h"
#include "obs/trace.h"
#include "query/query_graph.h"
#include "util/annotations.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/status.h"

namespace svqa::serve {

/// \brief Admission/scheduling class of a request. Classes are served in
/// strict priority order (interactive preempts nothing — dispatch is
/// non-preemptive — but an idle worker always takes the highest class
/// first); within a class, requests dispatch earliest-deadline-first.
enum class PriorityClass : int {
  /// Latency-sensitive user-facing questions.
  kInteractive = 0,
  /// Offline/analytical batches.
  kBatch = 1,
  /// Shed-first background work (prefetch, speculative warming).
  kBestEffort = 2,
};

inline constexpr int kNumPriorityClasses = 3;

const char* PriorityClassName(PriorityClass c);

/// \brief Per-request knobs passed to SvqaServer::Submit*.
struct RequestOptions {
  PriorityClass priority = PriorityClass::kInteractive;
  /// End-to-end *virtual-time* budget in microseconds; <= 0 or non-finite
  /// means unbounded. In simulated mode the budget covers queue wait +
  /// execution (both virtual); in threaded mode queue wait is host time,
  /// so the budget bounds execution only (see DESIGN.md §7).
  double deadline_micros = 0;
  /// Simulated mode only: the request's virtual arrival time on the
  /// service timeline (open-loop load generation). Ignored in threaded
  /// mode, where arrival is the host submit instant.
  double arrival_micros = 0;
  /// EXPLAIN ANALYZE: force a tracer on for this request (even when the
  /// server's observability is disabled or the sampler would skip it)
  /// and attach a per-quadruple `exec::QueryCostReport` to the
  /// response. The explained request pays its own telemetry cost in
  /// host time; its virtual charges are identical either way.
  bool explain = false;
};

/// \brief Final outcome of one served request.
struct ServeResponse {
  /// Definitive status: OK, kResourceExhausted (shed at admission),
  /// kDeadlineExceeded (expired in queue or mid-execution), kCancelled,
  /// or an execution failure.
  Status status;
  exec::Answer answer;
  PriorityClass priority = PriorityClass::kInteractive;
  /// Snapshot the request executed against (0 = never dispatched).
  uint64_t snapshot_id = 0;
  /// Time spent queued: virtual micros in simulated mode, host micros in
  /// threaded mode.
  double queue_wait_micros = 0;
  /// Virtual execution time (parse + Algorithm 3 + retry backoff).
  double exec_micros = 0;
  /// End-to-end latency = queue_wait + exec. Pure virtual time in
  /// simulated mode; a host-wait + virtual-exec hybrid in threaded mode
  /// (diagnostic only there).
  double latency_micros = 0;
  /// Span tree of this request's dispatch, present when the server runs
  /// with observability enabled and the trace sampler selected this
  /// request id. Keyed to the request's own SimClock; the queue-wait
  /// span is recorded on the negative axis (before virtual t=0), so the
  /// execution subtree stays byte-identical across worker counts.
  std::shared_ptr<obs::Tracer> trace;
  /// EXPLAIN ANALYZE cost attribution, present iff the request was
  /// submitted with `RequestOptions::explain` and reached dispatch.
  /// Cache counters are absent (`cache.present == false`): the serve
  /// path meters into the server's shared registry, where per-query
  /// deltas would be meaningless.
  std::shared_ptr<const exec::QueryCostReport> cost_report;
};

/// \brief Shared completion handle between a submitter and the serving
/// layer. Submit* returns one immediately; the response becomes
/// available once the scheduler (or admission control) completes it.
///
/// Thread-safe: Wait/done may be called from any thread; Complete is
/// called exactly once by the serving layer (later calls are ignored).
class ServeTicket {
 public:
  explicit ServeTicket(uint64_t id) : id_(id) {}

  ServeTicket(const ServeTicket&) = delete;
  ServeTicket& operator=(const ServeTicket&) = delete;

  uint64_t id() const { return id_; }

  /// Blocks until the response is available, then returns it. The
  /// reference stays valid for the ticket's lifetime.
  const ServeResponse& Wait() const SVQA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    cv_.WaitUntil(&mu_, [this]() SVQA_REQUIRES(mu_) { return done_; });
    return response_;
  }

  bool done() const SVQA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return done_;
  }

  /// Cooperative cancellation flag polled by the executor's
  /// check-points; SvqaServer::Cancel raises it.
  const CancellationToken& cancel_token() const { return cancel_; }

  /// Raises the cancellation flag; sticky, observed at the next
  /// check-point (or at dispatch, for a still-queued request).
  void RequestCancel() { cancel_.RequestCancel(); }

  /// Serving-layer entry point: publishes the response and wakes
  /// waiters. First call wins; returns false (and drops `response`) if
  /// the ticket was already completed.
  bool Complete(ServeResponse response) SVQA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (done_) return false;
    response_ = std::move(response);
    done_ = true;
    cv_.NotifyAll();
    return true;
  }

 private:
  const uint64_t id_;
  CancellationToken cancel_;
  mutable Mutex mu_;
  mutable CondVar cv_;
  bool done_ SVQA_GUARDED_BY(mu_) = false;
  ServeResponse response_ SVQA_GUARDED_BY(mu_);
};

using TicketPtr = std::shared_ptr<ServeTicket>;

/// \brief Internal unit of work flowing from admission to dispatch.
/// Carries either a pre-parsed query graph or a natural-language
/// question to be parsed on the worker (charged to the request's clock).
struct QueuedRequest {
  /// Submit sequence number; doubles as the deterministic EDF tie-break
  /// and the retry-jitter salt.
  uint64_t id = 0;
  query::QueryGraph graph;
  std::string question;
  /// True when `question` must be parsed at dispatch time.
  bool needs_parse = false;
  RequestOptions options;
  /// Arrival on the scheduling timeline: virtual micros (simulated) or
  /// host micros since server start (threaded).
  double arrival_micros = 0;
  /// Absolute deadline on that same timeline (infinity = unbounded);
  /// the EDF ordering key.
  double deadline_abs_micros = std::numeric_limits<double>::infinity();
  TicketPtr ticket;
};

}  // namespace svqa::serve

#endif  // SVQA_SERVE_REQUEST_H_
