#ifndef SVQA_SERVE_SERVER_H_
#define SVQA_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "aggregator/merger.h"
#include "obs/observability.h"
#include "query/query_graph.h"
#include "query/query_graph_builder.h"
#include "serve/admission_queue.h"
#include "serve/graph_snapshot_store.h"
#include "serve/request.h"
#include "serve/request_scheduler.h"
#include "serve/stats.h"
#include "storage/recovery.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/status.h"

namespace svqa::serve {

/// \brief Serving mode, mirroring exec::BatchMode.
enum class ServeMode : int {
  /// Real util::ThreadPool workers; arrivals are host submit instants.
  kThreaded = 0,
  /// Deterministic discrete-event replay on the caller thread; arrivals
  /// come from RequestOptions::arrival_micros and the whole run is
  /// bit-for-bit reproducible.
  kSimulated = 1,
};

/// \brief Server construction knobs.
struct ServerOptions {
  ServeMode mode = ServeMode::kThreaded;
  /// Worker count (real threads or virtual workers).
  std::size_t num_workers = 4;
  AdmissionOptions admission;
  /// Base resilience (retries, fault policy) applied to every request.
  exec::ResilienceOptions resilience;
  /// Enables SubmitQuestion. Not owned; may be nullptr.
  const query::QueryGraphBuilder* parser = nullptr;
  /// Reorder SubmitBatch through exec::ScheduleQueries (§V-B) so
  /// cache-warming graphs enter the queue first.
  bool schedule_batches = true;
  /// Observability knobs. When enabled the server owns one
  /// obs::Observability (metrics registry + flight recorder with
  /// `num_workers + 1` lanes — one per worker plus one for lifecycle
  /// events) and samples a Tracer per `trace_sample_n` request ids.
  obs::ObsOptions obs;
  /// SLO monitor knobs (window length, per-class latency targets,
  /// objective). The monitor itself is always on — it is fed one O(1)
  /// record per dispatched request regardless of `obs.enabled` — and is
  /// rendered by `StatszText()`.
  SloOptions slo;

  Status Validate() const;
};

/// \brief In-process serving facade over the snapshot store: admission
/// control, deadline-aware scheduling, cancellation, live publishes, and
/// aggregate statistics behind one object.
///
/// Lifecycle: construct over a GraphSnapshotStore (typically
/// SvqaEngine::snapshot_store()), `Start()`, submit away, `Shutdown()`.
/// Threaded submissions complete asynchronously — callers rendezvous via
/// ServeTicket::Wait. Simulated submissions accumulate until
/// `RunSimulated()` replays them; every ticket is complete when it
/// returns.
///
/// Thread-safety: all public methods may be called concurrently.
/// Determinism of simulated runs assumes Cancel is not racing
/// RunSimulated (cancel before or after the run is always deterministic).
class SvqaServer {
 public:
  /// \param store snapshot store queries execute against (not owned;
  /// must outlive the server). Publishes route through `Publish`.
  SvqaServer(GraphSnapshotStore* store, ServerOptions options);
  ~SvqaServer();

  SvqaServer(const SvqaServer&) = delete;
  SvqaServer& operator=(const SvqaServer&) = delete;

  /// Validates options and (threaded mode) spawns the workers. Must be
  /// called once before submitting.
  Status Start();

  /// Warm-start from disk: recovers the newest durable state through the
  /// store's SnapshotDurability hook and publishes it, so the first
  /// dispatched request already sees the pre-crash graph. Call before
  /// Start() (or at least before traffic). InvalidArgument when the
  /// store was built without SnapshotStoreOptions::durability. The rung
  /// reached is surfaced in Stats().recovery_rung.
  Result<storage::RecoveryReport> WarmStart();

  /// Enqueues one pre-parsed query graph. Always returns a live ticket:
  /// requests shed by admission control (queue depth, rate limit,
  /// draining) complete immediately with kResourceExhausted.
  TicketPtr Submit(const query::QueryGraph& graph,
                   const RequestOptions& options = {});

  /// Like Submit, but the question is parsed on the worker, charged to
  /// the request's virtual clock. Requires ServerOptions::parser.
  TicketPtr SubmitQuestion(const std::string& question,
                           const RequestOptions& options = {});

  /// Submits a batch, pre-ordered by the §V-B frequency-ratio scheduler
  /// (when `schedule_batches`) so shared-vertex graphs warm the cache
  /// first. Tickets return in input order.
  std::vector<TicketPtr> SubmitBatch(
      const std::vector<query::QueryGraph>& graphs,
      const RequestOptions& options = {});

  /// Cooperatively cancels request `id`. A still-queued request (threaded
  /// mode) is pulled out and completed with kCancelled immediately; a
  /// running one unwinds at its next execution check-point. Returns false
  /// for unknown ids and already-completed requests.
  bool Cancel(uint64_t id);

  /// Publishes a new merged graph: queries already dispatched keep their
  /// snapshot, later dispatches see the new one. Returns the snapshot id.
  uint64_t Publish(aggregator::MergedGraph merged);

  /// Simulated mode: replays everything submitted so far through the
  /// deterministic event loop and returns the virtual makespan. All
  /// outstanding tickets are complete on return. No-op (returns 0) in
  /// threaded mode.
  double RunSimulated();

  /// Graceful drain: closes admission (new submits shed with
  /// kResourceExhausted), lets workers finish every queued request, joins
  /// (threaded), and completes never-run simulated requests with
  /// kCancelled. Idempotent.
  void Shutdown();

  /// Point-in-time aggregate statistics (per-class counters + publish
  /// info).
  ServerStats Stats() const;

  /// Point-in-time SLO window snapshot (latency percentiles, burn
  /// rates, slow-request exemplars per class), taken at the high-water
  /// virtual completion time.
  SloSnapshot SloStatus() const { return slo_.Snapshot(); }

  /// The deterministic one-page dashboard: aggregate per-class serving
  /// stats followed by the SLO window. In simulated mode the whole dump
  /// is byte-identical across runs and worker counts for the same
  /// workload. Safe under live traffic.
  std::string StatszText() const;

  /// Deterministic name-sorted metrics snapshot as JSON ("{}\n" when
  /// observability is disabled). Safe under live traffic.
  std::string MetricsJson() const;

  /// Human-readable dump of the flight recorder's recent span records,
  /// one section per lane, without stopping traffic (empty string when
  /// observability is disabled).
  std::string DumpFlightRecorder() const;

  /// The server's observability domain (nullptr when disabled).
  obs::Observability* observability() const { return obs_.get(); }

  const ServerOptions& options() const { return options_; }
  const GraphSnapshotStore& store() const { return *store_; }

 private:
  TicketPtr SubmitInternal(QueuedRequest req);
  /// Bumps the per-class shed counter (no-op when obs is off).
  void RecordShedMetric(PriorityClass priority);
  /// Drops completed tickets from the registry once it grows large.
  void PruneTicketsLocked() SVQA_REQUIRES(mu_);

  GraphSnapshotStore* store_;
  const ServerOptions options_;
  StatsCollector stats_;
  AdmissionQueue queue_;
  /// Declared before scheduler_: the scheduler holds a raw pointer.
  std::unique_ptr<obs::Observability> obs_;
  /// Ditto — the scheduler records one SLO sample per dispatch.
  SloMonitor slo_;
  RequestScheduler scheduler_;

  std::atomic<uint64_t> next_id_{1};
  std::atomic<bool> started_{false};
  std::atomic<bool> shutdown_{false};

  mutable Mutex mu_;
  /// Live tickets by id, for Cancel. Pruned lazily.
  std::unordered_map<uint64_t, TicketPtr> tickets_ SVQA_GUARDED_BY(mu_);
  /// Simulated mode: accumulated open-loop workload awaiting RunSimulated.
  std::vector<QueuedRequest> workload_ SVQA_GUARDED_BY(mu_);
};

}  // namespace svqa::serve

#endif  // SVQA_SERVE_SERVER_H_
