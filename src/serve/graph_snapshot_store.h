#ifndef SVQA_SERVE_GRAPH_SNAPSHOT_STORE_H_
#define SVQA_SERVE_GRAPH_SNAPSHOT_STORE_H_

#include <cstdint>
#include <memory>

#include "aggregator/merger.h"
#include "exec/executor.h"
#include "exec/key_centric_cache.h"
#include "graph/frozen_graph.h"
#include "graph/interning.h"
#include "text/embedding.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace svqa::serve {

class SnapshotDurability;

/// \brief Construction knobs for the per-snapshot execution machinery.
struct SnapshotStoreOptions {
  /// Build a key-centric cache per snapshot (caches are scoped to a
  /// snapshot — cached scopes/paths are only valid against the graph
  /// they were computed over).
  bool enable_cache = true;
  exec::KeyCentricCacheOptions cache;
  exec::ExecutorOptions executor;
  /// When set (not owned; must outlive the store), every Publish is
  /// WAL-logged and periodically persisted as a snapshot file, and
  /// SnapshotDurability::WarmStart can rebuild the store from disk.
  SnapshotDurability* durability = nullptr;
};

/// \brief One immutable, self-contained version of the serving state: a
/// merged graph plus the executor and key-centric cache built over it.
///
/// The graph and executor wiring never change after construction; the
/// cache is mutable but internally locked, so any number of workers may
/// execute against one snapshot concurrently (the executor's documented
/// thread-safety contract). Snapshots are shared as
/// `shared_ptr<const GraphSnapshot>` — a reader holding one is
/// completely isolated from later publishes.
class GraphSnapshot {
 public:
  /// \param symbols global symbol table shared across snapshots (and
  /// with the query side), so one string pool backs every version of
  /// the graph; nullptr lets the snapshot own a private table. Ignored
  /// when `options.executor.use_frozen_graph` is off.
  GraphSnapshot(uint64_t id, aggregator::MergedGraph merged,
                const text::EmbeddingModel* embeddings,
                const SnapshotStoreOptions& options,
                std::shared_ptr<graph::SymbolTable> symbols = nullptr);

  // The executor points into `merged_`/`cache_`, so the snapshot must
  // never relocate.
  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  /// Monotonic version number; the first published snapshot is 1.
  uint64_t id() const { return id_; }
  const aggregator::MergedGraph& merged() const { return merged_; }
  const exec::QueryGraphExecutor& executor() const { return *executor_; }
  /// Snapshot-scoped cache; nullptr when caching is disabled.
  exec::KeyCentricCache* cache() const { return cache_.get(); }
  /// The compiled CSR snapshot the executor reads (nullptr when frozen
  /// execution is disabled); pinned for this snapshot's lifetime.
  const graph::FrozenGraph* frozen() const { return frozen_.get(); }

 private:
  const uint64_t id_;
  const aggregator::MergedGraph merged_;
  /// Compiled once per publish, before the executor wires up to it.
  const std::shared_ptr<const graph::FrozenGraph> frozen_;
  const std::unique_ptr<exec::KeyCentricCache> cache_;
  const std::unique_ptr<exec::QueryGraphExecutor> executor_;
};

using SnapshotPtr = std::shared_ptr<const GraphSnapshot>;

/// \brief Copy-on-write snapshot store: queries read an immutable
/// current snapshot while ingest builds the next one off to the side and
/// publishes it atomically. No reader/writer stalls — a publish is one
/// shared_ptr swap under a short lock; in-flight queries keep their
/// snapshot alive until they finish, so results are deterministic per
/// snapshot id.
class GraphSnapshotStore {
 public:
  /// \param embeddings shared immutable embedding model (not owned; must
  /// outlive the store and every snapshot).
  explicit GraphSnapshotStore(const text::EmbeddingModel* embeddings,
                              SnapshotStoreOptions options = {});

  GraphSnapshotStore(const GraphSnapshotStore&) = delete;
  GraphSnapshotStore& operator=(const GraphSnapshotStore&) = delete;

  /// The current snapshot, or nullptr before the first Publish. Cheap
  /// (one shared_ptr copy under the lock); callers hold the returned
  /// pointer for the duration of their read.
  SnapshotPtr Current() const SVQA_EXCLUDES(mu_);

  /// Builds a snapshot around `merged` (executor + fresh cache) and
  /// atomically makes it current. Returns the new snapshot id. The
  /// expensive build happens outside the lock; only the swap is
  /// serialized.
  uint64_t Publish(aggregator::MergedGraph merged) SVQA_EXCLUDES(mu_);

  /// Id of the current snapshot (0 before the first publish).
  uint64_t latest_id() const SVQA_EXCLUDES(mu_);
  /// Total publishes performed.
  uint64_t publish_count() const SVQA_EXCLUDES(mu_);

  const SnapshotStoreOptions& options() const { return options_; }
  /// The durability hook wired at construction (nullptr = volatile).
  SnapshotDurability* durability() const { return options_.durability; }
  /// The store-wide symbol table every published snapshot interns into.
  /// Append-only and internally locked; label/category ids are therefore
  /// stable across snapshot versions.
  const std::shared_ptr<graph::SymbolTable>& symbols() const {
    return symbols_;
  }

 private:
  const text::EmbeddingModel* embeddings_;
  const SnapshotStoreOptions options_;
  /// One string pool for the lifetime of the store (see symbols()).
  const std::shared_ptr<graph::SymbolTable> symbols_;
  mutable Mutex mu_;
  SnapshotPtr current_ SVQA_GUARDED_BY(mu_);
  uint64_t next_id_ SVQA_GUARDED_BY(mu_) = 1;
  uint64_t publish_count_ SVQA_GUARDED_BY(mu_) = 0;
};

}  // namespace svqa::serve

#endif  // SVQA_SERVE_GRAPH_SNAPSHOT_STORE_H_
