#include "serve/graph_snapshot_store.h"

#include <utility>

#include "serve/durability.h"

namespace svqa::serve {

namespace {

std::unique_ptr<exec::KeyCentricCache> MakeCache(
    const SnapshotStoreOptions& options) {
  if (!options.enable_cache) return nullptr;
  return std::make_unique<exec::KeyCentricCache>(options.cache);
}

}  // namespace

GraphSnapshot::GraphSnapshot(uint64_t id, aggregator::MergedGraph merged,
                             const text::EmbeddingModel* embeddings,
                             const SnapshotStoreOptions& options,
                             std::shared_ptr<graph::SymbolTable> symbols)
    : id_(id),
      merged_(std::move(merged)),
      frozen_(options.executor.use_frozen_graph
                  ? merged_.graph.Freeze(std::move(symbols))
                  : nullptr),
      cache_(MakeCache(options)),
      executor_(std::make_unique<exec::QueryGraphExecutor>(
          &merged_, embeddings, cache_.get(), options.executor, frozen_)) {}

GraphSnapshotStore::GraphSnapshotStore(const text::EmbeddingModel* embeddings,
                                       SnapshotStoreOptions options)
    : embeddings_(embeddings),
      options_(options),
      symbols_(options.executor.use_frozen_graph
                   ? std::make_shared<graph::SymbolTable>()
                   : nullptr) {}

SnapshotPtr GraphSnapshotStore::Current() const {
  MutexLock lock(&mu_);
  return current_;
}

uint64_t GraphSnapshotStore::Publish(aggregator::MergedGraph merged) {
  uint64_t id = 0;
  {
    MutexLock lock(&mu_);
    id = next_id_++;
  }
  // Durability first: the WAL acknowledges the new state before any
  // reader can observe it, so the durable log is never behind a graph
  // a query was answered on. (Engine ingests pre-log via LogIntent;
  // this call then just consumes the pending intent.)
  if (options_.durability != nullptr) {
    options_.durability->OnPublish(merged, symbols_.get());
  }
  // Build outside the lock: readers keep serving the current snapshot
  // while the next one (graph + cache + executor) comes up.
  auto snapshot =
      std::make_shared<const GraphSnapshot>(id, std::move(merged),
                                            embeddings_, options_, symbols_);
  {
    MutexLock lock(&mu_);
    // Concurrent publishers may finish building out of order; never let
    // an older snapshot overwrite a newer one.
    if (current_ == nullptr || id > current_->id()) {
      current_ = std::move(snapshot);
    }
    ++publish_count_;
  }
  return id;
}

uint64_t GraphSnapshotStore::latest_id() const {
  MutexLock lock(&mu_);
  return current_ == nullptr ? 0 : current_->id();
}

uint64_t GraphSnapshotStore::publish_count() const {
  MutexLock lock(&mu_);
  return publish_count_;
}

}  // namespace svqa::serve
