#ifndef SVQA_SERVE_STATS_H_
#define SVQA_SERVE_STATS_H_

#include <cstdint>
#include <string>

#include "serve/request.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace svqa::serve {

/// \brief Per-priority-class serving counters. Every submitted request
/// lands in exactly one terminal bucket:
///   shed | completed | failed | cancelled | deadline_missed.
struct ClassStats {
  uint64_t submitted = 0;
  /// Rejected by admission control (queue full / rate limit / shutdown).
  uint64_t shed = 0;
  /// Dispatched and answered OK.
  uint64_t completed = 0;
  /// Dispatched and failed (execution/parse error, injected fault).
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  /// Deadline expired in queue or mid-execution.
  uint64_t deadline_missed = 0;
  /// Sums over dispatched (non-shed) requests, for mean queue-wait /
  /// exec / latency derivation.
  double queue_wait_micros_sum = 0;
  double exec_micros_sum = 0;
  double latency_micros_sum = 0;

  uint64_t terminal() const {
    return shed + completed + failed + cancelled + deadline_missed;
  }

  void Accumulate(const ClassStats& other);
};

/// \brief Aggregate server statistics snapshot.
struct ServerStats {
  ClassStats per_class[kNumPriorityClasses];
  /// Snapshots published through the server (not counting the store's
  /// initial ingest publish unless routed through SvqaServer::Publish).
  uint64_t publishes = 0;
  uint64_t latest_snapshot_id = 0;
  /// storage::RecoveryRung the server warm-started at (-1 = no recovery
  /// ran). Kept as an int so serve stats stay storage-agnostic.
  int recovery_rung = -1;
  /// Total span/event records the flight recorder has accepted across
  /// all lanes (0 when observability is off). Monotonic; the rings keep
  /// only the most recent `ring_capacity` per lane.
  uint64_t flight_records = 0;

  const ClassStats& of(PriorityClass c) const {
    return per_class[static_cast<int>(c)];
  }
  /// All classes folded together.
  ClassStats Totals() const;
  /// Human-readable multi-line rendering (one row per class).
  std::string ToString() const;
};

/// \brief Thread-safe collector behind SvqaServer::Stats(). Workers,
/// submitters, and the publisher all record concurrently.
class StatsCollector {
 public:
  StatsCollector() = default;
  StatsCollector(const StatsCollector&) = delete;
  StatsCollector& operator=(const StatsCollector&) = delete;

  void RecordSubmitted(PriorityClass c) SVQA_EXCLUDES(mu_);
  void RecordShed(PriorityClass c) SVQA_EXCLUDES(mu_);
  /// Terminal outcome of a dispatched (or cancelled-in-queue) request;
  /// classifies by `response.status` and accumulates the time sums.
  void RecordOutcome(const ServeResponse& response) SVQA_EXCLUDES(mu_);
  void RecordPublish(uint64_t snapshot_id) SVQA_EXCLUDES(mu_);
  void RecordRecovery(int rung) SVQA_EXCLUDES(mu_);

  ServerStats Snapshot() const SVQA_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  ServerStats stats_ SVQA_GUARDED_BY(mu_);
};

}  // namespace svqa::serve

#endif  // SVQA_SERVE_STATS_H_
