#ifndef SVQA_SERVE_ADMISSION_QUEUE_H_
#define SVQA_SERVE_ADMISSION_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <map>

#include "serve/request.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"

namespace svqa::serve {

/// \brief Admission-control knobs: bounded depth (total and per class)
/// plus a token-bucket rate limit per class. A request that cannot be
/// admitted is *shed* — rejected immediately with kResourceExhausted —
/// rather than queued indefinitely; bounded queues are what keep the
/// interactive tail latency bounded under overload.
struct AdmissionOptions {
  /// Total queued requests across all classes.
  std::size_t max_queue_depth = 256;
  /// Per-class depth caps (interactive, batch, best-effort). Shrinking
  /// the best-effort cap is the canonical overload valve.
  std::size_t class_depth[kNumPriorityClasses] = {256, 256, 256};
  /// Token-bucket refill rate per class in requests per *timeline
  /// second* (virtual seconds in simulated mode, host seconds in
  /// threaded mode); <= 0 disables rate limiting for the class.
  double rate_per_second[kNumPriorityClasses] = {0, 0, 0};
  /// Token-bucket burst capacity per class (>= 1 when rate limited).
  double burst[kNumPriorityClasses] = {1, 1, 1};

  Status Validate() const;
};

/// \brief Bounded, priority-classed request queue with deterministic
/// dispatch order: strict priority across classes, earliest deadline
/// first (submit order as tie-break) within a class.
///
/// Admission decisions are a pure function of (options, prior admits,
/// request arrival time), so the simulated scheduler replays them
/// bit-for-bit. Thread-safe; PopBlocking parks workers on the internal
/// CondVar until work arrives or intake closes.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionOptions options = {});

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits or sheds `req`. Returns OK (request queued) or
  /// kResourceExhausted naming the exhausted resource (total depth,
  /// class depth, class rate limit, or closed intake). `req.arrival_micros`
  /// drives the token-bucket refill and must be non-decreasing per class
  /// for the rate limit to be meaningful (out-of-order arrivals are
  /// clamped).
  Status Admit(QueuedRequest req) SVQA_EXCLUDES(mu_);

  /// Blocks until a request is available (then pops the dispatch-order
  /// head into `*out` and returns true) or intake is closed and the
  /// queue drained (returns false — the worker should exit).
  bool PopBlocking(QueuedRequest* out) SVQA_EXCLUDES(mu_);

  /// Non-blocking pop of the dispatch-order head.
  bool TryPop(QueuedRequest* out) SVQA_EXCLUDES(mu_);

  /// Removes a queued request by id (cancellation of queued work).
  /// Returns false if the id is not queued (already dispatched or never
  /// admitted).
  bool Remove(uint64_t id, QueuedRequest* out) SVQA_EXCLUDES(mu_);

  /// Stops intake: subsequent Admit calls shed with kResourceExhausted;
  /// queued requests remain poppable (drain), and blocked PopBlocking
  /// calls return false once the queue empties.
  void CloseIntake() SVQA_EXCLUDES(mu_);

  std::size_t size() const SVQA_EXCLUDES(mu_);
  std::size_t class_size(PriorityClass c) const SVQA_EXCLUDES(mu_);

  const AdmissionOptions& options() const { return options_; }

 private:
  /// EDF ordering key: absolute deadline, then submit sequence.
  struct OrderKey {
    double deadline;
    uint64_t seq;
    bool operator<(const OrderKey& other) const {
      if (deadline != other.deadline) return deadline < other.deadline;
      return seq < other.seq;
    }
  };
  using ClassQueue = std::map<OrderKey, QueuedRequest>;

  bool PopLocked(QueuedRequest* out) SVQA_REQUIRES(mu_);

  const AdmissionOptions options_;
  mutable Mutex mu_;
  CondVar cv_;
  ClassQueue queues_[kNumPriorityClasses] SVQA_GUARDED_BY(mu_);
  double tokens_[kNumPriorityClasses] SVQA_GUARDED_BY(mu_);
  double last_refill_[kNumPriorityClasses] SVQA_GUARDED_BY(mu_);
  std::size_t total_ SVQA_GUARDED_BY(mu_) = 0;
  bool closed_ SVQA_GUARDED_BY(mu_) = false;
};

}  // namespace svqa::serve

#endif  // SVQA_SERVE_ADMISSION_QUEUE_H_
