#include "serve/request_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

namespace svqa::serve {

// The obs layer pre-registers one shed counter and one queue-wait
// histogram per priority class; it cannot include this header (obs sits
// below serve), so the mirror constant is pinned here instead.
static_assert(kNumPriorityClasses == obs::kNumPriorityClasses,
              "update obs::kNumPriorityClasses (and the class-name table "
              "in observability.cc) when serve adds a priority class");

double SteadyNowMicros() {
  // Measurement-only wall clock: stamps arrival/queue-wait in the real
  // threaded mode. It never feeds exec_micros or any replayed quantity —
  // RunSimulated derives queue waits purely from virtual time.
  return std::chrono::duration<double, std::micro>(
             // svqa-lint: allow(virtual-time)
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RequestScheduler::RequestScheduler(AdmissionQueue* queue,
                                   const GraphSnapshotStore* store,
                                   StatsCollector* stats,
                                   SchedulerOptions options)
    : queue_(queue), store_(store), stats_(stats), options_(options) {}

RequestScheduler::~RequestScheduler() { Drain(); }

void RequestScheduler::Start() {
  if (pool_ != nullptr) return;
  const std::size_t workers = std::max<std::size_t>(1, options_.num_workers);
  pool_ = std::make_unique<ThreadPool>(workers);
  // The pool's tasks ARE the long-running worker loops: each parks on
  // the admission queue and exits when intake closes and the queue
  // drains, which is exactly when ThreadPool::Shutdown can join.
  for (std::size_t i = 0; i < workers; ++i) {
    pool_->Submit([this, i] { WorkerLoop(i); });
  }
}

void RequestScheduler::Drain() {
  queue_->CloseIntake();
  if (pool_ != nullptr) pool_->Shutdown();
}

void RequestScheduler::WorkerLoop(std::size_t worker) {
  QueuedRequest req;
  while (queue_->PopBlocking(&req)) {
    const double queue_wait =
        std::max(0.0, SteadyNowMicros() - req.arrival_micros);
    ServeResponse resp = Dispatch(req, queue_wait, /*simulated=*/false,
                                  static_cast<uint32_t>(worker));
    if (options_.slo != nullptr) {
      options_.slo->Record(resp.priority,
                           req.arrival_micros + resp.latency_micros,
                           resp.latency_micros, req.id);
    }
    stats_->RecordOutcome(resp);
    req.ticket->Complete(std::move(resp));
  }
}

ServeResponse RequestScheduler::Dispatch(QueuedRequest& req,
                                         double queue_wait_micros,
                                         bool simulated,
                                         uint32_t lane) const {
  ServeResponse resp;
  resp.priority = req.options.priority;
  resp.queue_wait_micros = queue_wait_micros;
  resp.latency_micros = queue_wait_micros;

  // Per-request telemetry: one Tracer when the sampler selects this id
  // (or the request asked for EXPLAIN ANALYZE, which forces one on even
  // with observability disabled), a Scope bundling it with the shared
  // metric handles and this worker's flight lane. The queue-wait
  // histogram is integer micros so the snapshot sums are
  // order-independent.
  obs::Scope scope;
  const bool telemetry = options_.obs != nullptr && options_.obs->enabled();
  if (telemetry && options_.obs->ShouldTrace(req.id)) {
    resp.trace = std::make_shared<obs::Tracer>(req.id);
  }
  if (req.options.explain && resp.trace == nullptr) {
    resp.trace = std::make_shared<obs::Tracer>(req.id);
  }
  if (telemetry) {
    scope = options_.obs->MakeScope(resp.trace.get(), lane, req.id);
    const obs::StackMetrics* m = scope.metrics;
    m->serve_requests->Incr();
    m->serve_queue_wait_micros[static_cast<int>(req.options.priority)]
        ->Record(static_cast<uint64_t>(queue_wait_micros));
  } else if (resp.trace != nullptr) {
    // Explain without observability: trace-only scope, no metrics, no
    // flight recorder.
    scope.tracer = resp.trace.get();
    scope.query_id = req.id;
  }
  if (resp.trace != nullptr) {
    // Queue wait precedes the request's clock origin: record it over
    // [-wait, 0] so the execution subtree still starts at t=0 and is
    // byte-identical whatever the queue did.
    resp.trace->SpanAt("serve.queue_wait", -queue_wait_micros, 0.0);
  }

  // Cancelled while queued: zero execution cost, the worker moves on.
  if (req.ticket->cancel_token().cancelled()) {
    resp.status = Status::Cancelled("cancelled before dispatch");
    return resp;
  }

  const SnapshotPtr snap = store_->Current();
  if (snap == nullptr) {
    resp.status =
        Status::InvalidArgument("no graph snapshot published yet");
    return resp;
  }
  resp.snapshot_id = snap->id();

  // The request's own clock measures only work done on its behalf
  // (parse + execution), never queue wait — so exec_micros is a pure
  // function of the query, bit-identical whatever the queue did. The
  // deadline budget still covers queue wait in simulated mode: the wait
  // is deducted from the budget arithmetically, below.
  SimClock clock;

  // Remaining work budget on this clock (infinity = unbounded). In
  // simulated mode the budget counts from arrival, so a long queue wait
  // can exhaust it here, before any execution; in threaded mode queue
  // wait is host time and the budget bounds the virtual work only.
  const bool bounded = std::isfinite(req.deadline_abs_micros) &&
                       req.options.deadline_micros > 0;
  double work_budget = std::numeric_limits<double>::infinity();
  if (bounded) {
    work_budget = req.options.deadline_micros -
                  (simulated ? queue_wait_micros : 0.0);
    if (work_budget <= 0) {
      resp.status =
          Status::DeadlineExceeded("deadline expired while queued");
      return resp;
    }
  }

  // Parse on the worker when the request carries a raw question; parse
  // cost is charged to the request's clock (and counts against its
  // deadline) like any other work done on its behalf.
  const query::QueryGraph* graph = &req.graph;
  query::QueryGraph parsed;
  if (req.needs_parse) {
    if (options_.parser == nullptr) {
      resp.status = Status::InvalidArgument(
          "SubmitQuestion requires ServerOptions::parser");
      return resp;
    }
    Result<query::QueryGraph> p = [&] {
      obs::Span parse_span(&scope, &clock, "serve.parse");
      return options_.parser->Build(req.question, &clock);
    }();
    if (!p.ok()) {
      resp.status = p.status();
      resp.exec_micros = clock.ElapsedMicros();
      resp.latency_micros = queue_wait_micros + resp.exec_micros;
      return resp;
    }
    parsed = std::move(p).ValueOrDie();
    graph = &parsed;
    if (clock.ElapsedMicros() >= work_budget) {
      resp.status = Status::DeadlineExceeded("deadline expired during parse");
      resp.exec_micros = clock.ElapsedMicros();
      resp.latency_micros = queue_wait_micros + resp.exec_micros;
      return resp;
    }
  }

  // Execution under the request's remaining budget, its cancellation
  // token, and the server-wide fault policy / retry configuration.
  exec::ResilienceOptions res = options_.resilience;
  res.cancel = &req.ticket->cancel_token();
  res.query_deadline_micros =
      bounded ? work_budget - clock.ElapsedMicros() : 0;
  if (telemetry || resp.trace != nullptr) {
    res.obs = &scope;  // outlives the resilient call below
  }

  exec::Diagnostics diag;
  Result<exec::Answer> r = snap->executor().ExecuteResilient(
      *graph, &clock, res, /*salt=*/req.id, &diag);
  resp.status = r.status();
  if (r.ok()) {
    resp.answer = std::move(r).ValueOrDie();
  } else {
    resp.answer.diagnostics = diag;
  }
  resp.answer.diagnostics.queue_wait_micros = queue_wait_micros;
  resp.answer.diagnostics.snapshot_id = snap->id();
  resp.answer.diagnostics.priority_class =
      static_cast<int>(req.options.priority);

  resp.exec_micros = clock.ElapsedMicros();
  resp.latency_micros = queue_wait_micros + resp.exec_micros;

  // EXPLAIN ANALYZE: join the forced trace with the diagnostics into
  // the per-quadruple cost report. Cache counters stay absent — the
  // serve path meters into the shared registry. A report that cannot
  // be built (unparseable trace) degrades to no report, not an error.
  if (req.options.explain && resp.trace != nullptr) {
    exec::CacheCounters no_cache;
    Result<exec::QueryCostReport> report = exec::BuildQueryCostReport(
        *graph, *resp.trace, resp.answer.diagnostics, no_cache);
    if (report.ok()) {
      resp.cost_report = std::make_shared<const exec::QueryCostReport>(
          std::move(report).ValueOrDie());
    }
  }
  return resp;
}

double RequestScheduler::RunSimulated(std::vector<QueuedRequest> workload) {
  const std::size_t workers = std::max<std::size_t>(1, options_.num_workers);
  std::vector<double> free_at(workers, 0.0);
  std::size_t next = 0;
  const std::size_t n = workload.size();
  double makespan = 0;

  // Moves one arrival through admission control at its virtual arrival
  // instant. Sheds (and pre-run cancellations) complete immediately with
  // zero service time.
  const auto admit_one = [&](QueuedRequest& req) {
    const PriorityClass priority = req.options.priority;
    TicketPtr ticket = req.ticket;
    if (ticket->cancel_token().cancelled()) {
      ServeResponse resp;
      resp.priority = priority;
      resp.status = Status::Cancelled("cancelled before dispatch");
      stats_->RecordOutcome(resp);
      ticket->Complete(std::move(resp));
      return;
    }
    Status admitted = queue_->Admit(std::move(req));
    if (admitted.ok()) return;
    stats_->RecordShed(priority);
    if (options_.obs != nullptr && options_.obs->enabled()) {
      options_.obs->stack()
          ->serve_sheds[static_cast<int>(priority)]
          ->Incr();
    }
    ServeResponse resp;
    resp.priority = priority;
    resp.status = std::move(admitted);
    ticket->Complete(std::move(resp));
  };

  for (;;) {
    // Earliest-free virtual worker; ties break to the lowest index so
    // the whole event loop is deterministic.
    std::size_t w = 0;
    for (std::size_t i = 1; i < free_at.size(); ++i) {
      if (free_at[i] < free_at[w]) w = i;
    }

    if (queue_->size() == 0) {
      if (next >= n) break;
      // Jump to the next arrival instant; admit everything arriving at
      // exactly that instant as one batch (submit order within it).
      const double t = workload[next].arrival_micros;
      while (next < n && workload[next].arrival_micros <= t) {
        admit_one(workload[next++]);
      }
      continue;
    }

    // Any arrival no later than the candidate dispatch instant must be
    // admitted first — it may outrank the current queue head under
    // EDF/priority ordering.
    if (next < n && workload[next].arrival_micros <= free_at[w]) {
      const double t = workload[next].arrival_micros;
      while (next < n && workload[next].arrival_micros <= t) {
        admit_one(workload[next++]);
      }
      continue;
    }

    QueuedRequest req;
    if (!queue_->TryPop(&req)) continue;
    const double t_dispatch = std::max(free_at[w], req.arrival_micros);
    const double queue_wait = t_dispatch - req.arrival_micros;
    ServeResponse resp = Dispatch(req, queue_wait, /*simulated=*/true,
                                  /*lane=*/static_cast<uint32_t>(w));
    free_at[w] = t_dispatch + resp.exec_micros;
    makespan = std::max(makespan, free_at[w]);
    if (options_.slo != nullptr) {
      // Same completion formula as the threaded loop: arrival +
      // latency (== t_dispatch + exec on the virtual timeline).
      options_.slo->Record(resp.priority,
                           req.arrival_micros + resp.latency_micros,
                           resp.latency_micros, req.id);
    }
    stats_->RecordOutcome(resp);
    req.ticket->Complete(std::move(resp));
  }
  return makespan;
}

}  // namespace svqa::serve
