#include "serve/stats.h"

#include <cstdio>

namespace svqa::serve {

const char* PriorityClassName(PriorityClass c) {
  switch (c) {
    case PriorityClass::kInteractive:
      return "interactive";
    case PriorityClass::kBatch:
      return "batch";
    case PriorityClass::kBestEffort:
      return "best-effort";
  }
  return "unknown";
}

void ClassStats::Accumulate(const ClassStats& other) {
  submitted += other.submitted;
  shed += other.shed;
  completed += other.completed;
  failed += other.failed;
  cancelled += other.cancelled;
  deadline_missed += other.deadline_missed;
  queue_wait_micros_sum += other.queue_wait_micros_sum;
  exec_micros_sum += other.exec_micros_sum;
  latency_micros_sum += other.latency_micros_sum;
}

ClassStats ServerStats::Totals() const {
  ClassStats total;
  for (const ClassStats& c : per_class) total.Accumulate(c);
  return total;
}

std::string ServerStats::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-12s %9s %6s %6s %6s %6s %8s\n",
                "class", "submitted", "ok", "shed", "fail", "cancel",
                "dl-miss");
  out += line;
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    const ClassStats& s = per_class[c];
    std::snprintf(line, sizeof(line),
                  "%-12s %9llu %6llu %6llu %6llu %6llu %8llu\n",
                  PriorityClassName(static_cast<PriorityClass>(c)),
                  static_cast<unsigned long long>(s.submitted),
                  static_cast<unsigned long long>(s.completed),
                  static_cast<unsigned long long>(s.shed),
                  static_cast<unsigned long long>(s.failed),
                  static_cast<unsigned long long>(s.cancelled),
                  static_cast<unsigned long long>(s.deadline_missed));
    out += line;
  }
  std::snprintf(line, sizeof(line), "publishes: %llu (latest snapshot %llu)\n",
                static_cast<unsigned long long>(publishes),
                static_cast<unsigned long long>(latest_snapshot_id));
  out += line;
  if (recovery_rung >= 0) {
    std::snprintf(line, sizeof(line), "recovery rung: %d\n", recovery_rung);
    out += line;
  }
  if (flight_records > 0) {
    std::snprintf(line, sizeof(line), "flight records: %llu\n",
                  static_cast<unsigned long long>(flight_records));
    out += line;
  }
  return out;
}

void StatsCollector::RecordSubmitted(PriorityClass c) {
  MutexLock lock(&mu_);
  ++stats_.per_class[static_cast<int>(c)].submitted;
}

void StatsCollector::RecordShed(PriorityClass c) {
  MutexLock lock(&mu_);
  ++stats_.per_class[static_cast<int>(c)].shed;
}

void StatsCollector::RecordOutcome(const ServeResponse& response) {
  MutexLock lock(&mu_);
  ClassStats& s = stats_.per_class[static_cast<int>(response.priority)];
  if (response.status.ok()) {
    ++s.completed;
  } else if (response.status.IsCancelled()) {
    ++s.cancelled;
  } else if (response.status.IsDeadlineExceeded()) {
    ++s.deadline_missed;
  } else {
    ++s.failed;
  }
  s.queue_wait_micros_sum += response.queue_wait_micros;
  s.exec_micros_sum += response.exec_micros;
  s.latency_micros_sum += response.latency_micros;
}

void StatsCollector::RecordPublish(uint64_t snapshot_id) {
  MutexLock lock(&mu_);
  ++stats_.publishes;
  stats_.latest_snapshot_id = snapshot_id;
}

void StatsCollector::RecordRecovery(int rung) {
  MutexLock lock(&mu_);
  stats_.recovery_rung = rung;
}

ServerStats StatsCollector::Snapshot() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace svqa::serve
