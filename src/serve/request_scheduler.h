#ifndef SVQA_SERVE_REQUEST_SCHEDULER_H_
#define SVQA_SERVE_REQUEST_SCHEDULER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "exec/executor.h"
#include "obs/observability.h"
#include "query/query_graph_builder.h"
#include "serve/admission_queue.h"
#include "serve/graph_snapshot_store.h"
#include "serve/request.h"
#include "serve/slo_monitor.h"
#include "serve/stats.h"
#include "util/thread_pool.h"

namespace svqa::serve {

/// Host steady-clock reading in microseconds — the threaded mode's
/// arrival/queue-wait timeline (absolute, so submitters and workers agree).
double SteadyNowMicros();

/// \brief Scheduler configuration shared by both modes.
struct SchedulerOptions {
  /// Worker count: real util::ThreadPool threads in threaded mode,
  /// virtual workers in simulated mode.
  std::size_t num_workers = 4;
  /// Base resilience applied to every request (retry policy, fault
  /// injection); the per-request deadline and cancellation token are
  /// layered on top at dispatch time.
  exec::ResilienceOptions resilience;
  /// Enables SubmitQuestion: questions parse on the worker, charged to
  /// the request's clock. Not owned; may be nullptr.
  const query::QueryGraphBuilder* parser = nullptr;
  /// Observability domain shared with the owning server (metrics, trace
  /// sampling, flight recorder). Not owned; nullptr disables telemetry.
  /// Worker i records into flight lane i in both modes (virtual worker
  /// index in simulated mode), so lane contents are comparable.
  obs::Observability* obs = nullptr;
  /// SLO monitor fed one record per dispatched request (completion =
  /// arrival + latency, the same formula in both modes, so the window
  /// contents are worker-count invariant in simulated mode). Not owned;
  /// nullptr disables SLO accounting. Sheds never reach dispatch and
  /// are visible in ServerStats instead.
  SloMonitor* slo = nullptr;
};

/// \brief Deadline-aware dispatcher: pulls requests off the
/// AdmissionQueue (strict priority across classes, EDF within), executes
/// them against the store's current snapshot, and completes the tickets.
///
/// Two modes, mirroring BatchExecutor:
///  - *Threaded*: `Start()` parks `num_workers` util::ThreadPool workers
///    on the queue; each shares the snapshot's QueryGraphExecutor +
///    KeyCentricCache. `Drain()` closes intake, lets the workers drain
///    every queued request, and joins — the ThreadPool shutdown
///    contract, one level up.
///  - *Simulated*: `RunSimulated()` replays an open-loop workload on the
///    caller thread through a discrete-event loop over virtual worker
///    free-times. Admission, EDF ordering, queue waits, deadline misses,
///    and sheds are all computed in virtual time — bit-for-bit
///    reproducible across runs and hosts (see DESIGN.md §7).
class RequestScheduler {
 public:
  RequestScheduler(AdmissionQueue* queue, const GraphSnapshotStore* store,
                   StatsCollector* stats, SchedulerOptions options);
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Threaded mode: spawns the pool and parks the worker loops.
  void Start();

  /// Threaded mode: closes queue intake, drains, joins. Idempotent.
  void Drain();

  /// Simulated mode: admits and dispatches `workload` (already sorted by
  /// (arrival, id)) deterministically. Every ticket is completed and
  /// every outcome recorded by the time this returns. Returns the
  /// virtual makespan (latest completion instant; 0 for an empty or
  /// fully-shed workload).
  double RunSimulated(std::vector<QueuedRequest> workload);

  const SchedulerOptions& options() const { return options_; }

 private:
  void WorkerLoop(std::size_t worker);

  /// Executes one popped request against the current snapshot.
  /// `queue_wait_micros` is on the mode's timeline; in simulated mode it
  /// is pre-charged to the request's clock so the end-to-end virtual
  /// deadline covers time spent queued. `lane` is the executing worker's
  /// flight-recorder lane.
  ServeResponse Dispatch(QueuedRequest& req, double queue_wait_micros,
                         bool simulated, uint32_t lane) const;

  AdmissionQueue* queue_;
  const GraphSnapshotStore* store_;
  StatsCollector* stats_;
  SchedulerOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace svqa::serve

#endif  // SVQA_SERVE_REQUEST_SCHEDULER_H_
