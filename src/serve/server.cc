#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "exec/scheduler.h"
#include "serve/durability.h"

namespace svqa::serve {

Status ServerOptions::Validate() const {
  if (num_workers == 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  SVQA_RETURN_NOT_OK(admission.Validate());
  SVQA_RETURN_NOT_OK(slo.Validate());
  return obs.Validate();
}

SvqaServer::SvqaServer(GraphSnapshotStore* store, ServerOptions options)
    : store_(store),
      options_(std::move(options)),
      queue_(options_.admission),
      // Invalid obs options never construct a (silently clamped)
      // recorder; the clear Status surfaces from Start()'s Validate.
      obs_(options_.obs.enabled && options_.obs.Validate().ok()
               ? std::make_unique<obs::Observability>(
                     options_.obs,
                     static_cast<uint32_t>(options_.num_workers) + 1)
               : nullptr),
      slo_(options_.slo.Validate().ok() ? options_.slo : SloOptions{}),
      scheduler_(&queue_, store_, &stats_,
                 SchedulerOptions{options_.num_workers, options_.resilience,
                                  options_.parser, obs_.get(), &slo_}) {}

SvqaServer::~SvqaServer() { Shutdown(); }

Status SvqaServer::Start() {
  SVQA_RETURN_NOT_OK(options_.Validate());
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  if (obs_ != nullptr && store_->durability() != nullptr) {
    store_->durability()->SetMetrics(obs_->stack());
  }
  if (options_.mode == ServeMode::kThreaded) scheduler_.Start();
  return Status::OK();
}

Result<storage::RecoveryReport> SvqaServer::WarmStart() {
  SnapshotDurability* durability = store_->durability();
  if (durability == nullptr) {
    return Status::InvalidArgument(
        "WarmStart requires a store constructed with "
        "SnapshotStoreOptions::durability");
  }
  // Wire the obs handles before recovery runs so the rung counters and
  // WAL replay totals land in the registry (WarmStart precedes Start).
  if (obs_ != nullptr) durability->SetMetrics(obs_->stack());
  Result<storage::RecoveryReport> report = durability->WarmStart(store_);
  if (report.ok()) {
    if (report->rung != storage::RecoveryRung::kColdStart) {
      stats_.RecordRecovery(static_cast<int>(report->rung));
    }
    if (obs_ != nullptr) {
      obs_->stack()->serve_recovery_rung->Set(
          static_cast<int64_t>(report->rung));
    }
  }
  return report;
}

TicketPtr SvqaServer::Submit(const query::QueryGraph& graph,
                             const RequestOptions& options) {
  QueuedRequest req;
  req.graph = graph;
  req.options = options;
  return SubmitInternal(std::move(req));
}

TicketPtr SvqaServer::SubmitQuestion(const std::string& question,
                                     const RequestOptions& options) {
  QueuedRequest req;
  req.question = question;
  req.needs_parse = true;
  req.options = options;
  return SubmitInternal(std::move(req));
}

std::vector<TicketPtr> SvqaServer::SubmitBatch(
    const std::vector<query::QueryGraph>& graphs,
    const RequestOptions& options) {
  std::vector<int> order(graphs.size());
  std::iota(order.begin(), order.end(), 0);
  if (options_.schedule_batches && graphs.size() > 1) {
    std::vector<const query::QueryGraph*> ptrs;
    ptrs.reserve(graphs.size());
    for (const query::QueryGraph& g : graphs) ptrs.push_back(&g);
    order = exec::ScheduleQueries(ptrs).order;
  }
  // Submit in §V-B order (cache-warming graphs first — their submit
  // sequence ids break EDF ties), return tickets in input order.
  std::vector<TicketPtr> tickets(graphs.size());
  for (int idx : order) tickets[idx] = Submit(graphs[idx], options);
  return tickets;
}

TicketPtr SvqaServer::SubmitInternal(QueuedRequest req) {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req.id = id;
  const PriorityClass priority = req.options.priority;
  const bool simulated = options_.mode == ServeMode::kSimulated;
  req.arrival_micros = simulated ? std::max(0.0, req.options.arrival_micros)
                                 : SteadyNowMicros();
  const double budget = req.options.deadline_micros;
  req.deadline_abs_micros = std::isfinite(budget) && budget > 0
                                ? req.arrival_micros + budget
                                : std::numeric_limits<double>::infinity();
  TicketPtr ticket = std::make_shared<ServeTicket>(id);
  req.ticket = ticket;

  stats_.RecordSubmitted(priority);
  bool shed_on_shutdown = false;
  {
    MutexLock lock(&mu_);
    PruneTicketsLocked();
    tickets_.emplace(id, ticket);
    if (simulated) {
      if (shutdown_.load(std::memory_order_acquire)) {
        shed_on_shutdown = true;
      } else {
        workload_.push_back(std::move(req));
      }
    }
  }

  if (simulated) {
    if (shed_on_shutdown) {
      stats_.RecordShed(priority);
      RecordShedMetric(priority);
      ServeResponse resp;
      resp.priority = priority;
      resp.status =
          Status::ResourceExhausted("admission closed (server draining)");
      ticket->Complete(std::move(resp));
    }
    return ticket;
  }

  Status admitted = queue_.Admit(std::move(req));
  if (!admitted.ok()) {
    stats_.RecordShed(priority);
    RecordShedMetric(priority);
    ServeResponse resp;
    resp.priority = priority;
    resp.status = std::move(admitted);
    ticket->Complete(std::move(resp));
  }
  return ticket;
}

bool SvqaServer::Cancel(uint64_t id) {
  TicketPtr ticket;
  {
    MutexLock lock(&mu_);
    auto it = tickets_.find(id);
    if (it == tickets_.end()) return false;
    ticket = it->second;
  }
  if (ticket->done()) return false;
  ticket->RequestCancel();
  // A still-queued threaded request is pulled out and completed right
  // here — no worker time spent, queue slot freed immediately. Simulated
  // requests observe the sticky flag when the event loop reaches them.
  QueuedRequest req;
  if (options_.mode == ServeMode::kThreaded && queue_.Remove(id, &req)) {
    ServeResponse resp;
    resp.priority = req.options.priority;
    resp.status = Status::Cancelled("cancelled while queued");
    resp.queue_wait_micros =
        std::max(0.0, SteadyNowMicros() - req.arrival_micros);
    resp.latency_micros = resp.queue_wait_micros;
    stats_.RecordOutcome(resp);
    req.ticket->Complete(std::move(resp));
  }
  return true;
}

void SvqaServer::RecordShedMetric(PriorityClass priority) {
  if (obs_ == nullptr) return;
  obs_->stack()->serve_sheds[static_cast<int>(priority)]->Incr();
}

uint64_t SvqaServer::Publish(aggregator::MergedGraph merged) {
  const uint64_t id = store_->Publish(std::move(merged));
  stats_.RecordPublish(id);
  if (obs_ != nullptr) {
    obs_->stack()->serve_publishes->Incr();
    // Lifecycle events land in the extra lane past the workers; the
    // "query id" slot carries the snapshot id.
    obs::FlightRecord rec;
    rec.query_id = id;
    rec.name = "serve.publish";
    obs_->flight()->Record(static_cast<uint32_t>(options_.num_workers), rec);
  }
  return id;
}

double SvqaServer::RunSimulated() {
  if (options_.mode != ServeMode::kSimulated) return 0;
  std::vector<QueuedRequest> workload;
  {
    MutexLock lock(&mu_);
    workload.swap(workload_);
  }
  // Deterministic replay order: (arrival instant, submit sequence).
  std::sort(workload.begin(), workload.end(),
            [](const QueuedRequest& a, const QueuedRequest& b) {
              if (a.arrival_micros != b.arrival_micros) {
                return a.arrival_micros < b.arrival_micros;
              }
              return a.id < b.id;
            });
  return scheduler_.RunSimulated(std::move(workload));
}

void SvqaServer::Shutdown() {
  if (shutdown_.exchange(true)) return;
  // Threaded: stop intake, drain every queued request, join the workers
  // (the ThreadPool contract, one level up). Simulated: just closes the
  // admission queue.
  scheduler_.Drain();
  // Anything still queued (possible only when the server was never
  // started) owes its submitter a terminal response.
  QueuedRequest queued;
  while (queue_.TryPop(&queued)) {
    ServeResponse resp;
    resp.priority = queued.options.priority;
    resp.status = Status::Cancelled("server shut down before dispatch");
    stats_.RecordOutcome(resp);
    queued.ticket->Complete(std::move(resp));
  }
  // Simulated requests that never got a RunSimulated still owe their
  // submitters a response.
  std::vector<QueuedRequest> leftover;
  {
    MutexLock lock(&mu_);
    leftover.swap(workload_);
  }
  for (QueuedRequest& req : leftover) {
    ServeResponse resp;
    resp.priority = req.options.priority;
    resp.status = Status::Cancelled("server shut down before simulation ran");
    stats_.RecordOutcome(resp);
    req.ticket->Complete(std::move(resp));
  }
}

ServerStats SvqaServer::Stats() const {
  ServerStats stats = stats_.Snapshot();
  stats.latest_snapshot_id = store_->latest_id();
  if (obs_ != nullptr) {
    stats.flight_records = obs_->flight()->TotalRecorded();
  }
  return stats;
}

std::string SvqaServer::StatszText() const {
  std::string out = "== svqa statsz ==\n";
  out += Stats().ToString();
  out += slo_.Snapshot().ToText();
  return out;
}

std::string SvqaServer::MetricsJson() const {
  return obs_ != nullptr ? obs_->MetricsJson() : std::string("{}\n");
}

std::string SvqaServer::DumpFlightRecorder() const {
  return obs_ != nullptr ? obs_->DumpFlightRecorder() : std::string();
}

void SvqaServer::PruneTicketsLocked() {
  if (tickets_.size() < 4096) return;
  for (auto it = tickets_.begin(); it != tickets_.end();) {
    if (it->second->done()) {
      it = tickets_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace svqa::serve
