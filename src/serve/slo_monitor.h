#ifndef SVQA_SERVE_SLO_MONITOR_H_
#define SVQA_SERVE_SLO_MONITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.h"
#include "util/mutex.h"
#include "util/status.h"

namespace svqa::serve {

/// \brief SLO monitor knobs, validated where embedded
/// (`ServerOptions`).
struct SloOptions {
  /// Sliding-window length in virtual micros.
  double window_micros = 60'000'000;
  /// Ring granularity: the window is a ring of this many time buckets;
  /// requests older than the whole ring are dropped (counted as
  /// late_drops), never silently mixed into fresh buckets.
  uint32_t num_buckets = 60;
  /// Per-class latency targets (virtual micros): a request over its
  /// class target is an SLO violation feeding the burn rate.
  uint64_t latency_target_micros[kNumPriorityClasses] = {
      1'000'000, 10'000'000, 100'000'000};
  /// Fraction of requests that must meet the target (0.99 -> a 1%
  /// violation budget).
  double objective = 0.99;
  /// Slow-request exemplars kept per class per snapshot — query ids
  /// linking the histogram tail to flight-recorder entries.
  uint32_t max_exemplars = 4;

  SVQA_NODISCARD Status Validate() const;
};

/// \brief One slow-request exemplar: enough to find the query in the
/// flight recorder / trace dump.
struct SloExemplar {
  uint64_t query_id = 0;
  double latency_micros = 0;
};

/// \brief Deterministic snapshot of the sliding window, taken at the
/// high-water completion time (or an explicit `now`).
///
/// Everything rendered is either an integer count, an integer bucket
/// bound, or a ratio of integers — never an accumulated double sum —
/// so ToText() is byte-identical across runs and worker counts as long
/// as the same (completion, latency) pairs were recorded, in any order.
struct SloSnapshot {
  struct PerClass {
    uint64_t count = 0;
    /// Requests over the class latency target.
    uint64_t over_target = 0;
    /// Nearest-rank percentiles as the inclusive upper bound of the
    /// latency bucket holding the rank; -1 = empty window, -2 = the
    /// overflow bucket (rendered "inf").
    int64_t p50 = -1;
    int64_t p95 = -1;
    int64_t p99 = -1;
    /// (violation fraction) / (violation budget); > 1 means the class
    /// is burning error budget faster than the objective allows.
    double burn_rate = 0;
    bool overloaded = false;
    /// Slowest requests in the window, (latency desc, id asc).
    std::vector<SloExemplar> exemplars;
  };

  double window_micros = 0;
  double objective = 0;
  uint64_t late_drops = 0;
  PerClass classes[kNumPriorityClasses];

  /// Byte-stable dashboard section (one line per class + exemplars).
  std::string ToText() const;
};

/// \brief Serve-layer SLO monitor: per-priority-class latency
/// percentiles over a sliding window of *virtual* time, plus an
/// overload / burn-rate signal.
///
/// The window is a ring of `num_buckets` time buckets addressed by
/// absolute bucket index (completion time / bucket width), each holding
/// a log-spaced latency histogram, a violation count, and the bucket's
/// slowest exemplars. Recording is O(1); a snapshot merges the live
/// buckets. Reclaiming a slot resets it for the new index, and a
/// completion older than the whole ring is counted in `late_drops`
/// rather than polluting a fresh bucket.
///
/// Time is the *virtual* completion time supplied by the scheduler
/// (arrival + latency), identical across worker counts, so window
/// contents — and the rendered dashboard — are too. Thread-safe; the
/// threaded scheduler records from every worker.
class SloMonitor {
 public:
  explicit SloMonitor(SloOptions options = {});
  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// Records one completed request.
  void Record(PriorityClass priority, double completion_micros,
              double latency_micros, uint64_t query_id);

  /// Snapshot at the high-water completion time seen so far.
  SloSnapshot Snapshot() const;
  /// Snapshot with an explicit window end.
  SloSnapshot SnapshotAt(double now_micros) const;

  uint64_t late_drops() const;
  const SloOptions& options() const { return options_; }

  /// The shared latency bucket bounds (inclusive upper bounds, virtual
  /// micros; one implicit overflow bucket above the last). Exposed for
  /// the property test's exact-quantile cross-check.
  static const std::vector<uint64_t>& LatencyBounds();

 private:
  struct TimeBucket {
    static constexpr uint64_t kUnused = ~uint64_t{0};
    uint64_t index = kUnused;  // absolute bucket index, kUnused = empty
    std::vector<uint64_t> counts;  // per latency bound + overflow
    uint64_t count = 0;
    uint64_t over_target = 0;
    std::vector<SloExemplar> exemplars;
  };

  double bucket_width_micros() const {
    return options_.window_micros / options_.num_buckets;
  }

  SloOptions options_;
  mutable Mutex mu_;
  /// classes_[c][slot]; slot = absolute index % num_buckets.
  std::vector<std::vector<TimeBucket>> classes_ SVQA_GUARDED_BY(mu_);
  double high_water_micros_ SVQA_GUARDED_BY(mu_) = 0;
  uint64_t late_drops_ SVQA_GUARDED_BY(mu_) = 0;
};

}  // namespace svqa::serve

#endif  // SVQA_SERVE_SLO_MONITOR_H_
