#include "serve/admission_queue.h"

#include <algorithm>
#include <string>
#include <utility>

namespace svqa::serve {

Status AdmissionOptions::Validate() const {
  if (max_queue_depth == 0) {
    return Status::InvalidArgument("max_queue_depth must be positive");
  }
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    if (class_depth[c] == 0) {
      return Status::InvalidArgument("class_depth must be positive");
    }
    if (rate_per_second[c] > 0 && burst[c] < 1) {
      return Status::InvalidArgument(
          "burst must be >= 1 for a rate-limited class");
    }
  }
  return Status::OK();
}

AdmissionQueue::AdmissionQueue(AdmissionOptions options)
    : options_(options) {
  MutexLock lock(&mu_);
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    // Buckets start full so a burst at t=0 admits up to `burst` requests.
    tokens_[c] = options_.burst[c];
    last_refill_[c] = 0;
  }
}

Status AdmissionQueue::Admit(QueuedRequest req) {
  const auto c = static_cast<int>(req.options.priority);
  const char* klass = PriorityClassName(req.options.priority);
  MutexLock lock(&mu_);
  if (closed_) {
    return Status::ResourceExhausted("admission closed (server draining)");
  }
  if (total_ >= options_.max_queue_depth) {
    return Status::ResourceExhausted(
        "queue full (" + std::to_string(total_) + "/" +
        std::to_string(options_.max_queue_depth) + ")");
  }
  if (queues_[c].size() >= options_.class_depth[c]) {
    return Status::ResourceExhausted(
        std::string(klass) + " queue full (" +
        std::to_string(queues_[c].size()) + "/" +
        std::to_string(options_.class_depth[c]) + ")");
  }
  if (options_.rate_per_second[c] > 0) {
    // Refill from the class's last admission instant; clamp so a
    // slightly out-of-order arrival (threaded submitters race) never
    // rewinds the bucket.
    const double now = std::max(req.arrival_micros, last_refill_[c]);
    tokens_[c] = std::min(
        options_.burst[c],
        tokens_[c] +
            (now - last_refill_[c]) * options_.rate_per_second[c] / 1e6);
    last_refill_[c] = now;
    // The refill accumulates increments, so a bucket that is exactly
    // due can sit one ulp short of a full token; don't shed over
    // rounding noise.
    if (tokens_[c] < 1.0 - 1e-9) {
      return Status::ResourceExhausted(std::string(klass) +
                                       " rate limit exceeded");
    }
    tokens_[c] = std::max(0.0, tokens_[c] - 1.0);
  }
  queues_[c].emplace(OrderKey{req.deadline_abs_micros, req.id},
                     std::move(req));
  ++total_;
  cv_.NotifyOne();
  return Status::OK();
}

bool AdmissionQueue::PopLocked(QueuedRequest* out) {
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    auto it = queue.begin();
    *out = std::move(it->second);
    queue.erase(it);
    --total_;
    return true;
  }
  return false;
}

bool AdmissionQueue::PopBlocking(QueuedRequest* out) {
  MutexLock lock(&mu_);
  cv_.WaitUntil(&mu_, [this]() SVQA_REQUIRES(mu_) {
    return total_ > 0 || closed_;
  });
  return PopLocked(out);
}

bool AdmissionQueue::TryPop(QueuedRequest* out) {
  MutexLock lock(&mu_);
  return PopLocked(out);
}

bool AdmissionQueue::Remove(uint64_t id, QueuedRequest* out) {
  MutexLock lock(&mu_);
  for (auto& queue : queues_) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->second.id != id) continue;
      *out = std::move(it->second);
      queue.erase(it);
      --total_;
      return true;
    }
  }
  return false;
}

void AdmissionQueue::CloseIntake() {
  MutexLock lock(&mu_);
  closed_ = true;
  // Wake every parked worker: those finding the queue drained exit.
  cv_.NotifyAll();
}

std::size_t AdmissionQueue::size() const {
  MutexLock lock(&mu_);
  return total_;
}

std::size_t AdmissionQueue::class_size(PriorityClass c) const {
  MutexLock lock(&mu_);
  return queues_[static_cast<int>(c)].size();
}

}  // namespace svqa::serve
