#ifndef SVQA_NLP_SPOC_EXTRACTOR_H_
#define SVQA_NLP_SPOC_EXTRACTOR_H_

#include <string>
#include <vector>

#include "nlp/dependency_parser.h"
#include "text/lexicon.h"
#include "util/result.h"

namespace svqa::nlp {

/// \brief One nominal element (subject or object) of a SPOC quadruple.
struct SpocElement {
  /// Surface phrase, e.g. "harry potter's girlfriend".
  std::string text;
  /// Canonical singular head noun, e.g. "girlfriend", "clothes".
  std::string head;
  /// Possessive owner phrase ("harry potter"), empty when none.
  std::string owner;
  /// Head of an embedded "of" modifier that was *not* collapsed (e.g.
  /// "robe" in "the color of the robe"); empty when none. Kind-words
  /// collapse onto their modifier instead and leave this empty.
  std::string of_head;
  /// Attribute constraint from an adjectival modifier ("a *red* robe");
  /// empty when none. The matcher keeps only candidates carrying a
  /// matching has-attribute edge.
  std::string attribute;
  /// True when this element is the value the question asks for
  /// ("what kind of clothes", "how many dogs").
  bool is_variable = false;
  /// True when the question asks for the *kind/type* of the head
  /// ("what kind of clothes" -> head "clothes", want_kind).
  bool want_kind = false;

  bool empty() const { return head.empty(); }
};

/// \brief The SPOC quadruple of one clause (paper §II): subject,
/// predicate, object, constraint. Passive clauses with an explicit agent
/// are normalized to active voice (subject := agent, object := patient,
/// predicate := base lemma), matching the paper's Example 4 conversion of
/// "are worn" to "wear".
struct Spoc {
  SpocElement subject;
  /// Canonical predicate lemma ("wear", "hang-out", "near").
  std::string predicate;
  SpocElement object;
  /// Constraint phrase c_c ("most frequently"), empty when none.
  std::string constraint;
  /// Index of the originating clause in sentence order.
  int clause_index = 0;

  std::string ToString() const;
};

/// \brief The three MVQA answer modes (§V, following OK-VQA [34]).
enum class QuestionType { kJudgment, kCounting, kReasoning };

std::string_view QuestionTypeName(QuestionType type);

/// \brief Extractor output: ordered SPOCs plus the detected answer mode.
struct SpocExtraction {
  std::vector<Spoc> spocs;
  QuestionType type = QuestionType::kReasoning;
};

/// \brief The state machine of §IV-B: walks each clause of a parsed
/// question and produces its SPOC, resolving relative-pronoun coreference
/// through acl edges ("who" -> "wizard") and normalizing voice and
/// inflection.
class SpocExtractor {
 public:
  /// \param lexicon canonicalizes predicates ("worn"/"wearing" -> "wear").
  explicit SpocExtractor(const text::SynonymLexicon* lexicon);

  /// Extracts SPOCs from a parse. Fails when a clause yields neither a
  /// subject nor an object (unparseable question).
  Result<SpocExtraction> Extract(const ParseOutput& parse,
                                 SimClock* clock = nullptr) const;

 private:
  SpocElement BuildElement(const DependencyTree& tree, int head_token) const;

  const text::SynonymLexicon* lexicon_;
};

}  // namespace svqa::nlp

#endif  // SVQA_NLP_SPOC_EXTRACTOR_H_
