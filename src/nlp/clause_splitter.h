#ifndef SVQA_NLP_CLAUSE_SPLITTER_H_
#define SVQA_NLP_CLAUSE_SPLITTER_H_

#include <string>
#include <vector>

#include "nlp/dependency_parser.h"

namespace svqa::nlp {

/// \brief Renders each clause of a parsed question as standalone text,
/// with relative pronouns replaced by their antecedents ("who is hanging
/// out with ..." -> "wizard is hanging out with ..."). This is the
/// sentence-splitting view the Exp-4 baselines (ABCD, DisSim) produce.
std::vector<std::string> SplitClauses(const ParseOutput& parse);

/// \brief Number of clauses a parsed question contains.
std::size_t ClauseCount(const ParseOutput& parse);

}  // namespace svqa::nlp

#endif  // SVQA_NLP_CLAUSE_SPLITTER_H_
