#include "nlp/clause_splitter.h"

namespace svqa::nlp {

std::vector<std::string> SplitClauses(const ParseOutput& parse) {
  std::vector<std::string> out(parse.clauses.size());
  const DependencyTree& tree = parse.tree;
  for (std::size_t k = 0; k < parse.clauses.size(); ++k) {
    const ClauseInfo& c = parse.clauses[k];
    std::string text;
    for (int i = 0; i < static_cast<int>(tree.size()); ++i) {
      if (parse.clause_of_token[i] != static_cast<int>(k)) continue;
      std::string word = tree.WordOf(i);
      // Replace the relative marker with its antecedent.
      if (i == c.wh_token && c.antecedent >= 0) {
        word = tree.WordOf(c.antecedent);
      }
      if (!text.empty() && word != "'s") text.push_back(' ');
      text += word;
    }
    out[k] = std::move(text);
  }
  return out;
}

std::size_t ClauseCount(const ParseOutput& parse) {
  return parse.clauses.size();
}

}  // namespace svqa::nlp
