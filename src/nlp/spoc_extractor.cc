#include "nlp/spoc_extractor.h"

#include <algorithm>
#include <array>
#include <sstream>

#include "text/inflection.h"

namespace svqa::nlp {

std::string Spoc::ToString() const {
  std::ostringstream os;
  os << "[s=" << subject.text << " | p=" << predicate
     << " | o=" << object.text << " | c=" << constraint << "]";
  return os.str();
}

std::string_view QuestionTypeName(QuestionType type) {
  switch (type) {
    case QuestionType::kJudgment:
      return "judgment";
    case QuestionType::kCounting:
      return "counting";
    case QuestionType::kReasoning:
      return "reasoning";
  }
  return "?";
}

SpocExtractor::SpocExtractor(const text::SynonymLexicon* lexicon)
    : lexicon_(lexicon) {}

namespace {

/// Collects the token indexes of an NP: the head plus its nominal
/// dependents (det, amod, compound, nmod, nmod:poss, case under those).
void CollectNpTokens(const DependencyTree& tree, int head,
                     std::vector<int>* out) {
  out->push_back(head);
  for (int child : tree.ChildrenOf(head)) {
    const std::string& rel = tree.RelOf(child);
    if (rel == "det" || rel == "amod" || rel == "compound" ||
        rel == "nmod" || rel == "nmod:poss" || rel == "case" ||
        rel == "advmod") {
      CollectNpTokens(tree, child, out);
    }
  }
}

std::string RenderTokens(const DependencyTree& tree, std::vector<int> toks) {
  std::sort(toks.begin(), toks.end());
  std::string out;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& w = tree.WordOf(toks[i]);
    if (i > 0 && w != "'s") out.push_back(' ');
    out += w;
  }
  return out;
}

/// Owner phrase of a possessive: the nmod:poss child plus its compounds,
/// without the case clitic.
std::string RenderOwner(const DependencyTree& tree, int owner) {
  std::vector<int> toks{owner};
  for (int child : tree.ChildrenOf(owner)) {
    if (tree.RelOf(child) == "compound") toks.push_back(child);
  }
  return RenderTokens(tree, std::move(toks));
}

bool IsKindWord(const std::string& w) {
  const std::string s = text::SingularNoun(w);
  return s == "kind" || s == "type" || s == "sort";
}

}  // namespace

SpocElement SpocExtractor::BuildElement(const DependencyTree& tree,
                                        int head_token) const {
  SpocElement el;
  if (head_token < 0) return el;

  std::vector<int> np;
  CollectNpTokens(tree, head_token, &np);
  // Drop the phrase-introducing preposition ("by", "with") — a direct
  // case child of the head — but keep embedded ones ("kind *of* clothes").
  const int top_case = tree.ChildWithRel(head_token, "case");
  if (top_case >= 0) {
    np.erase(std::remove(np.begin(), np.end(), top_case), np.end());
  }
  el.text = RenderTokens(tree, np);

  int effective_head = head_token;
  // "kind of X" collapses onto X and marks the kind ask; other "of"
  // modifiers ("the color of the robe") are recorded for downstream
  // rules instead.
  if (IsKindWord(tree.WordOf(head_token))) {
    for (int child : tree.ChildrenOf(head_token)) {
      if (tree.RelOf(child) == "nmod") {
        effective_head = child;
        el.want_kind = true;
        break;
      }
    }
  } else {
    for (int child : tree.ChildrenOf(head_token)) {
      if (tree.RelOf(child) == "nmod") {
        el.of_head = text::SingularNoun(tree.WordOf(child));
        break;
      }
    }
  }
  // Join compound tokens into the head ("harry potter" ->
  // "harry-potter"); named entities live in the graph in kebab case.
  {
    std::vector<int> parts;
    for (int child : tree.ChildrenOf(effective_head)) {
      if (tree.RelOf(child) == "compound") parts.push_back(child);
    }
    std::sort(parts.begin(), parts.end());
    std::string head;
    for (int p : parts) {
      head += tree.WordOf(p);
      head += '-';
    }
    // Proper nouns keep their surface form ("thomas" is not a plural).
    const std::string& tag = tree.TagOf(effective_head);
    if (tag == "NNP" || tag == "NNPS") {
      head += tree.WordOf(effective_head);
    } else {
      head += text::SingularNoun(tree.WordOf(effective_head));
    }
    el.head = std::move(head);
  }

  for (int child : tree.ChildrenOf(effective_head)) {
    if (tree.RelOf(child) == "nmod:poss") {
      el.owner = RenderOwner(tree, child);
    }
    // Adjectival attribute constraints ("red robe"). Only attributes
    // known to the lexicon's color group become filters; qualitative
    // adjectives ("big") stay descriptive.
    if (tree.RelOf(child) == "amod") {
      static const std::array<std::string_view, 7> kColors = {
          "red", "blue", "green", "yellow", "black", "white", "brown"};
      const std::string& word = tree.WordOf(child);
      if (std::find(kColors.begin(), kColors.end(), word) !=
          kColors.end()) {
        el.attribute = word;
      }
    }
  }

  // Variable detection: wh determiner ("what kind", "which wizard") or a
  // "how many" quantifier on the head token or the surface kind-word.
  for (int probe : {head_token, effective_head}) {
    for (int child : tree.ChildrenOf(probe)) {
      const std::string& tag = tree.TagOf(child);
      const std::string& word = tree.WordOf(child);
      if (tag == "WDT" || tag == "WP") el.is_variable = true;
      if (word == "many" && tree.ChildWithRel(child, "advmod") >= 0) {
        el.is_variable = true;
      }
    }
  }
  return el;
}

Result<SpocExtraction> SpocExtractor::Extract(const ParseOutput& parse,
                                              SimClock* clock) const {
  const DependencyTree& tree = parse.tree;
  SpocExtraction out;

  // Question type from the sentence opening.
  if (!tree.tokens().empty()) {
    const std::string& first = tree.WordOf(0);
    if (first == "how" && tree.size() > 1 && tree.WordOf(1) == "many") {
      out.type = QuestionType::kCounting;
    } else if (first == "does" || first == "do" || first == "did" ||
               first == "is" || first == "are" || first == "was" ||
               first == "were") {
      out.type = QuestionType::kJudgment;
    } else {
      out.type = QuestionType::kReasoning;
    }
  }

  for (std::size_t k = 0; k < parse.clauses.size(); ++k) {
    const ClauseInfo& c = parse.clauses[k];
    const int verb = c.main_verb;
    Spoc spoc;
    spoc.clause_index = static_cast<int>(k);

    // --- Predicate ---
    if (c.copular) {
      // Copular clause: the preposition carries the relation ("is ...
      // near the car" -> predicate "near"); bare copula falls back to
      // "be".
      spoc.predicate = "be";
      const int obl = tree.ChildWithRel(verb, "obl");
      if (obl >= 0) {
        const int kase = tree.ChildWithRel(obl, "case");
        if (kase >= 0) spoc.predicate = tree.WordOf(kase);
      }
    } else {
      spoc.predicate = text::VerbLemma(tree.WordOf(verb));
      if (c.particle >= 0) {
        spoc.predicate += "-" + tree.WordOf(c.particle);
      }
    }
    if (lexicon_ != nullptr) {
      spoc.predicate = lexicon_->Canonical(spoc.predicate);
    }

    // --- Grammatical roles ---
    int subj_tok = tree.ChildWithRel(verb, "nsubj");
    if (subj_tok < 0) subj_tok = tree.ChildWithRel(verb, "nsubj:pass");
    int agent_tok = tree.ChildWithRel(verb, "obl:agent");
    int obj_tok = tree.ChildWithRel(verb, "obj");
    bool obj_is_oblique = false;
    if (obj_tok < 0) {
      obj_tok = tree.ChildWithRel(verb, "obl");
      obj_is_oblique = obj_tok >= 0;
    }

    // Locative verbs ("sitting on the bed", "appear near the car"):
    // the scene-graph relation is the preposition, not the verb.
    if (obj_is_oblique) {
      static const std::array<std::string_view, 6> kLocative = {
          "sit", "stand", "lie", "appear", "situate", "locate"};
      const bool locative =
          std::find(kLocative.begin(), kLocative.end(), spoc.predicate) !=
          kLocative.end();
      if (locative) {
        const int kase = tree.ChildWithRel(obj_tok, "case");
        if (kase >= 0) {
          spoc.predicate = tree.WordOf(kase);
          if (lexicon_ != nullptr) {
            spoc.predicate = lexicon_->Canonical(spoc.predicate);
          }
        }
      }
    }

    // Relative-pronoun coreference (§IV-B): a wh subject is replaced by
    // the antecedent noun the clause modifies through the acl edge.
    if (subj_tok >= 0 && IsWhTag(tree.TagOf(subj_tok)) &&
        c.antecedent >= 0) {
      subj_tok = c.antecedent;
    }

    SpocElement subject = BuildElement(tree, subj_tok);
    SpocElement object = BuildElement(tree, obj_tok);

    if (c.passive && agent_tok >= 0) {
      // Active normalization: "X are worn by Y" => [Y, wear, X].
      spoc.subject = BuildElement(tree, agent_tok);
      spoc.object = std::move(subject);
    } else {
      spoc.subject = std::move(subject);
      spoc.object = std::move(object);
    }

    // --- Constraint ---
    // Superlative adverbial chains on the verb ("most frequently").
    for (int adv : tree.ChildrenWithRel(verb, "advmod")) {
      std::vector<int> chain{adv};
      for (int sub : tree.ChildrenWithRel(adv, "advmod")) chain.push_back(sub);
      if (chain.size() > 1 ||
          tree.TagOf(adv) == "RBS" || tree.TagOf(adv) == "RBR") {
        spoc.constraint = RenderTokens(tree, std::move(chain));
        break;
      }
    }

    // Attribute questions: "what is the color of the robe ..." — the
    // copula plus an attribute-word object with an of-modifier becomes a
    // has-attribute query on the modifier ([robe, has-attribute,
    // color?]).
    if (c.copular && spoc.predicate == "be" &&
        spoc.object.head == "color" && !spoc.object.of_head.empty()) {
      nlp::SpocElement owner_el;
      owner_el.text = spoc.object.of_head;
      owner_el.head = spoc.object.of_head;
      nlp::SpocElement color_el;
      color_el.text = "color";
      color_el.head = "color";
      color_el.is_variable = true;
      spoc.subject = std::move(owner_el);
      spoc.predicate = "has-attribute";
      spoc.object = std::move(color_el);
    }

    if (spoc.subject.empty() && spoc.object.empty()) {
      return Status::ParseError("clause " + std::to_string(k) +
                                " yielded no subject or object");
    }
    out.spocs.push_back(std::move(spoc));
  }

  if (clock != nullptr) {
    clock->Charge(CostKind::kParseTransition,
                  static_cast<double>(out.spocs.size()) * 4.0);
  }
  if (out.spocs.empty()) {
    return Status::ParseError("no clauses extracted");
  }
  return out;
}

}  // namespace svqa::nlp
