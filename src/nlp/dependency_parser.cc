#include "nlp/dependency_parser.h"

#include <algorithm>
#include <sstream>

#include "text/inflection.h"

namespace svqa::nlp {

int DependencyTree::ChildWithRel(int head, std::string_view rel) const {
  for (int i = 0; i < static_cast<int>(arcs_.size()); ++i) {
    if (arcs_[i].head == head && arcs_[i].rel == rel) return i;
  }
  return -1;
}

std::vector<int> DependencyTree::ChildrenWithRel(int head,
                                                 std::string_view rel) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(arcs_.size()); ++i) {
    if (arcs_[i].head == head && arcs_[i].rel == rel) out.push_back(i);
  }
  return out;
}

std::vector<int> DependencyTree::ChildrenOf(int head) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(arcs_.size()); ++i) {
    if (arcs_[i].head == head) out.push_back(i);
  }
  return out;
}

int DependencyTree::Root() const {
  for (int i = 0; i < static_cast<int>(arcs_.size()); ++i) {
    if (arcs_[i].rel == "root") return i;
  }
  return -1;
}

std::string DependencyTree::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    os << i << '\t' << tokens_[i].word << '/' << tokens_[i].tag << "\t-"
       << arcs_[i].rel << "-> " << arcs_[i].head << '\n';
  }
  return os.str();
}

namespace {

bool IsRelativeMarkerToken(const TaggedToken& t) {
  return (t.tag == "WP" && (t.word == "who" || t.word == "whom")) ||
         (t.tag == "WDT" && (t.word == "that" || t.word == "which"));
}

/// "who"/"whom" always mark a relative clause in interrogatives; "that"
/// and "which" only after a noun ("the cat *that* sits" vs the
/// sentence-initial determiner "*which* wizard is ...").
bool IsRelativeMarkerAt(const std::vector<TaggedToken>& toks, int i) {
  const TaggedToken& t = toks[static_cast<std::size_t>(i)];
  if (!IsRelativeMarkerToken(t)) return false;
  if (t.tag == "WDT") {
    return i > 0 && IsNounTag(toks[static_cast<std::size_t>(i - 1)].tag);
  }
  return true;
}

struct Workspace {
  const std::vector<TaggedToken>& toks;
  std::vector<DepArc> arcs;
  int transitions = 0;

  explicit Workspace(const std::vector<TaggedToken>& t)
      : toks(t), arcs(t.size()) {}

  int n() const { return static_cast<int>(toks.size()); }

  void Attach(int dep, int head, std::string rel) {
    arcs[dep].head = head;
    arcs[dep].rel = std::move(rel);
    ++transitions;
  }

  bool Attached(int i) const { return !arcs[i].rel.empty(); }

  bool IsNoun(int i) const { return IsNounTag(toks[i].tag); }
  bool IsVerb(int i) const { return IsVerbTag(toks[i].tag); }

  /// A noun that heads its own NP: not folded into another noun phrase
  /// via compound / nmod / nmod:poss.
  bool IsFreeNounHead(int i) const {
    if (!IsNoun(i)) return false;
    const std::string& rel = arcs[i].rel;
    return rel != "compound" && rel != "nmod" && rel != "nmod:poss";
  }
};

/// Raw verb group found by the linear scan.
struct VerbGroup {
  int first = 0;          ///< First token of the contiguous run.
  int main_verb = -1;
  std::vector<int> aux;
  int particle = -1;
  int marker = -1;        ///< Relative marker just before the group, or -1.
  int antecedent = -1;    ///< Noun before the marker, or -1.
};

std::vector<VerbGroup> FindVerbGroups(const Workspace& ws) {
  std::vector<VerbGroup> groups;
  int i = 0;
  while (i < ws.n()) {
    if (!ws.IsVerb(i)) {
      ++i;
      continue;
    }
    VerbGroup g;
    g.first = i;
    std::vector<int> verbs;
    int j = i;
    while (j < ws.n() && (ws.IsVerb(j) || IsAdverbTag(ws.toks[j].tag))) {
      if (ws.IsVerb(j)) verbs.push_back(j);
      ++j;
    }
    g.main_verb = verbs.back();
    for (std::size_t k = 0; k + 1 < verbs.size(); ++k) {
      g.aux.push_back(verbs[k]);
    }
    if (j < ws.n() && ws.toks[j].tag == "RP") {
      g.particle = j;
      ++j;
    }
    // Relative marker directly before the group (over adverbs).
    int b = g.first - 1;
    while (b >= 0 && IsAdverbTag(ws.toks[b].tag)) --b;
    if (b >= 0 && IsRelativeMarkerAt(ws.toks, b)) {
      g.marker = b;
      for (int a = b - 1; a >= 0; --a) {
        if (ws.IsNoun(a)) {
          g.antecedent = a;
          break;
        }
      }
    }
    groups.push_back(std::move(g));
    i = j;
  }
  return groups;
}

bool HasBeAux(const Workspace& ws, const VerbGroup& g) {
  for (int a : g.aux) {
    if (text::IsBeVerb(ws.toks[a].word)) return true;
  }
  return false;
}

}  // namespace

Result<ParseOutput> DependencyParser::Parse(
    const std::vector<TaggedToken>& tagged, SimClock* clock) const {
  if (tagged.empty()) {
    return Status::ParseError("empty sentence");
  }
  Workspace ws(tagged);
  const int n = ws.n();

  // --- Stage 1: verb groups. ----------------------------------------------
  std::vector<VerbGroup> groups = FindVerbGroups(ws);
  if (groups.empty()) {
    return Status::ParseError("no predicate verb found");
  }

  // Fold a bare sentence-leading "does/do/did" into the first later group
  // that is not a relative clause (its semantic host): "Does the cat that
  // is sitting ... appear near ..." folds into "appear".
  {
    std::vector<VerbGroup> kept;
    for (std::size_t k = 0; k < groups.size(); ++k) {
      VerbGroup& g = groups[k];
      const std::string& w = ws.toks[g.main_verb].word;
      const bool bare_aux = g.aux.empty() && g.particle < 0 &&
                            (w == "does" || w == "do" || w == "did") &&
                            k + 1 < groups.size();
      if (!bare_aux) {
        kept.push_back(std::move(g));
        continue;
      }
      std::size_t host = k + 1;
      for (std::size_t m = k + 1; m < groups.size(); ++m) {
        if (groups[m].marker < 0) {
          host = m;
          break;
        }
      }
      groups[host].aux.insert(groups[host].aux.begin(), g.main_verb);
    }
    groups = std::move(kept);
    if (groups.empty()) {
      return Status::ParseError("only auxiliary verbs found");
    }
  }

  // --- Stage 2: clause structure. -----------------------------------------
  // Matrix clause = the first unmarked group (fallback: group 0). Relative
  // clauses own [marker, start of next group's run); the matrix owns
  // everything else.
  int matrix_group = 0;
  for (std::size_t k = 0; k < groups.size(); ++k) {
    if (groups[k].marker < 0) {
      matrix_group = static_cast<int>(k);
      break;
    }
    if (k + 1 == groups.size()) matrix_group = 0;  // all marked: fallback
  }

  std::vector<ClauseInfo> clauses;  // matrix first
  {
    auto make_clause = [&](const VerbGroup& g, bool is_matrix) {
      ClauseInfo c;
      c.main_verb = g.main_verb;
      c.aux = g.aux;
      c.particle = g.particle;
      c.passive = HasBeAux(ws, g) && ws.toks[g.main_verb].tag == "VBN";
      c.copular = g.aux.empty() && text::IsBeVerb(ws.toks[g.main_verb].word);
      c.is_matrix = is_matrix;
      c.wh_token = g.marker;
      c.antecedent = g.antecedent;
      return c;
    };
    clauses.push_back(make_clause(groups[matrix_group], true));
    clauses.front().start = 0;
    clauses.front().end = n;
    for (std::size_t k = 0; k < groups.size(); ++k) {
      if (static_cast<int>(k) == matrix_group) continue;
      ClauseInfo c = make_clause(groups[k], false);
      c.start = groups[k].marker >= 0 ? groups[k].marker : groups[k].first;
      // Span ends at the next group's run start (markers/adverbs before
      // that group stay with it), or the sentence end.
      c.end = n;
      for (std::size_t m = k + 1; m < groups.size(); ++m) {
        if (static_cast<int>(m) == matrix_group) continue;
        const VerbGroup& next = groups[m];
        c.end = next.marker >= 0 ? next.marker : next.first;
        break;
      }
      // The matrix verb group always breaks a relative span (a folded
      // sentence-initial auxiliary does not count; the run start does).
      const VerbGroup& mg = groups[matrix_group];
      if (mg.first > c.start && mg.first < c.end) {
        c.end = mg.first;
      }
      clauses.push_back(std::move(c));
    }
  }

  // Token ownership: relative clauses claim their spans; the matrix gets
  // the rest.
  std::vector<int> clause_of(n, 0);
  for (std::size_t k = 1; k < clauses.size(); ++k) {
    for (int t = clauses[k].start; t < clauses[k].end && t < n; ++t) {
      clause_of[t] = static_cast<int>(k);
    }
  }
  // The folded auxiliary of the matrix belongs to the matrix.
  for (int a : clauses[0].aux) clause_of[a] = 0;

  // --- Stage 3: noun-phrase internal structure. ----------------------------
  // Possessives: OWNER 's HEAD => owner -nmod:poss-> head, 's -case-> owner.
  for (int i = 0; i < n; ++i) {
    if (ws.toks[i].tag != "POS") continue;
    const int owner = i - 1;
    if (owner < 0 || !ws.IsNoun(owner)) continue;
    int head = -1;
    for (int j = i + 1; j < n && clause_of[j] == clause_of[i]; ++j) {
      if (ws.IsNoun(j)) {
        head = j;
        break;
      }
    }
    if (head < 0) continue;
    ws.Attach(owner, head, "nmod:poss");
    ws.Attach(i, owner, "case");
  }
  // Compounds: consecutive nouns N1 N2 -> compound(N1 -> N2).
  for (int i = 0; i + 1 < n; ++i) {
    if (!ws.IsNoun(i) || ws.Attached(i)) continue;
    if (ws.IsNoun(i + 1) && clause_of[i] == clause_of[i + 1]) {
      ws.Attach(i, i + 1, "compound");
    }
  }
  // "of" chains: HEAD of NOUN => noun -nmod-> head, of -case-> noun.
  for (int i = 0; i < n; ++i) {
    if (ws.toks[i].word != "of") continue;
    int left = -1;
    for (int j = i - 1; j >= 0; --j) {
      if (ws.IsNoun(j)) {
        left = j;
        break;
      }
      if (ws.IsVerb(j)) break;
    }
    int right = -1;
    for (int j = i + 1; j < n && clause_of[j] == clause_of[i]; ++j) {
      if (ws.IsNoun(j)) {
        right = j;
        break;
      }
    }
    if (left >= 0 && right >= 0 && !ws.Attached(right)) {
      ws.Attach(right, left, "nmod");
      ws.Attach(i, right, "case");
    }
  }
  // Determiners and adjectives attach to the next noun in their clause.
  for (int i = 0; i < n; ++i) {
    if (ws.Attached(i)) continue;
    const std::string& tag = ws.toks[i].tag;
    const bool det_like = tag == "DT" || tag == "PRP$" ||
                          (tag == "WDT" && !IsRelativeMarkerAt(ws.toks, i));
    if (det_like || IsAdjectiveTag(tag)) {
      for (int j = i + 1; j < n && clause_of[j] == clause_of[i]; ++j) {
        if (ws.IsNoun(j)) {
          ws.Attach(i, j, det_like ? "det" : "amod");
          break;
        }
        if (ws.IsVerb(j)) break;
      }
    }
  }

  // --- Stage 4: auxiliaries, particles, adverbs. ---------------------------
  for (const ClauseInfo& c : clauses) {
    for (int a : c.aux) {
      ws.Attach(a, c.main_verb, c.passive ? "aux:pass" : "aux");
    }
    if (c.particle >= 0) {
      ws.Attach(c.particle, c.main_verb, "compound:prt");
    }
  }
  for (int i = 0; i < n; ++i) {
    if (ws.Attached(i) || !IsAdverbTag(ws.toks[i].tag)) continue;
    if ((ws.toks[i].tag == "RBS" || ws.toks[i].tag == "RBR") && i + 1 < n &&
        IsAdverbTag(ws.toks[i + 1].tag)) {
      ws.Attach(i, i + 1, "advmod");  // "most frequently"
    } else {
      ws.Attach(i, clauses[clause_of[i]].main_verb, "advmod");
    }
  }
  // "how many" -> advmod(how -> many).
  for (int i = 0; i + 1 < n; ++i) {
    if (ws.toks[i].word == "how" && ws.toks[i + 1].word == "many" &&
        !ws.Attached(i)) {
      ws.Attach(i, i + 1, "advmod");
    }
  }

  // --- Stage 5: grammatical relations per clause. ---------------------------
  for (std::size_t k = 0; k < clauses.size(); ++k) {
    const ClauseInfo& c = clauses[k];
    const int verb = c.main_verb;
    const int ci = static_cast<int>(k);

    // Subject: nearest free noun head before the main verb, owned by
    // this clause (skips center-embedded relative spans and handles
    // subject-auxiliary inversion, where the folded "does" precedes the
    // subject).
    int subject = -1;
    for (int j = verb - 1; j >= 0; --j) {
      if (clause_of[j] != ci) continue;
      if (ws.IsFreeNounHead(j) && !ws.Attached(j)) {
        subject = j;
        break;
      }
    }
    if (subject >= 0) {
      ws.Attach(subject, verb, c.passive ? "nsubj:pass" : "nsubj");
    } else if (c.wh_token >= 0) {
      ws.Attach(c.wh_token, verb, c.passive ? "nsubj:pass" : "nsubj");
    } else {
      // Sentence-initial bare wh pronoun ("What is ...").
      for (int j = 0; j < verb; ++j) {
        if (clause_of[j] == ci && IsWhTag(ws.toks[j].tag) &&
            !ws.Attached(j)) {
          ws.Attach(j, verb, "nsubj");
          break;
        }
      }
    }

    // Objects / obliques: forward from the verb group over tokens owned
    // by this clause.
    int scan_from = verb + 1;
    if (c.particle >= 0) scan_from = c.particle + 1;
    int pending_case = -1;
    for (int j = scan_from; j < n; ++j) {
      if (clause_of[j] != ci) continue;
      if (ws.toks[j].tag == "IN") {
        if (!ws.Attached(j)) pending_case = j;
        continue;
      }
      if (ws.IsFreeNounHead(j) && !ws.Attached(j)) {
        if (pending_case >= 0) {
          const bool agent = c.passive && ws.toks[pending_case].word == "by";
          ws.Attach(j, verb, agent ? "obl:agent" : "obl");
          ws.Attach(pending_case, j, "case");
          pending_case = -1;
        } else {
          ws.Attach(j, verb, "obj");
        }
      }
    }

    // Clause head.
    if (c.is_matrix) {
      ws.Attach(verb, -1, "root");
    } else if (c.antecedent >= 0) {
      ws.Attach(verb, c.antecedent, "acl:relcl");
    } else {
      ws.Attach(verb, clauses[0].main_verb, "advcl");
    }
  }

  // --- Stage 6: attach leftovers. ------------------------------------------
  for (int i = 0; i < n; ++i) {
    if (!ws.Attached(i)) {
      ws.Attach(i, clauses[clause_of[i]].main_verb, "dep");
    }
  }

  if (clock != nullptr) {
    clock->Charge(CostKind::kParseTransition,
                  static_cast<double>(ws.transitions));
  }

  ParseOutput out;
  out.tree = DependencyTree(tagged, std::move(ws.arcs));
  out.clauses = std::move(clauses);
  out.clause_of_token = std::move(clause_of);
  return out;
}

}  // namespace svqa::nlp
