#ifndef SVQA_NLP_DEPENDENCY_PARSER_H_
#define SVQA_NLP_DEPENDENCY_PARSER_H_

#include <string>
#include <vector>

#include "nlp/pos_tagger.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace svqa::nlp {

/// \brief One dependency arc: token i attaches to `head` (token index,
/// -1 for the root) with Universal-Dependencies-style relation `rel`.
struct DepArc {
  int head = -1;
  std::string rel;
};

/// \brief A dependency tree over a tagged sentence.
class DependencyTree {
 public:
  DependencyTree() = default;
  DependencyTree(std::vector<TaggedToken> tokens, std::vector<DepArc> arcs)
      : tokens_(std::move(tokens)), arcs_(std::move(arcs)) {}

  const std::vector<TaggedToken>& tokens() const { return tokens_; }
  const std::vector<DepArc>& arcs() const { return arcs_; }
  std::size_t size() const { return tokens_.size(); }

  int HeadOf(int i) const { return arcs_[i].head; }
  const std::string& RelOf(int i) const { return arcs_[i].rel; }
  const std::string& WordOf(int i) const { return tokens_[i].word; }
  const std::string& TagOf(int i) const { return tokens_[i].tag; }

  /// First dependent of `head` with relation `rel`, or -1.
  int ChildWithRel(int head, std::string_view rel) const;

  /// All dependents of `head` with relation `rel`, in token order.
  std::vector<int> ChildrenWithRel(int head, std::string_view rel) const;

  /// All dependents of `head`, in token order.
  std::vector<int> ChildrenOf(int head) const;

  /// Token index of the root (-1 if none).
  int Root() const;

  /// Human-readable rendering (one "word -rel-> head" line per token).
  std::string ToString() const;

 private:
  std::vector<TaggedToken> tokens_;
  std::vector<DepArc> arcs_;
};

/// \brief Span and predicate structure of one clause found in the
/// sentence (the `C <- getClauses(DT, POS)` product of Algorithm 2).
///
/// The *matrix* clause owns every token not claimed by a relative
/// clause; relative clauses own the contiguous span from their marker to
/// the start of the next verb group. Clause 0 is always the matrix
/// clause, followed by relative clauses in token order — center-embedded
/// relatives ("the cat *that is sitting on the bed* appears ...") are
/// therefore represented exactly.
struct ClauseInfo {
  int start = 0;          ///< First token of the clause span (relative
                          ///< clauses only; 0 for the matrix clause).
  int end = 0;            ///< One past the span's last token.
  int main_verb = -1;     ///< Token index of the clause's main verb.
  std::vector<int> aux;   ///< Auxiliary tokens of the verb group.
  int particle = -1;      ///< RP particle ("hanging *out*"), -1 if none.
  bool passive = false;   ///< Aux "be" + past participle.
  bool copular = false;   ///< Bare copula clause ("... that are near X").
  bool is_matrix = false; ///< The sentence's main clause.
  int wh_token = -1;      ///< Relative marker starting the clause, or -1.
  int antecedent = -1;    ///< Noun the relative clause modifies, or -1.
};

/// \brief Parser output: the tree plus clause structure.
struct ParseOutput {
  DependencyTree tree;
  /// Matrix clause first, then relative clauses in token order.
  std::vector<ClauseInfo> clauses;
  /// For each token, the index (into `clauses`) of the owning clause.
  std::vector<int> clause_of_token;
};

/// \brief Deterministic rule-based dependency parser.
///
/// Substitutes for the Stanford transition-based neural parser (paper
/// Eq. 5; DESIGN.md §1). It performs head attachment with UD relation
/// labels over the tag patterns that interrogative sentences use:
/// noun-phrase internals (det, amod, compound, nmod+case for "of",
/// nmod:poss for possessives), verb groups (aux, aux:pass, passives),
/// adverbial chains (advmod), prepositional obliques (obl+case), relative
/// clauses (acl:relcl), and wh-subjects. Each attachment charges
/// CostKind::kParseTransition, mirroring a transition parser's action
/// count.
class DependencyParser {
 public:
  DependencyParser() = default;

  /// Parses a tagged sentence. Fails with ParseError when no predicate
  /// can be found (e.g. all candidate verbs were mistagged).
  Result<ParseOutput> Parse(const std::vector<TaggedToken>& tagged,
                            SimClock* clock = nullptr) const;
};

}  // namespace svqa::nlp

#endif  // SVQA_NLP_DEPENDENCY_PARSER_H_
