#ifndef SVQA_NLP_POS_TAGGER_H_
#define SVQA_NLP_POS_TAGGER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/sim_clock.h"

namespace svqa::nlp {

/// \brief A token together with its Penn-Treebank part-of-speech tag.
struct TaggedToken {
  std::string word;
  std::string tag;
};

/// \brief Returns true for a valid PTB tag (the 45-tag set the paper's
/// §IV-B refers to, plus the RP particle and punctuation tags).
bool IsValidPtbTag(std::string_view tag);

/// \brief The full PTB tag inventory.
const std::vector<std::string>& PtbTagSet();

/// True for noun tags (NN/NNS/NNP/NNPS).
bool IsNounTag(std::string_view tag);
/// True for verb tags (VB/VBD/VBG/VBN/VBP/VBZ).
bool IsVerbTag(std::string_view tag);
/// True for adjective tags (JJ/JJR/JJS).
bool IsAdjectiveTag(std::string_view tag);
/// True for adverb tags (RB/RBR/RBS).
bool IsAdverbTag(std::string_view tag);
/// True for wh-word tags (WP/WP$/WDT/WRB).
bool IsWhTag(std::string_view tag);

/// \brief Rule/lexicon part-of-speech tagger.
///
/// Substitutes for the Stanford maximum-entropy tagger (paper Eq. 4; see
/// DESIGN.md §1): a closed-class + domain lexicon assigns initial tags,
/// suffix heuristics cover inflected open-class words, and contextual
/// rewrite rules disambiguate (e.g. "that" as DT vs WDT, auxiliary vs
/// main "be"). Unknown latinate words ("canis") receive FW, reproducing
/// the paper's Figure 8(a) statement-parsing failure mode.
class PosTagger {
 public:
  /// A tagger pre-loaded with the MVQA world vocabulary.
  static PosTagger Default();

  PosTagger() = default;

  /// Registers (or overrides) a lexicon entry.
  void AddLexeme(std::string word, std::string tag);

  /// True when the word has a lexicon entry.
  bool HasLexeme(const std::string& word) const {
    return lexicon_.count(word) > 0;
  }

  /// Registers the parts of entity labels ("fred-weasley" -> "fred",
  /// "weasley") as proper nouns, unless a part already has a lexical
  /// entry. This is the gazetteer step a production system derives from
  /// its knowledge graph; without it, names like "fred" fall into the
  /// suffix heuristics ("-ed" -> VBN).
  void RegisterEntityNames(const std::vector<std::string>& labels);

  /// Tags a tokenized sentence. Charges CostKind::kParseToken per token
  /// when `clock` is provided.
  std::vector<TaggedToken> Tag(const std::vector<std::string>& tokens,
                               SimClock* clock = nullptr) const;

  std::size_t lexicon_size() const { return lexicon_.size(); }

 private:
  std::string LexicalTag(const std::string& word) const;
  static std::string SuffixTag(const std::string& word);
  void ApplyContextRules(std::vector<TaggedToken>* tagged) const;

  std::unordered_map<std::string, std::string> lexicon_;
};

}  // namespace svqa::nlp

#endif  // SVQA_NLP_POS_TAGGER_H_
