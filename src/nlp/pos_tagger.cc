#include "nlp/pos_tagger.h"

#include <algorithm>
#include <cctype>

#include "text/inflection.h"

namespace svqa::nlp {
namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool AllDigits(const std::string& w) {
  return !w.empty() && std::all_of(w.begin(), w.end(), [](unsigned char c) {
    return std::isdigit(c);
  });
}

}  // namespace

const std::vector<std::string>& PtbTagSet() {
  static const auto* tags = new std::vector<std::string>{
      "CC",   "CD",  "DT",    "EX",   "FW",  "IN",   "JJ",  "JJR", "JJS",
      "LS",   "MD",  "NN",    "NNS",  "NNP", "NNPS", "PDT", "POS", "PRP",
      "PRP$", "RB",  "RBR",   "RBS",  "RP",  "SYM",  "TO",  "UH",  "VB",
      "VBD",  "VBG", "VBN",   "VBP",  "VBZ", "WDT",  "WP",  "WP$", "WRB",
      ".",    ",",   ":",     "``",   "''",  "-LRB-", "-RRB-", "$", "#"};
  return *tags;
}

bool IsValidPtbTag(std::string_view tag) {
  const auto& tags = PtbTagSet();
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

bool IsNounTag(std::string_view tag) {
  return tag == "NN" || tag == "NNS" || tag == "NNP" || tag == "NNPS";
}
bool IsVerbTag(std::string_view tag) {
  return tag == "VB" || tag == "VBD" || tag == "VBG" || tag == "VBN" ||
         tag == "VBP" || tag == "VBZ";
}
bool IsAdjectiveTag(std::string_view tag) {
  return tag == "JJ" || tag == "JJR" || tag == "JJS";
}
bool IsAdverbTag(std::string_view tag) {
  return tag == "RB" || tag == "RBR" || tag == "RBS";
}
bool IsWhTag(std::string_view tag) {
  return tag == "WP" || tag == "WP$" || tag == "WDT" || tag == "WRB";
}

void PosTagger::AddLexeme(std::string word, std::string tag) {
  lexicon_[std::move(word)] = std::move(tag);
}

void PosTagger::RegisterEntityNames(const std::vector<std::string>& labels) {
  for (const std::string& label : labels) {
    std::size_t start = 0;
    while (start <= label.size()) {
      std::size_t dash = label.find('-', start);
      const std::string part =
          label.substr(start, dash == std::string::npos ? std::string::npos
                                                        : dash - start);
      if (!part.empty() && !HasLexeme(part)) {
        AddLexeme(part, "NNP");
      }
      if (dash == std::string::npos) break;
      start = dash + 1;
    }
  }
}

PosTagger PosTagger::Default() {
  PosTagger t;
  const auto add_all = [&t](std::initializer_list<const char*> words,
                            const char* tag) {
    for (const char* w : words) t.AddLexeme(w, tag);
  };

  // Closed classes.
  add_all({"the", "a", "an", "this", "these", "those", "that", "all",
           "some", "any", "each", "every", "no"},
          "DT");
  add_all({"of", "in", "on", "by", "with", "at", "from", "under", "behind",
           "near", "over", "during", "across", "beside", "inside", "into",
           "onto", "through", "between", "around", "above", "below",
           "in-front-of"},
          "IN");
  add_all({"to"}, "TO");
  add_all({"and", "or", "but"}, "CC");
  add_all({"out", "up", "down", "off"}, "RP");
  add_all({"it", "he", "she", "they", "them", "him", "her", "we", "i",
           "you"},
          "PRP");
  add_all({"its", "his", "their", "our", "my", "your"}, "PRP$");
  add_all({"who", "whom", "what"}, "WP");
  add_all({"whose"}, "WP$");
  add_all({"which"}, "WDT");
  add_all({"where", "when", "why", "how"}, "WRB");
  add_all({"'s"}, "POS");
  add_all({"there"}, "EX");
  add_all({"can", "could", "will", "would", "shall", "should", "may",
           "might", "must"},
          "MD");
  add_all({"not", "n't"}, "RB");

  // Copula / auxiliaries.
  t.AddLexeme("is", "VBZ");
  t.AddLexeme("are", "VBP");
  t.AddLexeme("was", "VBD");
  t.AddLexeme("were", "VBD");
  t.AddLexeme("be", "VB");
  t.AddLexeme("been", "VBN");
  t.AddLexeme("being", "VBG");
  t.AddLexeme("am", "VBP");
  t.AddLexeme("does", "VBZ");
  t.AddLexeme("do", "VBP");
  t.AddLexeme("did", "VBD");
  t.AddLexeme("has", "VBZ");
  t.AddLexeme("have", "VBP");
  t.AddLexeme("had", "VBD");

  // Domain nouns (MVQA world vocabulary).
  add_all({"man",      "woman",    "person",   "people",   "dog",
           "puppy",    "cat",      "kitten",   "bird",     "horse",
           "car",      "bicycle",  "bike",     "motorcycle", "bus",
           "truck",    "building", "house",    "tree",     "bench",
           "frisbee",  "hat",      "cap",      "kind",     "type",
           "sort",     "wizard",   "pet",      "animal",   "vehicle",
           "bear",     "tv",       "television", "bed",    "ball",
           "umbrella", "backpack", "bag",      "skateboard", "boat",
           "train",    "fence",    "grass",    "street",   "road",
           "kite",     "book",     "chair",    "table",    "phone",
           "laptop",   "girlfriend", "friend", "member",   "owner",
           "sibling",  "brother",  "sister",   "robe",     "gown",
           "scarf",    "jacket",   "coat",     "shirt",    "window",
           "mouth",    "hand",     "head",     "park",     "city",
           "school",   "team",     "club",     "movie",    "image",
           "question", "clause",  "color"},
          "NN");
  add_all({"clothes", "pets", "animals", "vehicles", "wizards", "dogs",
           "cats", "birds", "people", "men", "women", "cars", "trees",
           "robes", "hats", "images", "questions"},
          "NNS");

  // Domain verbs: base, 3sg, past, participle, gerund.
  add_all({"wear", "hold", "carry", "ride", "sit", "stand", "watch",
           "chase", "eat", "play", "walk", "jump", "hang", "appear",
           "catch", "look", "run", "accompany", "own", "live", "belong"},
          "VB");
  add_all({"wears", "holds", "carries", "rides", "sits", "stands",
           "watches", "chases", "eats", "plays", "walks", "jumps",
           "hangs", "appears", "catches", "looks", "runs", "owns",
           "lives", "belongs"},
          "VBZ");
  add_all({"wore", "held", "carried", "rode", "sat", "stood", "watched",
           "chased", "ate", "played", "walked", "jumped", "hung",
           "appeared", "caught", "looked", "ran", "owned", "lived"},
          "VBD");
  add_all({"worn", "ridden", "eaten", "seen", "situated", "carried",
           "held", "chased", "watched", "hung", "caught", "shown",
           "accompanied", "owned"},
          "VBN");
  add_all({"wearing", "holding", "carrying", "riding", "sitting",
           "standing", "watching", "chasing", "eating", "playing",
           "walking", "jumping", "hanging", "appearing", "catching",
           "looking", "running", "accompanying", "living"},
          "VBG");

  // Adjectives & adverbs.
  add_all({"red", "blue", "green", "yellow", "black", "white", "brown",
           "big", "small", "large", "little", "old", "young", "tall",
           "many", "same", "different", "wooden"},
          "JJ");
  add_all({"frequently", "often", "usually", "together", "only", "also",
           "mostly", "commonly"},
          "RB");
  t.AddLexeme("most", "RBS");
  t.AddLexeme("least", "RBS");
  t.AddLexeme("more", "RBR");
  t.AddLexeme("less", "RBR");

  return t;
}

std::string PosTagger::LexicalTag(const std::string& word) const {
  auto it = lexicon_.find(word);
  if (it != lexicon_.end()) return it->second;
  return "";
}

std::string PosTagger::SuffixTag(const std::string& word) {
  if (AllDigits(word)) return "CD";
  if (EndsWith(word, "ing") && word.size() > 4) return "VBG";
  if (EndsWith(word, "ed") && word.size() > 3) return "VBN";
  if (EndsWith(word, "ly") && word.size() > 3) return "RB";
  if (EndsWith(word, "est") && word.size() > 4) return "JJS";
  // Latinate endings of words outside the lexicon are treated as foreign
  // (FW) — the Stanford tagger's behaviour the paper shows for "canis".
  if (EndsWith(word, "is") || EndsWith(word, "us") || EndsWith(word, "um")) {
    return "FW";
  }
  if (EndsWith(word, "s") && word.size() > 2) return "NNS";
  return "NN";
}

void PosTagger::ApplyContextRules(std::vector<TaggedToken>* tagged) const {
  auto& toks = *tagged;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // "that" introducing a relative clause after a noun: WDT.
    if (toks[i].word == "that" && i > 0 && IsNounTag(toks[i - 1].tag)) {
      toks[i].tag = "WDT";
    }
    // "what"/"which" directly before a noun or "kind": determiner use.
    if ((toks[i].word == "what" || toks[i].word == "which") &&
        i + 1 < toks.size() &&
        (IsNounTag(toks[i + 1].tag) || IsAdjectiveTag(toks[i + 1].tag))) {
      toks[i].tag = "WDT";
    }
    // A noun-tagged word right after an auxiliary that has a known verb
    // reading stays a verb in our templates ("does ... appear").
    // Capitalized-in-source proper nouns are lowercased by the tokenizer;
    // treat unknown NN between a POS clitic context as NNP-ish: handled
    // by the parser's compound rule instead.
  }
}

std::vector<TaggedToken> PosTagger::Tag(
    const std::vector<std::string>& tokens, SimClock* clock) const {
  std::vector<TaggedToken> out;
  out.reserve(tokens.size());
  for (const auto& word : tokens) {
    std::string tag = LexicalTag(word);
    if (tag.empty()) tag = SuffixTag(word);
    out.push_back(TaggedToken{word, tag});
  }
  ApplyContextRules(&out);
  if (clock != nullptr) {
    clock->Charge(CostKind::kParseToken, static_cast<double>(tokens.size()));
  }
  return out;
}

}  // namespace svqa::nlp
