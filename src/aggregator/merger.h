#ifndef SVQA_AGGREGATOR_MERGER_H_
#define SVQA_AGGREGATOR_MERGER_H_

#include <string>
#include <vector>

#include "aggregator/subgraph_cache.h"
#include "graph/graph.h"
#include "storage/storage_env.h"
#include "util/result.h"
#include "util/sim_clock.h"
#include "vision/scene_graph_generator.h"

namespace svqa::aggregator {

/// Edge label linking a recognized named entity in a scene graph to its
/// knowledge-graph vertex.
inline constexpr const char* kSameAsEdge = "same-as";
/// Edge label linking an anonymous scene-graph object to its category
/// concept vertex in the knowledge graph.
inline constexpr const char* kInstanceOfEdge = "instance-of";

/// \brief Result of graph merging: the merged graph G_mg plus bookkeeping.
struct MergedGraph {
  graph::Graph graph;
  /// Number of KG vertices (scene-graph vertices start at this offset).
  std::size_t kg_vertex_count = 0;
  /// same-as links created (named entities resolved).
  std::size_t entity_links = 0;
  /// instance-of links created.
  std::size_t concept_links = 0;
  /// Cache performance during the attach stage.
  cache::CacheStats link_cache_stats;
  /// Virtual time spent merging.
  double merge_micros = 0;
};

/// \brief Options for Algorithm 1.
struct MergerOptions {
  SubgraphCacheOptions cache;
  /// Disables the subgraph cache entirely (every link goes through the
  /// storage fallback) — the ablation configuration.
  bool use_cache = true;
};

/// \brief Algorithm 1: aligns scene graphs with the knowledge graph into
/// the merged graph G_mg.
///
/// The merged graph contains (1) a copy of the KG, (2) every scene-graph
/// vertex and edge, (3) `same-as` links from recognized named entities to
/// their KG vertices, and (4) `instance-of` links from anonymous objects
/// to their category concept vertices.
class GraphMerger {
 public:
  explicit GraphMerger(MergerOptions options = {});

  /// Merges. `clock` accumulates the attach-stage virtual cost.
  Result<MergedGraph> Merge(
      const graph::Graph& knowledge_graph,
      const std::vector<vision::SceneGraphResult>& scene_graphs,
      SimClock* clock = nullptr) const;

  const MergerOptions& options() const { return options_; }

 private:
  MergerOptions options_;
};

/// \brief Persists a merged graph (graph text format plus a metadata
/// header) so the expensive offline phase can be done once. Written via
/// StorageEnv::WriteFileAtomic — a crash mid-save never leaves a torn
/// file; rejects graphs whose labels would not round-trip. `env`
/// defaults to the process filesystem.
Status SaveMergedGraph(const MergedGraph& merged, const std::string& path,
                       storage::StorageEnv* env = nullptr);

/// \brief Loads a merged graph written by SaveMergedGraph. Any damage is
/// a clean ParseError, never a crash or a silently different graph.
Result<MergedGraph> LoadMergedGraph(const std::string& path,
                                    storage::StorageEnv* env = nullptr);

}  // namespace svqa::aggregator

#endif  // SVQA_AGGREGATOR_MERGER_H_
