#include "aggregator/category_stats.h"

#include <algorithm>
#include <unordered_map>

namespace svqa::aggregator {

std::vector<graph::CategoryCount> CountCategories(
    const std::vector<const graph::Graph*>& scene_graphs) {
  std::unordered_map<std::string, std::size_t> counts;
  for (const graph::Graph* g : scene_graphs) {
    for (graph::VertexId v = 0; v < g->num_vertices(); ++v) {
      ++counts[g->vertex(v).category];
    }
  }
  std::vector<graph::CategoryCount> out;
  out.reserve(counts.size());
  for (auto& [cat, count] : counts) out.push_back({cat, count});
  std::sort(out.begin(), out.end(),
            [](const graph::CategoryCount& a, const graph::CategoryCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.category < b.category;
            });
  return out;
}

CoverageStats ComputeCoverage(const std::vector<graph::CategoryCount>& counts,
                              std::size_t threshold) {
  CoverageStats stats;
  if (counts.empty()) return stats;
  std::size_t covered_types = 0, covered_vertices = 0, total_vertices = 0;
  for (const auto& cc : counts) {
    total_vertices += cc.count;
    if (cc.count > threshold) {
      ++covered_types;
      covered_vertices += cc.count;
    }
  }
  stats.type_fraction =
      static_cast<double>(covered_types) / static_cast<double>(counts.size());
  stats.vertex_fraction = total_vertices == 0
                              ? 0.0
                              : static_cast<double>(covered_vertices) /
                                    static_cast<double>(total_vertices);
  return stats;
}

}  // namespace svqa::aggregator
