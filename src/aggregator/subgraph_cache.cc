#include "aggregator/subgraph_cache.h"

namespace svqa::aggregator {

SubgraphCache SubgraphCache::Build(
    const graph::Graph& kg, const std::vector<graph::CategoryCount>& stats,
    const SubgraphCacheOptions& options, SimClock* clock) {
  SubgraphCache cache;
  cache.options_ = options;
  for (const auto& cc : stats) {  // already descending
    if (cc.count <= options.frequency_threshold) continue;
    // find(t_sg, V): a KG vertex of this category. Prefer the concept
    // vertex whose label equals the category name.
    graph::VertexId anchor = graph::kInvalidVertex;
    auto by_label = kg.VerticesWithLabel(cc.category);
    if (!by_label.empty()) {
      anchor = by_label.front();
    } else {
      auto by_cat = kg.VerticesWithCategory(cc.category);
      if (!by_cat.empty()) anchor = by_cat.front();
    }
    if (clock != nullptr) clock->Charge(CostKind::kVertexCompare);
    if (anchor == graph::kInvalidVertex) continue;  // category not in KG
    cache.entries_.push_back(Entry{
        cc.category,
        graph::SubgraphRef::Induced(kg, anchor, options.hop_radius)});
    if (clock != nullptr) {
      clock->Charge(CostKind::kEdgeTraverse,
                    static_cast<double>(cache.entries_.back().subgraph.size()));
    }
  }
  return cache;
}

std::optional<graph::VertexId> SubgraphCache::FindVertex(
    const graph::Graph& kg, std::string_view label, SimClock* clock) {
  // Attach Stage fast path: scan the cached subgraphs in frequency order.
  for (const Entry& entry : entries_) {
    for (graph::VertexId v : entry.subgraph.vertices()) {
      if (clock != nullptr) clock->Charge(CostKind::kVertexCompare);
      if (kg.vertex(v).label == label) {
        ++stats_.hits;
        return v;
      }
    }
  }
  ++stats_.misses;
  // Fallback: Query(v, G) hits storage. Each record access is charged at
  // the traversal rate (an order of magnitude above an in-memory label
  // comparison), which is the asymmetry the cache exists to exploit.
  if (clock != nullptr) {
    clock->Charge(CostKind::kEdgeTraverse,
                  static_cast<double>(kg.num_vertices()));
  }
  auto ids = kg.VerticesWithLabel(label);
  if (ids.empty()) return std::nullopt;
  return ids.front();
}

const graph::SubgraphRef* SubgraphCache::SubgraphFor(
    std::string_view category) const {
  for (const Entry& entry : entries_) {
    if (entry.category == category) return &entry.subgraph;
  }
  return nullptr;
}

}  // namespace svqa::aggregator
