#ifndef SVQA_AGGREGATOR_SUBGRAPH_CACHE_H_
#define SVQA_AGGREGATOR_SUBGRAPH_CACHE_H_

#include <optional>
#include <string>
#include <vector>

#include "cache/cache_stats.h"
#include "graph/graph.h"
#include "graph/statistics.h"
#include "graph/subgraph.h"
#include "util/sim_clock.h"

namespace svqa::aggregator {

/// \brief Options for the frequent-category subgraph cache (§III-B).
struct SubgraphCacheOptions {
  /// Frequency threshold c': categories occurring more often get a cached
  /// subgraph (paper uses 5).
  std::size_t frequency_threshold = 5;
  /// Hop radius k of G[S(t, k)] (paper uses 2).
  int hop_radius = 2;
};

/// \brief The cache list G_N of Algorithm 1: one induced-subgraph index
/// G[S(t, k)] per frequent scene-graph category, ordered by descending
/// category frequency.
///
/// Lookups scan the cached subgraphs in order and fall back to a full
/// scan of G on miss, charging CostKind::kVertexCompare per comparison —
/// the cost asymmetry the cache exists to exploit.
class SubgraphCache {
 public:
  /// Builds the cache from category statistics over the scene graphs
  /// (Algorithm 1, Initial Stage, lines 1-7): for each category t_sg with
  /// count > c', finds a vertex t in `kg` with that category and indexes
  /// G[S(t, k)].
  static SubgraphCache Build(const graph::Graph& kg,
                             const std::vector<graph::CategoryCount>& stats,
                             const SubgraphCacheOptions& options,
                             SimClock* clock = nullptr);

  /// Finds the KG vertex whose label equals `label`, first through the
  /// cached subgraphs, then by scanning `kg` (Algorithm 1 lines 9-14).
  /// Returns nullopt when the label is absent from the KG entirely.
  std::optional<graph::VertexId> FindVertex(const graph::Graph& kg,
                                            std::string_view label,
                                            SimClock* clock = nullptr);

  std::size_t num_cached_subgraphs() const { return entries_.size(); }
  const cache::CacheStats& stats() const { return stats_; }
  const SubgraphCacheOptions& options() const { return options_; }

  /// The cached subgraph for a category, if present (tests/inspection).
  const graph::SubgraphRef* SubgraphFor(std::string_view category) const;

 private:
  struct Entry {
    std::string category;
    graph::SubgraphRef subgraph;
  };

  SubgraphCacheOptions options_;
  std::vector<Entry> entries_;  // descending frequency order
  cache::CacheStats stats_;
};

}  // namespace svqa::aggregator

#endif  // SVQA_AGGREGATOR_SUBGRAPH_CACHE_H_
