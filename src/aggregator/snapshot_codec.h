#ifndef SVQA_AGGREGATOR_SNAPSHOT_CODEC_H_
#define SVQA_AGGREGATOR_SNAPSHOT_CODEC_H_

#include <cstdint>

#include "aggregator/merger.h"
#include "graph/interning.h"
#include "storage/snapshot.h"
#include "util/result.h"

namespace svqa::aggregator {

/// \brief Converters between the execution-side MergedGraph and the
/// storage layer's plain SnapshotData.
///
/// They live here (not in storage) because storage sits *below* graph
/// in the layer DAG — see tools/layers.txt — so it cannot name
/// graph::Graph or MergedGraph. Aggregator sees both sides.

/// Flattens `merged` (plus the store-wide symbol table, when present)
/// for persistence. Vertices are emitted in id order and edges in
/// Graph::AllEdges order, so decoding replays construction exactly.
storage::SnapshotData ToSnapshotData(const MergedGraph& merged,
                                     uint64_t generation,
                                     const graph::SymbolTable* symbols =
                                         nullptr);

/// Rebuilds the merged graph from recovered snapshot data. The rebuilt
/// graph is construction-order identical to the persisted one (same
/// ToText bytes, same adjacency order, same interned edge-label ids),
/// so answers computed on it are byte-identical.
Result<MergedGraph> FromSnapshotData(const storage::SnapshotData& data);

/// Re-interns the recovered symbols in id order so SymbolId values
/// stay stable across the restart. Call before the first post-recovery
/// Freeze against the table.
void RestoreSymbols(const storage::SnapshotData& data,
                    graph::SymbolTable* symbols);

}  // namespace svqa::aggregator

#endif  // SVQA_AGGREGATOR_SNAPSHOT_CODEC_H_
