#include "aggregator/snapshot_codec.h"

#include <string>
#include <utility>

namespace svqa::aggregator {

storage::SnapshotData ToSnapshotData(const MergedGraph& merged,
                                     uint64_t generation,
                                     const graph::SymbolTable* symbols) {
  storage::SnapshotData data;
  data.generation = generation;
  data.kg_vertex_count = merged.kg_vertex_count;
  data.entity_links = merged.entity_links;
  data.concept_links = merged.concept_links;
  if (symbols != nullptr) {
    const std::size_t n = symbols->size();
    data.symbols.reserve(n);
    for (std::size_t id = 0; id < n; ++id) {
      data.symbols.emplace_back(
          symbols->NameOf(static_cast<graph::SymbolId>(id)));
    }
  }
  const graph::Graph& g = merged.graph;
  data.vertices.reserve(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const graph::Vertex& vx = g.vertex(v);
    data.vertices.push_back(
        storage::SnapshotVertex{vx.label, vx.category, vx.source_image});
  }
  data.edges.reserve(g.num_edges());
  for (const graph::EdgeRef& e : g.AllEdges()) {
    data.edges.push_back(
        storage::SnapshotEdge{e.src, e.dst, std::string(e.label)});
  }
  return data;
}

Result<MergedGraph> FromSnapshotData(const storage::SnapshotData& data) {
  MergedGraph merged;
  merged.kg_vertex_count = data.kg_vertex_count;
  merged.entity_links = data.entity_links;
  merged.concept_links = data.concept_links;
  for (const storage::SnapshotVertex& v : data.vertices) {
    merged.graph.AddVertex(v.label, v.category, v.source_image);
  }
  for (const storage::SnapshotEdge& e : data.edges) {
    if (Status s = merged.graph.AddEdge(e.src, e.dst, e.label); !s.ok()) {
      // SnapshotReader::Decode range-checks endpoints, so this only
      // fires on duplicate/self-loop edges — still corruption, since
      // the writer serialized a graph that had neither.
      return Status::ParseError("snapshot edge rejected: " + s.ToString());
    }
  }
  SVQA_RETURN_NOT_OK(merged.graph.CheckConsistency());
  if (merged.kg_vertex_count > merged.graph.num_vertices()) {
    return Status::ParseError("kg_vertex_count exceeds vertex count");
  }
  return merged;
}

void RestoreSymbols(const storage::SnapshotData& data,
                    graph::SymbolTable* symbols) {
  if (symbols == nullptr) return;
  for (const std::string& s : data.symbols) {
    symbols->Intern(s);
  }
}

}  // namespace svqa::aggregator
