#ifndef SVQA_AGGREGATOR_CATEGORY_STATS_H_
#define SVQA_AGGREGATOR_CATEGORY_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/statistics.h"

namespace svqa::aggregator {

/// \brief Aggregated occurrence counts of vertex categories across a set
/// of scene graphs, sorted descending (Algorithm 1 line 2,
/// `T <- statistics({G_sg(I)})`).
std::vector<graph::CategoryCount> CountCategories(
    const std::vector<const graph::Graph*>& scene_graphs);

/// \brief Fraction of scene-graph vertices whose category appears at
/// least `threshold` times in `counts` (the paper's §III-B coverage
/// observation: ~58% of vertex types occur > 5 times covering ~82% of
/// vertices).
struct CoverageStats {
  double type_fraction = 0;    ///< categories above threshold / categories
  double vertex_fraction = 0;  ///< vertices covered / vertices
};

CoverageStats ComputeCoverage(const std::vector<graph::CategoryCount>& counts,
                              std::size_t threshold);

}  // namespace svqa::aggregator

#endif  // SVQA_AGGREGATOR_CATEGORY_STATS_H_
