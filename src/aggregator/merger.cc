#include "aggregator/merger.h"

#include <charconv>
#include <sstream>
#include <unordered_map>

#include "aggregator/category_stats.h"
#include "graph/serialization.h"

namespace svqa::aggregator {

GraphMerger::GraphMerger(MergerOptions options)
    : options_(std::move(options)) {}

Result<MergedGraph> GraphMerger::Merge(
    const graph::Graph& knowledge_graph,
    const std::vector<vision::SceneGraphResult>& scene_graphs,
    SimClock* clock) const {
  SimClock local(clock != nullptr ? clock->model() : CostModel{});

  MergedGraph merged;
  merged.graph = knowledge_graph;  // KG ids stay valid in G_mg
  merged.kg_vertex_count = knowledge_graph.num_vertices();

  // --- Initial Stage: category statistics + subgraph cache. ---------------
  std::vector<const graph::Graph*> sgs;
  sgs.reserve(scene_graphs.size());
  for (const auto& r : scene_graphs) sgs.push_back(&r.graph);
  const auto stats = CountCategories(sgs);

  SubgraphCache cache =
      options_.use_cache
          ? SubgraphCache::Build(knowledge_graph, stats, options_.cache,
                                 &local)
          : SubgraphCache::Build(knowledge_graph, {}, options_.cache,
                                 &local);

  // Memoize link lookups per distinct label within the run; the cache /
  // fallback cost is charged on first sight of each label.
  std::unordered_map<std::string, std::optional<graph::VertexId>> resolved;
  auto resolve = [&](const std::string& label)
      -> std::optional<graph::VertexId> {
    auto it = resolved.find(label);
    if (it != resolved.end()) return it->second;
    auto hit = cache.FindVertex(knowledge_graph, label, &local);
    resolved.emplace(label, hit);
    return hit;
  };

  // --- Attach Stage: copy scene graphs and link their vertices. -----------
  for (const auto& sg : scene_graphs) {
    const graph::Graph& g = sg.graph;
    std::vector<graph::VertexId> remap(g.num_vertices());
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      const graph::Vertex& vx = g.vertex(v);
      remap[v] =
          merged.graph.AddVertex(vx.label, vx.category, vx.source_image);
    }
    for (const auto& e : g.AllEdges()) {
      SVQA_RETURN_NOT_OK(
          merged.graph.AddEdge(remap[e.src], remap[e.dst], e.label));
    }
    // Linking: named entities by label; anonymous objects by category.
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      const graph::Vertex& vx = g.vertex(v);
      const bool anonymous = vx.label.find('#') != std::string::npos;
      if (!anonymous) {
        if (auto kg_v = resolve(vx.label)) {
          Status s = merged.graph.AddEdge(remap[v], *kg_v, kSameAsEdge);
          if (s.ok()) ++merged.entity_links;
        }
      }
      if (auto concept_v = resolve(vx.category)) {
        Status s = merged.graph.AddEdge(remap[v], *concept_v, kInstanceOfEdge);
        if (s.ok()) ++merged.concept_links;
      }
    }
  }

  merged.link_cache_stats = cache.stats();
  merged.merge_micros = local.ElapsedMicros();
  if (clock != nullptr) clock->MergeSerial(local);
  return merged;
}

Status SaveMergedGraph(const MergedGraph& merged, const std::string& path,
                       storage::StorageEnv* env) {
  SVQA_RETURN_NOT_OK(graph::ValidateSerializable(merged.graph));
  if (env == nullptr) env = &storage::DefaultEnv();
  std::ostringstream out;
  out << "# svqa-merged-graph kg_vertex_count=" << merged.kg_vertex_count
      << " entity_links=" << merged.entity_links
      << " concept_links=" << merged.concept_links << '\n';
  out << graph::ToText(merged.graph);
  return env->WriteFileAtomic(path, out.str());
}

Result<MergedGraph> LoadMergedGraph(const std::string& path,
                                    storage::StorageEnv* env) {
  if (env == nullptr) env = &storage::DefaultEnv();
  SVQA_ASSIGN_OR_RETURN(std::string text, env->ReadFile(path));
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) ||
      header.rfind("# svqa-merged-graph", 0) != 0) {
    return Status::ParseError("missing merged-graph header in " + path);
  }
  MergedGraph merged;
  {
    std::istringstream hs(header);
    std::string field;
    while (hs >> field) {
      const auto eq = field.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = field.substr(0, eq);
      const std::string value_str = field.substr(eq + 1);
      // from_chars, not stoull: a corrupted header must be a clean
      // ParseError, never an exception.
      std::size_t value = 0;
      auto [ptr, ec] = std::from_chars(
          value_str.data(), value_str.data() + value_str.size(), value);
      if (ec != std::errc() || ptr != value_str.data() + value_str.size()) {
        return Status::ParseError("bad merged-graph header field '" + field +
                                  "' in " + path);
      }
      if (key == "kg_vertex_count") merged.kg_vertex_count = value;
      if (key == "entity_links") merged.entity_links = value;
      if (key == "concept_links") merged.concept_links = value;
    }
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  SVQA_ASSIGN_OR_RETURN(merged.graph, graph::FromText(buffer.str()));
  if (merged.kg_vertex_count > merged.graph.num_vertices()) {
    return Status::ParseError("kg_vertex_count exceeds vertex count");
  }
  return merged;
}

}  // namespace svqa::aggregator
