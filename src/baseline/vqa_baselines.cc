#include "baseline/vqa_baselines.h"

#include <algorithm>
#include <map>
#include <set>

namespace svqa::baseline {

BaselineProfile BaselineProfile::VisualBert() {
  BaselineProfile p;
  p.name = "VisualBert";
  // Paper Table IV: 3375 s for the question set -> ~0.8x of the 25 ms
  // unit per image per sub-query on an 800-image corpus.
  p.per_image_cost_factor = 0.85;
  p.load_cost_factor = 0.8;
  p.detect_prob = 0.90;
  p.false_positive_prob = 8.0e-4;
  p.reasoning_prob = 0.70;
  return p;
}

BaselineProfile BaselineProfile::Vilt() {
  BaselineProfile p;
  p.name = "Vilt";
  p.per_image_cost_factor = 1.05;
  p.load_cost_factor = 1.0;
  p.detect_prob = 0.96;
  p.false_positive_prob = 5.0e-4;
  p.reasoning_prob = 0.72;
  return p;
}

BaselineProfile BaselineProfile::Ofa() {
  BaselineProfile p;
  p.name = "OFA";
  p.per_image_cost_factor = 0.22;
  p.load_cost_factor = 1.5;
  p.detect_prob = 0.99;
  p.false_positive_prob = 8.0e-5;
  p.reasoning_prob = 0.82;
  return p;
}

NeuralVqaModel::NeuralVqaModel(BaselineProfile profile, uint64_t seed)
    : profile_(std::move(profile)), seed_(seed) {}

namespace {

/// Category-group membership: exact category or hypernym group.
bool MatchesCategory(const data::Vocabulary& vocab,
                     const std::string& object_category,
                     const std::string& query_category) {
  if (object_category == query_category) return true;
  if (query_category == "animal") return vocab.IsAnimal(object_category);
  if (query_category == "vehicle") return vocab.IsVehicle(object_category);
  if (query_category == "clothes") return vocab.IsClothing(object_category);
  if (query_category == "pet") {
    return object_category == "dog" || object_category == "cat";
  }
  return false;
}

}  // namespace

bool NeuralVqaModel::SceneSatisfiesChain(
    const vision::Scene& scene, const data::Vqa2Question& question,
    std::vector<std::string>* main_answers) {
  const data::Vocabulary vocab = data::Vocabulary::Default();
  const data::SimpleQuery& main = question.sub_queries.front();
  bool any = false;
  for (int i = 0; i < static_cast<int>(scene.objects.size()); ++i) {
    if (!MatchesCategory(vocab, scene.objects[i].category, main.subject)) {
      continue;
    }
    // Conditions: every later sub-query must hold for this subject.
    bool conditions_ok = true;
    for (std::size_t q = 1; q < question.sub_queries.size(); ++q) {
      const data::SimpleQuery& cond = question.sub_queries[q];
      bool found = false;
      for (const auto& rel : scene.relations) {
        if (rel.subject == i && rel.predicate == cond.predicate &&
            MatchesCategory(vocab, scene.objects[rel.object].category,
                            cond.object)) {
          found = true;
          break;
        }
      }
      if (!found) {
        conditions_ok = false;
        break;
      }
    }
    if (!conditions_ok) continue;
    // Main relation.
    for (const auto& rel : scene.relations) {
      if (rel.subject == i && rel.predicate == main.predicate &&
          MatchesCategory(vocab, scene.objects[rel.object].category,
                          main.object)) {
        any = true;
        if (main_answers != nullptr) {
          main_answers->push_back(scene.objects[rel.object].category);
        }
      }
    }
  }
  return any;
}

exec::Answer NeuralVqaModel::Answer(const data::Vqa2Question& question,
                                    const data::World& world,
                                    SimClock* clock) const {
  if (clock != nullptr) {
    if (!loaded_) {
      clock->Charge(CostKind::kModelLoad, profile_.load_cost_factor);
      loaded_ = true;
    }
    // Every image is processed once per decomposed simple question —
    // the structural cost the merged graph removes.
    clock->Charge(CostKind::kNeuralImageInference,
                  static_cast<double>(world.scenes.size()) *
                      static_cast<double>(question.sub_queries.size()) *
                      profile_.per_image_cost_factor);
  }

  Rng rng(HashCombine(HashCombine(seed_, StableHash64(profile_.name)),
                      StableHash64(question.text)));
  // Dedicated stream for the reasoning-chain outcome so it is a clean
  // Bernoulli(reasoning_prob) per question, independent of how many
  // per-image draws preceded it.
  Rng chain_rng = rng.Fork(0x5eed);

  exec::Answer ans;
  ans.type = question.type;

  // Per-image ground truth + noisy per-image readout.
  bool any_detected = false;
  std::set<std::string> detected_kinds;
  std::map<std::string, int> answer_votes;
  const data::Vocabulary& vocab = world.vocab;
  const std::string& target = question.sub_queries.front().object;

  auto random_kind = [&]() -> std::string {
    const std::vector<std::string>* pool = &vocab.object_categories;
    if (target == "animal" || target == "pet") {
      pool = &vocab.animal_categories;
    } else if (target == "vehicle") {
      pool = &vocab.vehicle_categories;
    } else if (target == "clothes") {
      pool = &vocab.clothing_categories;
    }
    return (*pool)[rng.Below(pool->size())];
  };

  for (const vision::Scene& scene : world.scenes) {
    std::vector<std::string> answers;
    const bool satisfied = SceneSatisfiesChain(scene, question, &answers);
    if (satisfied && rng.Chance(profile_.detect_prob)) {
      any_detected = true;
      for (const std::string& a : answers) {
        detected_kinds.insert(a);
        ++answer_votes[a];
      }
    }
    if (!satisfied && rng.Chance(profile_.false_positive_prob)) {
      any_detected = true;
      detected_kinds.insert(random_kind());
    }
  }

  switch (question.type) {
    case nlp::QuestionType::kJudgment:
      ans.yes = any_detected;
      ans.text = ans.yes ? "yes" : "no";
      break;
    case nlp::QuestionType::kCounting:
      ans.count = static_cast<int64_t>(detected_kinds.size());
      ans.text = std::to_string(ans.count);
      break;
    case nlp::QuestionType::kReasoning: {
      // Majority vote over detected answers; the composite two-hop chain
      // additionally fails with (1 - reasoning_prob).
      std::string best;
      int best_votes = -1;
      for (const auto& [label, votes] : answer_votes) {
        if (votes > best_votes) {
          best_votes = votes;
          best = label;
        }
      }
      if (best.empty() || !chain_rng.Chance(profile_.reasoning_prob)) {
        std::string wrong = random_kind();
        if (wrong == best) wrong = random_kind();
        best = wrong;
      }
      ans.text = best;
      ans.entities = {best};
      break;
    }
  }
  return ans;
}

}  // namespace svqa::baseline
