#ifndef SVQA_BASELINE_PARSE_BASELINES_H_
#define SVQA_BASELINE_PARSE_BASELINES_H_

#include <string>
#include <vector>

#include "nlp/clause_splitter.h"
#include "nlp/dependency_parser.h"
#include "nlp/pos_tagger.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace svqa::baseline {

/// \brief A simulated neural sentence-splitting baseline (Exp-4 /
/// Fig. 9a): ABCD-MLP, ABCD-bilinear, or DisSim.
///
/// The latency model is the one the paper's Figure 9(a) analysis
/// describes: a large one-time model load plus a small per-question
/// inference cost — versus our rule parser's zero load cost and larger
/// per-question cost. Functionally the split output is produced by the
/// shared rule pipeline (these baselines differ in speed, not task).
class NeuralSplitBaseline {
 public:
  /// \param load_factor multiplies CostKind::kModelLoad (6 s unit).
  /// \param per_question_factor multiplies
  /// CostKind::kNeuralParseInference (8 ms unit).
  NeuralSplitBaseline(std::string name, double load_factor,
                      double per_question_factor);

  static NeuralSplitBaseline AbcdMlp();
  static NeuralSplitBaseline AbcdBilinear();
  static NeuralSplitBaseline DisSim();

  /// Splits a complex question into simple clauses. The first call
  /// charges the model load.
  Result<std::vector<std::string>> Split(const std::string& question,
                                         SimClock* clock) const;

  const std::string& name() const { return name_; }
  /// Resets the loaded flag (a fresh process).
  void ResetLoadState() { loaded_ = false; }

 private:
  std::string name_;
  double load_factor_;
  double per_question_factor_;
  nlp::PosTagger tagger_;
  nlp::DependencyParser parser_;
  mutable bool loaded_ = false;
};

}  // namespace svqa::baseline

#endif  // SVQA_BASELINE_PARSE_BASELINES_H_
