#ifndef SVQA_BASELINE_VQA_BASELINES_H_
#define SVQA_BASELINE_VQA_BASELINES_H_

#include <string>
#include <vector>

#include "data/vqa2_generator.h"
#include "exec/executor.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace svqa::baseline {

/// \brief Behavioural profile of a simulated neural VQA baseline
/// (DESIGN.md §1). Per-image costs and error rates are calibrated so the
/// Table IV comparison reproduces the paper's *shape* (latency orders of
/// magnitude above SVQA; OFA the strongest baseline); exact values are
/// documented estimates.
struct BaselineProfile {
  std::string name;
  /// Virtual cost of one forward pass over one image for one simple
  /// question (multiplies CostKind::kNeuralImageInference's unit cost of
  /// 25 ms).
  double per_image_cost_factor = 1.0;
  /// One-time model-load factor (multiplies CostKind::kModelLoad).
  double load_cost_factor = 1.0;
  /// P(a true per-image fact is detected by the model).
  double detect_prob = 0.95;
  /// P(a spurious fact is reported on an arbitrary image).
  double false_positive_prob = 5e-4;
  /// P(the two-hop reasoning chain resolves correctly end to end).
  double reasoning_prob = 0.7;

  static BaselineProfile VisualBert();
  static BaselineProfile Vilt();
  static BaselineProfile Ofa();
};

/// \brief Per-image neural VQA baseline. Answers the modified-VQAv2
/// composite questions by running decomposed simple queries over every
/// image — the architectural cost SVQA's merged graph avoids.
class NeuralVqaModel {
 public:
  NeuralVqaModel(BaselineProfile profile, uint64_t seed);

  /// Answers one question over the dataset's image corpus. Charges the
  /// one-time load on first use plus per-image inference per sub-query.
  exec::Answer Answer(const data::Vqa2Question& question,
                      const data::World& world, SimClock* clock) const;

  const BaselineProfile& profile() const { return profile_; }

 private:
  /// Ground truth of a simple query within one scene: the object
  /// categories (or "yes" markers) the chain matches.
  static bool SceneSatisfiesChain(const vision::Scene& scene,
                                  const data::Vqa2Question& question,
                                  std::vector<std::string>* main_answers);

  BaselineProfile profile_;
  uint64_t seed_;
  mutable bool loaded_ = false;
};

}  // namespace svqa::baseline

#endif  // SVQA_BASELINE_VQA_BASELINES_H_
