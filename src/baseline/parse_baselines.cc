#include "baseline/parse_baselines.h"

#include "text/tokenizer.h"

namespace svqa::baseline {

NeuralSplitBaseline::NeuralSplitBaseline(std::string name, double load_factor,
                                         double per_question_factor)
    : name_(std::move(name)),
      load_factor_(load_factor),
      per_question_factor_(per_question_factor),
      tagger_(nlp::PosTagger::Default()) {}

NeuralSplitBaseline NeuralSplitBaseline::AbcdMlp() {
  return NeuralSplitBaseline("ABCD-MLP", /*load=*/0.75, /*per_q=*/1.0);
}

NeuralSplitBaseline NeuralSplitBaseline::AbcdBilinear() {
  return NeuralSplitBaseline("ABCD-bilinear", /*load=*/0.92, /*per_q=*/1.3);
}

NeuralSplitBaseline NeuralSplitBaseline::DisSim() {
  return NeuralSplitBaseline("DisSim", /*load=*/0.58, /*per_q=*/1.6);
}

Result<std::vector<std::string>> NeuralSplitBaseline::Split(
    const std::string& question, SimClock* clock) const {
  if (clock != nullptr) {
    if (!loaded_) {
      clock->Charge(CostKind::kModelLoad, load_factor_);
      loaded_ = true;
    }
    clock->Charge(CostKind::kNeuralParseInference, per_question_factor_);
  }
  // Functional output through the shared pipeline (no clock: the neural
  // inference charge above covers the work).
  const auto tokens = text::Tokenize(question);
  const auto tagged = tagger_.Tag(tokens);
  SVQA_ASSIGN_OR_RETURN(nlp::ParseOutput parse, parser_.Parse(tagged));
  return nlp::SplitClauses(parse);
}

}  // namespace svqa::baseline
