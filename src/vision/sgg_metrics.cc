#include "vision/sgg_metrics.h"

#include <algorithm>

namespace svqa::vision {

SggEvaluator::SggEvaluator(std::vector<std::string> predicates)
    : predicates_(std::move(predicates)) {
  Reset();
}

void SggEvaluator::Reset() {
  tallies_.clear();
  for (const auto& p : predicates_) tallies_[p] = Tally{};
}

void SggEvaluator::AddScene(const Scene& scene,
                            const SceneGraphResult& result) {
  // Rank all scored candidates by confidence descending (standard
  // Recall@K practice: the gate does not truncate the ranking). Falls
  // back to emitted relations for hand-built results.
  const auto& pool =
      result.candidates.empty() ? result.relations : result.candidates;
  std::vector<const PredictedRelation*> ranked;
  ranked.reserve(pool.size());
  for (const auto& rel : pool) ranked.push_back(&rel);
  std::sort(ranked.begin(), ranked.end(),
            [](const PredictedRelation* a, const PredictedRelation* b) {
              return a->score > b->score;
            });

  // Ground-truth bookkeeping.
  for (const SceneRelation& gt : scene.relations) {
    auto it = tallies_.find(gt.predicate);
    if (it == tallies_.end()) continue;  // predicate outside vocabulary
    it->second.total += 1.0;

    // Is this GT triple matched within the top-K predictions?
    auto matched_within = [&](std::size_t k) {
      const std::size_t limit = std::min(k, ranked.size());
      for (std::size_t i = 0; i < limit; ++i) {
        const PredictedRelation* pr = ranked[i];
        const int si = result.detections[pr->subject].truth_index;
        const int oi = result.detections[pr->object].truth_index;
        if (si == gt.subject && oi == gt.object &&
            pr->predicate == gt.predicate) {
          return true;
        }
      }
      return false;
    };
    if (matched_within(20)) it->second.matched_20 += 1.0;
    if (matched_within(50)) it->second.matched_50 += 1.0;
    if (matched_within(100)) it->second.matched_100 += 1.0;
  }
}

MeanRecallResult SggEvaluator::Evaluate() const {
  MeanRecallResult out;
  double sum20 = 0, sum50 = 0, sum100 = 0;
  int classes = 0;
  for (const auto& [pred, tally] : tallies_) {
    if (tally.total == 0) continue;
    ++classes;
    sum20 += tally.matched_20 / tally.total;
    sum50 += tally.matched_50 / tally.total;
    sum100 += tally.matched_100 / tally.total;
    out.per_predicate_at_100[pred] = tally.matched_100 / tally.total;
  }
  if (classes > 0) {
    out.mr_at_20 = sum20 / classes;
    out.mr_at_50 = sum50 / classes;
    out.mr_at_100 = sum100 / classes;
  }
  return out;
}

}  // namespace svqa::vision
