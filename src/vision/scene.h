#ifndef SVQA_VISION_SCENE_H_
#define SVQA_VISION_SCENE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace svqa::vision {

/// Dimensionality of simulated feature maps m_i.
inline constexpr std::size_t kFeatureDim = 32;

/// \brief Ground-truth object in a synthetic scene.
///
/// Substitutes for a COCO image region (DESIGN.md §1): the scene is the
/// *world state* a real image would depict; the SimulatedDetector derives
/// noisy detections from it exactly as Mask R-CNN derives them from
/// pixels.
struct SceneObject {
  /// Category label, e.g. "dog".
  std::string category;
  /// Named-entity identity when this object is a known individual
  /// ("ginny-weasley"); empty for anonymous objects.
  std::string instance;
  /// Ground-truth bounding box (x, y, w, h) in [0,1] image coordinates.
  std::array<float, 4> box{0, 0, 0, 0};
  /// Attribute labels ("red", "wooden").
  std::vector<std::string> attributes;
};

/// \brief Ground-truth directed relation between two scene objects.
struct SceneRelation {
  int subject = 0;  ///< Index into Scene::objects.
  int object = 0;   ///< Index into Scene::objects.
  std::string predicate;
};

/// \brief One synthetic "image": ground-truth objects and relations.
struct Scene {
  int32_t id = 0;
  std::vector<SceneObject> objects;
  std::vector<SceneRelation> relations;
  /// Human-readable caption (the MVQA annotation text).
  std::string caption;

  /// The ground-truth predicate from object a to object b, or "" if none.
  const std::string& PredicateBetween(int a, int b) const;
};

/// \brief Video data per the paper's §II definition: "the video data is
/// the collection of I" — an ordered sequence of frames, each a Scene.
/// The SVQA pipeline consumes frames exactly like independent images;
/// identity-aware counting keeps entities re-detected across frames from
/// being double counted.
struct Video {
  int32_t id = 0;
  std::vector<Scene> frames;
};

/// \brief Concatenates the frames of several videos into one image
/// corpus (the union of the paper's definition).
std::vector<Scene> FlattenVideos(const std::vector<Video>& videos);

}  // namespace svqa::vision

#endif  // SVQA_VISION_SCENE_H_
