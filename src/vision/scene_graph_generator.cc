#include "vision/scene_graph_generator.h"

#include <unordered_map>

namespace svqa::vision {

SceneGraphGenerator::SceneGraphGenerator(
    SimulatedDetector detector, std::shared_ptr<const RelationModel> model,
    InferenceMode mode)
    : detector_(std::move(detector)), model_(std::move(model)), mode_(mode) {}

SceneGraphResult SceneGraphGenerator::Generate(const Scene& scene,
                                               SimClock* clock) const {
  SceneGraphResult result;
  result.scene_id = scene.id;
  result.detections = detector_.Detect(scene);

  const auto& dets = result.detections;
  // Vertex per detection. Anonymous labels are made unique within the
  // image ("dog#0", "dog#1"); named entities keep their name.
  std::vector<graph::VertexId> vertex_of(dets.size());
  std::unordered_map<std::string, int> label_counts;
  for (std::size_t i = 0; i < dets.size(); ++i) {
    const Detection& d = dets[i];
    const bool named = d.truth_index >= 0 &&
                       !scene.objects[d.truth_index].instance.empty() &&
                       d.label == scene.objects[d.truth_index].instance;
    std::string label = d.label;
    std::string category = d.label;
    if (named) {
      category = scene.objects[d.truth_index].category;
    } else {
      const int k = label_counts[d.label]++;
      label = d.label + "#" + std::to_string(k);
    }
    vertex_of[i] =
        result.graph.AddVertex(std::move(label), std::move(category),
                               scene.id);
  }

  // Attribute vertices: one per predicted attribute, linked by
  // has-attribute edges (the substrate for "what color" questions).
  for (std::size_t i = 0; i < dets.size(); ++i) {
    for (const std::string& attr : dets[i].attributes) {
      const int k = label_counts[attr]++;
      const graph::VertexId av = result.graph.AddVertex(
          attr + "#" + std::to_string(k), attr, scene.id);
      if (result.graph.AddEdge(vertex_of[i], av, "has-attribute").ok()) {
        ++result.attribute_edges;
      }
    }
  }

  // Pairwise relation inference over all ordered pairs. Pairs whose
  // boxes are far apart are pruned up front (standard union-box
  // candidate filtering); the model's distance penalty handles the rest.
  for (std::size_t i = 0; i < dets.size(); ++i) {
    for (std::size_t j = 0; j < dets.size(); ++j) {
      if (i == j) continue;
      if (BoxCenterDistance(dets[i].box, dets[j].box) > 0.6) continue;
      PredictedRelation rel;
      const bool fired =
          PredictRelation(*model_, scene, dets, static_cast<int>(i),
                          static_cast<int>(j), mode_, &rel);
      result.candidates.push_back(rel);
      if (fired) {
        result.relations.push_back(rel);
        // Duplicate predictions for the same pair/predicate cannot occur
        // (one prediction per ordered pair), so AddEdge only fails for
        // self-loops, which are excluded above: a deliberate discard.
        (void)result.graph.AddEdge(vertex_of[i], vertex_of[j],
                                   rel.predicate);
      }
    }
  }

  if (clock != nullptr) clock->Charge(CostKind::kSceneGraphGen);
  return result;
}

std::vector<SceneGraphResult> SceneGraphGenerator::GenerateAll(
    const std::vector<Scene>& scenes, SimClock* clock) const {
  std::vector<SceneGraphResult> out;
  out.reserve(scenes.size());
  for (const Scene& scene : scenes) out.push_back(Generate(scene, clock));
  return out;
}

}  // namespace svqa::vision
