#include "vision/detector.h"

#include <algorithm>

namespace svqa::vision {

SimulatedDetector::SimulatedDetector(DetectorOptions options)
    : options_(options) {}

const std::vector<std::pair<std::string, std::string>>&
SimulatedDetector::ConfusionPairs() {
  // Plausible visual confusions; "teddy -> bear" reproduces the paper's
  // Figure 8(b) object-recognition failure.
  static const auto* pairs =
      new std::vector<std::pair<std::string, std::string>>{
          {"teddy", "bear"},   {"bear", "dog"},      {"dog", "cat"},
          {"cat", "dog"},      {"car", "truck"},     {"truck", "bus"},
          {"bus", "truck"},    {"bicycle", "motorcycle"},
          {"motorcycle", "bicycle"}, {"bird", "kite"}, {"kite", "bird"},
          {"horse", "dog"},    {"bench", "chair"},   {"chair", "bench"},
          {"tv", "laptop"},    {"laptop", "tv"},
      };
  return *pairs;
}

std::array<float, kFeatureDim> MakeFeature(const std::string& category,
                                           const std::string& instance,
                                           uint64_t seed) {
  Rng rng(HashCombine(HashCombine(StableHash64(category),
                                  StableHash64(instance)),
                      seed));
  std::array<float, kFeatureDim> f;
  for (auto& x : f) x = static_cast<float>(rng.NextGaussian());
  return f;
}

std::vector<Detection> SimulatedDetector::Detect(const Scene& scene) const {
  Rng rng(HashCombine(options_.seed, static_cast<uint64_t>(scene.id) *
                                         0x9e3779b97f4a7c15ULL));
  std::vector<Detection> detections;
  detections.reserve(scene.objects.size());

  for (std::size_t i = 0; i < scene.objects.size(); ++i) {
    const SceneObject& obj = scene.objects[i];
    if (rng.Chance(options_.miss_rate)) continue;  // missed detection

    Detection d;
    d.truth_index = static_cast<int>(i);
    d.box = obj.box;
    for (auto& coord : d.box) {
      coord += static_cast<float>(rng.NextGaussian() * options_.box_jitter *
                                  0.1);
      coord = std::clamp(coord, 0.0f, 1.0f);
    }

    // Label prediction with confusion noise.
    d.label = obj.category;
    if (rng.Chance(options_.misclassify_rate)) {
      for (const auto& [from, to] : ConfusionPairs()) {
        if (from == obj.category) {
          d.label = to;
          break;
        }
      }
    }

    // Named-entity identity: retained unless face recognition fails.
    std::string instance = obj.instance;
    if (!instance.empty() && rng.Chance(options_.identity_loss_rate)) {
      instance.clear();
    }
    if (!instance.empty()) d.label = instance;

    // Attribute prediction with swap noise.
    static const char* kAttributePool[] = {"red",   "blue",  "green",
                                           "yellow", "black", "white",
                                           "brown"};
    for (const std::string& attr : obj.attributes) {
      if (rng.Chance(options_.attribute_error_rate)) {
        d.attributes.push_back(kAttributePool[rng.Below(7)]);
      } else {
        d.attributes.push_back(attr);
      }
    }

    d.feature = MakeFeature(obj.category, obj.instance, options_.seed);
    // Feature noise.
    for (auto& x : d.feature) {
      x += static_cast<float>(rng.NextGaussian() * 0.05);
    }
    d.score = 0.75 + 0.25 * rng.NextDouble();
    detections.push_back(std::move(d));
  }
  return detections;
}

}  // namespace svqa::vision
