#ifndef SVQA_VISION_TDE_H_
#define SVQA_VISION_TDE_H_

#include <string>
#include <vector>

#include "vision/relation_model.h"

namespace svqa::vision {

/// \brief Inference modes for relation prediction.
enum class InferenceMode {
  /// Plain argmax over the unmasked logits (the "Original" rows of
  /// Table V).
  kOriginal,
  /// Total Direct Effect (paper Eq. 1-3, ref [24]): run the model twice,
  /// once with masked feature maps, and pick argmax(p - p') so the
  /// label-prior bias cancels.
  kTde,
};

const char* InferenceModeName(InferenceMode mode);

/// \brief A predicted relation for an ordered detection pair.
struct PredictedRelation {
  int subject = 0;  ///< Index into the detection vector.
  int object = 0;
  std::string predicate;
  double score = 0;  ///< Confidence used for Recall@K ranking.
};

/// \brief Applies Original or TDE inference to one pair. `out` is always
/// filled with the best non-background predicate and its confidence (the
/// ranked candidate used by Recall@K); the return value says whether the
/// existence gate fired (the pair becomes a scene-graph edge).
bool PredictRelation(const RelationModel& model, const Scene& scene,
                     const std::vector<Detection>& detections, int subject,
                     int object, InferenceMode mode, PredictedRelation* out);

}  // namespace svqa::vision

#endif  // SVQA_VISION_TDE_H_
