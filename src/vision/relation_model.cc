#include "vision/relation_model.h"

#include <algorithm>
#include <cmath>

namespace svqa::vision {

bool IsContactPredicate(std::string_view predicate) {
  return predicate == "wear" || predicate == "hold" ||
         predicate == "carry" || predicate == "ride";
}

double BoxCenterDistance(const std::array<float, 4>& a,
                         const std::array<float, 4>& b) {
  const double ax = a[0] + a[2] / 2.0, ay = a[1] + a[3] / 2.0;
  const double bx = b[0] + b[2] / 2.0, by = b[1] + b[3] / 2.0;
  return std::sqrt((ax - bx) * (ax - bx) + (ay - by) * (ay - by));
}

bool BoxesOverlap(const std::array<float, 4>& a,
                  const std::array<float, 4>& b) {
  return a[0] < b[0] + b[2] && b[0] < a[0] + a[2] && a[1] < b[1] + b[3] &&
         b[1] < a[1] + a[3];
}

const char* RelationModel::KindName(Kind kind) {
  switch (kind) {
    case Kind::kVTransE:
      return "VTransE";
    case Kind::kVCTree:
      return "VCTree";
    case Kind::kNeuralMotifs:
      return "Neural-Motifs";
  }
  return "?";
}

RelationModelOptions RelationModel::DefaultOptionsFor(Kind kind) {
  RelationModelOptions o;
  switch (kind) {
    case Kind::kVTransE:
      // Translation-embedding model: weakest context signal.
      o.content_strength = 1.70;
      o.shared_noise = 0.95;
      break;
    case Kind::kVCTree:
      // Dynamic-tree context propagation.
      o.content_strength = 1.95;
      o.shared_noise = 0.85;
      break;
    case Kind::kNeuralMotifs:
      // Sequential (LSTM) global context: strongest.
      o.content_strength = 2.05;
      o.shared_noise = 0.80;
      break;
  }
  return o;
}

RelationModel::RelationModel(Kind kind, std::vector<std::string> predicates,
                             RelationModelOptions options)
    : kind_(kind), predicates_(std::move(predicates)), options_(options) {
  marginal_bias_.assign(predicates_.size(), 1.0 / predicates_.size());
}

void RelationModel::FitBias(const std::vector<Scene>& corpus) {
  std::map<std::pair<std::string, std::string>, std::vector<double>> counts;
  std::vector<double> marginal(predicates_.size(), 1.0);  // add-one

  auto predicate_index = [this](const std::string& p) -> int {
    for (std::size_t i = 0; i < predicates_.size(); ++i) {
      if (predicates_[i] == p) return static_cast<int>(i);
    }
    return -1;
  };

  for (const Scene& scene : corpus) {
    for (const SceneRelation& rel : scene.relations) {
      const int pi = predicate_index(rel.predicate);
      if (pi < 0) continue;
      const auto key = std::make_pair(scene.objects[rel.subject].category,
                                      scene.objects[rel.object].category);
      auto& vec = counts[key];
      if (vec.empty()) vec.assign(predicates_.size(), 0.5);  // smoothing
      vec[pi] += 1.0;
      marginal[pi] += 1.0;
    }
  }

  // Normalize to conditional distributions.
  for (auto& [key, vec] : counts) {
    double total = 0;
    for (double c : vec) total += c;
    for (double& c : vec) c /= total;
  }
  double mtotal = 0;
  for (double c : marginal) mtotal += c;
  for (double& c : marginal) c /= mtotal;

  bias_ = std::move(counts);
  marginal_bias_ = std::move(marginal);
}

double RelationModel::BiasLogit(const std::string& la, const std::string& lb,
                                std::size_t predicate_index) const {
  auto it = bias_.find(std::make_pair(la, lb));
  const std::vector<double>& dist =
      it != bias_.end() ? it->second : marginal_bias_;
  // log-probability scaled by the bias strength; shifted so the mean
  // predicate sits near zero.
  const double p = std::max(dist[predicate_index], 1e-6);
  return options_.bias_strength *
         (std::log(p) - std::log(1.0 / predicates_.size()));
}

RelationLogits RelationModel::ScorePair(const Scene& scene,
                                        const Detection& a,
                                        const Detection& b,
                                        bool mask_features) const {
  RelationLogits logits(predicates_.size() + 1, 0.0);
  logits[0] = options_.background_logit;

  // The true relation content: readable only through intact features.
  int true_predicate = -1;
  if (!mask_features && a.truth_index >= 0 && b.truth_index >= 0) {
    const std::string& truth =
        scene.PredicateBetween(a.truth_index, b.truth_index);
    if (!truth.empty()) {
      for (std::size_t i = 0; i < predicates_.size(); ++i) {
        if (predicates_[i] == truth) {
          true_predicate = static_cast<int>(i);
          break;
        }
      }
    }
  }

  // Deterministic per-(scene, pair, predicate) noise. The shared part is
  // identical across masked/unmasked passes; the mask part is not.
  const uint64_t pair_seed = HashCombine(
      HashCombine(options_.seed, static_cast<uint64_t>(scene.id)),
      HashCombine(static_cast<uint64_t>(a.truth_index + 1) * 2654435761ULL,
                  static_cast<uint64_t>(b.truth_index + 1)));
  Rng shared_rng(pair_seed);
  Rng mask_rng(HashCombine(pair_seed, mask_features ? 0xdead : 0xbeef));

  // Geometry (boxes are never masked, so these terms appear in both
  // passes and cancel in the TDE difference, as they should).
  const double distance = BoxCenterDistance(a.box, b.box);
  const double proximity_penalty =
      options_.distance_penalty *
      std::max(0.0, distance - options_.proximity_radius);
  const bool contact = BoxesOverlap(a.box, b.box);

  const std::string& la = a.label;
  const std::string& lb = b.label;
  for (std::size_t i = 0; i < predicates_.size(); ++i) {
    double logit = BiasLogit(la, lb, i);
    if (static_cast<int>(i) == true_predicate) {
      logit += options_.content_strength;
    }
    logit -= proximity_penalty;
    if (!contact && IsContactPredicate(predicates_[i])) {
      logit -= options_.no_contact_penalty;
    }
    logit += shared_rng.NextGaussian() * options_.shared_noise;
    logit += mask_rng.NextGaussian() * options_.mask_noise;
    logits[i + 1] = logit;
  }
  // Unmasked features also signal the *absence* of an interaction.
  if (!mask_features && a.truth_index >= 0 && b.truth_index >= 0 &&
      scene.PredicateBetween(a.truth_index, b.truth_index).empty()) {
    logits[0] += options_.background_content_strength;
  }
  // Background noise (shared so TDE cancels it too).
  logits[0] += shared_rng.NextGaussian() * options_.shared_noise * 0.5;
  return logits;
}

std::vector<double> Softmax(const RelationLogits& logits) {
  std::vector<double> out(logits.size());
  double max_logit = *std::max_element(logits.begin(), logits.end());
  double total = 0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - max_logit);
    total += out[i];
  }
  for (double& p : out) p /= total;
  return out;
}

}  // namespace svqa::vision
