#ifndef SVQA_VISION_RELATION_MODEL_H_
#define SVQA_VISION_RELATION_MODEL_H_

#include <array>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "vision/detector.h"
#include "vision/scene.h"

namespace svqa::vision {

/// \brief Per-predicate logits for one ordered detection pair. Index 0 is
/// the implicit background ("no relation") class; index i>0 corresponds
/// to predicates()[i-1].
using RelationLogits = std::vector<double>;

/// \brief Tunable characteristics of a simulated relation predictor.
struct RelationModelOptions {
  /// Weight of the feature-derived (content) signal on the true
  /// predicate. Higher = the model reads relations from features better.
  double content_strength = 2.05;
  /// Std-dev of pair noise shared between masked and unmasked passes.
  double shared_noise = 0.8;
  /// Std-dev of noise that differs between masked and unmasked passes
  /// (limits how perfectly TDE can cancel the bias).
  double mask_noise = 0.35;
  /// Weight of the label-pair frequency prior (the training bias TDE
  /// removes). Sized so a head predicate's prior rivals the content
  /// signal — the regime where Original inference collapses tail
  /// predicates onto head ones and TDE pays off.
  double bias_strength = 2.2;
  /// Background (no relation) base logit.
  double background_logit = 1.6;
  /// Feature-derived evidence that a pair is *unrelated*: added to the
  /// background logit when features are unmasked and no true relation
  /// exists. Keeps the corpus-level false-edge rate realistic.
  double background_content_strength = 4.5;
  /// Per-unit penalty on all relation logits as box-center distance
  /// exceeds `proximity_radius` (union-box geometry: far-apart objects
  /// are rarely related). Geometry enters both the masked and unmasked
  /// passes (boxes are not masked), so TDE does not cancel it.
  double distance_penalty = 6.0;
  double proximity_radius = 0.25;
  /// Penalty on contact predicates (wear/hold/carry/ride) when the two
  /// boxes do not intersect at all.
  double no_contact_penalty = 5.0;
  uint64_t seed = 7;
};

/// \brief True for predicates that require physical contact (box
/// overlap): wear, hold, carry, ride.
bool IsContactPredicate(std::string_view predicate);

/// \brief Euclidean distance between two box centers.
double BoxCenterDistance(const std::array<float, 4>& a,
                         const std::array<float, 4>& b);

/// \brief True when two (x, y, w, h) boxes intersect.
bool BoxesOverlap(const std::array<float, 4>& a,
                  const std::array<float, 4>& b);

/// \brief Simulated scene-graph relation predictor.
///
/// Stands in for MOTIFNET / VCTree / VTransE (DESIGN.md §1). The logit of
/// predicate r for pair (a, b) decomposes exactly as the TDE analysis
/// (paper Eq. 1-3) assumes:
///
///     logit(r) = content(features, r) + bias(l_a, l_b, r) + noise
///
/// `content` carries the true relation only when features are unmasked;
/// `bias` is a label-pair frequency prior fitted from a corpus
/// (FitBias); `noise` is mostly shared between masked and unmasked
/// passes so that the TDE difference p - p' recovers content with a
/// small residual. The three Kinds differ in content strength and noise,
/// reproducing the Table V ordering (Motifs >= VCTree > VTransE).
class RelationModel {
 public:
  enum class Kind { kVTransE, kVCTree, kNeuralMotifs };

  static const char* KindName(Kind kind);

  /// Calibrated per-kind options (content strength / noise).
  static RelationModelOptions DefaultOptionsFor(Kind kind);

  /// \param predicates predicate vocabulary (without background).
  RelationModel(Kind kind, std::vector<std::string> predicates,
                RelationModelOptions options);

  /// Fits the label-pair predicate prior ("training bias") from a corpus
  /// of ground-truth scenes.
  void FitBias(const std::vector<Scene>& corpus);

  /// Logits for an ordered pair; `mask_features` zeroes the feature maps
  /// (paper Eq. 2), removing the content term.
  RelationLogits ScorePair(const Scene& scene, const Detection& a,
                           const Detection& b, bool mask_features) const;

  const std::vector<std::string>& predicates() const { return predicates_; }
  Kind kind() const { return kind_; }
  const RelationModelOptions& options() const { return options_; }

 private:
  double BiasLogit(const std::string& la, const std::string& lb,
                   std::size_t predicate_index) const;

  Kind kind_;
  std::vector<std::string> predicates_;
  RelationModelOptions options_;
  /// (subject label, object label) -> per-predicate probability.
  std::map<std::pair<std::string, std::string>, std::vector<double>> bias_;
  /// Marginal predicate prior (fallback for unseen label pairs).
  std::vector<double> marginal_bias_;
};

/// \brief Softmax over logits.
std::vector<double> Softmax(const RelationLogits& logits);

}  // namespace svqa::vision

#endif  // SVQA_VISION_RELATION_MODEL_H_
