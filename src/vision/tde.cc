#include "vision/tde.h"

#include <algorithm>

namespace svqa::vision {

const char* InferenceModeName(InferenceMode mode) {
  return mode == InferenceMode::kOriginal ? "Original" : "TDE";
}

bool PredictRelation(const RelationModel& model, const Scene& scene,
                     const std::vector<Detection>& detections, int subject,
                     int object, InferenceMode mode, PredictedRelation* out) {
  const Detection& a = detections[subject];
  const Detection& b = detections[object];

  const RelationLogits logits =
      model.ScorePair(scene, a, b, /*mask_features=*/false);
  const std::vector<double> p = Softmax(logits);

  // Existence gate: the unmasked model must prefer some relation over
  // background.
  const std::size_t arg_unmasked = static_cast<std::size_t>(
      std::max_element(p.begin(), p.end()) - p.begin());

  // Best non-background candidate (always reported, for Recall@K
  // ranking even when the gate stays closed).
  std::size_t chosen = 1;
  for (std::size_t i = 2; i < p.size(); ++i) {
    if (p[i] > p[chosen]) chosen = i;
  }
  double score = p[chosen];

  if (mode == InferenceMode::kTde) {
    const RelationLogits masked_logits =
        model.ScorePair(scene, a, b, /*mask_features=*/true);
    const std::vector<double> p_masked = Softmax(masked_logits);
    // argmax over non-background classes of the total direct effect.
    double best = -2.0;
    for (std::size_t i = 1; i < p.size(); ++i) {
      const double diff = p[i] - p_masked[i];
      if (diff > best) {
        best = diff;
        chosen = i;
      }
    }
    score = best;
  }

  out->subject = subject;
  out->object = object;
  out->predicate = model.predicates()[chosen - 1];
  out->score = score;
  return arg_unmasked != 0;
}

}  // namespace svqa::vision
