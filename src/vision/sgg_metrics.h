#ifndef SVQA_VISION_SGG_METRICS_H_
#define SVQA_VISION_SGG_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "vision/scene_graph_generator.h"

namespace svqa::vision {

/// \brief Mean Recall at the three standard cutoffs (Table V).
struct MeanRecallResult {
  double mr_at_20 = 0;
  double mr_at_50 = 0;
  double mr_at_100 = 0;
  /// Per-predicate recall at K=100 (diagnostic).
  std::map<std::string, double> per_predicate_at_100;
};

/// \brief Scene-graph evaluation: mean recall mR@K.
///
/// For each scene, predicted triples are ranked by score and the top K
/// are matched against ground truth (subject object identity via
/// truth_index + exact predicate). Recall is accumulated *per predicate
/// class* over the dataset and averaged across classes — the metric that
/// exposes head-predicate bias (tail classes never reach the top K of a
/// biased model).
class SggEvaluator {
 public:
  /// \param predicates the predicate vocabulary to average over.
  explicit SggEvaluator(std::vector<std::string> predicates);

  /// Accumulates one scene's predictions against its ground truth.
  void AddScene(const Scene& scene, const SceneGraphResult& result);

  /// Computes mR@{20,50,100} over everything accumulated so far.
  MeanRecallResult Evaluate() const;

  void Reset();

 private:
  struct Tally {
    double matched_20 = 0, matched_50 = 0, matched_100 = 0;
    double total = 0;
  };

  std::vector<std::string> predicates_;
  std::map<std::string, Tally> tallies_;
};

}  // namespace svqa::vision

#endif  // SVQA_VISION_SGG_METRICS_H_
