#include "vision/scene.h"

namespace svqa::vision {

const std::string& Scene::PredicateBetween(int a, int b) const {
  static const std::string kEmpty;
  for (const auto& rel : relations) {
    if (rel.subject == a && rel.object == b) return rel.predicate;
  }
  return kEmpty;
}

std::vector<Scene> FlattenVideos(const std::vector<Video>& videos) {
  std::vector<Scene> frames;
  for (const Video& video : videos) {
    frames.insert(frames.end(), video.frames.begin(), video.frames.end());
  }
  return frames;
}

}  // namespace svqa::vision
