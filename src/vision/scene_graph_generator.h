#ifndef SVQA_VISION_SCENE_GRAPH_GENERATOR_H_
#define SVQA_VISION_SCENE_GRAPH_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/sim_clock.h"
#include "vision/detector.h"
#include "vision/relation_model.h"
#include "vision/tde.h"

namespace svqa::vision {

/// \brief A generated scene graph G_sg(I): the graph plus the raw
/// detections and scored relations (kept for SGG metrics).
struct SceneGraphResult {
  graph::Graph graph;
  std::vector<Detection> detections;
  /// Relations that passed the existence gate (= the graph's edges).
  std::vector<PredictedRelation> relations;
  /// Every scored candidate pair (superset of `relations`), ranked by
  /// the SGG evaluator for Recall@K.
  std::vector<PredictedRelation> candidates;
  /// Attribute edges emitted (object --has-attribute--> value vertex).
  std::size_t attribute_edges = 0;
  int32_t scene_id = 0;
};

/// \brief End-to-end scene graph generation (§III-A): simulated detector
/// -> relation model -> Original or TDE inference -> graph::Graph.
///
/// Vertex labels: the detection label (instance name for recognized
/// entities, otherwise "category#k" to keep labels unique within an
/// image); vertex category: the detected class; source_image: scene id.
class SceneGraphGenerator {
 public:
  SceneGraphGenerator(SimulatedDetector detector,
                      std::shared_ptr<const RelationModel> model,
                      InferenceMode mode);

  /// Generates the scene graph for one scene. Charges
  /// CostKind::kSceneGraphGen when `clock` is given.
  SceneGraphResult Generate(const Scene& scene,
                            SimClock* clock = nullptr) const;

  /// Generates scene graphs for a corpus.
  std::vector<SceneGraphResult> GenerateAll(const std::vector<Scene>& scenes,
                                            SimClock* clock = nullptr) const;

  InferenceMode mode() const { return mode_; }
  const RelationModel& model() const { return *model_; }
  const SimulatedDetector& detector() const { return detector_; }

 private:
  SimulatedDetector detector_;
  std::shared_ptr<const RelationModel> model_;
  InferenceMode mode_;
};

}  // namespace svqa::vision

#endif  // SVQA_VISION_SCENE_GRAPH_GENERATOR_H_
