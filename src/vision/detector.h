#ifndef SVQA_VISION_DETECTOR_H_
#define SVQA_VISION_DETECTOR_H_

#include <array>
#include <string>
#include <vector>

#include "util/rng.h"
#include "vision/scene.h"

namespace svqa::vision {

/// \brief One detection: bounding box b_i, feature map m_i, label l_i
/// (the v_i = (b_i, m_i, l_i) triple of §III-A).
struct Detection {
  std::array<float, 4> box{0, 0, 0, 0};
  std::array<float, kFeatureDim> feature{};
  std::string label;
  /// Predicted attribute labels ("red", "wooden").
  std::vector<std::string> attributes;
  double score = 0;
  /// Index of the originating ground-truth object (-1 for a spurious
  /// detection); consumed by metrics and the relation-model oracle only,
  /// never by query-side code.
  int truth_index = -1;
};

/// \brief Detector noise model.
struct DetectorOptions {
  /// Probability an object is missed entirely.
  double miss_rate = 0.04;
  /// Probability a detected object receives a confusable wrong label
  /// (teddy bear -> bear, dog -> cat, ... per the confusion table).
  double misclassify_rate = 0.08;
  /// Multiplicative jitter applied to box coordinates.
  double box_jitter = 0.04;
  /// Probability a named entity loses its identity and is labeled by
  /// bare category (face recognition failure).
  double identity_loss_rate = 0.03;
  /// Probability an attribute is predicted wrongly (swapped for another
  /// attribute from the vocabulary).
  double attribute_error_rate = 0.05;
  uint64_t seed = 1;
};

/// \brief Mask R-CNN stand-in: derives noisy detections from ground-truth
/// scenes. Deterministic given (options.seed, scene.id).
class SimulatedDetector {
 public:
  explicit SimulatedDetector(DetectorOptions options = {});

  /// Runs "object detection" on one scene.
  std::vector<Detection> Detect(const Scene& scene) const;

  /// The label confusion table (category -> plausible wrong label).
  static const std::vector<std::pair<std::string, std::string>>&
  ConfusionPairs();

  const DetectorOptions& options() const { return options_; }

 private:
  DetectorOptions options_;
};

/// \brief Deterministic feature map for a category/instance: detections
/// of the same underlying thing embed nearby; the relation models read
/// the relation signal through `truth_index` (features stand in for the
/// RPN activations).
std::array<float, kFeatureDim> MakeFeature(const std::string& category,
                                           const std::string& instance,
                                           uint64_t seed);

}  // namespace svqa::vision

#endif  // SVQA_VISION_DETECTOR_H_
