#ifndef SVQA_QUERY_QUERY_GRAPH_H_
#define SVQA_QUERY_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "nlp/spoc_extractor.h"
#include "query/spoc.h"
#include "util/result.h"

namespace svqa::query {

/// \brief Directed edge of the query graph: `producer` executes first and
/// its bindings replace a role of `consumer` (Definition 3).
struct QueryEdge {
  int producer = 0;
  int consumer = 0;
  DependencyKind kind = DependencyKind::kS2S;
};

/// \brief The query graph G_q = (V_q, E_q): one SPOC vertex per clause,
/// dependency edges from condition clauses toward the main clause.
/// Acyclic by construction (edges always point from a later clause to an
/// earlier one).
class QueryGraph {
 public:
  QueryGraph() = default;
  QueryGraph(std::string question, nlp::QuestionType type,
             std::vector<nlp::Spoc> vertices, std::vector<QueryEdge> edges);

  const std::string& question() const { return question_; }
  nlp::QuestionType type() const { return type_; }
  const std::vector<nlp::Spoc>& vertices() const { return vertices_; }
  const std::vector<QueryEdge>& edges() const { return edges_; }
  std::size_t size() const { return vertices_.size(); }

  /// Vertices with zero in-degree — the starting points of Algorithm 3
  /// (conditions with no further conditions).
  std::vector<int> StartVertices() const;

  /// Edges whose producer is `v` (the S(u,1) neighbours to update).
  std::vector<QueryEdge> EdgesFromProducer(int v) const;

  /// Number of edges arriving at consumer `v`.
  std::size_t InDegree(int v) const;

  /// A topological execution order (producers before consumers). Fails if
  /// the graph is cyclic (cannot happen for builder-produced graphs; the
  /// check protects hand-built ones).
  Result<std::vector<int>> TopologicalOrder() const;

  /// Debug rendering.
  std::string ToString() const;

 private:
  std::string question_;
  nlp::QuestionType type_ = nlp::QuestionType::kReasoning;
  std::vector<nlp::Spoc> vertices_;
  std::vector<QueryEdge> edges_;
};

}  // namespace svqa::query

#endif  // SVQA_QUERY_QUERY_GRAPH_H_
