#ifndef SVQA_QUERY_QUERY_GRAPH_BUILDER_H_
#define SVQA_QUERY_QUERY_GRAPH_BUILDER_H_

#include <string>

#include "nlp/dependency_parser.h"
#include "nlp/pos_tagger.h"
#include "nlp/spoc_extractor.h"
#include "query/query_graph.h"
#include "text/lexicon.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace svqa::query {

/// \brief Algorithm 2 end-to-end: question text -> tokens -> POS ->
/// dependency tree -> clauses -> SPOCs -> query graph.
///
/// The Connect Stage creates an edge from every later clause whose
/// subject/object overlaps a role of an earlier clause (conditions feed
/// the main clause), labeled with the DependencyKind that tells the
/// executor which role to replace.
class QueryGraphBuilder {
 public:
  /// \param lexicon shared canonicalization lexicon (must outlive the
  /// builder).
  explicit QueryGraphBuilder(const text::SynonymLexicon* lexicon);

  /// Builds the query graph for a natural-language question.
  Result<QueryGraph> Build(const std::string& question,
                           SimClock* clock = nullptr) const;

  /// Feeds the tagger's gazetteer with entity labels (typically the
  /// knowledge graph's vertex labels) so proper names tag as NNP.
  void RegisterEntityNames(const std::vector<std::string>& labels) {
    tagger_.RegisterEntityNames(labels);
  }

  /// One question's outcome in a parallel batch parse.
  struct ParseOutcome {
    Status status;
    QueryGraph graph;
    /// Virtual time this question's parse consumed.
    double micros = 0;
  };

  /// Batch result: outcomes in input order plus the batch's virtual
  /// latency (makespan over workers).
  struct BatchParseResult {
    std::vector<ParseOutcome> outcomes;
    double makespan_micros = 0;
  };

  /// Parses a batch of questions across `workers` threads — the paper's
  /// §VII observation that the rule parser, unlike the neural splitters,
  /// parallelizes trivially (no shared model state). Questions are dealt
  /// round-robin; the virtual makespan is the max per-worker total.
  /// Build must not race with RegisterEntityNames.
  BatchParseResult BuildAll(const std::vector<std::string>& questions,
                            std::size_t workers) const;

  const nlp::PosTagger& tagger() const { return tagger_; }

 private:
  const text::SynonymLexicon* lexicon_;
  nlp::PosTagger tagger_;
  nlp::DependencyParser parser_;
  nlp::SpocExtractor extractor_;
};

}  // namespace svqa::query

#endif  // SVQA_QUERY_QUERY_GRAPH_BUILDER_H_
