#include "query/spoc.h"

namespace svqa::query {

std::string_view DependencyKindName(DependencyKind kind) {
  switch (kind) {
    case DependencyKind::kS2S:
      return "S2S";
    case DependencyKind::kS2O:
      return "S2O";
    case DependencyKind::kO2S:
      return "O2S";
    case DependencyKind::kO2O:
      return "O2O";
  }
  return "?";
}

bool ElementsOverlap(const nlp::SpocElement& a, const nlp::SpocElement& b,
                     const text::SynonymLexicon& lexicon) {
  if (a.empty() || b.empty()) return false;
  if (a.is_variable || b.is_variable) return false;
  if (!lexicon.AreSynonyms(a.head, b.head)) return false;
  if (!a.owner.empty() && !b.owner.empty() && a.owner != b.owner) {
    return false;
  }
  return true;
}

std::optional<DependencyKind> MatchSpocs(
    const nlp::Spoc& consumer, const nlp::Spoc& producer,
    const text::SynonymLexicon& lexicon) {
  if (ElementsOverlap(consumer.subject, producer.subject, lexicon)) {
    return DependencyKind::kS2S;
  }
  if (ElementsOverlap(consumer.subject, producer.object, lexicon)) {
    return DependencyKind::kS2O;
  }
  if (ElementsOverlap(consumer.object, producer.subject, lexicon)) {
    return DependencyKind::kO2S;
  }
  if (ElementsOverlap(consumer.object, producer.object, lexicon)) {
    return DependencyKind::kO2O;
  }
  return std::nullopt;
}

}  // namespace svqa::query
