#include "query/query_graph.h"

#include <deque>
#include <sstream>

namespace svqa::query {

QueryGraph::QueryGraph(std::string question, nlp::QuestionType type,
                       std::vector<nlp::Spoc> vertices,
                       std::vector<QueryEdge> edges)
    : question_(std::move(question)),
      type_(type),
      vertices_(std::move(vertices)),
      edges_(std::move(edges)) {}

std::vector<int> QueryGraph::StartVertices() const {
  std::vector<int> out;
  for (int v = 0; v < static_cast<int>(vertices_.size()); ++v) {
    if (InDegree(v) == 0) out.push_back(v);
  }
  return out;
}

std::vector<QueryEdge> QueryGraph::EdgesFromProducer(int v) const {
  std::vector<QueryEdge> out;
  for (const QueryEdge& e : edges_) {
    if (e.producer == v) out.push_back(e);
  }
  return out;
}

std::size_t QueryGraph::InDegree(int v) const {
  std::size_t n = 0;
  for (const QueryEdge& e : edges_) {
    if (e.consumer == v) ++n;
  }
  return n;
}

Result<std::vector<int>> QueryGraph::TopologicalOrder() const {
  std::vector<std::size_t> indegree(vertices_.size(), 0);
  for (const QueryEdge& e : edges_) ++indegree[e.consumer];
  std::deque<int> ready;
  for (int v = 0; v < static_cast<int>(vertices_.size()); ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  std::vector<int> order;
  while (!ready.empty()) {
    int v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (const QueryEdge& e : edges_) {
      if (e.producer == v && --indegree[e.consumer] == 0) {
        ready.push_back(e.consumer);
      }
    }
  }
  if (order.size() != vertices_.size()) {
    return Status::InvalidArgument("query graph contains a cycle");
  }
  return order;
}

std::string QueryGraph::ToString() const {
  std::ostringstream os;
  os << "QueryGraph(" << nlp::QuestionTypeName(type_) << ", "
     << vertices_.size() << " vertices)\n";
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    os << "  v" << i << " " << vertices_[i].ToString() << '\n';
  }
  for (const QueryEdge& e : edges_) {
    os << "  v" << e.producer << " -" << DependencyKindName(e.kind) << "-> v"
       << e.consumer << '\n';
  }
  return os.str();
}

}  // namespace svqa::query
