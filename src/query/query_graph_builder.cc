#include "query/query_graph_builder.h"

#include <algorithm>

#include "text/tokenizer.h"
#include "util/thread_pool.h"

namespace svqa::query {

QueryGraphBuilder::QueryGraphBuilder(const text::SynonymLexicon* lexicon)
    : lexicon_(lexicon),
      tagger_(nlp::PosTagger::Default()),
      extractor_(lexicon) {}

Result<QueryGraph> QueryGraphBuilder::Build(const std::string& question,
                                            SimClock* clock) const {
  // Initial Stage: POS + dependency tree.
  const auto tokens = text::Tokenize(question);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty question");
  }
  const auto tagged = tagger_.Tag(tokens, clock);
  SVQA_ASSIGN_OR_RETURN(nlp::ParseOutput parse,
                        parser_.Parse(tagged, clock));

  // Parse Stage: clauses -> SPOC quadruples.
  SVQA_ASSIGN_OR_RETURN(nlp::SpocExtraction extraction,
                        extractor_.Extract(parse, clock));

  // Connect Stage: overlap matching between clause pairs. Clauses are in
  // sentence order; a later clause is a condition of an earlier one, so
  // edges run later -> earlier. Each producer links to its nearest
  // matching consumer only, keeping chains (c2 -> c1 -> c0) instead of
  // redundant skip edges.
  std::vector<QueryEdge> edges;
  const int n = static_cast<int>(extraction.spocs.size());
  for (int producer = 1; producer < n; ++producer) {
    for (int consumer = producer - 1; consumer >= 0; --consumer) {
      auto kind = MatchSpocs(extraction.spocs[consumer],
                             extraction.spocs[producer], *lexicon_);
      if (kind.has_value()) {
        edges.push_back(QueryEdge{producer, consumer, *kind});
        break;  // nearest consumer only
      }
    }
  }

  return QueryGraph(question, extraction.type, std::move(extraction.spocs),
                    std::move(edges));
}

QueryGraphBuilder::BatchParseResult QueryGraphBuilder::BuildAll(
    const std::vector<std::string>& questions, std::size_t workers) const {
  BatchParseResult result;
  result.outcomes.resize(questions.size());
  if (questions.empty()) return result;
  workers = std::max<std::size_t>(1, workers);

  ThreadPool pool(workers);
  pool.ParallelFor(questions.size(), [&](std::size_t i) {
    SimClock clock;
    auto built = Build(questions[i], &clock);
    ParseOutcome& out = result.outcomes[i];
    out.status = built.status();
    if (built.ok()) out.graph = std::move(*built);
    out.micros = clock.ElapsedMicros();
  });

  // Deterministic makespan: round-robin worker accounting over the
  // per-question virtual costs (independent of real thread scheduling).
  std::vector<double> worker_totals(workers, 0.0);
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    worker_totals[i % workers] += result.outcomes[i].micros;
  }
  result.makespan_micros =
      *std::max_element(worker_totals.begin(), worker_totals.end());
  return result;
}

}  // namespace svqa::query
