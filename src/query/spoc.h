#ifndef SVQA_QUERY_SPOC_H_
#define SVQA_QUERY_SPOC_H_

#include <optional>
#include <string_view>

#include "nlp/spoc_extractor.h"
#include "text/lexicon.h"

namespace svqa::query {

/// \brief Inter-clause dependency kinds (§IV-C). The first letter names
/// the role in the *consumer* vertex that gets replaced; the second the
/// role in the *producer* vertex that supplies the binding (matching the
/// Replace() calls of Algorithm 3 lines 14-17).
enum class DependencyKind {
  kS2S,  ///< consumer subject <- producer subject
  kS2O,  ///< consumer subject <- producer object
  kO2S,  ///< consumer object  <- producer subject
  kO2O,  ///< consumer object  <- producer object
};

std::string_view DependencyKindName(DependencyKind kind);

/// \brief True when two SPOC elements denote the same entity/role — the
/// SOOverlap predicate of Algorithm 2 line 13. Variables never join
/// (they are outputs, not keys); otherwise heads must share a canonical
/// concept, and possessive owners must agree when both are present.
bool ElementsOverlap(const nlp::SpocElement& a, const nlp::SpocElement& b,
                     const text::SynonymLexicon& lexicon);

/// \brief The SOMatching step of Algorithm 2 line 14: finds the
/// dependency kind linking consumer and producer SPOCs, if any. When
/// several roles overlap, subject-subject wins (the strongest signal per
/// §IV-C).
std::optional<DependencyKind> MatchSpocs(const nlp::Spoc& consumer,
                                         const nlp::Spoc& producer,
                                         const text::SynonymLexicon& lexicon);

}  // namespace svqa::query

#endif  // SVQA_QUERY_SPOC_H_
