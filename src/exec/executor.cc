#include "exec/executor.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace svqa::exec {

std::string SupportFact::ToString() const {
  std::ostringstream os;
  os << "{" << subject << ", " << predicate << ", " << object << "}";
  if (image == graph::kKnowledgeGraphSource) {
    os << " (knowledge graph)";
  } else {
    os << " (image " << image << ")";
  }
  return os.str();
}

QueryGraphExecutor::QueryGraphExecutor(const aggregator::MergedGraph* merged,
                                       const text::EmbeddingModel* embeddings,
                                       KeyCentricCache* cache,
                                       ExecutorOptions options)
    : merged_(merged),
      embeddings_(embeddings),
      matcher_(merged, embeddings, options.matcher),
      cache_(cache),
      options_(options) {}

std::string QueryGraphExecutor::PathKey(const nlp::Spoc& spoc) {
  return "path:" + VertexMatcher::ScopeKey(spoc.subject) + "|" +
         spoc.predicate + "|" + VertexMatcher::ScopeKey(spoc.object);
}

std::vector<graph::VertexId> QueryGraphExecutor::ResolveScope(
    const nlp::SpocElement& element, SimClock* clock) const {
  const std::string key = VertexMatcher::ScopeKey(element);
  if (cache_ != nullptr) {
    if (auto hit = cache_->GetScope(key, clock)) return std::move(*hit);
  }
  std::vector<graph::VertexId> scope = matcher_.Match(element, clock);
  if (cache_ != nullptr) cache_->PutScope(key, scope);
  return scope;
}

std::string QueryGraphExecutor::MatchPredicateLabel(
    const std::string& predicate, SimClock* clock) const {
  if (options_.memoize_similarity) {
    if (auto hit = predicate_label_memo_.Get(predicate)) {
      if (clock != nullptr) clock->Charge(CostKind::kCacheProbe);
      return std::move(*hit);
    }
  }
  const auto& labels = merged_->graph.EdgeLabels();
  if (clock != nullptr) {
    clock->Charge(CostKind::kEmbeddingSim,
                  static_cast<double>(labels.size()));
  }
  // Exact canonical hit first; embedding similarity otherwise. The
  // resolution is a pure function of the immutable merged graph, so the
  // memoized value is identical no matter which query computed it.
  std::string resolved = predicate;  // no plausible label drops all pairs
  bool found = false;
  for (const auto& label : labels) {
    if (label == predicate) {
      resolved = label;
      found = true;
      break;
    }
  }
  if (!found) {
    const auto& lexicon = embeddings_->lexicon();
    for (const auto& label : labels) {
      if (lexicon.AreSynonyms(label, predicate)) {
        resolved = label;
        found = true;
        break;
      }
    }
  }
  if (!found) {
    auto [best, score] = embeddings_->MostSimilar(predicate, labels);
    if (best >= 0 && score >= options_.predicate_similarity_threshold) {
      resolved = labels[static_cast<std::size_t>(best)];
    }
  }
  if (options_.memoize_similarity) {
    predicate_label_memo_.Put(predicate, resolved);
  }
  return resolved;
}

std::vector<RelationPair> QueryGraphExecutor::ApplyConstraint(
    std::vector<RelationPair> pairs, const std::string& constraint,
    SimClock* clock) const {
  if (constraint.empty() || pairs.empty()) return pairs;
  // Con <- maxScore(L(c_c), S): resolve the constraint phrase against the
  // predefined word set (Algorithm 3 line 9), through the memo so a
  // repeated constraint charges one probe instead of a keyword sweep.
  ConstraintSpec spec;
  bool resolved = false;
  if (options_.memoize_similarity) {
    if (auto hit = constraint_memo_.Get(constraint)) {
      if (clock != nullptr) clock->Charge(CostKind::kCacheProbe);
      spec = std::move(*hit);
      resolved = true;
    }
  }
  if (!resolved) {
    spec = ResolveConstraint(constraint, *embeddings_, clock);
    if (options_.memoize_similarity) constraint_memo_.Put(constraint, spec);
  }
  if (spec.kind == ConstraintKind::kNone) return pairs;
  const bool most = spec.kind == ConstraintKind::kMostFrequent;

  // Group by subject identity (the constrained entity) and keep the
  // group(s) with the max (min) support — "most frequently" semantics.
  std::map<std::string, std::vector<RelationPair>> groups;
  for (auto& p : pairs) {
    groups[NormalizeVertexAnswer(p.subject, /*want_kind=*/false)]
        .push_back(p);
  }
  std::size_t extreme = most ? 0 : pairs.size() + 1;
  for (const auto& [key, group] : groups) {
    if (most) {
      extreme = std::max(extreme, group.size());
    } else {
      extreme = std::min(extreme, group.size());
    }
  }
  std::vector<RelationPair> out;
  for (const auto& [key, group] : groups) {
    if (group.size() == extreme) {
      out.insert(out.end(), group.begin(), group.end());
    }
  }
  return out;
}

std::string QueryGraphExecutor::NormalizeVertexAnswer(graph::VertexId v,
                                                      bool want_kind) const {
  const graph::Vertex& vx = merged_->graph.vertex(v);
  if (want_kind) return vx.category;
  std::string label = vx.label;
  if (auto pos = label.find('#'); pos != std::string::npos) {
    // Anonymous scene object: the category is the informative part.
    return vx.category;
  }
  return label;
}

Answer QueryGraphExecutor::MakeAnswer(
    const query::QueryGraph& gq, const nlp::Spoc& spoc,
    const std::vector<RelationPair>& pairs) const {
  Answer ans;
  ans.type = gq.type();

  // Which side of the relation pairs carries the asked-for value?
  const bool subject_var = spoc.subject.is_variable;
  const bool object_var = spoc.object.is_variable;
  const nlp::SpocElement& var_el = object_var ? spoc.object : spoc.subject;

  // Evidence sample for provenance.
  for (const auto& p : pairs) {
    if (ans.provenance.size() >= Answer::kMaxProvenance) break;
    SupportFact fact;
    const auto& sv = merged_->graph.vertex(p.subject);
    const auto& ov = merged_->graph.vertex(p.object);
    fact.subject = sv.label;
    fact.predicate = p.predicate;
    fact.object = ov.label;
    fact.image = sv.source_image != graph::kKnowledgeGraphSource
                     ? sv.source_image
                     : ov.source_image;
    ans.provenance.push_back(std::move(fact));
  }

  switch (gq.type()) {
    case nlp::QuestionType::kJudgment: {
      ans.yes = !pairs.empty();
      ans.text = ans.yes ? "yes" : "no";
      break;
    }
    case nlp::QuestionType::kCounting: {
      // Accumulate across images: distinct identities. "How many kinds
      // of X" counts categories; entity counting counts names. An
      // anonymous detection ("wizard#3") of an entity category is an
      // *unresolvable* individual — it may be a re-detection of an
      // already-counted entity in another image — so it is excluded from
      // identity counts rather than inflating them.
      std::unordered_set<std::string> distinct;
      for (const auto& p : pairs) {
        const graph::VertexId v = object_var ? p.object : p.subject;
        if (!var_el.want_kind &&
            merged_->graph.vertex(v).label.find('#') != std::string::npos) {
          continue;
        }
        distinct.insert(NormalizeVertexAnswer(v, var_el.want_kind));
      }
      ans.count = static_cast<int64_t>(distinct.size());
      ans.text = std::to_string(ans.count);
      break;
    }
    case nlp::QuestionType::kReasoning: {
      // Vote over normalized answers of the variable side; most frequent
      // first (the paper's top-1 selection).
      std::map<std::string, std::size_t> votes;
      for (const auto& p : pairs) {
        const graph::VertexId v =
            (object_var || !subject_var) ? p.object : p.subject;
        ++votes[NormalizeVertexAnswer(v, var_el.want_kind)];
      }
      std::vector<std::pair<std::string, std::size_t>> ranked(votes.begin(),
                                                              votes.end());
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      for (const auto& [label, n] : ranked) ans.entities.push_back(label);
      ans.text = ans.entities.empty() ? "unknown" : ans.entities.front();
      break;
    }
  }
  return ans;
}

Result<Answer> QueryGraphExecutor::Execute(const query::QueryGraph& gq,
                                           SimClock* clock) const {
  if (gq.size() == 0) {
    return Status::InvalidArgument("empty query graph");
  }
  SVQA_ASSIGN_OR_RETURN(std::vector<int> order, gq.TopologicalOrder());

  // Per-vertex role bindings pushed by producers (Update Stage).
  std::vector<std::optional<std::vector<graph::VertexId>>> subj_binding(
      gq.size());
  std::vector<std::optional<std::vector<graph::VertexId>>> obj_binding(
      gq.size());

  Answer final_answer;
  bool answered = false;

  for (int u : order) {
    const nlp::Spoc& spoc = gq.vertices()[u];

    // --- Query Stage ---
    // The path cache is consulted first (§V-B): a hit supplies the whole
    // relation-pair set, skipping both matchVertex scans and the
    // adjacency traversal. Only vertices without question-specific
    // bindings are path-cacheable.
    const bool cacheable =
        !subj_binding[u].has_value() && !obj_binding[u].has_value();
    std::vector<RelationPair> rp;
    bool from_cache = false;
    if (cacheable && cache_ != nullptr) {
      if (auto hit = cache_->GetPath(PathKey(spoc), clock)) {
        rp = std::move(*hit);
        from_cache = true;
      }
    }
    if (!from_cache) {
      const std::vector<graph::VertexId> subjects =
          subj_binding[u].has_value() ? *subj_binding[u]
                                      : ResolveScope(spoc.subject, clock);
      const std::vector<graph::VertexId> objects =
          obj_binding[u].has_value() ? *obj_binding[u]
                                     : ResolveScope(spoc.object, clock);
      rp = FindRelationPairs(merged_->graph, subjects, objects, clock);
      if (cacheable && cache_ != nullptr) {
        cache_->PutPath(PathKey(spoc), rp);
      }
    }

    // Predicate filter: keep pairs whose label is the predicate, one of
    // its lexicon synonyms, or (fallback) the embedding-closest label.
    const auto& lexicon = embeddings_->lexicon();
    std::vector<RelationPair> ap;
    ap.reserve(rp.size());
    for (const auto& p : rp) {
      if (p.predicate == spoc.predicate ||
          lexicon.AreSynonyms(p.predicate, spoc.predicate)) {
        ap.push_back(p);
      }
    }
    // maxScore runs in the paper's algorithm whether or not the synonym
    // short-circuit above already kept pairs; through the memo it
    // charges the embedding sweep once per distinct predicate.
    const std::string label = MatchPredicateLabel(spoc.predicate, clock);
    if (ap.empty() && !rp.empty()) {
      for (auto& p : rp) {
        if (p.predicate == label) ap.push_back(std::move(p));
      }
    }

    // Constraint filter.
    ap = ApplyConstraint(std::move(ap), spoc.constraint, clock);

    // --- Update Stage ---
    for (const query::QueryEdge& e : gq.EdgesFromProducer(u)) {
      std::vector<graph::VertexId> binding;
      const bool from_subject = e.kind == query::DependencyKind::kS2S ||
                                e.kind == query::DependencyKind::kO2S;
      for (const auto& p : ap) {
        binding.push_back(from_subject ? p.subject : p.object);
      }
      std::sort(binding.begin(), binding.end());
      binding.erase(std::unique(binding.begin(), binding.end()),
                    binding.end());
      const bool to_subject = e.kind == query::DependencyKind::kS2S ||
                              e.kind == query::DependencyKind::kS2O;
      if (to_subject) {
        subj_binding[e.consumer] = std::move(binding);
      } else {
        obj_binding[e.consumer] = std::move(binding);
      }
    }

    // The main clause (vertex 0) produces the final answer.
    if (u == 0) {
      final_answer = MakeAnswer(gq, spoc, ap);
      answered = true;
    }
  }

  if (!answered) {
    return Status::ExecutionError("main clause never executed");
  }
  return final_answer;
}

}  // namespace svqa::exec
