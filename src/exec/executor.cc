#include "exec/executor.h"

#include <algorithm>
#include <map>
#include <span>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/observability.h"
#include "obs/trace.h"
#include "util/arena.h"

namespace svqa::exec {

const char* DegradationRungName(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::kFullExecution:
      return "full-execution";
    case DegradationRung::kCachedSubgraph:
      return "cached-subgraph";
    case DegradationRung::kConservative:
      return "conservative";
  }
  return "?";
}

std::string SupportFact::ToString() const {
  std::ostringstream os;
  os << "{" << subject << ", " << predicate << ", " << object << "}";
  if (image == graph::kKnowledgeGraphSource) {
    os << " (knowledge graph)";
  } else {
    os << " (image " << image << ")";
  }
  return os.str();
}

QueryGraphExecutor::QueryGraphExecutor(
    const aggregator::MergedGraph* merged,
    const text::EmbeddingModel* embeddings, KeyCentricCache* cache,
    ExecutorOptions options, std::shared_ptr<const graph::FrozenGraph> frozen)
    : merged_(merged),
      embeddings_(embeddings),
      frozen_(options.use_frozen_graph
                  ? (frozen != nullptr ? std::move(frozen)
                                       : merged->graph.Freeze())
                  : nullptr),
      matcher_(merged, embeddings, options.matcher, frozen_.get()),
      cache_(cache),
      options_(options) {}

std::string QueryGraphExecutor::PathKey(const nlp::Spoc& spoc) {
  return "path:" + VertexMatcher::ScopeKey(spoc.subject) + "|" +
         spoc.predicate + "|" + VertexMatcher::ScopeKey(spoc.object);
}

Result<std::vector<graph::VertexId>> QueryGraphExecutor::ResolveScope(
    const nlp::SpocElement& element, const ExecContext& ctx) const {
  const std::string key = VertexMatcher::ScopeKey(element);
  if (cache_ != nullptr) {
    if (auto hit = cache_->GetScope(key, ctx)) return std::move(*hit);
  }
  SVQA_ASSIGN_OR_RETURN(std::vector<graph::VertexId> scope,
                        matcher_.Match(element, ctx));
  if (cache_ != nullptr) cache_->PutScope(key, scope, ctx);
  return scope;
}

Result<ScopeValue> QueryGraphExecutor::ResolveScopeShared(
    const nlp::SpocElement& element, const ExecContext& ctx) const {
  const std::string key = VertexMatcher::ScopeKey(element);
  if (cache_ != nullptr) {
    if (auto hit = cache_->GetScopeShared(key, ctx)) return std::move(*hit);
  }
  SVQA_ASSIGN_OR_RETURN(std::vector<graph::VertexId> scope,
                        matcher_.Match(element, ctx));
  auto shared = std::make_shared<const std::vector<graph::VertexId>>(
      std::move(scope));
  if (cache_ != nullptr) cache_->PutScopeShared(key, shared, ctx);
  return shared;
}

std::shared_ptr<const std::vector<uint8_t>>
QueryGraphExecutor::PredicateVerdicts(const std::string& predicate) const {
  if (auto hit = predicate_verdict_memo_.Get(predicate)) {
    return std::move(*hit);
  }
  const auto& labels = frozen_->EdgeLabels();
  const auto& lexicon = embeddings_->lexicon();
  auto verdicts = std::make_shared<std::vector<uint8_t>>(labels.size(), 0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    (*verdicts)[i] = labels[i] == predicate ||
                             lexicon.AreSynonyms(labels[i], predicate)
                         ? 1
                         : 0;
  }
  predicate_verdict_memo_.Put(predicate, verdicts);
  return verdicts;
}

Result<std::string> QueryGraphExecutor::MatchPredicateLabel(
    const std::string& predicate, const ExecContext& ctx) const {
  SimClock* clock = ctx.clock;
  if (options_.memoize_similarity) {
    if (auto hit = predicate_label_memo_.Get(predicate)) {
      if (clock != nullptr) clock->Charge(CostKind::kCacheProbe);
      return std::move(*hit);
    }
  }
  // The embedding sweep is the executor's relation-scoring fault site.
  if (Status probed = ctx.ProbeFault(FaultSite::kRelationScore, predicate);
      !probed.ok()) {
    obs::CountFault(ctx.obs, FaultSite::kRelationScore);
    return probed;
  }
  const auto& labels = merged_->graph.EdgeLabels();
  if (clock != nullptr) {
    clock->Charge(CostKind::kEmbeddingSim,
                  static_cast<double>(labels.size()));
  }
  SVQA_RETURN_NOT_OK(ctx.Checkpoint("predicate maxScore"));
  // Exact canonical hit first; embedding similarity otherwise. The
  // resolution is a pure function of the immutable merged graph, so the
  // memoized value is identical no matter which query computed it.
  std::string resolved = predicate;  // no plausible label drops all pairs
  bool found = false;
  for (const auto& label : labels) {
    if (label == predicate) {
      resolved = label;
      found = true;
      break;
    }
  }
  if (!found) {
    const auto& lexicon = embeddings_->lexicon();
    for (const auto& label : labels) {
      if (lexicon.AreSynonyms(label, predicate)) {
        resolved = label;
        found = true;
        break;
      }
    }
  }
  if (!found) {
    auto [best, score] = embeddings_->MostSimilar(predicate, labels);
    if (best >= 0 && score >= options_.predicate_similarity_threshold) {
      resolved = labels[static_cast<std::size_t>(best)];
    }
  }
  if (options_.memoize_similarity) {
    predicate_label_memo_.Put(predicate, resolved);
  }
  return resolved;
}

template <typename PairVec>
Result<PairVec> QueryGraphExecutor::ApplyConstraint(
    PairVec pairs, const std::string& constraint,
    const ExecContext& ctx) const {
  SimClock* clock = ctx.clock;
  if (constraint.empty() || pairs.empty()) return pairs;
  obs::Span span(ctx.obs, clock, "exec.constraints");
  // Con <- maxScore(L(c_c), S): resolve the constraint phrase against the
  // predefined word set (Algorithm 3 line 9), through the memo so a
  // repeated constraint charges one probe instead of a keyword sweep.
  ConstraintSpec spec;
  bool resolved = false;
  if (options_.memoize_similarity) {
    if (auto hit = constraint_memo_.Get(constraint)) {
      if (clock != nullptr) clock->Charge(CostKind::kCacheProbe);
      spec = std::move(*hit);
      resolved = true;
    }
  }
  if (!resolved) {
    SVQA_ASSIGN_OR_RETURN(spec,
                          ResolveConstraint(constraint, *embeddings_, ctx));
    if (options_.memoize_similarity) constraint_memo_.Put(constraint, spec);
  }
  if (spec.kind == ConstraintKind::kNone) return pairs;
  const bool most = spec.kind == ConstraintKind::kMostFrequent;

  // Group by subject identity (the constrained entity) and keep the
  // group(s) with the max (min) support — "most frequently" semantics.
  if (frozen_ != nullptr) {
    // Id-space grouping: hash 32-bit symbols instead of answer strings.
    // Symbols and answer texts are bijective, so the groups are the
    // same; emission sorts group keys by their text to reproduce the
    // std::map iteration order of the mutable path.
    std::unordered_map<graph::SymbolId, std::vector<RelationPair>> groups;
    for (auto& p : pairs) {
      groups[NormalizeAnswerSymbol(p.subject, /*want_kind=*/false)]
          .push_back(p);
    }
    std::size_t extreme = most ? 0 : pairs.size() + 1;
    for (const auto& [sym, group] : groups) {
      if (most) {
        extreme = std::max(extreme, group.size());
      } else {
        extreme = std::min(extreme, group.size());
      }
    }
    std::vector<graph::SymbolId> keys;
    keys.reserve(groups.size());
    for (const auto& [sym, group] : groups) keys.push_back(sym);
    const graph::SymbolTable& symbols = frozen_->symbols();
    std::sort(keys.begin(), keys.end(),
              [&symbols](graph::SymbolId a, graph::SymbolId b) {
                return symbols.NameOf(a) < symbols.NameOf(b);
              });
    PairVec out(pairs.get_allocator());
    for (const graph::SymbolId sym : keys) {
      const auto& group = groups[sym];
      if (group.size() == extreme) {
        out.insert(out.end(), group.begin(), group.end());
      }
    }
    return out;
  }
  std::map<std::string, std::vector<RelationPair>> groups;
  for (auto& p : pairs) {
    groups[NormalizeVertexAnswer(p.subject, /*want_kind=*/false)]
        .push_back(p);
  }
  std::size_t extreme = most ? 0 : pairs.size() + 1;
  for (const auto& [key, group] : groups) {
    if (most) {
      extreme = std::max(extreme, group.size());
    } else {
      extreme = std::min(extreme, group.size());
    }
  }
  PairVec out(pairs.get_allocator());
  for (const auto& [key, group] : groups) {
    if (group.size() == extreme) {
      out.insert(out.end(), group.begin(), group.end());
    }
  }
  return out;
}

std::string QueryGraphExecutor::NormalizeVertexAnswer(graph::VertexId v,
                                                      bool want_kind) const {
  const graph::Vertex& vx = merged_->graph.vertex(v);
  if (want_kind) return vx.category;
  std::string label = vx.label;
  if (auto pos = label.find('#'); pos != std::string::npos) {
    // Anonymous scene object: the category is the informative part.
    return vx.category;
  }
  return label;
}

graph::SymbolId QueryGraphExecutor::NormalizeAnswerSymbol(
    graph::VertexId v, bool want_kind) const {
  if (want_kind || frozen_->label_is_anonymous(v)) {
    return frozen_->category_symbol(v);
  }
  return frozen_->label_symbol(v);
}

Answer QueryGraphExecutor::MakeAnswer(
    const query::QueryGraph& gq, const nlp::Spoc& spoc,
    std::span<const RelationPair> pairs) const {
  Answer ans;
  ans.type = gq.type();

  // Which side of the relation pairs carries the asked-for value?
  const bool subject_var = spoc.subject.is_variable;
  const bool object_var = spoc.object.is_variable;
  const nlp::SpocElement& var_el = object_var ? spoc.object : spoc.subject;

  // Evidence sample for provenance.
  for (const auto& p : pairs) {
    if (ans.provenance.size() >= Answer::kMaxProvenance) break;
    SupportFact fact;
    if (frozen_ != nullptr) {
      fact.subject = std::string(frozen_->label(p.subject));
      fact.predicate = p.predicate;
      fact.object = std::string(frozen_->label(p.object));
      const int32_t subject_image = frozen_->source_image(p.subject);
      fact.image = subject_image != graph::kKnowledgeGraphSource
                       ? subject_image
                       : frozen_->source_image(p.object);
    } else {
      const auto& sv = merged_->graph.vertex(p.subject);
      const auto& ov = merged_->graph.vertex(p.object);
      fact.subject = sv.label;
      fact.predicate = p.predicate;
      fact.object = ov.label;
      fact.image = sv.source_image != graph::kKnowledgeGraphSource
                       ? sv.source_image
                       : ov.source_image;
    }
    ans.provenance.push_back(std::move(fact));
  }

  switch (gq.type()) {
    case nlp::QuestionType::kJudgment: {
      ans.yes = !pairs.empty();
      ans.text = ans.yes ? "yes" : "no";
      break;
    }
    case nlp::QuestionType::kCounting: {
      // Accumulate across images: distinct identities. "How many kinds
      // of X" counts categories; entity counting counts names. An
      // anonymous detection ("wizard#3") of an entity category is an
      // *unresolvable* individual — it may be a re-detection of an
      // already-counted entity in another image — so it is excluded from
      // identity counts rather than inflating them.
      if (frozen_ != nullptr) {
        // Distinct interned symbols — the same cardinality as distinct
        // normalized strings, without hashing answer text.
        std::unordered_set<graph::SymbolId> distinct;
        for (const auto& p : pairs) {
          const graph::VertexId v = object_var ? p.object : p.subject;
          if (!var_el.want_kind && frozen_->label_is_anonymous(v)) continue;
          distinct.insert(NormalizeAnswerSymbol(v, var_el.want_kind));
        }
        ans.count = static_cast<int64_t>(distinct.size());
      } else {
        std::unordered_set<std::string> distinct;
        for (const auto& p : pairs) {
          const graph::VertexId v = object_var ? p.object : p.subject;
          if (!var_el.want_kind &&
              merged_->graph.vertex(v).label.find('#') != std::string::npos) {
            continue;
          }
          distinct.insert(NormalizeVertexAnswer(v, var_el.want_kind));
        }
        ans.count = static_cast<int64_t>(distinct.size());
      }
      ans.text = std::to_string(ans.count);
      break;
    }
    case nlp::QuestionType::kReasoning: {
      // Vote over normalized answers of the variable side; most frequent
      // first (the paper's top-1 selection). The (count desc, text asc)
      // sort fully determines the ranking, so the id-space tally below
      // needs no ordered map.
      if (frozen_ != nullptr) {
        std::unordered_map<graph::SymbolId, std::size_t> votes;
        for (const auto& p : pairs) {
          const graph::VertexId v =
              (object_var || !subject_var) ? p.object : p.subject;
          ++votes[NormalizeAnswerSymbol(v, var_el.want_kind)];
        }
        const graph::SymbolTable& symbols = frozen_->symbols();
        std::vector<std::pair<std::string_view, std::size_t>> ranked;
        ranked.reserve(votes.size());
        for (const auto& [sym, n] : votes) {
          ranked.emplace_back(symbols.NameOf(sym), n);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) {
                    if (a.second != b.second) return a.second > b.second;
                    return a.first < b.first;
                  });
        for (const auto& [label, n] : ranked) {
          ans.entities.emplace_back(label);
        }
      } else {
        std::map<std::string, std::size_t> votes;
        for (const auto& p : pairs) {
          const graph::VertexId v =
              (object_var || !subject_var) ? p.object : p.subject;
          ++votes[NormalizeVertexAnswer(v, var_el.want_kind)];
        }
        std::vector<std::pair<std::string, std::size_t>> ranked(
            votes.begin(), votes.end());
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) {
                    if (a.second != b.second) return a.second > b.second;
                    return a.first < b.first;
                  });
        for (const auto& [label, n] : ranked) ans.entities.push_back(label);
      }
      ans.text = ans.entities.empty() ? "unknown" : ans.entities.front();
      break;
    }
  }
  return ans;
}

Result<Answer> QueryGraphExecutor::Execute(const query::QueryGraph& gq,
                                           SimClock* clock) const {
  return Execute(gq, ExecContext::WithClock(clock));
}

Result<Answer> QueryGraphExecutor::Execute(const query::QueryGraph& gq,
                                           const ExecContext& ctx) const {
  SimClock* clock = ctx.clock;
  if (gq.size() == 0) {
    return Status::InvalidArgument("empty query graph");
  }
  SVQA_ASSIGN_OR_RETURN(std::vector<int> order, gq.TopologicalOrder());

  // Per-vertex role bindings pushed by producers (Update Stage).
  std::vector<std::optional<std::vector<graph::VertexId>>> subj_binding(
      gq.size());
  std::vector<std::optional<std::vector<graph::VertexId>>> obj_binding(
      gq.size());

  Answer final_answer;
  bool answered = false;

  for (int u : order) {
    SVQA_RETURN_NOT_OK(ctx.Checkpoint("query vertex"));
    obs::Span vertex_span(ctx.obs, clock, "exec.vertex");
    const nlp::Spoc& spoc = gq.vertices()[u];

    // --- Query Stage ---
    // The path cache is consulted first (§V-B): a hit supplies the whole
    // relation-pair set, skipping both matchVertex scans and the
    // adjacency traversal. Only vertices without question-specific
    // bindings are path-cacheable.
    const bool cacheable =
        !subj_binding[u].has_value() && !obj_binding[u].has_value();
    const bool use_frozen = frozen_ != nullptr;
    std::vector<RelationPair> rp_owned;
    PathValue rp_keep;  // keeps a shared cache entry alive while we read
    const std::vector<RelationPair>* rp = &rp_owned;
    bool from_cache = false;
    if (cacheable && cache_ != nullptr) {
      if (use_frozen) {
        // Shared hit: read the cached vector in place, no copy-out.
        if (auto hit = cache_->GetPathShared(PathKey(spoc), ctx)) {
          rp_keep = std::move(*hit);
          rp = rp_keep.get();
          from_cache = true;
        }
      } else if (auto hit = cache_->GetPath(PathKey(spoc), ctx)) {
        rp_owned = std::move(*hit);
        from_cache = true;
      }
    }
    if (!from_cache) {
      // Scopes resolve to spans: bindings are viewed in place, and on
      // the frozen path cached scopes are shared entries pinned by the
      // keep-alives below instead of copied out.
      ScopeValue subj_keep, obj_keep;
      std::vector<graph::VertexId> subj_owned, obj_owned;
      std::span<const graph::VertexId> subjects, objects;
      if (subj_binding[u].has_value()) {
        subjects = *subj_binding[u];
      } else if (use_frozen) {
        SVQA_ASSIGN_OR_RETURN(subj_keep,
                              ResolveScopeShared(spoc.subject, ctx));
        subjects = *subj_keep;
      } else {
        SVQA_ASSIGN_OR_RETURN(subj_owned, ResolveScope(spoc.subject, ctx));
        subjects = subj_owned;
      }
      if (obj_binding[u].has_value()) {
        objects = *obj_binding[u];
      } else if (use_frozen) {
        SVQA_ASSIGN_OR_RETURN(obj_keep, ResolveScopeShared(spoc.object, ctx));
        objects = *obj_keep;
      } else {
        SVQA_ASSIGN_OR_RETURN(obj_owned, ResolveScope(spoc.object, ctx));
        objects = obj_owned;
      }
      {
        obs::Span rp_span(ctx.obs, clock, "exec.relation_pairs");
        rp_owned = use_frozen
                       ? FindRelationPairs(*frozen_, subjects, objects, clock)
                       : FindRelationPairs(merged_->graph, subjects, objects,
                                           clock);
      }
      // The adjacency scan's cost is on the clock; bail before filtering
      // if it blew the budget.
      SVQA_RETURN_NOT_OK(ctx.Checkpoint("relation pairs"));
      if (cacheable && cache_ != nullptr) {
        if (use_frozen) {
          rp_keep = std::make_shared<const std::vector<RelationPair>>(
              std::move(rp_owned));
          cache_->PutPathShared(PathKey(spoc), rp_keep, ctx);
          rp = rp_keep.get();
        } else {
          cache_->PutPath(PathKey(spoc), rp_owned, ctx);
        }
      }
    }

    // Predicate filter: keep pairs whose label is the predicate, one of
    // its lexicon synonyms, or (fallback) the embedding-closest label.
    // The filter -> constraint -> bind tail is written once, generically
    // over the surviving-pair vector type: the frozen path runs it on an
    // arena-backed vector (the dominant per-query buffer becomes bump
    // scratch), the mutable path on a heap vector.
    const auto& lexicon = embeddings_->lexicon();
    auto process_pairs = [&](auto ap) -> Status {
      ap.reserve(rp->size());
      if (use_frozen) {
        // One byte load per pair; pairs without an interned label (legacy
        // entries seeded into the cache externally) fall back to the
        // string predicate.
        const auto verdicts = PredicateVerdicts(spoc.predicate);
        for (const auto& p : *rp) {
          const bool keep =
              p.label < verdicts->size()
                  ? (*verdicts)[p.label] != 0
                  : (p.predicate == spoc.predicate ||
                     lexicon.AreSynonyms(p.predicate, spoc.predicate));
          if (keep) ap.push_back(p);
        }
      } else {
        for (const auto& p : *rp) {
          if (p.predicate == spoc.predicate ||
              lexicon.AreSynonyms(p.predicate, spoc.predicate)) {
            ap.push_back(p);
          }
        }
      }
      // maxScore runs in the paper's algorithm whether or not the synonym
      // short-circuit above already kept pairs; through the memo it
      // charges the embedding sweep once per distinct predicate.
      SVQA_ASSIGN_OR_RETURN(const std::string label,
                            MatchPredicateLabel(spoc.predicate, ctx));
      if (ap.empty() && !rp->empty()) {
        if (use_frozen) {
          // `label` resolves to an edge-label id unless maxScore fell all
          // the way back to the raw predicate (which then matches no
          // edge); untagged legacy pairs still compare text.
          const std::optional<graph::LabelId> lid =
              frozen_->EdgeLabelIdOf(label);
          for (const auto& p : *rp) {
            const bool keep = p.label != graph::kInvalidLabel
                                  ? (lid.has_value() && p.label == *lid)
                                  : p.predicate == label;
            if (keep) ap.push_back(p);
          }
        } else {
          for (const auto& p : *rp) {
            if (p.predicate == label) ap.push_back(p);
          }
        }
      }

      // Constraint filter.
      SVQA_ASSIGN_OR_RETURN(
          ap, ApplyConstraint(std::move(ap), spoc.constraint, ctx));

      // --- Update Stage ---
      obs::Span bind_span(ctx.obs, clock, "exec.bind");
      for (const query::QueryEdge& e : gq.EdgesFromProducer(u)) {
        std::vector<graph::VertexId> binding;
        const bool from_subject = e.kind == query::DependencyKind::kS2S ||
                                  e.kind == query::DependencyKind::kO2S;
        for (const auto& p : ap) {
          binding.push_back(from_subject ? p.subject : p.object);
        }
        std::sort(binding.begin(), binding.end());
        binding.erase(std::unique(binding.begin(), binding.end()),
                      binding.end());
        const bool to_subject = e.kind == query::DependencyKind::kS2S ||
                                e.kind == query::DependencyKind::kS2O;
        if (to_subject) {
          subj_binding[e.consumer] = std::move(binding);
        } else {
          obj_binding[e.consumer] = std::move(binding);
        }
      }

      // The main clause (vertex 0) produces the final answer.
      if (u == 0) {
        final_answer = MakeAnswer(gq, spoc, ap);
        answered = true;
      }
      return Status::OK();
    };
    if (use_frozen && ctx.arena != nullptr) {
      SVQA_RETURN_NOT_OK(process_pairs(util::ArenaVector<RelationPair>(
          util::ArenaAllocator<RelationPair>(ctx.arena))));
    } else {
      SVQA_RETURN_NOT_OK(process_pairs(std::vector<RelationPair>()));
    }
  }

  if (!answered) {
    return Status::ExecutionError("main clause never executed");
  }
  return final_answer;
}

Result<Answer> QueryGraphExecutor::ExecuteResilient(
    const query::QueryGraph& gq, SimClock* clock,
    const ResilienceOptions& resilience, uint64_t salt,
    Diagnostics* diagnostics) const {
  ExecContext ctx;
  ctx.clock = clock;
  ctx.faults = resilience.fault_policy;
  ctx.cancel = resilience.cancel;
  ctx.obs = resilience.obs;
  if (clock != nullptr) {
    ctx.deadline =
        Deadline::FromBudget(clock, resilience.query_deadline_micros);
  }
  // Per-query scratch. The arena is thread-local so its slabs survive
  // across queries on the same worker: a warm worker's taxonomy walks
  // and scratch vectors bump-allocate into already-reserved slabs and
  // the steady-state heap traffic per query is near zero. Reset rewinds
  // (without freeing) at query start and between retry attempts, so the
  // ExecContext::arena lifetime contract — nothing allocated from it
  // outlives the query — is unchanged. Batch workers are distinct
  // threads, so arenas are never shared.
  static thread_local util::Arena arena;
  ctx.arena = &arena;
  // Entry reading for Diagnostics.charged_micros: everything this call
  // charges (attempts and backoffs alike) lands between this reading
  // and the one taken at exit, and nothing is charged outside the
  // attempt/backoff spans — so charged_micros equals the trace's
  // outermost span extent bit for bit.
  const double entry_micros = clock != nullptr ? clock->ElapsedMicros() : 0;
  const int max_attempts =
      resilience.enable_retries ? std::max(1, resilience.retry.max_attempts)
                                : 1;
  Diagnostics diag;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    arena.Reset();
    ctx.attempt = static_cast<uint32_t>(attempt - 1);
    diag.attempts = attempt;
    if (const obs::StackMetrics* m = obs::MetricsOf(ctx.obs)) {
      m->exec_attempts->Incr();
      if (attempt > 1) m->exec_retries->Incr();
    }
    // Immediately-invoked so the attempt span closes before any backoff
    // span opens — attempts and backoffs are siblings in the trace, not
    // nested.
    Result<Answer> result = [&] {
      obs::Span attempt_span(ctx.obs, clock, "exec.attempt");
      return Execute(gq, ctx);
    }();
    if (result.ok()) {
      diag.primary = Status::OK();
      diag.charged_micros =
          clock != nullptr ? clock->ElapsedMicros() - entry_micros : 0;
      if (diagnostics != nullptr) *diagnostics = diag;
      Answer ans = std::move(result).ValueOrDie();
      ans.diagnostics = diag;
      return ans;
    }
    last = result.status();
    // Terminal failures (cancelled, deadline, permanent faults) are
    // never retried; transient ones back off and go again.
    if (!IsTransient(last) || attempt == max_attempts) break;
    const double backoff = RetryBackoffMicros(resilience.retry, attempt, salt);
    diag.backoff_micros += backoff;
    if (const obs::StackMetrics* m = obs::MetricsOf(ctx.obs)) {
      m->exec_backoff_micros->Incr(static_cast<uint64_t>(backoff));
    }
    {
      obs::Span backoff_span(ctx.obs, clock, "exec.backoff");
      if (clock != nullptr) clock->ChargeMicros(backoff);
    }
    // A backoff that blows the budget ends the loop here instead of
    // burning another full attempt.
    const Status after_backoff = ctx.Checkpoint("retry backoff");
    if (!after_backoff.ok()) {
      last = after_backoff;
      diag.attempts = attempt;
      break;
    }
  }
  diag.primary = last;
  diag.charged_micros =
      clock != nullptr ? clock->ElapsedMicros() - entry_micros : 0;
  if (diagnostics != nullptr) *diagnostics = diag;
  return last;
}

std::optional<Answer> QueryGraphExecutor::ExecuteFromCache(
    const query::QueryGraph& gq, const ExecContext& ctx) const {
  if (cache_ == nullptr || gq.size() == 0) return std::nullopt;
  const nlp::Spoc& spoc = gq.vertices()[0];  // the main clause
  auto hit = cache_->GetPathShared(PathKey(spoc), ctx);
  if (!hit.has_value()) return std::nullopt;
  // Synonym-only predicate filter: the degraded path must stay cheap
  // and fault-free, so no embedding sweep and no maxScore fallback.
  const auto& lexicon = embeddings_->lexicon();
  std::vector<RelationPair> ap;
  ap.reserve((*hit)->size());
  for (const auto& p : **hit) {
    if (p.predicate == spoc.predicate ||
        lexicon.AreSynonyms(p.predicate, spoc.predicate)) {
      ap.push_back(p);
    }
  }
  if (ap.empty()) return std::nullopt;
  Answer ans = MakeAnswer(gq, spoc, ap);
  ans.diagnostics.rung = DegradationRung::kCachedSubgraph;
  return ans;
}

}  // namespace svqa::exec
