#ifndef SVQA_EXEC_EXECUTOR_H_
#define SVQA_EXEC_EXECUTOR_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "aggregator/merger.h"
#include "exec/constraints.h"
#include "graph/frozen_graph.h"
#include "exec/key_centric_cache.h"
#include "exec/relation_pairs.h"
#include "exec/vertex_matcher.h"
#include "query/query_graph.h"
#include "text/embedding.h"
#include "util/cancellation.h"
#include "util/exec_context.h"
#include "util/fault_injector.h"
#include "util/memo_cache.h"
#include "util/result.h"
#include "util/retry.h"
#include "util/sim_clock.h"

namespace svqa::exec {

/// \brief A supporting fact behind an answer: one merged-graph relation
/// pair that survived the filters, with its source image.
struct SupportFact {
  /// Image the relation came from, or graph::kKnowledgeGraphSource for a
  /// knowledge-graph fact.
  int32_t image = graph::kKnowledgeGraphSource;
  std::string subject;
  std::string predicate;
  std::string object;

  std::string ToString() const;
};

/// \brief Which rung of the degradation ladder produced an answer.
enum class DegradationRung {
  /// Normal Algorithm-3 execution succeeded (possibly after retries).
  kFullExecution = 0,
  /// Full execution failed; the answer was recovered from the main
  /// clause's cached relation-pair subgraph.
  kCachedSubgraph = 1,
  /// Nothing usable survived; the conservative fallback answer.
  kConservative = 2,
};

const char* DegradationRungName(DegradationRung rung);

/// \brief Per-answer resilience diagnostics: how hard the pipeline had
/// to work for this answer and how far down the ladder it landed.
struct Diagnostics {
  DegradationRung rung = DegradationRung::kFullExecution;
  /// Outcome of the last full-execution attempt (OK on the top rung; the
  /// failure that forced degradation otherwise).
  Status primary = Status::OK();
  /// Full-execution attempts made (1 = no retries needed).
  int attempts = 1;
  /// Virtual microseconds spent in retry backoff.
  double backoff_micros = 0;
  /// Total virtual micros charged to the query's clock across the whole
  /// resilient call (attempts + backoff): the clock reading at exit
  /// minus the reading at entry, so it reconciles *exactly* — bit for
  /// bit — with the trace's outermost span boundaries (see
  /// exec::QueryCostReport::VerifyReconciliation). 0 when no clock was
  /// passed.
  double charged_micros = 0;
  // --- serving-layer fields (filled by serve::RequestScheduler; defaults
  // mean "not served through a queue") ---------------------------------
  /// Time the request spent in the admission queue before dispatch
  /// (virtual micros in simulated serving, host micros in threaded).
  double queue_wait_micros = 0;
  /// Graph snapshot the answer was computed against (0 = direct
  /// execution outside the snapshot store).
  uint64_t snapshot_id = 0;
  /// serve::PriorityClass the request was admitted under (-1 = direct
  /// execution, no admission control).
  int priority_class = -1;
  /// storage::RecoveryRung the serving state was rebuilt at when the
  /// engine warm-started from disk (-1 = no recovery ran). Kept as an
  /// int so exec stays below the storage layer.
  int recovery_rung = -1;
};

/// \brief The answer to a complex question.
struct Answer {
  nlp::QuestionType type = nlp::QuestionType::kReasoning;
  /// Normalized answer text: "yes"/"no", a decimal count, or an entity /
  /// category label.
  std::string text;
  bool yes = false;    ///< Judgment verdict.
  int64_t count = 0;   ///< Counting result.
  /// All candidate entity answers for reasoning questions, most frequent
  /// first.
  std::vector<std::string> entities;
  /// Evidence: up to kMaxProvenance relation pairs of the main clause
  /// that produced this answer.
  std::vector<SupportFact> provenance;
  /// How this answer was obtained (degradation rung, retries, backoff).
  Diagnostics diagnostics;

  static constexpr std::size_t kMaxProvenance = 10;
};

/// \brief Resilience knobs threaded through the execution pipeline.
struct ResilienceOptions {
  /// Per-query virtual-time budget in microseconds, measured on the
  /// query's own SimClock; <= 0 or non-finite disables the deadline.
  double query_deadline_micros = 0;
  /// Retry transient (kResourceExhausted) failures with jittered
  /// exponential backoff, charged as virtual time.
  bool enable_retries = true;
  RetryPolicy retry;
  /// Fault policy consulted at the pipeline's injection sites; nullptr
  /// disables injection entirely. Not owned.
  const FaultPolicy* fault_policy = nullptr;
  /// Cooperative cancellation; nullptr means not cancellable. Not owned.
  const CancellationToken* cancel = nullptr;
  /// Observability scope for this query (per-query tracer + shared
  /// metric handles, see obs/trace.h); copied onto the ExecContext so
  /// every pipeline stage can emit spans and counters. nullptr (the
  /// default) disables all telemetry for the call. Not owned; must
  /// outlive the execution.
  const obs::Scope* obs = nullptr;
};

/// \brief Executor tuning knobs.
struct ExecutorOptions {
  /// Minimum embedding cosine for predicate label fallback matching.
  double predicate_similarity_threshold = 0.5;
  /// matchVertex configuration (label index, similarity memo).
  VertexMatcherOptions matcher;
  /// Memoize maxScore derivations shared across the batch: the
  /// predicate -> best-edge-label table and constraint resolution. A
  /// memo hit charges one kCacheProbe instead of kEmbeddingSim per
  /// candidate. Disable (together with matcher.memoize_similarity) for
  /// strictly per-query-deterministic virtual latencies.
  bool memoize_similarity = true;
  /// Execute against a compiled FrozenGraph snapshot (CSR adjacency,
  /// interned symbols, id-space comparisons, arena-backed scratch)
  /// instead of the mutable merged graph. Answers, charged virtual costs
  /// (`total_micros`), and cache hit/miss sequences are byte-identical
  /// either way — only host wall time and allocation volume change.
  /// Disable for the mutable-path ablation baseline.
  bool use_frozen_graph = true;
};

/// \brief Algorithm 3: executes a query graph over the merged graph.
///
/// Vertices are processed in dependency order (producers first). Each
/// vertex resolves its subject/object scopes (through the scope cache or
/// matchVertex), collects relation pairs (through the path cache or an
/// adjacency scan), filters them by the maxScore-matched predicate and
/// the constraint, and pushes the surviving bindings into its consumers.
/// The main clause (vertex 0) yields the final answer.
///
/// Thread-safety: `Execute` is safe for concurrent calls from batch
/// workers sharing one executor — the merged graph and embeddings are
/// immutable, the key-centric cache is internally locked, and the
/// maxScore memos are thread-safe MemoCaches. Each worker must own its
/// `SimClock`.
class QueryGraphExecutor {
 public:
  /// \param cache optional key-centric cache shared across queries; pass
  /// nullptr for the cache-less configuration.
  /// \param frozen optional precompiled snapshot of `merged->graph`
  /// (e.g. compiled once by the snapshot store and pinned across the
  /// executors sharing it). With `options.use_frozen_graph` set and no
  /// snapshot passed, the constructor compiles one itself; with the
  /// option cleared the argument is ignored and the mutable path runs.
  QueryGraphExecutor(const aggregator::MergedGraph* merged,
                     const text::EmbeddingModel* embeddings,
                     KeyCentricCache* cache = nullptr,
                     ExecutorOptions options = {},
                     std::shared_ptr<const graph::FrozenGraph> frozen =
                         nullptr);

  /// Executes one query graph.
  Result<Answer> Execute(const query::QueryGraph& gq,
                         SimClock* clock = nullptr) const;

  /// Context-aware execution: polls cancellation and the virtual
  /// deadline at every pipeline check-point and consults the context's
  /// fault policy at the injection sites (matcher scans, relation
  /// scoring, cache ops). Fails with kCancelled / kDeadlineExceeded /
  /// kResourceExhausted (transient fault) / kInternal (permanent fault).
  Result<Answer> Execute(const query::QueryGraph& gq,
                         const ExecContext& ctx) const;

  /// Resilient execution: runs `Execute` under the options' deadline,
  /// cancellation token, and fault policy, retrying transient failures
  /// up to `retry.max_attempts` with jittered exponential backoff
  /// (charged to the clock as virtual time; `salt` decorrelates the
  /// jitter across queries of a batch). Terminal failures (cancelled,
  /// deadline, permanent) are never retried. `diagnostics` (optional)
  /// receives the attempt/backoff record even when the result is an
  /// error — the degradation ladder above builds on it.
  Result<Answer> ExecuteResilient(const query::QueryGraph& gq, SimClock* clock,
                                  const ResilienceOptions& resilience,
                                  uint64_t salt = 0,
                                  Diagnostics* diagnostics = nullptr) const;

  /// Degraded execution (ladder rung 2): answers from the main clause's
  /// cached relation-pair subgraph alone — a synonym-only predicate
  /// filter over the cached pairs, no scans, no embedding sweeps.
  /// Returns nullopt when there is no cache, no cached entry for the
  /// main clause, or nothing survives the filter.
  std::optional<Answer> ExecuteFromCache(const query::QueryGraph& gq,
                                         const ExecContext& ctx) const;

  const VertexMatcher& matcher() const { return matcher_; }
  KeyCentricCache* cache() const { return cache_; }
  /// The snapshot this executor runs against (nullptr on the mutable
  /// path).
  const graph::FrozenGraph* frozen() const { return frozen_.get(); }

  /// The stable path-cache key for a vertex's relation-pair query.
  static std::string PathKey(const nlp::Spoc& spoc);

 private:
  Result<std::vector<graph::VertexId>> ResolveScope(
      const nlp::SpocElement& element, const ExecContext& ctx) const;
  /// Frozen-path scope resolution: a cache hit hands back the shared
  /// entry itself; a miss stores the freshly matched scope once and
  /// shares it. Same keys, charges, and hit/miss sequence as
  /// ResolveScope.
  Result<ScopeValue> ResolveScopeShared(const nlp::SpocElement& element,
                                        const ExecContext& ctx) const;
  /// maxScore over the merged graph's edge labels (Algorithm 3 line 8).
  Result<std::string> MatchPredicateLabel(const std::string& predicate,
                                          const ExecContext& ctx) const;
  /// Frozen path: per-edge-label-id verdict of the synonym filter
  /// (label == predicate or lexicon synonym), memoized per predicate so
  /// the per-pair filter is one indexed byte load.
  std::shared_ptr<const std::vector<uint8_t>> PredicateVerdicts(
      const std::string& predicate) const;
  /// Constraint filter over any RelationPair vector type. The frozen
  /// path passes an arena-backed vector so the surviving-pair buffer
  /// bump-allocates from per-query scratch; the mutable path keeps heap
  /// vectors. Instantiated in executor.cc for both vector types.
  template <typename PairVec>
  Result<PairVec> ApplyConstraint(PairVec pairs, const std::string& constraint,
                                  const ExecContext& ctx) const;
  Answer MakeAnswer(const query::QueryGraph& gq, const nlp::Spoc& spoc,
                    std::span<const RelationPair> pairs) const;
  std::string NormalizeVertexAnswer(graph::VertexId v, bool want_kind) const;
  /// Frozen equivalent of NormalizeVertexAnswer: the interned symbol of
  /// the normalized answer text (bijective with the string).
  graph::SymbolId NormalizeAnswerSymbol(graph::VertexId v,
                                        bool want_kind) const;

  const aggregator::MergedGraph* merged_;
  const text::EmbeddingModel* embeddings_;
  /// Compiled snapshot (nullptr on the mutable path). Declared before
  /// the matcher, which borrows the raw pointer.
  std::shared_ptr<const graph::FrozenGraph> frozen_;
  VertexMatcher matcher_;
  KeyCentricCache* cache_;
  ExecutorOptions options_;
  /// maxScore memo: predicate -> best merged-graph edge label.
  mutable MemoCache<std::string, std::string> predicate_label_memo_;
  /// Constraint phrase -> resolved spec memo.
  mutable MemoCache<std::string, ConstraintSpec> constraint_memo_;
  /// Frozen path: predicate -> per-label-id synonym-filter verdicts.
  mutable MemoCache<std::string, std::shared_ptr<const std::vector<uint8_t>>>
      predicate_verdict_memo_;
};

}  // namespace svqa::exec

#endif  // SVQA_EXEC_EXECUTOR_H_
