#ifndef SVQA_EXEC_BATCH_EXECUTOR_H_
#define SVQA_EXEC_BATCH_EXECUTOR_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "exec/executor.h"
#include "exec/scheduler.h"
#include "obs/observability.h"
#include "query/query_graph.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace svqa::exec {

/// \brief Outcome of one query in a batch. Every slot gets a definitive
/// Status — one query's failure never aborts or poisons its siblings.
struct QueryOutcome {
  Status status;
  Answer answer;
  /// Virtual time this query consumed (including retry backoff).
  double latency_micros = 0;
  /// Retry/degradation record, populated even when `status` is an error.
  Diagnostics diagnostics;
  /// Span tree of this query's execution, present when the batch ran
  /// with an Observability whose sampler selected this input index.
  /// Keyed to the query's own SimClock, so the exported trace is
  /// byte-identical across modes and worker counts.
  std::shared_ptr<obs::Tracer> trace;
};

/// \brief How a batch is driven through the executor.
enum class BatchMode {
  /// Deterministic single-thread replay: queries execute on the caller
  /// thread in schedule order (the shared cache sees the same global
  /// order every run) and the parallel makespan is *accounted*, not
  /// measured. This is the reproducible Exp-5 configuration.
  kSimulated,
  /// Real parallel execution: `num_workers` util::ThreadPool workers
  /// share one QueryGraphExecutor + KeyCentricCache and pull queries
  /// dynamically (least-loaded); wall_micros is the measured makespan.
  /// Answers are byte-identical to kSimulated; per-query virtual
  /// latencies can differ when a shared cache/memo is enabled, because
  /// the hit/miss interleaving is real (see DESIGN.md).
  kThreaded,
};

const char* BatchModeName(BatchMode mode);

/// \brief Batch execution options.
struct BatchOptions {
  /// Run the §V-B frequency-ratio scheduler before execution.
  bool use_scheduler = true;
  /// Worker count. In kSimulated mode each query is *assigned* (in
  /// schedule order) to the least-loaded virtual worker and the batch's
  /// virtual latency is the makespan; in kThreaded mode this is the
  /// real thread-pool size.
  std::size_t num_workers = 1;
  BatchMode mode = BatchMode::kSimulated;
  /// Latency pacing for kThreaded mode: host microseconds each worker
  /// sleeps per *virtual second* its query charged (0 = off). Pacing
  /// makes the measured wall-clock makespan track the virtual cost
  /// model, so thread-overlap speedups are observable on any host —
  /// including single-core CI — instead of depending on how many
  /// physical cores happen to back the pool.
  double pace_micros_per_virtual_second = 0;
  /// Per-query deadline, retry, fault-injection, and cancellation knobs.
  /// Each query runs under its own deadline on its own clock; the retry
  /// jitter is salted with the query's input index, so the schedule is a
  /// pure function of (seed, batch) — identical across modes and worker
  /// counts.
  ResilienceOptions resilience;
  /// Observability domain for the batch (metrics + flight recorder +
  /// trace sampling); nullptr disables all telemetry. Not owned. Each
  /// query sampled by `obs->ShouldTrace(input index)` gets its own
  /// Tracer, returned on its QueryOutcome. Overrides any
  /// `resilience.obs` scope, which cannot be shared across parallel
  /// queries anyway (a Tracer is single-threaded, like a SimClock).
  obs::Observability* obs = nullptr;
};

/// \brief Batch result: per-query outcomes (input order) plus totals.
struct BatchResult {
  std::vector<QueryOutcome> outcomes;
  /// Virtual latency of the whole batch: makespan over the per-worker
  /// virtual loads (equals the serial sum when num_workers == 1).
  double total_micros = 0;
  /// Host wall-clock time actually spent. Diagnostics in kSimulated
  /// mode; the measured makespan in kThreaded mode.
  double wall_micros = 0;
  /// Virtual load per worker (kSimulated: least-loaded assignment;
  /// kThreaded: what each pool worker actually executed).
  std::vector<double> worker_micros;
  /// Aggregate operation accounting: every per-query clock merged
  /// serially (op counts add; elapsed equals the serial latency sum).
  SimClock ops;
};

/// \brief Executes N query graphs through a shared executor/cache with
/// optional scheduling (§V-B / Exp-5).
///
/// Outcomes are input-order stable in both modes. A lazily-created
/// internal ThreadPool is reused across ExecuteAll calls; concurrent
/// ExecuteAll calls on the *same* BatchExecutor are not supported (use
/// one BatchExecutor per driving thread — they may share the executor).
class BatchExecutor {
 public:
  BatchExecutor(const QueryGraphExecutor* executor, BatchOptions options = {});
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  BatchResult ExecuteAll(const std::vector<query::QueryGraph>& graphs) const;

  const BatchOptions& options() const { return options_; }

 private:
  std::vector<int> ScheduleOrder(
      const std::vector<query::QueryGraph>& graphs) const;
  void ExecuteSimulated(const std::vector<query::QueryGraph>& graphs,
                        const std::vector<int>& order,
                        BatchResult* result) const;
  void ExecuteThreaded(const std::vector<query::QueryGraph>& graphs,
                       const std::vector<int>& order,
                       BatchResult* result) const;
  /// Returns the reusable pool, (re)built to `workers` threads.
  ThreadPool* EnsurePool(std::size_t workers) const SVQA_EXCLUDES(pool_mu_);
  /// Per-query telemetry setup: when the batch carries an enabled
  /// Observability, fills `*scope` (tracer if sampled, metric handles,
  /// the worker's flight lane) and points `resilience->obs` at it.
  /// Returns the tracer (null when unsampled or telemetry is off).
  std::shared_ptr<obs::Tracer> MakeQueryScope(uint64_t query_id,
                                              uint32_t lane,
                                              ResilienceOptions* resilience,
                                              obs::Scope* scope) const;

  const QueryGraphExecutor* executor_;
  BatchOptions options_;
  mutable Mutex pool_mu_;
  mutable std::unique_ptr<ThreadPool> pool_ SVQA_GUARDED_BY(pool_mu_);
};

}  // namespace svqa::exec

#endif  // SVQA_EXEC_BATCH_EXECUTOR_H_
