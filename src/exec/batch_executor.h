#ifndef SVQA_EXEC_BATCH_EXECUTOR_H_
#define SVQA_EXEC_BATCH_EXECUTOR_H_

#include <cstddef>
#include <vector>

#include "exec/executor.h"
#include "exec/scheduler.h"
#include "query/query_graph.h"
#include "util/status.h"

namespace svqa::exec {

/// \brief Outcome of one query in a batch.
struct QueryOutcome {
  Status status;
  Answer answer;
  /// Virtual time this query consumed.
  double latency_micros = 0;
};

/// \brief Batch execution options.
struct BatchOptions {
  /// Run the §V-B frequency-ratio scheduler before execution.
  bool use_scheduler = true;
  /// Worker count; > 1 simulates the parallelized executor: queries are
  /// dealt round-robin to workers, and the batch's virtual latency is the
  /// makespan (max worker total) instead of the serial sum.
  std::size_t num_workers = 1;
};

/// \brief Batch result: per-query outcomes (input order) plus totals.
struct BatchResult {
  std::vector<QueryOutcome> outcomes;
  /// Virtual latency of the whole batch (sum for serial execution,
  /// makespan for parallel).
  double total_micros = 0;
  /// Host wall-clock time actually spent (diagnostics only).
  double wall_micros = 0;
};

/// \brief Executes N query graphs through a shared executor/cache with
/// optional scheduling (§V-B / Exp-5).
class BatchExecutor {
 public:
  BatchExecutor(const QueryGraphExecutor* executor, BatchOptions options = {});

  BatchResult ExecuteAll(const std::vector<query::QueryGraph>& graphs) const;

  const BatchOptions& options() const { return options_; }

 private:
  const QueryGraphExecutor* executor_;
  BatchOptions options_;
};

}  // namespace svqa::exec

#endif  // SVQA_EXEC_BATCH_EXECUTOR_H_
