#ifndef SVQA_EXEC_KEY_CENTRIC_CACHE_H_
#define SVQA_EXEC_KEY_CENTRIC_CACHE_H_

#include <optional>
#include <string>
#include <vector>

#include "cache/cache_stats.h"
#include "cache/lfu_cache.h"
#include "cache/lru_cache.h"
#include "exec/relation_pairs.h"
#include "graph/graph.h"
#include "util/exec_context.h"
#include "util/sim_clock.h"

namespace svqa::exec {

/// \brief Cache replacement policy for the key-centric cache (Fig. 11
/// compares the two).
enum class CachePolicy { kLfu, kLru };

const char* CachePolicyName(CachePolicy policy);

/// \brief Configuration of the key-centric cache (§V-B).
struct KeyCentricCacheOptions {
  /// Pool size in items; 0 disables the pool entirely.
  std::size_t capacity = 100;
  CachePolicy policy = CachePolicy::kLfu;
  /// Cache matchVertex scopes (candidate vertex sets per element key).
  bool enable_scope = true;
  /// Cache relation-pair paths (RP sets per (sub, obj, predicate) key).
  bool enable_path = true;
};

/// \brief The key-centric cache: a *scope* store (matchVertex results)
/// and a *path* store (getRelationpairs results), each under the chosen
/// eviction policy. Every probe charges CostKind::kCacheProbe.
///
/// Thread-safe by composition: `options_` is immutable after
/// construction and each underlying policy store is internally locked
/// (see cache/lru_cache.h), so concurrent Get*/Put* from executor
/// workers sharing one cache is race-free. `Clear` and the `*Stats`
/// snapshots are per-store atomic, not atomic across the scope and path
/// stores — fine for their diagnostic role. The `SimClock*` argument is
/// caller-owned per-query state and is charged outside any cache lock.
class KeyCentricCache {
 public:
  explicit KeyCentricCache(KeyCentricCacheOptions options = {});

  /// Scope lookup; copies the hit out (the caller mutates freely).
  std::optional<std::vector<graph::VertexId>> GetScope(
      const std::string& key, SimClock* clock = nullptr);
  void PutScope(const std::string& key, std::vector<graph::VertexId> value);

  /// Path lookup.
  std::optional<std::vector<RelationPair>> GetPath(
      const std::string& key, SimClock* clock = nullptr);
  void PutPath(const std::string& key, std::vector<RelationPair> value);

  /// Context-aware variants: each op consults the context's fault policy
  /// at FaultSite::kCacheOp (keyed by the cache key, so a Get and Put of
  /// the same key in one attempt draw one verdict). An injected fault
  /// *degrades* rather than fails — a Get becomes a charged miss and a
  /// Put drops the write — because a flaky cache must slow queries down,
  /// never take them down.
  std::optional<std::vector<graph::VertexId>> GetScope(const std::string& key,
                                                       const ExecContext& ctx);
  void PutScope(const std::string& key, std::vector<graph::VertexId> value,
                const ExecContext& ctx);
  std::optional<std::vector<RelationPair>> GetPath(const std::string& key,
                                                   const ExecContext& ctx);
  void PutPath(const std::string& key, std::vector<RelationPair> value,
               const ExecContext& ctx);

  const KeyCentricCacheOptions& options() const { return options_; }
  cache::CacheStats ScopeStats() const;
  cache::CacheStats PathStats() const;
  /// Scope + path stores merged into one snapshot.
  cache::CacheStats TotalStats() const;
  void Clear();

 private:
  template <typename V>
  struct PolicyPair {
    explicit PolicyPair(std::size_t capacity)
        : lfu(capacity), lru(capacity) {}
    cache::LfuCache<std::string, V> lfu;
    cache::LruCache<std::string, V> lru;
  };

  const KeyCentricCacheOptions options_;  // immutable after construction
  PolicyPair<std::vector<graph::VertexId>> scope_;  // internally locked
  PolicyPair<std::vector<RelationPair>> path_;      // internally locked
};

}  // namespace svqa::exec

#endif  // SVQA_EXEC_KEY_CENTRIC_CACHE_H_
