#ifndef SVQA_EXEC_KEY_CENTRIC_CACHE_H_
#define SVQA_EXEC_KEY_CENTRIC_CACHE_H_

#include <optional>
#include <string>
#include <vector>

#include "cache/cache_stats.h"
#include "cache/lfu_cache.h"
#include "cache/lru_cache.h"
#include "exec/relation_pairs.h"
#include "graph/graph.h"
#include "util/sim_clock.h"

namespace svqa::exec {

/// \brief Cache replacement policy for the key-centric cache (Fig. 11
/// compares the two).
enum class CachePolicy { kLfu, kLru };

const char* CachePolicyName(CachePolicy policy);

/// \brief Configuration of the key-centric cache (§V-B).
struct KeyCentricCacheOptions {
  /// Pool size in items; 0 disables the pool entirely.
  std::size_t capacity = 100;
  CachePolicy policy = CachePolicy::kLfu;
  /// Cache matchVertex scopes (candidate vertex sets per element key).
  bool enable_scope = true;
  /// Cache relation-pair paths (RP sets per (sub, obj, predicate) key).
  bool enable_path = true;
};

/// \brief The key-centric cache: a *scope* store (matchVertex results)
/// and a *path* store (getRelationpairs results), each under the chosen
/// eviction policy. Every probe charges CostKind::kCacheProbe.
class KeyCentricCache {
 public:
  explicit KeyCentricCache(KeyCentricCacheOptions options = {});

  /// Scope lookup; copies the hit out (the caller mutates freely).
  std::optional<std::vector<graph::VertexId>> GetScope(
      const std::string& key, SimClock* clock = nullptr);
  void PutScope(const std::string& key, std::vector<graph::VertexId> value);

  /// Path lookup.
  std::optional<std::vector<RelationPair>> GetPath(
      const std::string& key, SimClock* clock = nullptr);
  void PutPath(const std::string& key, std::vector<RelationPair> value);

  const KeyCentricCacheOptions& options() const { return options_; }
  cache::CacheStats ScopeStats() const;
  cache::CacheStats PathStats() const;
  void Clear();

 private:
  template <typename V>
  struct PolicyPair {
    explicit PolicyPair(std::size_t capacity)
        : lfu(capacity), lru(capacity) {}
    cache::LfuCache<std::string, V> lfu;
    cache::LruCache<std::string, V> lru;
  };

  KeyCentricCacheOptions options_;
  PolicyPair<std::vector<graph::VertexId>> scope_;
  PolicyPair<std::vector<RelationPair>> path_;
};

}  // namespace svqa::exec

#endif  // SVQA_EXEC_KEY_CENTRIC_CACHE_H_
