#ifndef SVQA_EXEC_KEY_CENTRIC_CACHE_H_
#define SVQA_EXEC_KEY_CENTRIC_CACHE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/cache_stats.h"
#include "cache/lfu_cache.h"
#include "cache/lru_cache.h"
#include "exec/relation_pairs.h"
#include "graph/graph.h"
#include "graph/interning.h"
#include "util/exec_context.h"
#include "util/sim_clock.h"

namespace svqa::exec {

/// \brief Cache replacement policy for the key-centric cache (Fig. 11
/// compares the two).
enum class CachePolicy { kLfu, kLru };

const char* CachePolicyName(CachePolicy policy);

/// \brief Configuration of the key-centric cache (§V-B).
struct KeyCentricCacheOptions {
  /// Pool size in items; 0 disables the pool entirely.
  std::size_t capacity = 100;
  CachePolicy policy = CachePolicy::kLfu;
  /// Cache matchVertex scopes (candidate vertex sets per element key).
  bool enable_scope = true;
  /// Cache relation-pair paths (RP sets per (sub, obj, predicate) key).
  bool enable_path = true;
};

/// Shared immutable cache values: readers on the frozen path hold the
/// entry itself instead of copying vectors out per probe.
using ScopeValue = std::shared_ptr<const std::vector<graph::VertexId>>;
using PathValue = std::shared_ptr<const std::vector<RelationPair>>;

/// \brief The key-centric cache: a *scope* store (matchVertex results)
/// and a *path* store (getRelationpairs results), each under the chosen
/// eviction policy. Every probe charges CostKind::kCacheProbe.
///
/// Key representation: callers address entries by the stable string
/// keys (`VertexMatcher::ScopeKey` / `QueryGraphExecutor::PathKey`), but
/// the policy stores are keyed by interned `SymbolId`s from a private
/// table — the eviction lists hash and compare 32-bit ids, not strings.
/// The string -> id mapping is injective, so hit/miss and eviction
/// sequences are exactly those of a string-keyed store. Fault probes
/// stay keyed by the string (the injector's site/key hashing is part of
/// the observable model).
///
/// Values are immutable `shared_ptr` vectors: `Get*Shared` hands the
/// entry out without copying (the frozen read path), while the legacy
/// `Get*` copy-out overloads remain for callers that mutate.
///
/// Thread-safe by composition: `options_` is immutable after
/// construction, the interner and each policy store are internally
/// locked. `Clear` and the `*Stats` snapshots are per-store atomic, not
/// atomic across the scope and path stores — fine for their diagnostic
/// role. The `SimClock*` argument is caller-owned per-query state and is
/// charged outside any cache lock.
class KeyCentricCache {
 public:
  explicit KeyCentricCache(KeyCentricCacheOptions options = {});

  /// Scope lookup; copies the hit out (the caller mutates freely).
  std::optional<std::vector<graph::VertexId>> GetScope(
      const std::string& key, SimClock* clock = nullptr);
  void PutScope(const std::string& key, std::vector<graph::VertexId> value);

  /// Path lookup.
  std::optional<std::vector<RelationPair>> GetPath(
      const std::string& key, SimClock* clock = nullptr);
  void PutPath(const std::string& key, std::vector<RelationPair> value);

  /// Zero-copy lookups: the returned entry is shared with the cache (and
  /// any concurrent reader) and must be treated as immutable.
  std::optional<ScopeValue> GetScopeShared(const std::string& key,
                                           SimClock* clock = nullptr);
  void PutScopeShared(const std::string& key, ScopeValue value);
  std::optional<PathValue> GetPathShared(const std::string& key,
                                         SimClock* clock = nullptr);
  void PutPathShared(const std::string& key, PathValue value);

  /// Context-aware variants: each op consults the context's fault policy
  /// at FaultSite::kCacheOp (keyed by the cache key, so a Get and Put of
  /// the same key in one attempt draw one verdict). An injected fault
  /// *degrades* rather than fails — a Get becomes a charged miss and a
  /// Put drops the write — because a flaky cache must slow queries down,
  /// never take them down.
  std::optional<std::vector<graph::VertexId>> GetScope(const std::string& key,
                                                       const ExecContext& ctx);
  void PutScope(const std::string& key, std::vector<graph::VertexId> value,
                const ExecContext& ctx);
  std::optional<std::vector<RelationPair>> GetPath(const std::string& key,
                                                   const ExecContext& ctx);
  void PutPath(const std::string& key, std::vector<RelationPair> value,
               const ExecContext& ctx);
  std::optional<ScopeValue> GetScopeShared(const std::string& key,
                                           const ExecContext& ctx);
  void PutScopeShared(const std::string& key, ScopeValue value,
                      const ExecContext& ctx);
  std::optional<PathValue> GetPathShared(const std::string& key,
                                         const ExecContext& ctx);
  void PutPathShared(const std::string& key, PathValue value,
                     const ExecContext& ctx);

  const KeyCentricCacheOptions& options() const { return options_; }
  cache::CacheStats ScopeStats() const;
  cache::CacheStats PathStats() const;
  /// Scope + path stores merged into one snapshot.
  cache::CacheStats TotalStats() const;
  void Clear();

 private:
  template <typename V>
  struct PolicyPair {
    explicit PolicyPair(std::size_t capacity)
        : lfu(capacity), lru(capacity) {}
    cache::LfuCache<graph::SymbolId, V> lfu;
    cache::LruCache<graph::SymbolId, V> lru;
  };

  const KeyCentricCacheOptions options_;  // immutable after construction
  /// String key -> dense id; internally locked, append-only.
  graph::SymbolTable keys_;
  PolicyPair<ScopeValue> scope_;  // internally locked
  PolicyPair<PathValue> path_;    // internally locked
};

}  // namespace svqa::exec

#endif  // SVQA_EXEC_KEY_CENTRIC_CACHE_H_
