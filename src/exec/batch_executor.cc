#include "exec/batch_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace svqa::exec {

const char* BatchModeName(BatchMode mode) {
  switch (mode) {
    case BatchMode::kSimulated:
      return "simulated";
    case BatchMode::kThreaded:
      return "threaded";
  }
  return "unknown";
}

BatchExecutor::BatchExecutor(const QueryGraphExecutor* executor,
                             BatchOptions options)
    : executor_(executor), options_(options) {}

BatchExecutor::~BatchExecutor() = default;

std::vector<int> BatchExecutor::ScheduleOrder(
    const std::vector<query::QueryGraph>& graphs) const {
  std::vector<int> order(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  if (options_.use_scheduler) {
    std::vector<const query::QueryGraph*> ptrs;
    ptrs.reserve(graphs.size());
    for (const auto& g : graphs) ptrs.push_back(&g);
    order = ScheduleQueries(ptrs).order;
  }
  return order;
}

void BatchExecutor::ExecuteSimulated(
    const std::vector<query::QueryGraph>& graphs,
    const std::vector<int>& order, BatchResult* result) const {
  // Queries execute on the caller thread in schedule order (the shared
  // cache sees that global order — a deterministic approximation of
  // concurrent execution); each is then *assigned* to the virtual
  // worker with the least accumulated load (greedy list scheduling /
  // LPT in arrival order), so the virtual makespan is a lower bound on
  // any schedule-order-preserving dispatch rather than an artifact of
  // round-robin dealing.
  std::vector<double>& loads = result->worker_micros;
  for (const int qi : order) {
    SimClock clock;
    QueryOutcome& outcome = result->outcomes[static_cast<std::size_t>(qi)];
    ResilienceOptions resilience = options_.resilience;
    obs::Scope scope;
    // Everything runs on the caller thread: lane 0.
    outcome.trace = MakeQueryScope(static_cast<uint64_t>(qi), /*lane=*/0,
                                   &resilience, &scope);
    Result<Answer> r = executor_->ExecuteResilient(
        graphs[static_cast<std::size_t>(qi)], &clock, resilience,
        /*salt=*/static_cast<uint64_t>(qi), &outcome.diagnostics);
    outcome.status = r.status();
    if (r.ok()) outcome.answer = *r;
    outcome.latency_micros = clock.ElapsedMicros();
    result->ops.MergeSerial(clock);
    *std::min_element(loads.begin(), loads.end()) += outcome.latency_micros;
  }
}

void BatchExecutor::ExecuteThreaded(
    const std::vector<query::QueryGraph>& graphs,
    const std::vector<int>& order, BatchResult* result) const {
  const std::size_t workers = result->worker_micros.size();
  ThreadPool* pool = EnsurePool(workers);

  // Self-scheduling dispatch: whichever worker is free pulls the next
  // query in schedule order — dynamic least-loaded assignment. Each
  // query gets its own SimClock; slots of `outcomes`, `clocks` and
  // `worker_micros` are disjoint per task, so no locking is needed
  // beyond the atomic cursor.
  std::vector<SimClock> clocks(graphs.size());
  std::atomic<std::size_t> cursor{0};
  const double pace = options_.pace_micros_per_virtual_second;
  pool->ParallelFor(workers, [&](std::size_t w) {
    for (;;) {
      const std::size_t pos = cursor.fetch_add(1, std::memory_order_relaxed);
      if (pos >= order.size()) return;
      const auto qi = static_cast<std::size_t>(order[pos]);
      SimClock& clock = clocks[qi];
      QueryOutcome& outcome = result->outcomes[qi];
      ResilienceOptions resilience = options_.resilience;
      obs::Scope scope;
      outcome.trace = MakeQueryScope(static_cast<uint64_t>(qi),
                                     /*lane=*/static_cast<uint32_t>(w),
                                     &resilience, &scope);
      // Per-query isolation: the resilient call owns this slot's clock,
      // deadline, and retry loop; an error lands in this slot's Status
      // and the worker simply pulls the next query.
      Result<Answer> r = executor_->ExecuteResilient(
          graphs[qi], &clock, resilience,
          /*salt=*/static_cast<uint64_t>(qi), &outcome.diagnostics);
      outcome.status = r.status();
      if (r.ok()) outcome.answer = *r;
      outcome.latency_micros = clock.ElapsedMicros();
      result->worker_micros[w] += outcome.latency_micros;
      if (pace > 0) {
        // Hold the worker for the latency its query charged, so the
        // measured wall makespan reflects the modeled concurrency.
        std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
            outcome.latency_micros * pace / 1e6));
      }
    }
  });

  for (const SimClock& clock : clocks) result->ops.MergeSerial(clock);
}

BatchResult BatchExecutor::ExecuteAll(
    const std::vector<query::QueryGraph>& graphs) const {
  // Measurement-only wall clock: wall_micros reports the observed
  // makespan for benchmarks; answers and virtual latencies never read
  // it, so replay determinism is untouched.
  // svqa-lint: allow(virtual-time)
  const auto wall_start = std::chrono::steady_clock::now();
  BatchResult result;
  result.outcomes.resize(graphs.size());
  const std::size_t workers = std::max<std::size_t>(1, options_.num_workers);
  result.worker_micros.assign(workers, 0.0);

  const std::vector<int> order = ScheduleOrder(graphs);
  if (!graphs.empty()) {
    if (options_.mode == BatchMode::kThreaded) {
      ExecuteThreaded(graphs, order, &result);
    } else {
      ExecuteSimulated(graphs, order, &result);
    }
  }

  result.total_micros = *std::max_element(result.worker_micros.begin(),
                                          result.worker_micros.end());
  result.wall_micros =
      std::chrono::duration<double, std::micro>(
          // svqa-lint: allow(virtual-time) — same measurement site.
          std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

std::shared_ptr<obs::Tracer> BatchExecutor::MakeQueryScope(
    uint64_t query_id, uint32_t lane, ResilienceOptions* resilience,
    obs::Scope* scope) const {
  if (options_.obs == nullptr || !options_.obs->enabled()) return nullptr;
  std::shared_ptr<obs::Tracer> tracer;
  if (options_.obs->ShouldTrace(query_id)) {
    tracer = std::make_shared<obs::Tracer>(query_id);
  }
  *scope = options_.obs->MakeScope(tracer.get(), lane, query_id);
  resilience->obs = scope;
  return tracer;
}

ThreadPool* BatchExecutor::EnsurePool(std::size_t workers) const {
  MutexLock lock(&pool_mu_);
  if (pool_ == nullptr || pool_->num_threads() != workers) {
    pool_ = std::make_unique<ThreadPool>(workers);
  }
  return pool_.get();
}

}  // namespace svqa::exec
