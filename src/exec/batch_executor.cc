#include "exec/batch_executor.h"

#include <algorithm>
#include <chrono>

namespace svqa::exec {

BatchExecutor::BatchExecutor(const QueryGraphExecutor* executor,
                             BatchOptions options)
    : executor_(executor), options_(options) {}

BatchResult BatchExecutor::ExecuteAll(
    const std::vector<query::QueryGraph>& graphs) const {
  const auto wall_start = std::chrono::steady_clock::now();
  BatchResult result;
  result.outcomes.resize(graphs.size());

  // Pre-analysis & ordering.
  std::vector<int> order(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  if (options_.use_scheduler) {
    std::vector<const query::QueryGraph*> ptrs;
    ptrs.reserve(graphs.size());
    for (const auto& g : graphs) ptrs.push_back(&g);
    order = ScheduleQueries(ptrs).order;
  }

  const std::size_t workers = std::max<std::size_t>(1, options_.num_workers);
  std::vector<double> worker_micros(workers, 0.0);

  // Queries are dealt to workers round-robin in schedule order; the
  // shared cache sees them in that global order (a deterministic
  // approximation of concurrent execution).
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const int qi = order[pos];
    SimClock clock;
    Result<Answer> r = executor_->Execute(graphs[qi], &clock);
    QueryOutcome& outcome = result.outcomes[qi];
    outcome.status = r.status();
    if (r.ok()) outcome.answer = *r;
    outcome.latency_micros = clock.ElapsedMicros();
    worker_micros[pos % workers] += outcome.latency_micros;
  }

  if (workers == 1) {
    result.total_micros = worker_micros[0];
  } else {
    result.total_micros =
        *std::max_element(worker_micros.begin(), worker_micros.end());
  }
  result.wall_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

}  // namespace svqa::exec
