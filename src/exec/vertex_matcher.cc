#include "exec/vertex_matcher.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <unordered_set>

#include "obs/observability.h"
#include "obs/trace.h"
#include "text/levenshtein.h"
#include "util/arena.h"

namespace svqa::exec {

VertexMatcher::VertexMatcher(const aggregator::MergedGraph* merged,
                             const text::EmbeddingModel* embeddings,
                             VertexMatcherOptions options,
                             const graph::FrozenGraph* frozen)
    : merged_(merged),
      embeddings_(embeddings),
      options_(options),
      frozen_(frozen) {
  const graph::Graph& g = merged_->graph;
  const auto& lexicon = embeddings_->lexicon();
  taxonomy_children_.resize(static_cast<std::size_t>(g.num_vertices()));
  if (frozen_ != nullptr) {
    has_attribute_label_ =
        frozen_->EdgeLabelIdOf("has-attribute").value_or(graph::kInvalidLabel);
    canon_category_sym_.resize(static_cast<std::size_t>(g.num_vertices()),
                               graph::kInvalidSymbol);
  }
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const graph::Vertex& vx = g.vertex(v);
    canon_index_[lexicon.Canonical(vx.category)].push_back(v);
    if (frozen_ != nullptr) {
      canon_category_sym_[static_cast<std::size_t>(v)] =
          frozen_->symbols().Intern(lexicon.Canonical(vx.category));
    }
    std::string label = vx.label;
    if (auto pos = label.find('#'); pos != std::string::npos) {
      label.resize(pos);
    }
    const std::string canon_label = lexicon.Canonical(label);
    if (canon_label != lexicon.Canonical(vx.category)) {
      canon_index_[canon_label].push_back(v);
    }
    for (const auto& he : g.InEdges(v)) {
      const std::string_view el = g.EdgeLabelName(he.label);
      if (el == "is-a" || el == aggregator::kInstanceOfEdge ||
          el == aggregator::kSameAsEdge) {
        taxonomy_children_[static_cast<std::size_t>(v)].push_back(
            he.neighbor);
      }
    }
  }
}

std::string VertexMatcher::ScopeKey(const nlp::SpocElement& element) {
  std::string key = "scope:";
  key += element.head;
  if (!element.owner.empty()) {
    key += "|owner=";
    key += element.owner;
  }
  if (!element.attribute.empty()) {
    key += "|attr=";
    key += element.attribute;
  }
  return key;
}

Result<std::vector<graph::VertexId>> VertexMatcher::MatchByLabel(
    const std::string& head, const ExecContext& ctx) const {
  SimClock* clock = ctx.clock;
  const graph::Graph& g = merged_->graph;
  const auto& lexicon = embeddings_->lexicon();
  const std::string canon = lexicon.Canonical(head);

  SVQA_RETURN_NOT_OK(ctx.Checkpoint("matchVertex"));
  if (Status probed = ctx.ProbeFault(FaultSite::kMatcherScan, canon);
      !probed.ok()) {
    obs::CountFault(ctx.obs, FaultSite::kMatcherScan);
    return probed;
  }

  const auto it = canon_index_.find(canon);
  if (options_.use_label_index) {
    // Indexed probe: one bucket lookup plus a verifying compare per
    // bucket entry.
    if (clock != nullptr) clock->Charge(CostKind::kCacheProbe);
    if (it != canon_index_.end()) {
      if (clock != nullptr) {
        clock->Charge(CostKind::kVertexCompare,
                      static_cast<double>(it->second.size()));
      }
      return it->second;
    }
    // Near-miss key: the index cannot answer; the Levenshtein full scan
    // below runs (and is charged) exactly as in the unindexed model.
  } else {
    // Pre-index model: a scan of every vertex with a Levenshtein test
    // per label (what the scope cache amortizes); charge it as such
    // even when the physical fast path below short-circuits.
    if (clock != nullptr) {
      clock->Charge(CostKind::kVertexCompare,
                    static_cast<double>(g.num_vertices()));
      clock->Charge(CostKind::kLevenshtein,
                    static_cast<double>(g.num_vertices()));
    }
    SVQA_RETURN_NOT_OK(ctx.Checkpoint("matchVertex full scan"));
    if (it != canon_index_.end()) return it->second;
  }

  // Fuzzy fallback: normalized Levenshtein over labels and categories.
  if (options_.use_label_index) {
    if (clock != nullptr) {
      clock->Charge(CostKind::kVertexCompare,
                    static_cast<double>(g.num_vertices()));
      clock->Charge(CostKind::kLevenshtein,
                    static_cast<double>(g.num_vertices()));
    }
    // The scan's virtual cost is charged up front, so a budget-blowing
    // scan bails here before burning host time on the physical loop.
    SVQA_RETURN_NOT_OK(ctx.Checkpoint("matchVertex Levenshtein scan"));
  }
  if (frozen_ != nullptr) {
    // Id-space scan: the full virtual cost is already on the clock, so
    // the memos below shed host work only. The whole scan result is a
    // pure function of `canon` and the snapshot; repeats are shared.
    if (auto memo = scan_memo_.Get(canon)) {
      return std::vector<graph::VertexId>(**memo);
    }
    const graph::SymbolId canon_sym = frozen_->symbols().Intern(canon);
    auto scanned = std::make_shared<std::vector<graph::VertexId>>();
    const graph::VertexId n = frozen_->num_vertices();
    for (graph::VertexId v = 0; v < n; ++v) {
      if (LevenshteinWithin(frozen_->stripped_label_symbol(v), canon_sym,
                            canon) ||
          LevenshteinWithin(frozen_->category_symbol(v), canon_sym, canon)) {
        scanned->push_back(v);
      }
    }
    std::vector<graph::VertexId> out(*scanned);
    scan_memo_.Put(canon, std::move(scanned));
    return out;
  }
  std::vector<graph::VertexId> out;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const graph::Vertex& vx = g.vertex(v);
    std::string_view label = vx.label;
    if (auto pos = label.find('#'); pos != std::string_view::npos) {
      label = label.substr(0, pos);
    }
    if (text::NormalizedLevenshtein(label, canon) <=
            options_.levenshtein_threshold ||
        text::NormalizedLevenshtein(vx.category, canon) <=
            options_.levenshtein_threshold) {
      out.push_back(v);
    }
  }
  return out;
}

bool VertexMatcher::LevenshteinWithin(graph::SymbolId sym,
                                      graph::SymbolId canon_sym,
                                      const std::string& canon) const {
  const uint64_t key = (static_cast<uint64_t>(canon_sym) << 32) | sym;
  if (auto hit = lev_pair_memo_.Get(key)) return *hit;
  const bool within =
      text::NormalizedLevenshtein(frozen_->symbols().NameOf(sym), canon) <=
      options_.levenshtein_threshold;
  lev_pair_memo_.Put(key, within);
  return within;
}

Status VertexMatcher::ExpandTaxonomy(std::vector<graph::VertexId>* candidates,
                                     const ExecContext& ctx) const {
  SimClock* clock = ctx.clock;
  SVQA_RETURN_NOT_OK(ctx.Checkpoint("taxonomy expansion"));
  const graph::Graph& g = merged_->graph;
  // Walk down the taxonomy: concept -> (is-a in-edges) -> sub-concepts
  // -> (instance-of in-edges) -> scene objects / entities. The walk
  // follows the per-vertex taxonomy bucket; with the index disabled the
  // clock is charged for the full in-edge scan the bucket replaces.
  double traversed = 0;
  double probes = 0;
  if (frozen_ != nullptr) {
    // Id-space walk: a byte mask over the vertex table replaces the
    // hash set and the frontier is a flat vector with a read head, both
    // from the per-query arena when one is installed. Visit order and
    // charges match the hash-set walk exactly (the mask answers the
    // same membership queries).
    const std::size_t n =
        static_cast<std::size_t>(frozen_->num_vertices());
    const auto walk = [&](uint8_t* seen, auto& frontier) {
      for (const graph::VertexId c : *candidates) seen[c] = 1;
      frontier.assign(candidates->begin(), candidates->end());
      for (std::size_t head = 0; head < frontier.size(); ++head) {
        const graph::VertexId v = frontier[head];
        const auto& children =
            taxonomy_children_[static_cast<std::size_t>(v)];
        if (options_.use_label_index) {
          ++probes;
          traversed += static_cast<double>(children.size());
        } else {
          traversed += static_cast<double>(frozen_->InDegree(v));
        }
        for (const graph::VertexId child : children) {
          if (seen[child] == 0) {
            seen[child] = 1;
            candidates->push_back(child);
            frontier.push_back(child);
          }
        }
      }
    };
    if (ctx.arena != nullptr) {
      auto* seen = static_cast<uint8_t*>(ctx.arena->Allocate(n, 1));
      std::memset(seen, 0, n);
      util::ArenaVector<graph::VertexId> frontier{
          util::ArenaAllocator<graph::VertexId>(ctx.arena)};
      walk(seen, frontier);
    } else {
      std::vector<uint8_t> seen(n, 0);
      std::vector<graph::VertexId> frontier;
      walk(seen.data(), frontier);
    }
  } else {
    std::unordered_set<graph::VertexId> seen(candidates->begin(),
                                             candidates->end());
    std::deque<graph::VertexId> frontier(candidates->begin(),
                                         candidates->end());
    while (!frontier.empty()) {
      const graph::VertexId v = frontier.front();
      frontier.pop_front();
      const auto& children = taxonomy_children_[static_cast<std::size_t>(v)];
      if (options_.use_label_index) {
        ++probes;
        traversed += static_cast<double>(children.size());
      } else {
        traversed += static_cast<double>(g.InEdges(v).size());
      }
      for (const graph::VertexId child : children) {
        if (seen.insert(child).second) {
          candidates->push_back(child);
          frontier.push_back(child);
        }
      }
    }
  }
  if (clock != nullptr) {
    clock->Charge(CostKind::kEdgeTraverse, traversed);
    if (probes > 0) clock->Charge(CostKind::kCacheProbe, probes);
  }
  return ctx.Checkpoint("taxonomy expanded");
}

Result<std::pair<int, double>> VertexMatcher::BestEdgeLabel(
    const std::string& head, const ExecContext& ctx) const {
  SimClock* clock = ctx.clock;
  const auto& labels = merged_->graph.EdgeLabels();
  if (options_.memoize_similarity) {
    if (auto hit = edge_label_memo_.Get(head)) {
      if (clock != nullptr) clock->Charge(CostKind::kCacheProbe);
      return *hit;
    }
  }
  // The embedding sweep is the matcher's relation-scoring site.
  if (Status probed = ctx.ProbeFault(FaultSite::kRelationScore, head);
      !probed.ok()) {
    obs::CountFault(ctx.obs, FaultSite::kRelationScore);
    return probed;
  }
  if (clock != nullptr) {
    clock->Charge(CostKind::kEmbeddingSim, static_cast<double>(labels.size()));
  }
  SVQA_RETURN_NOT_OK(ctx.Checkpoint("edge-label maxScore"));
  const std::pair<int, double> best = embeddings_->MostSimilar(head, labels);
  if (options_.memoize_similarity) edge_label_memo_.Put(head, best);
  return best;
}

Result<std::vector<graph::VertexId>> VertexMatcher::MatchPossessive(
    const nlp::SpocElement& element, const ExecContext& ctx) const {
  SimClock* clock = ctx.clock;
  const graph::Graph& g = merged_->graph;
  // Resolve the owner entity: KG labels are kebab-case
  // ("harry-potter"); the phrase is space-separated.
  std::string owner_label = element.owner;
  std::replace(owner_label.begin(), owner_label.end(), ' ', '-');
  SVQA_ASSIGN_OR_RETURN(std::vector<graph::VertexId> owners,
                        MatchByLabel(owner_label, ctx));
  if (owners.empty()) return std::vector<graph::VertexId>{};

  // The KG edge whose label is embedding-closest to the head
  // ("girlfriend" -> "girlfriend-of").
  const auto& labels = g.EdgeLabels();
  SVQA_ASSIGN_OR_RETURN(const auto best_score,
                        BestEdgeLabel(element.head, ctx));
  const auto [best, score] = best_score;
  if (best < 0 || score < options_.edge_similarity_threshold) {
    return std::vector<graph::VertexId>{};
  }
  const std::string& edge_label = labels[static_cast<std::size_t>(best)];

  // X --girlfriend-of--> owner: collect in-edge sources on the owner.
  std::vector<graph::VertexId> out;
  double traversed = 0;
  if (frozen_ != nullptr) {
    // Labels and ids are bijective, so comparing the 32-bit id is the
    // same predicate as comparing the label text.
    const auto want = static_cast<graph::LabelId>(best);
    for (graph::VertexId o : owners) {
      for (const auto& he : frozen_->InEdges(o)) {
        ++traversed;
        if (he.label == want) out.push_back(he.neighbor);
      }
      // Also follow out-edges for symmetric relations.
      for (const auto& he : frozen_->OutEdges(o)) {
        ++traversed;
        if (he.label == want) out.push_back(he.neighbor);
      }
    }
  } else {
    for (graph::VertexId o : owners) {
      for (const auto& he : g.InEdges(o)) {
        ++traversed;
        if (g.EdgeLabelName(he.label) == edge_label) {
          out.push_back(he.neighbor);
        }
      }
      // Also follow out-edges for symmetric relations.
      for (const auto& he : g.OutEdges(o)) {
        ++traversed;
        if (g.EdgeLabelName(he.label) == edge_label) {
          out.push_back(he.neighbor);
        }
      }
    }
  }
  if (clock != nullptr) clock->Charge(CostKind::kEdgeTraverse, traversed);
  return out;
}

std::vector<graph::VertexId> VertexMatcher::Match(
    const nlp::SpocElement& element, SimClock* clock) const {
  // A bare clock context carries no faults, token, or deadline, so the
  // resilient path below cannot fail.
  Result<std::vector<graph::VertexId>> result =
      Match(element, ExecContext::WithClock(clock));
  // svqa-lint: allow(unchecked-result) — infallible by construction.
  return std::move(result).ValueOrDie();
}

Result<std::vector<graph::VertexId>> VertexMatcher::Match(
    const nlp::SpocElement& element, const ExecContext& ctx) const {
  SimClock* clock = ctx.clock;
  obs::Span span(ctx.obs, clock, "exec.match");
  std::vector<graph::VertexId> out;
  if (element.empty()) return out;

  if (!element.owner.empty()) {
    SVQA_ASSIGN_OR_RETURN(out, MatchPossessive(element, ctx));
    // Named entities found through the KG extend to their scene-graph
    // appearances via same-as links.
    SVQA_RETURN_NOT_OK(ExpandTaxonomy(&out, ctx));
  } else {
    SVQA_ASSIGN_OR_RETURN(out, MatchByLabel(element.head, ctx));
    SVQA_RETURN_NOT_OK(ExpandTaxonomy(&out, ctx));
  }
  // Attribute constraint ("red robe"): keep only candidates with a
  // matching has-attribute edge.
  if (!element.attribute.empty()) {
    const graph::Graph& g = merged_->graph;
    const auto& lexicon = embeddings_->lexicon();
    const std::string want = lexicon.Canonical(element.attribute);
    std::vector<graph::VertexId> filtered;
    double traversed = 0;
    if (frozen_ != nullptr) {
      // Canonical categories were interned at construction, so a wanted
      // token absent from the table matches no vertex — exactly the
      // string comparison's outcome.
      const std::optional<graph::SymbolId> want_sym =
          frozen_->symbols().Lookup(want);
      for (graph::VertexId v : out) {
        for (const auto& he : frozen_->OutEdges(v)) {
          ++traversed;
          if (he.label == has_attribute_label_ && want_sym.has_value() &&
              canon_category_sym_[static_cast<std::size_t>(he.neighbor)] ==
                  *want_sym) {
            filtered.push_back(v);
            break;
          }
        }
      }
    } else {
      for (graph::VertexId v : out) {
        for (const auto& he : g.OutEdges(v)) {
          ++traversed;
          if (g.EdgeLabelName(he.label) == "has-attribute" &&
              lexicon.Canonical(g.vertex(he.neighbor).category) == want) {
            filtered.push_back(v);
            break;
          }
        }
      }
    }
    if (clock != nullptr) clock->Charge(CostKind::kEdgeTraverse, traversed);
    out = std::move(filtered);
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace svqa::exec
