#include "exec/vertex_matcher.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "text/levenshtein.h"

namespace svqa::exec {

VertexMatcher::VertexMatcher(const aggregator::MergedGraph* merged,
                             const text::EmbeddingModel* embeddings,
                             VertexMatcherOptions options)
    : merged_(merged), embeddings_(embeddings), options_(options) {
  const graph::Graph& g = merged_->graph;
  const auto& lexicon = embeddings_->lexicon();
  taxonomy_children_.resize(static_cast<std::size_t>(g.num_vertices()));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const graph::Vertex& vx = g.vertex(v);
    canon_index_[lexicon.Canonical(vx.category)].push_back(v);
    std::string label = vx.label;
    if (auto pos = label.find('#'); pos != std::string::npos) {
      label.resize(pos);
    }
    const std::string canon_label = lexicon.Canonical(label);
    if (canon_label != lexicon.Canonical(vx.category)) {
      canon_index_[canon_label].push_back(v);
    }
    for (const auto& he : g.InEdges(v)) {
      const std::string_view el = g.EdgeLabelName(he.label);
      if (el == "is-a" || el == aggregator::kInstanceOfEdge ||
          el == aggregator::kSameAsEdge) {
        taxonomy_children_[static_cast<std::size_t>(v)].push_back(
            he.neighbor);
      }
    }
  }
}

std::string VertexMatcher::ScopeKey(const nlp::SpocElement& element) {
  std::string key = "scope:";
  key += element.head;
  if (!element.owner.empty()) {
    key += "|owner=";
    key += element.owner;
  }
  if (!element.attribute.empty()) {
    key += "|attr=";
    key += element.attribute;
  }
  return key;
}

Result<std::vector<graph::VertexId>> VertexMatcher::MatchByLabel(
    const std::string& head, const ExecContext& ctx) const {
  SimClock* clock = ctx.clock;
  const graph::Graph& g = merged_->graph;
  const auto& lexicon = embeddings_->lexicon();
  const std::string canon = lexicon.Canonical(head);

  SVQA_RETURN_NOT_OK(ctx.Checkpoint("matchVertex"));
  SVQA_RETURN_NOT_OK(ctx.ProbeFault(FaultSite::kMatcherScan, canon));

  const auto it = canon_index_.find(canon);
  if (options_.use_label_index) {
    // Indexed probe: one bucket lookup plus a verifying compare per
    // bucket entry.
    if (clock != nullptr) clock->Charge(CostKind::kCacheProbe);
    if (it != canon_index_.end()) {
      if (clock != nullptr) {
        clock->Charge(CostKind::kVertexCompare,
                      static_cast<double>(it->second.size()));
      }
      return it->second;
    }
    // Near-miss key: the index cannot answer; the Levenshtein full scan
    // below runs (and is charged) exactly as in the unindexed model.
  } else {
    // Pre-index model: a scan of every vertex with a Levenshtein test
    // per label (what the scope cache amortizes); charge it as such
    // even when the physical fast path below short-circuits.
    if (clock != nullptr) {
      clock->Charge(CostKind::kVertexCompare,
                    static_cast<double>(g.num_vertices()));
      clock->Charge(CostKind::kLevenshtein,
                    static_cast<double>(g.num_vertices()));
    }
    SVQA_RETURN_NOT_OK(ctx.Checkpoint("matchVertex full scan"));
    if (it != canon_index_.end()) return it->second;
  }

  // Fuzzy fallback: normalized Levenshtein over labels and categories.
  if (options_.use_label_index) {
    if (clock != nullptr) {
      clock->Charge(CostKind::kVertexCompare,
                    static_cast<double>(g.num_vertices()));
      clock->Charge(CostKind::kLevenshtein,
                    static_cast<double>(g.num_vertices()));
    }
    // The scan's virtual cost is charged up front, so a budget-blowing
    // scan bails here before burning host time on the physical loop.
    SVQA_RETURN_NOT_OK(ctx.Checkpoint("matchVertex Levenshtein scan"));
  }
  std::vector<graph::VertexId> out;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const graph::Vertex& vx = g.vertex(v);
    std::string_view label = vx.label;
    if (auto pos = label.find('#'); pos != std::string_view::npos) {
      label = label.substr(0, pos);
    }
    if (text::NormalizedLevenshtein(label, canon) <=
            options_.levenshtein_threshold ||
        text::NormalizedLevenshtein(vx.category, canon) <=
            options_.levenshtein_threshold) {
      out.push_back(v);
    }
  }
  return out;
}

Status VertexMatcher::ExpandTaxonomy(std::vector<graph::VertexId>* candidates,
                                     const ExecContext& ctx) const {
  SimClock* clock = ctx.clock;
  SVQA_RETURN_NOT_OK(ctx.Checkpoint("taxonomy expansion"));
  const graph::Graph& g = merged_->graph;
  // Walk down the taxonomy: concept -> (is-a in-edges) -> sub-concepts
  // -> (instance-of in-edges) -> scene objects / entities. The walk
  // follows the per-vertex taxonomy bucket; with the index disabled the
  // clock is charged for the full in-edge scan the bucket replaces.
  std::unordered_set<graph::VertexId> seen(candidates->begin(),
                                           candidates->end());
  std::deque<graph::VertexId> frontier(candidates->begin(),
                                       candidates->end());
  double traversed = 0;
  double probes = 0;
  while (!frontier.empty()) {
    const graph::VertexId v = frontier.front();
    frontier.pop_front();
    const auto& children = taxonomy_children_[static_cast<std::size_t>(v)];
    if (options_.use_label_index) {
      ++probes;
      traversed += static_cast<double>(children.size());
    } else {
      traversed += static_cast<double>(g.InEdges(v).size());
    }
    for (const graph::VertexId child : children) {
      if (seen.insert(child).second) {
        candidates->push_back(child);
        frontier.push_back(child);
      }
    }
  }
  if (clock != nullptr) {
    clock->Charge(CostKind::kEdgeTraverse, traversed);
    if (probes > 0) clock->Charge(CostKind::kCacheProbe, probes);
  }
  return ctx.Checkpoint("taxonomy expanded");
}

Result<std::pair<int, double>> VertexMatcher::BestEdgeLabel(
    const std::string& head, const ExecContext& ctx) const {
  SimClock* clock = ctx.clock;
  const auto& labels = merged_->graph.EdgeLabels();
  if (options_.memoize_similarity) {
    if (auto hit = edge_label_memo_.Get(head)) {
      if (clock != nullptr) clock->Charge(CostKind::kCacheProbe);
      return *hit;
    }
  }
  // The embedding sweep is the matcher's relation-scoring site.
  SVQA_RETURN_NOT_OK(ctx.ProbeFault(FaultSite::kRelationScore, head));
  if (clock != nullptr) {
    clock->Charge(CostKind::kEmbeddingSim, static_cast<double>(labels.size()));
  }
  SVQA_RETURN_NOT_OK(ctx.Checkpoint("edge-label maxScore"));
  const std::pair<int, double> best = embeddings_->MostSimilar(head, labels);
  if (options_.memoize_similarity) edge_label_memo_.Put(head, best);
  return best;
}

Result<std::vector<graph::VertexId>> VertexMatcher::MatchPossessive(
    const nlp::SpocElement& element, const ExecContext& ctx) const {
  SimClock* clock = ctx.clock;
  const graph::Graph& g = merged_->graph;
  // Resolve the owner entity: KG labels are kebab-case
  // ("harry-potter"); the phrase is space-separated.
  std::string owner_label = element.owner;
  std::replace(owner_label.begin(), owner_label.end(), ' ', '-');
  SVQA_ASSIGN_OR_RETURN(std::vector<graph::VertexId> owners,
                        MatchByLabel(owner_label, ctx));
  if (owners.empty()) return std::vector<graph::VertexId>{};

  // The KG edge whose label is embedding-closest to the head
  // ("girlfriend" -> "girlfriend-of").
  const auto& labels = g.EdgeLabels();
  SVQA_ASSIGN_OR_RETURN(const auto best_score,
                        BestEdgeLabel(element.head, ctx));
  const auto [best, score] = best_score;
  if (best < 0 || score < options_.edge_similarity_threshold) {
    return std::vector<graph::VertexId>{};
  }
  const std::string& edge_label = labels[static_cast<std::size_t>(best)];

  // X --girlfriend-of--> owner: collect in-edge sources on the owner.
  std::vector<graph::VertexId> out;
  double traversed = 0;
  for (graph::VertexId o : owners) {
    for (const auto& he : g.InEdges(o)) {
      ++traversed;
      if (g.EdgeLabelName(he.label) == edge_label) {
        out.push_back(he.neighbor);
      }
    }
    // Also follow out-edges for symmetric relations.
    for (const auto& he : g.OutEdges(o)) {
      ++traversed;
      if (g.EdgeLabelName(he.label) == edge_label) {
        out.push_back(he.neighbor);
      }
    }
  }
  if (clock != nullptr) clock->Charge(CostKind::kEdgeTraverse, traversed);
  return out;
}

std::vector<graph::VertexId> VertexMatcher::Match(
    const nlp::SpocElement& element, SimClock* clock) const {
  // A bare clock context carries no faults, token, or deadline, so the
  // resilient path below cannot fail.
  Result<std::vector<graph::VertexId>> result =
      Match(element, ExecContext::WithClock(clock));
  // svqa-lint: allow(unchecked-result) — infallible by construction.
  return std::move(result).ValueOrDie();
}

Result<std::vector<graph::VertexId>> VertexMatcher::Match(
    const nlp::SpocElement& element, const ExecContext& ctx) const {
  SimClock* clock = ctx.clock;
  std::vector<graph::VertexId> out;
  if (element.empty()) return out;

  if (!element.owner.empty()) {
    SVQA_ASSIGN_OR_RETURN(out, MatchPossessive(element, ctx));
    // Named entities found through the KG extend to their scene-graph
    // appearances via same-as links.
    SVQA_RETURN_NOT_OK(ExpandTaxonomy(&out, ctx));
  } else {
    SVQA_ASSIGN_OR_RETURN(out, MatchByLabel(element.head, ctx));
    SVQA_RETURN_NOT_OK(ExpandTaxonomy(&out, ctx));
  }
  // Attribute constraint ("red robe"): keep only candidates with a
  // matching has-attribute edge.
  if (!element.attribute.empty()) {
    const graph::Graph& g = merged_->graph;
    const auto& lexicon = embeddings_->lexicon();
    const std::string want = lexicon.Canonical(element.attribute);
    std::vector<graph::VertexId> filtered;
    double traversed = 0;
    for (graph::VertexId v : out) {
      for (const auto& he : g.OutEdges(v)) {
        ++traversed;
        if (g.EdgeLabelName(he.label) == "has-attribute" &&
            lexicon.Canonical(g.vertex(he.neighbor).category) == want) {
          filtered.push_back(v);
          break;
        }
      }
    }
    if (clock != nullptr) clock->Charge(CostKind::kEdgeTraverse, traversed);
    out = std::move(filtered);
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace svqa::exec
