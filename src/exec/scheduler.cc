#include "exec/scheduler.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "exec/executor.h"

namespace svqa::exec {

ScheduleResult ScheduleQueries(
    const std::vector<const query::QueryGraph*>& graphs) {
  ScheduleResult result;
  result.scores.assign(graphs.size(), 0.0);

  // Frequency of each distinct vertex key across the batch.
  std::unordered_map<std::string, std::size_t> freq;
  std::size_t total = 0;
  for (const query::QueryGraph* g : graphs) {
    for (const nlp::Spoc& spoc : g->vertices()) {
      ++freq[QueryGraphExecutor::PathKey(spoc)];
      ++total;
    }
  }
  if (total == 0) total = 1;

  for (std::size_t i = 0; i < graphs.size(); ++i) {
    double score = 0;
    for (const nlp::Spoc& spoc : graphs[i]->vertices()) {
      score += static_cast<double>(freq[QueryGraphExecutor::PathKey(spoc)]) /
               static_cast<double>(total);
    }
    result.scores[i] = score;
  }

  result.order.resize(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    result.order[i] = static_cast<int>(i);
  }
  std::stable_sort(result.order.begin(), result.order.end(),
                   [&](int a, int b) {
                     return result.scores[a] > result.scores[b];
                   });
  return result;
}

}  // namespace svqa::exec
