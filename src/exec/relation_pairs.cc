#include "exec/relation_pairs.h"

#include <unordered_set>

namespace svqa::exec {

std::vector<RelationPair> FindRelationPairs(
    const graph::Graph& g, const std::vector<graph::VertexId>& subjects,
    const std::vector<graph::VertexId>& objects, SimClock* clock) {
  std::vector<RelationPair> pairs;
  if (subjects.empty() || objects.empty()) return pairs;

  // Join-direction choice: scan the adjacency of the smaller candidate
  // set and hash-probe the larger one — the traversal cost is
  // proportional to the scanned side's degree sum.
  const bool scan_subjects = subjects.size() <= objects.size();
  const auto& scan = scan_subjects ? subjects : objects;
  const auto& probe = scan_subjects ? objects : subjects;

  std::unordered_set<graph::VertexId> probe_set(probe.begin(), probe.end());
  double scanned = 0;
  for (graph::VertexId v : scan) {
    for (const auto& he : g.OutEdges(v)) {
      ++scanned;
      if (probe_set.count(he.neighbor) > 0) {
        // Edge v -> neighbor. Subject/object roles depend on which side
        // we scanned; `forward` records whether the stored edge runs
        // subject -> object.
        if (scan_subjects) {
          pairs.push_back(RelationPair{
              v, he.neighbor, std::string(g.EdgeLabelName(he.label)),
              true});
        } else {
          pairs.push_back(RelationPair{
              he.neighbor, v, std::string(g.EdgeLabelName(he.label)),
              false});
        }
      }
    }
    for (const auto& he : g.InEdges(v)) {
      ++scanned;
      if (probe_set.count(he.neighbor) > 0) {
        // Edge neighbor -> v.
        if (scan_subjects) {
          pairs.push_back(RelationPair{
              v, he.neighbor, std::string(g.EdgeLabelName(he.label)),
              false});
        } else {
          pairs.push_back(RelationPair{
              he.neighbor, v, std::string(g.EdgeLabelName(he.label)),
              true});
        }
      }
    }
  }
  if (clock != nullptr) clock->Charge(CostKind::kEdgeTraverse, scanned);
  return pairs;
}

}  // namespace svqa::exec
