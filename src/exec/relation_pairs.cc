#include "exec/relation_pairs.h"

#include <algorithm>
#include <unordered_set>

namespace svqa::exec {

std::vector<RelationPair> FindRelationPairs(
    const graph::Graph& g, std::span<const graph::VertexId> subjects,
    std::span<const graph::VertexId> objects, SimClock* clock) {
  std::vector<RelationPair> pairs;
  if (subjects.empty() || objects.empty()) return pairs;

  // Join-direction choice: scan the adjacency of the smaller candidate
  // set and hash-probe the larger one — the traversal cost is
  // proportional to the scanned side's degree sum.
  const bool scan_subjects = subjects.size() <= objects.size();
  const auto& scan = scan_subjects ? subjects : objects;
  const auto& probe = scan_subjects ? objects : subjects;

  std::unordered_set<graph::VertexId> probe_set(probe.begin(), probe.end());
  double scanned = 0;
  for (graph::VertexId v : scan) {
    for (const auto& he : g.OutEdges(v)) {
      ++scanned;
      if (probe_set.count(he.neighbor) > 0) {
        // Edge v -> neighbor. Subject/object roles depend on which side
        // we scanned; `forward` records whether the stored edge runs
        // subject -> object.
        if (scan_subjects) {
          pairs.push_back(RelationPair{
              v, he.neighbor, std::string(g.EdgeLabelName(he.label)), true,
              he.label});
        } else {
          pairs.push_back(RelationPair{
              he.neighbor, v, std::string(g.EdgeLabelName(he.label)), false,
              he.label});
        }
      }
    }
    for (const auto& he : g.InEdges(v)) {
      ++scanned;
      if (probe_set.count(he.neighbor) > 0) {
        // Edge neighbor -> v.
        if (scan_subjects) {
          pairs.push_back(RelationPair{
              v, he.neighbor, std::string(g.EdgeLabelName(he.label)), false,
              he.label});
        } else {
          pairs.push_back(RelationPair{
              he.neighbor, v, std::string(g.EdgeLabelName(he.label)), true,
              he.label});
        }
      }
    }
  }
  if (clock != nullptr) clock->Charge(CostKind::kEdgeTraverse, scanned);
  return pairs;
}

std::vector<RelationPair> FindRelationPairs(
    const graph::FrozenGraph& g, std::span<const graph::VertexId> subjects,
    std::span<const graph::VertexId> objects, SimClock* clock) {
  std::vector<RelationPair> pairs;
  if (subjects.empty() || objects.empty()) return pairs;

  // Same join-direction choice as the mutable overload; the probe side
  // is binary-searched in place (candidate sets arrive sorted), so the
  // only allocations are the output pairs themselves.
  const bool scan_subjects = subjects.size() <= objects.size();
  const auto& scan = scan_subjects ? subjects : objects;
  const auto& probe = scan_subjects ? objects : subjects;

  const auto in_probe = [&probe](graph::VertexId v) {
    return std::binary_search(probe.begin(), probe.end(), v);
  };
  // Counting pass: the result is usually published into the path cache
  // where it lives long-term, so size the buffer exactly instead of
  // paying the ~2x realloc-growth traffic. The traversal is charged
  // once (below) — the recount is host work over the CSR rows, not
  // modeled cost.
  std::size_t matches = 0;
  double scanned = 0;
  for (graph::VertexId v : scan) {
    for (const auto& he : g.OutEdges(v)) {
      ++scanned;
      if (in_probe(he.neighbor)) ++matches;
    }
    for (const auto& he : g.InEdges(v)) {
      ++scanned;
      if (in_probe(he.neighbor)) ++matches;
    }
  }
  pairs.reserve(matches);
  for (graph::VertexId v : scan) {
    for (const auto& he : g.OutEdges(v)) {
      if (in_probe(he.neighbor)) {
        if (scan_subjects) {
          pairs.push_back(RelationPair{
              v, he.neighbor, std::string(g.EdgeLabelName(he.label)), true,
              he.label});
        } else {
          pairs.push_back(RelationPair{
              he.neighbor, v, std::string(g.EdgeLabelName(he.label)), false,
              he.label});
        }
      }
    }
    for (const auto& he : g.InEdges(v)) {
      if (in_probe(he.neighbor)) {
        if (scan_subjects) {
          pairs.push_back(RelationPair{
              v, he.neighbor, std::string(g.EdgeLabelName(he.label)), false,
              he.label});
        } else {
          pairs.push_back(RelationPair{
              he.neighbor, v, std::string(g.EdgeLabelName(he.label)), true,
              he.label});
        }
      }
    }
  }
  if (clock != nullptr) clock->Charge(CostKind::kEdgeTraverse, scanned);
  return pairs;
}

}  // namespace svqa::exec
