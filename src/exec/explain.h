#ifndef SVQA_EXEC_EXPLAIN_H_
#define SVQA_EXEC_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "obs/trace.h"
#include "query/query_graph.h"
#include "util/result.h"

namespace svqa::exec {

/// \brief Virtual-time cost attribution for one SPOC quadruple of an
/// executed query, aggregated across retry attempts.
struct QuadrupleCost {
  /// Vertex index in the query graph (0 = main clause).
  int vertex = 0;
  /// The quadruple itself, `Spoc::ToString` form.
  std::string quadruple;
  /// Attempts that reached (opened a span for) this vertex.
  uint64_t executions = 0;
  /// Of those, how many were served from the path cache (no
  /// relation-pair scan ran).
  uint64_t cached = 0;
  /// Full vertex-span duration (== match + pairs + filter + constraints
  /// + bind up to double rounding in the display splits).
  double total_micros = 0;
  /// matchVertex scope resolution (`exec.match` children).
  double match_micros = 0;
  /// Adjacency relation-pair collection (`exec.relation_pairs`).
  double relation_pairs_micros = 0;
  /// Vertex self time: predicate filtering (incl. the maxScore
  /// embedding sweep, which has no child span), cache probes, and
  /// answer assembly.
  double filter_micros = 0;
  /// Constraint filter (`exec.constraints`).
  double constraints_micros = 0;
  /// Binding pushes into consumer vertices (`exec.bind`).
  double bind_micros = 0;
};

/// \brief Cache hit/miss counts charged while the explained query ran.
/// `present` is false when the executing path shared its metrics
/// registry with other traffic (counter deltas would be meaningless);
/// `SvqaEngine::ExplainAnalyze` meters the query into a private
/// registry, so there the counts are per-query absolutes.
struct CacheCounters {
  bool present = false;
  uint64_t scope_hits = 0;
  uint64_t scope_misses = 0;
  uint64_t path_hits = 0;
  uint64_t path_misses = 0;
};

/// \brief EXPLAIN ANALYZE for one executed query: the joined view of
/// its trace spans, charged virtual costs, cache behaviour, and
/// retry/degradation diagnostics, broken down per quadruple.
///
/// Built from a `Tracer` that observed the execution, so the report is
/// a pure function of the query's virtual-time behaviour —
/// byte-identical across runs, hosts, and worker counts.
struct QueryCostReport {
  uint64_t query_id = 0;
  std::string question;
  Diagnostics diagnostics;
  /// Parse time (`core.parse` / `serve.parse` root spans).
  double parse_micros = 0;
  /// Extent of the resilient execution: last attempt/backoff span end
  /// minus first attempt span start, as ONE double subtraction of the
  /// clock readings the spans captured — which is why it reconciles bit
  /// for bit with `Diagnostics.charged_micros` (same two readings, same
  /// subtraction). 0 when nothing executed.
  double exec_micros = 0;
  CacheCounters cache;
  /// Per-quadruple breakdown, topological execution order.
  std::vector<QuadrupleCost> quadruples;

  /// Proves the attribution is exact rather than approximately summed:
  /// checks that the attempt/backoff segments tile `[first start, last
  /// end]` with bitwise-equal shared boundaries, that each attempt is
  /// tiled the same way by its vertex spans, and that `exec_micros`
  /// equals `charged_micros` bitwise. Any gap, overlap, or drift —
  /// i.e. any virtual cost the report failed to attribute — is an
  /// error naming the offending boundary.
  SVQA_NODISCARD Status VerifyReconciliation(double charged_micros) const;

  /// Byte-stable plain-text report.
  std::string ToText() const;
  /// Byte-stable JSON report.
  std::string ToJson() const;

  /// Span-boundary segments kept for VerifyReconciliation (exposed for
  /// tests; [start, end] of each `exec.attempt` / `exec.backoff` root
  /// span in record order, and per attempt the vertex boundaries).
  struct Segment {
    bool is_backoff = false;
    double start_micros = 0;
    double end_micros = 0;
    /// For attempts: boundaries of the vertex spans, in record order
    /// (empty for backoffs).
    std::vector<double> vertex_bounds;  // [s0, e0, s1, e1, ...]
  };
  std::vector<Segment> segments;
};

/// Joins an executed query's trace with its diagnostics into the cost
/// report. `tracer` must have observed the execution (the engine's
/// ExplainAnalyze and the serve explain path both force one on). Fails
/// when the trace's vertex spans cannot be mapped onto the query
/// graph's topological order (a trace from a different query).
Result<QueryCostReport> BuildQueryCostReport(const query::QueryGraph& gq,
                                             const obs::Tracer& tracer,
                                             const Diagnostics& diagnostics,
                                             const CacheCounters& cache);

}  // namespace svqa::exec

#endif  // SVQA_EXEC_EXPLAIN_H_
