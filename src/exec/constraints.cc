#include "exec/constraints.h"

#include "text/tokenizer.h"

namespace svqa::exec {

const char* ConstraintKindName(ConstraintKind kind) {
  switch (kind) {
    case ConstraintKind::kNone:
      return "none";
    case ConstraintKind::kMostFrequent:
      return "most-frequent";
    case ConstraintKind::kLeastFrequent:
      return "least-frequent";
  }
  return "?";
}

const std::vector<std::string>& ConstraintKeywords() {
  static const auto* keywords = new std::vector<std::string>{
      "most", "least", "often", "frequently", "rarely", "usually",
      "commonly", "mostly"};
  return *keywords;
}

namespace {

ConstraintKind KindOfKeyword(const std::string& keyword) {
  if (keyword == "least" || keyword == "rarely") {
    return ConstraintKind::kLeastFrequent;
  }
  return ConstraintKind::kMostFrequent;
}

}  // namespace

ConstraintSpec ResolveConstraint(const std::string& constraint,
                                 const text::EmbeddingModel& embeddings,
                                 SimClock* clock, double min_score) {
  ConstraintSpec spec;
  if (constraint.empty()) return spec;

  const auto& keywords = ConstraintKeywords();
  if (clock != nullptr) {
    clock->Charge(CostKind::kEmbeddingSim,
                  static_cast<double>(keywords.size()));
  }

  // The superlative token carries the polarity ("most frequently" vs
  // "least frequently"), so resolve each token and keep the strongest
  // polarity-determining hit: an exact keyword wins outright, otherwise
  // embedding-closest.
  double best_score = -1;
  std::string best_keyword;
  for (const std::string& token : text::Tokenize(constraint)) {
    for (const std::string& keyword : keywords) {
      const double score =
          token == keyword ? 1.0 : embeddings.Similarity(token, keyword);
      const bool polar = keyword == "most" || keyword == "least" ||
                         keyword == "rarely";
      // Prefer polarity keywords on ties so "most frequently" resolves
      // through "most", not "frequently".
      const double adjusted = score + (polar ? 0.05 : 0.0);
      if (adjusted > best_score) {
        best_score = adjusted;
        best_keyword = keyword;
        spec.score = score;
      }
    }
  }
  if (spec.score < min_score) return ConstraintSpec{};
  spec.matched_keyword = best_keyword;
  spec.kind = KindOfKeyword(best_keyword);
  return spec;
}

Result<ConstraintSpec> ResolveConstraint(const std::string& constraint,
                                         const text::EmbeddingModel& embeddings,
                                         const ExecContext& ctx,
                                         double min_score) {
  SVQA_RETURN_NOT_OK(ctx.Checkpoint("constraint resolution"));
  ConstraintSpec spec =
      ResolveConstraint(constraint, embeddings, ctx.clock, min_score);
  // The keyword sweep's cost is now on the clock; report an overrun
  // before the caller builds on the spec.
  SVQA_RETURN_NOT_OK(ctx.Checkpoint("constraint resolved"));
  return spec;
}

}  // namespace svqa::exec
