#ifndef SVQA_EXEC_CONSTRAINTS_H_
#define SVQA_EXEC_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "text/embedding.h"
#include "util/exec_context.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace svqa::exec {

/// \brief Semantic classes of the constraint c_c (Algorithm 3 line 9:
/// `Con <- maxScore(L(c_c), S)` against the predefined word set S of
/// ref [35]).
enum class ConstraintKind {
  kNone,
  /// Keep the subject group(s) with maximal support ("most frequently").
  kMostFrequent,
  /// Keep the subject group(s) with minimal support ("least often").
  kLeastFrequent,
};

const char* ConstraintKindName(ConstraintKind kind);

/// \brief A resolved constraint.
struct ConstraintSpec {
  ConstraintKind kind = ConstraintKind::kNone;
  /// The predefined keyword the constraint text matched.
  std::string matched_keyword;
  /// Cosine score of the match.
  double score = 0;
};

/// \brief The predefined constraint word set S.
const std::vector<std::string>& ConstraintKeywords();

/// \brief Resolves a constraint phrase by embedding similarity against
/// the predefined word set (charging CostKind::kEmbeddingSim per
/// keyword). Empty input or a weak match resolves to kNone.
ConstraintSpec ResolveConstraint(const std::string& constraint,
                                 const text::EmbeddingModel& embeddings,
                                 SimClock* clock = nullptr,
                                 double min_score = 0.45);

/// \brief Context-aware constraint resolution: check-points the
/// cancellation token and virtual deadline around the keyword sweep
/// (whose cost is charged before the post-sweep check), surfacing
/// kCancelled / kDeadlineExceeded instead of a spec.
Result<ConstraintSpec> ResolveConstraint(const std::string& constraint,
                                         const text::EmbeddingModel& embeddings,
                                         const ExecContext& ctx,
                                         double min_score = 0.45);

}  // namespace svqa::exec

#endif  // SVQA_EXEC_CONSTRAINTS_H_
