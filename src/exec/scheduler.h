#ifndef SVQA_EXEC_SCHEDULER_H_
#define SVQA_EXEC_SCHEDULER_H_

#include <vector>

#include "query/query_graph.h"

namespace svqa::exec {

/// \brief Output of the pre-analysis: an execution order plus the
/// frequency-ratio score of every graph.
struct ScheduleResult {
  /// Indices into the input vector, highest score first.
  std::vector<int> order;
  /// Score per input graph (sum of its vertices' frequency ratios).
  std::vector<double> scores;
};

/// \brief Optimized query scheduling (§V-B): pre-analyzes the N query
/// graphs, counts how often each distinct SPOC vertex key appears across
/// the batch, scores every graph by the summed frequency ratio of its
/// vertices, and sorts descending — graphs full of reusable vertices run
/// first so the key-centric cache is warm for everyone else.
ScheduleResult ScheduleQueries(
    const std::vector<const query::QueryGraph*>& graphs);

}  // namespace svqa::exec

#endif  // SVQA_EXEC_SCHEDULER_H_
