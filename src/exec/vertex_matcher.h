#ifndef SVQA_EXEC_VERTEX_MATCHER_H_
#define SVQA_EXEC_VERTEX_MATCHER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "aggregator/merger.h"
#include "graph/graph.h"
#include "nlp/spoc_extractor.h"
#include "text/embedding.h"
#include "util/sim_clock.h"

namespace svqa::exec {

/// \brief Options for matchVertex.
struct VertexMatcherOptions {
  /// Maximum normalized Levenshtein distance for a label match (the
  /// paper's "empirical threshold").
  double levenshtein_threshold = 0.34;
  /// Minimum embedding cosine for the relation-edge fallback of
  /// non-simple nouns.
  double edge_similarity_threshold = 0.55;
};

/// \brief matchVertex (Algorithm 3, §V-A): resolves a SPOC element to
/// candidate vertices of the merged graph.
///
/// Simple nouns scan every merged-graph vertex, comparing the canonical
/// head against labels and categories by normalized Levenshtein distance
/// (charging kVertexCompare + kLevenshtein per vertex — the cost the
/// *scope* cache amortizes). Hyponym expansion then follows the KG
/// taxonomy (is-a / instance-of links) so "animal" reaches dog/cat scene
/// objects. Possessive phrases ("harry potter's girlfriend") resolve the
/// owner and follow the KG edge whose label is embedding-closest to the
/// head ("girlfriend" -> "girlfriend-of").
class VertexMatcher {
 public:
  VertexMatcher(const aggregator::MergedGraph* merged,
                const text::EmbeddingModel* embeddings,
                VertexMatcherOptions options = {});

  /// Resolves one element. The result is sorted and deduplicated.
  std::vector<graph::VertexId> Match(const nlp::SpocElement& element,
                                     SimClock* clock = nullptr) const;

  /// The stable cache key identifying this element's match scope.
  static std::string ScopeKey(const nlp::SpocElement& element);

 private:
  std::vector<graph::VertexId> MatchByLabel(const std::string& head,
                                            SimClock* clock) const;
  void ExpandTaxonomy(std::vector<graph::VertexId>* candidates,
                      SimClock* clock) const;
  std::vector<graph::VertexId> MatchPossessive(
      const nlp::SpocElement& element, SimClock* clock) const;

  const aggregator::MergedGraph* merged_;
  const text::EmbeddingModel* embeddings_;
  VertexMatcherOptions options_;
  /// Physical fast path: canonical category/label -> vertices. The
  /// matcher still *charges* the full label scan (that is what the
  /// algorithm performs and what the scope cache amortizes); the index
  /// only keeps host wall-time reasonable. Fuzzy Levenshtein matching
  /// runs only when the exact canonical lookup comes back empty.
  std::unordered_map<std::string, std::vector<graph::VertexId>> canon_index_;
};

}  // namespace svqa::exec

#endif  // SVQA_EXEC_VERTEX_MATCHER_H_
