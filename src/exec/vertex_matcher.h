#ifndef SVQA_EXEC_VERTEX_MATCHER_H_
#define SVQA_EXEC_VERTEX_MATCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "aggregator/merger.h"
#include "graph/frozen_graph.h"
#include "graph/graph.h"
#include "graph/interning.h"
#include "nlp/spoc_extractor.h"
#include "text/embedding.h"
#include "util/exec_context.h"
#include "util/memo_cache.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace svqa::exec {

/// \brief Options for matchVertex.
struct VertexMatcherOptions {
  /// Maximum normalized Levenshtein distance for a label match (the
  /// paper's "empirical threshold").
  double levenshtein_threshold = 0.34;
  /// Minimum embedding cosine for the relation-edge fallback of
  /// non-simple nouns.
  double edge_similarity_threshold = 0.55;
  /// Probe the inverted label/category index instead of scanning every
  /// merged-graph vertex. Changes the *charged* cost of MatchByLabel and
  /// ExpandTaxonomy from O(|V|) / O(in-degree) to a bucket probe; the
  /// Levenshtein full scan (still charged in full) only fires for
  /// near-miss keys the index cannot resolve exactly. Disable for the
  /// pre-index cost model (the Exp-5 ablation baseline).
  bool use_label_index = true;
  /// Memoize the best-edge-label cosine lookup of possessive phrases
  /// (head -> embedding-closest KG edge label). A memo hit charges one
  /// kCacheProbe instead of kEmbeddingSim per edge label.
  bool memoize_similarity = true;
};

/// \brief matchVertex (Algorithm 3, §V-A): resolves a SPOC element to
/// candidate vertices of the merged graph.
///
/// Simple nouns resolve through the inverted canonical-token index
/// (label/category -> vertex bucket, built once at construction); a
/// near-miss key falls back to the full merged-graph scan comparing
/// labels by normalized Levenshtein distance. Hyponym expansion then
/// follows the KG taxonomy (is-a / instance-of links, pre-bucketed per
/// vertex) so "animal" reaches dog/cat scene objects. Possessive phrases
/// ("harry potter's girlfriend") resolve the owner and follow the KG
/// edge whose label is embedding-closest to the head ("girlfriend" ->
/// "girlfriend-of").
///
/// Charging model: with `use_label_index` the virtual clock is charged
/// for the bucket probe plus one kVertexCompare per bucket entry —
/// the index is part of the modeled system, not just a host shortcut.
/// With the index disabled the full scan is charged (kVertexCompare +
/// kLevenshtein per vertex), reproducing the paper's pre-index §V-A
/// cost that the scope cache amortizes.
///
/// Frozen execution: constructed with a FrozenGraph the matcher runs in
/// id space — edge labels and attribute categories compare as interned
/// 32-bit ids, the Levenshtein near-miss scan memoizes per
/// (query, label-symbol) pair and per canonical key, and the taxonomy
/// walk uses a byte-mask visited set from the context's arena instead of
/// a hash set. Candidate sets, iteration orders, and every virtual-clock
/// charge are byte-identical to the mutable path; only host time and
/// allocations change. The snapshot must be compiled from exactly the
/// merged graph passed alongside it.
///
/// Thread-safety: `Match` is safe for concurrent calls; the mutable
/// state (similarity / Levenshtein / scan memos) is internally locked.
///
/// Resilience: the context-taking `Match` overload honours the
/// check-point contract — it polls cancellation and the virtual-time
/// deadline between scans (each scan's cost is charged before the
/// check, so a scan that blows its budget surfaces kDeadlineExceeded at
/// the very next check-point) and consults the fault policy at
/// FaultSite::kMatcherScan / kRelationScore before fault-prone work.
class VertexMatcher {
 public:
  /// \param frozen optional compiled snapshot of `merged->graph`;
  /// non-null switches label comparisons, taxonomy walks, and attribute
  /// filters to id space (see class comment). Not owned; must outlive
  /// the matcher.
  VertexMatcher(const aggregator::MergedGraph* merged,
                const text::EmbeddingModel* embeddings,
                VertexMatcherOptions options = {},
                const graph::FrozenGraph* frozen = nullptr);

  /// Resolves one element. The result is sorted and deduplicated.
  /// Infallible convenience overload for fault-free, unbounded callers.
  std::vector<graph::VertexId> Match(const nlp::SpocElement& element,
                                     SimClock* clock = nullptr) const;

  /// Context-aware resolution: surfaces kCancelled / kDeadlineExceeded
  /// from check-points and injected faults from the context's policy.
  Result<std::vector<graph::VertexId>> Match(const nlp::SpocElement& element,
                                             const ExecContext& ctx) const;

  /// The stable cache key identifying this element's match scope.
  static std::string ScopeKey(const nlp::SpocElement& element);

  const VertexMatcherOptions& options() const { return options_; }
  /// Hit/miss counters of the possessive edge-label memo.
  MemoStats similarity_memo_stats() const { return edge_label_memo_.stats(); }

 private:
  Result<std::vector<graph::VertexId>> MatchByLabel(
      const std::string& head, const ExecContext& ctx) const;
  Status ExpandTaxonomy(std::vector<graph::VertexId>* candidates,
                        const ExecContext& ctx) const;
  Result<std::vector<graph::VertexId>> MatchPossessive(
      const nlp::SpocElement& element, const ExecContext& ctx) const;
  /// maxScore of `head` against the merged graph's edge labels, through
  /// the memo when enabled.
  Result<std::pair<int, double>> BestEdgeLabel(const std::string& head,
                                               const ExecContext& ctx) const;
  /// Frozen path: is the normalized Levenshtein distance between the
  /// interned symbol's text and `canon` within the match threshold?
  /// Memoized per (canon symbol, other symbol) pair.
  bool LevenshteinWithin(graph::SymbolId sym, graph::SymbolId canon_sym,
                         const std::string& canon) const;

  const aggregator::MergedGraph* merged_;
  const text::EmbeddingModel* embeddings_;
  VertexMatcherOptions options_;
  /// Compiled snapshot of merged_->graph, or nullptr (mutable path).
  const graph::FrozenGraph* frozen_;
  /// Frozen path: interned edge-label id of "has-attribute".
  graph::LabelId has_attribute_label_ = graph::kInvalidLabel;
  /// Frozen path: per-vertex interned canonical-category token (the
  /// attribute filter compares these against the wanted attribute).
  std::vector<graph::SymbolId> canon_category_sym_;
  /// Inverted index: canonical category/label token -> vertex bucket.
  std::unordered_map<std::string, std::vector<graph::VertexId>> canon_index_;
  /// Taxonomy bucket per vertex: in-neighbors reachable over
  /// is-a / instance-of / same-as edges (what ExpandTaxonomy follows).
  std::vector<std::vector<graph::VertexId>> taxonomy_children_;
  /// Possessive head -> (edge label index, cosine) memo; thread-safe.
  mutable MemoCache<std::string, std::pair<int, double>> edge_label_memo_;
  /// Frozen path: (canon symbol << 32 | label symbol) -> within
  /// threshold. Bounded by vocabulary size squared, in practice tiny.
  mutable MemoCache<uint64_t, bool> lev_pair_memo_;
  /// Frozen path: canonical key -> shared near-miss scan result. The
  /// scan's virtual cost is charged before the memo is consulted, so a
  /// hit skips host work only.
  mutable MemoCache<std::string,
                    std::shared_ptr<const std::vector<graph::VertexId>>>
      scan_memo_;
};

}  // namespace svqa::exec

#endif  // SVQA_EXEC_VERTEX_MATCHER_H_
