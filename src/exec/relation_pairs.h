#ifndef SVQA_EXEC_RELATION_PAIRS_H_
#define SVQA_EXEC_RELATION_PAIRS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/sim_clock.h"

namespace svqa::exec {

/// \brief One (Sub - E_so - Obj) relation pair (Algorithm 3 line 26).
/// `forward` is true when the merged-graph edge runs subject -> object.
struct RelationPair {
  graph::VertexId subject = 0;
  graph::VertexId object = 0;
  std::string predicate;
  bool forward = true;
};

/// \brief getRelations(Sub, Obj): all edges of `g` connecting a subject
/// candidate with an object candidate, in either direction. Charges
/// CostKind::kEdgeTraverse per adjacency entry scanned.
std::vector<RelationPair> FindRelationPairs(
    const graph::Graph& g, const std::vector<graph::VertexId>& subjects,
    const std::vector<graph::VertexId>& objects, SimClock* clock = nullptr);

}  // namespace svqa::exec

#endif  // SVQA_EXEC_RELATION_PAIRS_H_
