#ifndef SVQA_EXEC_RELATION_PAIRS_H_
#define SVQA_EXEC_RELATION_PAIRS_H_

#include <span>
#include <string>
#include <vector>

#include "graph/frozen_graph.h"
#include "graph/graph.h"
#include "util/sim_clock.h"

namespace svqa::exec {

/// \brief One (Sub - E_so - Obj) relation pair (Algorithm 3 line 26).
/// `forward` is true when the merged-graph edge runs subject -> object.
/// `label` is the interned edge-label id of `predicate` (the id-space
/// handle the frozen execution path filters on); kInvalidLabel for pairs
/// built without access to the interning table.
struct RelationPair {
  graph::VertexId subject = 0;
  graph::VertexId object = 0;
  std::string predicate;
  bool forward = true;
  graph::LabelId label = graph::kInvalidLabel;
};

/// \brief getRelations(Sub, Obj): all edges of `g` connecting a subject
/// candidate with an object candidate, in either direction. Charges
/// CostKind::kEdgeTraverse per adjacency entry scanned.
std::vector<RelationPair> FindRelationPairs(
    const graph::Graph& g, std::span<const graph::VertexId> subjects,
    std::span<const graph::VertexId> objects, SimClock* clock = nullptr);

/// \brief Frozen-path getRelations: identical pairs, order, and charges
/// as the mutable overload, but scanning the snapshot's contiguous CSR
/// arrays and binary-searching the probe side instead of materializing a
/// hash set.
///
/// Precondition: `subjects` and `objects` are ascending (matchVertex
/// results and executor bindings are sorted + deduplicated); only the
/// probed (larger) side's order is load-bearing.
std::vector<RelationPair> FindRelationPairs(
    const graph::FrozenGraph& g, std::span<const graph::VertexId> subjects,
    std::span<const graph::VertexId> objects, SimClock* clock = nullptr);

}  // namespace svqa::exec

#endif  // SVQA_EXEC_RELATION_PAIRS_H_
