#include "exec/explain.h"

#include <sstream>
#include <string_view>

#include "util/json_util.h"

namespace svqa::exec {

namespace {

using obs::FormatMicros;
using obs::SpanRecord;

double Dur(const SpanRecord& s) { return s.end_micros - s.start_micros; }

}  // namespace

Result<QueryCostReport> BuildQueryCostReport(const query::QueryGraph& gq,
                                             const obs::Tracer& tracer,
                                             const Diagnostics& diagnostics,
                                             const CacheCounters& cache) {
  SVQA_ASSIGN_OR_RETURN(const std::vector<int> order, gq.TopologicalOrder());
  QueryCostReport report;
  report.query_id = tracer.query_id();
  report.question = gq.question();
  report.diagnostics = diagnostics;
  report.cache = cache;
  report.quadruples.reserve(order.size());
  // Row per vertex, topological (execution) order; rows[pos] is the
  // pos-th vertex every attempt executes.
  for (int v : order) {
    QuadrupleCost row;
    row.vertex = v;
    row.quadruple = gq.vertices()[v].ToString();
    report.quadruples.push_back(std::move(row));
  }

  const std::vector<SpanRecord>& spans = tracer.spans();
  // Direct-children index; ids are 1-based, parents precede children.
  std::vector<std::vector<uint32_t>> children(spans.size() + 1);
  for (const SpanRecord& s : spans) children[s.parent].push_back(s.id);

  for (uint32_t root_id : children[0]) {
    const SpanRecord& root = spans[root_id - 1];
    const std::string_view name = root.name;
    if (name == "core.parse" || name == "serve.parse") {
      report.parse_micros += Dur(root);
      continue;
    }
    if (name != "exec.attempt" && name != "exec.backoff") continue;
    QueryCostReport::Segment seg;
    seg.is_backoff = name == "exec.backoff";
    seg.start_micros = root.start_micros;
    seg.end_micros = root.end_micros;
    if (!seg.is_backoff) {
      std::size_t pos = 0;
      for (uint32_t vid : children[root_id]) {
        const SpanRecord& vspan = spans[vid - 1];
        if (std::string_view(vspan.name) != "exec.vertex") continue;
        if (pos >= report.quadruples.size()) {
          return Status::InvalidArgument(
              "trace has more exec.vertex spans per attempt than the query "
              "graph has vertices (trace from a different query?)");
        }
        QuadrupleCost& row = report.quadruples[pos++];
        row.executions += 1;
        row.total_micros += Dur(vspan);
        seg.vertex_bounds.push_back(vspan.start_micros);
        seg.vertex_bounds.push_back(vspan.end_micros);
        double child_sum = 0;
        bool scanned_pairs = false;
        bool bound = false;
        for (uint32_t cid : children[vid]) {
          const SpanRecord& c = spans[cid - 1];
          const std::string_view cname = c.name;
          child_sum += Dur(c);
          if (cname == "exec.match") {
            row.match_micros += Dur(c);
          } else if (cname == "exec.relation_pairs") {
            row.relation_pairs_micros += Dur(c);
            scanned_pairs = true;
          } else if (cname == "exec.constraints") {
            row.constraints_micros += Dur(c);
          } else if (cname == "exec.bind") {
            row.bind_micros += Dur(c);
            bound = true;
          }
        }
        row.filter_micros += Dur(vspan) - child_sum;
        // Cache-served == reached the binding stage without a
        // relation-pair scan (a vertex that *failed* before scanning is
        // not "cached", it is unfinished).
        if (!scanned_pairs && bound) row.cached += 1;
      }
    }
    report.segments.push_back(std::move(seg));
  }
  if (!report.segments.empty()) {
    // ONE subtraction of the two outermost clock readings — the same
    // arithmetic ExecuteResilient's charged_micros performs, hence
    // bitwise reconciliation instead of a summation estimate.
    report.exec_micros = report.segments.back().end_micros -
                         report.segments.front().start_micros;
  }
  return report;
}

Status QueryCostReport::VerifyReconciliation(double charged_micros) const {
  if (segments.empty()) {
    if (charged_micros != 0) {
      return Status::Internal(
          "cost report has no attempt spans but " +
          FormatMicros(charged_micros) + " charged micros");
    }
    return Status::OK();
  }
  for (std::size_t i = 1; i < segments.size(); ++i) {
    if (segments[i].start_micros != segments[i - 1].end_micros) {
      return Status::Internal(
          "unattributed gap between execution segments " +
          std::to_string(i - 1) + " and " + std::to_string(i) + ": " +
          FormatMicros(segments[i - 1].end_micros) + " -> " +
          FormatMicros(segments[i].start_micros));
    }
  }
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const Segment& seg = segments[i];
    if (seg.is_backoff) continue;
    const std::vector<double>& vb = seg.vertex_bounds;
    if (vb.empty()) {
      if (seg.end_micros != seg.start_micros) {
        return Status::Internal("attempt segment " + std::to_string(i) +
                                " charged time but has no vertex spans");
      }
      continue;
    }
    if (vb.front() != seg.start_micros || vb.back() != seg.end_micros) {
      return Status::Internal(
          "vertex spans do not tile attempt segment " + std::to_string(i) +
          ": [" + FormatMicros(vb.front()) + ", " + FormatMicros(vb.back()) +
          "] vs [" + FormatMicros(seg.start_micros) + ", " +
          FormatMicros(seg.end_micros) + "]");
    }
    for (std::size_t k = 2; k + 1 < vb.size(); k += 2) {
      if (vb[k] != vb[k - 1]) {
        return Status::Internal(
            "unattributed gap between vertex spans in attempt segment " +
            std::to_string(i) + ": " + FormatMicros(vb[k - 1]) + " -> " +
            FormatMicros(vb[k]));
      }
    }
  }
  if (exec_micros != charged_micros) {
    return Status::Internal("report exec micros " + FormatMicros(exec_micros) +
                            " != charged micros " +
                            FormatMicros(charged_micros));
  }
  return Status::OK();
}

std::string QueryCostReport::ToText() const {
  std::ostringstream out;
  out << "query cost report query=" << query_id << "\n"
      << "question: " << question << "\n"
      << "rung=" << DegradationRungName(diagnostics.rung) << " primary="
      << (diagnostics.primary.ok() ? "OK" : diagnostics.primary.ToString())
      << " attempts=" << diagnostics.attempts << "\n"
      << "parse=" << FormatMicros(parse_micros)
      << " queue_wait=" << FormatMicros(diagnostics.queue_wait_micros)
      << " backoff=" << FormatMicros(diagnostics.backoff_micros)
      << " exec=" << FormatMicros(exec_micros) << "\n";
  if (cache.present) {
    out << "cache: scope " << cache.scope_hits << " hit / "
        << cache.scope_misses << " miss, path " << cache.path_hits
        << " hit / " << cache.path_misses << " miss\n";
  }
  for (const QuadrupleCost& q : quadruples) {
    out << "vertex " << q.vertex << " " << q.quadruple << "\n"
        << "  runs=" << q.executions << " cached=" << q.cached
        << " total=" << FormatMicros(q.total_micros)
        << " match=" << FormatMicros(q.match_micros)
        << " pairs=" << FormatMicros(q.relation_pairs_micros)
        << " filter=" << FormatMicros(q.filter_micros)
        << " constraints=" << FormatMicros(q.constraints_micros)
        << " bind=" << FormatMicros(q.bind_micros) << "\n";
  }
  return out.str();
}

std::string QueryCostReport::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"query_id\": " << query_id << ",\n  \"question\": \""
      << util::JsonEscaped(question) << "\",\n  \"rung\": \""
      << DegradationRungName(diagnostics.rung) << "\",\n  \"primary\": \""
      << util::JsonEscaped(diagnostics.primary.ok()
                               ? "OK"
                               : diagnostics.primary.ToString())
      << "\",\n  \"attempts\": " << diagnostics.attempts
      << ",\n  \"parse_micros\": " << FormatMicros(parse_micros)
      << ",\n  \"queue_wait_micros\": "
      << FormatMicros(diagnostics.queue_wait_micros)
      << ",\n  \"backoff_micros\": "
      << FormatMicros(diagnostics.backoff_micros)
      << ",\n  \"exec_micros\": " << FormatMicros(exec_micros)
      << ",\n  \"cache\": ";
  if (cache.present) {
    out << "{\"scope_hits\": " << cache.scope_hits
        << ", \"scope_misses\": " << cache.scope_misses
        << ", \"path_hits\": " << cache.path_hits
        << ", \"path_misses\": " << cache.path_misses << "}";
  } else {
    out << "null";
  }
  out << ",\n  \"quadruples\": [";
  for (std::size_t i = 0; i < quadruples.size(); ++i) {
    const QuadrupleCost& q = quadruples[i];
    out << (i == 0 ? "" : ",") << "\n    {\"vertex\": " << q.vertex
        << ", \"quadruple\": \"" << util::JsonEscaped(q.quadruple)
        << "\", \"runs\": " << q.executions << ", \"cached\": " << q.cached
        << ", \"total_micros\": " << FormatMicros(q.total_micros)
        << ", \"match_micros\": " << FormatMicros(q.match_micros)
        << ", \"relation_pairs_micros\": "
        << FormatMicros(q.relation_pairs_micros)
        << ", \"filter_micros\": " << FormatMicros(q.filter_micros)
        << ", \"constraints_micros\": " << FormatMicros(q.constraints_micros)
        << ", \"bind_micros\": " << FormatMicros(q.bind_micros) << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace svqa::exec
