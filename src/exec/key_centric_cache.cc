#include "exec/key_centric_cache.h"

namespace svqa::exec {

const char* CachePolicyName(CachePolicy policy) {
  return policy == CachePolicy::kLfu ? "LFU" : "LRU";
}

KeyCentricCache::KeyCentricCache(KeyCentricCacheOptions options)
    : options_(options),
      scope_(options.capacity),
      path_(options.capacity) {}

std::optional<std::vector<graph::VertexId>> KeyCentricCache::GetScope(
    const std::string& key, SimClock* clock) {
  if (!options_.enable_scope || options_.capacity == 0) return std::nullopt;
  if (clock != nullptr) clock->Charge(CostKind::kCacheProbe);
  return options_.policy == CachePolicy::kLfu ? scope_.lfu.Get(key)
                                              : scope_.lru.Get(key);
}

void KeyCentricCache::PutScope(const std::string& key,
                               std::vector<graph::VertexId> value) {
  if (!options_.enable_scope || options_.capacity == 0) return;
  if (options_.policy == CachePolicy::kLfu) {
    scope_.lfu.Put(key, std::move(value));
  } else {
    scope_.lru.Put(key, std::move(value));
  }
}

std::optional<std::vector<RelationPair>> KeyCentricCache::GetPath(
    const std::string& key, SimClock* clock) {
  if (!options_.enable_path || options_.capacity == 0) return std::nullopt;
  if (clock != nullptr) clock->Charge(CostKind::kCacheProbe);
  return options_.policy == CachePolicy::kLfu ? path_.lfu.Get(key)
                                              : path_.lru.Get(key);
}

void KeyCentricCache::PutPath(const std::string& key,
                              std::vector<RelationPair> value) {
  if (!options_.enable_path || options_.capacity == 0) return;
  if (options_.policy == CachePolicy::kLfu) {
    path_.lfu.Put(key, std::move(value));
  } else {
    path_.lru.Put(key, std::move(value));
  }
}

std::optional<std::vector<graph::VertexId>> KeyCentricCache::GetScope(
    const std::string& key, const ExecContext& ctx) {
  if (!ctx.ProbeFault(FaultSite::kCacheOp, key).ok()) {
    // Degrade to a miss: the probe still cost a round-trip, but the
    // caller recomputes and the query survives.
    if (ctx.clock != nullptr) ctx.clock->Charge(CostKind::kCacheProbe);
    return std::nullopt;
  }
  return GetScope(key, ctx.clock);
}

void KeyCentricCache::PutScope(const std::string& key,
                               std::vector<graph::VertexId> value,
                               const ExecContext& ctx) {
  if (!ctx.ProbeFault(FaultSite::kCacheOp, key).ok()) return;  // write dropped
  PutScope(key, std::move(value));
}

std::optional<std::vector<RelationPair>> KeyCentricCache::GetPath(
    const std::string& key, const ExecContext& ctx) {
  if (!ctx.ProbeFault(FaultSite::kCacheOp, key).ok()) {
    if (ctx.clock != nullptr) ctx.clock->Charge(CostKind::kCacheProbe);
    return std::nullopt;
  }
  return GetPath(key, ctx.clock);
}

void KeyCentricCache::PutPath(const std::string& key,
                              std::vector<RelationPair> value,
                              const ExecContext& ctx) {
  if (!ctx.ProbeFault(FaultSite::kCacheOp, key).ok()) return;  // write dropped
  PutPath(key, std::move(value));
}

cache::CacheStats KeyCentricCache::ScopeStats() const {
  return options_.policy == CachePolicy::kLfu ? scope_.lfu.stats()
                                              : scope_.lru.stats();
}

cache::CacheStats KeyCentricCache::PathStats() const {
  return options_.policy == CachePolicy::kLfu ? path_.lfu.stats()
                                              : path_.lru.stats();
}

cache::CacheStats KeyCentricCache::TotalStats() const {
  cache::CacheStats total = ScopeStats();
  total.Merge(PathStats());
  return total;
}

void KeyCentricCache::Clear() {
  scope_.lfu.Clear();
  scope_.lru.Clear();
  path_.lfu.Clear();
  path_.lru.Clear();
}

}  // namespace svqa::exec
