#include "exec/key_centric_cache.h"

#include <utility>

#include "obs/observability.h"

namespace svqa::exec {

namespace {

// Hit/miss accounting for the ctx-aware entry points: one increment on
// the pre-registered handle, no lock, no-op without a metrics scope.
void CountLookup(const ExecContext& ctx, bool scope_cache, bool hit) {
  const obs::StackMetrics* m = obs::MetricsOf(ctx.obs);
  if (m == nullptr) return;
  if (scope_cache) {
    (hit ? m->cache_scope_hits : m->cache_scope_misses)->Incr();
  } else {
    (hit ? m->cache_path_hits : m->cache_path_misses)->Incr();
  }
}

}  // namespace

const char* CachePolicyName(CachePolicy policy) {
  return policy == CachePolicy::kLfu ? "LFU" : "LRU";
}

KeyCentricCache::KeyCentricCache(KeyCentricCacheOptions options)
    : options_(options),
      scope_(options.capacity),
      path_(options.capacity) {}

std::optional<ScopeValue> KeyCentricCache::GetScopeShared(
    const std::string& key, SimClock* clock) {
  if (!options_.enable_scope || options_.capacity == 0) return std::nullopt;
  if (clock != nullptr) clock->Charge(CostKind::kCacheProbe);
  // Interning on Get too: a miss must reach the policy store so its
  // hit/miss accounting matches a string-keyed store exactly.
  const graph::SymbolId id = keys_.Intern(key);
  return options_.policy == CachePolicy::kLfu ? scope_.lfu.Get(id)
                                              : scope_.lru.Get(id);
}

void KeyCentricCache::PutScopeShared(const std::string& key,
                                     ScopeValue value) {
  if (!options_.enable_scope || options_.capacity == 0) return;
  const graph::SymbolId id = keys_.Intern(key);
  if (options_.policy == CachePolicy::kLfu) {
    scope_.lfu.Put(id, std::move(value));
  } else {
    scope_.lru.Put(id, std::move(value));
  }
}

std::optional<PathValue> KeyCentricCache::GetPathShared(const std::string& key,
                                                        SimClock* clock) {
  if (!options_.enable_path || options_.capacity == 0) return std::nullopt;
  if (clock != nullptr) clock->Charge(CostKind::kCacheProbe);
  const graph::SymbolId id = keys_.Intern(key);
  return options_.policy == CachePolicy::kLfu ? path_.lfu.Get(id)
                                              : path_.lru.Get(id);
}

void KeyCentricCache::PutPathShared(const std::string& key, PathValue value) {
  if (!options_.enable_path || options_.capacity == 0) return;
  const graph::SymbolId id = keys_.Intern(key);
  if (options_.policy == CachePolicy::kLfu) {
    path_.lfu.Put(id, std::move(value));
  } else {
    path_.lru.Put(id, std::move(value));
  }
}

std::optional<std::vector<graph::VertexId>> KeyCentricCache::GetScope(
    const std::string& key, SimClock* clock) {
  auto hit = GetScopeShared(key, clock);
  if (!hit.has_value()) return std::nullopt;
  return **hit;  // copy out: the caller owns a mutable vector
}

void KeyCentricCache::PutScope(const std::string& key,
                               std::vector<graph::VertexId> value) {
  PutScopeShared(
      key, std::make_shared<const std::vector<graph::VertexId>>(
               std::move(value)));
}

std::optional<std::vector<RelationPair>> KeyCentricCache::GetPath(
    const std::string& key, SimClock* clock) {
  auto hit = GetPathShared(key, clock);
  if (!hit.has_value()) return std::nullopt;
  return **hit;
}

void KeyCentricCache::PutPath(const std::string& key,
                              std::vector<RelationPair> value) {
  PutPathShared(key, std::make_shared<const std::vector<RelationPair>>(
                         std::move(value)));
}

std::optional<ScopeValue> KeyCentricCache::GetScopeShared(
    const std::string& key, const ExecContext& ctx) {
  if (!ctx.ProbeFault(FaultSite::kCacheOp, key).ok()) {
    // Degrade to a miss: the probe still cost a round-trip, but the
    // caller recomputes and the query survives.
    obs::CountFault(ctx.obs, FaultSite::kCacheOp);
    if (ctx.clock != nullptr) ctx.clock->Charge(CostKind::kCacheProbe);
    CountLookup(ctx, /*scope_cache=*/true, /*hit=*/false);
    return std::nullopt;
  }
  auto hit = GetScopeShared(key, ctx.clock);
  CountLookup(ctx, /*scope_cache=*/true, hit.has_value());
  return hit;
}

void KeyCentricCache::PutScopeShared(const std::string& key, ScopeValue value,
                                     const ExecContext& ctx) {
  if (!ctx.ProbeFault(FaultSite::kCacheOp, key).ok()) {  // write dropped
    obs::CountFault(ctx.obs, FaultSite::kCacheOp);
    return;
  }
  PutScopeShared(key, std::move(value));
}

std::optional<PathValue> KeyCentricCache::GetPathShared(
    const std::string& key, const ExecContext& ctx) {
  if (!ctx.ProbeFault(FaultSite::kCacheOp, key).ok()) {
    obs::CountFault(ctx.obs, FaultSite::kCacheOp);
    if (ctx.clock != nullptr) ctx.clock->Charge(CostKind::kCacheProbe);
    CountLookup(ctx, /*scope_cache=*/false, /*hit=*/false);
    return std::nullopt;
  }
  auto hit = GetPathShared(key, ctx.clock);
  CountLookup(ctx, /*scope_cache=*/false, hit.has_value());
  return hit;
}

void KeyCentricCache::PutPathShared(const std::string& key, PathValue value,
                                    const ExecContext& ctx) {
  if (!ctx.ProbeFault(FaultSite::kCacheOp, key).ok()) {  // write dropped
    obs::CountFault(ctx.obs, FaultSite::kCacheOp);
    return;
  }
  PutPathShared(key, std::move(value));
}

std::optional<std::vector<graph::VertexId>> KeyCentricCache::GetScope(
    const std::string& key, const ExecContext& ctx) {
  auto hit = GetScopeShared(key, ctx);
  if (!hit.has_value()) return std::nullopt;
  return **hit;
}

void KeyCentricCache::PutScope(const std::string& key,
                               std::vector<graph::VertexId> value,
                               const ExecContext& ctx) {
  PutScopeShared(key,
                 std::make_shared<const std::vector<graph::VertexId>>(
                     std::move(value)),
                 ctx);
}

std::optional<std::vector<RelationPair>> KeyCentricCache::GetPath(
    const std::string& key, const ExecContext& ctx) {
  auto hit = GetPathShared(key, ctx);
  if (!hit.has_value()) return std::nullopt;
  return **hit;
}

void KeyCentricCache::PutPath(const std::string& key,
                              std::vector<RelationPair> value,
                              const ExecContext& ctx) {
  PutPathShared(key, std::make_shared<const std::vector<RelationPair>>(
                         std::move(value)),
                ctx);
}

cache::CacheStats KeyCentricCache::ScopeStats() const {
  return options_.policy == CachePolicy::kLfu ? scope_.lfu.stats()
                                              : scope_.lru.stats();
}

cache::CacheStats KeyCentricCache::PathStats() const {
  return options_.policy == CachePolicy::kLfu ? path_.lfu.stats()
                                              : path_.lru.stats();
}

cache::CacheStats KeyCentricCache::TotalStats() const {
  cache::CacheStats total = ScopeStats();
  total.Merge(PathStats());
  return total;
}

void KeyCentricCache::Clear() {
  scope_.lfu.Clear();
  scope_.lru.Clear();
  path_.lfu.Clear();
  path_.lru.Clear();
}

}  // namespace svqa::exec
