#ifndef SVQA_CACHE_LRU_CACHE_H_
#define SVQA_CACHE_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <unordered_map>

#include "cache/cache_stats.h"

namespace svqa::cache {

/// \brief Least-Recently-Used cache (paper ref [47]); the comparison
/// policy for Figure 11. Capacity 0 disables caching.
template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Looks up `key`; on hit moves it to the front and returns a pointer
  /// valid until the next mutation. nullptr on miss.
  const V* Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->value;
  }

  /// Inserts or overwrites `key`; evicts the LRU entry at capacity.
  void Put(const K& key, V value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->value = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (index_.size() >= capacity_) {
      index_.erase(order_.back().key);
      order_.pop_back();
      ++stats_.evictions;
    }
    order_.push_front(Node{key, std::move(value)});
    index_.emplace(key, order_.begin());
    ++stats_.inserts;
  }

  bool Contains(const K& key) const { return index_.count(key) > 0; }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  void Clear() {
    index_.clear();
    order_.clear();
  }

 private:
  struct Node {
    K key;
    V value;
  };

  std::size_t capacity_;
  std::list<Node> order_;  // front = most recently used
  std::unordered_map<K, typename std::list<Node>::iterator> index_;
  CacheStats stats_;
};

}  // namespace svqa::cache

#endif  // SVQA_CACHE_LRU_CACHE_H_
