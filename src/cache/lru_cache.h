#ifndef SVQA_CACHE_LRU_CACHE_H_
#define SVQA_CACHE_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "cache/cache_stats.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace svqa::cache {

/// \brief Least-Recently-Used cache (paper ref [47]); the comparison
/// policy for Figure 11. Capacity 0 disables caching.
///
/// Thread-safe with the default `MutexT = Mutex`: every operation takes
/// the internal lock and `Get` copies the hit out, so concurrent
/// Get/Put/Clear from any number of threads is race-free. Instantiate
/// with `NullMutex` for a lock-free, thread-*compatible* variant when the
/// cache is provably confined to one thread (see BM_*CacheProbe in
/// bench_micro for the overhead this buys back).
template <typename K, typename V, typename MutexT = Mutex>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Looks up `key`; on hit moves it to the front and returns a copy of
  /// the value. nullopt on miss.
  std::optional<V> Get(const K& key) SVQA_EXCLUDES(mu_) {
    BasicMutexLock<MutexT> lock(&mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->value;
  }

  /// Inserts or overwrites `key`; evicts the LRU entry at capacity.
  void Put(const K& key, V value) SVQA_EXCLUDES(mu_) {
    if (capacity_ == 0) return;
    BasicMutexLock<MutexT> lock(&mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->value = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (index_.size() >= capacity_) {
      index_.erase(order_.back().key);
      order_.pop_back();
      ++stats_.evictions;
    }
    order_.push_front(Node{key, std::move(value)});
    index_.emplace(key, order_.begin());
    ++stats_.inserts;
  }

  bool Contains(const K& key) const SVQA_EXCLUDES(mu_) {
    BasicMutexLock<MutexT> lock(&mu_);
    return index_.count(key) > 0;
  }

  std::size_t size() const SVQA_EXCLUDES(mu_) {
    BasicMutexLock<MutexT> lock(&mu_);
    return index_.size();
  }
  std::size_t capacity() const { return capacity_; }

  /// Returns a consistent snapshot of the counters.
  CacheStats stats() const SVQA_EXCLUDES(mu_) {
    BasicMutexLock<MutexT> lock(&mu_);
    return stats_;
  }
  void ResetStats() SVQA_EXCLUDES(mu_) {
    BasicMutexLock<MutexT> lock(&mu_);
    stats_.Reset();
  }

  void Clear() SVQA_EXCLUDES(mu_) {
    BasicMutexLock<MutexT> lock(&mu_);
    index_.clear();
    order_.clear();
  }

 private:
  struct Node {
    K key;
    V value;
  };

  const std::size_t capacity_;  // immutable after construction
  mutable MutexT mu_;
  std::list<Node> order_ SVQA_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<K, typename std::list<Node>::iterator> index_
      SVQA_GUARDED_BY(mu_);
  CacheStats stats_ SVQA_GUARDED_BY(mu_);
};

}  // namespace svqa::cache

#endif  // SVQA_CACHE_LRU_CACHE_H_
