#ifndef SVQA_CACHE_CACHE_STATS_H_
#define SVQA_CACHE_CACHE_STATS_H_

#include <cstdint>

namespace svqa::cache {

/// \brief Hit/miss/eviction counters shared by all cache policies.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t inserts = 0;

  uint64_t lookups() const { return hits + misses; }
  double HitRate() const {
    const uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
  void Reset() { *this = CacheStats{}; }
};

}  // namespace svqa::cache

#endif  // SVQA_CACHE_CACHE_STATS_H_
