#ifndef SVQA_CACHE_CACHE_STATS_H_
#define SVQA_CACHE_CACHE_STATS_H_

#include <cstdint>

namespace svqa::cache {

/// \brief Hit/miss/eviction counters shared by all cache policies.
///
/// A plain value type: the cache implementations keep their counters
/// under the cache mutex (`SVQA_GUARDED_BY`) and hand out *snapshots* by
/// value, so a `CacheStats` you hold is immutable data — thread-safe to
/// read, never shared. `Merge` combines snapshots from several stores
/// (e.g. the key-centric cache's scope + path stores).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t inserts = 0;

  uint64_t lookups() const { return hits + misses; }
  double HitRate() const {
    const uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
  void Reset() { *this = CacheStats{}; }

  /// Accumulates another snapshot into this one.
  void Merge(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    inserts += other.inserts;
  }
};

}  // namespace svqa::cache

#endif  // SVQA_CACHE_CACHE_STATS_H_
