#ifndef SVQA_CACHE_LFU_CACHE_H_
#define SVQA_CACHE_LFU_CACHE_H_

#include <cstddef>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

#include "cache/cache_stats.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace svqa::cache {

/// \brief Least-Frequently-Used cache (paper ref [39]) with O(log F)
/// operations via a frequency-bucket map; ties within a frequency evict
/// the least-recently-used entry, the standard LFU-with-LRU-tiebreak.
///
/// Capacity 0 disables caching (every Get misses, Put is a no-op), which
/// is how the "No cache" configurations of Exp-5 are expressed.
///
/// Thread-safe with the default `MutexT = Mutex`: every operation takes
/// the internal lock and `Get` copies the hit out, so concurrent
/// Get/Put/Clear from any number of threads is race-free. Instantiate
/// with `NullMutex` for a lock-free, thread-*compatible* variant when the
/// cache is provably confined to one thread (see BM_*CacheProbe in
/// bench_micro for the overhead this buys back).
template <typename K, typename V, typename MutexT = Mutex>
class LfuCache {
 public:
  explicit LfuCache(std::size_t capacity) : capacity_(capacity) {}

  /// Looks up `key`; on hit bumps its frequency and returns a copy of
  /// the value. nullopt on miss.
  std::optional<V> Get(const K& key) SVQA_EXCLUDES(mu_) {
    BasicMutexLock<MutexT> lock(&mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    Promote(it->second);
    return it->second.node->value;
  }

  /// Inserts or overwrites `key`. Evicts the least-frequently-used entry
  /// when at capacity.
  void Put(const K& key, V value) SVQA_EXCLUDES(mu_) {
    if (capacity_ == 0) return;
    BasicMutexLock<MutexT> lock(&mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.node->value = std::move(value);
      Promote(it->second);
      return;
    }
    if (entries_.size() >= capacity_) Evict();
    auto& bucket = buckets_[1];
    bucket.push_front(Node{key, std::move(value)});
    entries_.emplace(key, Handle{1, bucket.begin()});
    ++stats_.inserts;
  }

  bool Contains(const K& key) const SVQA_EXCLUDES(mu_) {
    BasicMutexLock<MutexT> lock(&mu_);
    return entries_.count(key) > 0;
  }

  /// Current frequency counter of a resident key (0 when absent).
  std::size_t FrequencyOf(const K& key) const SVQA_EXCLUDES(mu_) {
    BasicMutexLock<MutexT> lock(&mu_);
    auto it = entries_.find(key);
    return it == entries_.end() ? 0 : it->second.freq;
  }

  std::size_t size() const SVQA_EXCLUDES(mu_) {
    BasicMutexLock<MutexT> lock(&mu_);
    return entries_.size();
  }
  std::size_t capacity() const { return capacity_; }

  /// Returns a consistent snapshot of the counters.
  CacheStats stats() const SVQA_EXCLUDES(mu_) {
    BasicMutexLock<MutexT> lock(&mu_);
    return stats_;
  }
  void ResetStats() SVQA_EXCLUDES(mu_) {
    BasicMutexLock<MutexT> lock(&mu_);
    stats_.Reset();
  }

  void Clear() SVQA_EXCLUDES(mu_) {
    BasicMutexLock<MutexT> lock(&mu_);
    entries_.clear();
    buckets_.clear();
  }

 private:
  struct Node {
    K key;
    V value;
  };
  using Bucket = std::list<Node>;

  struct Handle {
    std::size_t freq;
    typename Bucket::iterator node;
  };

  void Promote(Handle& h) SVQA_REQUIRES(mu_) {
    Bucket& from = buckets_[h.freq];
    Bucket& to = buckets_[h.freq + 1];
    to.splice(to.begin(), from, h.node);
    if (from.empty()) buckets_.erase(h.freq);
    ++h.freq;
  }

  void Evict() SVQA_REQUIRES(mu_) {
    auto bucket_it = buckets_.begin();  // lowest frequency
    Bucket& bucket = bucket_it->second;
    // Back of the list is least-recently used within the frequency.
    entries_.erase(bucket.back().key);
    bucket.pop_back();
    if (bucket.empty()) buckets_.erase(bucket_it);
    ++stats_.evictions;
  }

  const std::size_t capacity_;  // immutable after construction
  mutable MutexT mu_;
  std::unordered_map<K, Handle> entries_ SVQA_GUARDED_BY(mu_);
  std::map<std::size_t, Bucket> buckets_
      SVQA_GUARDED_BY(mu_);  // freq -> MRU-ordered nodes
  CacheStats stats_ SVQA_GUARDED_BY(mu_);
};

}  // namespace svqa::cache

#endif  // SVQA_CACHE_LFU_CACHE_H_
