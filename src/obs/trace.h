#ifndef SVQA_OBS_TRACE_H_
#define SVQA_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/sim_clock.h"

namespace svqa {
namespace obs {

struct StackMetrics;    // observability.h
class FlightRecorder;   // flight_recorder.h

/// Fixed-precision micros rendering shared by every byte-stable obs
/// report (traces, trace analyses, cost reports, SLO dashboards): %.3f
/// of a deterministically accumulated double is itself deterministic.
/// Normalizes -0.0 so a zero-length SpanAt never renders "-0.000".
std::string FormatMicros(double v);

/// \brief One closed (or still-open) span in a query's trace.
///
/// Timestamps are *virtual* micros read from the query's `SimClock` —
/// never a wall clock — so a span tree is a pure function of the work
/// the query charged, identical across hosts, runs, and worker counts
/// (the svqa_lint virtual-time rule stays clean by construction).
/// `name` must be a string literal (spans are recorded on the hot path;
/// no ownership, no copies).
struct SpanRecord {
  uint32_t id = 0;      // 1-based, allocation order
  uint32_t parent = 0;  // 0 = root
  const char* name = "";
  double start_micros = 0;
  double end_micros = 0;
};

/// \brief Per-query span collector.
///
/// One tracer per query, owned by the driving call and NOT thread-safe
/// — the executor runs a query on one worker, and parallel batch
/// executors give each query its own tracer, mirroring the SimClock
/// ownership rule. Parentage comes from an open-span stack, so RAII
/// `Span` nesting produces the tree directly.
class Tracer {
 public:
  explicit Tracer(uint64_t query_id = 0) : query_id_(query_id) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  uint32_t BeginSpan(const char* name, const SimClock& clock);
  void EndSpan(uint32_t id, const SimClock& clock);

  /// Zero-duration marker (shed, fault verdict, publish seen).
  void Event(const char* name, const SimClock& clock);

  /// Records a span with explicit virtual timestamps, closed
  /// immediately (parented under the innermost open span like any
  /// other). Used by the serving layer for intervals that precede the
  /// request's clock origin — e.g. queue wait, recorded over
  /// [-wait, 0] so the execution subtree still starts at virtual t=0
  /// and stays byte-identical across worker counts.
  void SpanAt(const char* name, double start_micros, double end_micros);

  uint64_t query_id() const { return query_id_; }
  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Chrome `trace_event` JSON (complete "X" events; ts/dur in virtual
  /// micros, pid 0, tid = query id). Load via chrome://tracing or
  /// Perfetto. Byte-stable: fixed field order, %.3f timestamps.
  std::string ToJson() const;

  /// Indented one-line-per-span text form — the object the determinism
  /// contract is asserted over (names, parentage, virtual
  /// start/duration), byte-identical across runs and worker counts.
  std::string TreeString() const;

 private:
  uint64_t query_id_;
  std::vector<SpanRecord> spans_;
  std::vector<uint32_t> open_;  // stack of open span ids
};

/// \brief Everything a component needs to emit telemetry for the query
/// it is currently running: the (optional) tracer, the pre-registered
/// metric handles, and the flight-recorder lane of the executing
/// worker.
///
/// Carried as a `const Scope*` on `util::ExecContext`; a null pointer
/// (or null fields) makes every hook a no-op — that is the whole
/// disabled-mode story, one branch per site.
struct Scope {
  Tracer* tracer = nullptr;
  const StackMetrics* metrics = nullptr;
  FlightRecorder* flight = nullptr;
  uint32_t flight_lane = 0;
  uint64_t query_id = 0;
};

/// Null-safe accessor: the metric handles behind a scope, or nullptr.
inline const StackMetrics* MetricsOf(const Scope* scope) {
  return scope != nullptr ? scope->metrics : nullptr;
}

/// \brief RAII span over a scope + clock pair.
///
/// No-op when the scope or its tracer is null; otherwise opens on
/// construction and closes on destruction, recording into the tracer
/// and (when wired) the flight recorder. Never charges the clock: the
/// trace observes virtual time, it must not perturb it.
class Span {
 public:
  Span(const Scope* scope, const SimClock* clock, const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const Scope* scope_ = nullptr;
  const SimClock* clock_ = nullptr;
  const char* name_ = "";
  uint32_t id_ = 0;
  double start_micros_ = 0;
};

}  // namespace obs
}  // namespace svqa

#endif  // SVQA_OBS_TRACE_H_
