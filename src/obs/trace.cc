#include "obs/trace.h"

#include <cstdio>
#include <sstream>

#include "obs/flight_recorder.h"
#include "util/json_util.h"

namespace svqa {
namespace obs {

std::string FormatMicros(double v) {
  if (v == 0) v = 0;  // never render "-0.000" (a zero-length SpanAt)
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

uint32_t Tracer::BeginSpan(const char* name, const SimClock& clock) {
  SpanRecord rec;
  rec.id = static_cast<uint32_t>(spans_.size()) + 1;
  rec.parent = open_.empty() ? 0 : open_.back();
  rec.name = name;
  rec.start_micros = clock.ElapsedMicros();
  rec.end_micros = rec.start_micros;
  spans_.push_back(rec);
  open_.push_back(rec.id);
  return rec.id;
}

void Tracer::EndSpan(uint32_t id, const SimClock& clock) {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].end_micros = clock.ElapsedMicros();
  // Well-nested RAII closes the innermost open span; tolerate (and
  // unwind past) out-of-order closes rather than corrupting parentage.
  while (!open_.empty()) {
    uint32_t top = open_.back();
    open_.pop_back();
    if (top == id) break;
  }
}

void Tracer::Event(const char* name, const SimClock& clock) {
  uint32_t id = BeginSpan(name, clock);
  EndSpan(id, clock);
}

void Tracer::SpanAt(const char* name, double start_micros,
                    double end_micros) {
  SpanRecord rec;
  rec.id = static_cast<uint32_t>(spans_.size()) + 1;
  rec.parent = open_.empty() ? 0 : open_.back();
  rec.name = name;
  rec.start_micros = start_micros;
  rec.end_micros = end_micros;
  spans_.push_back(rec);
}

std::string Tracer::ToJson() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    if (i > 0) out << ",";
    out << "\n{\"name\": \"" << util::JsonEscaped(s.name)
        << "\", \"ph\": \"X\", \"pid\": 0"
        << ", \"tid\": " << query_id_
        << ", \"ts\": " << FormatMicros(s.start_micros)
        << ", \"dur\": " << FormatMicros(s.end_micros - s.start_micros)
        << ", \"args\": {\"id\": " << s.id << ", \"parent\": " << s.parent
        << "}}";
  }
  out << "\n]\n";
  return out.str();
}

std::string Tracer::TreeString() const {
  // Depth by chasing parents; ids are allocation-ordered so a parent
  // always precedes its children and one forward pass suffices.
  std::vector<int> depth(spans_.size(), 0);
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    uint32_t p = spans_[i].parent;
    depth[i] = p == 0 ? 0 : depth[p - 1] + 1;
  }
  std::ostringstream out;
  out << "trace query=" << query_id_ << " spans=" << spans_.size() << "\n";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const SpanRecord& s = spans_[i];
    for (int d = 0; d < depth[i]; ++d) out << "  ";
    out << s.name << " start=" << FormatMicros(s.start_micros)
        << " dur=" << FormatMicros(s.end_micros - s.start_micros) << "\n";
  }
  return out.str();
}

Span::Span(const Scope* scope, const SimClock* clock, const char* name) {
  if (scope == nullptr || clock == nullptr) return;
  if (scope->tracer == nullptr && scope->flight == nullptr) return;
  scope_ = scope;
  clock_ = clock;
  name_ = name;
  start_micros_ = clock->ElapsedMicros();
  if (scope->tracer != nullptr) {
    id_ = scope->tracer->BeginSpan(name, *clock);
  }
}

Span::~Span() {
  if (scope_ == nullptr) return;
  if (scope_->tracer != nullptr && id_ != 0) {
    scope_->tracer->EndSpan(id_, *clock_);
  }
  if (scope_->flight != nullptr) {
    FlightRecord rec;
    rec.query_id = scope_->query_id;
    rec.name = name_;
    rec.start_micros = start_micros_;
    rec.dur_micros = clock_->ElapsedMicros() - start_micros_;
    scope_->flight->Record(scope_->flight_lane, rec);
  }
}

}  // namespace obs
}  // namespace svqa
