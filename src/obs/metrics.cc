#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "util/json_util.h"
#include "util/logging.h"

namespace svqa {
namespace obs {

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  SVQA_CHECK(!bounds_.empty());
  SVQA_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

void Histogram::Record(uint64_t value) {
  std::size_t b =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[b]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b->load(std::memory_order_relaxed));
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  Entry& e = metrics_[name];
  if (e.counter == nullptr) {
    if (e.gauge != nullptr || e.histogram != nullptr) return nullptr;
    e.kind = MetricKind::kCounter;
    e.counter = std::make_unique<Counter>();
  }
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  Entry& e = metrics_[name];
  if (e.gauge == nullptr) {
    if (e.counter != nullptr || e.histogram != nullptr) return nullptr;
    e.kind = MetricKind::kGauge;
    e.gauge = std::make_unique<Gauge>();
  }
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<uint64_t> bounds) {
  MutexLock lock(&mu_);
  Entry& e = metrics_[name];
  if (e.histogram == nullptr) {
    if (e.counter != nullptr || e.gauge != nullptr) return nullptr;
    e.kind = MetricKind::kHistogram;
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return e.histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<MetricSample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) {
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.counter = e.counter->Value();
        break;
      case MetricKind::kGauge:
        s.gauge = e.gauge->Value();
        break;
      case MetricKind::kHistogram:
        s.bounds = e.histogram->bounds();
        s.buckets = e.histogram->BucketCounts();
        s.hist_count = e.histogram->Count();
        s.hist_sum = e.histogram->Sum();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;  // map iteration order == name order
}

std::string SamplesToJson(const std::vector<MetricSample>& samples) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out << ",";
    first = false;
    out << "\n  \"" << util::JsonEscaped(s.name) << "\": ";
    switch (s.kind) {
      case MetricKind::kCounter:
        out << s.counter;
        break;
      case MetricKind::kGauge:
        out << s.gauge;
        break;
      case MetricKind::kHistogram: {
        out << "{\"count\": " << s.hist_count << ", \"sum\": " << s.hist_sum
            << ", \"buckets\": [";
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (i > 0) out << ", ";
          out << "[";
          if (i < s.bounds.size()) {
            out << s.bounds[i];
          } else {
            out << "\"inf\"";
          }
          out << ", " << s.buckets[i] << "]";
        }
        out << "]}";
        break;
      }
    }
  }
  out << "\n}\n";
  return out.str();
}

std::string MetricsRegistry::ToJson() const {
  return SamplesToJson(Snapshot());
}

}  // namespace obs
}  // namespace svqa
