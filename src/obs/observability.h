#ifndef SVQA_OBS_OBSERVABILITY_H_
#define SVQA_OBS_OBSERVABILITY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/status.h"

namespace svqa {
namespace obs {

/// \brief Observability knobs, validated wherever they are embedded
/// (`SvqaOptions`, `serve::ServerOptions`).
struct ObsOptions {
  /// Master switch. Off means no registry, no tracer, no recorder: the
  /// hooks compiled into the stack see a null `Scope*` and cost one
  /// predictable branch each (the bench_micro obs section gates this).
  bool enabled = false;
  /// Trace every n-th query (by query/request id): 1 traces all, 0
  /// disables tracing while keeping metrics and the flight recorder.
  uint32_t trace_sample_n = 1;
  /// Flight-recorder ring capacity per lane (one lane per worker plus
  /// one for server lifecycle events).
  uint32_t ring_capacity = 256;

  SVQA_NODISCARD Status Validate() const;
};

/// Number of serve priority classes mirrored by the pre-registered
/// admission metrics (kept in sync with `serve::kNumPriorityClasses` by
/// a static_assert at the serve wiring site — obs depends only on
/// util, so it cannot include the serve header).
inline constexpr int kNumPriorityClasses = 3;

/// Ditto for `storage::RecoveryRung` (5 rungs, cold-start .. empty).
inline constexpr int kNumRecoveryRungs = 5;

/// \brief Pre-registered metric handles for every layer of the stack,
/// named `svqa.<layer>.<name>` (DESIGN.md, "Observability").
///
/// Registered once against a `MetricsRegistry` at construction; all
/// pointers are non-null and stable, so hot-path call sites increment
/// through them with no name lookup and no lock.
struct StackMetrics {
  explicit StackMetrics(MetricsRegistry* registry);

  // -- util: fault injection ------------------------------------------------
  /// Injected faults per instrumented site (svqa.util.fault.<site>).
  Counter* fault_injected[kNumFaultSites] = {};

  // -- exec: resilience + caches -------------------------------------------
  Counter* exec_attempts = nullptr;       // svqa.exec.attempts
  Counter* exec_retries = nullptr;        // svqa.exec.retries
  Counter* exec_backoff_micros = nullptr; // svqa.exec.backoff_micros
  Counter* cache_scope_hits = nullptr;    // svqa.exec.cache.scope_hits
  Counter* cache_scope_misses = nullptr;  // svqa.exec.cache.scope_misses
  Counter* cache_path_hits = nullptr;     // svqa.exec.cache.path_hits
  Counter* cache_path_misses = nullptr;   // svqa.exec.cache.path_misses
  Gauge* cache_scope_evictions = nullptr; // svqa.exec.cache.scope_evictions
  Gauge* cache_path_evictions = nullptr;  // svqa.exec.cache.path_evictions

  // -- serve: admission, scheduling, publish lifecycle ---------------------
  /// Sheds per priority class (svqa.serve.sheds.<class>).
  Counter* serve_sheds[kNumPriorityClasses] = {};
  /// Queue-wait micros per class (svqa.serve.queue_wait_micros.<class>).
  Histogram* serve_queue_wait_micros[kNumPriorityClasses] = {};
  Counter* serve_requests = nullptr;   // svqa.serve.requests
  Counter* serve_publishes = nullptr;  // svqa.serve.publishes
  Gauge* serve_recovery_rung = nullptr;  // svqa.serve.recovery_rung
  Counter* wal_appends = nullptr;        // svqa.serve.wal.appends
  Counter* wal_append_failures = nullptr;  // svqa.serve.wal.append_failures
  Counter* snapshot_writes = nullptr;      // svqa.serve.snapshot.writes

  // -- storage: crash recovery ---------------------------------------------
  /// Recoveries resolved at each rung (svqa.storage.recovery.<rung>).
  Counter* recovery_rungs[kNumRecoveryRungs] = {};
  Counter* wal_replayed = nullptr;     // svqa.storage.wal.replayed
  Counter* wal_repaired = nullptr;     // svqa.storage.wal.repaired
  Counter* wal_quarantined = nullptr;  // svqa.storage.wal.quarantined
};

/// Counts an injected fault at `site` (null-safe; no-op without a
/// metrics-bearing scope). Call where a `ProbeFault` verdict comes back
/// non-OK — the injector itself lives in util and cannot see obs.
inline void CountFault(const Scope* scope, FaultSite site) {
  if (const StackMetrics* m = MetricsOf(scope)) {
    m->fault_injected[static_cast<int>(site)]->Incr();
  }
}

/// \brief Owner of one observability domain: the registry with its
/// pre-registered stack metrics, and the flight recorder.
///
/// One instance per server/engine; per-query `Tracer`s are created by
/// the dispatch site (they are single-threaded, like SimClocks) and
/// bundled with the shared pieces into a `Scope` via `MakeScope`.
class Observability {
 public:
  /// `num_lanes` sizes the flight recorder — one lane per worker plus
  /// one for server lifecycle events is the serve convention.
  explicit Observability(const ObsOptions& options, uint32_t num_lanes = 1);
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  bool enabled() const { return options_.enabled; }
  const ObsOptions& options() const { return options_; }

  MetricsRegistry* registry() { return &registry_; }
  const StackMetrics* stack() const { return stack_.get(); }
  FlightRecorder* flight() { return flight_.get(); }

  /// Whether the query with this id should carry a tracer.
  bool ShouldTrace(uint64_t id) const {
    return options_.enabled && options_.trace_sample_n != 0 &&
           id % options_.trace_sample_n == 0;
  }

  /// Bundles the shared handles with a per-query tracer (may be null:
  /// metrics/flight-only scope) and the executing worker's lane.
  Scope MakeScope(Tracer* tracer, uint32_t lane, uint64_t query_id);

  std::string MetricsJson() const { return registry_.ToJson(); }
  std::string DumpFlightRecorder() const { return flight_->Dump(); }

 private:
  ObsOptions options_;
  MetricsRegistry registry_;
  std::unique_ptr<StackMetrics> stack_;
  std::unique_ptr<FlightRecorder> flight_;
};

}  // namespace obs
}  // namespace svqa

#endif  // SVQA_OBS_OBSERVABILITY_H_
