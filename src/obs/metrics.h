#ifndef SVQA_OBS_METRICS_H_
#define SVQA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace svqa {
namespace obs {

/// \brief Monotone event counter with a lock-free, sharded hot path.
///
/// `Incr` lands on a per-thread shard (cache-line padded so concurrent
/// writers never false-share); `Value` sums the shards. All arithmetic
/// is integer, so the total is independent of thread interleaving — a
/// registry snapshot is deterministic for a deterministic workload no
/// matter how the increments were scheduled.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Incr(uint64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr int kShards = 8;

  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };

  // Threads round-robin onto shards at first use; the mapping only
  // spreads contention, it never affects the sum.
  static uint32_t ShardIndex() {
    static std::atomic<uint32_t> next{0};
    thread_local const uint32_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return slot;
  }

  Shard shards_[kShards];
};

/// \brief Last-writer-wins signed level (queue depth, recovery rung).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Fixed-bucket histogram over non-negative integer samples
/// (virtual micros, queue depths).
///
/// Bucket bounds are fixed at registration; `Record` is a lock-free
/// atomic increment on the matching bucket plus integer sum/count
/// accumulators, so — like `Counter` — the observable state is a pure
/// function of the recorded multiset, not of thread timing.
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds, strictly increasing; one
  /// implicit overflow bucket catches everything above the last bound.
  explicit Histogram(std::vector<uint64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  std::vector<uint64_t> BucketCounts() const;  // size bounds()+1
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<uint64_t> bounds_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

enum class MetricKind : int { kCounter = 0, kGauge, kHistogram };

/// One metric's value at snapshot time. Only the fields for `kind` are
/// meaningful.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;
  int64_t gauge = 0;
  std::vector<uint64_t> bounds;   // histogram upper bounds
  std::vector<uint64_t> buckets;  // per-bucket counts, size bounds+1
  uint64_t hist_count = 0;
  uint64_t hist_sum = 0;
};

/// \brief Name -> metric map with register-once semantics.
///
/// Registration (`GetCounter` et al.) takes a mutex but happens once
/// per metric family, at wiring time; the returned handles are stable
/// for the registry's lifetime and all hot-path mutation goes through
/// them lock-free. Names follow `svqa.<layer>.<name>` (DESIGN.md,
/// "Observability").
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use. Re-registering
  /// a name with a different kind returns nullptr (caller bug).
  Counter* GetCounter(const std::string& name) SVQA_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) SVQA_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<uint64_t> bounds) SVQA_EXCLUDES(mu_);

  /// Point-in-time view of every registered metric, sorted by name.
  /// Deterministic: two registries fed the same events snapshot
  /// identically regardless of thread scheduling.
  std::vector<MetricSample> Snapshot() const SVQA_EXCLUDES(mu_);

  /// Stable text form of `Snapshot()`: one JSON object, keys in name
  /// order, integer values only — byte-identical across runs for a
  /// deterministic workload.
  std::string ToJson() const SVQA_EXCLUDES(mu_);

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_;
  // std::map keeps iteration name-sorted, which is what makes the
  // snapshot ordering deterministic by construction.
  std::map<std::string, Entry> metrics_ SVQA_GUARDED_BY(mu_);
};

/// Renders a snapshot in the same stable form as
/// `MetricsRegistry::ToJson()` (exposed for tests and tooling).
std::string SamplesToJson(const std::vector<MetricSample>& samples);

}  // namespace obs
}  // namespace svqa

#endif  // SVQA_OBS_METRICS_H_
