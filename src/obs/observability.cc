#include "obs/observability.h"

#include <string>

namespace svqa {
namespace obs {

namespace {

/// Serve priority classes by index; mirrors serve::PriorityClass
/// (static_assert'd at the serve wiring site).
const char* const kClassNames[kNumPriorityClasses] = {"interactive", "batch",
                                                      "best_effort"};

/// storage::RecoveryRung by index; mirrors RecoveryRungName.
const char* const kRungNames[kNumRecoveryRungs] = {
    "cold_start", "snapshot_only", "snapshot_plus_wal", "wal_only",
    "conservative_empty"};

/// Queue-wait buckets: decade spacing from 100 us to 10 s of virtual
/// time, matching the latency range the serve experiments report.
std::vector<uint64_t> QueueWaitBounds() {
  return {100, 1'000, 10'000, 100'000, 1'000'000, 10'000'000};
}

}  // namespace

Status ObsOptions::Validate() const {
  // The flight recorder's rings are sized from ring_capacity the moment
  // an Observability is constructed — so the capacity is validated even
  // while disabled, instead of letting a degenerate value be silently
  // clamped and inherited by a later enable.
  if (ring_capacity == 0) {
    return Status::InvalidArgument(
        "ObsOptions.ring_capacity must be >= 1 (the flight recorder ring "
        "is sized at construction)");
  }
  if (ring_capacity > (1u << 20)) {
    return Status::InvalidArgument(
        "ObsOptions.ring_capacity too large (max 1Mi records per lane)");
  }
  // The sampler computes `query_id % trace_sample_n`; an interval this
  // large is indistinguishable from "never" (only id 0 traces) and is
  // almost certainly a unit mistake. 0 is the documented off switch.
  if (trace_sample_n > (1u << 30)) {
    return Status::InvalidArgument(
        "ObsOptions.trace_sample_n too large (max 2^30; use 0 to disable "
        "tracing)");
  }
  return Status::OK();
}

StackMetrics::StackMetrics(MetricsRegistry* registry) {
  for (int s = 0; s < kNumFaultSites; ++s) {
    fault_injected[s] = registry->GetCounter(
        std::string("svqa.util.fault.") +
        FaultSiteName(static_cast<FaultSite>(s)));
  }
  exec_attempts = registry->GetCounter("svqa.exec.attempts");
  exec_retries = registry->GetCounter("svqa.exec.retries");
  exec_backoff_micros = registry->GetCounter("svqa.exec.backoff_micros");
  cache_scope_hits = registry->GetCounter("svqa.exec.cache.scope_hits");
  cache_scope_misses = registry->GetCounter("svqa.exec.cache.scope_misses");
  cache_path_hits = registry->GetCounter("svqa.exec.cache.path_hits");
  cache_path_misses = registry->GetCounter("svqa.exec.cache.path_misses");
  cache_scope_evictions =
      registry->GetGauge("svqa.exec.cache.scope_evictions");
  cache_path_evictions = registry->GetGauge("svqa.exec.cache.path_evictions");
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    serve_sheds[c] = registry->GetCounter(std::string("svqa.serve.sheds.") +
                                          kClassNames[c]);
    serve_queue_wait_micros[c] = registry->GetHistogram(
        std::string("svqa.serve.queue_wait_micros.") + kClassNames[c],
        QueueWaitBounds());
  }
  serve_requests = registry->GetCounter("svqa.serve.requests");
  serve_publishes = registry->GetCounter("svqa.serve.publishes");
  serve_recovery_rung = registry->GetGauge("svqa.serve.recovery_rung");
  wal_appends = registry->GetCounter("svqa.serve.wal.appends");
  wal_append_failures =
      registry->GetCounter("svqa.serve.wal.append_failures");
  snapshot_writes = registry->GetCounter("svqa.serve.snapshot.writes");
  for (int r = 0; r < kNumRecoveryRungs; ++r) {
    recovery_rungs[r] = registry->GetCounter(
        std::string("svqa.storage.recovery.") + kRungNames[r]);
  }
  wal_replayed = registry->GetCounter("svqa.storage.wal.replayed");
  wal_repaired = registry->GetCounter("svqa.storage.wal.repaired");
  wal_quarantined = registry->GetCounter("svqa.storage.wal.quarantined");
}

Observability::Observability(const ObsOptions& options, uint32_t num_lanes)
    : options_(options),
      stack_(std::make_unique<StackMetrics>(&registry_)),
      flight_(std::make_unique<FlightRecorder>(num_lanes,
                                               options.ring_capacity)) {}

Scope Observability::MakeScope(Tracer* tracer, uint32_t lane,
                               uint64_t query_id) {
  Scope scope;
  if (!options_.enabled) return scope;
  scope.tracer = tracer;
  scope.metrics = stack_.get();
  scope.flight = flight_.get();
  scope.flight_lane = lane;
  scope.query_id = query_id;
  return scope;
}

}  // namespace obs
}  // namespace svqa
