#include "obs/trace_analyzer.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "util/json_util.h"

namespace svqa {
namespace obs {

namespace {

double Dur(const SpanRecord& s) { return s.end_micros - s.start_micros; }

/// Candidate ordering used for both root selection and descent:
/// longest first, then earliest start, then lowest id — total, so the
/// critical path is unique.
bool Dominates(const SpanRecord& a, const SpanRecord& b) {
  if (Dur(a) != Dur(b)) return Dur(a) > Dur(b);
  if (a.start_micros != b.start_micros) return a.start_micros < b.start_micros;
  return a.id < b.id;
}

}  // namespace

TraceAnalysis TraceAnalysis::FromSpans(uint64_t query_id,
                                       const std::vector<SpanRecord>& spans) {
  TraceAnalysis out;
  out.query_id_ = query_id;
  out.num_spans_ = spans.size();

  // Self time: duration minus direct children. Ids are 1-based and
  // allocation-ordered (parents precede children), so one forward pass
  // over `spans` can subtract each span from its parent's self bucket.
  std::vector<double> self(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) self[i] = Dur(spans[i]);
  for (const SpanRecord& s : spans) {
    if (s.parent != 0) self[s.parent - 1] -= Dur(s);
  }

  // Per-name aggregation; std::map iteration gives name order, the
  // final sort reorders by total.
  std::map<std::string, SpanNameStats> by_name;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    SpanNameStats& stats = by_name[s.name];
    stats.name = s.name;
    stats.count += 1;
    stats.total_micros += Dur(s);
    stats.self_micros += self[i];
    stats.max_micros = std::max(stats.max_micros, Dur(s));
  }
  out.by_name_.reserve(by_name.size());
  for (auto& [name, stats] : by_name) out.by_name_.push_back(stats);
  std::stable_sort(out.by_name_.begin(), out.by_name_.end(),
                   [](const SpanNameStats& a, const SpanNameStats& b) {
                     if (a.total_micros != b.total_micros) {
                       return a.total_micros > b.total_micros;
                     }
                     return a.name < b.name;
                   });

  // Children index for the descent (and the root scan).
  std::vector<std::vector<uint32_t>> children(spans.size() + 1);
  const SpanRecord* root = nullptr;
  for (const SpanRecord& s : spans) {
    children[s.parent].push_back(s.id);
    if (s.parent == 0) {
      out.num_roots_ += 1;
      out.total_micros_ += Dur(s);
      if (root == nullptr || Dominates(s, *root)) root = &s;
    }
  }

  // Critical path: start from the dominating root, then at every level
  // step into the dominating direct child until a leaf.
  int depth = 0;
  while (root != nullptr) {
    CriticalPathStep step;
    step.name = root->name;
    step.depth = depth++;
    step.start_micros = root->start_micros;
    step.dur_micros = Dur(*root);
    step.self_micros = self[root->id - 1];
    out.critical_path_.push_back(step);
    const SpanRecord* next = nullptr;
    for (uint32_t child_id : children[root->id]) {
      const SpanRecord& c = spans[child_id - 1];
      if (next == nullptr || Dominates(c, *next)) next = &c;
    }
    root = next;
  }
  return out;
}

std::string TraceAnalysis::ToText() const {
  std::ostringstream out;
  out << "trace analysis query=" << query_id_ << " spans=" << num_spans_
      << " roots=" << num_roots_ << " total=" << FormatMicros(total_micros_)
      << "\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-24s %6s %14s %14s %14s\n", "name",
                "count", "total", "self", "max");
  out << line;
  for (const SpanNameStats& s : by_name_) {
    std::snprintf(line, sizeof(line), "%-24s %6llu %14s %14s %14s\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.count),
                  FormatMicros(s.total_micros).c_str(),
                  FormatMicros(s.self_micros).c_str(),
                  FormatMicros(s.max_micros).c_str());
    out << line;
  }
  if (critical_path_.empty()) {
    out << "critical path: (none)\n";
  } else {
    out << "critical path (" << critical_path_.size() << " steps, "
        << FormatMicros(critical_path_.front().dur_micros) << " micros):\n";
    for (const CriticalPathStep& step : critical_path_) {
      for (int d = 0; d <= step.depth; ++d) out << "  ";
      out << step.name << " start=" << FormatMicros(step.start_micros)
          << " dur=" << FormatMicros(step.dur_micros)
          << " self=" << FormatMicros(step.self_micros) << "\n";
    }
  }
  return out.str();
}

std::string TraceAnalysis::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"query_id\": " << query_id_
      << ",\n  \"spans\": " << num_spans_ << ",\n  \"roots\": " << num_roots_
      << ",\n  \"total_micros\": " << FormatMicros(total_micros_)
      << ",\n  \"by_name\": [";
  for (std::size_t i = 0; i < by_name_.size(); ++i) {
    const SpanNameStats& s = by_name_[i];
    out << (i == 0 ? "" : ",") << "\n    {\"name\": \""
        << util::JsonEscaped(s.name) << "\", \"count\": " << s.count
        << ", \"total_micros\": " << FormatMicros(s.total_micros)
        << ", \"self_micros\": " << FormatMicros(s.self_micros)
        << ", \"max_micros\": " << FormatMicros(s.max_micros) << "}";
  }
  out << "\n  ],\n  \"critical_path\": [";
  for (std::size_t i = 0; i < critical_path_.size(); ++i) {
    const CriticalPathStep& s = critical_path_[i];
    out << (i == 0 ? "" : ",") << "\n    {\"name\": \""
        << util::JsonEscaped(s.name) << "\", \"depth\": " << s.depth
        << ", \"start_micros\": " << FormatMicros(s.start_micros)
        << ", \"dur_micros\": " << FormatMicros(s.dur_micros)
        << ", \"self_micros\": " << FormatMicros(s.self_micros) << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace obs
}  // namespace svqa
