#ifndef SVQA_OBS_FLIGHT_RECORDER_H_
#define SVQA_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace svqa {
namespace obs {

/// One span/event as remembered by the flight recorder. `name` is a
/// static string literal (same contract as SpanRecord).
struct FlightRecord {
  uint64_t query_id = 0;
  const char* name = "";
  double start_micros = 0;  // virtual micros on the query's clock
  double dur_micros = 0;
};

/// \brief Always-on ring of the most recent span/event records, one
/// preallocated lane per worker.
///
/// The point is post-hoc debugging without a re-run: when a shed or a
/// deadline miss shows up in `ServerStats`, the recorder still holds
/// the last `capacity` records each worker produced. Recording takes
/// only that lane's mutex (workers never contend with each other, and
/// the critical section is a fixed-size struct copy — no allocation:
/// rings are preallocated up front). `SnapshotAll` walks the lanes one
/// at a time, so traffic is never globally paused.
class FlightRecorder {
 public:
  FlightRecorder(uint32_t num_lanes, uint32_t capacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  uint32_t num_lanes() const { return static_cast<uint32_t>(lanes_.size()); }
  uint32_t capacity() const { return capacity_; }

  /// Appends to `lane` (clamped into range), evicting the oldest record
  /// once the lane is full.
  void Record(uint32_t lane, const FlightRecord& rec);

  /// Copies every live record, oldest-first within each lane, lanes in
  /// index order. Lock scope is one lane at a time.
  std::vector<FlightRecord> SnapshotAll() const;

  /// Total records ever recorded (across all lanes, including evicted).
  uint64_t TotalRecorded() const;

  /// Human-readable dump of `SnapshotAll()` for Stats()/demo output.
  std::string Dump() const;

 private:
  struct Lane {
    mutable Mutex mu;
    std::vector<FlightRecord> ring SVQA_GUARDED_BY(mu);  // size == capacity
    uint64_t next_seq SVQA_GUARDED_BY(mu) = 0;
  };

  uint32_t capacity_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace obs
}  // namespace svqa

#endif  // SVQA_OBS_FLIGHT_RECORDER_H_
