#include "obs/flight_recorder.h"

#include <cstdio>
#include <sstream>

namespace svqa {
namespace obs {

FlightRecorder::FlightRecorder(uint32_t num_lanes, uint32_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  if (num_lanes == 0) num_lanes = 1;
  lanes_.reserve(num_lanes);
  for (uint32_t i = 0; i < num_lanes; ++i) {
    auto lane = std::make_unique<Lane>();
    {
      MutexLock lock(&lane->mu);
      lane->ring.resize(capacity_);
    }
    lanes_.push_back(std::move(lane));
  }
}

void FlightRecorder::Record(uint32_t lane_index, const FlightRecord& rec) {
  Lane& lane = *lanes_[lane_index % lanes_.size()];
  MutexLock lock(&lane.mu);
  lane.ring[lane.next_seq % capacity_] = rec;
  ++lane.next_seq;
}

std::vector<FlightRecord> FlightRecorder::SnapshotAll() const {
  std::vector<FlightRecord> out;
  for (const auto& lane_ptr : lanes_) {
    const Lane& lane = *lane_ptr;
    MutexLock lock(&lane.mu);
    uint64_t live = lane.next_seq < capacity_ ? lane.next_seq : capacity_;
    uint64_t first = lane.next_seq - live;
    for (uint64_t s = first; s < lane.next_seq; ++s) {
      out.push_back(lane.ring[s % capacity_]);
    }
  }
  return out;
}

uint64_t FlightRecorder::TotalRecorded() const {
  uint64_t total = 0;
  for (const auto& lane_ptr : lanes_) {
    MutexLock lock(&lane_ptr->mu);
    total += lane_ptr->next_seq;
  }
  return total;
}

std::string FlightRecorder::Dump() const {
  std::ostringstream out;
  out << "flight recorder: " << lanes_.size() << " lane(s) x " << capacity_
      << " record(s)\n";
  uint32_t lane_index = 0;
  for (const auto& lane_ptr : lanes_) {
    const Lane& lane = *lane_ptr;
    MutexLock lock(&lane.mu);
    uint64_t live = lane.next_seq < capacity_ ? lane.next_seq : capacity_;
    uint64_t first = lane.next_seq - live;
    out << "lane " << lane_index++ << " (" << live << " live, "
        << lane.next_seq << " total):\n";
    for (uint64_t s = first; s < lane.next_seq; ++s) {
      const FlightRecord& r = lane.ring[s % capacity_];
      char buf[64];
      std::snprintf(buf, sizeof(buf), " start=%.3f dur=%.3f",
                    r.start_micros, r.dur_micros);
      out << "  q" << r.query_id << " " << r.name << buf << "\n";
    }
  }
  return out.str();
}

}  // namespace obs
}  // namespace svqa
