#ifndef SVQA_OBS_TRACE_ANALYZER_H_
#define SVQA_OBS_TRACE_ANALYZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace svqa {
namespace obs {

/// \brief Aggregate virtual-time statistics for one span name.
struct SpanNameStats {
  std::string name;
  uint64_t count = 0;
  /// Sum of span durations. Nested spans of the same name each
  /// contribute their full duration (so a recursive name can exceed the
  /// trace total); `self_micros` is the double-counting-free view.
  double total_micros = 0;
  /// Sum of durations minus each span's direct children — the time
  /// spent *in* spans of this name rather than in something they called.
  double self_micros = 0;
  /// Longest single span.
  double max_micros = 0;
};

/// \brief One step of the critical path, root to leaf.
struct CriticalPathStep {
  std::string name;
  int depth = 0;
  double start_micros = 0;
  double dur_micros = 0;
  double self_micros = 0;
};

/// \brief In-process analysis of one `Tracer`'s span tree: per-name
/// self/total virtual time and the critical path (the longest root
/// span, descending into the longest child at every level).
///
/// Everything here is a pure function of the span records, which are
/// themselves pure functions of the work the query charged — so the
/// analysis, its text report, and its JSON report are byte-identical
/// across runs, hosts, and worker counts. Analysis never touches a
/// SimClock: reading a trace must not perturb one.
///
/// Ties are broken deterministically everywhere: the per-name table
/// orders by (total desc, name asc); critical-path candidates by
/// (duration desc, start asc, id asc).
class TraceAnalysis {
 public:
  /// Analyzes a tracer's spans (open spans count with their current end).
  static TraceAnalysis Of(const Tracer& tracer) {
    return FromSpans(tracer.query_id(), tracer.spans());
  }
  static TraceAnalysis FromSpans(uint64_t query_id,
                                 const std::vector<SpanRecord>& spans);

  uint64_t query_id() const { return query_id_; }
  uint64_t num_spans() const { return num_spans_; }
  uint64_t num_roots() const { return num_roots_; }
  /// Sum of root-span durations (the trace's wall of virtual time).
  double total_micros() const { return total_micros_; }
  /// Per-name table, ordered (total desc, name asc).
  const std::vector<SpanNameStats>& by_name() const { return by_name_; }
  /// Root-to-leaf critical path; empty for an empty trace.
  const std::vector<CriticalPathStep>& critical_path() const {
    return critical_path_;
  }

  /// Byte-stable plain-text report (header, per-name table, critical
  /// path).
  std::string ToText() const;
  /// Byte-stable JSON report mirroring ToText's content.
  std::string ToJson() const;

 private:
  uint64_t query_id_ = 0;
  uint64_t num_spans_ = 0;
  uint64_t num_roots_ = 0;
  double total_micros_ = 0;
  std::vector<SpanNameStats> by_name_;
  std::vector<CriticalPathStep> critical_path_;
};

}  // namespace obs
}  // namespace svqa

#endif  // SVQA_OBS_TRACE_ANALYZER_H_
