#ifndef SVQA_DATA_WORLD_H_
#define SVQA_DATA_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/vocabulary.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "vision/scene.h"

namespace svqa::data {

/// \brief A named character and their social / visual profile.
struct CharacterProfile {
  std::string name;
  std::string category;  ///< "wizard" or "person".
  std::vector<int> friends;
  int team = 0;  ///< Index into Vocabulary::teams.
  int city = 0;  ///< Index into Vocabulary::cities.
  /// Signature clothing category this character wears in scenes.
  std::string clothing;
  std::string clothing_color;
};

/// \brief The ground-truth world: cast, social relations, and scenes.
struct World {
  Vocabulary vocab;
  std::vector<CharacterProfile> characters;
  /// (girlfriend index, partner index) pairs — the KG's girlfriend-of
  /// edges. One partner may have several (the flagship question needs
  /// Harry's two).
  std::vector<std::pair<int, int>> girlfriend_of;
  std::vector<vision::Scene> scenes;
  /// Video episodes as [first, last] scene-id ranges (non-empty only
  /// when WorldOptions::episode_length > 1). Frames of one episode share
  /// their cast.
  std::vector<std::pair<int, int>> episodes;

  int CharacterIndex(const std::string& name) const;

  /// Packages the episode ranges as vision::Video objects (frames are
  /// copies of the member scenes).
  std::vector<vision::Video> Videos() const;
};

/// \brief World sampling knobs.
struct WorldOptions {
  int num_scenes = 4233;
  /// Fraction of scenes that are social (characters hanging out) rather
  /// than COCO-style object scenes.
  double social_fraction = 0.45;
  /// Frames per social episode: 1 generates independent images (the
  /// MVQA default); > 1 turns each social scene into a short video whose
  /// frames share the cast (§II's video-as-image-collection).
  int episode_length = 1;
  uint64_t seed = 2024;
};

/// \brief Samples the synthetic world: assigns the social structure, then
/// draws scenes — social scenes from co-appearance affinities (couples >
/// friends > strangers), object scenes from a pattern library of
/// plausible (subject, predicate, object) triples.
class WorldGenerator {
 public:
  explicit WorldGenerator(WorldOptions options = {});

  World Generate() const;

 private:
  void BuildCast(World* world, Rng* rng) const;
  std::vector<int> PickCast(const World& world, Rng* rng) const;
  vision::Scene MakeSocialScene(const World& world,
                                const std::vector<int>& present, int id,
                                Rng* rng) const;
  vision::Scene MakeObjectScene(const World& world, int id, Rng* rng) const;

  WorldOptions options_;
};

/// \brief Converts a ground-truth scene directly into a scene graph
/// (no detector / relation-model noise): the reference against which the
/// noisy SGG pipeline is compared, and the substrate for gold answers.
/// Layout matches SceneGraphGenerator::Generate (instance labels for
/// named entities, "category#k" for anonymous objects).
graph::Graph PerfectSceneGraph(const vision::Scene& scene);

}  // namespace svqa::data

#endif  // SVQA_DATA_WORLD_H_
