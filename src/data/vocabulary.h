#ifndef SVQA_DATA_VOCABULARY_H_
#define SVQA_DATA_VOCABULARY_H_

#include <string>
#include <vector>

namespace svqa::data {

/// \brief The closed vocabulary of the synthetic MVQA world: object
/// categories (COCO-flavoured), scene predicates, knowledge-graph
/// relations, attributes, and named characters. Everything downstream
/// (scene sampling, KG construction, question templates, the POS/synonym
/// lexicons) draws from this single source.
struct Vocabulary {
  /// Object categories that can appear in scenes.
  std::vector<std::string> object_categories;
  /// Clothing categories (a subset of object_categories; targets of
  /// "wear").
  std::vector<std::string> clothing_categories;
  /// Animal categories (subset).
  std::vector<std::string> animal_categories;
  /// Vehicle categories (subset).
  std::vector<std::string> vehicle_categories;
  /// Scene-graph predicates (spatial + action).
  std::vector<std::string> scene_predicates;
  /// Knowledge-graph relations between named entities.
  std::vector<std::string> kg_relations;
  /// Attribute labels.
  std::vector<std::string> attributes;
  /// Color attributes (subset of attributes; targets of "what color").
  std::vector<std::string> color_attributes;
  /// Named characters: {name, category} where category is "wizard" or
  /// "person".
  std::vector<std::pair<std::string, std::string>> characters;
  /// Team names (member-of targets).
  std::vector<std::string> teams;
  /// City names (lives-in targets).
  std::vector<std::string> cities;

  /// The default world vocabulary (deterministic).
  static Vocabulary Default();

  /// True when `category` is a clothing category.
  bool IsClothing(const std::string& category) const;
  bool IsAnimal(const std::string& category) const;
  bool IsVehicle(const std::string& category) const;
  bool IsColor(const std::string& attribute) const;
};

}  // namespace svqa::data

#endif  // SVQA_DATA_VOCABULARY_H_
