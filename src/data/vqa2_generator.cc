#include "data/vqa2_generator.h"

#include <algorithm>

#include "data/kg_builder.h"
#include "exec/executor.h"
#include "text/embedding.h"
#include "text/lexicon.h"

namespace svqa::data {
namespace {

using query::DependencyKind;
using query::QueryEdge;
using query::QueryGraph;

nlp::SpocElement El(std::string head, bool variable = false,
                    bool want_kind = false) {
  nlp::SpocElement e;
  e.text = head;
  e.head = std::move(head);
  e.is_variable = variable;
  e.want_kind = want_kind;
  return e;
}

nlp::Spoc MakeSpoc(nlp::SpocElement s, std::string p, nlp::SpocElement o,
                   int clause_index = 0) {
  nlp::Spoc spoc;
  spoc.subject = std::move(s);
  spoc.predicate = std::move(p);
  spoc.object = std::move(o);
  spoc.clause_index = clause_index;
  return spoc;
}

}  // namespace

Vqa2Generator::Vqa2Generator(Vqa2Options options) : options_(options) {}

Vqa2Dataset Vqa2Generator::Generate() const {
  Vqa2Dataset ds;
  WorldOptions wo;
  wo.num_scenes = options_.num_scenes;
  wo.social_fraction = 0.0;  // VQAv2-style corpora are object scenes
  wo.seed = options_.seed;
  ds.world = WorldGenerator(wo).Generate();
  const text::SynonymLexicon lexicon = text::SynonymLexicon::Default();
  ds.knowledge_graph = BuildKnowledgeGraph(ds.world, lexicon);
  ds.perfect_merged = BuildPerfectMergedGraph(ds.world, ds.knowledge_graph);

  text::EmbeddingModel embeddings(lexicon);
  exec::QueryGraphExecutor executor(&ds.perfect_merged, &embeddings);

  int yes = 0, no = 0;
  auto try_add = [&](std::string text, nlp::QuestionType type,
                     QueryGraph gold,
                     std::vector<SimpleQuery> subs, int* added, int quota) {
    if (*added >= quota) return;
    auto r = executor.Execute(gold);
    if (!r.ok()) return;
    if (type == nlp::QuestionType::kReasoning &&
        (r->entities.empty() || r->text == "unknown")) {
      return;
    }
    if (type == nlp::QuestionType::kCounting && r->count <= 0) return;
    if (type == nlp::QuestionType::kJudgment) {
      if (r->yes && yes > no + 2) return;
      if (!r->yes && no > yes + 2) return;
      (r->yes ? yes : no) += 1;
    }
    Vqa2Question q;
    q.text = std::move(text);
    q.type = type;
    q.gold_answer = r->text;
    q.sub_queries = std::move(subs);
    q.gold_graph = std::move(gold);
    ds.questions.push_back(std::move(q));
    ++*added;
  };

  // --- Judgment: combined simple questions ("Does the X that is sitting
  // P1 the M appear P2 the O?"). ------------------------------------------
  {
    struct Candidate {
      const char* s;
      const char* p1;
      const char* m;
      const char* p2;
      const char* o;
    };
    static const Candidate kCandidates[] = {
        {"cat", "on", "bed", "near", "car"},
        {"dog", "on", "grass", "near", "person"},
        {"dog", "in", "car", "near", "person"},
        {"bird", "on", "tree", "near", "boat"},
        {"cat", "near", "car", "on", "bed"},
        {"horse", "on", "grass", "near", "tv"},
        {"cat", "on", "bed", "behind", "bus"},
        {"dog", "in", "car", "on", "tree"},
        {"bird", "on", "fence", "near", "bed"},
        {"bear", "on", "tv", "near", "tree"},
        {"dog", "on", "grass", "under", "bench"},
        {"person", "on", "bench", "near", "car"},
        {"laptop", "on", "table", "near", "book"},
        {"cat", "under", "table", "near", "car"},
        {"dog", "on", "grass", "near", "tv"},
        {"truck", "behind", "car", "on", "street"},
        {"kite", "under", "tree", "near", "bench"},
        {"boat", "near", "bird", "on", "street"},
        {"bus", "on", "street", "near", "tree"},
        {"ball", "under", "bench", "near", "grass"},
        {"horse", "on", "grass", "near", "dog"},
        {"bear", "near", "tree", "on", "grass"},
        {"dog", "near", "person", "on", "grass"},
        {"cat", "on", "bed", "near", "table"},
        {"bird", "on", "tree", "near", "fence"},
        {"person", "near", "car", "behind", "fence"},
        {"dog", "on", "grass", "in", "car"},
        {"cat", "near", "car", "under", "table"},
        {"horse", "on", "grass", "behind", "tree"},
        {"bus", "on", "street", "behind", "truck"},
        {"bird", "on", "fence", "near", "tree"},
        {"dog", "under", "bench", "near", "ball"},
        {"person", "on", "bench", "behind", "fence"},
        {"cat", "on", "bed", "in-front-of", "tv"},
        {"dog", "near", "person", "under", "table"},
        {"bear", "on", "tv", "behind", "car"},
        {"horse", "on", "grass", "in", "car"},
        {"bird", "near", "boat", "on", "street"},
        {"truck", "behind", "car", "near", "tree"},
        {"kite", "under", "tree", "on", "grass"},
        {"ball", "under", "bench", "behind", "fence"},
        {"laptop", "on", "table", "under", "bed"},
        {"cat", "under", "table", "behind", "bus"},
        {"dog", "in", "car", "near", "tree"},
        {"person", "behind", "fence", "near", "tv"},
        {"bus", "on", "street", "in-front-of", "building"},
        {"cat", "on", "bed", "near", "laptop"},
        {"dog", "on", "grass", "behind", "truck"},
    };
    int added = 0;
    for (const Candidate& c : kCandidates) {
      try_add(std::string("Does the ") + c.s + " that is sitting " + c.p1 +
                  " the " + c.m + " appear " + c.p2 + " the " + c.o + "?",
              nlp::QuestionType::kJudgment,
              QueryGraph("", nlp::QuestionType::kJudgment,
                         {MakeSpoc(El(c.s), c.p2, El(c.o)),
                          MakeSpoc(El(c.s), c.p1, El(c.m), 1)},
                         {QueryEdge{1, 0, DependencyKind::kS2S}}),
              {SimpleQuery{c.s, c.p2, c.o}, SimpleQuery{c.s, c.p1, c.m}},
              &added, options_.num_judgment);
    }
  }

  // --- Counting: accumulated counts across images. -------------------------
  {
    struct Candidate {
      const char* s;
      const char* p;
      const char* o;  // counted kind target
    };
    static const Candidate kCandidates[] = {
        {"dog", "chase", "animal"},  {"dog", "carry", "animal"},
        {"cat", "watch", "animal"},  {"person", "ride", "vehicle"},
        {"person", "hold", "ball"},  {"dog", "in", "vehicle"},
        {"cat", "on", "bed"},        {"bird", "on", "tree"},
        {"person", "wear", "clothes"}, {"animal", "on", "grass"},
        {"person", "watch", "tv"},   {"cat", "in", "vehicle"},
        {"dog", "watch", "tv"},      {"animal", "in", "car"},
        {"person", "ride", "horse"}, {"bird", "near", "boat"},
        {"dog", "under", "bench"},   {"cat", "under", "table"},
        {"person", "behind", "fence"}, {"bear", "on", "tv"},
        {"vehicle", "on", "street"}, {"animal", "near", "person"},
        {"person", "hold", "phone"},   {"person", "hold", "book"},
        {"person", "hold", "umbrella"}, {"bird", "on", "fence"},
        {"animal", "under", "table"},  {"animal", "under", "bench"},
        {"vehicle", "near", "tree"},   {"person", "on", "bench"},
        {"animal", "watch", "tv"},     {"book", "on", "table"},
        {"laptop", "on", "table"},     {"truck", "behind", "car"},
        {"kite", "under", "tree"},     {"ball", "under", "bench"},
    };
    int added = 0;
    for (const Candidate& c : kCandidates) {
      try_add(std::string("How many kinds of ") + c.o + "s are there "
                  "where a " + c.s + " is " + c.p + " them?",
              nlp::QuestionType::kCounting,
              QueryGraph("", nlp::QuestionType::kCounting,
                         {MakeSpoc(El(c.s), c.p, El(c.o, true, true))}, {}),
              {SimpleQuery{c.s, c.p, c.o}}, &added, options_.num_counting);
    }
  }

  // --- Reasoning: two related simple questions combined. -------------------
  {
    struct Candidate {
      const char* s;
      const char* p1;
      const char* m;   // condition location
      const char* p2;  // main predicate
      const char* o;   // asked-for kind
    };
    static const Candidate kCandidates[] = {
        {"dog", "on", "grass", "chase", "animal"},
        {"dog", "on", "grass", "carry", "animal"},
        {"dog", "in", "car", "chase", "animal"},
        {"cat", "on", "bed", "watch", "animal"},
        {"person", "on", "bench", "hold", "ball"},
        {"person", "behind", "fence", "ride", "vehicle"},
        {"dog", "on", "grass", "watch", "tv"},
        {"cat", "near", "car", "watch", "animal"},
        {"person", "near", "car", "ride", "vehicle"},
        {"dog", "under", "bench", "chase", "animal"},
        {"person", "on", "bench", "wear", "clothes"},
        {"cat", "under", "table", "watch", "animal"},
        {"person", "near", "car", "hold", "ball"},
        {"dog", "on", "grass", "chase", "frisbee"},
        {"person", "on", "bench", "watch", "tv"},
        {"bird", "on", "tree", "near", "boat"},
        {"person", "behind", "fence", "hold", "umbrella"},
        {"dog", "in", "car", "watch", "tv"},
        {"cat", "on", "bed", "near", "car"},
        {"person", "near", "car", "wear", "clothes"},
        {"dog", "on", "grass", "in-front-of", "person"},
        {"person", "on", "bench", "hold", "book"},
        {"dog", "near", "person", "chase", "animal"},
        {"cat", "on", "bed", "watch", "bird"},
        {"person", "behind", "fence", "hold", "phone"},
        {"dog", "on", "grass", "carry", "bird"},
        {"person", "near", "car", "hold", "umbrella"},
        {"cat", "in", "car", "watch", "animal"},
        {"dog", "in", "car", "chase", "frisbee"},
        {"person", "on", "bench", "ride", "vehicle"},
        {"dog", "under", "bench", "watch", "tv"},
        {"person", "behind", "fence", "wear", "clothes"},
        {"cat", "near", "car", "on", "bed"},
        {"dog", "near", "person", "carry", "animal"},
        {"person", "on", "bench", "hold", "umbrella"},
        {"cat", "under", "table", "near", "car"},
        {"dog", "on", "grass", "near", "person"},
        {"person", "near", "car", "watch", "tv"},
        {"bird", "on", "fence", "near", "boat"},
        {"dog", "in", "car", "carry", "animal"},
        {"person", "behind", "fence", "hold", "ball"},
        {"cat", "on", "bed", "watch", "tv"},
    };
    int added = 0;
    for (const Candidate& c : kCandidates) {
      try_add(std::string("What kind of ") + c.o + "s is the " + c.s +
                  " that is sitting " + c.p1 + " the " + c.m + " " + c.p2 +
                  "ing?",
              nlp::QuestionType::kReasoning,
              QueryGraph("", nlp::QuestionType::kReasoning,
                         {MakeSpoc(El(c.s), c.p2, El(c.o, true, true)),
                          MakeSpoc(El(c.s), c.p1, El(c.m), 1)},
                         {QueryEdge{1, 0, DependencyKind::kS2S}}),
              {SimpleQuery{c.s, c.p2, c.o}, SimpleQuery{c.s, c.p1, c.m}},
              &added, options_.num_reasoning);
    }
  }

  return ds;
}

}  // namespace svqa::data
