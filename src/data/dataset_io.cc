#include "data/dataset_io.h"

#include <charconv>
#include <sstream>

namespace svqa::data {
namespace {

// from_chars, not stoi/stoull: corrupt numeric fields must surface as a
// clean ParseError, never an exception.
template <typename Int>
bool ParseIntField(const std::string& s, Int* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

constexpr char kFieldSep = '\t';
constexpr char kElementSep = '|';

std::string EncodeElement(const nlp::SpocElement& el) {
  std::string flags;
  if (el.is_variable) flags += 'v';
  if (el.want_kind) flags += 'k';
  std::string out;
  out += el.text;
  out += kElementSep;
  out += el.head;
  out += kElementSep;
  out += el.owner;
  out += kElementSep;
  out += el.of_head;
  out += kElementSep;
  out += el.attribute;
  out += kElementSep;
  out += flags;
  return out;
}

Result<nlp::SpocElement> DecodeElement(const std::string& encoded) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : encoded) {
    if (c == kElementSep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  if (parts.size() != 6) {
    return Status::ParseError("element needs 6 fields: " + encoded);
  }
  nlp::SpocElement el;
  el.text = parts[0];
  el.head = parts[1];
  el.owner = parts[2];
  el.of_head = parts[3];
  el.attribute = parts[4];
  el.is_variable = parts[5].find('v') != std::string::npos;
  el.want_kind = parts[5].find('k') != std::string::npos;
  return el;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == kFieldSep) {
      fields.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  return fields;
}

const char* TypeName(nlp::QuestionType type) {
  switch (type) {
    case nlp::QuestionType::kJudgment:
      return "judgment";
    case nlp::QuestionType::kCounting:
      return "counting";
    case nlp::QuestionType::kReasoning:
      return "reasoning";
  }
  return "?";
}

Result<nlp::QuestionType> ParseType(const std::string& name) {
  if (name == "judgment") return nlp::QuestionType::kJudgment;
  if (name == "counting") return nlp::QuestionType::kCounting;
  if (name == "reasoning") return nlp::QuestionType::kReasoning;
  return Status::ParseError("unknown question type: " + name);
}

const char* KindName(query::DependencyKind kind) {
  switch (kind) {
    case query::DependencyKind::kS2S:
      return "S2S";
    case query::DependencyKind::kS2O:
      return "S2O";
    case query::DependencyKind::kO2S:
      return "O2S";
    case query::DependencyKind::kO2O:
      return "O2O";
  }
  return "?";
}

Result<query::DependencyKind> ParseKind(const std::string& name) {
  if (name == "S2S") return query::DependencyKind::kS2S;
  if (name == "S2O") return query::DependencyKind::kS2O;
  if (name == "O2S") return query::DependencyKind::kO2S;
  if (name == "O2O") return query::DependencyKind::kO2O;
  return Status::ParseError("unknown dependency kind: " + name);
}

}  // namespace

std::string QuestionsToText(const std::vector<MvqaQuestion>& questions) {
  std::ostringstream os;
  os << "# svqa-mvqa-questions v1\n";
  for (const MvqaQuestion& q : questions) {
    os << 'Q' << kFieldSep << TypeName(q.type) << kFieldSep
       << (q.adversarial ? 1 : 0) << kFieldSep << q.num_clauses
       << kFieldSep << q.relevant_images << kFieldSep << q.gold_answer
       << kFieldSep << q.text << '\n';
    for (const nlp::Spoc& spoc : q.gold_graph.vertices()) {
      os << 'V' << kFieldSep << EncodeElement(spoc.subject) << kFieldSep
         << spoc.predicate << kFieldSep << EncodeElement(spoc.object)
         << kFieldSep << spoc.constraint << '\n';
    }
    for (const query::QueryEdge& e : q.gold_graph.edges()) {
      os << 'E' << kFieldSep << e.producer << kFieldSep << e.consumer
         << kFieldSep << KindName(e.kind) << '\n';
    }
  }
  return os.str();
}

Result<std::vector<MvqaQuestion>> QuestionsFromText(
    const std::string& text) {
  std::vector<MvqaQuestion> questions;
  // Accumulated state for the question being parsed.
  bool open = false;
  MvqaQuestion pending;
  std::vector<nlp::Spoc> vertices;
  std::vector<query::QueryEdge> edges;

  auto flush = [&]() {
    if (!open) return;
    pending.gold_graph =
        query::QueryGraph(pending.text, pending.type, std::move(vertices),
                          std::move(edges));
    vertices.clear();
    edges.clear();
    questions.push_back(std::move(pending));
    pending = MvqaQuestion{};
    open = false;
  };

  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const auto fail = [&](const std::string& why) {
      return Status::ParseError("line " + std::to_string(lineno) + ": " +
                                why);
    };
    const auto fields = SplitTabs(line);
    if (fields[0] == "Q") {
      flush();
      if (fields.size() != 7) return fail("Q line needs 7 fields");
      SVQA_ASSIGN_OR_RETURN(pending.type, ParseType(fields[1]));
      pending.adversarial = fields[2] == "1";
      if (!ParseIntField(fields[3], &pending.num_clauses) ||
          !ParseIntField(fields[4], &pending.relevant_images)) {
        return fail("bad Q line numbers");
      }
      pending.gold_answer = fields[5];
      pending.text = fields[6];
      open = true;
    } else if (fields[0] == "V") {
      if (!open) return fail("V line outside a question");
      if (fields.size() != 5) return fail("V line needs 5 fields");
      nlp::Spoc spoc;
      SVQA_ASSIGN_OR_RETURN(spoc.subject, DecodeElement(fields[1]));
      spoc.predicate = fields[2];
      SVQA_ASSIGN_OR_RETURN(spoc.object, DecodeElement(fields[3]));
      spoc.constraint = fields[4];
      spoc.clause_index = static_cast<int>(vertices.size());
      vertices.push_back(std::move(spoc));
    } else if (fields[0] == "E") {
      if (!open) return fail("E line outside a question");
      if (fields.size() != 4) return fail("E line needs 4 fields");
      query::QueryEdge e;
      if (!ParseIntField(fields[1], &e.producer) ||
          !ParseIntField(fields[2], &e.consumer)) {
        return fail("bad E line endpoints");
      }
      SVQA_ASSIGN_OR_RETURN(e.kind, ParseKind(fields[3]));
      edges.push_back(e);
    } else {
      return fail("unknown record type '" + fields[0] + "'");
    }
  }
  flush();
  return questions;
}

Status SaveQuestions(const std::vector<MvqaQuestion>& questions,
                     const std::string& path, storage::StorageEnv* env) {
  if (env == nullptr) env = &storage::DefaultEnv();
  return env->WriteFileAtomic(path, QuestionsToText(questions));
}

Result<std::vector<MvqaQuestion>> LoadQuestions(const std::string& path,
                                                storage::StorageEnv* env) {
  if (env == nullptr) env = &storage::DefaultEnv();
  SVQA_ASSIGN_OR_RETURN(std::string text, env->ReadFile(path));
  return QuestionsFromText(text);
}

}  // namespace svqa::data
