#ifndef SVQA_DATA_DATASET_IO_H_
#define SVQA_DATA_DATASET_IO_H_

#include <string>
#include <vector>

#include "data/mvqa_generator.h"
#include "storage/storage_env.h"
#include "util/result.h"

namespace svqa::data {

/// \brief Serializes MVQA question-answer pairs (with their gold logical
/// forms) to a line-oriented TSV format:
///
///     Q <type> <adversarial> <clauses> <relevant_images> <answer> <text>
///     V <s-fields...> <predicate> <o-fields...> <constraint>
///     E <producer> <consumer> <kind>
///
/// where each SPOC element is `text|head|owner|of_head|attribute|flags`.
/// Scenes and graphs are not included (regenerate them from the world
/// seed, or ship the merged graph via SaveMergedGraph).
std::string QuestionsToText(const std::vector<MvqaQuestion>& questions);

/// \brief Parses QuestionsToText output.
Result<std::vector<MvqaQuestion>> QuestionsFromText(const std::string& text);

/// \brief File wrappers. Saves go through StorageEnv::WriteFileAtomic
/// (temp + sync + rename), so a crash mid-save never leaves a torn
/// question file; `env` defaults to the process filesystem.
Status SaveQuestions(const std::vector<MvqaQuestion>& questions,
                     const std::string& path,
                     storage::StorageEnv* env = nullptr);
Result<std::vector<MvqaQuestion>> LoadQuestions(
    const std::string& path, storage::StorageEnv* env = nullptr);

}  // namespace svqa::data

#endif  // SVQA_DATA_DATASET_IO_H_
