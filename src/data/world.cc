#include "data/world.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "vision/relation_model.h"

namespace svqa::data {

int World::CharacterIndex(const std::string& name) const {
  for (std::size_t i = 0; i < characters.size(); ++i) {
    if (characters[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<vision::Video> World::Videos() const {
  std::vector<vision::Video> videos;
  videos.reserve(episodes.size());
  for (const auto& [first, last] : episodes) {
    vision::Video video;
    video.id = static_cast<int32_t>(videos.size());
    for (int id = first; id <= last; ++id) {
      video.frames.push_back(scenes[static_cast<std::size_t>(id)]);
    }
    videos.push_back(std::move(video));
  }
  return videos;
}

WorldGenerator::WorldGenerator(WorldOptions options) : options_(options) {}

void WorldGenerator::BuildCast(World* world, Rng* rng) const {
  const Vocabulary& vocab = world->vocab;
  world->characters.clear();
  for (const auto& [name, category] : vocab.characters) {
    CharacterProfile c;
    c.name = name;
    c.category = category;
    c.team = static_cast<int>(rng->Below(vocab.teams.size()));
    c.city = static_cast<int>(rng->Below(vocab.cities.size()));
    c.clothing = vocab.clothing_categories[rng->Below(
        vocab.clothing_categories.size())];
    c.clothing_color =
        vocab.attributes[rng->Below(7)];  // first 7 attributes are colors
    world->characters.push_back(std::move(c));
  }

  // Couples. Character 0 (harry-potter) gets two girlfriends — indices 1
  // and 2 (ginny, cho) — matching the paper's flagship example; further
  // couples pair consecutive characters.
  world->girlfriend_of = {{1, 0}, {2, 0}};
  for (int i = 3; i + 1 < static_cast<int>(world->characters.size());
       i += 2) {
    if (rng->Chance(0.6)) {
      world->girlfriend_of.emplace_back(i + 1, i);
    }
  }

  // Friendships: 2-4 random friends per character (symmetric).
  const int n = static_cast<int>(world->characters.size());
  for (int i = 0; i < n; ++i) {
    const int want = static_cast<int>(rng->Range(2, 4));
    for (int k = 0; k < want; ++k) {
      const int j = static_cast<int>(rng->Below(n));
      if (j == i) continue;
      auto& fi = world->characters[i].friends;
      if (std::find(fi.begin(), fi.end(), j) == fi.end()) {
        fi.push_back(j);
        world->characters[j].friends.push_back(i);
      }
    }
  }
}

namespace {

std::array<float, 4> RandomBox(Rng* rng) {
  const float x = static_cast<float>(rng->NextDouble() * 0.7);
  const float y = static_cast<float>(rng->NextDouble() * 0.7);
  const float w = 0.1f + static_cast<float>(rng->NextDouble() * 0.25);
  const float h = 0.1f + static_cast<float>(rng->NextDouble() * 0.25);
  return {x, y, w, h};
}

int AddObject(vision::Scene* scene, const std::string& category,
              const std::string& instance, Rng* rng) {
  vision::SceneObject obj;
  obj.category = category;
  obj.instance = instance;
  obj.box = RandomBox(rng);
  scene->objects.push_back(std::move(obj));
  return static_cast<int>(scene->objects.size()) - 1;
}

void SetCenter(vision::SceneObject* obj, double cx, double cy) {
  obj->box[0] = std::clamp(static_cast<float>(cx - obj->box[2] / 2), 0.0f,
                           1.0f);
  obj->box[1] = std::clamp(static_cast<float>(cy - obj->box[3] / 2), 0.0f,
                           1.0f);
}

double CenterX(const vision::SceneObject& obj) {
  return obj.box[0] + obj.box[2] / 2.0;
}
double CenterY(const vision::SceneObject& obj) {
  return obj.box[1] + obj.box[3] / 2.0;
}

/// True when object `i` already participates in a relation (its position
/// is load-bearing and must not move).
bool IsAnchored(const vision::Scene& scene, int i) {
  for (const auto& r : scene.relations) {
    if (r.subject == i || r.object == i) return true;
  }
  return false;
}

/// Moves `movee` into a predicate-consistent position relative to
/// `anchor`: contact predicates (wear/hold/carry/ride) share the
/// anchor's box center (guaranteed overlap); spatial/action predicates
/// sit within interaction range. Mirrors how real photographs place
/// related things — the geometry the relation model's union-box
/// features read.
void PlaceNear(vision::Scene* scene, int anchor, int movee,
               const std::string& predicate, Rng* rng) {
  const vision::SceneObject& a = scene->objects[anchor];
  vision::SceneObject* m = &scene->objects[movee];
  if (vision::IsContactPredicate(predicate)) {
    SetCenter(m, CenterX(a), CenterY(a));
  } else {
    const double angle = rng->NextDouble() * 6.28318;
    const double radius = 0.08 + rng->NextDouble() * 0.08;
    SetCenter(m, CenterX(a) + std::cos(angle) * radius,
              CenterY(a) + std::sin(angle) * radius);
  }
}

/// Adds a relation if it can be made geometrically consistent: a free
/// endpoint is moved next to the anchored one; when both endpoints are
/// already anchored by earlier relations, the relation is only added if
/// their existing placement supports it.
void AddRelation(vision::Scene* scene, int s, const std::string& p, int o,
                 Rng* rng = nullptr) {
  if (s == o) return;
  for (const auto& r : scene->relations) {
    if (r.subject == s && r.object == o) return;  // one predicate per pair
  }
  if (rng != nullptr) {
    const bool s_anchored = IsAnchored(*scene, s);
    const bool o_anchored = IsAnchored(*scene, o);
    if (!o_anchored) {
      PlaceNear(scene, s, o, p, rng);
    } else if (!s_anchored) {
      PlaceNear(scene, o, s, p, rng);
    } else {
      // Both fixed: keep only if the existing geometry supports the
      // predicate.
      const auto& sb = scene->objects[s].box;
      const auto& ob = scene->objects[o].box;
      if (vision::IsContactPredicate(p)) {
        if (!vision::BoxesOverlap(sb, ob)) return;
      } else if (vision::BoxCenterDistance(sb, ob) > 0.3) {
        return;
      }
    }
  }
  scene->relations.push_back(vision::SceneRelation{s, o, p});
}

/// A plausible (subject-category, predicate, object-category) pattern for
/// object scenes.
struct ScenePattern {
  const char* subject;
  const char* predicate;
  const char* object;
};

const std::vector<ScenePattern>& PatternLibrary() {
  // Entries repeat to encode sampling weight. Several (subject, object)
  // category pairs deliberately admit multiple predicates with a skewed
  // head/tail split (dog-near-cat common, dog-chase-cat rarer): the
  // predicate diversity that gives relation models a label-prior bias
  // for TDE to remove, mirroring Visual Genome's long tail.
  static const auto* patterns = new std::vector<ScenePattern>{
      // dog-cat: near (head), chase / watch (tail).
      {"dog", "near", "cat"},         {"dog", "near", "cat"},
      {"dog", "near", "cat"},         {"dog", "chase", "cat"},
      {"dog", "chase", "cat"},        {"dog", "watch", "cat"},
      // dog-bird: near (head), carry (tail).
      {"dog", "near", "bird"},        {"dog", "near", "bird"},
      {"dog", "carry", "bird"},       {"dog", "carry", "bird"},
      // dog-frisbee: near vs chase.
      {"dog", "near", "frisbee"},     {"dog", "chase", "frisbee"},
      {"dog", "chase", "frisbee"},
      // dog-car: near (head), in (tail).
      {"dog", "near", "car"},         {"dog", "near", "car"},
      {"dog", "in", "car"},           {"dog", "in", "car"},
      {"dog", "on", "grass"},         {"dog", "on", "grass"},
      {"dog", "near", "person"},      {"dog", "in-front-of", "person"},
      {"dog", "watch", "tv"},         {"dog", "under", "bench"},
      // cat-bed: on (head), near (tail).
      {"cat", "on", "bed"},           {"cat", "on", "bed"},
      {"cat", "near", "bed"},
      {"cat", "near", "car"},         {"cat", "in", "car"},
      {"cat", "under", "table"},
      // cat-bird: watch vs near.
      {"cat", "watch", "bird"},       {"cat", "near", "bird"},
      {"bird", "on", "tree"},         {"bird", "near", "tree"},
      {"bird", "on", "fence"},        {"bird", "near", "boat"},
      // person-vehicle: near (head), ride (tail).
      {"person", "near", "bicycle"},  {"person", "ride", "bicycle"},
      {"person", "ride", "bicycle"},
      {"person", "near", "horse"},    {"person", "ride", "horse"},
      {"person", "ride", "motorcycle"}, {"person", "ride", "skateboard"},
      // person-handheld: hold (head) with near alternates.
      {"person", "hold", "frisbee"},  {"person", "hold", "ball"},
      {"person", "near", "ball"},
      {"person", "hold", "phone"},    {"person", "hold", "book"},
      {"person", "hold", "umbrella"}, {"person", "watch", "tv"},
      {"person", "behind", "fence"},  {"person", "near", "car"},
      {"person", "on", "bench"},      {"person", "wear", "hat"},
      {"person", "wear", "jacket"},
      // bear-tv: on vs in-front-of (the paper's Fig. 8c confusion).
      {"bear", "on", "tv"},           {"bear", "in-front-of", "tv"},
      {"bear", "near", "tree"},       {"horse", "on", "grass"},
      {"car", "near", "tree"},        {"car", "on", "street"},
      {"bus", "on", "street"},        {"truck", "behind", "car"},
      {"bench", "near", "tree"},      {"kite", "under", "tree"},
      {"ball", "under", "bench"},     {"laptop", "on", "table"},
      {"book", "on", "table"},
  };
  return *patterns;
}

}  // namespace

std::vector<int> WorldGenerator::PickCast(const World& world,
                                          Rng* rng) const {
  // Anchor character plus 1-2 companions drawn from partners/friends.
  const int n = static_cast<int>(world.characters.size());
  const int anchor = static_cast<int>(rng->Below(n));
  std::vector<int> present{anchor};
  const int companions = rng->Chance(0.35) ? 2 : 1;
  for (int k = 0; k < companions; ++k) {
    int pick = -1;
    const double roll = rng->NextDouble();
    if (roll < 0.45) {
      // Partner (either direction of a couple).
      std::vector<int> partners;
      for (const auto& [gf, owner] : world.girlfriend_of) {
        if (gf == anchor) partners.push_back(owner);
        if (owner == anchor) partners.push_back(gf);
      }
      if (!partners.empty()) {
        pick = partners[rng->Below(partners.size())];
      }
    }
    if (pick < 0 && roll < 0.85 &&
        !world.characters[anchor].friends.empty()) {
      const auto& fr = world.characters[anchor].friends;
      pick = fr[rng->Below(fr.size())];
    }
    if (pick < 0) pick = static_cast<int>(rng->Below(n));
    if (std::find(present.begin(), present.end(), pick) == present.end()) {
      present.push_back(pick);
    }
  }
  return present;
}

vision::Scene WorldGenerator::MakeSocialScene(const World& world,
                                              const std::vector<int>& present,
                                              int id, Rng* rng) const {
  vision::Scene scene;
  scene.id = id;

  // Each character appears with their signature clothing. Characters
  // stand side by side (within hang-out interaction range but without
  // box overlap); clothing overlaps its wearer only.
  std::vector<int> char_obj(present.size());
  std::vector<int> clothing_obj(present.size());
  for (std::size_t i = 0; i < present.size(); ++i) {
    const CharacterProfile& c = world.characters[present[i]];
    char_obj[i] = AddObject(&scene, c.category, c.name, rng);
    SetCenter(&scene.objects[char_obj[i]],
              0.2 + 0.2 * static_cast<double>(i),
              0.45 + rng->NextGaussian() * 0.01);
    clothing_obj[i] = AddObject(&scene, c.clothing, "", rng);
    scene.objects[clothing_obj[i]].attributes.push_back(c.clothing_color);
    AddRelation(&scene, char_obj[i], "wear", clothing_obj[i], rng);
  }
  // Pairwise hang-out edges (both directions). No repositioning: the
  // characters' standing positions already encode the interaction.
  // Occasionally a character is also annotated "near" a neighbour's
  // clothing — the head/tail diversity on (person, clothing) label pairs
  // that biased models collapse into spurious "wear".
  for (std::size_t i = 0; i < present.size(); ++i) {
    for (std::size_t j = i + 1; j < present.size(); ++j) {
      AddRelation(&scene, char_obj[i], "hang-out", char_obj[j]);
      AddRelation(&scene, char_obj[j], "hang-out", char_obj[i]);
      if (rng->Chance(0.35)) {
        AddRelation(&scene, char_obj[i], "near", clothing_obj[j]);
      }
    }
  }
  // Occasional prop.
  if (rng->Chance(0.4)) {
    static const char* kProps[] = {"phone", "book", "ball", "umbrella"};
    const int prop = AddObject(&scene, kProps[rng->Below(4)], "", rng);
    AddRelation(&scene, char_obj[0], "hold", prop, rng);
  }
  scene.caption = "social scene";
  return scene;
}

vision::Scene WorldGenerator::MakeObjectScene(const World& world, int id,
                                              Rng* rng) const {
  (void)world;
  vision::Scene scene;
  scene.id = id;

  const auto& patterns = PatternLibrary();
  const int num_patterns = static_cast<int>(rng->Range(2, 4));
  std::unordered_map<std::string, int> instance_of;  // category -> index
  for (int k = 0; k < num_patterns; ++k) {
    const ScenePattern& p = patterns[rng->Below(patterns.size())];
    auto get_object = [&](const char* category) {
      auto it = instance_of.find(category);
      // Reuse an existing object of the category half the time so scenes
      // stay connected; otherwise add a fresh one.
      if (it != instance_of.end() && rng->Chance(0.5)) return it->second;
      const int idx = AddObject(&scene, category, "", rng);
      instance_of[category] = idx;
      return idx;
    };
    const int s = get_object(p.subject);
    const int o = get_object(p.object);
    AddRelation(&scene, s, p.predicate, o, rng);
  }
  // Random attributes.
  for (auto& obj : scene.objects) {
    if (rng->Chance(0.3)) {
      obj.attributes.push_back(
          Vocabulary::Default().attributes[rng->Below(7)]);
    }
  }
  scene.caption = "object scene";
  return scene;
}

World WorldGenerator::Generate() const {
  World world;
  world.vocab = Vocabulary::Default();
  Rng rng(options_.seed);
  BuildCast(&world, &rng);

  world.scenes.reserve(options_.num_scenes);
  const int episode_length = std::max(1, options_.episode_length);
  int id = 0;
  while (id < options_.num_scenes) {
    if (rng.NextDouble() < options_.social_fraction) {
      // A social scene — or, with episode_length > 1, a short video of
      // frames sharing one cast (props and micro-positions re-rolled).
      const std::vector<int> cast = PickCast(world, &rng);
      const int frames =
          std::min(episode_length, options_.num_scenes - id);
      const int first = id;
      for (int f = 0; f < frames; ++f, ++id) {
        world.scenes.push_back(MakeSocialScene(world, cast, id, &rng));
      }
      if (episode_length > 1) {
        world.episodes.emplace_back(first, id - 1);
      }
    } else {
      world.scenes.push_back(MakeObjectScene(world, id, &rng));
      ++id;
    }
  }
  return world;
}

graph::Graph PerfectSceneGraph(const vision::Scene& scene) {
  graph::Graph g;
  std::unordered_map<std::string, int> label_counts;
  std::vector<graph::VertexId> vertex_of(scene.objects.size());
  for (std::size_t i = 0; i < scene.objects.size(); ++i) {
    const vision::SceneObject& obj = scene.objects[i];
    std::string label = obj.instance;
    if (label.empty()) {
      const int k = label_counts[obj.category]++;
      label = obj.category + "#" + std::to_string(k);
    }
    vertex_of[i] = g.AddVertex(std::move(label), obj.category, scene.id);
  }
  for (const auto& rel : scene.relations) {
    // Scene relations are generated self-loop-free, the only AddEdge
    // failure mode: a deliberate discard.
    (void)g.AddEdge(vertex_of[rel.subject], vertex_of[rel.object],
                    rel.predicate);
  }
  // Attribute vertices, mirroring SceneGraphGenerator's layout.
  for (std::size_t i = 0; i < scene.objects.size(); ++i) {
    for (const std::string& attr : scene.objects[i].attributes) {
      const int k = label_counts[attr]++;
      const graph::VertexId av =
          g.AddVertex(attr + "#" + std::to_string(k), attr, scene.id);
      // Attribute vertices are fresh, so the edge cannot self-loop.
      (void)g.AddEdge(vertex_of[i], av, "has-attribute");
    }
  }
  return g;
}

}  // namespace svqa::data
