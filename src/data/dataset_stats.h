#ifndef SVQA_DATA_DATASET_STATS_H_
#define SVQA_DATA_DATASET_STATS_H_

#include <cstddef>
#include <string>

#include "data/mvqa_generator.h"

namespace svqa::data {

/// \brief Per-question-type statistics (one Table II row).
struct MvqaTypeStats {
  std::size_t questions = 0;
  std::size_t clauses = 0;
  std::size_t unique_spos = 0;
  double avg_images = 0;
};

/// \brief Dataset statistics reproducing Tables I and II.
struct MvqaStats {
  std::size_t num_images = 0;
  MvqaTypeStats judgment;
  MvqaTypeStats counting;
  MvqaTypeStats reasoning;
  std::size_t total_questions = 0;
  std::size_t total_clauses = 0;
  /// Unique subject-predicate-object triples across the whole dataset.
  std::size_t total_unique_spos = 0;
  /// Mean question length in tokens (Table I "Avg. Query length").
  double avg_query_length = 0;
  /// Mean clauses per question.
  double avg_clauses = 0;
};

/// \brief Computes the statistics over a generated dataset.
MvqaStats ComputeMvqaStats(const MvqaDataset& dataset);

/// \brief Renders the Table II style summary as text.
std::string FormatMvqaStats(const MvqaStats& stats);

}  // namespace svqa::data

#endif  // SVQA_DATA_DATASET_STATS_H_
