#ifndef SVQA_DATA_MVQA_GENERATOR_H_
#define SVQA_DATA_MVQA_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "aggregator/merger.h"
#include "data/world.h"
#include "graph/graph.h"
#include "nlp/spoc_extractor.h"
#include "query/query_graph.h"
#include "text/embedding.h"

namespace svqa::data {

/// \brief One MVQA question-answer pair.
///
/// `gold_graph` is the hand-constructed logical form of the question
/// (what a perfect parse would produce); `gold_answer` is that graph's
/// result over the *perfect* merged graph (noise-free scene graphs). The
/// NL `text` is rendered from the same template, so SVQA's measured
/// errors decompose exactly as the paper's Figure 8: statement parsing
/// (NL pipeline diverges from gold_graph), object detection, and
/// relationship generation (noisy merged graph diverges from perfect).
struct MvqaQuestion {
  std::string text;
  nlp::QuestionType type = nlp::QuestionType::kReasoning;
  query::QueryGraph gold_graph;
  std::string gold_answer;
  int num_clauses = 1;
  /// Scenes containing at least one object relevant to the question
  /// (the Table II "Average Images" statistic).
  std::size_t relevant_images = 0;
  /// True for the deliberately hard variants that use out-of-lexicon
  /// latinate words ("canis"), reproducing the Fig. 8(a) failure mode.
  bool adversarial = false;
};

/// \brief The MVQA dataset: world + KG + perfect merged graph + QA pairs.
struct MvqaDataset {
  World world;
  graph::Graph knowledge_graph;
  aggregator::MergedGraph perfect_merged;
  std::vector<MvqaQuestion> questions;

  std::size_t NumOfType(nlp::QuestionType type) const;
};

/// \brief Generation knobs (defaults reproduce the paper's Table II mix:
/// 40 judgment / 16 counting / 44 reasoning over 4,233 images).
struct MvqaOptions {
  WorldOptions world;
  int num_judgment = 40;
  int num_counting = 16;
  int num_reasoning = 44;
  /// Adversarial (FW-word) questions carved out of the reasoning and
  /// judgment quotas.
  int num_adversarial = 4;
  /// Extra attribute ("what is the color of ...") questions appended on
  /// top of the 100-question core set (0 reproduces the paper's MVQA).
  int num_color = 0;
  uint64_t seed = 99;
};

/// \brief Builds MVQA: samples the world, computes gold answers by
/// executing hand-built logical forms over the perfect merged graph, and
/// renders the NL question texts. Deterministic given the options.
class MvqaGenerator {
 public:
  explicit MvqaGenerator(MvqaOptions options = {});

  MvqaDataset Generate() const;

 private:
  MvqaOptions options_;
};

/// \brief Builds the perfect merged graph for a world (noise-free scene
/// graphs + KG); shared by the generators and the evaluation harness.
aggregator::MergedGraph BuildPerfectMergedGraph(
    const World& world, const graph::Graph& knowledge_graph);

}  // namespace svqa::data

#endif  // SVQA_DATA_MVQA_GENERATOR_H_
