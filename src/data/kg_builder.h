#ifndef SVQA_DATA_KG_BUILDER_H_
#define SVQA_DATA_KG_BUILDER_H_

#include "data/world.h"
#include "graph/graph.h"
#include "text/lexicon.h"

namespace svqa::data {

/// \brief Builds the external knowledge graph G for a world:
///
/// * one *concept* vertex per object category (label = category name,
///   category = "concept"), connected by `is-a` edges along the synonym
///   lexicon's hypernym chains (dog -> pet -> animal, robe -> clothes,
///   car -> vehicle, wizard -> person);
/// * one vertex per named character (label = name, category =
///   wizard/person) with `girlfriend-of` / `friend-of` social edges;
/// * team and city vertices with `member-of` / `lives-in` edges.
///
/// The taxonomy is what lets matchVertex resolve "animal" or "clothes"
/// to concrete scene objects after merging.
graph::Graph BuildKnowledgeGraph(const World& world,
                                 const text::SynonymLexicon& lexicon);

}  // namespace svqa::data

#endif  // SVQA_DATA_KG_BUILDER_H_
