#include "data/vocabulary.h"

#include <algorithm>

namespace svqa::data {
namespace {

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

Vocabulary Vocabulary::Default() {
  Vocabulary v;
  v.object_categories = {
      "person", "dog",    "cat",     "bird",   "horse",      "bear",
      "car",    "bicycle", "motorcycle", "bus", "truck",     "boat",
      "train",  "building", "tree",  "bench",  "frisbee",    "hat",
      "robe",   "scarf",  "jacket",  "tv",     "bed",        "ball",
      "umbrella", "backpack", "skateboard", "fence", "grass", "street",
      "kite",   "book",   "chair",   "table",  "phone",      "laptop",
      "wizard",
  };
  v.clothing_categories = {"hat", "robe", "scarf", "jacket"};
  v.animal_categories = {"dog", "cat", "bird", "horse", "bear"};
  v.vehicle_categories = {"car",   "bicycle", "motorcycle",
                          "bus",   "truck",   "boat",
                          "train"};
  v.scene_predicates = {"on",    "in",    "near",  "behind", "in-front-of",
                        "under", "wear",  "hold",  "carry",  "ride",
                        "chase", "watch", "hang-out"};
  v.kg_relations = {"girlfriend-of", "friend-of", "sibling-of",
                    "member-of",     "lives-in",  "owner-of"};
  v.attributes = {"red", "blue", "green", "yellow", "black", "white",
                  "brown", "big", "small", "old", "wooden"};
  v.color_attributes = {"red",   "blue",  "green", "yellow",
                        "black", "white", "brown"};
  // Named characters: a movie-flavoured cast. Wizards participate in the
  // flagship cross-source questions; persons fill out social scenes.
  v.characters = {
      {"harry-potter", "wizard"},    {"ginny-weasley", "person"},
      {"cho-chang", "person"},       {"ron-weasley", "wizard"},
      {"hermione-granger", "wizard"}, {"neville-longbottom", "wizard"},
      {"luna-lovegood", "wizard"},   {"draco-malfoy", "wizard"},
      {"cedric-diggory", "wizard"},  {"fred-weasley", "wizard"},
      {"george-weasley", "wizard"},  {"seamus-finnigan", "wizard"},
      {"dean-thomas", "person"},     {"padma-patil", "person"},
      {"parvati-patil", "person"},   {"lavender-jones", "person"},
      {"katie-bell", "person"},      {"angelina-johnson", "person"},
      {"oliver-wood", "wizard"},     {"percy-weasley", "wizard"},
      {"susan-bones", "person"},     {"hannah-abbott", "person"},
      {"ernie-macmillan", "wizard"}, {"justin-finch", "person"},
      {"terry-boot", "wizard"},      {"michael-corner", "wizard"},
      {"anthony-gold", "person"},    {"mandy-brock", "person"},
      {"lisa-turpin", "person"},     {"blaise-zabini", "wizard"},
  };
  v.teams = {"gryffindor", "ravenclaw", "hufflepuff", "slytherin"};
  v.cities = {"london", "hogsmeade", "godric-hollow", "little-whinging"};
  return v;
}

bool Vocabulary::IsClothing(const std::string& category) const {
  return Contains(clothing_categories, category);
}
bool Vocabulary::IsAnimal(const std::string& category) const {
  return Contains(animal_categories, category);
}
bool Vocabulary::IsVehicle(const std::string& category) const {
  return Contains(vehicle_categories, category);
}
bool Vocabulary::IsColor(const std::string& attribute) const {
  return Contains(color_attributes, attribute);
}

}  // namespace svqa::data
