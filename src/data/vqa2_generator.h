#ifndef SVQA_DATA_VQA2_GENERATOR_H_
#define SVQA_DATA_VQA2_GENERATOR_H_

#include <string>
#include <vector>

#include "aggregator/merger.h"
#include "data/mvqa_generator.h"
#include "data/world.h"
#include "query/query_graph.h"

namespace svqa::data {

/// \brief A decomposed simple question a per-image baseline can answer
/// (one relation over concrete categories).
struct SimpleQuery {
  std::string subject;
  std::string predicate;
  std::string object;
};

/// \brief One modified-VQAv2 question (§VII Exp-2): a composite question
/// with its gold logical form plus the decomposition the baselines
/// consume (produced, per the paper, by SVQA's query-graph generator).
struct Vqa2Question {
  std::string text;
  nlp::QuestionType type = nlp::QuestionType::kJudgment;
  query::QueryGraph gold_graph;
  std::string gold_answer;
  /// Ordered simple sub-queries; sub_queries[0] is the main clause.
  std::vector<SimpleQuery> sub_queries;
};

/// \brief The modified-VQAv2 dataset.
struct Vqa2Dataset {
  World world;
  graph::Graph knowledge_graph;
  aggregator::MergedGraph perfect_merged;
  std::vector<Vqa2Question> questions;
};

/// \brief Generation knobs. The corpus is object scenes only (VQAv2 has
/// no social/KG structure) and questions are simpler than MVQA's: 1-2
/// clauses, concrete categories, per the paper's two modifications
/// (accumulated counts across images; two related simple questions
/// combined into a complex one).
struct Vqa2Options {
  int num_scenes = 800;
  int num_judgment = 34;
  int num_counting = 33;
  int num_reasoning = 33;
  uint64_t seed = 4242;
};

/// \brief Builds the modified VQAv2 dataset.
class Vqa2Generator {
 public:
  explicit Vqa2Generator(Vqa2Options options = {});

  Vqa2Dataset Generate() const;

 private:
  Vqa2Options options_;
};

}  // namespace svqa::data

#endif  // SVQA_DATA_VQA2_GENERATOR_H_
