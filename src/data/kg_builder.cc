#include "data/kg_builder.h"

#include <unordered_map>

namespace svqa::data {

graph::Graph BuildKnowledgeGraph(const World& world,
                                 const text::SynonymLexicon& lexicon) {
  graph::Graph g;
  std::unordered_map<std::string, graph::VertexId> concept_of;

  auto ensure_concept = [&](const std::string& name) -> graph::VertexId {
    auto it = concept_of.find(name);
    if (it != concept_of.end()) return it->second;
    const graph::VertexId v = g.AddVertex(name, "concept");
    concept_of.emplace(name, v);
    return v;
  };

  // AddEdge discards below are deliberate: KG construction wires fresh,
  // distinct vertices, and self-loops — AddEdge's only failure mode —
  // cannot arise.
  // Category concepts + hypernym taxonomy.
  for (const std::string& category : world.vocab.object_categories) {
    graph::VertexId child = ensure_concept(category);
    for (const std::string& parent : lexicon.HypernymChain(category)) {
      const graph::VertexId parent_v = ensure_concept(parent);
      (void)g.AddEdge(child, parent_v, "is-a");
      child = parent_v;
    }
  }

  // Attribute taxonomy: each attribute value is a concept; colors are
  // kinds of "color" (what the "what is the color of ..." questions
  // resolve through).
  ensure_concept("color");
  ensure_concept("attribute");
  for (const std::string& attr : world.vocab.attributes) {
    const graph::VertexId av = ensure_concept(attr);
    const char* parent =
        world.vocab.IsColor(attr) ? "color" : "attribute";
    (void)g.AddEdge(av, ensure_concept(parent), "is-a");
  }

  // Characters.
  std::vector<graph::VertexId> char_vertex(world.characters.size());
  for (std::size_t i = 0; i < world.characters.size(); ++i) {
    const CharacterProfile& c = world.characters[i];
    char_vertex[i] = g.AddVertex(c.name, c.category);
    // Characters are instances of their category concept.
    (void)g.AddEdge(char_vertex[i], ensure_concept(c.category),
                    "instance-of");
  }
  for (const auto& [gf, owner] : world.girlfriend_of) {
    (void)g.AddEdge(char_vertex[gf], char_vertex[owner], "girlfriend-of");
  }
  for (std::size_t i = 0; i < world.characters.size(); ++i) {
    for (int f : world.characters[i].friends) {
      (void)g.AddEdge(char_vertex[i], char_vertex[f], "friend-of");
    }
  }

  // Teams and cities.
  std::vector<graph::VertexId> team_vertex;
  team_vertex.reserve(world.vocab.teams.size());
  for (const std::string& team : world.vocab.teams) {
    team_vertex.push_back(g.AddVertex(team, "team"));
  }
  std::vector<graph::VertexId> city_vertex;
  city_vertex.reserve(world.vocab.cities.size());
  for (const std::string& city : world.vocab.cities) {
    city_vertex.push_back(g.AddVertex(city, "city"));
  }
  for (std::size_t i = 0; i < world.characters.size(); ++i) {
    const CharacterProfile& c = world.characters[i];
    (void)g.AddEdge(char_vertex[i], team_vertex[c.team], "member-of");
    (void)g.AddEdge(char_vertex[i], city_vertex[c.city], "lives-in");
  }
  return g;
}

}  // namespace svqa::data
