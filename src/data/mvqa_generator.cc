#include "data/mvqa_generator.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "data/kg_builder.h"
#include "exec/executor.h"
#include "text/lexicon.h"

namespace svqa::data {

std::size_t MvqaDataset::NumOfType(nlp::QuestionType type) const {
  std::size_t n = 0;
  for (const auto& q : questions) {
    if (q.type == type) ++n;
  }
  return n;
}

aggregator::MergedGraph BuildPerfectMergedGraph(
    const World& world, const graph::Graph& knowledge_graph) {
  std::vector<vision::SceneGraphResult> results;
  results.reserve(world.scenes.size());
  for (const vision::Scene& scene : world.scenes) {
    vision::SceneGraphResult r;
    r.graph = PerfectSceneGraph(scene);
    r.scene_id = scene.id;
    results.push_back(std::move(r));
  }
  aggregator::GraphMerger merger;
  auto merged = merger.Merge(knowledge_graph, results);
  // The perfect merge cannot fail: scene graphs are well-formed by
  // construction.
  // svqa-lint: allow(unchecked-result)
  return std::move(merged).ValueOrDie();
}

namespace {

nlp::SpocElement El(std::string head, bool variable = false,
                    bool want_kind = false, std::string owner = "") {
  nlp::SpocElement e;
  e.text = head;
  e.head = std::move(head);
  e.is_variable = variable;
  e.want_kind = want_kind;
  e.owner = std::move(owner);
  return e;
}

nlp::Spoc MakeSpoc(nlp::SpocElement subject, std::string predicate,
                   nlp::SpocElement object, std::string constraint = "",
                   int clause_index = 0) {
  nlp::Spoc s;
  s.subject = std::move(subject);
  s.predicate = std::move(predicate);
  s.object = std::move(object);
  s.constraint = std::move(constraint);
  s.clause_index = clause_index;
  return s;
}

/// "harry-potter" -> "harry potter" (question-text rendering).
std::string Spaced(std::string name) {
  std::replace(name.begin(), name.end(), '-', ' ');
  return name;
}

/// Builder/accumulator shared by the template families.
struct GenContext {
  const World& world;
  const aggregator::MergedGraph& merged;
  exec::QueryGraphExecutor& executor;
  std::vector<MvqaQuestion> questions;
  std::set<std::string> seen_texts;
  int yes_count = 0;
  int no_count = 0;

  /// Executes a gold graph over the perfect merged graph.
  std::optional<exec::Answer> Evaluate(const query::QueryGraph& g) {
    auto r = executor.Execute(g);
    if (!r.ok()) return std::nullopt;
    return *r;
  }

  /// Scenes containing at least one vertex matching any element of the
  /// gold graph (the Table II "images needed" statistic).
  std::size_t CountRelevantImages(const query::QueryGraph& g) {
    std::unordered_set<int32_t> images;
    for (const nlp::Spoc& spoc : g.vertices()) {
      for (const nlp::SpocElement* el : {&spoc.subject, &spoc.object}) {
        if (el->empty()) continue;
        for (graph::VertexId v : executor.matcher().Match(*el)) {
          const int32_t img = merged.graph.vertex(v).source_image;
          if (img != graph::kKnowledgeGraphSource) images.insert(img);
        }
      }
    }
    return images.size();
  }

  /// Evaluates and (when the answer is acceptable) appends a question
  /// whose text is the gold graph's question string. Returns true when
  /// added.
  bool TryAdd(nlp::QuestionType type, query::QueryGraph gold,
              bool adversarial = false, bool balance_judgment = true) {
    if (seen_texts.count(gold.question()) > 0) return false;
    auto ans = Evaluate(gold);
    if (!ans.has_value()) return false;
    switch (type) {
      case nlp::QuestionType::kReasoning:
        if (ans->entities.empty() || ans->text == "unknown") return false;
        break;
      case nlp::QuestionType::kCounting:
        if (ans->count <= 0) return false;
        break;
      case nlp::QuestionType::kJudgment:
        if (balance_judgment) {
          // Keep the yes/no mix near 50/50.
          if (ans->yes && yes_count > no_count + 2) return false;
          if (!ans->yes && no_count > yes_count + 2) return false;
        }
        if (ans->yes) {
          ++yes_count;
        } else {
          ++no_count;
        }
        break;
    }
    seen_texts.insert(gold.question());
    MvqaQuestion q;
    q.text = gold.question();
    q.type = type;
    q.gold_answer = ans->text;
    q.num_clauses = static_cast<int>(gold.size());
    q.relevant_images = CountRelevantImages(gold);
    q.adversarial = adversarial;
    q.gold_graph = std::move(gold);
    questions.push_back(std::move(q));
    return true;
  }
};

using query::DependencyKind;
using query::QueryEdge;
using query::QueryGraph;

// ---------------------------------------------------------------------------
// Reasoning templates
// ---------------------------------------------------------------------------

void GenFlagship(GenContext* ctx, int quota) {
  // "What kind of clothes are worn by the wizard who is most frequently
  // hanging out with {owner}'s girlfriend?"
  std::set<int> owners;
  for (const auto& [gf, owner] : ctx->world.girlfriend_of) {
    owners.insert(owner);
  }
  int added = 0;
  for (int owner : owners) {
    if (added >= quota) break;
    const std::string& name = ctx->world.characters[owner].name;
    QueryGraph gold(
        "What kind of clothes are worn by the wizard who is most "
        "frequently hanging out with " +
            Spaced(name) + "'s girlfriend?",
        nlp::QuestionType::kReasoning,
        {MakeSpoc(El("wizard"), "wear",
                  El("clothes", /*variable=*/true, /*want_kind=*/true)),
         MakeSpoc(El("wizard"), "hang-out",
                  El("girlfriend", false, false, Spaced(name)),
                  "most frequently", 1)},
        {QueryEdge{1, 0, DependencyKind::kS2S}});
    if (ctx->TryAdd(nlp::QuestionType::kReasoning,
                    std::move(gold))) {
      ++added;
    }
  }
}

void GenCompanionClothes(GenContext* ctx, int quota) {
  // "What kind of clothes are worn by the wizard who is hanging out with
  // {char}?"
  int added = 0;
  for (const CharacterProfile& c : ctx->world.characters) {
    if (added >= quota) break;
    if (c.category == "wizard") continue;  // companion is a person
    QueryGraph gold(
        "What kind of clothes are worn by the wizard who is hanging out "
        "with " +
            Spaced(c.name) + "?",
        nlp::QuestionType::kReasoning,
        {MakeSpoc(El("wizard"), "wear", El("clothes", true, true)),
         MakeSpoc(El("wizard"), "hang-out", El(c.name), "", 1)},
        {QueryEdge{1, 0, DependencyKind::kS2S}});
    if (ctx->TryAdd(nlp::QuestionType::kReasoning,
                    std::move(gold))) {
      ++added;
    }
  }
}

void GenWornBy(GenContext* ctx, int quota) {
  // "What kind of clothes is worn by {char}?" (single clause)
  int added = 0;
  for (const CharacterProfile& c : ctx->world.characters) {
    if (added >= quota) break;
    QueryGraph gold(
        "What kind of clothes is worn by " + Spaced(c.name) + "?",
        nlp::QuestionType::kReasoning,
        {MakeSpoc(El(c.name), "wear", El("clothes", true, true))}, {});
    if (ctx->TryAdd(nlp::QuestionType::kReasoning,
                    std::move(gold))) {
      ++added;
    }
  }
}

struct AnimalVariant {
  const char* verb_past;  // "carried"
  const char* verb;       // "carry"
  const char* subject;    // "dog" / "pet" / "cat"
  const char* subject_pl; // "dogs"
  const char* loc_pred;   // "on" / "in"
  const char* location;   // "grass" / "car"
  const char* aux;        // "are" / "were"
  const char* loc_verb;   // "sitting" / "situated"
};

void GenAnimalReasoning(GenContext* ctx, int quota) {
  static const AnimalVariant kVariants[] = {
      {"carried", "carry", "dog", "dogs", "on", "grass", "are", "sitting"},
      {"carried", "carry", "pet", "pets", "in", "car", "were", "situated"},
      {"chased", "chase", "dog", "dogs", "on", "grass", "are", "sitting"},
      {"chased", "chase", "dog", "dogs", "in", "car", "were", "situated"},
      {"watched", "watch", "cat", "cats", "on", "bed", "are", "sitting"},
      {"chased", "chase", "pet", "pets", "on", "grass", "are", "sitting"},
  };
  int added = 0;
  for (const AnimalVariant& v : kVariants) {
    if (added >= quota) break;
    QueryGraph gold(
        std::string("What kind of animals is ") + v.verb_past + " by the " +
            v.subject_pl + " that " + v.aux + " " + v.loc_verb + " " +
            v.loc_pred + " the " + v.location + "?",
        nlp::QuestionType::kReasoning,
        {MakeSpoc(El(v.subject), v.verb, El("animal", true, true)),
         MakeSpoc(El(v.subject), v.loc_pred, El(v.location), "", 1)},
        {QueryEdge{1, 0, DependencyKind::kS2S}});
    if (ctx->TryAdd(nlp::QuestionType::kReasoning,
                    std::move(gold))) {
      ++added;
    }
  }
}

void GenCompanionMostFrequent(GenContext* ctx, int quota) {
  // "What kind of clothes is worn by the wizard who is most frequently
  // hanging out with {char}?" — top-up pool with the superlative
  // constraint on a named companion.
  int added = 0;
  for (const CharacterProfile& c : ctx->world.characters) {
    if (added >= quota) break;
    if (c.category == "wizard") continue;
    QueryGraph gold(
        "What kind of clothes is worn by the wizard who is most "
        "frequently hanging out with " +
            Spaced(c.name) + "?",
        nlp::QuestionType::kReasoning,
        {MakeSpoc(El("wizard"), "wear", El("clothes", true, true)),
         MakeSpoc(El("wizard"), "hang-out", El(c.name), "most frequently",
                  1)},
        {QueryEdge{1, 0, DependencyKind::kS2S}});
    if (ctx->TryAdd(nlp::QuestionType::kReasoning, std::move(gold))) {
      ++added;
    }
  }
}

void GenThreeClauseReasoning(GenContext* ctx, int quota) {
  // "What kind of clothes are worn by the wizard who is hanging out with
  // the person who is holding the {prop}?"
  static const char* kProps[] = {"phone", "book", "ball", "umbrella"};
  int added = 0;
  for (const char* prop : kProps) {
    if (added >= quota) break;
    QueryGraph gold(
        std::string("What kind of clothes are worn by the wizard who is "
                    "hanging out with the person who is holding the ") +
            prop + "?",
        nlp::QuestionType::kReasoning,
        {MakeSpoc(El("wizard"), "wear", El("clothes", true, true)),
         MakeSpoc(El("wizard"), "hang-out", El("person"), "", 1),
         MakeSpoc(El("person"), "hold", El(prop), "", 2)},
        {QueryEdge{1, 0, DependencyKind::kS2S},
         QueryEdge{2, 1, DependencyKind::kO2S}});
    if (ctx->TryAdd(nlp::QuestionType::kReasoning,
                    std::move(gold))) {
      ++added;
    }
  }
}

// ---------------------------------------------------------------------------
// Counting templates
// ---------------------------------------------------------------------------

void GenCountHangout(GenContext* ctx, int quota) {
  // "How many wizards are hanging out with {char}?"
  int added = 0;
  for (const CharacterProfile& c : ctx->world.characters) {
    if (added >= quota) break;
    if (c.category == "wizard") continue;
    QueryGraph gold(
        "How many wizards are hanging out with " + Spaced(c.name) + "?",
        nlp::QuestionType::kCounting,
        {MakeSpoc(El("wizard", true), "hang-out", El(c.name))}, {});
    if (ctx->TryAdd(nlp::QuestionType::kCounting,
                    std::move(gold))) {
      ++added;
    }
  }
}

void GenCountPersonsWith(GenContext* ctx, int quota) {
  // "How many persons are hanging out with {wizard}?" — top-up pool.
  int added = 0;
  for (const CharacterProfile& c : ctx->world.characters) {
    if (added >= quota) break;
    if (c.category != "wizard") continue;
    QueryGraph gold(
        "How many persons are hanging out with " + Spaced(c.name) + "?",
        nlp::QuestionType::kCounting,
        {MakeSpoc(El("person", true), "hang-out", El(c.name))}, {});
    if (ctx->TryAdd(nlp::QuestionType::kCounting, std::move(gold))) {
      ++added;
    }
  }
}

void GenCountByClothing(GenContext* ctx, const char* counted,
                        const char* wearer, int quota) {
  // "How many {counted}s are hanging out with the {wearer} that is
  // wearing a {clothing}?"
  int added = 0;
  for (const std::string& clothing : ctx->world.vocab.clothing_categories) {
    if (added >= quota) break;
    QueryGraph gold(
        std::string("How many ") + counted + "s are hanging out with the " +
            wearer + " that is wearing a " + clothing + "?",
        nlp::QuestionType::kCounting,
        {MakeSpoc(El(counted, true), "hang-out", El(wearer)),
         MakeSpoc(El(wearer), "wear", El(clothing), "", 1)},
        {QueryEdge{1, 0, DependencyKind::kO2S}});
    if (ctx->TryAdd(nlp::QuestionType::kCounting,
                    std::move(gold))) {
      ++added;
    }
  }
}

void GenCountKinds(GenContext* ctx, int quota) {
  static const AnimalVariant kVariants[] = {
      {"chased", "chase", "dog", "dogs", "on", "grass", "are", "sitting"},
      {"carried", "carry", "dog", "dogs", "in", "car", "were", "situated"},
      {"watched", "watch", "cat", "cats", "on", "bed", "are", "sitting"},
  };
  int added = 0;
  for (const AnimalVariant& v : kVariants) {
    if (added >= quota) break;
    QueryGraph gold(
        std::string("How many kinds of animals are ") + v.verb_past +
            " by the " + v.subject_pl + " that " + v.aux + " " + v.loc_verb +
            " " + v.loc_pred + " the " + v.location + "?",
        nlp::QuestionType::kCounting,
        {MakeSpoc(El(v.subject), v.verb, El("animal", true, true)),
         MakeSpoc(El(v.subject), v.loc_pred, El(v.location), "", 1)},
        {QueryEdge{1, 0, DependencyKind::kS2S}});
    if (ctx->TryAdd(nlp::QuestionType::kCounting,
                    std::move(gold))) {
      ++added;
    }
  }
}

void GenCountThreeClause(GenContext* ctx, int quota) {
  static const char* kProps[] = {"phone", "book", "ball"};
  int added = 0;
  for (const char* prop : kProps) {
    if (added >= quota) break;
    QueryGraph gold(
        std::string("How many kinds of clothes are worn by the wizards "
                    "that are hanging out with the person that is holding "
                    "the ") +
            prop + "?",
        nlp::QuestionType::kCounting,
        {MakeSpoc(El("wizard"), "wear", El("clothes", true, true)),
         MakeSpoc(El("wizard"), "hang-out", El("person"), "", 1),
         MakeSpoc(El("person"), "hold", El(prop), "", 2)},
        {QueryEdge{1, 0, DependencyKind::kS2S},
         QueryEdge{2, 1, DependencyKind::kO2S}});
    if (ctx->TryAdd(nlp::QuestionType::kCounting,
                    std::move(gold))) {
      ++added;
    }
  }
}

// ---------------------------------------------------------------------------
// Judgment templates
// ---------------------------------------------------------------------------

void GenJudgmentPairs(GenContext* ctx, int quota) {
  // "Does a {s} appear {p} a {o}?" — mixes present and absent patterns.
  struct Candidate {
    const char* s;
    const char* p;
    const char* o;
  };
  static const Candidate kCandidates[] = {
      {"cat", "near", "car"},    {"dog", "on", "grass"},
      {"bird", "on", "tree"},    {"car", "near", "tree"},
      {"bear", "on", "tv"},      {"cat", "on", "bed"},
      {"dog", "in", "car"},      {"person", "behind", "fence"},
      {"laptop", "on", "table"}, {"horse", "near", "tv"},
      {"bird", "under", "bed"},  {"cat", "behind", "bus"},
      {"bear", "in", "car"},     {"dog", "on", "tree"},
      {"truck", "near", "bed"},  {"horse", "in", "car"},
      {"kite", "on", "street"},  {"boat", "near", "bench"},
  };
  int added = 0;
  for (const Candidate& c : kCandidates) {
    if (added >= quota) break;
    QueryGraph gold(std::string("Does a ") + c.s + " appear " + c.p +
                        " a " + c.o + "?",
                    nlp::QuestionType::kJudgment,
                    {MakeSpoc(El(c.s), c.p, El(c.o))}, {});
    if (ctx->TryAdd(nlp::QuestionType::kJudgment,
                    std::move(gold))) {
      ++added;
    }
  }
}

void GenJudgmentEmbedded(GenContext* ctx, int quota) {
  // "Does the {s} that is sitting {p1} the {m} appear {p2} the {o}?"
  struct Candidate {
    const char* s;
    const char* p1;
    const char* m;
    const char* p2;
    const char* o;
  };
  static const Candidate kCandidates[] = {
      {"cat", "on", "bed", "near", "car"},
      {"dog", "on", "grass", "near", "person"},
      {"dog", "in", "car", "near", "person"},
      {"cat", "on", "bed", "under", "table"},
      {"bird", "on", "tree", "near", "boat"},
      {"dog", "on", "grass", "in-front-of", "person"},
      {"cat", "near", "car", "on", "bed"},
      {"dog", "on", "grass", "under", "bench"},
      {"horse", "on", "grass", "near", "tv"},
      {"cat", "on", "bed", "behind", "bus"},
      {"dog", "in", "car", "on", "tree"},
      {"bird", "on", "fence", "near", "bed"},
      {"bear", "on", "tv", "near", "tree"},
      {"cat", "under", "table", "near", "car"},
      {"dog", "on", "grass", "near", "tv"},
      {"person", "on", "bench", "near", "car"},
  };
  int added = 0;
  for (const Candidate& c : kCandidates) {
    if (added >= quota) break;
    const std::string p2 =
        std::string(c.p2) == "in-front-of" ? "in front of" : c.p2;
    QueryGraph gold(std::string("Does the ") + c.s + " that is sitting " +
                        c.p1 + " the " + c.m + " appear " + p2 + " the " +
                        c.o + "?",
                    nlp::QuestionType::kJudgment,
                    {MakeSpoc(El(c.s), c.p2, El(c.o)),
                     MakeSpoc(El(c.s), c.p1, El(c.m), "", 1)},
                    {QueryEdge{1, 0, DependencyKind::kS2S}});
    if (ctx->TryAdd(nlp::QuestionType::kJudgment,
                    std::move(gold))) {
      ++added;
    }
  }
}

void GenJudgmentWizard(GenContext* ctx, int quota) {
  // "Does the wizard that is hanging out with {char} wear a {clothing}?"
  int added = 0;
  for (const CharacterProfile& c : ctx->world.characters) {
    if (added >= quota) break;
    if (c.category == "wizard") continue;
    for (const std::string& clothing :
         ctx->world.vocab.clothing_categories) {
      if (added >= quota) break;
      QueryGraph gold(
          "Does the wizard that is hanging out with " + Spaced(c.name) +
              " wear a " + clothing + "?",
          nlp::QuestionType::kJudgment,
          {MakeSpoc(El("wizard"), "wear", El(clothing)),
           MakeSpoc(El("wizard"), "hang-out", El(c.name), "", 1)},
          {QueryEdge{1, 0, DependencyKind::kS2S}});
      if (ctx->TryAdd(nlp::QuestionType::kJudgment,
                      std::move(gold))) {
        ++added;
      }
    }
  }
}

void GenJudgmentThreeClause(GenContext* ctx, int quota) {
  static const char* kProps[] = {"phone", "book", "ball", "umbrella"};
  int added = 0;
  for (const char* prop : kProps) {
    for (const std::string& clothing :
         ctx->world.vocab.clothing_categories) {
      if (added >= quota) return;
      QueryGraph gold(
          std::string("Does the wizard that is hanging out with the "
                      "person that is holding the ") +
              prop + " wear a " + clothing + "?",
          nlp::QuestionType::kJudgment,
          {MakeSpoc(El("wizard"), "wear", El(clothing)),
           MakeSpoc(El("wizard"), "hang-out", El("person"), "", 1),
           MakeSpoc(El("person"), "hold", El(prop), "", 2)},
          {QueryEdge{1, 0, DependencyKind::kS2S},
           QueryEdge{2, 1, DependencyKind::kO2S}});
      if (ctx->TryAdd(nlp::QuestionType::kJudgment,
                      std::move(gold))) {
        ++added;
      }
    }
  }
}

void GenColorQuestions(GenContext* ctx, int quota) {
  // "What is the color of the {clothing} that is worn by {char}?" — the
  // attribute extension (the paper's SS-II example "What's the color of
  // the hat that the man is wearing?", generalized cross-image).
  int added = 0;
  for (const CharacterProfile& c : ctx->world.characters) {
    if (added >= quota) break;
    QueryGraph gold(
        "What is the color of the " + c.clothing + " that is worn by " +
            Spaced(c.name) + "?",
        nlp::QuestionType::kReasoning,
        {MakeSpoc(El(c.clothing), "has-attribute", El("color", true)),
         MakeSpoc(El(c.name), "wear", El(c.clothing), "", 1)},
        {QueryEdge{1, 0, DependencyKind::kS2O}});
    if (ctx->TryAdd(nlp::QuestionType::kReasoning, std::move(gold))) {
      ++added;
    }
  }
}

// ---------------------------------------------------------------------------
// Adversarial (FW-word) variants — Figure 8(a) failure mode.
// ---------------------------------------------------------------------------

void GenAdversarial(GenContext* ctx, int quota) {
  int added = 0;
  auto add = [&](nlp::QuestionType type, QueryGraph gold) {
    if (added >= quota) return;
    if (ctx->TryAdd(type, std::move(gold), /*adversarial=*/true,
                    /*balance_judgment=*/false)) {
      ++added;
    }
  };
  // "canis" (dog) and "equus" (horse) parse as FW; gold semantics use the
  // intended category.
  add(nlp::QuestionType::kJudgment,
      QueryGraph("Does the canis that is sitting on the grass appear near "
                 "the person?",
                 nlp::QuestionType::kJudgment,
                 {MakeSpoc(El("dog"), "near", El("person")),
                  MakeSpoc(El("dog"), "on", El("grass"), "", 1)},
                 {QueryEdge{1, 0, DependencyKind::kS2S}}));
  add(nlp::QuestionType::kJudgment,
      QueryGraph("Does the equus that is sitting on the grass appear near "
                 "the tv?",
                 nlp::QuestionType::kJudgment,
                 {MakeSpoc(El("horse"), "near", El("tv")),
                  MakeSpoc(El("horse"), "on", El("grass"), "", 1)},
                 {QueryEdge{1, 0, DependencyKind::kS2S}}));
  add(nlp::QuestionType::kReasoning,
      QueryGraph("What kind of clothes are worn by the magus who is "
                 "hanging out with dean thomas?",
                 nlp::QuestionType::kReasoning,
                 {MakeSpoc(El("wizard"), "wear", El("clothes", true, true)),
                  MakeSpoc(El("wizard"), "hang-out", El("dean-thomas"), "",
                           1)},
                 {QueryEdge{1, 0, DependencyKind::kS2S}}));
  add(nlp::QuestionType::kReasoning,
      QueryGraph("What kind of animals is carried by the canis that is "
                 "sitting on the grass?",
                 nlp::QuestionType::kReasoning,
                 {MakeSpoc(El("dog"), "carry", El("animal", true, true)),
                  MakeSpoc(El("dog"), "on", El("grass"), "", 1)},
                 {QueryEdge{1, 0, DependencyKind::kS2S}}));
}

}  // namespace

MvqaGenerator::MvqaGenerator(MvqaOptions options)
    : options_(std::move(options)) {}

MvqaDataset MvqaGenerator::Generate() const {
  MvqaDataset ds;
  ds.world = WorldGenerator(options_.world).Generate();
  const text::SynonymLexicon lexicon = text::SynonymLexicon::Default();
  ds.knowledge_graph = BuildKnowledgeGraph(ds.world, lexicon);
  ds.perfect_merged = BuildPerfectMergedGraph(ds.world, ds.knowledge_graph);

  text::EmbeddingModel embeddings(lexicon);
  exec::QueryGraphExecutor executor(&ds.perfect_merged, &embeddings);
  GenContext ctx{ds.world, ds.perfect_merged, executor, {}, {}, 0, 0};

  const int adv = options_.num_adversarial;
  const int adv_reasoning = adv / 2;
  const int adv_judgment = adv - adv_reasoning;
  auto have = [&ctx](nlp::QuestionType type) {
    int n = 0;
    for (const auto& q : ctx.questions) {
      if (q.type == type) ++n;
    }
    return n;
  };
  auto remaining = [&](nlp::QuestionType type, int quota) {
    return std::max(0, quota - have(type));
  };

  // Reasoning (top-up from the large single-clause pool).
  {
    const int quota = options_.num_reasoning - adv_reasoning;
    GenFlagship(&ctx, 8);
    GenCompanionClothes(&ctx, 12);
    GenAnimalReasoning(&ctx, 6);
    GenThreeClauseReasoning(&ctx, 4);
    GenWornBy(&ctx, remaining(nlp::QuestionType::kReasoning, quota));
    GenCompanionMostFrequent(&ctx,
                             remaining(nlp::QuestionType::kReasoning, quota));
  }
  // Counting (top-up from the per-character pool).
  {
    const int quota = options_.num_counting;
    GenCountHangout(&ctx, 4);
    GenCountByClothing(&ctx, "wizard", "person", 4);
    GenCountByClothing(&ctx, "person", "wizard", 4);
    GenCountKinds(&ctx, 2);
    GenCountThreeClause(&ctx, 2);
    GenCountHangout(&ctx, remaining(nlp::QuestionType::kCounting, quota));
    GenCountPersonsWith(&ctx, remaining(nlp::QuestionType::kCounting, quota));
  }
  // Judgment (top-up from the character x clothing pool).
  {
    const int quota = options_.num_judgment - adv_judgment;
    GenJudgmentPairs(&ctx, 10);
    GenJudgmentEmbedded(&ctx, 14);
    GenJudgmentWizard(&ctx, 10);
    GenJudgmentThreeClause(&ctx, 4);
    GenJudgmentWizard(&ctx, remaining(nlp::QuestionType::kJudgment, quota));
  }
  // Adversarial.
  GenAdversarial(&ctx, adv);
  // Optional attribute extension.
  GenColorQuestions(&ctx, options_.num_color);

  ds.questions = std::move(ctx.questions);
  return ds;
}

}  // namespace svqa::data
