#include "data/dataset_stats.h"

#include <set>
#include <sstream>

#include "text/tokenizer.h"

namespace svqa::data {

MvqaStats ComputeMvqaStats(const MvqaDataset& dataset) {
  MvqaStats stats;
  stats.num_images = dataset.world.scenes.size();

  std::set<std::string> all_spos;
  std::set<std::string> spos_by_type[3];
  double image_sums[3] = {};
  std::size_t token_total = 0;

  for (const MvqaQuestion& q : dataset.questions) {
    MvqaTypeStats* t = nullptr;
    int ti = 0;
    switch (q.type) {
      case nlp::QuestionType::kJudgment:
        t = &stats.judgment;
        ti = 0;
        break;
      case nlp::QuestionType::kCounting:
        t = &stats.counting;
        ti = 1;
        break;
      case nlp::QuestionType::kReasoning:
        t = &stats.reasoning;
        ti = 2;
        break;
    }
    ++t->questions;
    t->clauses += q.gold_graph.size();
    stats.total_clauses += q.gold_graph.size();
    image_sums[ti] += static_cast<double>(q.relevant_images);
    token_total += text::Tokenize(q.text).size();
    for (const nlp::Spoc& spoc : q.gold_graph.vertices()) {
      const std::string key =
          spoc.subject.head + "|" + spoc.predicate + "|" + spoc.object.head;
      spos_by_type[ti].insert(key);
      all_spos.insert(key);
    }
  }
  stats.judgment.unique_spos = spos_by_type[0].size();
  stats.counting.unique_spos = spos_by_type[1].size();
  stats.reasoning.unique_spos = spos_by_type[2].size();
  if (stats.judgment.questions > 0) {
    stats.judgment.avg_images =
        image_sums[0] / static_cast<double>(stats.judgment.questions);
  }
  if (stats.counting.questions > 0) {
    stats.counting.avg_images =
        image_sums[1] / static_cast<double>(stats.counting.questions);
  }
  if (stats.reasoning.questions > 0) {
    stats.reasoning.avg_images =
        image_sums[2] / static_cast<double>(stats.reasoning.questions);
  }
  stats.total_questions = dataset.questions.size();
  stats.total_unique_spos = all_spos.size();
  if (!dataset.questions.empty()) {
    stats.avg_query_length = static_cast<double>(token_total) /
                             static_cast<double>(dataset.questions.size());
    stats.avg_clauses = static_cast<double>(stats.total_clauses) /
                        static_cast<double>(dataset.questions.size());
  }
  return stats;
}

std::string FormatMvqaStats(const MvqaStats& stats) {
  std::ostringstream os;
  os << "MVQA: " << stats.num_images << " images, "
     << stats.total_questions << " questions, " << stats.total_clauses
     << " clauses, " << stats.total_unique_spos << " unique SPOs, avg "
     << stats.avg_query_length << " tokens/question, avg "
     << stats.avg_clauses << " clauses/question\n";
  auto row = [&os](const char* name, const MvqaTypeStats& t) {
    os << "  " << name << ": questions=" << t.questions
       << " clauses=" << t.clauses << " SPOs=" << t.unique_spos
       << " avg-images=" << t.avg_images << '\n';
  };
  row("Judgement", stats.judgment);
  row("Counting ", stats.counting);
  row("Reasoning", stats.reasoning);
  return os.str();
}

}  // namespace svqa::data
