#include "storage/wal.h"

#include <utility>

#include "storage/snapshot.h"

namespace svqa::storage {

IngestWal::IngestWal(StorageEnv* env, std::string dir)
    : env_(env), dir_(std::move(dir)) {}

Status IngestWal::Append(uint64_t generation,
                         std::string_view encoded_snapshot) {
  MutexLock lock(&mu_);
  if (broken_) {
    return Status::Internal(
        "wal tail may be torn by a failed append; run recovery "
        "(TruncateThrough) before appending");
  }
  if (file_ == nullptr) {
    SVQA_RETURN_NOT_OK(env_->CreateDirs(dir_));
    auto opened = env_->OpenAppend(path());
    if (!opened.ok()) return opened.status();
    file_ = std::move(*opened);
  }
  std::string payload;
  payload.reserve(8 + encoded_snapshot.size());
  PutU64(generation, &payload);
  payload.append(encoded_snapshot);
  std::string frame;
  frame.reserve(kRecordHeaderBytes + payload.size());
  AppendRecord(kRecWalPublish, payload, &frame);
  Status s = file_->Append(frame);
  if (s.ok()) s = file_->Sync();
  if (!s.ok()) {
    // The frame may be partially on disk; refuse further appends until
    // TruncateThrough rewrites the valid prefix.
    file_.reset();
    broken_ = true;
  }
  return s;
}

Result<IngestWal::ReadResult> IngestWal::ReadAll() const {
  MutexLock lock(&mu_);
  ReadResult result;
  if (!env_->FileExists(path())) return result;
  SVQA_ASSIGN_OR_RETURN(const std::string bytes, env_->ReadFile(path()));
  const RecordScan scan = ScanRecords(bytes);
  result.tail = scan.tail;
  result.tail_detail = scan.tail_detail;
  result.valid_bytes = scan.valid_bytes;
  std::size_t offset = 0;
  for (const Record& rec : scan.records) {
    if (rec.type != kRecWalPublish) {
      // A foreign record type mid-log is damage, not a format upgrade:
      // stop the prefix here.
      result.tail = TailState::kCorrupt;
      result.tail_detail =
          "unexpected record type " + std::to_string(rec.type);
      result.valid_bytes = offset;
      break;
    }
    PayloadReader r(rec.payload);
    auto generation = r.GetU64();
    if (!generation.ok()) {
      result.tail = TailState::kCorrupt;
      result.tail_detail = "wal record too short for a generation";
      result.valid_bytes = offset;
      break;
    }
    PublishRecord p;
    p.generation = *generation;
    p.payload = std::string(r.Rest());
    result.records.push_back(std::move(p));
    offset += kRecordHeaderBytes + rec.payload.size();
  }
  return result;
}

Status IngestWal::TruncateThrough(uint64_t generation) {
  MutexLock lock(&mu_);
  // Rewrite from the valid prefix; close the append handle first so the
  // atomic replace is the only writer.
  file_.reset();
  ReadResult kept;
  if (env_->FileExists(path())) {
    SVQA_ASSIGN_OR_RETURN(const std::string bytes, env_->ReadFile(path()));
    const RecordScan scan = ScanRecords(bytes);
    for (const Record& rec : scan.records) {
      if (rec.type != kRecWalPublish) break;
      PayloadReader r(rec.payload);
      auto gen = r.GetU64();
      if (!gen.ok()) break;
      PublishRecord p;
      p.generation = *gen;
      p.payload = std::string(r.Rest());
      kept.records.push_back(std::move(p));
    }
  }
  std::string out;
  for (const PublishRecord& p : kept.records) {
    if (p.generation <= generation) continue;
    std::string payload;
    payload.reserve(8 + p.payload.size());
    PutU64(p.generation, &payload);
    payload.append(p.payload);
    AppendRecord(kRecWalPublish, payload, &out);
  }
  SVQA_RETURN_NOT_OK(env_->CreateDirs(dir_));
  SVQA_RETURN_NOT_OK(env_->WriteFileAtomic(path(), out));
  broken_ = false;
  return Status::OK();
}

}  // namespace svqa::storage
