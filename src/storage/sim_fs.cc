#include "storage/sim_fs.h"

#include <algorithm>
#include <utility>

#include "util/rng.h"

namespace svqa::storage {

namespace {

/// Deterministic corruption parameters derived from the fault key: the
/// same (policy seed, path, attempt) always yields the same damage, so
/// a failing fuzz case replays exactly.
uint64_t DamageHash(std::string_view key, uint64_t attempt) {
  return HashCombine(StableHash64(key), attempt + 1);
}

class SimWritableFile final : public WritableFile {
 public:
  SimWritableFile(SimFs* fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    return fs_->AppendTo(path_, data, &attempt_);
  }

  Status Sync() override { return fs_->SyncPath(path_); }

  Status Close() override { return Status::OK(); }

 private:
  SimFs* const fs_;
  const std::string path_;
  uint32_t attempt_ = 0;
};

}  // namespace

Status SimFs::OfflineError() const {
  return Status::Internal("simulated storage offline (crashed)");
}

std::size_t SimFs::ConsumeUnits(std::size_t want) {
  if (!crash_armed_) {
    units_written_ += want;
    return want;
  }
  if (crash_budget_ >= want) {
    crash_budget_ -= want;
    units_written_ += want;
    return want;
  }
  // The budget runs out mid-write: tear here and take the device down.
  const std::size_t allowed = static_cast<std::size_t>(crash_budget_);
  units_written_ += allowed;
  crash_budget_ = 0;
  crash_armed_ = false;
  crashed_ = true;
  return allowed;
}

bool SimFs::ConsumeMetaUnit() {
  if (crashed_) return false;
  return ConsumeUnits(1) == 1;
}

void SimFs::RecordBoundary() { op_boundaries_.push_back(units_written_); }

Result<std::string> SimFs::ReadFile(const std::string& path) {
  MutexLock lock(&mu_);
  if (crashed_) return OfflineError();
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("cannot open: " + path);
  std::string copy = it->second.data;
  if (faults_ != nullptr) {
    const std::string key = "read:" + path;
    const auto attempt = static_cast<uint32_t>(read_attempts_++);
    if (!faults_->Probe(FaultSite::kStorageIo, key, attempt).ok() &&
        !copy.empty()) {
      // Silent media corruption: the on-"disk" bytes stay intact, the
      // returned copy is damaged. Readers must catch this via checksums.
      const uint64_t h = DamageHash(key, attempt);
      if ((h & 1u) != 0) {
        copy.resize(h % copy.size());
      } else {
        const uint64_t bit = (h >> 1) % (copy.size() * 8);
        copy[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(copy[bit / 8]) ^ (1u << (bit % 8)));
      }
      ++injected_read_corruptions_;
    }
  }
  return copy;
}

Status SimFs::WriteFileAtomic(const std::string& path,
                              std::string_view data) {
  MutexLock lock(&mu_);
  if (crashed_) return OfflineError();
  // Temp + sync + rename, each step consuming crash-plan units so the
  // matrix can land a crash between any two of them. A torn temp is
  // unsynced, so SimulateCrash erases it and the target keeps its old
  // content — the all-or-nothing contract.
  const std::string tmp = path + ".tmp";
  const std::size_t allowed = ConsumeUnits(data.size());
  FileState& t = files_[tmp];
  t.data.assign(data.data(), allowed);
  t.synced = 0;
  if (allowed < data.size()) return OfflineError();
  if (!ConsumeMetaUnit()) return OfflineError();  // sync
  t.synced = t.data.size();
  if (!ConsumeMetaUnit()) return OfflineError();  // rename
  files_[path] = std::move(t);
  files_.erase(tmp);
  RecordBoundary();
  return Status::OK();
}

Status SimFs::AppendTo(const std::string& path, std::string_view data,
                       uint32_t* attempt_counter) {
  MutexLock lock(&mu_);
  if (crashed_) return OfflineError();
  FileState& f = files_[path];
  if (faults_ != nullptr) {
    const std::string key = "append:" + path;
    const uint32_t attempt = (*attempt_counter)++;
    const Status verdict = faults_->Probe(FaultSite::kStorageIo, key, attempt);
    if (!verdict.ok()) {
      // Torn append: a deterministic prefix lands before the error
      // surfaces (EIO after a partial write). The caller sees the
      // failure; the WAL's recovery contract must absorb the tail.
      const uint64_t h = DamageHash(key, attempt);
      const std::size_t partial =
          ConsumeUnits(static_cast<std::size_t>(h % (data.size() + 1)));
      f.data.append(data.data(), partial);
      ++injected_append_faults_;
      return verdict;
    }
  }
  const std::size_t allowed = ConsumeUnits(data.size());
  f.data.append(data.data(), allowed);
  if (allowed < data.size()) return OfflineError();
  RecordBoundary();
  return Status::OK();
}

Status SimFs::SyncPath(const std::string& path) {
  MutexLock lock(&mu_);
  if (crashed_) return OfflineError();
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("sync: no file " + path);
  if (!ConsumeMetaUnit()) return OfflineError();
  it->second.synced = it->second.data.size();
  RecordBoundary();
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> SimFs::OpenAppend(
    const std::string& path) {
  MutexLock lock(&mu_);
  if (crashed_) return OfflineError();
  files_[path];  // create-if-absent, like fopen("ab")
  return std::unique_ptr<WritableFile>(
      std::make_unique<SimWritableFile>(this, path));
}

bool SimFs::FileExists(const std::string& path) {
  MutexLock lock(&mu_);
  return files_.find(path) != files_.end();
}

Result<std::vector<std::string>> SimFs::ListDir(const std::string& dir) {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  const std::string prefix = dir + "/";
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.rfind(prefix, 0) == 0; ++it) {
    const std::string name = it->first.substr(prefix.size());
    if (name.find('/') == std::string::npos) names.push_back(name);
  }
  return names;  // std::map iteration order is already sorted
}

Status SimFs::CreateDirs(const std::string& dir) {
  MutexLock lock(&mu_);
  if (crashed_) return OfflineError();
  (void)dir;  // directories are implicit
  return Status::OK();
}

Status SimFs::Rename(const std::string& from, const std::string& to) {
  MutexLock lock(&mu_);
  if (crashed_) return OfflineError();
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("rename: no file " + from);
  if (!ConsumeMetaUnit()) return OfflineError();
  files_[to] = std::move(it->second);
  files_.erase(it);
  RecordBoundary();
  return Status::OK();
}

Status SimFs::Remove(const std::string& path) {
  MutexLock lock(&mu_);
  if (crashed_) return OfflineError();
  auto it = files_.find(path);
  if (it == files_.end()) return Status::OK();
  if (!ConsumeMetaUnit()) return OfflineError();
  files_.erase(it);
  RecordBoundary();
  return Status::OK();
}

void SimFs::PlanCrashAfter(uint64_t units) {
  MutexLock lock(&mu_);
  crash_armed_ = true;
  crash_budget_ = units;
}

void SimFs::SimulateCrash() {
  MutexLock lock(&mu_);
  crashed_ = true;
  crash_armed_ = false;
  for (auto& [path, f] : files_) {
    f.data.resize(std::min(f.synced, f.data.size()));
  }
}

void SimFs::Restart() {
  MutexLock lock(&mu_);
  crashed_ = false;
  crash_armed_ = false;
  crash_budget_ = 0;
}

bool SimFs::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

uint64_t SimFs::units_written() const {
  MutexLock lock(&mu_);
  return units_written_;
}

std::vector<uint64_t> SimFs::op_boundaries() const {
  MutexLock lock(&mu_);
  return op_boundaries_;
}

Status SimFs::CorruptFlipBit(const std::string& path, uint64_t bit_index) {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no file " + path);
  std::string& data = it->second.data;
  if (data.empty()) return Status::InvalidArgument("empty file " + path);
  const uint64_t bit = bit_index % (data.size() * 8);
  data[bit / 8] = static_cast<char>(
      static_cast<unsigned char>(data[bit / 8]) ^ (1u << (bit % 8)));
  return Status::OK();
}

Status SimFs::CorruptTruncate(const std::string& path, uint64_t len) {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no file " + path);
  FileState& f = it->second;
  const std::size_t new_len =
      std::min(f.data.size(), static_cast<std::size_t>(len));
  f.data.resize(new_len);
  f.synced = std::min(f.synced, new_len);
  return Status::OK();
}

void SimFs::set_fault_policy(const FaultPolicy* policy) {
  MutexLock lock(&mu_);
  faults_ = policy;
}

uint64_t SimFs::injected_read_corruptions() const {
  MutexLock lock(&mu_);
  return injected_read_corruptions_;
}

uint64_t SimFs::injected_append_faults() const {
  MutexLock lock(&mu_);
  return injected_append_faults_;
}

}  // namespace svqa::storage
