#ifndef SVQA_STORAGE_CRC32_H_
#define SVQA_STORAGE_CRC32_H_

#include <cstdint>
#include <string_view>

namespace svqa::storage {

/// \brief Incremental CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over
/// `data`, continuing from `seed` (pass the previous return value to
/// checksum a byte stream in pieces; 0 starts a fresh checksum).
///
/// Every durable byte this subsystem writes — record frames, snapshot
/// chunks, WAL entries, manifests — is covered by this checksum, so a
/// torn write, truncation, or flipped bit is detected at read time
/// instead of becoming a silently wrong graph.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace svqa::storage

#endif  // SVQA_STORAGE_CRC32_H_
