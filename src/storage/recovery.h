#ifndef SVQA_STORAGE_RECOVERY_H_
#define SVQA_STORAGE_RECOVERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/observability.h"
#include "storage/snapshot.h"
#include "storage/storage_env.h"
#include "storage/wal.h"

namespace svqa::storage {

/// \brief How much durable state a warm start managed to recover. The
/// serving layer surfaces this through exec::Diagnostics so every
/// answer carries the provenance of the graph it was computed on.
enum class RecoveryRung : int {
  /// Fresh directory: no durable state existed. Not a failure — the
  /// process simply starts cold and awaits an Ingest.
  kColdStart = 0,
  /// The newest verified snapshot, with no newer WAL publishes.
  kSnapshotOnly = 1,
  /// A verified snapshot plus replayed WAL publishes beyond it.
  kSnapshotPlusWal = 2,
  /// No usable snapshot; state rebuilt from the WAL alone.
  kWalOnly = 3,
  /// Durable state existed but nothing survived verification: the
  /// process degrades to an empty-graph conservative mode instead of
  /// refusing to start.
  kConservativeEmpty = 4,
};

const char* RecoveryRungName(RecoveryRung rung);

/// \brief What recovery did and what it had to set aside.
struct RecoveryReport {
  RecoveryRung rung = RecoveryRung::kColdStart;
  /// Generation of the adopted state (0 when nothing was adopted).
  uint64_t recovered_generation = 0;
  /// Generation of the verified snapshot used (0 if none).
  uint64_t snapshot_generation = 0;
  /// WAL publishes applied on top of (or instead of) the snapshot.
  uint64_t wal_records_replayed = 0;
  /// WAL publishes skipped because the snapshot already covered them.
  uint64_t wal_records_skipped = 0;
  /// Snapshot files that failed verification and were set aside.
  uint64_t quarantined_snapshots = 0;
  /// Frame-valid WAL records whose payload failed verification.
  uint64_t quarantined_wal_records = 0;
  /// State of the WAL tail as found on startup.
  TailState wal_tail = TailState::kClean;
  /// Human-readable trail of everything unusual recovery encountered.
  std::vector<std::string> notes;
};

/// \brief The outcome: the newest recoverable state (if any) + report.
struct RecoveredState {
  std::optional<SnapshotData> state;
  RecoveryReport report;
};

/// \brief Startup recovery: loads the newest snapshot whose checksums
/// verify, replays the WAL tail, quarantines damage, and never aborts —
/// the worst case is an explicit empty-graph conservative mode.
class RecoveryManager {
 public:
  struct Options {
    /// Rename unverifiable snapshot files to `<name>.quarantined` and
    /// preserve damaged WAL suffix bytes in `wal.quarantined` (instead
    /// of only dropping them).
    bool quarantine = true;
    /// Rewrite the WAL to its valid prefix (minus records covered by
    /// the adopted snapshot) so the log is appendable again.
    bool repair_wal = true;
    /// Pre-registered obs handles (rung counters, WAL replay/repair/
    /// quarantine totals). Not owned; nullptr = no telemetry.
    const obs::StackMetrics* metrics = nullptr;
  };

  RecoveryManager(StorageEnv* env, std::string dir, Options options);
  RecoveryManager(StorageEnv* env, std::string dir)
      : RecoveryManager(env, std::move(dir), Options()) {}

  /// Runs recovery. Infallible by design: I/O errors are noted in the
  /// report and degrade the rung, they do not throw or abort.
  RecoveredState Recover();

 private:
  StorageEnv* const env_;
  const std::string dir_;
  const Options options_;
};

}  // namespace svqa::storage

#endif  // SVQA_STORAGE_RECOVERY_H_
