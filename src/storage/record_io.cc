#include "storage/record_io.h"

#include <algorithm>

#include "storage/crc32.h"

namespace svqa::storage {

namespace {

uint32_t ReadU32At(std::string_view data, std::size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data[pos + i]))
         << (8 * i);
  }
  return v;
}

uint16_t ReadU16At(std::string_view data, std::size_t pos) {
  return static_cast<uint16_t>(
      static_cast<unsigned char>(data[pos]) |
      (static_cast<uint16_t>(static_cast<unsigned char>(data[pos + 1]))
       << 8));
}

}  // namespace

const char* TailStateName(TailState state) {
  switch (state) {
    case TailState::kClean:
      return "clean";
    case TailState::kTorn:
      return "torn";
    case TailState::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

void AppendRecord(uint16_t type, std::string_view payload, std::string* out) {
  out->append(kRecordMagic);
  // Checksummed region: version + type + length, then the payload.
  std::string head;
  head.reserve(8);
  head.push_back(static_cast<char>(kFormatVersion & 0xFFu));
  head.push_back(static_cast<char>((kFormatVersion >> 8) & 0xFFu));
  head.push_back(static_cast<char>(type & 0xFFu));
  head.push_back(static_cast<char>((type >> 8) & 0xFFu));
  PutU32(static_cast<uint32_t>(payload.size()), &head);
  const uint32_t crc = Crc32(payload, Crc32(head));
  out->append(head);
  PutU32(crc, out);
  out->append(payload);
}

RecordScan ScanRecords(std::string_view data) {
  RecordScan scan;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t remaining = data.size() - pos;
    if (remaining < kRecordHeaderBytes) {
      // A short tail that still matches the magic prefix is a tear; a
      // mismatch is corruption.
      const std::size_t n = std::min(remaining, kRecordMagic.size());
      if (data.substr(pos, n) == kRecordMagic.substr(0, n)) {
        scan.tail = TailState::kTorn;
        scan.tail_detail = "stream ends mid-header";
      } else {
        scan.tail = TailState::kCorrupt;
        scan.tail_detail = "trailing bytes are not a record header";
      }
      scan.valid_bytes = pos;
      return scan;
    }
    if (data.substr(pos, 4) != kRecordMagic) {
      scan.tail = TailState::kCorrupt;
      scan.tail_detail = "bad record magic";
      scan.valid_bytes = pos;
      return scan;
    }
    const uint16_t version = ReadU16At(data, pos + 4);
    const uint16_t type = ReadU16At(data, pos + 6);
    const uint32_t len = ReadU32At(data, pos + 8);
    const uint32_t crc = ReadU32At(data, pos + 12);
    if (version != kFormatVersion) {
      scan.tail = TailState::kCorrupt;
      scan.tail_detail =
          "unsupported format version " + std::to_string(version);
      scan.valid_bytes = pos;
      return scan;
    }
    if (len > kMaxPayloadBytes) {
      scan.tail = TailState::kCorrupt;
      scan.tail_detail = "implausible payload length";
      scan.valid_bytes = pos;
      return scan;
    }
    if (remaining - kRecordHeaderBytes < len) {
      // Header intact but the payload was cut off: verify what we can.
      scan.tail = TailState::kTorn;
      scan.tail_detail = "stream ends mid-payload";
      scan.valid_bytes = pos;
      return scan;
    }
    const std::string_view payload =
        data.substr(pos + kRecordHeaderBytes, len);
    const uint32_t expected =
        Crc32(payload, Crc32(data.substr(pos + 4, 8)));
    if (crc != expected) {
      scan.tail = TailState::kCorrupt;
      scan.tail_detail = "checksum mismatch";
      scan.valid_bytes = pos;
      return scan;
    }
    scan.records.push_back(Record{type, std::string(payload)});
    pos += kRecordHeaderBytes + len;
  }
  scan.valid_bytes = pos;
  return scan;
}

Result<uint32_t> PayloadReader::GetU32() {
  if (remaining() < 4) {
    return Status::ParseError("payload truncated reading u32");
  }
  const uint32_t v = ReadU32At(data_, pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> PayloadReader::GetU64() {
  if (remaining() < 8) {
    return Status::ParseError("payload truncated reading u64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::string_view PayloadReader::Rest() {
  const std::string_view s = data_.substr(pos_);
  pos_ = data_.size();
  return s;
}

Result<std::string_view> PayloadReader::GetString() {
  SVQA_ASSIGN_OR_RETURN(const uint32_t len, GetU32());
  if (remaining() < len) {
    return Status::ParseError("payload truncated reading string");
  }
  const std::string_view s = data_.substr(pos_, len);
  pos_ += len;
  return s;
}

}  // namespace svqa::storage
