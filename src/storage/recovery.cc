#include "storage/recovery.h"

#include <algorithm>
#include <map>
#include <utility>

namespace svqa::storage {

// The obs layer pre-registers one counter per rung; it sits below
// storage and cannot include this header, so the mirror constant is
// pinned here instead.
static_assert(static_cast<int>(RecoveryRung::kConservativeEmpty) + 1 ==
                  obs::kNumRecoveryRungs,
              "update obs::kNumRecoveryRungs (and the rung-name table in "
              "observability.cc) when adding a recovery rung");

const char* RecoveryRungName(RecoveryRung rung) {
  switch (rung) {
    case RecoveryRung::kColdStart:
      return "cold-start";
    case RecoveryRung::kSnapshotOnly:
      return "snapshot";
    case RecoveryRung::kSnapshotPlusWal:
      return "snapshot+wal";
    case RecoveryRung::kWalOnly:
      return "wal-only";
    case RecoveryRung::kConservativeEmpty:
      return "conservative-empty";
  }
  return "unknown";
}

RecoveryManager::RecoveryManager(StorageEnv* env, std::string dir,
                                 Options options)
    : env_(env), dir_(std::move(dir)), options_(options) {}

RecoveredState RecoveryManager::Recover() {
  RecoveredState out;
  RecoveryReport& report = out.report;
  bool saw_durable_state = false;

  // Candidate snapshots: manifest entries plus a directory scan. The
  // scan covers a manifest that lags (crash between file publish and
  // manifest rewrite) or failed verification outright.
  std::map<uint64_t, std::string> candidates;  // generation -> filename
  if (Result<std::vector<ManifestEntry>> manifest =
          ReadManifest(env_, dir_);
      manifest.ok()) {
    for (const ManifestEntry& e : *manifest) {
      candidates[e.generation] = e.filename;
    }
  } else {
    report.notes.push_back("manifest unusable: " +
                           manifest.status().ToString());
  }
  if (Result<std::vector<std::string>> names = env_->ListDir(dir_);
      names.ok()) {
    for (const std::string& name : *names) {
      if (std::optional<uint64_t> gen = ParseSnapshotFileName(name)) {
        candidates.emplace(*gen, name);  // manifest entry wins ties
      }
    }
  } else {
    report.notes.push_back("cannot list " + dir_ + ": " +
                           names.status().ToString());
  }
  if (!candidates.empty()) saw_durable_state = true;

  // Newest snapshot whose checksums verify; quarantine the ones that
  // do not instead of giving up.
  SnapshotReader reader(env_);
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    const std::string path = dir_ + "/" + it->second;
    Result<SnapshotData> snap = reader.Read(path);
    if (snap.ok()) {
      if (snap->generation != it->first) {
        report.notes.push_back(it->second +
                               ": generation does not match filename");
      }
      report.snapshot_generation = snap->generation;
      out.state = std::move(*snap);
      break;
    }
    report.notes.push_back(it->second + ": " + snap.status().ToString());
    ++report.quarantined_snapshots;
    if (options_.quarantine) {
      if (Status s = env_->Rename(path, path + ".quarantined"); !s.ok()) {
        report.notes.push_back("quarantine failed: " + s.ToString());
      }
    }
  }

  // WAL tail: apply frame-valid publishes newer than the snapshot.
  IngestWal wal(env_, dir_);
  const bool wal_existed = env_->FileExists(wal.path());
  if (wal_existed) saw_durable_state = true;
  IngestWal::ReadResult log;
  if (Result<IngestWal::ReadResult> read = wal.ReadAll(); read.ok()) {
    log = std::move(*read);
  } else {
    report.notes.push_back("wal unreadable: " + read.status().ToString());
    log.tail = TailState::kCorrupt;
    log.tail_detail = "unreadable";
  }
  report.wal_tail = log.tail;
  if (log.tail != TailState::kClean) {
    report.notes.push_back(std::string("wal tail ") +
                           TailStateName(log.tail) + ": " +
                           log.tail_detail);
  }
  uint64_t adopted_generation =
      out.state.has_value() ? out.state->generation : 0;
  for (IngestWal::PublishRecord& rec : log.records) {
    if (rec.generation <= report.snapshot_generation) {
      ++report.wal_records_skipped;
      continue;
    }
    Result<SnapshotData> decoded = SnapshotReader::Decode(rec.payload);
    if (!decoded.ok()) {
      // Frame checksum passed but the nested payload did not verify:
      // set it aside and keep scanning — later records are framed
      // independently and may be fine.
      ++report.quarantined_wal_records;
      report.notes.push_back(
          "wal generation " + std::to_string(rec.generation) +
          " quarantined: " + decoded.status().ToString());
      continue;
    }
    ++report.wal_records_replayed;
    if (decoded->generation != rec.generation) {
      report.notes.push_back(
          "wal generation " + std::to_string(rec.generation) +
          " payload claims " + std::to_string(decoded->generation));
    }
    if (decoded->generation >= adopted_generation) {
      adopted_generation = decoded->generation;
      out.state = std::move(*decoded);
    }
  }

  // Preserve damaged WAL bytes, then rewrite the log to its valid
  // prefix so the process can append again.
  if (wal_existed && log.tail != TailState::kClean &&
      options_.quarantine) {
    if (Result<std::string> raw = env_->ReadFile(wal.path()); raw.ok() &&
        log.valid_bytes < raw->size()) {
      if (Status s = env_->WriteFileAtomic(
              dir_ + "/wal.quarantined", raw->substr(log.valid_bytes));
          !s.ok()) {
        report.notes.push_back("wal quarantine failed: " + s.ToString());
      }
    }
  }
  bool wal_repaired = false;
  if (wal_existed && options_.repair_wal &&
      (log.tail != TailState::kClean || report.wal_records_skipped > 0)) {
    if (Status s = wal.TruncateThrough(report.snapshot_generation);
        s.ok()) {
      wal_repaired = true;
    } else {
      report.notes.push_back("wal repair failed: " + s.ToString());
    }
  }

  // Classify the rung.
  if (out.state.has_value()) {
    report.recovered_generation = out.state->generation;
    if (report.snapshot_generation != 0) {
      report.rung = report.wal_records_replayed > 0
                        ? RecoveryRung::kSnapshotPlusWal
                        : RecoveryRung::kSnapshotOnly;
    } else {
      report.rung = RecoveryRung::kWalOnly;
    }
  } else {
    report.rung = saw_durable_state ? RecoveryRung::kConservativeEmpty
                                    : RecoveryRung::kColdStart;
  }

  if (const obs::StackMetrics* m = options_.metrics) {
    m->recovery_rungs[static_cast<int>(report.rung)]->Incr();
    m->wal_replayed->Incr(report.wal_records_replayed);
    m->wal_quarantined->Incr(report.quarantined_wal_records);
    if (wal_repaired) m->wal_repaired->Incr();
  }
  return out;
}

}  // namespace svqa::storage
