#include "storage/storage_env.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

namespace svqa::storage {

namespace {

namespace fs = std::filesystem;

std::string ErrnoString() { return std::strerror(errno); }

/// Buffered stdio writer with an explicit fsync barrier.
class FsWritableFile final : public WritableFile {
 public:
  FsWritableFile(std::FILE* f, std::string path)
      : f_(f), path_(std::move(path)) {}

  ~FsWritableFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Append(std::string_view data) override {
    if (f_ == nullptr) return Status::Internal("append on closed file");
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return Status::Internal("write failed: " + path_ + ": " +
                              ErrnoString());
    }
    return Status::OK();
  }

  Status Sync() override {
    if (f_ == nullptr) return Status::Internal("sync on closed file");
    if (std::fflush(f_) != 0) {
      return Status::Internal("flush failed: " + path_ + ": " +
                              ErrnoString());
    }
    if (::fsync(fileno(f_)) != 0) {
      return Status::Internal("fsync failed: " + path_ + ": " +
                              ErrnoString());
    }
    return Status::OK();
  }

  Status Close() override {
    if (f_ == nullptr) return Status::OK();
    const int rc = std::fclose(f_);
    f_ = nullptr;
    if (rc != 0) {
      return Status::Internal("close failed: " + path_ + ": " +
                              ErrnoString());
    }
    return Status::OK();
  }

 private:
  std::FILE* f_;
  const std::string path_;
};

}  // namespace

Result<std::string> FsEnv::ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open: " + path + ": " + ErrnoString());
  }
  std::string out;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::Internal("read failed: " + path);
  }
  return out;
}

Status FsEnv::WriteFileAtomic(const std::string& path,
                              std::string_view data) {
  // Temp lives next to the target so the rename stays within one
  // filesystem (and therefore atomic).
  const std::string tmp = path + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      return Status::InvalidArgument("cannot open for writing: " + tmp +
                                     ": " + ErrnoString());
    }
    FsWritableFile out(f, tmp);
    Status s = out.Append(data);
    if (s.ok()) s = out.Sync();
    Status close = out.Close();
    if (s.ok()) s = close;
    if (!s.ok()) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return s;
    }
  }
  return Rename(tmp, path);
}

Result<std::unique_ptr<WritableFile>> FsEnv::OpenAppend(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for append: " + path + ": " +
                                   ErrnoString());
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FsWritableFile>(f, path));
}

bool FsEnv::FileExists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

Result<std::vector<std::string>> FsEnv::ListDir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return names;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) {
      names.push_back(entry.path().filename().string());
    }
  }
  if (ec) {
    return Status::Internal("cannot list " + dir + ": " + ec.message());
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status FsEnv::CreateDirs(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create " + dir + ": " + ec.message());
  }
  return Status::OK();
}

Status FsEnv::Rename(const std::string& from, const std::string& to) {
  // std::rename is atomic-replace on POSIX.
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::Internal("rename " + from + " -> " + to + ": " +
                            ErrnoString());
  }
  return Status::OK();
}

Status FsEnv::Remove(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) {
    return Status::Internal("cannot remove " + path + ": " + ec.message());
  }
  return Status::OK();
}

StorageEnv& DefaultEnv() {
  static FsEnv* env = new FsEnv();
  return *env;
}

}  // namespace svqa::storage
