#ifndef SVQA_STORAGE_SIM_FS_H_
#define SVQA_STORAGE_SIM_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/storage_env.h"
#include "util/annotations.h"
#include "util/fault_injector.h"
#include "util/mutex.h"

namespace svqa::storage {

/// \brief Deterministic in-memory StorageEnv for crash and corruption
/// testing.
///
/// Three failure models, all reproducible from explicit inputs:
///
///  1. **Crash points** (`PlanCrashAfter`): every content byte written
///     and every metadata operation (sync, rename, remove) consumes one
///     *write unit* from a budget. When the budget runs out mid-write
///     the write is torn at exactly that byte and the device goes
///     offline — every later mutation fails with kInternal. The
///     crash-point matrix sweeps this budget over every interesting
///     offset of a run.
///  2. **Unsynced loss** (`SimulateCrash`): models the kernel page
///     cache. Appended bytes are volatile until `Sync`; SimulateCrash
///     truncates every file back to its synced prefix, exactly what a
///     power cut does to un-fsynced data. `Restart` then brings the
///     device back online for the recovery run.
///  3. **Fault injection** (`set_fault_policy`): consults the seeded
///     policy at FaultSite::kStorageIo before reads and appends. An
///     injected read verdict deterministically corrupts the returned
///     copy (bit flip or truncation, derived from the key hash —
///     on-disk bytes stay intact); an injected append verdict tears
///     the append partway and surfaces the error.
///
/// Paths are plain strings; directories exist implicitly ("db/x" is
/// under directory "db"). Thread-safety: all operations lock one
/// internal mutex, and op-boundary bookkeeping is deterministic for a
/// single-threaded writer (the crash matrix's setup).
class SimFs final : public StorageEnv {
 public:
  SimFs() = default;

  // --- StorageEnv -----------------------------------------------------
  Result<std::string> ReadFile(const std::string& path) override
      SVQA_EXCLUDES(mu_);
  Status WriteFileAtomic(const std::string& path,
                         std::string_view data) override SVQA_EXCLUDES(mu_);
  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override SVQA_EXCLUDES(mu_);
  bool FileExists(const std::string& path) override SVQA_EXCLUDES(mu_);
  Result<std::vector<std::string>> ListDir(const std::string& dir) override
      SVQA_EXCLUDES(mu_);
  Status CreateDirs(const std::string& dir) override SVQA_EXCLUDES(mu_);
  Status Rename(const std::string& from, const std::string& to) override
      SVQA_EXCLUDES(mu_);
  Status Remove(const std::string& path) override SVQA_EXCLUDES(mu_);

  // --- crash planning -------------------------------------------------

  /// Arms the crash plan: after `units` further write units the device
  /// tears the in-flight write and goes offline. Pass the unit counts
  /// recorded by a clean run (see `units_written` / `op_boundaries`) to
  /// hit every record boundary.
  void PlanCrashAfter(uint64_t units) SVQA_EXCLUDES(mu_);

  /// "Power cut": drops every unsynced byte (files shrink back to their
  /// synced prefix) and leaves the device offline.
  void SimulateCrash() SVQA_EXCLUDES(mu_);

  /// "Process restart": device back online, crash plan disarmed. File
  /// contents are whatever survived.
  void Restart() SVQA_EXCLUDES(mu_);

  /// True once a planned crash has fired or SimulateCrash ran.
  bool crashed() const SVQA_EXCLUDES(mu_);

  /// Total write units consumed so far (content bytes + metadata ops).
  uint64_t units_written() const SVQA_EXCLUDES(mu_);

  /// Unit counter value after each completed storage operation of the
  /// run so far — the natural crash points a matrix test sweeps.
  std::vector<uint64_t> op_boundaries() const SVQA_EXCLUDES(mu_);

  // --- corruption (for fuzz tests) -----------------------------------

  /// Flips one bit of `path` (bit index modulo file size); no-op
  /// error if the file is missing or empty.
  Status CorruptFlipBit(const std::string& path, uint64_t bit_index)
      SVQA_EXCLUDES(mu_);

  /// Truncates `path` to `len` bytes (clamped to the current size).
  Status CorruptTruncate(const std::string& path, uint64_t len)
      SVQA_EXCLUDES(mu_);

  // --- fault injection ------------------------------------------------

  /// Probes `policy` at FaultSite::kStorageIo before reads and appends;
  /// nullptr (default) disables injection. Not owned.
  void set_fault_policy(const FaultPolicy* policy) SVQA_EXCLUDES(mu_);

  /// Reads whose returned copy was deterministically corrupted by the
  /// fault policy.
  uint64_t injected_read_corruptions() const SVQA_EXCLUDES(mu_);
  /// Appends torn by the fault policy.
  uint64_t injected_append_faults() const SVQA_EXCLUDES(mu_);

  // Append path used by the WritableFile handles OpenAppend returns.
  // Public only for those handles; callers should go through OpenAppend.
  Status AppendTo(const std::string& path, std::string_view data,
                  uint32_t* attempt_counter) SVQA_EXCLUDES(mu_);
  Status SyncPath(const std::string& path) SVQA_EXCLUDES(mu_);

 private:
  struct FileState {
    std::string data;
    /// Bytes guaranteed to survive SimulateCrash.
    std::size_t synced = 0;
  };

  /// Consumes write units for `want` content bytes; returns how many
  /// may actually be written (fewer when the crash budget runs out,
  /// which also marks the device crashed).
  std::size_t ConsumeUnits(std::size_t want) SVQA_REQUIRES(mu_);
  /// Consumes one metadata unit; false when the crash fires instead.
  bool ConsumeMetaUnit() SVQA_REQUIRES(mu_);
  void RecordBoundary() SVQA_REQUIRES(mu_);
  Status OfflineError() const SVQA_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, FileState> files_ SVQA_GUARDED_BY(mu_);
  bool crashed_ SVQA_GUARDED_BY(mu_) = false;
  bool crash_armed_ SVQA_GUARDED_BY(mu_) = false;
  uint64_t crash_budget_ SVQA_GUARDED_BY(mu_) = 0;
  uint64_t units_written_ SVQA_GUARDED_BY(mu_) = 0;
  std::vector<uint64_t> op_boundaries_ SVQA_GUARDED_BY(mu_);
  const FaultPolicy* faults_ SVQA_GUARDED_BY(mu_) = nullptr;
  uint64_t read_attempts_ SVQA_GUARDED_BY(mu_) = 0;
  uint64_t injected_read_corruptions_ SVQA_GUARDED_BY(mu_) = 0;
  uint64_t injected_append_faults_ SVQA_GUARDED_BY(mu_) = 0;
};

}  // namespace svqa::storage

#endif  // SVQA_STORAGE_SIM_FS_H_
