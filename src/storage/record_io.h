#ifndef SVQA_STORAGE_RECORD_IO_H_
#define SVQA_STORAGE_RECORD_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace svqa::storage {

/// \brief Versioned, CRC-checksummed record framing shared by snapshot
/// files, the ingest WAL, and the manifest.
///
/// Wire layout (all integers little-endian):
///
///     offset  size  field
///     0       4     magic "SVQR"
///     4       2     format version (kFormatVersion)
///     6       2     record type (application-defined)
///     8       4     payload length
///     12      4     CRC-32 over bytes [4, 12) + payload
///     16      n     payload
///
/// The checksum covers the header fields after the magic plus the whole
/// payload, so a flipped bit anywhere in a record — header or body — is
/// detected. A stream of records is self-delimiting: readers walk
/// frame-by-frame and classify the tail (see TailState).

inline constexpr std::string_view kRecordMagic = "SVQR";
inline constexpr uint16_t kFormatVersion = 1;
inline constexpr std::size_t kRecordHeaderBytes = 16;
/// Upper bound on one payload; a length field above this is corruption,
/// not a huge record.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 28;

/// \brief One decoded record.
struct Record {
  uint16_t type = 0;
  std::string payload;
};

/// \brief How the byte stream after the last whole record looked.
enum class TailState : int {
  /// The stream ended exactly at a record boundary.
  kClean = 0,
  /// The stream ended mid-record but everything up to the tear was
  /// intact — the expected shape after a crash during an append.
  kTorn = 1,
  /// A record failed its checksum / magic / sanity checks: bit rot or
  /// an overwrite, not a simple tear.
  kCorrupt = 2,
};

const char* TailStateName(TailState state);

/// \brief Result of scanning a record stream: the valid prefix plus the
/// tail classification. Scanning never fails — damage is reported, not
/// thrown — so callers can always act on the longest trustworthy prefix.
struct RecordScan {
  std::vector<Record> records;
  TailState tail = TailState::kClean;
  /// Byte offset where the valid prefix ends (== input size iff kClean).
  std::size_t valid_bytes = 0;
  /// Human-readable reason when tail != kClean.
  std::string tail_detail;
};

/// Appends one framed record to `out`.
void AppendRecord(uint16_t type, std::string_view payload, std::string* out);

/// Scans `data` as a record stream (see RecordScan).
RecordScan ScanRecords(std::string_view data);

/// \brief Little-endian primitive append/parse helpers for payloads.
void PutU32(uint32_t v, std::string* out);
void PutU64(uint64_t v, std::string* out);
/// Length-prefixed string.
void PutString(std::string_view s, std::string* out);

/// \brief Bounds-checked payload reader; every Get reports corruption
/// as a ParseError instead of reading out of range.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  SVQA_NODISCARD Result<uint32_t> GetU32();
  SVQA_NODISCARD Result<uint64_t> GetU64();
  SVQA_NODISCARD Result<std::string_view> GetString();
  /// Consumes and returns everything left (for nested byte streams).
  std::string_view Rest();

  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace svqa::storage

#endif  // SVQA_STORAGE_RECORD_IO_H_
