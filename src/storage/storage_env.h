#ifndef SVQA_STORAGE_STORAGE_ENV_H_
#define SVQA_STORAGE_STORAGE_ENV_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace svqa::storage {

/// \brief An open append-only file handle.
///
/// `Append` buffers; data is guaranteed durable only after `Sync`
/// returns OK (the crash model drops every unsynced byte). `Close`
/// flushes but does NOT sync — a WAL that needs durability must Sync
/// before acknowledging.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  SVQA_NODISCARD virtual Status Append(std::string_view data) = 0;
  /// Durability barrier: everything appended so far survives a crash.
  SVQA_NODISCARD virtual Status Sync() = 0;
  SVQA_NODISCARD virtual Status Close() = 0;
};

/// \brief The storage abstraction every durable byte goes through.
///
/// Two implementations: `FsEnv` (the real filesystem) and `SimFs` (a
/// deterministic in-memory filesystem with crash points and fault
/// injection — see storage/sim_fs.h). Code above this layer never opens
/// a file directly; the svqa_lint `durable-io` rule bans raw
/// `std::ofstream`/`std::fopen` outside src/storage so torn,
/// non-atomic writes cannot creep back in.
///
/// Durability contract:
///  - `WriteFileAtomic` publishes all-or-nothing: readers see the old
///    content or the complete new content, never a prefix. (Implemented
///    as write-temp + sync + atomic rename.)
///  - `OpenAppend` + `Sync` is the WAL primitive: appended bytes are
///    durable once Sync returns.
///  - `Rename` over an existing target replaces it atomically.
///
/// Thread-safety: implementations are safe for concurrent calls on
/// distinct paths; callers serialize writes to one path themselves.
class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  SVQA_NODISCARD virtual Result<std::string> ReadFile(
      const std::string& path) = 0;

  /// Writes `data` to `path` all-or-nothing (temp + sync + rename).
  SVQA_NODISCARD virtual Status WriteFileAtomic(const std::string& path,
                                                std::string_view data) = 0;

  /// Opens `path` for appending, creating it if absent.
  SVQA_NODISCARD virtual Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) = 0;

  SVQA_NODISCARD virtual bool FileExists(const std::string& path) = 0;

  /// Regular-file names directly under `dir`, lexicographically sorted.
  /// An absent directory reads as empty, not as an error.
  SVQA_NODISCARD virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  /// Creates `dir` and any missing parents; OK if already present.
  SVQA_NODISCARD virtual Status CreateDirs(const std::string& dir) = 0;

  /// Atomically renames `from` to `to`, replacing any existing `to`.
  SVQA_NODISCARD virtual Status Rename(const std::string& from,
                                       const std::string& to) = 0;

  /// Removes `path`; OK if it does not exist.
  SVQA_NODISCARD virtual Status Remove(const std::string& path) = 0;
};

/// \brief Real-filesystem StorageEnv (fopen/fwrite/fsync/rename).
class FsEnv final : public StorageEnv {
 public:
  FsEnv() = default;

  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFileAtomic(const std::string& path,
                         std::string_view data) override;
  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDirs(const std::string& dir) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
};

/// The process-wide real-filesystem environment.
StorageEnv& DefaultEnv();

}  // namespace svqa::storage

#endif  // SVQA_STORAGE_STORAGE_ENV_H_
