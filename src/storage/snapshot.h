#ifndef SVQA_STORAGE_SNAPSHOT_H_
#define SVQA_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/record_io.h"
#include "storage/storage_env.h"
#include "util/result.h"

namespace svqa::storage {

/// Record types used by snapshot files, the WAL, and the manifest.
/// Values are wire format — never renumber, only append.
inline constexpr uint16_t kRecSnapshotHeader = 1;
inline constexpr uint16_t kRecSymbolChunk = 2;
inline constexpr uint16_t kRecVertexChunk = 3;
inline constexpr uint16_t kRecEdgeChunk = 4;
inline constexpr uint16_t kRecSnapshotFooter = 5;
inline constexpr uint16_t kRecWalPublish = 6;
inline constexpr uint16_t kRecManifestEntry = 7;
inline constexpr uint16_t kRecManifestFooter = 8;

/// Items per symbol/vertex/edge chunk record. Small enough that a real
/// graph spans many records — giving the crash-point matrix many
/// interesting boundaries — without measurable framing overhead.
inline constexpr std::size_t kSnapshotChunkItems = 256;

/// \brief A storage-layer view of one published graph generation.
///
/// Deliberately graph-agnostic (plain strings and ids): the storage
/// layer sits *below* src/graph in the layer DAG so that graph
/// serialization itself can route through StorageEnv. The converters
/// between this and graph::Graph / aggregator::MergedGraph live in
/// aggregator/snapshot_codec.h.
struct SnapshotVertex {
  std::string label;
  std::string category;
  int32_t source_image = -1;
};

struct SnapshotEdge {
  uint32_t src = 0;
  uint32_t dst = 0;
  std::string label;
};

struct SnapshotData {
  /// Durable generation number (monotonic across process restarts).
  uint64_t generation = 0;
  /// MergedGraph bookkeeping carried through recovery.
  uint64_t kg_vertex_count = 0;
  uint64_t entity_links = 0;
  uint64_t concept_links = 0;
  /// SymbolTable contents in id order (id i == symbols[i]), so interned
  /// ids stay stable across a restart.
  std::vector<std::string> symbols;
  /// Vertices in id order; edges in Graph::AllEdges order, so replaying
  /// AddVertex/AddEdge reproduces the graph byte-for-byte.
  std::vector<SnapshotVertex> vertices;
  std::vector<SnapshotEdge> edges;
};

/// "snapshot-%012llu.sgs" for `generation`.
std::string SnapshotFileName(uint64_t generation);
/// Inverse of SnapshotFileName; nullopt for anything else.
std::optional<uint64_t> ParseSnapshotFileName(std::string_view name);

/// Serializes `data` as a record stream: header, chunked symbol /
/// vertex / edge records, and a footer echoing the counts. The footer
/// is what makes truncation at a record boundary detectable — a
/// snapshot without a verified footer never loads.
std::string EncodeSnapshot(const SnapshotData& data);

/// \brief Writes snapshot files + manifest under one directory.
///
/// Publish protocol: encode → WriteFileAtomic the snapshot file →
/// atomically rewrite MANIFEST → prune generations beyond `keep`. A
/// crash between any two steps leaves the previous generation fully
/// loadable (recovery falls back to a directory scan when the manifest
/// lags or is damaged).
class SnapshotWriter {
 public:
  struct Options {
    /// Newest generations retained on disk; older files are pruned.
    std::size_t keep = 3;
  };

  SnapshotWriter(StorageEnv* env, std::string dir, Options options);
  SnapshotWriter(StorageEnv* env, std::string dir)
      : SnapshotWriter(env, std::move(dir), Options()) {}

  /// Persists `data`; returns the snapshot's filename.
  SVQA_NODISCARD Result<std::string> Write(const SnapshotData& data);

  /// Same, for a stream already produced by EncodeSnapshot (the WAL
  /// path reuses its logged bytes instead of re-encoding).
  SVQA_NODISCARD Result<std::string> WriteEncoded(uint64_t generation,
                                                  std::string_view encoded);

 private:
  StorageEnv* const env_;
  const std::string dir_;
  const Options options_;
};

/// \brief Verifying reader for snapshot files.
class SnapshotReader {
 public:
  explicit SnapshotReader(StorageEnv* env) : env_(env) {}

  /// Decodes a snapshot byte stream. Any damage — bad checksum, torn
  /// tail, missing footer, count mismatch — is a ParseError; a decoded
  /// snapshot is complete and verified, never partial.
  static Result<SnapshotData> Decode(std::string_view bytes);

  /// Reads and decodes `path`.
  SVQA_NODISCARD Result<SnapshotData> Read(const std::string& path) const;

 private:
  StorageEnv* const env_;
};

/// \brief One manifest line: a generation and its snapshot file.
struct ManifestEntry {
  uint64_t generation = 0;
  std::string filename;
};

inline constexpr const char* kManifestName = "MANIFEST";

/// Reads `dir`/MANIFEST. A missing manifest is an empty list; a damaged
/// one is a ParseError (recovery then scans the directory instead).
Result<std::vector<ManifestEntry>> ReadManifest(StorageEnv* env,
                                                const std::string& dir);

/// Atomically rewrites `dir`/MANIFEST.
Status WriteManifest(StorageEnv* env, const std::string& dir,
                     const std::vector<ManifestEntry>& entries);

}  // namespace svqa::storage

#endif  // SVQA_STORAGE_SNAPSHOT_H_
