#ifndef SVQA_STORAGE_WAL_H_
#define SVQA_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/record_io.h"
#include "storage/storage_env.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace svqa::storage {

inline constexpr const char* kWalFileName = "wal.log";

/// \brief Append-only write-ahead log of graph publishes.
///
/// `SvqaEngine::Ingest` (and every durable `GraphSnapshotStore::Publish`)
/// appends a publish record — the generation number plus the encoded
/// snapshot of the new state — and syncs *before* the in-memory store
/// mutates. A crash at any point therefore loses at most un-acknowledged
/// publishes: whatever the WAL's valid prefix holds is exactly a prefix
/// of ingest history.
///
/// Replay contract (see RecoveryManager): read the valid prefix, apply
/// records with generation beyond the newest verified snapshot, ignore
/// the torn/corrupt tail. `TruncateThrough` rewrites the log after a
/// snapshot makes its prefix redundant — which also repairs any torn
/// tail left by a crashed append.
class IngestWal {
 public:
  IngestWal(StorageEnv* env, std::string dir);

  /// One replayable publish: the generation and its encoded snapshot.
  struct PublishRecord {
    uint64_t generation = 0;
    std::string payload;
  };

  /// Valid-prefix read result; `tail` describes what (if anything)
  /// followed the prefix. Reading never fails on damage — only on
  /// environment errors (an unreadable device).
  struct ReadResult {
    std::vector<PublishRecord> records;
    TailState tail = TailState::kClean;
    std::string tail_detail;
    /// Byte offset where the valid prefix ends (== file size iff clean).
    std::size_t valid_bytes = 0;
  };

  /// Appends + syncs one publish record; durable once this returns OK.
  /// After a failed append the log is marked broken (the tail may be
  /// torn) and further appends are refused until `TruncateThrough`
  /// repairs it.
  SVQA_NODISCARD Status Append(uint64_t generation,
                               std::string_view encoded_snapshot)
      SVQA_EXCLUDES(mu_);

  SVQA_NODISCARD Result<ReadResult> ReadAll() const SVQA_EXCLUDES(mu_);

  /// Atomically rewrites the log keeping only valid records with
  /// generation > `generation`; drops any torn/corrupt tail and clears
  /// the broken flag.
  SVQA_NODISCARD Status TruncateThrough(uint64_t generation)
      SVQA_EXCLUDES(mu_);

  std::string path() const { return dir_ + "/" + kWalFileName; }

 private:
  StorageEnv* const env_;
  const std::string dir_;
  mutable Mutex mu_;
  /// Kept open across appends; dropped on failure so repair can rewrite.
  std::unique_ptr<WritableFile> file_ SVQA_GUARDED_BY(mu_);
  bool broken_ SVQA_GUARDED_BY(mu_) = false;
};

}  // namespace svqa::storage

#endif  // SVQA_STORAGE_WAL_H_
