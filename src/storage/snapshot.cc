#include "storage/snapshot.h"

#include <algorithm>
#include <charconv>
#include <utility>

namespace svqa::storage {

namespace {

constexpr std::string_view kSnapshotPrefix = "snapshot-";
constexpr std::string_view kSnapshotSuffix = ".sgs";

Status FooterMismatch(const std::string& what) {
  return Status::ParseError("snapshot footer mismatch: " + what);
}

}  // namespace

std::string SnapshotFileName(uint64_t generation) {
  std::string digits = std::to_string(generation);
  std::string name(kSnapshotPrefix);
  name.append(digits.size() < 12 ? 12 - digits.size() : 0, '0');
  name += digits;
  name += kSnapshotSuffix;
  return name;
}

std::optional<uint64_t> ParseSnapshotFileName(std::string_view name) {
  if (name.size() <= kSnapshotPrefix.size() + kSnapshotSuffix.size() ||
      name.substr(0, kSnapshotPrefix.size()) != kSnapshotPrefix ||
      name.substr(name.size() - kSnapshotSuffix.size()) != kSnapshotSuffix) {
    return std::nullopt;
  }
  const std::string_view digits = name.substr(
      kSnapshotPrefix.size(),
      name.size() - kSnapshotPrefix.size() - kSnapshotSuffix.size());
  uint64_t generation = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(),
                      generation);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) {
    return std::nullopt;
  }
  return generation;
}

std::string EncodeSnapshot(const SnapshotData& data) {
  std::string out;
  {
    std::string payload;
    PutU64(data.generation, &payload);
    PutU64(data.kg_vertex_count, &payload);
    PutU64(data.entity_links, &payload);
    PutU64(data.concept_links, &payload);
    PutU64(data.symbols.size(), &payload);
    PutU64(data.vertices.size(), &payload);
    PutU64(data.edges.size(), &payload);
    AppendRecord(kRecSnapshotHeader, payload, &out);
  }
  for (std::size_t i = 0; i < data.symbols.size();
       i += kSnapshotChunkItems) {
    const std::size_t n =
        std::min(kSnapshotChunkItems, data.symbols.size() - i);
    std::string payload;
    PutU32(static_cast<uint32_t>(n), &payload);
    for (std::size_t j = i; j < i + n; ++j) {
      PutString(data.symbols[j], &payload);
    }
    AppendRecord(kRecSymbolChunk, payload, &out);
  }
  for (std::size_t i = 0; i < data.vertices.size();
       i += kSnapshotChunkItems) {
    const std::size_t n =
        std::min(kSnapshotChunkItems, data.vertices.size() - i);
    std::string payload;
    PutU32(static_cast<uint32_t>(n), &payload);
    for (std::size_t j = i; j < i + n; ++j) {
      const SnapshotVertex& v = data.vertices[j];
      PutString(v.label, &payload);
      PutString(v.category, &payload);
      PutU32(static_cast<uint32_t>(v.source_image), &payload);
    }
    AppendRecord(kRecVertexChunk, payload, &out);
  }
  for (std::size_t i = 0; i < data.edges.size(); i += kSnapshotChunkItems) {
    const std::size_t n =
        std::min(kSnapshotChunkItems, data.edges.size() - i);
    std::string payload;
    PutU32(static_cast<uint32_t>(n), &payload);
    for (std::size_t j = i; j < i + n; ++j) {
      const SnapshotEdge& e = data.edges[j];
      PutU32(e.src, &payload);
      PutU32(e.dst, &payload);
      PutString(e.label, &payload);
    }
    AppendRecord(kRecEdgeChunk, payload, &out);
  }
  {
    std::string payload;
    PutU64(data.generation, &payload);
    PutU64(data.symbols.size(), &payload);
    PutU64(data.vertices.size(), &payload);
    PutU64(data.edges.size(), &payload);
    AppendRecord(kRecSnapshotFooter, payload, &out);
  }
  return out;
}

Result<SnapshotData> SnapshotReader::Decode(std::string_view bytes) {
  const RecordScan scan = ScanRecords(bytes);
  if (scan.tail != TailState::kClean) {
    return Status::ParseError(std::string("snapshot stream ") +
                              TailStateName(scan.tail) + ": " +
                              scan.tail_detail);
  }
  if (scan.records.empty()) {
    return Status::ParseError("snapshot stream is empty");
  }
  if (scan.records.front().type != kRecSnapshotHeader) {
    return Status::ParseError("snapshot does not start with a header");
  }
  SnapshotData data;
  uint64_t want_symbols = 0;
  uint64_t want_vertices = 0;
  uint64_t want_edges = 0;
  {
    PayloadReader r(scan.records.front().payload);
    SVQA_ASSIGN_OR_RETURN(data.generation, r.GetU64());
    SVQA_ASSIGN_OR_RETURN(data.kg_vertex_count, r.GetU64());
    SVQA_ASSIGN_OR_RETURN(data.entity_links, r.GetU64());
    SVQA_ASSIGN_OR_RETURN(data.concept_links, r.GetU64());
    SVQA_ASSIGN_OR_RETURN(want_symbols, r.GetU64());
    SVQA_ASSIGN_OR_RETURN(want_vertices, r.GetU64());
    SVQA_ASSIGN_OR_RETURN(want_edges, r.GetU64());
  }
  bool saw_footer = false;
  for (std::size_t i = 1; i < scan.records.size(); ++i) {
    const Record& rec = scan.records[i];
    if (saw_footer) {
      return Status::ParseError("records after snapshot footer");
    }
    PayloadReader r(rec.payload);
    switch (rec.type) {
      case kRecSymbolChunk: {
        SVQA_ASSIGN_OR_RETURN(const uint32_t n, r.GetU32());
        for (uint32_t j = 0; j < n; ++j) {
          SVQA_ASSIGN_OR_RETURN(const std::string_view s, r.GetString());
          data.symbols.emplace_back(s);
        }
        break;
      }
      case kRecVertexChunk: {
        SVQA_ASSIGN_OR_RETURN(const uint32_t n, r.GetU32());
        for (uint32_t j = 0; j < n; ++j) {
          SnapshotVertex v;
          SVQA_ASSIGN_OR_RETURN(const std::string_view label, r.GetString());
          SVQA_ASSIGN_OR_RETURN(const std::string_view category,
                                r.GetString());
          SVQA_ASSIGN_OR_RETURN(const uint32_t src_img, r.GetU32());
          v.label = std::string(label);
          v.category = std::string(category);
          v.source_image = static_cast<int32_t>(src_img);
          data.vertices.push_back(std::move(v));
        }
        break;
      }
      case kRecEdgeChunk: {
        SVQA_ASSIGN_OR_RETURN(const uint32_t n, r.GetU32());
        for (uint32_t j = 0; j < n; ++j) {
          SnapshotEdge e;
          SVQA_ASSIGN_OR_RETURN(e.src, r.GetU32());
          SVQA_ASSIGN_OR_RETURN(e.dst, r.GetU32());
          SVQA_ASSIGN_OR_RETURN(const std::string_view label, r.GetString());
          e.label = std::string(label);
          data.edges.push_back(std::move(e));
        }
        break;
      }
      case kRecSnapshotFooter: {
        uint64_t generation = 0;
        uint64_t symbols = 0;
        uint64_t vertices = 0;
        uint64_t edges = 0;
        SVQA_ASSIGN_OR_RETURN(generation, r.GetU64());
        SVQA_ASSIGN_OR_RETURN(symbols, r.GetU64());
        SVQA_ASSIGN_OR_RETURN(vertices, r.GetU64());
        SVQA_ASSIGN_OR_RETURN(edges, r.GetU64());
        if (generation != data.generation) {
          return FooterMismatch("generation");
        }
        if (symbols != want_symbols || vertices != want_vertices ||
            edges != want_edges) {
          return FooterMismatch("counts");
        }
        saw_footer = true;
        break;
      }
      default:
        return Status::ParseError("unknown snapshot record type " +
                                  std::to_string(rec.type));
    }
    if (!r.AtEnd()) {
      return Status::ParseError("trailing bytes in snapshot record");
    }
  }
  if (!saw_footer) {
    // A stream of intact records that simply stops is a truncation at a
    // record boundary — only the footer can prove completeness.
    return Status::ParseError("snapshot footer missing (truncated file)");
  }
  if (data.symbols.size() != want_symbols ||
      data.vertices.size() != want_vertices ||
      data.edges.size() != want_edges) {
    return FooterMismatch("header counts");
  }
  for (const SnapshotEdge& e : data.edges) {
    if (e.src >= data.vertices.size() || e.dst >= data.vertices.size()) {
      return Status::ParseError("snapshot edge endpoint out of range");
    }
  }
  if (data.kg_vertex_count > data.vertices.size()) {
    return Status::ParseError("kg_vertex_count exceeds vertex count");
  }
  return data;
}

Result<SnapshotData> SnapshotReader::Read(const std::string& path) const {
  SVQA_ASSIGN_OR_RETURN(const std::string bytes, env_->ReadFile(path));
  return Decode(bytes);
}

SnapshotWriter::SnapshotWriter(StorageEnv* env, std::string dir,
                               Options options)
    : env_(env), dir_(std::move(dir)), options_(options) {}

Result<std::string> SnapshotWriter::Write(const SnapshotData& data) {
  return WriteEncoded(data.generation, EncodeSnapshot(data));
}

Result<std::string> SnapshotWriter::WriteEncoded(uint64_t generation,
                                                 std::string_view encoded) {
  SVQA_RETURN_NOT_OK(env_->CreateDirs(dir_));
  const std::string name = SnapshotFileName(generation);
  SVQA_RETURN_NOT_OK(env_->WriteFileAtomic(dir_ + "/" + name, encoded));

  // Refresh the manifest. A stale (or unreadable) manifest is not fatal
  // for recovery — the directory scan fallback finds the file — so
  // start from scratch if the old one does not parse.
  std::vector<ManifestEntry> entries;
  if (Result<std::vector<ManifestEntry>> old = ReadManifest(env_, dir_);
      old.ok()) {
    entries = std::move(*old);
  }
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&](const ManifestEntry& e) {
                                 return e.generation == generation;
                               }),
                entries.end());
  entries.push_back(ManifestEntry{generation, name});
  std::sort(entries.begin(), entries.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) {
              return a.generation < b.generation;
            });

  // Retention: drop generations beyond the newest `keep` — manifest
  // first (so a crash mid-prune never leaves the manifest pointing at a
  // deleted file), then the files.
  std::vector<ManifestEntry> pruned;
  if (options_.keep > 0 && entries.size() > options_.keep) {
    pruned.assign(entries.begin(),
                  entries.end() - static_cast<std::ptrdiff_t>(options_.keep));
    entries.erase(entries.begin(),
                  entries.end() - static_cast<std::ptrdiff_t>(options_.keep));
  }
  SVQA_RETURN_NOT_OK(WriteManifest(env_, dir_, entries));
  for (const ManifestEntry& e : pruned) {
    SVQA_RETURN_NOT_OK(env_->Remove(dir_ + "/" + e.filename));
  }
  return name;
}

Result<std::vector<ManifestEntry>> ReadManifest(StorageEnv* env,
                                                const std::string& dir) {
  const std::string path = dir + "/" + kManifestName;
  if (!env->FileExists(path)) return std::vector<ManifestEntry>{};
  SVQA_ASSIGN_OR_RETURN(const std::string bytes, env->ReadFile(path));
  const RecordScan scan = ScanRecords(bytes);
  if (scan.tail != TailState::kClean) {
    return Status::ParseError(std::string("manifest ") +
                              TailStateName(scan.tail) + ": " +
                              scan.tail_detail);
  }
  std::vector<ManifestEntry> entries;
  bool saw_footer = false;
  for (const Record& rec : scan.records) {
    PayloadReader r(rec.payload);
    if (rec.type == kRecManifestEntry) {
      if (saw_footer) {
        return Status::ParseError("manifest entry after footer");
      }
      ManifestEntry e;
      SVQA_ASSIGN_OR_RETURN(e.generation, r.GetU64());
      SVQA_ASSIGN_OR_RETURN(const std::string_view name, r.GetString());
      e.filename = std::string(name);
      entries.push_back(std::move(e));
    } else if (rec.type == kRecManifestFooter) {
      uint64_t count = 0;
      SVQA_ASSIGN_OR_RETURN(count, r.GetU64());
      if (count != entries.size()) {
        return Status::ParseError("manifest footer count mismatch");
      }
      saw_footer = true;
    } else {
      return Status::ParseError("unknown manifest record type " +
                                std::to_string(rec.type));
    }
    if (!r.AtEnd()) {
      return Status::ParseError("trailing bytes in manifest record");
    }
  }
  if (!saw_footer) {
    return Status::ParseError("manifest footer missing");
  }
  return entries;
}

Status WriteManifest(StorageEnv* env, const std::string& dir,
                     const std::vector<ManifestEntry>& entries) {
  std::string out;
  for (const ManifestEntry& e : entries) {
    std::string payload;
    PutU64(e.generation, &payload);
    PutString(e.filename, &payload);
    AppendRecord(kRecManifestEntry, payload, &out);
  }
  std::string payload;
  PutU64(entries.size(), &payload);
  AppendRecord(kRecManifestFooter, payload, &out);
  return env->WriteFileAtomic(dir + "/" + kManifestName, out);
}

}  // namespace svqa::storage
