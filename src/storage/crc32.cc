#include "storage/crc32.h"

#include <array>

namespace svqa::storage {

namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? kPolynomial ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace svqa::storage
