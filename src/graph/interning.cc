#include "graph/interning.h"

#include <cstring>

namespace svqa::graph {

std::string_view SymbolTable::Append(std::string_view s) {
  if (slabs_.empty() || slab_used_ + s.size() > slab_cap_) {
    const std::size_t cap = s.size() > kSlabBytes ? s.size() : kSlabBytes;
    slabs_.push_back(std::make_unique<char[]>(cap));
    slab_used_ = 0;
    slab_cap_ = cap;
    pool_bytes_ += cap;
  }
  char* dst = slabs_.back().get() + slab_used_;
  if (!s.empty()) std::memcpy(dst, s.data(), s.size());
  slab_used_ += s.size();
  return {dst, s.size()};
}

SymbolId SymbolTable::Intern(std::string_view s) {
  MutexLock lock(&mu_);
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  const SymbolId id = static_cast<SymbolId>(names_.size());
  const std::string_view stored = Append(s);
  names_.push_back(stored);
  ids_.emplace(stored, id);
  return id;
}

std::optional<SymbolId> SymbolTable::Lookup(std::string_view s) const {
  MutexLock lock(&mu_);
  auto it = ids_.find(s);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::string_view SymbolTable::NameOf(SymbolId id) const {
  MutexLock lock(&mu_);
  return names_[id];
}

std::size_t SymbolTable::size() const {
  MutexLock lock(&mu_);
  return names_.size();
}

std::size_t SymbolTable::pool_bytes() const {
  MutexLock lock(&mu_);
  return pool_bytes_;
}

}  // namespace svqa::graph
