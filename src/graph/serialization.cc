#include "graph/serialization.h"

#include <charconv>
#include <sstream>
#include <string_view>
#include <vector>

namespace svqa::graph {
namespace {

bool HasFieldBreak(std::string_view s) {
  return s.find_first_of("\t\n\r") != std::string_view::npos;
}

std::vector<std::string_view> SplitTabs(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    std::size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

template <typename Int>
bool ParseInt(std::string_view s, Int* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

std::string ToText(const Graph& g) {
  std::ostringstream os;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const Vertex& vx = g.vertex(v);
    os << "v\t" << v << '\t' << vx.label << '\t' << vx.category << '\t'
       << vx.source_image << '\n';
  }
  for (const auto& e : g.AllEdges()) {
    os << "e\t" << e.src << '\t' << e.dst << '\t' << e.label << '\n';
  }
  return os.str();
}

Status ValidateSerializable(const Graph& g) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const Vertex& vx = g.vertex(v);
    if (HasFieldBreak(vx.label) || HasFieldBreak(vx.category)) {
      return Status::InvalidArgument(
          "vertex " + std::to_string(v) +
          ": label/category contains a tab or newline and would not "
          "round-trip through the text format");
    }
  }
  for (const auto& e : g.AllEdges()) {
    if (HasFieldBreak(e.label)) {
      return Status::InvalidArgument(
          "edge " + std::to_string(e.src) + "->" + std::to_string(e.dst) +
          ": label contains a tab or newline and would not round-trip "
          "through the text format");
    }
  }
  return Status::OK();
}

Result<Graph> FromText(const std::string& text) {
  Graph g;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF
    if (line.empty() || line[0] == '#') continue;
    const auto fields = SplitTabs(line);
    const auto fail = [&](const std::string& why) {
      return Status::ParseError("line " + std::to_string(lineno) + ": " +
                                why);
    };
    if (fields[0] == "v") {
      if (fields.size() != 5) return fail("vertex line needs 5 fields");
      VertexId id;
      int32_t src_img;
      if (!ParseInt(fields[1], &id) || !ParseInt(fields[4], &src_img)) {
        return fail("bad vertex numbers");
      }
      if (id != g.num_vertices()) {
        return fail("vertex ids must be dense and ordered");
      }
      g.AddVertex(std::string(fields[2]), std::string(fields[3]), src_img);
    } else if (fields[0] == "e") {
      if (fields.size() != 4) return fail("edge line needs 4 fields");
      VertexId src, dst;
      if (!ParseInt(fields[1], &src) || !ParseInt(fields[2], &dst)) {
        return fail("bad edge endpoints");
      }
      Status s = g.AddEdge(src, dst, fields[3]);
      if (!s.ok()) return fail(s.ToString());
    } else {
      return fail("unknown record type '" + std::string(fields[0]) + "'");
    }
  }
  return g;
}

Status ToFile(const Graph& g, const std::string& path,
              storage::StorageEnv* env) {
  SVQA_RETURN_NOT_OK(ValidateSerializable(g));
  if (env == nullptr) env = &storage::DefaultEnv();
  return env->WriteFileAtomic(path, ToText(g));
}

Result<Graph> FromFile(const std::string& path, storage::StorageEnv* env) {
  if (env == nullptr) env = &storage::DefaultEnv();
  SVQA_ASSIGN_OR_RETURN(std::string text, env->ReadFile(path));
  return FromText(text);
}

}  // namespace svqa::graph
