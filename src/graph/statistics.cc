#include "graph/statistics.h"

#include <algorithm>
#include <unordered_map>

namespace svqa::graph {

std::vector<CategoryCount> CategoryFrequencies(const Graph& g) {
  std::unordered_map<std::string, std::size_t> counts;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ++counts[g.vertex(v).category];
  }
  std::vector<CategoryCount> out;
  out.reserve(counts.size());
  for (auto& [cat, count] : counts) out.push_back({cat, count});
  std::sort(out.begin(), out.end(),
            [](const CategoryCount& a, const CategoryCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.category < b.category;
            });
  return out;
}

std::vector<CategoryCount> EdgeLabelFrequencies(const Graph& g) {
  std::unordered_map<std::string, std::size_t> counts;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const auto& he : g.OutEdges(v)) {
      ++counts[std::string(g.EdgeLabelName(he.label))];
    }
  }
  std::vector<CategoryCount> out;
  out.reserve(counts.size());
  for (auto& [label, count] : counts) out.push_back({label, count});
  std::sort(out.begin(), out.end(),
            [](const CategoryCount& a, const CategoryCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.category < b.category;
            });
  return out;
}

GraphSummary Summarize(const Graph& g) {
  GraphSummary s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  s.num_edge_labels = g.EdgeLabels().size();
  s.num_categories = CategoryFrequencies(g).size();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    s.max_out_degree = std::max(s.max_out_degree, g.OutDegree(v));
  }
  s.avg_out_degree =
      s.num_vertices == 0
          ? 0.0
          : static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);
  return s;
}

}  // namespace svqa::graph
