#include "graph/subgraph.h"

#include <algorithm>
#include <deque>

namespace svqa::graph {

std::vector<VertexId> KHopNeighborhood(const Graph& g, VertexId t, int k) {
  if (t >= g.num_vertices()) return {};
  std::vector<VertexId> result;
  std::vector<bool> seen(g.num_vertices(), false);
  std::deque<std::pair<VertexId, int>> frontier;
  frontier.emplace_back(t, 0);
  seen[t] = true;
  while (!frontier.empty()) {
    auto [v, depth] = frontier.front();
    frontier.pop_front();
    result.push_back(v);
    if (depth == k) continue;
    for (const auto& he : g.OutEdges(v)) {
      if (!seen[he.neighbor]) {
        seen[he.neighbor] = true;
        frontier.emplace_back(he.neighbor, depth + 1);
      }
    }
    for (const auto& he : g.InEdges(v)) {
      if (!seen[he.neighbor]) {
        seen[he.neighbor] = true;
        frontier.emplace_back(he.neighbor, depth + 1);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

SubgraphRef SubgraphRef::Induced(const Graph& g, VertexId t, int k) {
  return SubgraphRef(t, KHopNeighborhood(g, t, k));
}

bool SubgraphRef::Contains(VertexId v) const {
  return std::binary_search(vertices_.begin(), vertices_.end(), v);
}

std::size_t SubgraphRef::CountInducedEdges(const Graph& g) const {
  std::size_t count = 0;
  for (VertexId v : vertices_) {
    for (const auto& he : g.OutEdges(v)) {
      if (Contains(he.neighbor)) ++count;
    }
  }
  return count;
}

}  // namespace svqa::graph
