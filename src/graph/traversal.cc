#include "graph/traversal.h"

#include <deque>

namespace svqa::graph {

void BreadthFirst(const Graph& g, VertexId start,
                  const std::function<bool(VertexId, int)>& visit) {
  if (start >= g.num_vertices()) return;
  std::vector<bool> seen(g.num_vertices(), false);
  std::deque<std::pair<VertexId, int>> frontier{{start, 0}};
  seen[start] = true;
  while (!frontier.empty()) {
    auto [v, depth] = frontier.front();
    frontier.pop_front();
    if (!visit(v, depth)) return;
    for (const auto& he : g.OutEdges(v)) {
      if (!seen[he.neighbor]) {
        seen[he.neighbor] = true;
        frontier.emplace_back(he.neighbor, depth + 1);
      }
    }
  }
}

int HopDistance(const Graph& g, VertexId src, VertexId dst) {
  if (src >= g.num_vertices() || dst >= g.num_vertices()) return -1;
  if (src == dst) return 0;
  std::vector<bool> seen(g.num_vertices(), false);
  std::deque<std::pair<VertexId, int>> frontier{{src, 0}};
  seen[src] = true;
  while (!frontier.empty()) {
    auto [v, depth] = frontier.front();
    frontier.pop_front();
    auto expand = [&](VertexId n) -> bool {
      if (n == dst) return true;
      if (!seen[n]) {
        seen[n] = true;
        frontier.emplace_back(n, depth + 1);
      }
      return false;
    };
    for (const auto& he : g.OutEdges(v)) {
      if (expand(he.neighbor)) return depth + 1;
    }
    for (const auto& he : g.InEdges(v)) {
      if (expand(he.neighbor)) return depth + 1;
    }
  }
  return -1;
}

std::pair<std::vector<int>, int> ConnectedComponents(const Graph& g) {
  std::vector<int> comp(g.num_vertices(), -1);
  int next = 0;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    if (comp[s] != -1) continue;
    const int id = next++;
    std::deque<VertexId> frontier{s};
    comp[s] = id;
    while (!frontier.empty()) {
      VertexId v = frontier.front();
      frontier.pop_front();
      auto expand = [&](VertexId n) {
        if (comp[n] == -1) {
          comp[n] = id;
          frontier.push_back(n);
        }
      };
      for (const auto& he : g.OutEdges(v)) expand(he.neighbor);
      for (const auto& he : g.InEdges(v)) expand(he.neighbor);
    }
  }
  return {std::move(comp), next};
}

}  // namespace svqa::graph
