#ifndef SVQA_GRAPH_TRAVERSAL_H_
#define SVQA_GRAPH_TRAVERSAL_H_

#include <functional>
#include <vector>

#include "graph/graph.h"

namespace svqa::graph {

/// \brief Breadth-first traversal from `start` following out-edges.
/// Invokes `visit(v, depth)`; returning false stops the walk early.
void BreadthFirst(const Graph& g, VertexId start,
                  const std::function<bool(VertexId, int)>& visit);

/// \brief Shortest hop distance from `src` to `dst` over undirected
/// adjacency, or -1 when unreachable.
int HopDistance(const Graph& g, VertexId src, VertexId dst);

/// \brief Weakly-connected components; returns a component id per vertex
/// and the number of components.
std::pair<std::vector<int>, int> ConnectedComponents(const Graph& g);

}  // namespace svqa::graph

#endif  // SVQA_GRAPH_TRAVERSAL_H_
