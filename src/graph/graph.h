#ifndef SVQA_GRAPH_GRAPH_H_
#define SVQA_GRAPH_GRAPH_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace svqa::graph {

class FrozenGraph;
class SymbolTable;

/// Dense vertex identifier (index into the vertex table).
using VertexId = uint32_t;
/// Interned label identifier.
using LabelId = uint32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();
inline constexpr int32_t kKnowledgeGraphSource = -1;

/// \brief One vertex of a directed labeled graph G = (V, E, L).
///
/// `label` is the display label L(v) (e.g. "ginny-weasley", "dog#3");
/// `category` is the type used by frequency statistics and entity linking
/// (e.g. "person", "dog"). `source_image` is the image index a scene-graph
/// vertex came from, or kKnowledgeGraphSource for KG vertices.
struct Vertex {
  std::string label;
  std::string category;
  int32_t source_image = kKnowledgeGraphSource;
};

/// \brief Outgoing/incoming half-edge stored in adjacency lists.
struct HalfEdge {
  VertexId neighbor;
  LabelId label;
};

/// \brief A fully-resolved edge (for iteration / serialization).
struct EdgeRef {
  VertexId src;
  VertexId dst;
  std::string_view label;
};

/// \brief Directed labeled multigraph with label interning and secondary
/// indexes by vertex label and category.
///
/// This one structure backs scene graphs G_sg, the knowledge graph G, and
/// the merged graph G_mg (§III). Vertices are append-only; parallel edges
/// with distinct labels are allowed, exact duplicates are rejected.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  // --- construction ---

  /// Adds a vertex; returns its id.
  VertexId AddVertex(std::string label, std::string category,
                     int32_t source_image = kKnowledgeGraphSource);

  /// Adds a directed edge src --label--> dst. Rejects out-of-range ids,
  /// self-loops, and exact duplicates.
  Status AddEdge(VertexId src, VertexId dst, std::string_view label);

  /// True when the exact edge already exists.
  bool HasEdge(VertexId src, VertexId dst, std::string_view label) const;

  // --- accessors ---

  std::size_t num_vertices() const { return vertices_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  const Vertex& vertex(VertexId v) const { return vertices_[v]; }

  std::span<const HalfEdge> OutEdges(VertexId v) const {
    return {out_[v].data(), out_[v].size()};
  }
  std::span<const HalfEdge> InEdges(VertexId v) const {
    return {in_[v].data(), in_[v].size()};
  }

  std::size_t OutDegree(VertexId v) const { return out_[v].size(); }
  std::size_t InDegree(VertexId v) const { return in_[v].size(); }

  /// The string for an interned edge label.
  std::string_view EdgeLabelName(LabelId id) const {
    return edge_labels_[id];
  }

  /// All distinct edge-label strings (the `T <- getLabels(E_mg)` set of
  /// Algorithm 3 line 2).
  const std::vector<std::string>& EdgeLabels() const { return edge_labels_; }

  /// Vertices whose display label equals `label` (exact match), in
  /// insertion (ascending id) order.
  ///
  /// Contract: returns a *snapshot*. The mutable graph's index buckets
  /// live inside an unordered_map that rehashes and whose vectors
  /// reallocate on `AddVertex`, so a reference-returning variant would
  /// dangle the moment the caller mutates the graph — exactly the
  /// read-during-build pattern the aggregator uses. Read paths that need
  /// zero-copy spans should `Freeze()` and use
  /// `FrozenGraph::VerticesWithLabel`, whose spans are valid for the
  /// snapshot's lifetime.
  std::vector<VertexId> VerticesWithLabel(std::string_view label) const;

  /// Vertices whose category equals `category` (exact match); same
  /// snapshot contract as `VerticesWithLabel`.
  std::vector<VertexId> VerticesWithCategory(std::string_view category) const;

  /// Compiles an immutable CSR snapshot of this graph (see
  /// graph/frozen_graph.h). Pass a shared SymbolTable to make interned
  /// ids comparable across snapshots; defined in frozen_graph.cc.
  std::shared_ptr<const FrozenGraph> Freeze(
      std::shared_ptr<SymbolTable> symbols = nullptr) const;

  /// All edges, materialized (src, dst, label) — intended for tests and
  /// serialization, not hot paths.
  std::vector<EdgeRef> AllEdges() const;

  /// Validates internal invariants (index consistency, edge endpoints);
  /// used by tests and debug checks.
  Status CheckConsistency() const;

 private:
  LabelId InternEdgeLabel(std::string_view label);

  std::vector<Vertex> vertices_;
  std::vector<std::vector<HalfEdge>> out_;
  std::vector<std::vector<HalfEdge>> in_;
  std::size_t num_edges_ = 0;

  std::vector<std::string> edge_labels_;
  std::unordered_map<std::string, LabelId> edge_label_ids_;

  std::unordered_map<std::string, std::vector<VertexId>> label_index_;
  std::unordered_map<std::string, std::vector<VertexId>> category_index_;
};

}  // namespace svqa::graph

#endif  // SVQA_GRAPH_GRAPH_H_
