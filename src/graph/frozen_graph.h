#ifndef SVQA_GRAPH_FROZEN_GRAPH_H_
#define SVQA_GRAPH_FROZEN_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "graph/interning.h"

namespace svqa::graph {

/// \brief Immutable CSR snapshot of a `Graph`, compiled once per publish
/// and shared read-only by every executor worker.
///
/// Layout (struct-of-arrays, all contiguous):
///  - vertex table: interned label / category / stripped-label symbols,
///    an anonymous flag (`label` contains '#'), and the source image;
///  - adjacency: one offsets array + one flat HalfEdge array per
///    direction, in two projections — *scan order* (the exact insertion
///    order of the mutable graph, byte-compatible with
///    `Graph::OutEdges`/`InEdges` iteration) and *label order* (sorted
///    by (edge-label id, neighbor), binary-searchable via
///    `OutEdgesWithLabel`);
///  - label/category indexes: sorted symbol keys + offset ranges over a
///    postings array instead of hash maps;
///  - strings: a single slab pool inside the shared `SymbolTable`
///    (snapshots of the same store share one table, so ids compare
///    across the graph, the query side, and the vocabulary).
///
/// Invariants the executor's byte-identity contract relies on:
///  - vertex ids, edge-label ids, and scan-order adjacency are exactly
///    those of the source `Graph`;
///  - index postings are ascending (the mutable graph appends vertex
///    ids in increasing order);
///  - both projections hold the same multiset of half-edges.
///
/// Thread-safety: immutable after `Compile`; the embedded symbol table
/// accepts concurrent `Intern` calls from workers resolving query-side
/// tokens.
class FrozenGraph {
 public:
  /// Compiles a snapshot of `g`. Pass a shared `symbols` table to make
  /// ids comparable across snapshots (the snapshot store does); a fresh
  /// table is created when omitted.
  static std::shared_ptr<const FrozenGraph> Compile(
      const Graph& g, std::shared_ptr<SymbolTable> symbols = nullptr);

  std::size_t num_vertices() const { return source_image_.size(); }
  std::size_t num_edges() const { return out_edges_.size(); }

  // --- vertex table (SoA) ---

  SymbolId label_symbol(VertexId v) const { return label_sym_[v]; }
  SymbolId category_symbol(VertexId v) const { return category_sym_[v]; }
  /// Label with any '#'-suffix stripped ("dog#3" -> "dog").
  SymbolId stripped_label_symbol(VertexId v) const {
    return stripped_sym_[v];
  }
  /// True when the display label carries a '#' detection suffix.
  bool label_is_anonymous(VertexId v) const { return anonymous_[v] != 0; }
  int32_t source_image(VertexId v) const { return source_image_[v]; }

  std::string_view label(VertexId v) const {
    return symbols_->NameOf(label_sym_[v]);
  }
  std::string_view category(VertexId v) const {
    return symbols_->NameOf(category_sym_[v]);
  }
  std::string_view stripped_label(VertexId v) const {
    return symbols_->NameOf(stripped_sym_[v]);
  }

  // --- adjacency, scan order (identical to Graph::OutEdges/InEdges) ---

  std::span<const HalfEdge> OutEdges(VertexId v) const {
    return {out_edges_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  std::span<const HalfEdge> InEdges(VertexId v) const {
    return {in_edges_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }
  std::size_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  std::size_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  // --- adjacency, label order (binary-searchable) ---

  std::span<const HalfEdge> OutEdgesByLabel(VertexId v) const {
    return {out_sorted_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }
  std::span<const HalfEdge> InEdgesByLabel(VertexId v) const {
    return {in_sorted_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }
  /// The out-edges of `v` carrying exactly `label` (equal_range over the
  /// label-ordered projection).
  std::span<const HalfEdge> OutEdgesWithLabel(VertexId v, LabelId label) const {
    return EdgesWithLabel(OutEdgesByLabel(v), label);
  }
  std::span<const HalfEdge> InEdgesWithLabel(VertexId v, LabelId label) const {
    return EdgesWithLabel(InEdgesByLabel(v), label);
  }

  // --- edge labels (ids identical to the source Graph's interning) ---

  std::string_view EdgeLabelName(LabelId id) const {
    return symbols_->NameOf(edge_label_sym_[id]);
  }
  SymbolId edge_label_symbol(LabelId id) const { return edge_label_sym_[id]; }
  /// Materialized label strings in id order (the `getLabels(E_mg)` set;
  /// kept as std::string for the embedding maxScore API).
  const std::vector<std::string>& EdgeLabels() const { return edge_labels_; }
  /// Label id for a name, when that name labels any edge.
  std::optional<LabelId> EdgeLabelIdOf(std::string_view name) const;

  // --- label / category indexes as sorted id ranges ---

  /// Vertices whose display label equals `label`, ascending. The span
  /// points into the snapshot and is valid for its lifetime.
  std::span<const VertexId> VerticesWithLabel(std::string_view label) const {
    return label_index_.Find(*symbols_, label);
  }
  std::span<const VertexId> VerticesWithCategory(
      std::string_view category) const {
    return category_index_.Find(*symbols_, category);
  }
  std::span<const VertexId> VerticesWithLabelSym(SymbolId sym) const {
    return label_index_.FindSym(sym);
  }
  std::span<const VertexId> VerticesWithCategorySym(SymbolId sym) const {
    return category_index_.FindSym(sym);
  }

  /// The shared symbol table (mutable: workers intern query tokens).
  SymbolTable& symbols() const { return *symbols_; }
  std::shared_ptr<SymbolTable> symbols_ptr() const { return symbols_; }

  /// Approximate resident bytes of the compiled arrays (excluding the
  /// shared string pool); bench/diagnostic use.
  std::size_t ApproxBytes() const;

 private:
  FrozenGraph() = default;

  static std::span<const HalfEdge> EdgesWithLabel(
      std::span<const HalfEdge> sorted, LabelId label) {
    const auto lo = std::lower_bound(
        sorted.begin(), sorted.end(), label,
        [](const HalfEdge& e, LabelId l) { return e.label < l; });
    if (lo == sorted.end()) return {};
    auto hi = lo;
    while (hi != sorted.end() && hi->label == label) ++hi;
    return {&*lo, static_cast<std::size_t>(hi - lo)};
  }

  /// Sorted symbol keys with offset ranges over one postings array.
  struct IdRangeIndex {
    std::vector<SymbolId> keys;       ///< ascending
    std::vector<uint32_t> offsets;    ///< size keys.size() + 1
    std::vector<VertexId> postings;   ///< ascending within each range

    std::span<const VertexId> FindSym(SymbolId sym) const {
      const auto it = std::lower_bound(keys.begin(), keys.end(), sym);
      if (it == keys.end() || *it != sym) return {};
      const std::size_t i = static_cast<std::size_t>(it - keys.begin());
      return {postings.data() + offsets[i], offsets[i + 1] - offsets[i]};
    }
    std::span<const VertexId> Find(const SymbolTable& symbols,
                                   std::string_view key) const {
      const auto sym = symbols.Lookup(key);
      if (!sym.has_value()) return {};
      return FindSym(*sym);
    }
  };

  static IdRangeIndex BuildIndex(std::span<const SymbolId> vertex_syms);

  std::shared_ptr<SymbolTable> symbols_;

  // Vertex table.
  std::vector<SymbolId> label_sym_;
  std::vector<SymbolId> category_sym_;
  std::vector<SymbolId> stripped_sym_;
  std::vector<uint8_t> anonymous_;
  std::vector<int32_t> source_image_;

  // Adjacency (shared offsets; scan-order and label-order projections).
  std::vector<uint32_t> out_offsets_;
  std::vector<uint32_t> in_offsets_;
  std::vector<HalfEdge> out_edges_;
  std::vector<HalfEdge> in_edges_;
  std::vector<HalfEdge> out_sorted_;
  std::vector<HalfEdge> in_sorted_;

  // Edge-label table (index == the Graph's LabelId).
  std::vector<SymbolId> edge_label_sym_;
  std::vector<std::string> edge_labels_;
  /// (symbol, label id) sorted by symbol, for EdgeLabelIdOf.
  std::vector<std::pair<SymbolId, LabelId>> edge_label_by_sym_;

  IdRangeIndex label_index_;
  IdRangeIndex category_index_;
};

}  // namespace svqa::graph

#endif  // SVQA_GRAPH_FROZEN_GRAPH_H_
