#ifndef SVQA_GRAPH_INTERNING_H_
#define SVQA_GRAPH_INTERNING_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace svqa::graph {

/// Interned string identifier. Ids are dense (0, 1, 2, ...) in
/// first-intern order within one SymbolTable.
using SymbolId = uint32_t;

inline constexpr SymbolId kInvalidSymbol =
    std::numeric_limits<SymbolId>::max();

/// \brief Append-only string interner backed by a slab-allocated pool.
///
/// One table is shared by everything that names things at execution
/// time — the frozen merged graph's vertex labels/categories, the query
/// side's canonical tokens, and the edge-label vocabulary — so equality
/// of two interned strings is equality of two `SymbolId`s, no character
/// comparison, anywhere downstream.
///
/// Storage: characters live in large heap slabs that are never moved or
/// freed, so the `string_view` returned by `NameOf` stays valid for the
/// table's whole lifetime (snapshots share the table via `shared_ptr`,
/// giving symbol names snapshot-store lifetime).
///
/// Thread-safety: all operations lock the internal mutex. `Intern` is
/// called concurrently by executor workers resolving fresh query tokens;
/// ids are assigned in first-intern order, so id *values* for
/// query-side tokens can differ across thread interleavings — nothing
/// observable depends on them (they are only ever compared for equality
/// or mapped back through `NameOf`). Graph-compile-time ids are assigned
/// single-threaded and are deterministic.
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `s`, interning it on first sight.
  SymbolId Intern(std::string_view s) SVQA_EXCLUDES(mu_);

  /// The id for `s` if already interned.
  std::optional<SymbolId> Lookup(std::string_view s) const SVQA_EXCLUDES(mu_);

  /// The characters of an interned symbol. The view is stable for the
  /// lifetime of the table.
  std::string_view NameOf(SymbolId id) const SVQA_EXCLUDES(mu_);

  /// Number of distinct symbols interned.
  std::size_t size() const SVQA_EXCLUDES(mu_);

  /// Bytes of string-pool slab capacity reserved.
  std::size_t pool_bytes() const SVQA_EXCLUDES(mu_);

 private:
  /// Copies `s` into the pool and returns the stable view.
  std::string_view Append(std::string_view s) SVQA_REQUIRES(mu_);

  static constexpr std::size_t kSlabBytes = 64 * 1024;

  mutable Mutex mu_;
  /// Slabs are append-only and never relocated: views into them are
  /// stable without holding the lock.
  std::vector<std::unique_ptr<char[]>> slabs_ SVQA_GUARDED_BY(mu_);
  std::size_t slab_used_ SVQA_GUARDED_BY(mu_) = 0;
  std::size_t slab_cap_ SVQA_GUARDED_BY(mu_) = 0;
  std::size_t pool_bytes_ SVQA_GUARDED_BY(mu_) = 0;
  std::vector<std::string_view> names_ SVQA_GUARDED_BY(mu_);
  std::unordered_map<std::string_view, SymbolId> ids_ SVQA_GUARDED_BY(mu_);
};

}  // namespace svqa::graph

#endif  // SVQA_GRAPH_INTERNING_H_
