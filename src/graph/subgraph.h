#ifndef SVQA_GRAPH_SUBGRAPH_H_
#define SVQA_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"

namespace svqa::graph {

/// \brief S(t, k): vertices reachable from `t` within `k` hops
/// (Definition 1), following edges in both directions as the paper's
/// Example 3 does ("Fence" reaches "Man" through either edge
/// orientation). Includes `t` itself. Result is sorted ascending.
std::vector<VertexId> KHopNeighborhood(const Graph& g, VertexId t, int k);

/// \brief G[S(t, k)] as an *index over G*, not a copy (§III-B: "our
/// extraction method does not store a part of G independently; instead it
/// adds an index to G").
///
/// Holds a sorted vertex set plus the id of the anchor t; membership tests
/// are O(log n). Edge iteration delegates to the backing graph and filters
/// by membership.
class SubgraphRef {
 public:
  SubgraphRef() = default;
  SubgraphRef(VertexId anchor, std::vector<VertexId> sorted_vertices)
      : anchor_(anchor), vertices_(std::move(sorted_vertices)) {}

  /// Builds G[S(t, k)] for a graph.
  static SubgraphRef Induced(const Graph& g, VertexId t, int k);

  VertexId anchor() const { return anchor_; }
  const std::vector<VertexId>& vertices() const { return vertices_; }
  std::size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  /// O(log n) membership test.
  bool Contains(VertexId v) const;

  /// Number of edges of `g` with both endpoints inside this subgraph.
  std::size_t CountInducedEdges(const Graph& g) const;

 private:
  VertexId anchor_ = kInvalidVertex;
  std::vector<VertexId> vertices_;
};

}  // namespace svqa::graph

#endif  // SVQA_GRAPH_SUBGRAPH_H_
