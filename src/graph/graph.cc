#include "graph/graph.h"

#include <algorithm>

namespace svqa::graph {

VertexId Graph::AddVertex(std::string label, std::string category,
                          int32_t source_image) {
  const VertexId id = static_cast<VertexId>(vertices_.size());
  label_index_[label].push_back(id);
  category_index_[category].push_back(id);
  vertices_.push_back(
      Vertex{std::move(label), std::move(category), source_image});
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

LabelId Graph::InternEdgeLabel(std::string_view label) {
  auto it = edge_label_ids_.find(std::string(label));
  if (it != edge_label_ids_.end()) return it->second;
  const LabelId id = static_cast<LabelId>(edge_labels_.size());
  edge_labels_.emplace_back(label);
  edge_label_ids_.emplace(std::string(label), id);
  return id;
}

Status Graph::AddEdge(VertexId src, VertexId dst, std::string_view label) {
  if (src >= vertices_.size() || dst >= vertices_.size()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (src == dst) {
    return Status::InvalidArgument("self-loops are not allowed");
  }
  if (HasEdge(src, dst, label)) {
    return Status::AlreadyExists("duplicate edge");
  }
  const LabelId lid = InternEdgeLabel(label);
  out_[src].push_back(HalfEdge{dst, lid});
  in_[dst].push_back(HalfEdge{src, lid});
  ++num_edges_;
  return Status::OK();
}

bool Graph::HasEdge(VertexId src, VertexId dst,
                    std::string_view label) const {
  if (src >= vertices_.size() || dst >= vertices_.size()) return false;
  auto it = edge_label_ids_.find(std::string(label));
  if (it == edge_label_ids_.end()) return false;
  const LabelId lid = it->second;
  // Scan the smaller of the two adjacency lists.
  if (out_[src].size() <= in_[dst].size()) {
    for (const auto& he : out_[src]) {
      if (he.neighbor == dst && he.label == lid) return true;
    }
  } else {
    for (const auto& he : in_[dst]) {
      if (he.neighbor == src && he.label == lid) return true;
    }
  }
  return false;
}

std::vector<VertexId> Graph::VerticesWithLabel(std::string_view label) const {
  auto it = label_index_.find(std::string(label));
  if (it == label_index_.end()) return {};
  return it->second;
}

std::vector<VertexId> Graph::VerticesWithCategory(
    std::string_view category) const {
  auto it = category_index_.find(std::string(category));
  if (it == category_index_.end()) return {};
  return it->second;
}

std::vector<EdgeRef> Graph::AllEdges() const {
  std::vector<EdgeRef> edges;
  edges.reserve(num_edges_);
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    for (const auto& he : out_[v]) {
      edges.push_back(EdgeRef{v, he.neighbor, edge_labels_[he.label]});
    }
  }
  return edges;
}

Status Graph::CheckConsistency() const {
  if (out_.size() != vertices_.size() || in_.size() != vertices_.size()) {
    return Status::Internal("adjacency table size mismatch");
  }
  std::size_t out_total = 0, in_total = 0;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    for (const auto& he : out_[v]) {
      if (he.neighbor >= vertices_.size()) {
        return Status::Internal("dangling out-edge");
      }
      if (he.label >= edge_labels_.size()) {
        return Status::Internal("unknown edge label id");
      }
      ++out_total;
    }
    for (const auto& he : in_[v]) {
      if (he.neighbor >= vertices_.size()) {
        return Status::Internal("dangling in-edge");
      }
      ++in_total;
    }
  }
  if (out_total != num_edges_ || in_total != num_edges_) {
    return Status::Internal("edge count mismatch");
  }
  // Every out-edge must have a matching in-edge.
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    for (const auto& he : out_[v]) {
      const auto& back = in_[he.neighbor];
      const bool found =
          std::any_of(back.begin(), back.end(), [&](const HalfEdge& b) {
            return b.neighbor == v && b.label == he.label;
          });
      if (!found) return Status::Internal("missing reverse half-edge");
    }
  }
  // Index entries must point at vertices with the indexed key.
  for (const auto& [label, ids] : label_index_) {
    for (VertexId v : ids) {
      if (v >= vertices_.size() || vertices_[v].label != label) {
        return Status::Internal("label index corrupt for '" + label + "'");
      }
    }
  }
  for (const auto& [cat, ids] : category_index_) {
    for (VertexId v : ids) {
      if (v >= vertices_.size() || vertices_[v].category != cat) {
        return Status::Internal("category index corrupt for '" + cat + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace svqa::graph
