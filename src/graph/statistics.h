#ifndef SVQA_GRAPH_STATISTICS_H_
#define SVQA_GRAPH_STATISTICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace svqa::graph {

/// \brief (category, occurrence count) pair.
struct CategoryCount {
  std::string category;
  std::size_t count;
};

/// \brief Occurrence counts of vertex categories, sorted descending by
/// count (ties broken alphabetically for determinism). This is the
/// `statistics(...)` step of Algorithm 1 line 2.
std::vector<CategoryCount> CategoryFrequencies(const Graph& g);

/// \brief Occurrence counts of edge labels (predicates), sorted
/// descending — the head/tail predicate distribution whose skew drives
/// the TDE debiasing story (Table V).
std::vector<CategoryCount> EdgeLabelFrequencies(const Graph& g);

/// \brief Summary numbers for logging / dataset tables.
struct GraphSummary {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  std::size_t num_edge_labels = 0;
  std::size_t num_categories = 0;
  double avg_out_degree = 0;
  std::size_t max_out_degree = 0;
};

GraphSummary Summarize(const Graph& g);

}  // namespace svqa::graph

#endif  // SVQA_GRAPH_STATISTICS_H_
