#ifndef SVQA_GRAPH_SERIALIZATION_H_
#define SVQA_GRAPH_SERIALIZATION_H_

#include <string>

#include "graph/graph.h"
#include "util/result.h"

namespace svqa::graph {

/// \brief Serializes a graph to a line-oriented text format:
///
///     v <id> <label> <category> <source_image>
///     e <src> <dst> <label>
///
/// Fields are tab-separated; labels may contain spaces but not tabs.
std::string ToText(const Graph& g);

/// \brief Parses the format produced by ToText. Vertex ids must be dense
/// and in order; otherwise a ParseError is returned.
Result<Graph> FromText(const std::string& text);

/// \brief Writes ToText(g) to `path` (overwrites).
Status ToFile(const Graph& g, const std::string& path);

/// \brief Reads and parses a graph file written by ToFile.
Result<Graph> FromFile(const std::string& path);

}  // namespace svqa::graph

#endif  // SVQA_GRAPH_SERIALIZATION_H_
