#ifndef SVQA_GRAPH_SERIALIZATION_H_
#define SVQA_GRAPH_SERIALIZATION_H_

#include <string>

#include "graph/graph.h"
#include "storage/storage_env.h"
#include "util/result.h"

namespace svqa::graph {

/// \brief Serializes a graph to a line-oriented text format:
///
///     v <id> <label> <category> <source_image>
///     e <src> <dst> <label>
///
/// Fields are tab-separated; labels may contain spaces but not tabs or
/// newlines — a label containing either would re-parse as a different
/// graph. ToText itself does not check (see ValidateSerializable); the
/// file writers below refuse such graphs instead of corrupting them.
std::string ToText(const Graph& g);

/// \brief Rejects graphs whose labels/categories would not round-trip
/// through the text format (embedded '\t', '\n' or '\r'), naming the
/// offending vertex or edge. OK means ToText(g) re-parses to `g`.
Status ValidateSerializable(const Graph& g);

/// \brief Parses the format produced by ToText. Vertex ids must be dense
/// and in order; otherwise a ParseError with a 1-based line number is
/// returned. Tolerates CRLF line endings.
Result<Graph> FromText(const std::string& text);

/// \brief Writes ToText(g) to `path` via StorageEnv::WriteFileAtomic
/// (write temp, sync, rename): a crash mid-write never leaves a torn
/// graph file behind. Fails (without touching `path`) when
/// ValidateSerializable rejects `g`. `env` defaults to the process
/// filesystem.
Status ToFile(const Graph& g, const std::string& path,
              storage::StorageEnv* env = nullptr);

/// \brief Reads and parses a graph file written by ToFile.
Result<Graph> FromFile(const std::string& path,
                       storage::StorageEnv* env = nullptr);

}  // namespace svqa::graph

#endif  // SVQA_GRAPH_SERIALIZATION_H_
