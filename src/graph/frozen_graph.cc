#include "graph/frozen_graph.h"

#include <numeric>
#include <utility>

namespace svqa::graph {

namespace {

/// Stable label-order projection of one adjacency segment. Sorting by
/// (label, neighbor) makes every label run contiguous and
/// binary-searchable; stability keeps parallel edges with equal
/// (label, neighbor) in insertion order (they cannot exist today —
/// exact duplicates are rejected — but the projection should not care).
void SortSegment(std::vector<HalfEdge>* edges, std::size_t begin,
                 std::size_t end) {
  std::stable_sort(edges->begin() + static_cast<std::ptrdiff_t>(begin),
                   edges->begin() + static_cast<std::ptrdiff_t>(end),
                   [](const HalfEdge& a, const HalfEdge& b) {
                     if (a.label != b.label) return a.label < b.label;
                     return a.neighbor < b.neighbor;
                   });
}

}  // namespace

FrozenGraph::IdRangeIndex FrozenGraph::BuildIndex(
    std::span<const SymbolId> vertex_syms) {
  IdRangeIndex index;
  // Distinct keys, sorted.
  index.keys.assign(vertex_syms.begin(), vertex_syms.end());
  std::sort(index.keys.begin(), index.keys.end());
  index.keys.erase(std::unique(index.keys.begin(), index.keys.end()),
                   index.keys.end());
  // Bucket counts -> offsets -> fill (counting sort keeps postings in
  // ascending vertex order, matching the mutable index's append order).
  index.offsets.assign(index.keys.size() + 1, 0);
  auto slot = [&index](SymbolId sym) {
    return static_cast<std::size_t>(
        std::lower_bound(index.keys.begin(), index.keys.end(), sym) -
        index.keys.begin());
  };
  for (const SymbolId sym : vertex_syms) ++index.offsets[slot(sym) + 1];
  std::partial_sum(index.offsets.begin(), index.offsets.end(),
                   index.offsets.begin());
  index.postings.resize(vertex_syms.size());
  std::vector<uint32_t> cursor(index.offsets.begin(),
                               index.offsets.end() - 1);
  for (VertexId v = 0; v < vertex_syms.size(); ++v) {
    index.postings[cursor[slot(vertex_syms[v])]++] = v;
  }
  return index;
}

std::shared_ptr<const FrozenGraph> FrozenGraph::Compile(
    const Graph& g, std::shared_ptr<SymbolTable> symbols) {
  auto frozen = std::shared_ptr<FrozenGraph>(new FrozenGraph());
  frozen->symbols_ =
      symbols != nullptr ? std::move(symbols) : std::make_shared<SymbolTable>();
  SymbolTable& table = *frozen->symbols_;

  const std::size_t n = g.num_vertices();
  frozen->label_sym_.reserve(n);
  frozen->category_sym_.reserve(n);
  frozen->stripped_sym_.reserve(n);
  frozen->anonymous_.reserve(n);
  frozen->source_image_.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    const Vertex& vx = g.vertex(v);
    frozen->label_sym_.push_back(table.Intern(vx.label));
    frozen->category_sym_.push_back(table.Intern(vx.category));
    std::string_view stripped = vx.label;
    const auto pos = stripped.find('#');
    const bool anon = pos != std::string_view::npos;
    if (anon) stripped = stripped.substr(0, pos);
    frozen->stripped_sym_.push_back(table.Intern(stripped));
    frozen->anonymous_.push_back(anon ? 1 : 0);
    frozen->source_image_.push_back(vx.source_image);
  }

  // Edge-label table: index == the Graph's LabelId numbering.
  const auto& labels = g.EdgeLabels();
  frozen->edge_labels_ = labels;
  frozen->edge_label_sym_.reserve(labels.size());
  frozen->edge_label_by_sym_.reserve(labels.size());
  for (LabelId id = 0; id < labels.size(); ++id) {
    const SymbolId sym = table.Intern(labels[id]);
    frozen->edge_label_sym_.push_back(sym);
    frozen->edge_label_by_sym_.emplace_back(sym, id);
  }
  std::sort(frozen->edge_label_by_sym_.begin(),
            frozen->edge_label_by_sym_.end());

  // CSR adjacency, scan order first.
  frozen->out_offsets_.assign(n + 1, 0);
  frozen->in_offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    frozen->out_offsets_[v + 1] =
        frozen->out_offsets_[v] + static_cast<uint32_t>(g.OutDegree(v));
    frozen->in_offsets_[v + 1] =
        frozen->in_offsets_[v] + static_cast<uint32_t>(g.InDegree(v));
  }
  frozen->out_edges_.reserve(g.num_edges());
  frozen->in_edges_.reserve(g.num_edges());
  for (VertexId v = 0; v < n; ++v) {
    const auto out = g.OutEdges(v);
    frozen->out_edges_.insert(frozen->out_edges_.end(), out.begin(),
                              out.end());
    const auto in = g.InEdges(v);
    frozen->in_edges_.insert(frozen->in_edges_.end(), in.begin(), in.end());
  }

  // Label-order projection.
  frozen->out_sorted_ = frozen->out_edges_;
  frozen->in_sorted_ = frozen->in_edges_;
  for (VertexId v = 0; v < n; ++v) {
    SortSegment(&frozen->out_sorted_, frozen->out_offsets_[v],
                frozen->out_offsets_[v + 1]);
    SortSegment(&frozen->in_sorted_, frozen->in_offsets_[v],
                frozen->in_offsets_[v + 1]);
  }

  frozen->label_index_ = BuildIndex(frozen->label_sym_);
  frozen->category_index_ = BuildIndex(frozen->category_sym_);
  return frozen;
}

std::optional<LabelId> FrozenGraph::EdgeLabelIdOf(
    std::string_view name) const {
  const auto sym = symbols_->Lookup(name);
  if (!sym.has_value()) return std::nullopt;
  const auto it = std::lower_bound(
      edge_label_by_sym_.begin(), edge_label_by_sym_.end(),
      std::make_pair(*sym, LabelId{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == edge_label_by_sym_.end() || it->first != *sym) {
    return std::nullopt;
  }
  return it->second;
}

std::size_t FrozenGraph::ApproxBytes() const {
  auto bytes = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::
                                     value_type);
  };
  std::size_t total = bytes(label_sym_) + bytes(category_sym_) +
                      bytes(stripped_sym_) + bytes(anonymous_) +
                      bytes(source_image_) + bytes(out_offsets_) +
                      bytes(in_offsets_) + bytes(out_edges_) +
                      bytes(in_edges_) + bytes(out_sorted_) +
                      bytes(in_sorted_) + bytes(edge_label_sym_) +
                      bytes(edge_label_by_sym_);
  total += bytes(label_index_.keys) + bytes(label_index_.offsets) +
           bytes(label_index_.postings) + bytes(category_index_.keys) +
           bytes(category_index_.offsets) + bytes(category_index_.postings);
  return total;
}

std::shared_ptr<const FrozenGraph> Graph::Freeze(
    std::shared_ptr<SymbolTable> symbols) const {
  return FrozenGraph::Compile(*this, std::move(symbols));
}

}  // namespace svqa::graph
