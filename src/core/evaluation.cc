#include "core/evaluation.h"

namespace svqa::core {

bool AnswersMatch(const std::string& expected, const std::string& actual,
                  nlp::QuestionType type,
                  const text::EmbeddingModel& embeddings,
                  double similarity_threshold) {
  switch (type) {
    case nlp::QuestionType::kJudgment:
    case nlp::QuestionType::kCounting:
      return expected == actual;
    case nlp::QuestionType::kReasoning:
      if (expected == actual) return true;
      return embeddings.Similarity(expected, actual) >=
             similarity_threshold;
  }
  return false;
}

EvalSummary EvaluateMvqa(SvqaEngine* engine,
                         const data::MvqaDataset& dataset) {
  EvalSummary summary;
  int correct_by_type[3] = {};
  int total_by_type[3] = {};
  double latency_total = 0;

  for (const data::MvqaQuestion& q : dataset.questions) {
    QuestionEval eval;
    eval.type = q.type;
    eval.expected = q.gold_answer;

    SimClock clock;
    auto result = engine->Ask(q.text, &clock);
    eval.latency_micros = clock.ElapsedMicros();
    latency_total += eval.latency_micros;

    if (result.ok()) {
      eval.actual = result->text;
      eval.correct = AnswersMatch(q.gold_answer, result->text, q.type,
                                  engine->embeddings());
    } else {
      eval.actual = result.status().ToString();
      eval.correct = false;
    }

    if (!eval.correct) {
      // Attribution: the gold logical form on the same noisy merged graph
      // isolates the parsing stage.
      auto gold = engine->Execute(q.gold_graph);
      const bool gold_correct =
          gold.ok() && AnswersMatch(q.gold_answer, gold->text, q.type,
                                    engine->embeddings());
      eval.cause = gold_correct ? ErrorCause::kStatementParsing
                                : ErrorCause::kSceneGraph;
      if (eval.cause == ErrorCause::kStatementParsing) {
        ++summary.parse_errors;
      } else {
        ++summary.scene_graph_errors;
      }
    }

    const int ti = q.type == nlp::QuestionType::kJudgment   ? 0
                   : q.type == nlp::QuestionType::kCounting ? 1
                                                            : 2;
    ++total_by_type[ti];
    if (eval.correct) ++correct_by_type[ti];
    summary.details.push_back(std::move(eval));
  }

  auto ratio = [](int num, int den) {
    return den == 0 ? 0.0 : static_cast<double>(num) / den;
  };
  summary.judgment_accuracy = ratio(correct_by_type[0], total_by_type[0]);
  summary.counting_accuracy = ratio(correct_by_type[1], total_by_type[1]);
  summary.reasoning_accuracy = ratio(correct_by_type[2], total_by_type[2]);
  summary.overall_accuracy =
      ratio(correct_by_type[0] + correct_by_type[1] + correct_by_type[2],
            total_by_type[0] + total_by_type[1] + total_by_type[2]);
  if (!dataset.questions.empty()) {
    summary.mean_latency_seconds =
        latency_total / 1e6 / static_cast<double>(dataset.questions.size());
  }
  return summary;
}

}  // namespace svqa::core
