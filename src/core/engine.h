#ifndef SVQA_CORE_ENGINE_H_
#define SVQA_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/options.h"
#include "exec/batch_executor.h"
#include "exec/executor.h"
#include "exec/explain.h"
#include "obs/observability.h"
#include "query/query_graph_builder.h"
#include "serve/durability.h"
#include "serve/graph_snapshot_store.h"
#include "storage/recovery.h"
#include "text/embedding.h"
#include "text/lexicon.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/result.h"
#include "vision/scene.h"
#include "vision/sgg_metrics.h"

namespace svqa::core {

/// \brief Everything `SvqaEngine::ExplainAnalyze` produces for one
/// executed question: the answer itself, the per-quadruple cost
/// attribution, and the raw trace the attribution was computed from.
struct ExplainAnalysis {
  exec::Answer answer;
  exec::QueryCostReport report;
  /// The span tree that observed the execution (never null); render via
  /// TreeString() or ToJson() for offline analysis with svqa_trace.
  std::shared_ptr<const obs::Tracer> trace;
};

/// \brief The SVQA engine: the paper's full framework behind one facade.
///
/// Usage:
///
///     core::SvqaEngine engine(options);
///     SVQA_RETURN_NOT_OK(engine.Ingest(knowledge_graph, images));
///     SVQA_ASSIGN_OR_RETURN(auto answer, engine.Ask(
///         "What kind of clothes are worn by the wizard who is most "
///         "frequently hanging out with harry potter's girlfriend?"));
///
/// Ingest runs the offline phase (scene graph generation + Algorithm 1
/// merging); Ask runs the online phase (Algorithm 2 parsing + Algorithm 3
/// execution with key-centric caching).
///
/// Concurrency: the merged graph lives in a serve::GraphSnapshotStore —
/// Ingest builds off to the side and atomically publishes, and every Ask
/// / Execute pins the snapshot that is current when it starts, so asking
/// concurrently with an ingest (or a later publish through
/// serve::SvqaServer) never observes a half-built graph.
class SvqaEngine {
 public:
  explicit SvqaEngine(SvqaOptions options = {});
  ~SvqaEngine();

  SvqaEngine(const SvqaEngine&) = delete;
  SvqaEngine& operator=(const SvqaEngine&) = delete;

  /// Offline phase: converts every image to a scene graph and merges
  /// everything with the knowledge graph, publishing the result as the
  /// store's first snapshot. Must be called exactly once before Ask (a
  /// failed ingest may be retried).
  Status Ingest(const graph::Graph& knowledge_graph,
                const std::vector<vision::Scene>& images,
                SimClock* clock = nullptr) SVQA_EXCLUDES(ingest_mu_);

  /// Video ingestion (§II: video data is a collection of images): the
  /// frames of every video are ingested as the image corpus.
  Status IngestVideos(const graph::Graph& knowledge_graph,
                      const std::vector<vision::Video>& videos,
                      SimClock* clock = nullptr) {
    return Ingest(knowledge_graph, vision::FlattenVideos(videos), clock);
  }

  /// Adopts an already-built merged graph (e.g. from LoadMergedGraph),
  /// skipping the expensive scene-graph/merge phase. The KG prefix of
  /// the merged graph feeds the entity gazetteer. Alternative to Ingest;
  /// may also only be called once.
  Status IngestMerged(aggregator::MergedGraph merged)
      SVQA_EXCLUDES(ingest_mu_);

  /// Crash recovery: rebuilds the serving state from the durable
  /// directory (newest verified snapshot + WAL tail replay) and, when
  /// anything was recovered, publishes it and claims the ingest slot —
  /// Ask serves the recovered graph immediately. On kColdStart (no
  /// durable state) nothing is published and Ingest may run normally.
  /// Requires `options.durability.env`; see DESIGN.md "Durability &
  /// crash recovery". The recovery rung is surfaced in every
  /// Answer::diagnostics afterwards.
  Result<storage::RecoveryReport> WarmStart() SVQA_EXCLUDES(ingest_mu_);

  /// Persists the merged graph so a later process can IngestMerged it.
  Status SaveMergedGraph(const std::string& path) const;

  /// Loads a merged graph saved by SaveMergedGraph.
  static Result<aggregator::MergedGraph> LoadMergedGraph(
      const std::string& path) {
    return aggregator::LoadMergedGraph(path);
  }

  /// Parses and executes one natural-language question under the
  /// configured resilience options (deadline, retries, fault policy).
  /// With `enable_degradation` (the default) a failed execution walks
  /// the degradation ladder — cached-subgraph partial answer, then the
  /// conservative "no"/0/"unknown" — so Ask returns an error only for
  /// API misuse; `Answer::diagnostics` records the rung taken, the
  /// underlying failure, and the snapshot id answered from. With
  /// degradation disabled the raw Status (kDeadlineExceeded, kCancelled,
  /// injected faults, parse errors) surfaces instead.
  Result<exec::Answer> Ask(const std::string& question,
                           SimClock* clock = nullptr);

  /// Executes an already-built query graph (bypasses the NL pipeline —
  /// used for gold logical forms and modified-VQAv2 runs).
  Result<exec::Answer> Execute(const query::QueryGraph& graph,
                               SimClock* clock = nullptr);

  /// Parses a question into a query graph without executing it.
  Result<query::QueryGraph> Parse(const std::string& question,
                                  SimClock* clock = nullptr) const;

  /// Answers a question and renders a human-readable trace: the query
  /// graph, the answer, and the supporting merged-graph facts.
  Result<std::string> Explain(const std::string& question);

  /// EXPLAIN ANALYZE: answers the question exactly as Ask would
  /// (same ladder, same resilience options) while forcing a tracer on,
  /// then joins the trace with the charged virtual costs, cache
  /// hit/miss counts, and retry/degradation diagnostics into a
  /// per-quadruple `exec::QueryCostReport`. The report is verified to
  /// reconcile bit-exactly with `Diagnostics.charged_micros` before it
  /// is returned.
  ///
  /// The explained query is metered into a private metrics registry
  /// (so the report's cache counts are per-query absolutes), not the
  /// engine's shared one; its spans still land in the engine's flight
  /// recorder when observability is enabled. Works with observability
  /// disabled — explain pays for its own telemetry.
  ///
  /// Unlike Ask, a parse failure surfaces as an error even with
  /// degradation enabled: there is no execution to analyze.
  Result<ExplainAnalysis> ExplainAnalyze(const std::string& question,
                                         SimClock* clock = nullptr);

  /// Batch execution of parsed graphs with scheduling (§V-B), pinned to
  /// the current snapshot for the whole batch.
  exec::BatchResult ExecuteBatch(
      const std::vector<query::QueryGraph>& graphs,
      exec::BatchOptions batch_options = {});

  // --- accessors -----------------------------------------------------------
  bool ingested() const { return store_->latest_id() != 0; }
  /// The current snapshot's merged graph. Requires ingested(); the
  /// reference stays valid while that snapshot remains current (pin the
  /// snapshot via snapshot_store()->Current() to outlive a republish).
  const aggregator::MergedGraph& merged() const {
    return store_->Current()->merged();
  }
  const text::EmbeddingModel& embeddings() const { return *embeddings_; }
  const text::SynonymLexicon& lexicon() const { return lexicon_; }
  /// The current snapshot's key-centric cache (nullptr before ingest or
  /// with caching disabled).
  exec::KeyCentricCache* cache() {
    serve::SnapshotPtr snap = store_->Current();
    return snap == nullptr ? nullptr : snap->cache();
  }
  const SvqaOptions& options() const { return options_; }
  /// Scene-graph results kept from Ingest (for SGG metrics).
  const std::vector<vision::SceneGraphResult>& scene_graphs() const {
    return scene_graphs_;
  }
  /// The snapshot store queries execute against. serve::SvqaServer is
  /// constructed over this to serve the engine's graph.
  serve::GraphSnapshotStore* snapshot_store() { return store_.get(); }
  const serve::GraphSnapshotStore& snapshot_store() const { return *store_; }
  /// The question parser (for serve::ServerOptions::parser).
  const query::QueryGraphBuilder& builder() const { return *builder_; }
  /// The durability glue (nullptr when options.durability is unset).
  serve::SnapshotDurability* durability() { return durability_.get(); }
  /// The engine's observability domain (nullptr when options.obs is
  /// disabled): metrics registry, flight recorder, trace sampling.
  /// Ask and ExecuteBatch record through it; serve::SvqaServer owns a
  /// separate domain for its own traffic.
  obs::Observability* observability() { return obs_.get(); }
  /// storage::RecoveryRung of the last WarmStart as an int (-1 = no
  /// recovery ran); mirrored into Answer::diagnostics.recovery_rung.
  int recovery_rung() const {
    return recovery_rung_.load(std::memory_order_relaxed);
  }

 private:
  /// The degradation ladder shared by Ask and ExplainAnalyze: resilient
  /// execution, then (with enable_degradation) the cached-subgraph
  /// partial answer, then the conservative answer. Stamps snapshot id
  /// and recovery rung into whatever diagnostics it returns.
  Result<exec::Answer> ExecuteLadder(const serve::SnapshotPtr& snap,
                                     const query::QueryGraph& graph,
                                     SimClock* clock,
                                     const exec::ResilienceOptions& res,
                                     uint64_t salt);

  /// Claims the single ingest slot; fails if an ingest already started.
  Status BeginIngest() SVQA_EXCLUDES(ingest_mu_);
  /// Releases the slot after a failed ingest so it can be retried.
  void AbortIngest() SVQA_EXCLUDES(ingest_mu_);
  Status DoIngest(const graph::Graph& knowledge_graph,
                  const std::vector<vision::Scene>& images, SimClock* clock);
  Status DoIngestMerged(aggregator::MergedGraph merged);

  SvqaOptions options_;
  text::SynonymLexicon lexicon_;
  std::unique_ptr<text::EmbeddingModel> embeddings_;
  std::unique_ptr<query::QueryGraphBuilder> builder_;
  std::vector<vision::SceneGraphResult> scene_graphs_;
  /// Present iff options.obs.enabled. Declared before durability_,
  /// which holds a raw pointer to its metric handles.
  std::unique_ptr<obs::Observability> obs_;
  /// Must outlive store_ (the store holds a raw pointer to it).
  std::unique_ptr<serve::SnapshotDurability> durability_;
  std::unique_ptr<serve::GraphSnapshotStore> store_;
  std::atomic<int> recovery_rung_{-1};
  /// Monotonic query id feeding the trace sampler (Ask path).
  std::atomic<uint64_t> query_seq_{0};

  /// Serializes the Ingest-once contract against concurrent ingests; the
  /// published graph itself is protected by the store's snapshot swap.
  mutable Mutex ingest_mu_;
  bool ingest_started_ SVQA_GUARDED_BY(ingest_mu_) = false;
};

}  // namespace svqa::core

#endif  // SVQA_CORE_ENGINE_H_
