#include "core/engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "data/vocabulary.h"
#include "util/retry.h"
#include "util/rng.h"
#include "vision/scene_graph_generator.h"

namespace svqa::core {

namespace {

/// Probes an offline-phase fault site, retrying transient verdicts with
/// the configured backoff (charged as virtual time). Returns the final
/// verdict: OK, or the transient/permanent fault that stuck.
Status ProbeWithRetry(const exec::ResilienceOptions& res, FaultSite site,
                      const std::string& key, SimClock* clock) {
  if (res.fault_policy == nullptr) return Status::OK();
  const int max_attempts =
      res.enable_retries ? std::max(1, res.retry.max_attempts) : 1;
  Status s = Status::OK();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    s = res.fault_policy->Probe(site, key,
                                static_cast<uint32_t>(attempt - 1));
    if (s.ok() || !IsTransient(s) || attempt == max_attempts) break;
    if (clock != nullptr) {
      clock->ChargeMicros(
          RetryBackoffMicros(res.retry, attempt, StableHash64(key)));
    }
  }
  return s;
}

/// The ladder's last rung: the answer that is wrong in the safest
/// direction — "no" for judgments, 0 for counts, "unknown" otherwise.
exec::Answer ConservativeAnswer(nlp::QuestionType type, Status failure,
                                const exec::Diagnostics& attempts_record) {
  exec::Answer ans;
  ans.type = type;
  switch (type) {
    case nlp::QuestionType::kJudgment:
      ans.yes = false;
      ans.text = "no";
      break;
    case nlp::QuestionType::kCounting:
      ans.count = 0;
      ans.text = "0";
      break;
    case nlp::QuestionType::kReasoning:
      ans.text = "unknown";
      break;
  }
  ans.diagnostics = attempts_record;
  ans.diagnostics.rung = exec::DegradationRung::kConservative;
  ans.diagnostics.primary = std::move(failure);
  return ans;
}

}  // namespace

SvqaEngine::SvqaEngine(SvqaOptions options)
    : options_(std::move(options)),
      lexicon_(text::SynonymLexicon::Default()) {
  embeddings_ =
      std::make_unique<text::EmbeddingModel>(lexicon_, options_.seed);
  builder_ = std::make_unique<query::QueryGraphBuilder>(&lexicon_);
  if (options_.obs.enabled && options_.obs.Validate().ok()) {
    // Ask/Execute run on the caller thread: one flight lane. Invalid
    // options never construct a (silently clamped) recorder — the clear
    // Status surfaces from the options_.Validate() call in Ingest.
    obs_ = std::make_unique<obs::Observability>(options_.obs, /*num_lanes=*/1);
  }
  serve::SnapshotStoreOptions store_options;
  store_options.enable_cache = options_.enable_cache;
  store_options.cache = options_.cache;
  store_options.executor = options_.executor;
  if (options_.durability.enabled()) {
    durability_ = std::make_unique<serve::SnapshotDurability>(
        options_.durability.env, options_.durability.dir,
        options_.durability.options);
    if (obs_ != nullptr) durability_->SetMetrics(obs_->stack());
    store_options.durability = durability_.get();
  }
  store_ = std::make_unique<serve::GraphSnapshotStore>(embeddings_.get(),
                                                       store_options);
}

SvqaEngine::~SvqaEngine() = default;

Status SvqaEngine::BeginIngest() {
  MutexLock lock(&ingest_mu_);
  if (ingest_started_) {
    return Status::InvalidArgument("Ingest may only be called once");
  }
  ingest_started_ = true;
  return Status::OK();
}

void SvqaEngine::AbortIngest() {
  MutexLock lock(&ingest_mu_);
  ingest_started_ = false;
}

Status SvqaEngine::Ingest(const graph::Graph& knowledge_graph,
                          const std::vector<vision::Scene>& images,
                          SimClock* clock) {
  SVQA_RETURN_NOT_OK(options_.Validate());
  SVQA_RETURN_NOT_OK(BeginIngest());
  Status status = DoIngest(knowledge_graph, images, clock);
  // A failed ingest releases the slot so the caller may retry; Ask keeps
  // failing cleanly until a publish lands.
  if (!status.ok()) AbortIngest();
  return status;
}

Status SvqaEngine::DoIngest(const graph::Graph& knowledge_graph,
                            const std::vector<vision::Scene>& images,
                            SimClock* clock) {
  // Scene graph generation (§III-A).
  vision::DetectorOptions det = options_.detector;
  det.seed = options_.seed;
  auto model = std::make_shared<vision::RelationModel>(
      options_.sgg_model, data::Vocabulary::Default().scene_predicates,
      vision::RelationModel::DefaultOptionsFor(options_.sgg_model));
  model->FitBias(images);
  vision::SceneGraphGenerator generator(vision::SimulatedDetector(det),
                                        model, options_.sgg_mode);
  if (options_.resilience.fault_policy == nullptr) {
    scene_graphs_ = generator.GenerateAll(images, clock);
  } else {
    // Detector I/O is fault-prone: probe per scene, retrying transient
    // read failures with backoff; a scene whose read permanently fails
    // is skipped — a degraded (sparser) ingest beats no ingest.
    scene_graphs_.clear();
    scene_graphs_.reserve(images.size());
    for (const vision::Scene& scene : images) {
      const std::string key = "scene:" + std::to_string(scene.id);
      if (!ProbeWithRetry(options_.resilience, FaultSite::kDetectorIo, key,
                          clock)
               .ok()) {
        continue;
      }
      scene_graphs_.push_back(generator.Generate(scene, clock));
    }
  }

  // Entity gazetteer: KG vertex labels become proper nouns for the
  // question tagger.
  {
    std::vector<std::string> labels;
    labels.reserve(knowledge_graph.num_vertices());
    for (graph::VertexId v = 0; v < knowledge_graph.num_vertices(); ++v) {
      labels.push_back(knowledge_graph.vertex(v).label);
    }
    builder_->RegisterEntityNames(labels);
  }

  // Graph merging (Algorithm 1). The merge itself is not skippable, so
  // a permanent kKgMerge fault fails the ingest; transient ones retry.
  SVQA_RETURN_NOT_OK(ProbeWithRetry(options_.resilience, FaultSite::kKgMerge,
                                    "kg-merge", clock));
  aggregator::GraphMerger merger(options_.merger);
  SVQA_ASSIGN_OR_RETURN(auto merged,
                        merger.Merge(knowledge_graph, scene_graphs_, clock));

  // WAL first: the ingest is acknowledged on disk before any reader can
  // observe it, and a WAL failure fails the ingest (retryable).
  if (durability_ != nullptr) {
    SVQA_RETURN_NOT_OK(
        durability_->LogIntent(merged, store_->symbols().get()).status());
  }
  // Atomically publish: a concurrent Ask either still sees "nothing
  // ingested" or the complete snapshot — never a half-built graph.
  store_->Publish(std::move(merged));
  return Status::OK();
}

Status SvqaEngine::IngestMerged(aggregator::MergedGraph merged) {
  SVQA_RETURN_NOT_OK(options_.Validate());
  SVQA_RETURN_NOT_OK(BeginIngest());
  Status status = DoIngestMerged(std::move(merged));
  if (!status.ok()) AbortIngest();
  return status;
}

Status SvqaEngine::DoIngestMerged(aggregator::MergedGraph merged) {
  SVQA_RETURN_NOT_OK(merged.graph.CheckConsistency());

  // Gazetteer from the KG prefix of the merged graph.
  std::vector<std::string> labels;
  labels.reserve(merged.kg_vertex_count);
  for (graph::VertexId v = 0; v < merged.kg_vertex_count; ++v) {
    labels.push_back(merged.graph.vertex(v).label);
  }
  builder_->RegisterEntityNames(labels);

  if (durability_ != nullptr) {
    SVQA_RETURN_NOT_OK(
        durability_->LogIntent(merged, store_->symbols().get()).status());
  }
  store_->Publish(std::move(merged));
  return Status::OK();
}

Result<storage::RecoveryReport> SvqaEngine::WarmStart() {
  SVQA_RETURN_NOT_OK(options_.Validate());
  if (durability_ == nullptr) {
    return Status::InvalidArgument(
        "WarmStart requires options.durability.env to be set");
  }
  SVQA_RETURN_NOT_OK(BeginIngest());
  Result<storage::RecoveryReport> report =
      durability_->WarmStart(store_.get());
  if (!report.ok()) {
    AbortIngest();
    return report;
  }
  if (report->rung == storage::RecoveryRung::kColdStart) {
    // Nothing durable existed: release the slot so Ingest can run.
    AbortIngest();
    return report;
  }
  recovery_rung_.store(static_cast<int>(report->rung),
                       std::memory_order_relaxed);
  // Rebuild the entity gazetteer from the KG prefix of the recovered
  // graph, exactly as IngestMerged would have.
  serve::SnapshotPtr snap = store_->Current();
  if (snap != nullptr) {
    const aggregator::MergedGraph& merged = snap->merged();
    std::vector<std::string> labels;
    labels.reserve(merged.kg_vertex_count);
    for (graph::VertexId v = 0; v < merged.kg_vertex_count; ++v) {
      labels.push_back(merged.graph.vertex(v).label);
    }
    builder_->RegisterEntityNames(labels);
  }
  return report;
}

Status SvqaEngine::SaveMergedGraph(const std::string& path) const {
  serve::SnapshotPtr snap = store_->Current();
  if (snap == nullptr) {
    return Status::InvalidArgument("nothing ingested yet");
  }
  return aggregator::SaveMergedGraph(snap->merged(), path);
}

Result<query::QueryGraph> SvqaEngine::Parse(const std::string& question,
                                            SimClock* clock) const {
  return builder_->Build(question, clock);
}

Result<exec::Answer> SvqaEngine::Execute(const query::QueryGraph& graph,
                                         SimClock* clock) {
  serve::SnapshotPtr snap = store_->Current();
  if (snap == nullptr) {
    return Status::InvalidArgument("Ingest must be called before Execute");
  }
  Result<exec::Answer> result = snap->executor().Execute(graph, clock);
  if (result.ok()) {
    result.ValueOrDie().diagnostics.snapshot_id = snap->id();
    result.ValueOrDie().diagnostics.recovery_rung =
        recovery_rung_.load(std::memory_order_relaxed);
  }
  return result;
}

Result<exec::Answer> SvqaEngine::Ask(const std::string& question,
                                     SimClock* clock) {
  // Pin the snapshot that is current now; a publish racing this question
  // cannot swap the graph out from under it.
  serve::SnapshotPtr snap = store_->Current();
  if (snap == nullptr) {
    return Status::InvalidArgument("Ingest must be called before Ask");
  }
  exec::ResilienceOptions res = options_.resilience;
  // Salting the retry jitter with the question text decorrelates backoff
  // schedules across questions while keeping each one replayable.
  const uint64_t salt = StableHash64(question);
  const int rrung = recovery_rung_.load(std::memory_order_relaxed);

  // Per-question telemetry: metrics + flight always (when enabled), a
  // Tracer when the sampler selects this question's sequence number.
  // The tracer's span tree lands in the flight recorder; the scope must
  // outlive the resilient call below.
  obs::Scope scope;
  std::shared_ptr<obs::Tracer> tracer;
  if (obs_ != nullptr && obs_->enabled()) {
    const uint64_t qid = query_seq_.fetch_add(1, std::memory_order_relaxed);
    if (obs_->ShouldTrace(qid)) tracer = std::make_shared<obs::Tracer>(qid);
    scope = obs_->MakeScope(tracer.get(), /*lane=*/0, qid);
    res.obs = &scope;
  }

  Result<query::QueryGraph> graph = [&] {
    obs::Span parse_span(&scope, clock, "core.parse");
    return builder_->Build(question, clock);
  }();
  if (!graph.ok()) {
    if (!options_.enable_degradation) return graph.status();
    // A question we cannot even parse still deserves a definitive,
    // conservative answer rather than an exception path.
    exec::Answer ans = ConservativeAnswer(nlp::QuestionType::kReasoning,
                                          graph.status(), exec::Diagnostics{});
    ans.diagnostics.snapshot_id = snap->id();
    ans.diagnostics.recovery_rung = rrung;
    return ans;
  }

  return ExecuteLadder(snap, *graph, clock, res, salt);
}

Result<exec::Answer> SvqaEngine::ExecuteLadder(
    const serve::SnapshotPtr& snap, const query::QueryGraph& graph,
    SimClock* clock, const exec::ResilienceOptions& res, uint64_t salt) {
  const int rrung = recovery_rung_.load(std::memory_order_relaxed);

  // Rung 0: full execution with deadline, cancellation, and retries.
  exec::Diagnostics diag;
  Result<exec::Answer> result =
      snap->executor().ExecuteResilient(graph, clock, res, salt, &diag);
  if (result.ok()) {
    result.ValueOrDie().diagnostics.snapshot_id = snap->id();
    result.ValueOrDie().diagnostics.recovery_rung = rrung;
    return result;
  }
  if (!options_.enable_degradation) return result;

  // Rung 1: a partial answer from the main clause's cached subgraph.
  // The cache read still goes through the fault policy (which degrades
  // a faulted read to a miss), but performs no scans, so it cannot blow
  // the already-spent deadline further.
  ExecContext degraded_ctx;
  degraded_ctx.clock = clock;
  degraded_ctx.faults = res.fault_policy;
  if (std::optional<exec::Answer> partial =
          snap->executor().ExecuteFromCache(graph, degraded_ctx)) {
    partial->diagnostics.primary = result.status();
    partial->diagnostics.attempts = diag.attempts;
    partial->diagnostics.backoff_micros = diag.backoff_micros;
    partial->diagnostics.charged_micros = diag.charged_micros;
    partial->diagnostics.snapshot_id = snap->id();
    partial->diagnostics.recovery_rung = rrung;
    return *std::move(partial);
  }

  // Rung 2: the conservative answer.
  exec::Answer ans = ConservativeAnswer(graph.type(), result.status(), diag);
  ans.diagnostics.snapshot_id = snap->id();
  ans.diagnostics.recovery_rung = rrung;
  return ans;
}

Result<ExplainAnalysis> SvqaEngine::ExplainAnalyze(const std::string& question,
                                                   SimClock* clock) {
  serve::SnapshotPtr snap = store_->Current();
  if (snap == nullptr) {
    return Status::InvalidArgument(
        "Ingest must be called before ExplainAnalyze");
  }
  SimClock own_clock;
  if (clock == nullptr) clock = &own_clock;

  // Telemetry is forced on for the explained query regardless of the
  // engine's observability switch: a tracer (the attribution source)
  // plus a *private* metrics registry, so the cache hit/miss counters
  // in the report are this query's absolutes rather than deltas buried
  // in shared traffic. Spans still land in the engine's flight
  // recorder when one exists.
  const uint64_t qid = query_seq_.fetch_add(1, std::memory_order_relaxed);
  auto tracer = std::make_shared<obs::Tracer>(qid);
  obs::MetricsRegistry local_registry;
  obs::StackMetrics local_stack(&local_registry);
  obs::Scope scope;
  scope.tracer = tracer.get();
  scope.metrics = &local_stack;
  scope.flight = obs_ != nullptr ? obs_->flight() : nullptr;
  scope.flight_lane = 0;
  scope.query_id = qid;
  exec::ResilienceOptions res = options_.resilience;
  res.obs = &scope;

  // Unlike Ask, a parse failure is an error even with degradation
  // enabled: there is no execution to analyze.
  SVQA_ASSIGN_OR_RETURN(const query::QueryGraph graph, [&] {
    obs::Span parse_span(&scope, clock, "core.parse");
    return builder_->Build(question, clock);
  }());

  SVQA_ASSIGN_OR_RETURN(
      exec::Answer answer,
      ExecuteLadder(snap, graph, clock, res, StableHash64(question)));

  exec::CacheCounters cache;
  cache.present = true;
  cache.scope_hits = local_stack.cache_scope_hits->Value();
  cache.scope_misses = local_stack.cache_scope_misses->Value();
  cache.path_hits = local_stack.cache_path_hits->Value();
  cache.path_misses = local_stack.cache_path_misses->Value();

  ExplainAnalysis out;
  SVQA_ASSIGN_OR_RETURN(
      out.report,
      exec::BuildQueryCostReport(graph, *tracer, answer.diagnostics, cache));
  SVQA_RETURN_NOT_OK(
      out.report.VerifyReconciliation(answer.diagnostics.charged_micros));
  out.answer = std::move(answer);
  out.trace = std::move(tracer);
  return out;
}

Result<std::string> SvqaEngine::Explain(const std::string& question) {
  serve::SnapshotPtr snap = store_->Current();
  if (snap == nullptr) {
    return Status::InvalidArgument("Ingest must be called before Explain");
  }
  SimClock clock;
  SVQA_ASSIGN_OR_RETURN(query::QueryGraph graph,
                        builder_->Build(question, &clock));
  SVQA_ASSIGN_OR_RETURN(exec::Answer answer,
                        snap->executor().Execute(graph, &clock));

  std::string out;
  out += "Q: " + question + "\n\n";
  out += graph.ToString();
  out += "\nA: " + answer.text + "   (" +
         std::to_string(clock.ElapsedSeconds()) + " s virtual)\n";
  if (!answer.provenance.empty()) {
    out += "\nSupporting facts:\n";
    for (const auto& fact : answer.provenance) {
      out += "  " + fact.ToString() + "\n";
    }
  }
  return out;
}

exec::BatchResult SvqaEngine::ExecuteBatch(
    const std::vector<query::QueryGraph>& graphs,
    exec::BatchOptions batch_options) {
  // One snapshot for the whole batch: every query of the batch sees the
  // same graph even if a publish lands mid-run. The engine's
  // observability domain rides along unless the caller brought its own.
  if (batch_options.obs == nullptr) batch_options.obs = obs_.get();
  serve::SnapshotPtr snap = store_->Current();
  exec::BatchExecutor batch(snap == nullptr ? nullptr : &snap->executor(),
                            batch_options);
  return batch.ExecuteAll(graphs);
}

}  // namespace svqa::core
