#include "core/engine.h"

#include "data/vocabulary.h"
#include "vision/scene_graph_generator.h"

namespace svqa::core {

SvqaEngine::SvqaEngine(SvqaOptions options)
    : options_(std::move(options)),
      lexicon_(text::SynonymLexicon::Default()) {
  embeddings_ =
      std::make_unique<text::EmbeddingModel>(lexicon_, options_.seed);
  builder_ = std::make_unique<query::QueryGraphBuilder>(&lexicon_);
}

SvqaEngine::~SvqaEngine() = default;

Status SvqaEngine::Ingest(const graph::Graph& knowledge_graph,
                          const std::vector<vision::Scene>& images,
                          SimClock* clock) {
  SVQA_RETURN_NOT_OK(options_.Validate());
  if (merged_ != nullptr) {
    return Status::InvalidArgument("Ingest may only be called once");
  }

  // Scene graph generation (§III-A).
  vision::DetectorOptions det = options_.detector;
  det.seed = options_.seed;
  auto model = std::make_shared<vision::RelationModel>(
      options_.sgg_model, data::Vocabulary::Default().scene_predicates,
      vision::RelationModel::DefaultOptionsFor(options_.sgg_model));
  model->FitBias(images);
  vision::SceneGraphGenerator generator(vision::SimulatedDetector(det),
                                        model, options_.sgg_mode);
  scene_graphs_ = generator.GenerateAll(images, clock);

  // Entity gazetteer: KG vertex labels become proper nouns for the
  // question tagger.
  {
    std::vector<std::string> labels;
    labels.reserve(knowledge_graph.num_vertices());
    for (graph::VertexId v = 0; v < knowledge_graph.num_vertices(); ++v) {
      labels.push_back(knowledge_graph.vertex(v).label);
    }
    builder_->RegisterEntityNames(labels);
  }

  // Graph merging (Algorithm 1).
  aggregator::GraphMerger merger(options_.merger);
  SVQA_ASSIGN_OR_RETURN(auto merged,
                        merger.Merge(knowledge_graph, scene_graphs_, clock));
  merged_ = std::make_unique<aggregator::MergedGraph>(std::move(merged));

  // Online machinery.
  if (options_.enable_cache) {
    cache_ = std::make_unique<exec::KeyCentricCache>(options_.cache);
  }
  executor_ = std::make_unique<exec::QueryGraphExecutor>(
      merged_.get(), embeddings_.get(), cache_.get(), options_.executor);
  return Status::OK();
}

Status SvqaEngine::IngestMerged(aggregator::MergedGraph merged) {
  SVQA_RETURN_NOT_OK(options_.Validate());
  if (merged_ != nullptr) {
    return Status::InvalidArgument("Ingest may only be called once");
  }
  SVQA_RETURN_NOT_OK(merged.graph.CheckConsistency());

  // Gazetteer from the KG prefix of the merged graph.
  std::vector<std::string> labels;
  labels.reserve(merged.kg_vertex_count);
  for (graph::VertexId v = 0; v < merged.kg_vertex_count; ++v) {
    labels.push_back(merged.graph.vertex(v).label);
  }
  builder_->RegisterEntityNames(labels);

  merged_ = std::make_unique<aggregator::MergedGraph>(std::move(merged));
  if (options_.enable_cache) {
    cache_ = std::make_unique<exec::KeyCentricCache>(options_.cache);
  }
  executor_ = std::make_unique<exec::QueryGraphExecutor>(
      merged_.get(), embeddings_.get(), cache_.get(), options_.executor);
  return Status::OK();
}

Status SvqaEngine::SaveMergedGraph(const std::string& path) const {
  if (merged_ == nullptr) {
    return Status::InvalidArgument("nothing ingested yet");
  }
  return aggregator::SaveMergedGraph(*merged_, path);
}

Result<query::QueryGraph> SvqaEngine::Parse(const std::string& question,
                                            SimClock* clock) const {
  return builder_->Build(question, clock);
}

Result<exec::Answer> SvqaEngine::Execute(const query::QueryGraph& graph,
                                         SimClock* clock) {
  if (executor_ == nullptr) {
    return Status::InvalidArgument("Ingest must be called before Execute");
  }
  return executor_->Execute(graph, clock);
}

Result<exec::Answer> SvqaEngine::Ask(const std::string& question,
                                     SimClock* clock) {
  if (executor_ == nullptr) {
    return Status::InvalidArgument("Ingest must be called before Ask");
  }
  SVQA_ASSIGN_OR_RETURN(query::QueryGraph graph,
                        builder_->Build(question, clock));
  return executor_->Execute(graph, clock);
}

Result<std::string> SvqaEngine::Explain(const std::string& question) {
  if (executor_ == nullptr) {
    return Status::InvalidArgument("Ingest must be called before Explain");
  }
  SimClock clock;
  SVQA_ASSIGN_OR_RETURN(query::QueryGraph graph,
                        builder_->Build(question, &clock));
  SVQA_ASSIGN_OR_RETURN(exec::Answer answer,
                        executor_->Execute(graph, &clock));

  std::string out;
  out += "Q: " + question + "\n\n";
  out += graph.ToString();
  out += "\nA: " + answer.text + "   (" +
         std::to_string(clock.ElapsedSeconds()) + " s virtual)\n";
  if (!answer.provenance.empty()) {
    out += "\nSupporting facts:\n";
    for (const auto& fact : answer.provenance) {
      out += "  " + fact.ToString() + "\n";
    }
  }
  return out;
}

exec::BatchResult SvqaEngine::ExecuteBatch(
    const std::vector<query::QueryGraph>& graphs,
    exec::BatchOptions batch_options) {
  exec::BatchExecutor batch(executor_.get(), batch_options);
  return batch.ExecuteAll(graphs);
}

}  // namespace svqa::core
