#ifndef SVQA_CORE_OPTIONS_H_
#define SVQA_CORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "aggregator/merger.h"
#include "exec/executor.h"
#include "exec/key_centric_cache.h"
#include "obs/observability.h"
#include "serve/durability.h"
#include "vision/detector.h"
#include "vision/relation_model.h"
#include "vision/tde.h"

namespace svqa::core {

/// \brief End-to-end configuration of an SvqaEngine.
struct SvqaOptions {
  /// Scene graph generation.
  vision::DetectorOptions detector;
  vision::RelationModel::Kind sgg_model =
      vision::RelationModel::Kind::kNeuralMotifs;
  vision::InferenceMode sgg_mode = vision::InferenceMode::kTde;

  /// Data aggregation (Algorithm 1).
  aggregator::MergerOptions merger;

  /// Key-centric caching (§V-B); set enable_cache=false for the
  /// no-cache ablation. Caches are snapshot-scoped: each snapshot the
  /// engine's GraphSnapshotStore publishes gets a fresh cache built with
  /// these options (cached scopes are only valid for the graph they were
  /// computed over).
  bool enable_cache = true;
  exec::KeyCentricCacheOptions cache;

  /// Executor tuning. `executor.use_frozen_graph` (on by default) makes
  /// every snapshot the engine publishes compile a frozen CSR image of
  /// its merged graph — interned into the store-wide symbol table — and
  /// execute queries in id space; answers and charged virtual costs are
  /// identical either way (see DESIGN.md "Memory layout & snapshot
  /// compilation").
  exec::ExecutorOptions executor;

  /// Resilience: per-query virtual deadline, transient-failure retries,
  /// fault-injection policy, and cooperative cancellation, threaded
  /// through Ask and ExecuteBatch (see DESIGN.md "Failure model").
  exec::ResilienceOptions resilience;
  /// Walk Ask failures down the degradation ladder — full execution,
  /// then a cached-subgraph partial answer, then the conservative
  /// answer ("no" / 0 / "unknown") — instead of surfacing the error.
  /// The rung taken is recorded in Answer::diagnostics. Disable to get
  /// the raw failure Status.
  bool enable_degradation = true;

  /// Durability: when `durability.env` is set, every ingest is
  /// WAL-logged before it becomes visible, snapshot files are persisted
  /// under `durability.dir`, and SvqaEngine::WarmStart can rebuild the
  /// serving state after a crash (see DESIGN.md "Durability & crash
  /// recovery"). Null env = fully in-memory, exactly as before.
  serve::DurabilitySetup durability;

  /// Observability: when `obs.enabled` the engine owns one
  /// obs::Observability — metrics registry with the pre-registered stack
  /// families, flight recorder, and per-query trace sampling — threaded
  /// through Ask and ExecuteBatch (see DESIGN.md "Observability").
  /// Off by default: every hook compiled into the stack then sees a
  /// null scope and costs one predictable branch.
  obs::ObsOptions obs;

  /// Embedding / noise seed.
  uint64_t seed = 42;

  /// Validates internal consistency.
  Status Validate() const;
};

}  // namespace svqa::core

#endif  // SVQA_CORE_OPTIONS_H_
