#include "core/options.h"

#include <cmath>

namespace svqa::core {

Status SvqaOptions::Validate() const {
  if (detector.miss_rate < 0 || detector.miss_rate > 1 ||
      detector.misclassify_rate < 0 || detector.misclassify_rate > 1) {
    return Status::InvalidArgument("detector rates must be in [0, 1]");
  }
  if (merger.cache.hop_radius < 0) {
    return Status::InvalidArgument("hop radius must be non-negative");
  }
  if (executor.predicate_similarity_threshold < -1 ||
      executor.predicate_similarity_threshold > 1) {
    return Status::InvalidArgument(
        "predicate similarity threshold must be a cosine in [-1, 1]");
  }
  if (resilience.retry.max_attempts < 1) {
    return Status::InvalidArgument("retry.max_attempts must be >= 1");
  }
  if (resilience.retry.base_backoff_micros < 0 ||
      resilience.retry.max_backoff_micros < 0) {
    return Status::InvalidArgument("retry backoffs must be non-negative");
  }
  if (resilience.retry.backoff_multiplier < 1) {
    return Status::InvalidArgument("retry.backoff_multiplier must be >= 1");
  }
  if (resilience.retry.jitter_fraction < 0 ||
      resilience.retry.jitter_fraction >= 1) {
    return Status::InvalidArgument("retry.jitter_fraction must be in [0, 1)");
  }
  if (std::isnan(resilience.query_deadline_micros)) {
    return Status::InvalidArgument("query_deadline_micros must not be NaN");
  }
  return obs.Validate();
}

}  // namespace svqa::core
