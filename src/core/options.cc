#include "core/options.h"

namespace svqa::core {

Status SvqaOptions::Validate() const {
  if (detector.miss_rate < 0 || detector.miss_rate > 1 ||
      detector.misclassify_rate < 0 || detector.misclassify_rate > 1) {
    return Status::InvalidArgument("detector rates must be in [0, 1]");
  }
  if (merger.cache.hop_radius < 0) {
    return Status::InvalidArgument("hop radius must be non-negative");
  }
  if (executor.predicate_similarity_threshold < -1 ||
      executor.predicate_similarity_threshold > 1) {
    return Status::InvalidArgument(
        "predicate similarity threshold must be a cosine in [-1, 1]");
  }
  return Status::OK();
}

}  // namespace svqa::core
