#ifndef SVQA_CORE_EVALUATION_H_
#define SVQA_CORE_EVALUATION_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "data/mvqa_generator.h"
#include "exec/executor.h"
#include "text/embedding.h"

namespace svqa::core {

/// \brief Answer-correctness judge (§VII "Experimental Setting"):
/// judgment answers need the exact yes/no, counting the exact number, and
/// reasoning answers are compared by embedding cosine similarity so that
/// synonyms ("dog" vs "puppy") count as consistent.
bool AnswersMatch(const std::string& expected, const std::string& actual,
                  nlp::QuestionType type,
                  const text::EmbeddingModel& embeddings,
                  double similarity_threshold = 0.6);

/// \brief Why an answer went wrong (the Figure 8 error taxonomy).
enum class ErrorCause {
  kNone,
  /// The NL pipeline produced a query graph that diverges from the gold
  /// logical form (Fig. 8a, statement parsing).
  kStatementParsing,
  /// Execution produced a wrong answer over the noisy merged graph
  /// (Fig. 8b/8c: object detection / relationship generation).
  kSceneGraph,
};

/// \brief Per-question evaluation record.
struct QuestionEval {
  bool correct = false;
  ErrorCause cause = ErrorCause::kNone;
  std::string expected;
  std::string actual;
  double latency_micros = 0;
  nlp::QuestionType type = nlp::QuestionType::kReasoning;
};

/// \brief Aggregated Exp-1 style results.
struct EvalSummary {
  double judgment_accuracy = 0;
  double counting_accuracy = 0;
  double reasoning_accuracy = 0;
  double overall_accuracy = 0;
  double mean_latency_seconds = 0;
  int parse_errors = 0;
  int scene_graph_errors = 0;
  std::vector<QuestionEval> details;
};

/// \brief Runs the full MVQA evaluation: every question goes through the
/// engine's NL pipeline (Ask) over its noisy merged graph; correctness is
/// judged against the dataset's gold answers. Errors are attributed by
/// re-running the gold logical form: if the gold graph answers correctly
/// on the same (noisy) merged graph, the failure was statement parsing;
/// otherwise it is a scene-graph (detection / relation) failure.
EvalSummary EvaluateMvqa(SvqaEngine* engine, const data::MvqaDataset& dataset);

}  // namespace svqa::core

#endif  // SVQA_CORE_EVALUATION_H_
