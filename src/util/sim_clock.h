#ifndef SVQA_UTIL_SIM_CLOCK_H_
#define SVQA_UTIL_SIM_CLOCK_H_

#include <cstdint>
#include <string>

namespace svqa {

/// \brief Categories of primitive work charged to the virtual clock.
///
/// The paper reports wall-clock latency on an 8xV100 server; this repo
/// substitutes a *virtual time* model (see DESIGN.md) in which every
/// primitive operation charges a documented cost. Caches and schedulers
/// genuinely skip operations, so latency effects in the experiments are
/// algorithmic, deterministic, and machine-independent.
enum class CostKind : int {
  /// One label comparison while scanning merged-graph vertices
  /// (matchVertex scope scan).
  kVertexCompare = 0,
  /// One adjacency-list edge visited during relation-pair discovery.
  kEdgeTraverse,
  /// One Levenshtein distance evaluation between two labels.
  kLevenshtein,
  /// One embedding-cosine similarity evaluation (maxScore).
  kEmbeddingSim,
  /// One cache probe (hit or miss bookkeeping).
  kCacheProbe,
  /// One token processed by the rule-based POS tagger / parser.
  kParseToken,
  /// One transition applied by the dependency parser.
  kParseTransition,
  /// One image processed by a neural VQA baseline (per-image forward
  /// pass); the per-model multiplier scales this.
  kNeuralImageInference,
  /// One question processed by a neural sentence-split baseline.
  kNeuralParseInference,
  /// One-time neural model load (weights from disk to GPU).
  kModelLoad,
  /// Scene-graph generation for one image (simulated detector +
  /// relation model).
  kSceneGraphGen,
  kNumKinds,
};

/// \brief Unit costs, in virtual microseconds, per CostKind.
///
/// Defaults are calibrated so the reproduced latency *ratios* match the
/// paper's Tables III/IV and Figures 9-11 (see EXPERIMENTS.md); absolute
/// values are documented estimates, not measurements of the authors'
/// hardware.
struct CostModel {
  double unit_micros[static_cast<int>(CostKind::kNumKinds)] = {
      /*kVertexCompare=*/1.5,
      /*kEdgeTraverse=*/15.0,  // relation search over G_mg dominates
      /*kLevenshtein=*/2.5,
      /*kEmbeddingSim=*/10.0,
      /*kCacheProbe=*/0.2,
      /*kParseToken=*/30'000.0,    // rule parsing: ~0.6 s per question
      /*kParseTransition=*/8'000.0,
      /*kNeuralImageInference=*/25'000.0,  // 25 ms/image baseline forward
      /*kNeuralParseInference=*/100'000.0,  // 0.1 s/question neural split
      /*kModelLoad=*/6'000'000.0,  // 6 s one-time weight load
      /*kSceneGraphGen=*/90'000.0,
  };

  double MicrosFor(CostKind kind, double count = 1.0) const {
    return unit_micros[static_cast<int>(kind)] * count;
  }
};

/// \brief Accumulates virtual elapsed time for one execution context.
///
/// Not thread-safe: parallel executors give each worker its own clock and
/// combine results with `MergeParallel` (elapsed = max) or `MergeSerial`
/// (elapsed = sum).
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(CostModel model) : model_(model) {}

  /// Charges `count` operations of the given kind.
  void Charge(CostKind kind, double count = 1.0) {
    micros_ += model_.MicrosFor(kind, count);
    op_counts_[static_cast<int>(kind)] += count;
  }

  /// Charges an explicit duration (e.g. a baseline's documented constant).
  void ChargeMicros(double micros) { micros_ += micros; }

  double ElapsedMicros() const { return micros_; }
  double ElapsedMillis() const { return micros_ / 1e3; }
  double ElapsedSeconds() const { return micros_ / 1e6; }

  /// Total operations charged for `kind` (for instrumentation asserts).
  double OpCount(CostKind kind) const {
    return op_counts_[static_cast<int>(kind)];
  }

  const CostModel& model() const { return model_; }

  void Reset() {
    micros_ = 0;
    for (auto& c : op_counts_) c = 0;
  }

  /// Folds a concurrently-executed sibling clock into this one: elapsed
  /// time takes the max, op counts add.
  void MergeParallel(const SimClock& other) {
    if (other.micros_ > micros_) micros_ = other.micros_;
    AddCounts(other);
  }

  /// Folds a sequentially-executed sibling clock: times and counts add.
  void MergeSerial(const SimClock& other) {
    micros_ += other.micros_;
    AddCounts(other);
  }

  /// Debug rendering of per-kind op counts.
  std::string Summary() const;

 private:
  void AddCounts(const SimClock& other) {
    for (int i = 0; i < static_cast<int>(CostKind::kNumKinds); ++i) {
      op_counts_[i] += other.op_counts_[i];
    }
  }

  CostModel model_;
  double micros_ = 0;
  double op_counts_[static_cast<int>(CostKind::kNumKinds)] = {};
};

}  // namespace svqa

#endif  // SVQA_UTIL_SIM_CLOCK_H_
