#ifndef SVQA_UTIL_LOGGING_H_
#define SVQA_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace svqa {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level; messages below it are dropped.
/// Defaults to kWarning so tests and benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Use via SVQA_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace svqa

#define SVQA_LOG(level)                                          \
  ::svqa::internal::LogMessage(::svqa::LogLevel::k##level, \
                               __FILE__, __LINE__)

/// Fatal-on-false invariant check (active in all build types).
#define SVQA_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      SVQA_LOG(Error) << "Check failed: " #cond;                          \
      ::abort();                                                          \
    }                                                                     \
  } while (false)

#endif  // SVQA_UTIL_LOGGING_H_
