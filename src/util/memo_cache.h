#ifndef SVQA_UTIL_MEMO_CACHE_H_
#define SVQA_UTIL_MEMO_CACHE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>

#include "util/annotations.h"
#include "util/mutex.h"

namespace svqa {

/// \brief Hit/miss counters of a MemoCache, snapshotted by value.
struct MemoStats {
  uint64_t hits = 0;
  uint64_t misses = 0;

  uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    const uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// \brief Small unbounded thread-safe memo table for pure functions.
///
/// Used to memoize deterministic derivations whose key universe is tiny
/// and fixed by the workload (predicate -> best merged-graph edge label,
/// constraint phrase -> ConstraintSpec, possessive head -> KG edge
/// label). Unlike the key-centric cache there is no eviction: the tables
/// stay bounded by the vocabulary, not the batch size.
///
/// Thread-safety: all operations take the internal Mutex. `Get` copies
/// the hit out so no reference into the guarded map escapes. Concurrent
/// `GetOrCompute` callers may compute the same value twice (the compute
/// runs outside the lock); last write wins, which is harmless because
/// memoized functions are pure — every computed value for a key is
/// identical.
template <typename K, typename V>
class MemoCache {
 public:
  MemoCache() = default;
  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  std::optional<V> Get(const K& key) {
    MutexLock lock(&mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    return it->second;
  }

  void Put(const K& key, V value) {
    MutexLock lock(&mu_);
    map_.insert_or_assign(key, std::move(value));
  }

  /// Returns the memoized value for `key`, computing it with `compute()`
  /// on a miss. `compute` runs outside the lock.
  template <typename Fn>
  V GetOrCompute(const K& key, Fn&& compute) {
    if (auto hit = Get(key)) return std::move(*hit);
    V value = compute();
    Put(key, value);
    return value;
  }

  std::size_t size() const {
    MutexLock lock(&mu_);
    return map_.size();
  }

  MemoStats stats() const {
    MutexLock lock(&mu_);
    return stats_;
  }

  void Clear() {
    MutexLock lock(&mu_);
    map_.clear();
    stats_ = MemoStats{};
  }

 private:
  mutable Mutex mu_;
  std::unordered_map<K, V> map_ SVQA_GUARDED_BY(mu_);
  MemoStats stats_ SVQA_GUARDED_BY(mu_);
};

}  // namespace svqa

#endif  // SVQA_UTIL_MEMO_CACHE_H_
