#ifndef SVQA_UTIL_ANNOTATIONS_H_
#define SVQA_UTIL_ANNOTATIONS_H_

/// \file
/// Clang thread-safety-analysis annotations (no-ops elsewhere).
///
/// Every piece of shared mutable state in the codebase declares which
/// mutex guards it via `SVQA_GUARDED_BY`, and every function that must be
/// called with a lock held says so via `SVQA_REQUIRES`. Clang builds add
/// `-Wthread-safety -Werror=thread-safety` (see the root CMakeLists.txt),
/// turning those declarations into compile errors when violated, so the
/// locking discipline of the parallel execution path is enforced by the
/// compiler instead of by convention. GCC defines the macros away.
///
/// The macro set mirrors the vocabulary of
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html and is prefixed
/// to avoid colliding with third-party headers that define the bare names.

#if defined(__clang__) && !defined(SVQA_NO_THREAD_SAFETY_ANNOTATIONS)
#define SVQA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SVQA_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Declares a data member protected by the given capability (mutex).
#define SVQA_GUARDED_BY(x) SVQA_THREAD_ANNOTATION_(guarded_by(x))

/// Declares a pointer member whose *pointee* is protected by the mutex.
#define SVQA_PT_GUARDED_BY(x) SVQA_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called while holding the capability.
#define SVQA_REQUIRES(...) \
  SVQA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function may only be called while *not* holding the capability.
#define SVQA_EXCLUDES(...) \
  SVQA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define SVQA_ACQUIRE(...) \
  SVQA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the capability.
#define SVQA_RELEASE(...) \
  SVQA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `ret`.
#define SVQA_TRY_ACQUIRE(ret, ...) \
  SVQA_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Marks a type as a lockable capability (e.g. a mutex class).
#define SVQA_CAPABILITY(x) SVQA_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose lifetime equals a critical section.
#define SVQA_SCOPED_CAPABILITY SVQA_THREAD_ANNOTATION_(scoped_lockable)

/// The function returns a reference to the named capability.
#define SVQA_RETURN_CAPABILITY(x) SVQA_THREAD_ANNOTATION_(lock_returned(x))

/// Ordering hint: this mutex must be acquired after the listed ones.
#define SVQA_ACQUIRED_AFTER(...) \
  SVQA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model (e.g. condition
/// variable wait, which releases and reacquires internally). Use
/// sparingly and leave a comment explaining why it is sound.
#define SVQA_NO_THREAD_SAFETY_ANALYSIS \
  SVQA_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Mandatory-error-checking marker for outcome-carrying types and
/// must-check APIs. `Status` and `Result<T>` are declared with it, so
/// any call that drops a returned outcome on the floor is a compiler
/// warning (an error under the lint preset's -Werror) on every
/// supported toolchain. Deliberate discards must say so with a
/// `(void)` cast and a comment; `tools/svqa_lint` additionally audits
/// unchecked value access on these types (see DESIGN.md, "Static
/// invariants").
#define SVQA_NODISCARD [[nodiscard]]

#endif  // SVQA_UTIL_ANNOTATIONS_H_
