#ifndef SVQA_UTIL_JSON_UTIL_H_
#define SVQA_UTIL_JSON_UTIL_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace svqa {
namespace util {

/// \brief Appends `s` to `out` as the *contents* of a JSON string
/// (quotes not included), escaping the characters JSON cannot carry
/// raw: quote, backslash, and control characters below 0x20.
///
/// Shared by every JSON emitter in the tree (trace_event spans, metric
/// snapshots, cost reports) so there is exactly one escaping policy:
/// the named short escapes where they exist, \u00XX otherwise. Bytes
/// >= 0x20 pass through untouched — emitters hand over UTF-8 and JSON
/// carries UTF-8 verbatim.
inline void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Convenience form of AppendJsonEscaped.
inline std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(s, &out);
  return out;
}

}  // namespace util
}  // namespace svqa

#endif  // SVQA_UTIL_JSON_UTIL_H_
