#ifndef SVQA_UTIL_STATUS_H_
#define SVQA_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "util/annotations.h"

namespace svqa {

/// \brief Machine-readable error category attached to a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kParseError = 5,
  kExecutionError = 6,
  kInternal = 7,
  kUnimplemented = 8,
  /// The operation's virtual-time deadline elapsed before it finished.
  kDeadlineExceeded = 9,
  /// The operation observed a cancellation request and stopped early.
  kCancelled = 10,
  /// A bounded resource (budget, pool, injected transient capacity) was
  /// exhausted; the canonical *transient* failure class — retryable.
  kResourceExhausted = 11,
};

/// \brief Returns the canonical lowercase name of a status code
/// (e.g. "invalid-argument").
std::string_view StatusCodeName(StatusCode code);

/// \brief Arrow/RocksDB-style operation outcome: a code plus a
/// human-readable message. `Status::OK()` is cheap (no allocation).
///
/// Functions in this library that can fail return either `Status` or
/// `Result<T>`; exceptions are not used on library paths.
///
/// The class-level SVQA_NODISCARD makes every function returning a
/// `Status` by value a must-check API: ignoring the outcome is a
/// compile-time diagnostic, not a code-review catch.
class SVQA_NODISCARD Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory for the singleton-like OK value.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  SVQA_NODISCARD bool ok() const { return code_ == StatusCode::kOk; }
  SVQA_NODISCARD StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsExecutionError() const {
    return code_ == StatusCode::kExecutionError;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// Renders "OK" or "<code-name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller. Mirrors ARROW_RETURN_NOT_OK.
#define SVQA_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::svqa::Status _svqa_status = (expr);        \
    if (!_svqa_status.ok()) return _svqa_status; \
  } while (false)

}  // namespace svqa

#endif  // SVQA_UTIL_STATUS_H_
