#ifndef SVQA_UTIL_RNG_H_
#define SVQA_UTIL_RNG_H_

#include <cstdint>
#include <string_view>

namespace svqa {

/// \brief Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
///
/// Every stochastic component in this library draws from an explicitly
/// seeded Rng so that datasets, noise models, and benches are reproducible
/// bit-for-bit across runs and machines. Not cryptographically secure.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Rng(uint64_t seed) { Reseed(seed); }

  /// Re-seeds in place, restarting the stream.
  void Reseed(uint64_t seed) {
    // splitmix64 expansion of the single seed word into 4 state words.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit draw.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Below(uint64_t bound) {
    // Lemire's multiply-shift with rejection for unbiased sampling.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (-bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Chance(double p) { return NextDouble() < p; }

  /// Standard-normal-ish draw (sum of 4 uniforms, variance-corrected) —
  /// cheap and deterministic, adequate for feature-noise simulation.
  double NextGaussian() {
    double s = NextDouble() + NextDouble() + NextDouble() + NextDouble();
    return (s - 2.0) * 1.7320508075688772;  // sqrt(12/4) = sqrt(3)
  }

  /// Derives an independent child generator from this one's stream plus a
  /// caller-supplied salt (useful for per-item reproducibility).
  Rng Fork(uint64_t salt) {
    return Rng(Next() ^ (salt * 0x9e3779b97f4a7c15ULL));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// \brief Stable 64-bit FNV-1a hash of a string; used to derive
/// reproducible per-token seeds and embedding projections.
inline uint64_t StableHash64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// \brief Combines two 64-bit hashes (boost::hash_combine style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace svqa

#endif  // SVQA_UTIL_RNG_H_
