#ifndef SVQA_UTIL_RESULT_H_
#define SVQA_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/annotations.h"
#include "util/status.h"

namespace svqa {

/// \brief Value-or-error holder in the spirit of arrow::Result.
///
/// A `Result<T>` either holds a `T` (status is OK) or a non-OK `Status`.
/// Accessing the value of an errored Result aborts in debug builds.
///
/// SVQA_NODISCARD at class level: a dropped `Result` silently swallows
/// both the value and the error, so discarding one is a diagnostic.
///
/// svqa-lint: allow-file(unchecked-result) — this header *defines* the
/// checked accessors; the rule polices their call sites, not the
/// assert-guarded implementations here.
template <typename T>
class SVQA_NODISCARD Result {
 public:
  /// Implicit from a value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: allows `return Status::...;`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : storage_(std::move(status)) {
    assert(!std::get<Status>(storage_).ok() &&
           "Result constructed from OK status without a value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  SVQA_NODISCARD bool ok() const { return std::holds_alternative<T>(storage_); }

  /// The status: OK when a value is held.
  SVQA_NODISCARD Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(storage_);
  }

  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie on errored Result");
    return std::get<T>(storage_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie on errored Result");
    return std::get<T>(storage_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie on errored Result");
    return std::get<T>(std::move(storage_));
  }

  /// Shorthand accessors matching arrow::Result.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(storage_);
    return fallback;
  }

 private:
  std::variant<Status, T> storage_;
};

/// Assigns the unwrapped value of a Result expression to `lhs`, or returns
/// its error. Mirrors ARROW_ASSIGN_OR_RAISE. `lhs` may include a
/// declaration, e.g. SVQA_ASSIGN_OR_RETURN(auto g, LoadGraph(path));
#define SVQA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie()

#define SVQA_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define SVQA_ASSIGN_OR_RETURN_NAME(x, y) SVQA_ASSIGN_OR_RETURN_CONCAT(x, y)

#define SVQA_ASSIGN_OR_RETURN(lhs, expr) \
  SVQA_ASSIGN_OR_RETURN_IMPL(            \
      SVQA_ASSIGN_OR_RETURN_NAME(_svqa_result_, __LINE__), lhs, expr)

}  // namespace svqa

#endif  // SVQA_UTIL_RESULT_H_
