#include "util/thread_pool.h"

#include <atomic>
#include <utility>

namespace svqa {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t shards = std::min(n, workers_.size());
  for (std::size_t s = 0; s < shards; ++s) {
    Submit([&next, n, &fn] {
      for (std::size_t i = next.fetch_add(1); i < n;
           i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace svqa
