#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/logging.h"

namespace svqa {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  bool join_here = false;
  {
    MutexLock lock(&mu_);
    stop_ = true;
    // First caller to observe !joined_ owns the join; later (or
    // concurrent) callers return without waiting for the drain.
    if (!joined_) {
      joined_ = true;
      join_here = true;
    }
  }
  work_cv_.NotifyAll();
  if (join_here) {
    for (auto& worker : workers_) worker.join();
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    if (stop_) return false;
    queue_.push(std::move(task));
  }
  work_cv_.NotifyOne();
  return true;
}

void ThreadPool::WaitIdle() {
  MutexLock lock(&mu_);
  idle_cv_.WaitUntil(&mu_, [this]() SVQA_REQUIRES(mu_) {
    return queue_.empty() && active_ == 0;
  });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t shards = std::min(n, workers_.size());
  for (std::size_t s = 0; s < shards; ++s) {
    const bool accepted = Submit([&next, n, &fn] {
      for (std::size_t i = next.fetch_add(1); i < n;
           i = next.fetch_add(1)) {
        fn(i);
      }
    });
    SVQA_CHECK(accepted);  // ParallelFor on a shut-down pool is a bug.
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      work_cv_.WaitUntil(&mu_, [this]() SVQA_REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      // Drain-on-shutdown: exit only once the queue is empty, so every
      // task accepted before Shutdown() runs.
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace svqa
