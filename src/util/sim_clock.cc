#include "util/sim_clock.h"

#include <sstream>

namespace svqa {
namespace {

const char* KindName(CostKind kind) {
  switch (kind) {
    case CostKind::kVertexCompare:
      return "vertex-compare";
    case CostKind::kEdgeTraverse:
      return "edge-traverse";
    case CostKind::kLevenshtein:
      return "levenshtein";
    case CostKind::kEmbeddingSim:
      return "embedding-sim";
    case CostKind::kCacheProbe:
      return "cache-probe";
    case CostKind::kParseToken:
      return "parse-token";
    case CostKind::kParseTransition:
      return "parse-transition";
    case CostKind::kNeuralImageInference:
      return "neural-image-inference";
    case CostKind::kNeuralParseInference:
      return "neural-parse-inference";
    case CostKind::kModelLoad:
      return "model-load";
    case CostKind::kSceneGraphGen:
      return "scene-graph-gen";
    case CostKind::kNumKinds:
      break;
  }
  return "?";
}

}  // namespace

std::string SimClock::Summary() const {
  std::ostringstream os;
  os << "elapsed=" << ElapsedMillis() << "ms";
  for (int i = 0; i < static_cast<int>(CostKind::kNumKinds); ++i) {
    if (op_counts_[i] > 0) {
      os << " " << KindName(static_cast<CostKind>(i)) << "="
         << op_counts_[i];
    }
  }
  return os.str();
}

}  // namespace svqa
