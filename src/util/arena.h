#ifndef SVQA_UTIL_ARENA_H_
#define SVQA_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace svqa::util {

/// \brief Bump allocator for per-query executor intermediates.
///
/// Allocation is a pointer bump inside the current slab; there is no
/// per-object free. `Reset` rewinds every slab for reuse, so a query (or
/// a retry attempt) starts from zero without returning memory to the
/// heap — the steady-state allocation count of a query running on a warm
/// arena is zero.
///
/// Lifetime contract: objects allocated from the arena are invalidated
/// by `Reset` and by the arena's destruction. The executor resets the
/// arena between queries (and between resilient retry attempts), so
/// nothing allocated from it may be stored into cross-query state (the
/// key-centric cache, memo tables, answers). Trivially-destructible
/// element types only — `Reset` runs no destructors.
///
/// Not thread-safe: an arena belongs to one query execution on one
/// worker. Batch workers each use their own arena.
class Arena {
 public:
  explicit Arena(std::size_t min_slab_bytes = 4096)
      : min_slab_bytes_(min_slab_bytes == 0 ? 4096 : min_slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  void* Allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    while (slab_ < slabs_.size()) {
      const std::size_t base =
          reinterpret_cast<std::size_t>(slabs_[slab_].data.get());
      const std::size_t aligned = (base + used_ + align - 1) & ~(align - 1);
      const std::size_t offset = aligned - base;
      if (offset + bytes <= slabs_[slab_].cap) {
        used_ = offset + bytes;
        bytes_served_ += bytes;
        return reinterpret_cast<void*>(aligned);
      }
      // Current slab exhausted: move to the next (pre-existing after a
      // Reset) or fall through to grow.
      if (slab_ + 1 >= slabs_.size()) break;
      ++slab_;
      used_ = 0;
    }
    NewSlab(bytes + align);
    return Allocate(bytes, align);
  }

  /// Rewinds all slabs. Previously returned pointers become invalid;
  /// reserved capacity is kept for the next query.
  void Reset() {
    slab_ = 0;
    used_ = 0;
    bytes_served_ = 0;
  }

  /// Bytes handed out since construction / the last Reset.
  std::size_t bytes_served() const { return bytes_served_; }
  /// Total slab capacity currently reserved from the heap.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Slab& s : slabs_) total += s.cap;
    return total;
  }
  std::size_t num_slabs() const { return slabs_.size(); }

 private:
  struct Slab {
    std::unique_ptr<char[]> data;
    std::size_t cap = 0;
  };

  void NewSlab(std::size_t at_least) {
    std::size_t cap = min_slab_bytes_;
    if (!slabs_.empty()) cap = slabs_.back().cap * 2;  // geometric growth
    if (cap < at_least) cap = at_least;
    slabs_.push_back(Slab{std::make_unique<char[]>(cap), cap});
    slab_ = slabs_.size() - 1;
    used_ = 0;
  }

  const std::size_t min_slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t slab_ = 0;  ///< Index of the slab being bumped.
  std::size_t used_ = 0;  ///< Bytes consumed in the current slab.
  std::size_t bytes_served_ = 0;
};

/// \brief std-compatible allocator adapter over an Arena. `deallocate`
/// is a no-op — storage is reclaimed wholesale by `Arena::Reset`.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other)  // NOLINT(runtime/explicit)
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

/// Convenience alias for the executor's scratch vectors.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace svqa::util

#endif  // SVQA_UTIL_ARENA_H_
