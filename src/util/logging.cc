#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/mutex.h"

namespace svqa {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Serializes writes to stderr so interleaved messages from concurrent
/// workers stay line-atomic. (stderr itself is the guarded resource; the
/// stream buffers are per-message locals.)
Mutex& EmitMutex() {
  static Mutex m;
  return m;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  MutexLock lock(&EmitMutex());
  std::fputs(stream_.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace internal
}  // namespace svqa
