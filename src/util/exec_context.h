#ifndef SVQA_UTIL_EXEC_CONTEXT_H_
#define SVQA_UTIL_EXEC_CONTEXT_H_

#include <string>
#include <string_view>

#include "util/arena.h"
#include "util/cancellation.h"
#include "util/fault_injector.h"
#include "util/sim_clock.h"
#include "util/status.h"

namespace svqa {

namespace obs {
// Forward declaration only: util sits below obs in the layer DAG, so
// ExecContext carries the observability scope as an opaque pointer and
// never includes an obs header. Layers above (exec, serve) include
// obs/trace.h to dereference it.
struct Scope;
}  // namespace obs

/// \brief Per-operation execution context threaded through the online
/// pipeline (executor -> matcher -> constraints): the virtual clock plus
/// the resilience hooks — cooperative cancellation, a virtual-time
/// deadline, and the shared fault policy.
///
/// Check-point contract: components call `Checkpoint` between units of
/// work (per query-graph vertex, before/after each scan) and propagate
/// any non-OK status upward unchanged. Check-points are observational —
/// they charge nothing to the clock — and compare the clock's elapsed
/// virtual time against the deadline, so timeout behaviour is
/// deterministic on any host. `Probe` consults the fault policy at the
/// instrumented FaultSites; a default-constructed context (no policy, no
/// token, unbounded deadline) makes every hook a no-op, preserving the
/// fault-free fast path.
struct ExecContext {
  SimClock* clock = nullptr;
  const FaultPolicy* faults = nullptr;
  const CancellationToken* cancel = nullptr;
  Deadline deadline = Deadline::Unbounded();
  /// Retry attempt this execution runs under; salts fault draws so
  /// transient faults can clear on retry.
  uint32_t attempt = 0;
  /// Per-query scratch arena for executor/matcher intermediates (binding
  /// sets, traversal frontiers). Owned by the driving call, reset
  /// between queries and retry attempts; nullptr falls back to heap
  /// vectors. Nothing allocated from it may outlive the query (see
  /// util/arena.h).
  util::Arena* arena = nullptr;
  /// Observability scope for the query this context runs under: the
  /// per-query tracer plus the shared metric handles and flight lane
  /// (obs/trace.h). nullptr — the default, and the whole story when
  /// `ObsOptions.enabled` is false — makes every telemetry hook a
  /// single-branch no-op, preserving the fast path.
  const obs::Scope* obs = nullptr;

  static ExecContext WithClock(SimClock* clock) {
    ExecContext ctx;
    ctx.clock = clock;
    return ctx;
  }

  /// Cancellation/deadline check-point. `where` names the check-point in
  /// the returned status message.
  Status Checkpoint(std::string_view where) const {
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::Cancelled("cancelled at " + std::string(where));
    }
    if (clock != nullptr && deadline.bounded() && deadline.Expired(*clock)) {
      return Status::DeadlineExceeded(
          "virtual deadline exceeded at " + std::string(where));
    }
    return Status::OK();
  }

  /// Fault-policy probe; OK when no policy is installed.
  Status ProbeFault(FaultSite site, std::string_view key) const {
    if (faults == nullptr) return Status::OK();
    return faults->Probe(site, key, attempt);
  }
};

}  // namespace svqa

#endif  // SVQA_UTIL_EXEC_CONTEXT_H_
