#ifndef SVQA_UTIL_CANCELLATION_H_
#define SVQA_UTIL_CANCELLATION_H_

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>

#include "util/annotations.h"
#include "util/sim_clock.h"

namespace svqa {

/// \brief Cooperative cancellation flag shared between a requester and
/// any number of workers.
///
/// Copies of a token share one flag; `RequestCancel` is sticky. Workers
/// never block on the token — they poll it at the execution pipeline's
/// check-points (see ExecContext::Checkpoint) and unwind with
/// StatusCode::kCancelled. Thread-safe: the flag is a single atomic.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation; every copy of this token observes it.
  void RequestCancel() { flag_->store(true, std::memory_order_release); }

  SVQA_NODISCARD bool cancelled() const {
    return flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief A per-operation deadline expressed in *virtual* time.
///
/// Deadlines are charged against the SimClock cost model rather than the
/// host clock, so timeout behaviour is deterministic and host-independent:
/// the same query with the same budget times out at exactly the same
/// check-point on any machine. The stored value is an absolute threshold
/// on SimClock::ElapsedMicros().
struct Deadline {
  double virtual_micros = std::numeric_limits<double>::infinity();

  static Deadline Unbounded() { return Deadline{}; }

  /// A deadline `budget_micros` of virtual time after `clock`'s current
  /// elapsed reading (after 0 when clock is null). Non-finite or
  /// non-positive budgets mean unbounded.
  static Deadline FromBudget(const SimClock* clock, double budget_micros) {
    if (!std::isfinite(budget_micros) || budget_micros <= 0) {
      return Unbounded();
    }
    const double base = clock != nullptr ? clock->ElapsedMicros() : 0.0;
    return Deadline{base + budget_micros};
  }

  SVQA_NODISCARD bool bounded() const {
    return std::isfinite(virtual_micros);
  }

  /// True once the clock has charged past the threshold.
  SVQA_NODISCARD bool Expired(const SimClock& clock) const {
    return clock.ElapsedMicros() > virtual_micros;
  }
};

}  // namespace svqa

#endif  // SVQA_UTIL_CANCELLATION_H_
