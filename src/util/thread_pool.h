#ifndef SVQA_UTIL_THREAD_POOL_H_
#define SVQA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace svqa {

/// \brief Small fixed-size worker pool used by the parallel batch
/// executor (§V-B) and the parallelized query-graph generator (Exp-4).
///
/// Tasks are arbitrary `std::function<void()>`; `WaitIdle` blocks until
/// every submitted task has finished. Destruction drains the queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for
  /// completion. Convenience for data-parallel loops.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace svqa

#endif  // SVQA_UTIL_THREAD_POOL_H_
