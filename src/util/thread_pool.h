#ifndef SVQA_UTIL_THREAD_POOL_H_
#define SVQA_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace svqa {

/// \brief Small fixed-size worker pool used by the parallel batch
/// executor (§V-B) and the parallelized query-graph generator (Exp-4).
///
/// Tasks are arbitrary `std::function<void()>`; `WaitIdle` blocks until
/// every submitted task has finished.
///
/// Shutdown semantics: `Shutdown()` (or destruction, which calls it)
/// stops intake immediately — `Submit` returns false from that point on —
/// then drains every task already queued and joins the workers. Tasks
/// accepted before shutdown are therefore guaranteed to run exactly once.
///
/// Thread-safety: all members are safe to call concurrently from any
/// thread, including from inside running tasks (except the destructor,
/// which must not race with other calls — standard object lifetime).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Equivalent to `Shutdown()`.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution. Returns true if the
  /// task was accepted; false (task dropped) once shutdown has begun.
  bool Submit(std::function<void()> task) SVQA_EXCLUDES(mu_);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle() SVQA_EXCLUDES(mu_);

  /// Stops intake, drains all queued tasks, joins the workers.
  /// Idempotent; safe to call concurrently with Submit/WaitIdle but not
  /// from inside a pool task (a worker cannot join itself).
  void Shutdown() SVQA_EXCLUDES(mu_);

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for
  /// completion. Convenience for data-parallel loops. Must not be called
  /// after `Shutdown()` (checked).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn)
      SVQA_EXCLUDES(mu_);

 private:
  void WorkerLoop() SVQA_EXCLUDES(mu_);

  std::vector<std::thread> workers_;  // written only by ctor/Shutdown
  Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::queue<std::function<void()>> queue_ SVQA_GUARDED_BY(mu_);
  std::size_t active_ SVQA_GUARDED_BY(mu_) = 0;
  bool stop_ SVQA_GUARDED_BY(mu_) = false;
  bool joined_ SVQA_GUARDED_BY(mu_) = false;
};

}  // namespace svqa

#endif  // SVQA_UTIL_THREAD_POOL_H_
