#ifndef SVQA_UTIL_MUTEX_H_
#define SVQA_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/annotations.h"

namespace svqa {

/// \brief Annotated wrapper over `std::mutex`.
///
/// All mutexes in the codebase go through this wrapper so that Clang's
/// thread-safety analysis (see util/annotations.h) can track which
/// critical sections protect which data. The lowercase `lock`/`unlock`
/// aliases satisfy the standard *BasicLockable* concept, so the wrapper
/// also works with `std::condition_variable_any` and `std::scoped_lock`.
class SVQA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SVQA_ACQUIRE() { mu_.lock(); }
  void Unlock() SVQA_RELEASE() { mu_.unlock(); }
  bool TryLock() SVQA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spellings (std::condition_variable_any, scoped_lock).
  void lock() SVQA_ACQUIRE() { mu_.lock(); }
  void unlock() SVQA_RELEASE() { mu_.unlock(); }
  bool try_lock() SVQA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// \brief No-op mutex with the same annotated interface as `Mutex`.
///
/// Lets lock-aware templates (the cache policies) be instantiated
/// without synchronization overhead for strictly single-threaded use —
/// the `bench_micro` locked-vs-unlocked probe benchmarks quantify the
/// difference. A `NullMutex`-guarded object is thread-*compatible*, not
/// thread-safe.
class SVQA_CAPABILITY("mutex") NullMutex {
 public:
  NullMutex() = default;
  NullMutex(const NullMutex&) = delete;
  NullMutex& operator=(const NullMutex&) = delete;

  void Lock() SVQA_ACQUIRE() {}
  void Unlock() SVQA_RELEASE() {}
  bool TryLock() SVQA_TRY_ACQUIRE(true) { return true; }

  void lock() SVQA_ACQUIRE() {}
  void unlock() SVQA_RELEASE() {}
  bool try_lock() SVQA_TRY_ACQUIRE(true) { return true; }
};

/// \brief RAII critical section over any annotated mutex type.
template <typename MutexT>
class SVQA_SCOPED_CAPABILITY BasicMutexLock {
 public:
  explicit BasicMutexLock(MutexT* mu) SVQA_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~BasicMutexLock() SVQA_RELEASE() { mu_->Unlock(); }

  BasicMutexLock(const BasicMutexLock&) = delete;
  BasicMutexLock& operator=(const BasicMutexLock&) = delete;

 private:
  MutexT* const mu_;
};

/// The common case: a scoped lock over a real `Mutex`.
using MutexLock = BasicMutexLock<Mutex>;

/// \brief Condition variable paired with `Mutex`.
///
/// `Wait` atomically releases the mutex, blocks, and reacquires before
/// returning — a dance the static analysis cannot model, hence the
/// `SVQA_NO_THREAD_SAFETY_ANALYSIS` on the implementation; callers still
/// see the accurate `SVQA_REQUIRES` contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. The caller must hold `*mu`; it is held again
  /// when `Wait` returns. Spurious wakeups are possible — use `WaitUntil`
  /// unless you re-check the predicate yourself.
  void Wait(Mutex* mu) SVQA_REQUIRES(mu) { WaitImpl(mu); }

  /// Blocks until `pred()` holds. `pred` runs with `*mu` held.
  template <typename Predicate>
  void WaitUntil(Mutex* mu, Predicate pred) SVQA_REQUIRES(mu) {
    while (!pred()) WaitImpl(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  void WaitImpl(Mutex* mu) SVQA_NO_THREAD_SAFETY_ANALYSIS {
    // Sound: wait() releases *mu while blocked and reacquires it before
    // returning, so the caller's REQUIRES contract is preserved.
    cv_.wait(*mu);
  }

  std::condition_variable_any cv_;
};

}  // namespace svqa

#endif  // SVQA_UTIL_MUTEX_H_
