#ifndef SVQA_UTIL_RETRY_H_
#define SVQA_UTIL_RETRY_H_

#include <algorithm>
#include <cstdint>

#include "util/annotations.h"
#include "util/rng.h"
#include "util/status.h"

namespace svqa {

/// \brief Bounded exponential backoff with deterministic jitter.
///
/// Backoff is charged to the query's SimClock as *virtual* time, so
/// retried executions stay host-independent: a chaos run's latencies
/// replay exactly from the seed. Jitter is drawn from util::Rng keyed by
/// (jitter_seed, salt, attempt), never from a global stream, so it is
/// identical across worker counts and runs.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retrying.
  int max_attempts = 3;
  /// Virtual backoff before the first retry.
  double base_backoff_micros = 1'000;
  /// Growth factor per further retry.
  double backoff_multiplier = 2.0;
  /// Ceiling on a single backoff period (pre-jitter).
  double max_backoff_micros = 250'000;
  /// Backoff is scaled by a uniform factor in [1-j, 1+j].
  double jitter_fraction = 0.1;
  /// Seed of the jitter draw (combined with the per-query salt).
  uint64_t jitter_seed = 0x5245'5452'59ULL;
};

/// \brief Transient-classified failures: worth retrying because a later
/// attempt can succeed (injected transient faults, exhausted pools).
/// Deadline expiry and cancellation are deliberate terminal outcomes and
/// parse/execution errors are deterministic — retrying cannot help.
SVQA_NODISCARD inline bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted;
}

/// \brief The jittered virtual backoff before retry number `attempt`
/// (1-based: attempt 1 follows the first failure). `salt` identifies the
/// retried operation (e.g. a stable query key) so concurrent queries
/// draw independent but reproducible jitter.
inline double RetryBackoffMicros(const RetryPolicy& policy, int attempt,
                                 uint64_t salt) {
  if (attempt < 1 || policy.base_backoff_micros <= 0) return 0;
  double backoff = policy.base_backoff_micros;
  for (int i = 1; i < attempt; ++i) backoff *= policy.backoff_multiplier;
  backoff = std::min(backoff, policy.max_backoff_micros);
  const double j = std::clamp(policy.jitter_fraction, 0.0, 1.0);
  if (j > 0) {
    Rng rng(HashCombine(policy.jitter_seed,
                        HashCombine(salt, static_cast<uint64_t>(attempt))));
    backoff *= 1.0 - j + 2.0 * j * rng.NextDouble();
  }
  return backoff;
}

}  // namespace svqa

#endif  // SVQA_UTIL_RETRY_H_
