#include "util/fault_injector.h"

#include <algorithm>

#include "util/rng.h"

namespace svqa {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kDetectorIo:
      return "detector-io";
    case FaultSite::kRelationScore:
      return "relation-score";
    case FaultSite::kKgMerge:
      return "kg-merge";
    case FaultSite::kCacheOp:
      return "cache-op";
    case FaultSite::kMatcherScan:
      return "matcher-scan";
    case FaultSite::kStorageIo:
      return "storage-io";
    case FaultSite::kNumSites:
      break;
  }
  return "unknown";
}

FaultConfig FaultConfig::Uniform(double rate) {
  FaultConfig config;
  for (double& r : config.rates) r = rate;
  return config;
}

FaultInjector::FaultInjector(uint64_t seed, FaultConfig config)
    : seed_(seed), config_(config) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    probes_[i].store(0, std::memory_order_relaxed);
    injected_[i].store(0, std::memory_order_relaxed);
  }
}

double FaultInjector::UniformAt(FaultSite site, std::string_view key,
                                uint64_t salt) const {
  // splitmix-style finalization of the combined hash; the draw is a pure
  // function of (seed, site, key, salt) so chaos schedules replay
  // exactly regardless of thread interleaving.
  uint64_t h = HashCombine(seed_, static_cast<uint64_t>(site) + 1);
  h = HashCombine(h, StableHash64(key));
  h = HashCombine(h, salt);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::WouldFault(FaultSite site, std::string_view key,
                               uint32_t attempt) const {
  const double rate = std::clamp(config_.rate(site), 0.0, 1.0);
  if (rate <= 0) return false;
  // Transience is keyed without the attempt so a key's classification is
  // stable: permanent faults fail every attempt from the base draw;
  // transient faults re-draw per attempt and clear probabilistically.
  const bool transient =
      UniformAt(site, key, /*salt=*/0x7261'6e73ULL) <
      config_.transient_fraction;
  const uint64_t salt =
      transient ? 0x6661'756cULL + attempt : 0x6661'756cULL;
  return UniformAt(site, key, salt) < rate;
}

Status FaultInjector::Probe(FaultSite site, std::string_view key,
                            uint32_t attempt) const {
  const int idx = static_cast<int>(site);
  probes_[idx].fetch_add(1, std::memory_order_relaxed);
  if (!WouldFault(site, key, attempt)) return Status::OK();
  injected_[idx].fetch_add(1, std::memory_order_relaxed);
  const bool transient =
      UniformAt(site, key, /*salt=*/0x7261'6e73ULL) <
      config_.transient_fraction;
  std::string msg = "injected ";
  msg += transient ? "transient" : "permanent";
  msg += " fault at ";
  msg += FaultSiteName(site);
  msg += ": ";
  msg += key;
  if (transient) return Status::ResourceExhausted(std::move(msg));
  return Status::Internal(std::move(msg));
}

uint64_t FaultInjector::probes(FaultSite site) const {
  return probes_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

uint64_t FaultInjector::injected(FaultSite site) const {
  return injected_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (int i = 0; i < kNumFaultSites; ++i) {
    total += injected_[i].load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace svqa
