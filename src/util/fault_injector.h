#ifndef SVQA_UTIL_FAULT_INJECTOR_H_
#define SVQA_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/annotations.h"
#include "util/status.h"

namespace svqa {

/// \brief The instrumented failure points of the pipeline. Components
/// consult the shared FaultPolicy at these sites; a chaos run flips a
/// deterministic subset of them into injected failures.
enum class FaultSite : int {
  /// Reading one image through the (simulated) detector during Ingest.
  kDetectorIo = 0,
  /// Relation/predicate scoring: the maxScore embedding sweep that
  /// resolves a predicate against the merged graph's edge labels.
  kRelationScore,
  /// One Algorithm-1 merge pass over the scene graphs.
  kKgMerge,
  /// One key-centric cache operation (scope or path, get or put).
  kCacheOp,
  /// One matchVertex scan (indexed probe or Levenshtein full scan).
  kMatcherScan,
  /// One durable-storage operation (snapshot/WAL read, append, sync,
  /// rename) going through a storage::StorageEnv. storage::SimFs maps
  /// injected verdicts to torn writes, truncation, and bit flips.
  kStorageIo,
  kNumSites,
};

constexpr int kNumFaultSites = static_cast<int>(FaultSite::kNumSites);

const char* FaultSiteName(FaultSite site);

/// \brief Hook consulted by pipeline components before fault-prone work.
///
/// OK means "proceed"; a non-OK status is the injected failure the
/// component must surface (or degrade around). Implementations must be
/// thread-safe and — for reproducible chaos runs — pure functions of
/// (site, key, attempt), never of wall-clock time or call order.
class FaultPolicy {
 public:
  virtual ~FaultPolicy() = default;

  /// \param site which instrumented point is asking.
  /// \param key stable identity of the operation (cache key, scan head,
  /// scene id...). Equal keys draw equal verdicts within an attempt.
  /// \param attempt 0-based retry attempt; transient faults clear on a
  /// later attempt when the per-attempt draw passes.
  virtual Status Probe(FaultSite site, std::string_view key,
                       uint32_t attempt) const = 0;
};

/// \brief Per-site injection rates of a FaultInjector.
struct FaultConfig {
  /// Probability of injecting a fault at each site, in [0, 1].
  double rates[kNumFaultSites] = {};
  /// Fraction of injected faults classified transient (retryable,
  /// surfaced as kResourceExhausted); the rest are permanent
  /// (kInternal). Drawn deterministically per (site, key).
  double transient_fraction = 1.0;

  /// Every site at the same rate.
  static FaultConfig Uniform(double rate);

  double rate(FaultSite site) const {
    return rates[static_cast<int>(site)];
  }
};

/// \brief Seeded, deterministic fault injector.
///
/// The verdict for (site, key, attempt) is a pure hash of those inputs
/// plus the seed — independent of thread interleaving, worker count, and
/// call order — so an entire chaos run is reproducible from one seed:
/// identical seeds yield identical fault schedules no matter how the
/// batch is scheduled. Transience is drawn from a second independent
/// hash so the transient/permanent split of a key is stable across
/// attempts (a permanent fault never "heals" on retry; a transient one
/// re-draws its fault bit per attempt and eventually clears).
///
/// Thread-safety: verdicts are stateless; the per-site counters are
/// atomics, making concurrent Probe calls race-free.
class FaultInjector final : public FaultPolicy {
 public:
  FaultInjector(uint64_t seed, FaultConfig config);

  Status Probe(FaultSite site, std::string_view key,
               uint32_t attempt) const override;

  /// True when the probe at (site, key, attempt) would inject a fault.
  SVQA_NODISCARD bool WouldFault(FaultSite site, std::string_view key,
                                 uint32_t attempt) const;

  uint64_t seed() const { return seed_; }
  const FaultConfig& config() const { return config_; }

  /// Total probes / injected faults observed at `site` so far.
  uint64_t probes(FaultSite site) const;
  uint64_t injected(FaultSite site) const;
  /// Injected faults summed over all sites.
  uint64_t total_injected() const;

 private:
  /// Uniform [0, 1) draw from the (seed, site, key, salt) hash.
  double UniformAt(FaultSite site, std::string_view key,
                   uint64_t salt) const;

  const uint64_t seed_;
  const FaultConfig config_;
  mutable std::atomic<uint64_t> probes_[kNumFaultSites];
  mutable std::atomic<uint64_t> injected_[kNumFaultSites];
};

}  // namespace svqa

#endif  // SVQA_UTIL_FAULT_INJECTOR_H_
