#include "text/embedding.h"

#include <cmath>

#include "text/tokenizer.h"
#include "util/rng.h"

namespace svqa::text {
namespace {

void Normalize(Embedding* v) {
  double norm = 0;
  for (float x : *v) norm += static_cast<double>(x) * x;
  norm = std::sqrt(norm);
  if (norm < 1e-12) return;
  for (float& x : *v) x = static_cast<float>(x / norm);
}

void AddScaled(Embedding* dst, const Embedding& src, double w) {
  for (std::size_t i = 0; i < kEmbeddingDim; ++i) {
    (*dst)[i] += static_cast<float>(w * src[i]);
  }
}

}  // namespace

double CosineSimilarity(const Embedding& a, const Embedding& b) {
  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < kEmbeddingDim; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na < 1e-24 || nb < 1e-24) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

EmbeddingModel::EmbeddingModel(SynonymLexicon lexicon, uint64_t seed)
    : lexicon_(std::move(lexicon)), seed_(seed) {}

Embedding EmbeddingModel::HashVector(std::string_view token,
                                     uint64_t salt) const {
  Rng rng(HashCombine(HashCombine(StableHash64(token), salt), seed_));
  Embedding v;
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
  Normalize(&v);
  return v;
}

Embedding EmbeddingModel::Embed(std::string_view word) const {
  const std::string lower = ToLower(word);
  const std::string concept_name = lexicon_.Canonical(lower);

  Embedding out{};
  // Surface-form component keeps distinct words within a group from being
  // bit-identical.
  AddScaled(&out, HashVector(lower, /*salt=*/0x5f0e), 1.0 - concept_weight_);
  // Shared concept component: synonyms collapse onto this.
  AddScaled(&out, HashVector(concept_name, /*salt=*/0xc0ffee),
            concept_weight_);
  // Attenuated hypernym components give "dog" ~ "animal" a positive score.
  double w = hypernym_weight_;
  for (const auto& parent : lexicon_.HypernymChain(lower)) {
    AddScaled(&out, HashVector(parent, /*salt=*/0xc0ffee), w);
    w *= 0.5;
  }
  Normalize(&out);
  return out;
}

Embedding EmbeddingModel::EmbedPhrase(std::string_view phrase) const {
  const auto tokens = Tokenize(phrase);
  Embedding out{};
  if (tokens.empty()) return out;
  for (const auto& tok : tokens) {
    AddScaled(&out, Embed(tok), 1.0 / static_cast<double>(tokens.size()));
  }
  Normalize(&out);
  return out;
}

double EmbeddingModel::Similarity(std::string_view a,
                                  std::string_view b) const {
  return CosineSimilarity(EmbedPhrase(a), EmbedPhrase(b));
}

std::pair<int, double> EmbeddingModel::MostSimilar(
    std::string_view query, const std::vector<std::string>& candidates) const {
  if (candidates.empty()) return {-1, 0.0};
  const Embedding q = EmbedPhrase(query);
  int best = -1;
  double best_score = -2.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double s = CosineSimilarity(q, EmbedPhrase(candidates[i]));
    if (s > best_score) {
      best_score = s;
      best = static_cast<int>(i);
    }
  }
  return {best, best_score};
}

}  // namespace svqa::text
