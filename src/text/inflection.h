#ifndef SVQA_TEXT_INFLECTION_H_
#define SVQA_TEXT_INFLECTION_H_

#include <string>
#include <string_view>

namespace svqa::text {

/// \brief English morphology helpers used by the SPOC extractor (§IV-B):
/// normalizing passive participles to base verbs ("worn" -> "wear"),
/// progressive forms ("hanging" -> "hang"), and plural nouns to singular
/// ("clothes" stays, "dogs" -> "dog").

/// Base (lemma) form of a verb: strips -s / -ing / -ed with doubling and
/// e-restoration rules, and consults an irregular table (worn->wear,
/// held->hold, sat->sit, ...). Unknown words pass through unchanged.
std::string VerbLemma(std::string_view verb);

/// Singular form of a noun: -ies -> -y, -ses/-xes/-ches/-shes -> drop
/// "es", else drop trailing "s" (with an invariant/irregular table:
/// clothes, people -> person, children -> child, ...).
std::string SingularNoun(std::string_view noun);

/// True for the copula family ("is", "are", "was", "were", "be", "been",
/// "being") — the SLVP structure marker from §IV-B.
bool IsBeVerb(std::string_view word);

/// True for auxiliary verbs that head periphrastic tenses ("is", "are",
/// "was", "were", "has", "have", "had", "does", "do", "did", "will").
bool IsAuxiliary(std::string_view word);

/// True for past participle forms (irregular table + -ed/-en heuristics);
/// used to detect passive voice ("are worn").
bool IsPastParticiple(std::string_view word);

}  // namespace svqa::text

#endif  // SVQA_TEXT_INFLECTION_H_
