#ifndef SVQA_TEXT_LEXICON_H_
#define SVQA_TEXT_LEXICON_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace svqa::text {

/// \brief Synonym / hypernym lexicon.
///
/// Substitutes for the distributional structure of pretrained word2vec
/// embeddings (DESIGN.md §1): words in the same group ("dog", "puppy",
/// "canine") share a canonical concept, and a concept may name a hypernym
/// parent ("dog" IS-A "animal"). The EmbeddingModel blends concept vectors
/// so synonyms score high cosine similarity and hyponym/hypernym pairs
/// score moderately high.
class SynonymLexicon {
 public:
  SynonymLexicon() = default;

  /// Returns a lexicon pre-populated with the vocabulary used by the
  /// synthetic MVQA world (object categories, predicates, attributes).
  static SynonymLexicon Default();

  /// Registers `words` as one synonym group named by `canonical`
  /// (canonical itself becomes a member). Later registrations of a word
  /// overwrite earlier ones.
  void AddGroup(std::string canonical, const std::vector<std::string>& words);

  /// Declares `child` concept to be a kind of `parent` concept.
  void AddHypernym(std::string_view child, std::string_view parent);

  /// Canonical concept for a word; the word itself when unknown.
  std::string Canonical(std::string_view word) const;

  /// True when both words map to the same concept.
  bool AreSynonyms(std::string_view a, std::string_view b) const;

  /// True when Canonical(a) is a (transitive) hyponym of Canonical(b) or
  /// vice versa.
  bool HypernymRelated(std::string_view a, std::string_view b) const;

  /// The hypernym chain of a word's concept, nearest parent first.
  std::vector<std::string> HypernymChain(std::string_view word) const;

  /// Number of registered words.
  std::size_t size() const { return word_to_concept_.size(); }

 private:
  std::unordered_map<std::string, std::string> word_to_concept_;
  std::unordered_map<std::string, std::string> concept_parent_;
};

}  // namespace svqa::text

#endif  // SVQA_TEXT_LEXICON_H_
