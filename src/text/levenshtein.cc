#include "text/levenshtein.h"

#include <algorithm>
#include <vector>

namespace svqa::text {

std::size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  const std::size_t m = b.size();
  if (m == 0) return a.size();

  // Single rolling row over the shorter string.
  std::vector<std::size_t> row(m + 1);
  for (std::size_t j = 0; j <= m; ++j) row[j] = j;

  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      std::size_t up = row[j];
      std::size_t sub = diag + (a[i - 1] != b[j - 1] ? 1 : 0);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      diag = up;
    }
  }
  return row[m];
}

double NormalizedLevenshtein(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 0.0;
  const double d = static_cast<double>(LevenshteinDistance(a, b));
  return 2.0 * d / (static_cast<double>(a.size() + b.size()) + d);
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  return 1.0 - NormalizedLevenshtein(a, b);
}

}  // namespace svqa::text
