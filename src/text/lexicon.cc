#include "text/lexicon.h"

#include "text/tokenizer.h"

namespace svqa::text {

void SynonymLexicon::AddGroup(std::string canonical,
                              const std::vector<std::string>& words) {
  word_to_concept_[canonical] = canonical;
  for (const auto& w : words) word_to_concept_[w] = canonical;
}

void SynonymLexicon::AddHypernym(std::string_view child,
                                 std::string_view parent) {
  concept_parent_[Canonical(child)] = Canonical(parent);
}

std::string SynonymLexicon::Canonical(std::string_view word) const {
  auto it = word_to_concept_.find(std::string(word));
  if (it != word_to_concept_.end()) return it->second;
  return std::string(word);
}

bool SynonymLexicon::AreSynonyms(std::string_view a,
                                 std::string_view b) const {
  return Canonical(a) == Canonical(b);
}

std::vector<std::string> SynonymLexicon::HypernymChain(
    std::string_view word) const {
  std::vector<std::string> chain;
  std::string cur = Canonical(word);
  // Bounded walk guards against accidental cycles in user-added data.
  for (int depth = 0; depth < 8; ++depth) {
    auto it = concept_parent_.find(cur);
    if (it == concept_parent_.end()) break;
    chain.push_back(it->second);
    cur = it->second;
  }
  return chain;
}

bool SynonymLexicon::HypernymRelated(std::string_view a,
                                     std::string_view b) const {
  const std::string ca = Canonical(a);
  const std::string cb = Canonical(b);
  if (ca == cb) return true;
  for (const auto& up : HypernymChain(a)) {
    if (up == cb) return true;
  }
  for (const auto& up : HypernymChain(b)) {
    if (up == ca) return true;
  }
  return false;
}

SynonymLexicon SynonymLexicon::Default() {
  SynonymLexicon lex;
  // --- Object categories (COCO-flavoured synthetic world) ---
  lex.AddGroup("person", {"man", "woman", "people", "human", "guy", "lady"});
  lex.AddGroup("dog", {"puppy", "canine", "hound"});
  lex.AddGroup("cat", {"kitten", "feline"});
  lex.AddGroup("bird", {"parrot", "pigeon"});
  lex.AddGroup("horse", {"pony", "stallion"});
  lex.AddGroup("car", {"automobile", "sedan"});
  lex.AddGroup("bicycle", {"bike", "cycle"});
  lex.AddGroup("motorcycle", {"motorbike"});
  lex.AddGroup("bus", {"coach"});
  lex.AddGroup("truck", {"lorry"});
  lex.AddGroup("building", {"house", "tower"});
  lex.AddGroup("tree", {"trees"});
  lex.AddGroup("bench", {"seat"});
  lex.AddGroup("frisbee", {"disc"});
  lex.AddGroup("hat", {"cap"});
  lex.AddGroup("clothes", {"clothing", "cloth", "garment", "outfit"});
  lex.AddGroup("robe", {"robes", "gown"});
  lex.AddGroup("scarf", {"scarves"});
  lex.AddGroup("jacket", {"coat"});
  lex.AddGroup("shirt", {"tshirt"});
  lex.AddGroup("wizard", {"sorcerer", "mage"});
  lex.AddGroup("pet", {"pets"});
  lex.AddGroup("animal", {"animals", "creature"});
  lex.AddGroup("vehicle", {"vehicles"});
  lex.AddGroup("bear", {"teddy"});
  lex.AddGroup("tv", {"television", "monitor"});
  lex.AddGroup("bed", {"mattress"});
  lex.AddGroup("ball", {"football"});
  lex.AddGroup("umbrella", {});
  lex.AddGroup("backpack", {"bag", "knapsack"});
  lex.AddGroup("skateboard", {});
  lex.AddGroup("boat", {"ship"});
  lex.AddGroup("train", {});
  lex.AddGroup("fence", {"railing"});
  lex.AddGroup("grass", {"lawn"});
  lex.AddGroup("street", {"road"});
  lex.AddGroup("kite", {});
  lex.AddGroup("book", {});
  lex.AddGroup("chair", {"stool"});
  lex.AddGroup("table", {"desk"});
  lex.AddGroup("phone", {"cellphone", "smartphone"});
  lex.AddGroup("laptop", {"computer", "notebook"});

  // --- Hypernym structure used by matchVertex's semantic fallback ---
  for (const char* animal : {"dog", "cat", "bird", "horse", "bear"}) {
    lex.AddHypernym(animal, "animal");
  }
  lex.AddHypernym("pet", "animal");
  lex.AddHypernym("dog", "pet");
  lex.AddHypernym("cat", "pet");
  for (const char* v :
       {"car", "bicycle", "motorcycle", "bus", "truck", "boat", "train"}) {
    lex.AddHypernym(v, "vehicle");
  }
  for (const char* c : {"hat", "robe", "scarf", "jacket", "shirt"}) {
    lex.AddHypernym(c, "clothes");
  }
  lex.AddHypernym("wizard", "person");

  // --- Predicates (scene-graph relations + verb synonyms) ---
  lex.AddGroup("on", {"atop", "upon"});
  lex.AddGroup("in", {"inside", "within"});
  lex.AddGroup("near", {"beside", "next-to", "by"});
  lex.AddGroup("behind", {});
  lex.AddGroup("in-front-of", {"before"});
  lex.AddGroup("under", {"beneath", "below"});
  lex.AddGroup("wear", {"wearing", "worn", "wears", "dressed"});
  lex.AddGroup("hold", {"holding", "held", "holds"});
  lex.AddGroup("carry", {"carrying", "carried", "carries"});
  lex.AddGroup("ride", {"riding", "ridden", "rides"});
  lex.AddGroup("sit", {"sitting", "sits", "seated", "situated"});
  lex.AddGroup("stand", {"standing", "stands"});
  lex.AddGroup("watch", {"watching", "watches", "look", "looking"});
  lex.AddGroup("chase", {"chasing", "chases"});
  lex.AddGroup("eat", {"eating", "eats"});
  lex.AddGroup("play", {"playing", "plays"});
  lex.AddGroup("walk", {"walking", "walks"});
  lex.AddGroup("jump", {"jumping", "jumps"});
  lex.AddGroup("hang-out", {"hanging-out", "hangs-out", "accompany",
                            "accompanying", "with"});
  lex.AddGroup("appear", {"appearing", "appears", "shown"});

  // --- Knowledge-graph relations ---
  lex.AddGroup("girlfriend-of", {"girlfriend"});
  lex.AddGroup("friend-of", {"friend", "friends"});
  lex.AddGroup("member-of", {"member"});
  lex.AddGroup("lives-in", {"lives"});
  lex.AddGroup("owner-of", {"owner", "owns"});
  lex.AddGroup("sibling-of", {"sibling", "brother", "sister"});

  return lex;
}

}  // namespace svqa::text
