#include "text/inflection.h"

#include <array>
#include <string>
#include <unordered_map>

namespace svqa::text {
namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

const std::unordered_map<std::string, std::string>& IrregularVerbs() {
  static const auto* map = new std::unordered_map<std::string, std::string>{
      {"worn", "wear"},     {"wore", "wear"},     {"held", "hold"},
      {"sat", "sit"},       {"stood", "stand"},   {"ridden", "ride"},
      {"rode", "ride"},     {"eaten", "eat"},     {"ate", "eat"},
      {"seen", "see"},      {"saw", "see"},       {"carried", "carry"},
      {"is", "be"},         {"are", "be"},        {"was", "be"},
      {"were", "be"},       {"been", "be"},       {"being", "be"},
      {"am", "be"},         {"has", "have"},      {"had", "have"},
      {"does", "do"},       {"did", "do"},        {"done", "do"},
      {"chased", "chase"},  {"hung", "hang"},     {"went", "go"},
      {"gone", "go"},       {"caught", "catch"},  {"thrown", "throw"},
      {"threw", "throw"},   {"found", "find"},    {"kept", "keep"},
      {"made", "make"},     {"taken", "take"},    {"took", "take"},
      {"given", "give"},    {"gave", "give"},     {"shown", "show"},
      {"showed", "show"},   {"situated", "sit"},
  };
  return *map;
}

const std::unordered_map<std::string, std::string>& IrregularNouns() {
  static const auto* map = new std::unordered_map<std::string, std::string>{
      {"people", "person"},   {"children", "child"}, {"men", "man"},
      {"women", "woman"},     {"feet", "foot"},      {"teeth", "tooth"},
      {"mice", "mouse"},      {"geese", "goose"},    {"clothes", "clothes"},
      {"glasses", "glasses"}, {"buses", "bus"},      {"wolves", "wolf"},
      {"leaves", "leaf"},     {"movies", "movie"},
  };
  return *map;
}

}  // namespace

std::string VerbLemma(std::string_view verb) {
  std::string v(verb);
  auto it = IrregularVerbs().find(v);
  if (it != IrregularVerbs().end()) return it->second;

  if (EndsWith(v, "ing") && v.size() > 5) {
    std::string stem = v.substr(0, v.size() - 3);
    // Doubled final consonant: "sitting" -> "sit".
    if (stem.size() >= 3 && stem[stem.size() - 1] == stem[stem.size() - 2] &&
        !IsVowel(stem.back())) {
      stem.pop_back();
      return stem;
    }
    // CVC + e restoration: "riding" -> "ride", "chasing" -> "chase".
    if (stem.size() >= 2 && !IsVowel(stem.back()) &&
        IsVowel(stem[stem.size() - 2]) &&
        (stem.size() < 3 || !IsVowel(stem[stem.size() - 3]))) {
      return stem + "e";
    }
    return stem;
  }
  if (EndsWith(v, "ied") && v.size() > 4) {
    return v.substr(0, v.size() - 3) + "y";
  }
  if (EndsWith(v, "ed") && v.size() > 3) {
    std::string stem = v.substr(0, v.size() - 2);
    if (stem.size() >= 3 && stem[stem.size() - 1] == stem[stem.size() - 2] &&
        !IsVowel(stem.back())) {
      stem.pop_back();
      return stem;
    }
    if (EndsWith(stem, "at") || EndsWith(stem, "as") || EndsWith(stem, "os") ||
        EndsWith(stem, "ik")) {
      return stem + "e";
    }
    return stem;
  }
  if (EndsWith(v, "ies") && v.size() > 4) {
    return v.substr(0, v.size() - 3) + "y";
  }
  if (EndsWith(v, "es") && v.size() > 3 &&
      (EndsWith(v, "ches") || EndsWith(v, "shes") || EndsWith(v, "sses") ||
       EndsWith(v, "xes"))) {
    return v.substr(0, v.size() - 2);
  }
  if (EndsWith(v, "s") && v.size() > 2 && !EndsWith(v, "ss")) {
    return v.substr(0, v.size() - 1);
  }
  return v;
}

std::string SingularNoun(std::string_view noun) {
  std::string n(noun);
  auto it = IrregularNouns().find(n);
  if (it != IrregularNouns().end()) return it->second;

  if (EndsWith(n, "ies") && n.size() > 4) {
    return n.substr(0, n.size() - 3) + "y";
  }
  if ((EndsWith(n, "ches") || EndsWith(n, "shes") || EndsWith(n, "sses") ||
       EndsWith(n, "xes")) &&
      n.size() > 4) {
    return n.substr(0, n.size() - 2);
  }
  if (EndsWith(n, "s") && n.size() > 2 && !EndsWith(n, "ss") &&
      !EndsWith(n, "us")) {
    return n.substr(0, n.size() - 1);
  }
  return n;
}

bool IsBeVerb(std::string_view word) {
  static const std::array<std::string_view, 7> kForms = {
      "is", "are", "was", "were", "be", "been", "being"};
  for (auto f : kForms) {
    if (word == f) return true;
  }
  return false;
}

bool IsAuxiliary(std::string_view word) {
  if (IsBeVerb(word)) return true;
  static const std::array<std::string_view, 7> kForms = {
      "has", "have", "had", "does", "do", "did", "will"};
  for (auto f : kForms) {
    if (word == f) return true;
  }
  return false;
}

bool IsPastParticiple(std::string_view word) {
  static const std::array<std::string_view, 14> kIrregular = {
      "worn", "held", "ridden", "eaten", "seen", "done", "been",
      "gone", "caught", "thrown", "found", "taken", "given", "shown"};
  for (auto f : kIrregular) {
    if (word == f) return true;
  }
  std::string w(word);
  if (w.size() > 3 && (EndsWith(w, "ed") || EndsWith(w, "en"))) return true;
  return false;
}

}  // namespace svqa::text
