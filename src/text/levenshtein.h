#ifndef SVQA_TEXT_LEVENSHTEIN_H_
#define SVQA_TEXT_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

namespace svqa::text {

/// \brief Classic edit distance (insert/delete/substitute, unit costs).
std::size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// \brief Normalized Levenshtein distance in [0, 1] following Yujian & Bo
/// (paper ref [37]): 2*d / (|a| + |b| + d); 0 means identical.
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// \brief Similarity convenience: 1 - NormalizedLevenshtein.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace svqa::text

#endif  // SVQA_TEXT_LEVENSHTEIN_H_
