#ifndef SVQA_TEXT_EMBEDDING_H_
#define SVQA_TEXT_EMBEDDING_H_

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "text/lexicon.h"

namespace svqa::text {

/// Embedding dimensionality. Small enough that cosine evaluation cost is
/// negligible next to its charged virtual cost (CostKind::kEmbeddingSim).
inline constexpr std::size_t kEmbeddingDim = 64;

using Embedding = std::array<float, kEmbeddingDim>;

/// \brief Cosine similarity of two embeddings in [-1, 1]; 0 when either
/// vector is all-zero.
double CosineSimilarity(const Embedding& a, const Embedding& b);

/// \brief Deterministic word-embedding model.
///
/// Substitutes for pretrained word2vec (DESIGN.md §1): a word's vector is
/// a blend of (a) a hashed random-projection vector unique to the surface
/// form, (b) its synonym-group concept vector, and (c) attenuated hypernym
/// concept vectors. The result: synonyms ("dog"/"puppy") have cosine near
/// `concept_weight`², hyponym/hypernym pairs ("dog"/"animal") a moderate
/// positive score, and unrelated words near zero — the structure maxScore
/// and matchVertex rely on in §V.
class EmbeddingModel {
 public:
  /// \param lexicon supplies synonym/hypernym structure.
  /// \param seed controls the hashed projection (per-run reproducible).
  explicit EmbeddingModel(SynonymLexicon lexicon, uint64_t seed = 42);

  /// Embeds a single word.
  Embedding Embed(std::string_view word) const;

  /// Embeds a phrase as the mean of its word vectors (re-normalized).
  Embedding EmbedPhrase(std::string_view phrase) const;

  /// Cosine similarity between two words/phrases.
  double Similarity(std::string_view a, std::string_view b) const;

  /// Index of the most similar candidate to `query`, with its score.
  /// Returns {-1, 0} when `candidates` is empty. This is the paper's
  /// `maxScore` primitive (§V-A line 8-9).
  std::pair<int, double> MostSimilar(
      std::string_view query, const std::vector<std::string>& candidates) const;

  const SynonymLexicon& lexicon() const { return lexicon_; }

 private:
  Embedding HashVector(std::string_view token, uint64_t salt) const;

  SynonymLexicon lexicon_;
  uint64_t seed_;
  /// Weight of the shared concept vector vs the surface-form vector.
  double concept_weight_ = 0.85;
  /// Per-level attenuation of hypernym concept vectors.
  double hypernym_weight_ = 0.35;
};

}  // namespace svqa::text

#endif  // SVQA_TEXT_EMBEDDING_H_
