#include "text/tokenizer.h"

#include <cctype>

namespace svqa::text {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}

bool IsPunct(char c) {
  switch (c) {
    case '?':
    case '!':
    case '.':
    case ',':
    case ';':
    case ':':
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string ToLower(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (char c : input) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

namespace {

/// Merges multi-word expressions that function as single prepositions
/// ("in front of" -> "in-front-of"), matching the scene-graph predicate
/// vocabulary.
void MergeMultiword(std::vector<std::string>* tokens) {
  auto& t = *tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i] == "in" && t[i + 1] == "front" && t[i + 2] == "of") {
      t[i] = "in-front-of";
      t.erase(t.begin() + static_cast<std::ptrdiff_t>(i) + 1,
              t.begin() + static_cast<std::ptrdiff_t>(i) + 3);
    }
  }
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view input,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (IsWordChar(c)) {
      std::size_t start = i;
      while (i < n && IsWordChar(input[i])) ++i;
      std::string word(input.substr(start, i - start));
      // Possessive clitic: "Potter's" -> "potter" + "'s".
      bool possessive = false;
      if (i + 1 < n && input[i] == '\'' &&
          (input[i + 1] == 's' || input[i + 1] == 'S') &&
          (i + 2 >= n || !IsWordChar(input[i + 2]))) {
        possessive = true;
        i += 2;
      }
      tokens.push_back(options.lowercase ? ToLower(word) : word);
      if (possessive) tokens.emplace_back("'s");
    } else if (IsPunct(c)) {
      if (options.keep_punctuation) tokens.emplace_back(1, c);
      ++i;
    } else {
      ++i;  // whitespace / other separators
    }
  }
  MergeMultiword(&tokens);
  return tokens;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += tokens[i];
  }
  return out;
}

}  // namespace svqa::text
