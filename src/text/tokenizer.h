#ifndef SVQA_TEXT_TOKENIZER_H_
#define SVQA_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace svqa::text {

/// \brief Tokenizer options.
struct TokenizerOptions {
  /// Lowercase all tokens (question parsing is case-insensitive).
  bool lowercase = true;
  /// Emit punctuation marks (",", "?", ...) as their own tokens instead of
  /// dropping them.
  bool keep_punctuation = false;
};

/// \brief Splits text into word tokens.
///
/// Handles possessive clitics ("Potter's" -> "potter", "'s") and
/// hyphenated compounds (kept whole), mirroring the PTB conventions the
/// Stanford tools use for the constructs appearing in MVQA questions.
std::vector<std::string> Tokenize(std::string_view input,
                                  const TokenizerOptions& options = {});

/// \brief Joins tokens with single spaces.
std::string JoinTokens(const std::vector<std::string>& tokens);

/// \brief ASCII lowercase of a string.
std::string ToLower(std::string_view input);

}  // namespace svqa::text

#endif  // SVQA_TEXT_TOKENIZER_H_
