// Serving-layer demo: an SvqaEngine fronted by the in-process
// SvqaServer — priority classes, deadlines, cancellation, a live
// snapshot publish, a mixed-priority burst, and the observability
// subsystem end to end (metrics snapshot, flight recorder, and a
// per-query virtual-time trace).
//
// The server runs real worker threads here (ServeMode::kThreaded);
// swap in kSimulated + RunSimulated() for deterministic replay.
//
// Usage: serve_demo [--trace_out=<path>]
//   --trace_out writes one traced query's Chrome trace_event JSON to
//   <path> (load via chrome://tracing or Perfetto).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/kg_builder.h"
#include "data/world.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  using namespace svqa;

  const char* trace_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace_out=", 12) == 0) {
      trace_out = argv[i] + 12;
    }
  }

  // 1. Ingest a world through the engine; this publishes snapshot 1
  //    into the engine's GraphSnapshotStore.
  data::WorldOptions world_options;
  world_options.num_scenes = 120;
  world_options.seed = 2024;
  const data::World world = data::WorldGenerator(world_options).Generate();
  core::SvqaEngine engine(core::SvqaOptions{});
  Status status = engine.Ingest(
      data::BuildKnowledgeGraph(world, text::SynonymLexicon::Default()),
      world.scenes);
  if (!status.ok()) {
    std::printf("ingest failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("snapshot %llu published: %zu vertices / %zu edges\n",
              static_cast<unsigned long long>(
                  engine.snapshot_store()->latest_id()),
              engine.merged().graph.num_vertices(),
              engine.merged().graph.num_edges());

  // 2. A server over the engine's snapshot store, with observability
  //    on: every request is traced (sample_n=1), all the stack metrics
  //    are live, and each worker keeps a flight-recorder lane.
  serve::ServerOptions options;
  options.num_workers = 4;
  options.parser = &engine.builder();
  options.obs.enabled = true;
  options.obs.trace_sample_n = 1;
  options.obs.ring_capacity = 64;
  serve::SvqaServer server(engine.snapshot_store(), options);
  status = server.Start();
  if (!status.ok()) {
    std::printf("start failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 3. Submit across priority classes. Interactive requests jump every
  //    queue; the best-effort one also carries a 50 ms virtual deadline.
  struct Demo {
    const char* question;
    serve::PriorityClass priority;
    double deadline_micros;
  };
  const Demo demos[] = {
      {"does a dog appear on the grass?",
       serve::PriorityClass::kInteractive, 0},
      {"how many wizards are hanging out with dean thomas?",
       serve::PriorityClass::kBatch, 0},
      {"what kind of clothes are worn by the wizard who is hanging out "
       "with dean thomas?",
       serve::PriorityClass::kBestEffort, 5e4},
  };
  std::vector<serve::TicketPtr> tickets;
  for (const Demo& d : demos) {
    serve::RequestOptions ro;
    ro.priority = d.priority;
    ro.deadline_micros = d.deadline_micros;
    tickets.push_back(server.SubmitQuestion(d.question, ro));
  }

  // 4. One more request, cancelled before it matters.
  serve::TicketPtr doomed =
      server.SubmitQuestion("does a cat appear near the car?");
  server.Cancel(doomed->id());

  serve::TicketPtr traced;  // keep one response around for its trace
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const serve::ServeResponse& resp = tickets[i]->Wait();
    std::printf("\nQ: %s\n", demos[i].question);
    if (resp.status.ok()) {
      std::printf(
          "A: %s  [%s, snapshot %llu, wait %.0f us, exec %.0f virtual "
          "us]\n",
          resp.answer.text.c_str(),
          serve::PriorityClassName(resp.priority),
          static_cast<unsigned long long>(resp.snapshot_id),
          resp.queue_wait_micros, resp.exec_micros);
    } else {
      std::printf("A: <%s>\n", resp.status.ToString().c_str());
    }
    if (traced == nullptr && resp.status.ok() && resp.trace != nullptr) {
      traced = tickets[i];
    }
  }
  const serve::ServeResponse& cancelled = doomed->Wait();
  std::printf("\ncancelled request -> %s\n",
              cancelled.status.ToString().c_str());

  // 5. Publish a refreshed world live: in-flight queries keep their
  //    snapshot, later dispatches see the new one.
  data::WorldOptions world2 = world_options;
  world2.seed = 31;
  const data::World next = data::WorldGenerator(world2).Generate();
  core::SvqaOptions ingest_opts;
  core::SvqaEngine staging(ingest_opts);
  status = staging.Ingest(
      data::BuildKnowledgeGraph(next, text::SynonymLexicon::Default()),
      next.scenes);
  if (!status.ok()) {
    std::printf("staging ingest failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const uint64_t id = server.Publish(staging.merged());
  serve::TicketPtr fresh =
      server.SubmitQuestion("does a dog appear on the grass?");
  std::printf("\npublished snapshot %llu; new answer: %s (snapshot %llu)\n",
              static_cast<unsigned long long>(id),
              fresh->Wait().answer.text.c_str(),
              static_cast<unsigned long long>(fresh->Wait().snapshot_id));

  // 6. Mixed-priority burst: enough traffic that every class sees the
  //    queue and the per-class metrics fill in.
  const char* burst_questions[] = {
      "does a dog appear on the grass?",
      "how many wizards are hanging out with dean thomas?",
      "does a cat appear near the car?",
  };
  std::vector<serve::TicketPtr> burst;
  for (int i = 0; i < 30; ++i) {
    serve::RequestOptions ro;
    ro.priority = static_cast<serve::PriorityClass>(i % 3);
    burst.push_back(server.SubmitQuestion(burst_questions[i % 3], ro));
  }
  std::size_t burst_ok = 0;
  for (const serve::TicketPtr& t : burst) {
    if (t->Wait().status.ok()) ++burst_ok;
  }
  std::printf("\nburst: %zu/%zu completed ok\n", burst_ok, burst.size());

  // 7. Drain, then report: aggregate stats, the metrics snapshot, the
  //    flight recorder's recent history, and one query's span tree.
  server.Shutdown();
  std::printf("\n%s", server.Stats().ToString().c_str());
  std::printf("\nmetrics snapshot:\n%s", server.MetricsJson().c_str());
  std::printf("\n%s", server.DumpFlightRecorder().c_str());

  if (traced != nullptr) {
    const serve::ServeResponse& resp = traced->Wait();
    std::printf("\none query's span tree (virtual micros):\n%s",
                resp.trace->TreeString().c_str());
    if (trace_out != nullptr) {
      std::FILE* f = std::fopen(trace_out, "w");
      if (f == nullptr) {
        std::printf("cannot open %s\n", trace_out);
        return 1;
      }
      const std::string json = resp.trace->ToJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("trace JSON written to %s\n", trace_out);
    }
  }
  return 0;
}
