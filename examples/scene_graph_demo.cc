// scene_graph_demo: the paper's Figure 3 — biased vs TDE-debiased scene
// graph generation on one scene, plus the merged-graph linking step.

#include <cstdio>
#include <memory>

#include "aggregator/merger.h"
#include "data/kg_builder.h"
#include "data/vocabulary.h"
#include "data/world.h"
#include "text/lexicon.h"
#include "vision/scene_graph_generator.h"

namespace {

void PrintGraph(const char* title, const svqa::graph::Graph& g) {
  std::printf("%s\n", title);
  for (const auto& e : g.AllEdges()) {
    std::printf("  {%s, %s, %s}\n", g.vertex(e.src).label.c_str(),
                std::string(e.label).c_str(), g.vertex(e.dst).label.c_str());
  }
}

}  // namespace

int main() {
  using namespace svqa;

  // A small world gives the relation model a biased training corpus
  // (head predicates dominate label pairs).
  data::WorldOptions options;
  options.num_scenes = 600;
  const data::World world = data::WorldGenerator(options).Generate();

  // A scene with a tail predicate to recover: dog carrying a bird.
  const vision::Scene* target = nullptr;
  for (const auto& scene : world.scenes) {
    for (const auto& rel : scene.relations) {
      if (rel.predicate == "carry") {
        target = &scene;
        break;
      }
    }
    if (target != nullptr) break;
  }
  if (target == nullptr) {
    std::printf("no carry scene sampled; try another seed\n");
    return 1;
  }

  std::printf("Ground truth of scene %d:\n", target->id);
  for (const auto& rel : target->relations) {
    std::printf("  {%s, %s, %s}\n",
                target->objects[rel.subject].category.c_str(),
                rel.predicate.c_str(),
                target->objects[rel.object].category.c_str());
  }

  auto model = std::make_shared<vision::RelationModel>(
      vision::RelationModel::Kind::kNeuralMotifs,
      data::Vocabulary::Default().scene_predicates,
      vision::RelationModel::DefaultOptionsFor(
          vision::RelationModel::Kind::kNeuralMotifs));
  model->FitBias(world.scenes);

  vision::DetectorOptions quiet;  // isolate the relation model's bias
  quiet.miss_rate = 0;
  quiet.misclassify_rate = 0;
  quiet.identity_loss_rate = 0;

  vision::SceneGraphGenerator original(vision::SimulatedDetector(quiet),
                                       model,
                                       vision::InferenceMode::kOriginal);
  vision::SceneGraphGenerator tde(vision::SimulatedDetector(quiet), model,
                                  vision::InferenceMode::kTde);

  std::printf("\n");
  PrintGraph("Figure 3(a) analogue - Original (biased) inference:",
             original.Generate(*target).graph);
  std::printf("\n");
  PrintGraph("Figure 3(c) analogue - TDE (debiased) inference:",
             tde.Generate(*target).graph);
  std::printf(
      "\nThe biased model tends to collapse tail predicates (carry, "
      "chase, ride) onto\nhead ones (near, on); TDE subtracts the "
      "label-prior effect and recovers them.\n");

  // --- Merging into G_mg ----------------------------------------------------
  const graph::Graph kg =
      data::BuildKnowledgeGraph(world, text::SynonymLexicon::Default());
  std::vector<vision::SceneGraphResult> results;
  results.push_back(tde.Generate(*target));
  aggregator::GraphMerger merger;
  auto merged = merger.Merge(kg, results);
  if (!merged.ok()) {
    std::printf("merge failed: %s\n", merged.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nMerged with the knowledge graph: %zu vertices, %zu edges "
      "(%zu entity links, %zu concept links)\n",
      merged->graph.num_vertices(), merged->graph.num_edges(),
      merged->entity_links, merged->concept_links);
  return 0;
}
