// movie_qa: walks through the paper's flagship example (Figures 4 & 5)
// step by step — tokenization, POS tagging, the dependency tree, clause
// splitting, SPOC extraction, the query graph, and its execution over
// the merged graph — for the question:
//
//   "What kind of clothes are worn by the wizard who is most frequently
//    hanging out with harry potter's girlfriend?"

#include <cstdio>

#include "core/engine.h"
#include "data/kg_builder.h"
#include "data/world.h"
#include "nlp/clause_splitter.h"
#include "nlp/dependency_parser.h"
#include "nlp/pos_tagger.h"
#include "text/tokenizer.h"

int main() {
  using namespace svqa;

  const std::string question =
      "What kind of clothes are worn by the wizard who is most frequently "
      "hanging out with harry potter's girlfriend?";
  std::printf("Q: %s\n", question.c_str());

  // --- Figure 4(a): POS tags and the dependency tree -----------------------
  nlp::PosTagger tagger = nlp::PosTagger::Default();
  const auto tokens = text::Tokenize(question);
  const auto tagged = tagger.Tag(tokens);
  std::printf("\nPOS: ");
  for (const auto& t : tagged) {
    std::printf("%s/%s ", t.word.c_str(), t.tag.c_str());
  }
  std::printf("\n");

  nlp::DependencyParser parser;
  auto parse = parser.Parse(tagged);
  if (!parse.ok()) {
    std::printf("parse failed: %s\n", parse.status().ToString().c_str());
    return 1;
  }
  std::printf("\nDependency tree:\n%s", parse->tree.ToString().c_str());

  // --- Figure 4(b): clause splitting with pronoun resolution ---------------
  std::printf("\nClauses (relative pronoun resolved):\n");
  for (const auto& clause : nlp::SplitClauses(*parse)) {
    std::printf("  - %s\n", clause.c_str());
  }

  // --- Figure 4(c)/(d): SPOCs and the query graph --------------------------
  const text::SynonymLexicon lexicon = text::SynonymLexicon::Default();
  core::SvqaEngine engine;
  auto graph = engine.Parse(question);
  if (!graph.ok()) {
    std::printf("query graph failed: %s\n",
                graph.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s", graph->ToString().c_str());

  // --- Figure 5: execution over the merged graph ---------------------------
  data::WorldOptions world_options;
  world_options.num_scenes = 800;
  const data::World world = data::WorldGenerator(world_options).Generate();
  const graph::Graph kg = data::BuildKnowledgeGraph(world, lexicon);
  Status s = engine.Ingest(kg, world.scenes);
  if (!s.ok()) {
    std::printf("ingest failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Re-parse after ingest: the engine's gazetteer now knows the cast.
  auto graph2 = engine.Parse(question);
  SimClock clock;
  auto answer = engine.Execute(*graph2, &clock);
  if (!answer.ok()) {
    std::printf("execution failed: %s\n",
                answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\nA: %s   (virtual latency %.2f s)\n", answer->text.c_str(),
              clock.ElapsedSeconds());
  std::printf(
      "\nHow it resolved: harry potter's girlfriends come from the "
      "knowledge graph\n(girlfriend-of edges), their appearances from "
      "same-as links into the scene graphs,\nhang-out edges select the "
      "most frequent wizard companion, and that wizard's\nwear edges "
      "name the clothing kind.\n");
  return 0;
}
