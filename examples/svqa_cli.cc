// svqa_cli: a command-line front end for the engine.
//
//   svqa_cli [--scenes N] [--seed S] [--save-merged PATH]
//            [--load-merged PATH] [--export-questions PATH] [--explain]
//            [question ...]
//
// Without --load-merged, a synthetic world of N scenes is generated and
// ingested. Questions given as arguments are answered; with none, a
// small demo set runs. --save-merged / --load-merged skip the offline
// phase on subsequent runs; --export-questions writes the MVQA QA pairs
// of the generated world to a TSV file.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/dataset_io.h"
#include "data/kg_builder.h"
#include "data/mvqa_generator.h"
#include "text/lexicon.h"

namespace {

void Usage(const char* argv0) {
  std::printf(
      "usage: %s [--scenes N] [--seed S] [--save-merged PATH]\n"
      "          [--load-merged PATH] [--export-questions PATH]\n"
      "          [--explain | --explain-analyze] [question ...]\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace svqa;

  int scenes = 800;
  uint64_t seed = 2024;
  bool explain = false;
  bool explain_analyze = false;
  std::string save_merged, load_merged, export_questions;
  std::vector<std::string> questions;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::printf("%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenes") {
      scenes = std::atoi(next("--scenes"));
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next("--seed")));
    } else if (arg == "--save-merged") {
      save_merged = next("--save-merged");
    } else if (arg == "--load-merged") {
      load_merged = next("--load-merged");
    } else if (arg == "--export-questions") {
      export_questions = next("--export-questions");
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--explain-analyze") {
      explain_analyze = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      questions.push_back(arg);
    }
  }

  core::SvqaEngine engine;

  if (!load_merged.empty()) {
    auto merged = core::SvqaEngine::LoadMergedGraph(load_merged);
    if (!merged.ok()) {
      std::printf("load failed: %s\n",
                  merged.status().ToString().c_str());
      return 1;
    }
    if (Status s = engine.IngestMerged(std::move(*merged)); !s.ok()) {
      std::printf("ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("loaded merged graph: %zu vertices / %zu edges\n",
                engine.merged().graph.num_vertices(),
                engine.merged().graph.num_edges());
  } else {
    std::printf("generating world (%d scenes, seed %llu)...\n", scenes,
                static_cast<unsigned long long>(seed));
    data::WorldOptions wopts;
    wopts.num_scenes = scenes;
    wopts.seed = seed;
    const data::World world = data::WorldGenerator(wopts).Generate();
    const graph::Graph kg =
        data::BuildKnowledgeGraph(world, text::SynonymLexicon::Default());
    SimClock clock;
    if (Status s = engine.Ingest(kg, world.scenes, &clock); !s.ok()) {
      std::printf("ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf(
        "merged graph: %zu vertices / %zu edges (offline %.1f s "
        "virtual)\n",
        engine.merged().graph.num_vertices(),
        engine.merged().graph.num_edges(), clock.ElapsedSeconds());

    if (!export_questions.empty()) {
      data::MvqaOptions mopts;
      mopts.world = wopts;
      const data::MvqaDataset ds = data::MvqaGenerator(mopts).Generate();
      if (Status s = data::SaveQuestions(ds.questions, export_questions);
          !s.ok()) {
        std::printf("export failed: %s\n", s.ToString().c_str());
      } else {
        std::printf("exported %zu questions to %s\n", ds.questions.size(),
                    export_questions.c_str());
      }
    }
  }

  if (!save_merged.empty()) {
    if (Status s = engine.SaveMergedGraph(save_merged); !s.ok()) {
      std::printf("save failed: %s\n", s.ToString().c_str());
    } else {
      std::printf("saved merged graph to %s\n", save_merged.c_str());
    }
  }

  if (questions.empty()) {
    questions = {
        "What kind of clothes are worn by the wizard who is most "
        "frequently hanging out with harry potter's girlfriend?",
        "How many wizards are hanging out with dean thomas?",
        "Does a dog appear on the grass?",
        "What is the color of the clothes that are worn by harry potter?",
    };
  }

  for (const std::string& q : questions) {
    if (explain_analyze) {
      // EXPLAIN ANALYZE: execute the question and print the
      // per-quadruple cost-attribution report (reconciled bit-for-bit
      // against the charged virtual micros, or the call errors).
      auto r = engine.ExplainAnalyze(q);
      if (r.ok()) {
        std::printf("%s", r->report.ToText().c_str());
        std::printf("A: %s\n\n", r->answer.text.c_str());
      } else {
        std::printf("Q: %s\nA: <error: %s>\n", q.c_str(),
                    r.status().ToString().c_str());
      }
      continue;
    }
    if (explain) {
      auto trace = engine.Explain(q);
      if (trace.ok()) {
        std::printf("%s\n", trace->c_str());
      } else {
        std::printf("Q: %s\nA: <error: %s>\n", q.c_str(),
                    trace.status().ToString().c_str());
      }
      continue;
    }
    SimClock clock;
    auto answer = engine.Ask(q, &clock);
    if (answer.ok()) {
      std::printf("Q: %s\nA: %s   (%.2f s virtual)\n", q.c_str(),
                  answer->text.c_str(), clock.ElapsedSeconds());
    } else {
      std::printf("Q: %s\nA: <error: %s>\n", q.c_str(),
                  answer.status().ToString().c_str());
    }
  }
  return 0;
}
