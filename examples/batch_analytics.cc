// batch_analytics: the multi-query serving scenario of §V-B — a batch of
// analytics questions over one corpus, with the frequency-ratio
// scheduler and the key-centric cache, comparing cache policies and
// worker counts.

#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "data/mvqa_generator.h"
#include "exec/batch_executor.h"

int main() {
  using namespace svqa;

  std::printf("Building the MVQA corpus and merged graph...\n");
  data::MvqaOptions options;
  options.world.num_scenes = 1500;
  const data::MvqaDataset dataset =
      data::MvqaGenerator(options).Generate();

  core::SvqaEngine engine;
  Status s = engine.Ingest(dataset.knowledge_graph, dataset.world.scenes);
  if (!s.ok()) {
    std::printf("ingest failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Parse the whole batch up front.
  std::vector<query::QueryGraph> graphs;
  for (const auto& q : dataset.questions) {
    auto parsed = engine.Parse(q.text);
    if (parsed.ok()) graphs.push_back(std::move(*parsed));
  }
  std::printf("parsed %zu/%zu questions\n", graphs.size(),
              dataset.questions.size());

  // Configurations to compare.
  struct Config {
    const char* name;
    bool cache;
    exec::CachePolicy policy;
    bool scheduler;
    std::size_t workers;
    exec::BatchMode mode;
  };
  constexpr auto kSim = exec::BatchMode::kSimulated;
  constexpr auto kThr = exec::BatchMode::kThreaded;
  const Config configs[] = {
      {"no cache, unscheduled", false, exec::CachePolicy::kLfu, false, 1,
       kSim},
      {"LFU cache, unscheduled", true, exec::CachePolicy::kLfu, false, 1,
       kSim},
      {"LFU cache + scheduler", true, exec::CachePolicy::kLfu, true, 1,
       kSim},
      {"LRU cache + scheduler", true, exec::CachePolicy::kLru, true, 1,
       kSim},
      {"LFU + scheduler, 4 workers", true, exec::CachePolicy::kLfu, true, 4,
       kSim},
      {"... same, real threads", true, exec::CachePolicy::kLfu, true, 4,
       kThr},
  };

  std::printf("\n%-28s %14s %12s\n", "Configuration", "Latency (s)",
              "Answered");
  std::printf(
      "--------------------------------------------------------------\n");
  for (const Config& c : configs) {
    exec::KeyCentricCacheOptions copts;
    copts.capacity = 100;
    copts.policy = c.policy;
    exec::KeyCentricCache cache(copts);
    exec::QueryGraphExecutor executor(&engine.merged(),
                                      &engine.embeddings(),
                                      c.cache ? &cache : nullptr);
    exec::BatchOptions bopts;
    bopts.use_scheduler = c.scheduler;
    bopts.num_workers = c.workers;
    bopts.mode = c.mode;
    exec::BatchExecutor batch(&executor, bopts);
    const exec::BatchResult result = batch.ExecuteAll(graphs);
    std::size_t answered = 0;
    for (const auto& o : result.outcomes) {
      if (o.status.ok()) ++answered;
    }
    std::printf("%-28s %14.1f %9zu/%zu\n", c.name,
                result.total_micros / 1e6, answered, graphs.size());
  }
  std::printf(
      "\nTakeaways: the shared cache removes repeated matchVertex scans "
      "and relation\nsearches; the scheduler front-loads high-reuse query "
      "graphs so later ones hit a\nwarm cache; extra workers divide the "
      "remaining work. The last row runs real\nthread-pool workers "
      "against the same shared executor + cache and returns the\nsame "
      "answers (see DESIGN.md \"Parallel batch execution\").\n");
  return 0;
}
