// Quickstart: build a small world, ingest it into SVQA, and ask the
// paper's flagship cross-source question.
//
// Demonstrates the whole pipeline: synthetic images -> scene graphs ->
// merged graph (+ knowledge graph) -> NL question -> query graph ->
// answer.

#include <cstdio>

#include "core/engine.h"
#include "core/evaluation.h"
#include "data/kg_builder.h"
#include "data/world.h"

int main() {
  using namespace svqa;

  // 1. A small synthetic world: 500 "images" plus the movie knowledge
  //    graph (characters, relationships, taxonomy).
  data::WorldOptions world_options;
  world_options.num_scenes = 500;
  world_options.seed = 2024;
  const data::World world = data::WorldGenerator(world_options).Generate();
  const graph::Graph kg =
      data::BuildKnowledgeGraph(world, text::SynonymLexicon::Default());
  std::printf("world: %zu images, KG: %zu vertices / %zu edges\n",
              world.scenes.size(), kg.num_vertices(), kg.num_edges());

  // 2. Ingest: scene graph generation (Neural-Motifs + TDE) + merging.
  core::SvqaOptions options;
  core::SvqaEngine engine(options);
  SimClock ingest_clock;
  Status status = engine.Ingest(kg, world.scenes, &ingest_clock);
  if (!status.ok()) {
    std::printf("ingest failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "merged graph: %zu vertices / %zu edges (%zu entity links, %zu "
      "concept links), offline time %.1f s (virtual)\n",
      engine.merged().graph.num_vertices(),
      engine.merged().graph.num_edges(), engine.merged().entity_links,
      engine.merged().concept_links, ingest_clock.ElapsedSeconds());

  // 3. Ask complex questions.
  const char* questions[] = {
      "What kind of clothes are worn by the wizard who is most frequently "
      "hanging out with harry potter's girlfriend?",
      "How many wizards are hanging out with dean thomas?",
      "Does the cat that is sitting on the bed appear near the car?",
      "What kind of animals is carried by the dogs that are sitting on "
      "the grass?",
  };
  for (const char* q : questions) {
    SimClock clock;
    auto parsed = engine.Parse(q, &clock);
    if (!parsed.ok()) {
      std::printf("\nQ: %s\n  parse error: %s\n", q,
                  parsed.status().ToString().c_str());
      continue;
    }
    std::printf("\nQ: %s\n%s", q, parsed->ToString().c_str());
    auto answer = engine.Execute(*parsed, &clock);
    if (!answer.ok()) {
      std::printf("  execution error: %s\n",
                  answer.status().ToString().c_str());
      continue;
    }
    std::printf("  A: %s   (%.0f ms virtual)\n", answer->text.c_str(),
                clock.ElapsedMillis());
  }
  return 0;
}
