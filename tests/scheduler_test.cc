#include "exec/scheduler.h"

#include <gtest/gtest.h>

#include "data/kg_builder.h"
#include "data/mvqa_generator.h"
#include "exec/batch_executor.h"
#include "text/lexicon.h"

namespace svqa::exec {
namespace {

using query::DependencyKind;
using query::QueryEdge;
using query::QueryGraph;

nlp::SpocElement El(std::string head) {
  nlp::SpocElement e;
  e.text = head;
  e.head = std::move(head);
  return e;
}

nlp::Spoc MakeSpoc(const std::string& s, const std::string& p,
                   const std::string& o) {
  nlp::Spoc spoc;
  spoc.subject = El(s);
  spoc.predicate = p;
  spoc.object = El(o);
  return spoc;
}

QueryGraph OneVertex(const std::string& s, const std::string& p,
                     const std::string& o) {
  return QueryGraph("", nlp::QuestionType::kJudgment,
                    {MakeSpoc(s, p, o)}, {});
}

TEST(SchedulerTest, EmptyBatch) {
  const auto result = ScheduleQueries({});
  EXPECT_TRUE(result.order.empty());
  EXPECT_TRUE(result.scores.empty());
}

TEST(SchedulerTest, SharedVerticesScoreHigher) {
  // g0 and g1 share a vertex key; g2 is unique. Shared-vertex graphs run
  // first.
  const QueryGraph g0 = OneVertex("dog", "on", "grass");
  const QueryGraph g1 = OneVertex("dog", "on", "grass");
  const QueryGraph g2 = OneVertex("horse", "near", "tv");
  const auto result = ScheduleQueries({&g2, &g0, &g1});
  ASSERT_EQ(result.order.size(), 3u);
  // Graph 0 in the input is the unique one; it must be scheduled last.
  EXPECT_EQ(result.order.back(), 0);
  EXPECT_GT(result.scores[1], result.scores[0]);
  EXPECT_DOUBLE_EQ(result.scores[1], result.scores[2]);
}

TEST(SchedulerTest, MoreVerticesWithSharedKeysScoreHigher) {
  // The paper's Example 6: a graph containing more (and more frequent)
  // vertices is processed first.
  QueryGraph big("", nlp::QuestionType::kReasoning,
                 {MakeSpoc("wizard", "wear", "robe"),
                  MakeSpoc("wizard", "hang-out", "person")},
                 {QueryEdge{1, 0, DependencyKind::kS2S}});
  const QueryGraph small = OneVertex("wizard", "wear", "robe");
  const auto result = ScheduleQueries({&small, &big});
  EXPECT_EQ(result.order.front(), 1);
}

TEST(SchedulerTest, StableOrderOnTies) {
  const QueryGraph a = OneVertex("a", "p", "b");
  const QueryGraph b = OneVertex("c", "p", "d");
  const auto result = ScheduleQueries({&a, &b});
  EXPECT_EQ(result.order, (std::vector<int>{0, 1}));
}

class BatchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::WorldOptions opts;
    opts.num_scenes = 200;
    opts.seed = 31;
    world_ = new data::World(data::WorldGenerator(opts).Generate());
    auto kg = data::BuildKnowledgeGraph(*world_,
                                        text::SynonymLexicon::Default());
    merged_ = new aggregator::MergedGraph(
        data::BuildPerfectMergedGraph(*world_, kg));
    embeddings_ = new text::EmbeddingModel(text::SynonymLexicon::Default());
  }
  static void TearDownTestSuite() {
    delete world_;
    delete merged_;
    delete embeddings_;
  }

  std::vector<QueryGraph> SampleBatch() const {
    std::vector<QueryGraph> graphs;
    graphs.push_back(OneVertex("dog", "on", "grass"));
    graphs.push_back(OneVertex("cat", "on", "bed"));
    graphs.push_back(OneVertex("dog", "on", "grass"));  // repeat
    graphs.push_back(OneVertex("bird", "on", "tree"));
    graphs.push_back(OneVertex("dog", "on", "grass"));  // repeat
    return graphs;
  }

  static data::World* world_;
  static aggregator::MergedGraph* merged_;
  static text::EmbeddingModel* embeddings_;
};

data::World* BatchFixture::world_ = nullptr;
aggregator::MergedGraph* BatchFixture::merged_ = nullptr;
text::EmbeddingModel* BatchFixture::embeddings_ = nullptr;

TEST_F(BatchFixture, OutcomesKeepInputOrder) {
  KeyCentricCache cache(KeyCentricCacheOptions{});
  QueryGraphExecutor executor(merged_, embeddings_, &cache);
  BatchExecutor batch(&executor);
  const auto graphs = SampleBatch();
  const BatchResult result = batch.ExecuteAll(graphs);
  ASSERT_EQ(result.outcomes.size(), graphs.size());
  for (const auto& o : result.outcomes) {
    EXPECT_TRUE(o.status.ok()) << o.status;
    EXPECT_GT(o.latency_micros, 0);
  }
  // Repeats of the same query get the same answer.
  EXPECT_EQ(result.outcomes[0].answer.text, result.outcomes[2].answer.text);
  EXPECT_EQ(result.outcomes[0].answer.text, result.outcomes[4].answer.text);
}

TEST_F(BatchFixture, SerialTotalIsSumOfLatencies) {
  QueryGraphExecutor executor(merged_, embeddings_);
  BatchOptions opts;
  opts.num_workers = 1;
  BatchExecutor batch(&executor, opts);
  const BatchResult result = batch.ExecuteAll(SampleBatch());
  double sum = 0;
  for (const auto& o : result.outcomes) sum += o.latency_micros;
  EXPECT_NEAR(result.total_micros, sum, 1e-6);
}

TEST_F(BatchFixture, ParallelMakespanIsBelowSerialSum) {
  QueryGraphExecutor executor(merged_, embeddings_);
  BatchOptions serial;
  serial.num_workers = 1;
  BatchOptions parallel;
  parallel.num_workers = 4;
  const auto graphs = SampleBatch();
  const double serial_total =
      BatchExecutor(&executor, serial).ExecuteAll(graphs).total_micros;
  const double parallel_total =
      BatchExecutor(&executor, parallel).ExecuteAll(graphs).total_micros;
  EXPECT_LT(parallel_total, serial_total);
}

TEST_F(BatchFixture, SchedulerWarmsTheCacheFaster) {
  // With the scheduler, high-reuse graphs run first so later repeats hit
  // the cache; total virtual latency is no worse than unscheduled.
  const auto graphs = SampleBatch();
  KeyCentricCache cache1(KeyCentricCacheOptions{});
  QueryGraphExecutor e1(merged_, embeddings_, &cache1);
  BatchOptions with;
  with.use_scheduler = true;
  const double scheduled =
      BatchExecutor(&e1, with).ExecuteAll(graphs).total_micros;

  KeyCentricCache cache2(KeyCentricCacheOptions{});
  QueryGraphExecutor e2(merged_, embeddings_, &cache2);
  BatchOptions without;
  without.use_scheduler = false;
  const double unscheduled =
      BatchExecutor(&e2, without).ExecuteAll(graphs).total_micros;
  EXPECT_LE(scheduled, unscheduled * 1.01);
}

TEST_F(BatchFixture, EmptyBatchIsFine) {
  QueryGraphExecutor executor(merged_, embeddings_);
  BatchExecutor batch(&executor);
  const BatchResult result = batch.ExecuteAll({});
  EXPECT_TRUE(result.outcomes.empty());
  EXPECT_DOUBLE_EQ(result.total_micros, 0);
}

}  // namespace
}  // namespace svqa::exec
