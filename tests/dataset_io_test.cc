#include "data/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "exec/executor.h"
#include "text/embedding.h"

namespace svqa::data {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MvqaOptions opts;
    opts.world.num_scenes = 700;
    opts.num_color = 4;
    dataset_ = new MvqaDataset(MvqaGenerator(opts).Generate());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static MvqaDataset* dataset_;
};

MvqaDataset* DatasetIoTest::dataset_ = nullptr;

TEST_F(DatasetIoTest, TextRoundTripPreservesEverything) {
  const std::string text = QuestionsToText(dataset_->questions);
  auto loaded = QuestionsFromText(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), dataset_->questions.size());
  for (std::size_t i = 0; i < loaded->size(); ++i) {
    const MvqaQuestion& a = dataset_->questions[i];
    const MvqaQuestion& b = (*loaded)[i];
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.gold_answer, b.gold_answer);
    EXPECT_EQ(a.adversarial, b.adversarial);
    EXPECT_EQ(a.num_clauses, b.num_clauses);
    EXPECT_EQ(a.relevant_images, b.relevant_images);
    ASSERT_EQ(a.gold_graph.size(), b.gold_graph.size());
    ASSERT_EQ(a.gold_graph.edges().size(), b.gold_graph.edges().size());
    for (std::size_t v = 0; v < a.gold_graph.size(); ++v) {
      const nlp::Spoc& sa = a.gold_graph.vertices()[v];
      const nlp::Spoc& sb = b.gold_graph.vertices()[v];
      EXPECT_EQ(sa.subject.head, sb.subject.head);
      EXPECT_EQ(sa.subject.owner, sb.subject.owner);
      EXPECT_EQ(sa.subject.attribute, sb.subject.attribute);
      EXPECT_EQ(sa.subject.is_variable, sb.subject.is_variable);
      EXPECT_EQ(sa.predicate, sb.predicate);
      EXPECT_EQ(sa.object.head, sb.object.head);
      EXPECT_EQ(sa.object.want_kind, sb.object.want_kind);
      EXPECT_EQ(sa.constraint, sb.constraint);
    }
    for (std::size_t e = 0; e < a.gold_graph.edges().size(); ++e) {
      EXPECT_EQ(a.gold_graph.edges()[e].producer,
                b.gold_graph.edges()[e].producer);
      EXPECT_EQ(a.gold_graph.edges()[e].consumer,
                b.gold_graph.edges()[e].consumer);
      EXPECT_EQ(a.gold_graph.edges()[e].kind,
                b.gold_graph.edges()[e].kind);
    }
  }
}

TEST_F(DatasetIoTest, LoadedGoldGraphsExecuteIdentically) {
  auto loaded = QuestionsFromText(QuestionsToText(dataset_->questions));
  ASSERT_TRUE(loaded.ok());
  text::EmbeddingModel embeddings(text::SynonymLexicon::Default());
  exec::QueryGraphExecutor executor(&dataset_->perfect_merged, &embeddings);
  for (const MvqaQuestion& q : *loaded) {
    auto ans = executor.Execute(q.gold_graph);
    ASSERT_TRUE(ans.ok()) << q.text;
    EXPECT_EQ(ans->text, q.gold_answer) << q.text;
  }
}

TEST_F(DatasetIoTest, FileRoundTrip) {
  const std::string path =
      std::string(::testing::TempDir()) + "/mvqa_questions.tsv";
  ASSERT_TRUE(SaveQuestions(dataset_->questions, path).ok());
  auto loaded = LoadQuestions(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), dataset_->questions.size());
  std::remove(path.c_str());
}

TEST(DatasetIoParseTest, RejectsMalformedInput) {
  EXPECT_TRUE(QuestionsFromText("X\tgarbage\n").status().IsParseError());
  EXPECT_TRUE(QuestionsFromText("V\ta|b|c|d|e|\twear\ta|b|c|d|e|\t\n")
                  .status()
                  .IsParseError());  // V outside a question
  EXPECT_TRUE(
      QuestionsFromText("Q\tjudgment\t0\t1\n").status().IsParseError());
  EXPECT_TRUE(QuestionsFromText(
                  "Q\tbogus\t0\t1\t5\tyes\tdoes a dog appear?\n")
                  .status()
                  .IsParseError());
}

TEST(DatasetIoParseTest, EmptyInputYieldsNoQuestions) {
  auto loaded = QuestionsFromText("# svqa-mvqa-questions v1\n");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace svqa::data
