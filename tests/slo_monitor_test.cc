// SLO monitor tests: the randomized property check of the sliding
// window's percentiles against exact sort-based quantiles, window
// eviction / late-drop edge cases, exemplar ordering, byte-stable
// rendering, and StatszText's worker-count invariance in simulated mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "data/mvqa_generator.h"
#include "serve/server.h"
#include "serve/slo_monitor.h"
#include "text/lexicon.h"
#include "util/rng.h"

namespace svqa::serve {
namespace {

// Exact nearest-rank percentile bucketized the way the monitor reports
// it: sort the latencies, take rank ceil(q*n), map to the inclusive
// upper bound of its latency bucket (-2 = overflow, -1 = empty).
int64_t ExactPercentile(std::vector<uint64_t> latencies, double q) {
  if (latencies.empty()) return -1;
  std::sort(latencies.begin(), latencies.end());
  const auto rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(q * static_cast<double>(latencies.size()))));
  const uint64_t lat = latencies[rank - 1];
  const std::vector<uint64_t>& bounds = SloMonitor::LatencyBounds();
  auto it = std::lower_bound(bounds.begin(), bounds.end(), lat);
  if (it == bounds.end()) return -2;
  return static_cast<int64_t>(*it);
}

TEST(SloMonitorTest, PercentilesMatchExactQuantilesOnRandomWorkloads) {
  // The property: for any workload that fits inside the window, every
  // reported percentile equals the exact sort-based nearest-rank
  // quantile of the recorded latencies (bucketized), and the violation
  // counts are exact.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    SloOptions opts;
    opts.window_micros = 60e6;
    opts.num_buckets = 60;
    SloMonitor monitor(opts);
    std::vector<uint64_t> latencies[kNumPriorityClasses];
    uint64_t over[kNumPriorityClasses] = {};

    const int n = 200 + static_cast<int>(rng.Below(800));
    for (int i = 0; i < n; ++i) {
      const int cls = static_cast<int>(rng.Below(kNumPriorityClasses));
      // Log-uniform latencies spanning the whole bucket range (and past
      // it into the overflow bucket).
      const double exponent = 1.5 + static_cast<double>(rng.Below(8000)) / 1000;
      const uint64_t latency = static_cast<uint64_t>(std::pow(10, exponent));
      // All completions inside one window: no eviction in this test.
      const double completion =
          static_cast<double>(rng.Below(static_cast<uint64_t>(59e6)));
      monitor.Record(static_cast<PriorityClass>(cls), completion,
                     static_cast<double>(latency), /*query_id=*/i);
      latencies[cls].push_back(latency);
      if (latency > opts.latency_target_micros[cls]) ++over[cls];
    }

    const SloSnapshot snap = monitor.Snapshot();
    EXPECT_EQ(snap.late_drops, 0u);
    for (int c = 0; c < kNumPriorityClasses; ++c) {
      const SloSnapshot::PerClass& pc = snap.classes[c];
      ASSERT_EQ(pc.count, latencies[c].size()) << "seed " << seed;
      EXPECT_EQ(pc.over_target, over[c]) << "seed " << seed;
      EXPECT_EQ(pc.p50, ExactPercentile(latencies[c], 0.50))
          << "seed " << seed << " class " << c;
      EXPECT_EQ(pc.p95, ExactPercentile(latencies[c], 0.95))
          << "seed " << seed << " class " << c;
      EXPECT_EQ(pc.p99, ExactPercentile(latencies[c], 0.99))
          << "seed " << seed << " class " << c;
      if (pc.count > 0) {
        const double expected_burn =
            (static_cast<double>(over[c]) / static_cast<double>(pc.count)) /
            (1.0 - opts.objective);
        EXPECT_DOUBLE_EQ(pc.burn_rate, expected_burn);
        EXPECT_EQ(pc.overloaded, expected_burn > 1.0);
      }
    }
  }
}

TEST(SloMonitorTest, SnapshotIsRecordOrderInvariant) {
  Rng rng(99);
  struct Rec {
    int cls;
    double completion;
    double latency;
    uint64_t id;
  };
  std::vector<Rec> recs;
  for (int i = 0; i < 500; ++i) {
    recs.push_back({static_cast<int>(rng.Below(3)),
                    static_cast<double>(rng.Below(55'000'000)),
                    static_cast<double>(rng.Below(20'000'000)),
                    static_cast<uint64_t>(i)});
  }
  SloMonitor forward, backward;
  for (const Rec& r : recs) {
    forward.Record(static_cast<PriorityClass>(r.cls), r.completion, r.latency,
                   r.id);
  }
  for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
    backward.Record(static_cast<PriorityClass>(it->cls), it->completion,
                    it->latency, it->id);
  }
  EXPECT_EQ(forward.Snapshot().ToText(), backward.Snapshot().ToText());
}

TEST(SloMonitorTest, WindowEvictsOldBuckets) {
  SloOptions opts;
  opts.window_micros = 60e6;
  opts.num_buckets = 60;
  SloMonitor monitor(opts);
  monitor.Record(PriorityClass::kInteractive, /*completion=*/1e6,
                 /*latency=*/1000, /*query_id=*/1);
  EXPECT_EQ(monitor.Snapshot().classes[0].count, 1u);
  // A completion two windows later reclaims the whole ring: the old
  // record is no longer live at the new high-water snapshot.
  monitor.Record(PriorityClass::kInteractive, /*completion=*/121e6,
                 /*latency=*/2000, /*query_id=*/2);
  const SloSnapshot snap = monitor.Snapshot();
  EXPECT_EQ(snap.classes[0].count, 1u);
  ASSERT_EQ(snap.classes[0].exemplars.size(), 1u);
  EXPECT_EQ(snap.classes[0].exemplars[0].query_id, 2u);
  EXPECT_EQ(snap.late_drops, 0u);
}

TEST(SloMonitorTest, StragglerOlderThanTheRingIsALateDrop) {
  SloOptions opts;
  opts.window_micros = 60e6;
  opts.num_buckets = 60;
  SloMonitor monitor(opts);
  // Index 61 claims slot 1; the straggler's index 1 maps to the same
  // slot but is older than the ring — counted, never mixed in.
  monitor.Record(PriorityClass::kBatch, /*completion=*/61.5e6,
                 /*latency=*/1000, /*query_id=*/1);
  monitor.Record(PriorityClass::kBatch, /*completion=*/1.5e6,
                 /*latency=*/1000, /*query_id=*/2);
  EXPECT_EQ(monitor.late_drops(), 1u);
  EXPECT_EQ(monitor.Snapshot().classes[1].count, 1u);
}

TEST(SloMonitorTest, SlotReuseResetsForTheNewIndex) {
  SloOptions opts;
  opts.window_micros = 60e6;
  opts.num_buckets = 60;  // bucket width 1e6
  SloMonitor monitor(opts);
  // Index 2, then index 62: same slot (2 % 60), newer index wins.
  monitor.Record(PriorityClass::kInteractive, 2.5e6, 100, 1);
  monitor.Record(PriorityClass::kInteractive, 62.5e6, 200, 2);
  const SloSnapshot snap = monitor.Snapshot();
  EXPECT_EQ(snap.classes[0].count, 1u);
  ASSERT_EQ(snap.classes[0].exemplars.size(), 1u);
  EXPECT_EQ(snap.classes[0].exemplars[0].query_id, 2u);
}

TEST(SloMonitorTest, ExemplarsAreSlowestFirstAndTruncated) {
  SloOptions opts;
  opts.max_exemplars = 2;
  SloMonitor monitor(opts);
  monitor.Record(PriorityClass::kInteractive, 1e6, 100, 10);
  monitor.Record(PriorityClass::kInteractive, 2e6, 300, 11);
  monitor.Record(PriorityClass::kInteractive, 3e6, 200, 12);
  monitor.Record(PriorityClass::kInteractive, 4e6, 300, 9);
  const SloSnapshot snap = monitor.Snapshot();
  ASSERT_EQ(snap.classes[0].exemplars.size(), 2u);
  // (latency desc, id asc): the two 300s, lower id first.
  EXPECT_EQ(snap.classes[0].exemplars[0].query_id, 9u);
  EXPECT_EQ(snap.classes[0].exemplars[1].query_id, 11u);
}

TEST(SloMonitorTest, ToTextGoldenForEmptyMonitor) {
  SloMonitor monitor;
  EXPECT_EQ(monitor.Snapshot().ToText(),
            "slo window=60000000.000 objective=0.99 late_drops=0\n"
            "class            count   over        p50        p95        p99 "
            "  burn state\n"
            "interactive          0      0          -          -          - "
            "  0.00 ok\n"
            "batch                0      0          -          -          - "
            "  0.00 ok\n"
            "best-effort          0      0          -          -          - "
            "  0.00 ok\n");
}

TEST(SloMonitorTest, OptionsValidate) {
  SloOptions opts;
  EXPECT_TRUE(opts.Validate().ok());
  opts.window_micros = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts.window_micros = 60e6;
  opts.num_buckets = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts.num_buckets = 5000;
  EXPECT_FALSE(opts.Validate().ok());
  opts.num_buckets = 60;
  opts.objective = 1.0;
  EXPECT_FALSE(opts.Validate().ok());
  opts.objective = 0.99;
  opts.latency_target_micros[1] = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts.latency_target_micros[1] = 10;
  opts.max_exemplars = 65;
  EXPECT_FALSE(opts.Validate().ok());
}

// -- StatszText worker-count invariance --------------------------------------

class StatszFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::MvqaOptions opts;
    opts.world.num_scenes = 120;
    opts.world.seed = 77;
    dataset_ = new data::MvqaDataset(data::MvqaGenerator(opts).Generate());
    embeddings_ = new text::EmbeddingModel(text::SynonymLexicon::Default());
    // Cross-request shared state off, so per-request virtual time is a
    // pure function of the query no matter which worker ran it.
    SnapshotStoreOptions store_opts;
    store_opts.enable_cache = false;
    store_opts.executor.memoize_similarity = false;
    store_opts.executor.matcher.memoize_similarity = false;
    store_ = new GraphSnapshotStore(embeddings_, store_opts);
    store_->Publish(dataset_->perfect_merged);
  }
  static void TearDownTestSuite() {
    delete store_;
    delete embeddings_;
    delete dataset_;
    store_ = nullptr;
    embeddings_ = nullptr;
    dataset_ = nullptr;
  }

  static std::string RunAndDump(std::size_t workers) {
    ServerOptions options;
    options.mode = ServeMode::kSimulated;
    options.num_workers = workers;
    SvqaServer server(store_, options);
    EXPECT_TRUE(server.Start().ok());
    const std::size_t n = std::min<std::size_t>(
        24, dataset_->questions.size());
    RequestOptions req;
    for (std::size_t i = 0; i < n; ++i) {
      req.priority = static_cast<PriorityClass>(i % kNumPriorityClasses);
      // Spaced arrivals: queue waits differ per worker count, but
      // completion = arrival + latency stays on the virtual timeline.
      req.arrival_micros = static_cast<double>(i) * 10e6;
      server.Submit(dataset_->questions[i].gold_graph, req);
    }
    server.RunSimulated();
    std::string text = server.StatszText();
    server.Shutdown();
    return text;
  }

  static data::MvqaDataset* dataset_;
  static text::EmbeddingModel* embeddings_;
  static GraphSnapshotStore* store_;
};

data::MvqaDataset* StatszFixture::dataset_ = nullptr;
text::EmbeddingModel* StatszFixture::embeddings_ = nullptr;
GraphSnapshotStore* StatszFixture::store_ = nullptr;

TEST_F(StatszFixture, StatszIsByteIdenticalAcrossWorkerCounts) {
  const std::string one = RunAndDump(1);
  const std::string two = RunAndDump(2);
  const std::string eight = RunAndDump(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  // Sanity: the dashboard actually contains the SLO section with the
  // recorded traffic, not an empty stub.
  EXPECT_NE(one.find("== svqa statsz =="), std::string::npos);
  EXPECT_NE(one.find("slo window="), std::string::npos);
  EXPECT_NE(one.find("interactive"), std::string::npos);
}

TEST_F(StatszFixture, SloStatusSeesDispatchedRequests) {
  ServerOptions options;
  options.mode = ServeMode::kSimulated;
  SvqaServer server(store_, options);
  ASSERT_TRUE(server.Start().ok());
  RequestOptions req;
  req.arrival_micros = 0;
  server.Submit(dataset_->questions[0].gold_graph, req);
  server.RunSimulated();
  const SloSnapshot snap = server.SloStatus();
  EXPECT_EQ(snap.classes[0].count, 1u);
  ASSERT_EQ(snap.classes[0].exemplars.size(), 1u);
  server.Shutdown();
}

}  // namespace
}  // namespace svqa::serve
