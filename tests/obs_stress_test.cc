// TSan-oriented stress tests for the observability subsystem
// (registered under the ctest `stress` label): 8 workers hammering one
// MetricsRegistry through shared StackMetrics handles while each runs
// its own per-query tracer into a shared FlightRecorder — the exact
// sharing shape of a multi-worker server. Assertions target invariants
// that survive any interleaving: integer totals, ring accounting, and
// snapshot consistency under concurrent mutation.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "util/sim_clock.h"

namespace svqa::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 4000;

TEST(ObsStressTest, ConcurrentCountersSumExactly) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Registration races on first use; the handles must converge to
      // one metric per name.
      Counter* hits = reg.GetCounter("svqa.stress.hits");
      Gauge* depth = reg.GetGauge("svqa.stress.depth");
      Histogram* lat = reg.GetHistogram("svqa.stress.lat", {10, 100, 1000});
      for (int i = 0; i < kOpsPerThread; ++i) {
        hits->Incr();
        depth->Add(i % 2 == 0 ? 1 : -1);
        lat->Record(static_cast<uint64_t>(i) % 1500);
      }
    });
  }
  for (auto& th : threads) th.join();

  const uint64_t total = static_cast<uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(reg.GetCounter("svqa.stress.hits")->Value(), total);
  EXPECT_EQ(reg.GetGauge("svqa.stress.depth")->Value(), 0);
  Histogram* lat = reg.GetHistogram("svqa.stress.lat", {10, 100, 1000});
  EXPECT_EQ(lat->Count(), total);
  uint64_t bucket_sum = 0;
  for (uint64_t b : lat->BucketCounts()) bucket_sum += b;
  EXPECT_EQ(bucket_sum, total);
}

TEST(ObsStressTest, SnapshotsRaceWithWritersSafely) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("svqa.stress.c");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads - 1; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kOpsPerThread; ++i) c->Incr();
    });
  }
  // One reader snapshots continuously while the writers run; every
  // observed value is a valid partial sum.
  threads.emplace_back([&reg] {
    uint64_t last = 0;
    for (int i = 0; i < 200; ++i) {
      const std::string json = reg.ToJson();
      EXPECT_NE(json.find("svqa.stress.c"), std::string::npos);
      const uint64_t now = reg.GetCounter("svqa.stress.c")->Value();
      EXPECT_GE(now, last);  // counters are monotone
      last = now;
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(),
            static_cast<uint64_t>(kThreads - 1) * kOpsPerThread);
}

TEST(ObsStressTest, SharedDomainWithPerWorkerTracers) {
  // One Observability domain shared by 8 workers, each tracing its own
  // queries into its own lane — the server's sharing shape. The flight
  // recorder's totals and the shared counters must account every op.
  ObsOptions opts;
  opts.enabled = true;
  opts.ring_capacity = 64;
  Observability obs(opts, /*num_lanes=*/kThreads);

  constexpr int kQueriesPerWorker = 300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&obs, t] {
      for (int q = 0; q < kQueriesPerWorker; ++q) {
        const uint64_t id = static_cast<uint64_t>(t) * kQueriesPerWorker + q;
        SimClock clock;
        Tracer tracer(id);
        Scope scope = obs.MakeScope(&tracer, static_cast<uint32_t>(t), id);
        {
          Span span(&scope, &clock, "stress.query");
          clock.ChargeMicros(1.0);
          CountFault(&scope, static_cast<FaultSite>(0));
          scope.metrics->exec_attempts->Incr();
        }
        // Each query's trace is private to its worker and closed here.
        ASSERT_EQ(tracer.spans().size(), 1u);
      }
    });
  }
  for (auto& th : threads) th.join();

  const uint64_t total =
      static_cast<uint64_t>(kThreads) * kQueriesPerWorker;
  EXPECT_EQ(obs.stack()->exec_attempts->Value(), total);
  EXPECT_EQ(obs.stack()->fault_injected[0]->Value(), total);
  // Every span also landed in the recorder; each lane kept its newest
  // ring_capacity records.
  EXPECT_EQ(obs.flight()->TotalRecorded(), total);
  EXPECT_EQ(obs.flight()->SnapshotAll().size(),
            static_cast<std::size_t>(kThreads) * opts.ring_capacity);
}

}  // namespace
}  // namespace svqa::obs
