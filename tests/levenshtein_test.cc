#include "text/levenshtein.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "util/rng.h"

namespace svqa::text {
namespace {

TEST(LevenshteinTest, IdenticalStrings) {
  EXPECT_EQ(LevenshteinDistance("dog", "dog"), 0u);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("dog", "dog"), 0.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("dog", "dog"), 1.0);
}

TEST(LevenshteinTest, EmptyStrings) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("a", ""), 1.0);
}

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("dog", "dogs"), 1u);
  EXPECT_EQ(LevenshteinDistance("cat", "act"), 2u);
}

TEST(LevenshteinTest, Symmetry) {
  EXPECT_EQ(LevenshteinDistance("wizard", "lizard"),
            LevenshteinDistance("lizard", "wizard"));
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("robe", "rope"),
                   NormalizedLevenshtein("rope", "robe"));
}

TEST(LevenshteinTest, NormalizedIsInUnitInterval) {
  const char* words[] = {"a", "dog", "wizard", "girlfriend", ""};
  for (const char* a : words) {
    for (const char* b : words) {
      const double d = NormalizedLevenshtein(a, b);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

// Property sweep: the triangle inequality holds for the raw distance on
// random short strings.
class LevenshteinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LevenshteinPropertyTest, TriangleInequality) {
  svqa::Rng rng(GetParam());
  auto random_word = [&rng]() {
    std::string w;
    const int len = static_cast<int>(rng.Below(8));
    for (int i = 0; i < len; ++i) {
      w.push_back(static_cast<char>('a' + rng.Below(4)));
    }
    return w;
  };
  for (int trial = 0; trial < 50; ++trial) {
    const std::string a = random_word(), b = random_word(),
                      c = random_word();
    EXPECT_LE(LevenshteinDistance(a, c),
              LevenshteinDistance(a, b) + LevenshteinDistance(b, c))
        << "a=" << a << " b=" << b << " c=" << c;
  }
}

TEST_P(LevenshteinPropertyTest, DistanceBounds) {
  svqa::Rng rng(GetParam() ^ 0xabcd);
  auto random_word = [&rng]() {
    std::string w;
    const int len = static_cast<int>(rng.Below(10));
    for (int i = 0; i < len; ++i) {
      w.push_back(static_cast<char>('a' + rng.Below(6)));
    }
    return w;
  };
  for (int trial = 0; trial < 50; ++trial) {
    const std::string a = random_word(), b = random_word();
    const std::size_t d = LevenshteinDistance(a, b);
    // Lower bound: length difference; upper bound: longer length.
    const std::size_t lo =
        a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
    EXPECT_GE(d, lo);
    EXPECT_LE(d, std::max(a.size(), b.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace svqa::text
