// Unit tests for the observability subsystem: registry semantics and
// deterministic snapshots, histogram bucket boundaries, the virtual-time
// tracer's byte-stable output, flight-recorder ring wraparound, and the
// disabled-mode contract (null scopes make every hook a no-op).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "util/sim_clock.h"

namespace svqa::obs {
namespace {

// -- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistryTest, RegisterOnFirstUseReturnsStableHandle) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("svqa.test.hits");
  ASSERT_NE(a, nullptr);
  a->Incr(3);
  // Second lookup is the same metric, not a fresh zero.
  Counter* b = reg.GetCounter("svqa.test.hits");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->Value(), 3u);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("svqa.test.x"), nullptr);
  EXPECT_EQ(reg.GetGauge("svqa.test.x"), nullptr);
  EXPECT_EQ(reg.GetHistogram("svqa.test.x", {1, 2}), nullptr);

  ASSERT_NE(reg.GetGauge("svqa.test.g"), nullptr);
  EXPECT_EQ(reg.GetCounter("svqa.test.g"), nullptr);

  ASSERT_NE(reg.GetHistogram("svqa.test.h", {1, 2}), nullptr);
  EXPECT_EQ(reg.GetCounter("svqa.test.h"), nullptr);
  EXPECT_EQ(reg.GetGauge("svqa.test.h"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotIsNameSortedRegardlessOfRegistration) {
  MetricsRegistry reg;
  reg.GetCounter("svqa.z.last")->Incr();
  reg.GetGauge("svqa.a.first")->Set(-7);
  reg.GetCounter("svqa.m.middle")->Incr(2);

  const std::vector<MetricSample> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "svqa.a.first");
  EXPECT_EQ(snap[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[0].gauge, -7);
  EXPECT_EQ(snap[1].name, "svqa.m.middle");
  EXPECT_EQ(snap[1].counter, 2u);
  EXPECT_EQ(snap[2].name, "svqa.z.last");
  EXPECT_EQ(snap[2].counter, 1u);
}

TEST(MetricsRegistryTest, ToJsonIsByteStable) {
  MetricsRegistry reg;
  reg.GetCounter("svqa.b.count")->Incr(5);
  reg.GetGauge("svqa.a.level")->Set(-2);
  Histogram* h = reg.GetHistogram("svqa.c.lat", {10, 100});
  h->Record(4);
  h->Record(100);
  h->Record(101);

  const std::string expected =
      "{\n"
      "  \"svqa.a.level\": -2,\n"
      "  \"svqa.b.count\": 5,\n"
      "  \"svqa.c.lat\": {\"count\": 3, \"sum\": 205, "
      "\"buckets\": [[10, 1], [100, 1], [\"inf\", 1]]}\n"
      "}\n";
  EXPECT_EQ(reg.ToJson(), expected);
  // Rendering is a pure function of the snapshot: ask again, same bytes.
  EXPECT_EQ(reg.ToJson(), expected);
  EXPECT_EQ(SamplesToJson(reg.Snapshot()), expected);
}

TEST(CounterTest, ShardedIncrementsSum) {
  Counter c;
  for (int i = 0; i < 1000; ++i) c.Incr();
  c.Incr(24);
  EXPECT_EQ(c.Value(), 1024u);
}

TEST(GaugeTest, SetAndAddAreSigned) {
  Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.Value(), -15);
}

TEST(HistogramTest, UpperBoundsAreInclusive) {
  Histogram h({10, 100});
  h.Record(0);
  h.Record(10);   // lands in [.., 10], not the next bucket
  h.Record(11);
  h.Record(100);  // lands in (10, 100]
  h.Record(101);  // overflow bucket
  const std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 222u);
}

// -- Tracer ------------------------------------------------------------------

TEST(TracerTest, NestingProducesTheTree) {
  SimClock clock;
  Tracer tracer(/*query_id=*/42);
  uint32_t root = tracer.BeginSpan("exec.query", clock);
  clock.ChargeMicros(2.0);
  uint32_t child = tracer.BeginSpan("exec.vertex", clock);
  clock.ChargeMicros(3.5);
  tracer.EndSpan(child, clock);
  tracer.Event("exec.cache_hit", clock);
  tracer.EndSpan(root, clock);

  const std::string expected =
      "trace query=42 spans=3\n"
      "exec.query start=0.000 dur=5.500\n"
      "  exec.vertex start=2.000 dur=3.500\n"
      "  exec.cache_hit start=5.500 dur=0.000\n";
  EXPECT_EQ(tracer.TreeString(), expected);
}

TEST(TracerTest, SpanAtRecordsBeforeTheClockOrigin) {
  // Queue wait precedes the request's clock origin; it is recorded over
  // [-wait, 0] so the execution subtree still starts at virtual t=0.
  SimClock clock;
  Tracer tracer(7);
  tracer.SpanAt("serve.queue_wait", -125.0, 0.0);
  uint32_t root = tracer.BeginSpan("serve.parse", clock);
  clock.ChargeMicros(1.0);
  tracer.EndSpan(root, clock);

  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].parent, 0u);  // root-level, not nested
  EXPECT_EQ(tracer.TreeString(),
            "trace query=7 spans=2\n"
            "serve.queue_wait start=-125.000 dur=125.000\n"
            "serve.parse start=0.000 dur=1.000\n");
}

TEST(TracerTest, ToJsonEmitsChromeCompleteEvents) {
  SimClock clock;
  Tracer tracer(9);
  uint32_t id = tracer.BeginSpan("core.parse", clock);
  clock.ChargeMicros(1.5);
  tracer.EndSpan(id, clock);

  EXPECT_EQ(tracer.ToJson(),
            "[\n"
            "{\"name\": \"core.parse\", \"ph\": \"X\", \"pid\": 0, "
            "\"tid\": 9, \"ts\": 0.000, \"dur\": 1.500, "
            "\"args\": {\"id\": 1, \"parent\": 0}}\n"
            "]\n");
}

TEST(TracerTest, ToJsonEscapesSpanNames) {
  // Span names are compile-time literals in the stack, but the emitter
  // must still produce valid JSON for any name a tool might feed in.
  SimClock clock;
  Tracer tracer(1);
  uint32_t id = tracer.BeginSpan("weird \"name\"\n\\t\x01", clock);
  tracer.EndSpan(id, clock);
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("weird \\\"name\\\"\\n\\\\t\\u0001"), std::string::npos);
}

TEST(MetricsRegistryTest, SamplesToJsonEscapesMetricNames) {
  MetricsRegistry reg;
  reg.GetCounter("svqa.\"quoted\"\\path")->Incr();
  const std::string json = reg.ToJson();
  EXPECT_EQ(json,
            "{\n"
            "  \"svqa.\\\"quoted\\\"\\\\path\": 1\n"
            "}\n");
}

TEST(TracerTest, OutOfOrderEndUnwindsWithoutCorruptingParentage) {
  SimClock clock;
  Tracer tracer;
  uint32_t outer = tracer.BeginSpan("outer", clock);
  tracer.BeginSpan("inner", clock);
  // Closing the outer span while the inner is still open unwinds past
  // the inner; the next span is a root, not a child of a closed span.
  tracer.EndSpan(outer, clock);
  tracer.BeginSpan("next", clock);
  ASSERT_EQ(tracer.spans().size(), 3u);
  EXPECT_EQ(tracer.spans()[2].parent, 0u);
}

TEST(SpanTest, RaiiRecordsIntoTracerAndFlight) {
  SimClock clock;
  Tracer tracer(3);
  FlightRecorder flight(/*num_lanes=*/2, /*capacity=*/4);
  Scope scope;
  scope.tracer = &tracer;
  scope.flight = &flight;
  scope.flight_lane = 1;
  scope.query_id = 3;
  {
    Span span(&scope, &clock, "exec.attempt");
    clock.ChargeMicros(2.0);
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].end_micros, 2.0);
  const std::vector<FlightRecord> records = flight.SnapshotAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].query_id, 3u);
  EXPECT_STREQ(records[0].name, "exec.attempt");
  EXPECT_EQ(records[0].dur_micros, 2.0);
}

TEST(SpanTest, NullScopeOrClockIsANoOp) {
  SimClock clock;
  { Span span(nullptr, &clock, "a"); }
  Scope empty;  // no tracer, no flight
  { Span span(&empty, &clock, "b"); }
  { Span span(&empty, nullptr, "c"); }
  EXPECT_EQ(clock.ElapsedMicros(), 0.0);  // tracing never charges time
}

// -- FlightRecorder ----------------------------------------------------------

TEST(FlightRecorderTest, RingWrapsKeepingNewestOldestFirst) {
  FlightRecorder flight(/*num_lanes=*/1, /*capacity=*/3);
  for (uint64_t q = 1; q <= 5; ++q) {
    FlightRecord rec;
    rec.query_id = q;
    rec.name = "span";
    flight.Record(0, rec);
  }
  // 5 recorded, 3 live: the two oldest were evicted and the snapshot
  // walks oldest-first.
  EXPECT_EQ(flight.TotalRecorded(), 5u);
  const std::vector<FlightRecord> records = flight.SnapshotAll();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].query_id, 3u);
  EXPECT_EQ(records[1].query_id, 4u);
  EXPECT_EQ(records[2].query_id, 5u);
}

TEST(FlightRecorderTest, LanesSnapshotInIndexOrder) {
  FlightRecorder flight(/*num_lanes=*/2, /*capacity=*/4);
  FlightRecord rec;
  rec.query_id = 20;
  flight.Record(1, rec);
  rec.query_id = 10;
  flight.Record(0, rec);
  const std::vector<FlightRecord> records = flight.SnapshotAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].query_id, 10u);  // lane 0 first
  EXPECT_EQ(records[1].query_id, 20u);
}

TEST(FlightRecorderTest, OutOfRangeLaneIsClamped) {
  FlightRecorder flight(/*num_lanes=*/2, /*capacity=*/2);
  FlightRecord rec;
  rec.query_id = 1;
  flight.Record(99, rec);  // clamps into range instead of crashing
  EXPECT_EQ(flight.TotalRecorded(), 1u);
}

TEST(FlightRecorderTest, DumpNamesLanesAndRecords) {
  FlightRecorder flight(/*num_lanes=*/1, /*capacity=*/2);
  FlightRecord rec;
  rec.query_id = 4;
  rec.name = "serve.publish";
  rec.start_micros = 1.0;
  rec.dur_micros = 2.5;
  flight.Record(0, rec);
  EXPECT_EQ(flight.Dump(),
            "flight recorder: 1 lane(s) x 2 record(s)\n"
            "lane 0 (1 live, 1 total):\n"
            "  q4 serve.publish start=1.000 dur=2.500\n");
}

// -- Observability / options -------------------------------------------------

TEST(ObsOptionsTest, ValidationIsUnconditional) {
  // The flight-recorder ring is sized at construction, so a bad
  // capacity is rejected even while disabled — flipping `enabled` later
  // must not surface a latent misconfiguration.
  ObsOptions opts;
  opts.enabled = false;
  opts.ring_capacity = 0;
  const Status st = opts.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("ring_capacity"), std::string::npos);
}

TEST(ObsOptionsTest, RejectsBadRingCapacity) {
  ObsOptions opts;
  opts.enabled = true;
  opts.ring_capacity = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts.ring_capacity = (1u << 20) + 1;
  EXPECT_FALSE(opts.Validate().ok());
  opts.ring_capacity = 256;
  EXPECT_TRUE(opts.Validate().ok());
}

TEST(ObsOptionsTest, RejectsAbsurdTraceSampleModulus) {
  ObsOptions opts;
  opts.enabled = true;
  opts.trace_sample_n = (1u << 30) + 1;
  const Status st = opts.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("trace_sample_n"), std::string::npos);
  opts.trace_sample_n = 0;  // 0 = tracing disabled, always fine
  EXPECT_TRUE(opts.Validate().ok());
  opts.trace_sample_n = 1u << 30;
  EXPECT_TRUE(opts.Validate().ok());
}

TEST(ObservabilityTest, StackMetricsAreAllPreRegistered) {
  ObsOptions opts;
  opts.enabled = true;
  Observability obs(opts, /*num_lanes=*/2);
  const StackMetrics* m = obs.stack();
  ASSERT_NE(m, nullptr);
  for (int s = 0; s < kNumFaultSites; ++s) {
    EXPECT_NE(m->fault_injected[s], nullptr);
  }
  EXPECT_NE(m->exec_attempts, nullptr);
  EXPECT_NE(m->serve_requests, nullptr);
  EXPECT_NE(m->serve_recovery_rung, nullptr);
  for (int c = 0; c < kNumPriorityClasses; ++c) {
    EXPECT_NE(m->serve_sheds[c], nullptr);
    EXPECT_NE(m->serve_queue_wait_micros[c], nullptr);
  }
  for (int r = 0; r < kNumRecoveryRungs; ++r) {
    EXPECT_NE(m->recovery_rungs[r], nullptr);
  }
  EXPECT_NE(m->wal_quarantined, nullptr);
}

TEST(ObservabilityTest, TraceSamplingFollowsTheModulus) {
  ObsOptions opts;
  opts.enabled = true;
  opts.trace_sample_n = 4;
  Observability obs(opts);
  EXPECT_TRUE(obs.ShouldTrace(0));
  EXPECT_FALSE(obs.ShouldTrace(1));
  EXPECT_FALSE(obs.ShouldTrace(3));
  EXPECT_TRUE(obs.ShouldTrace(8));

  opts.trace_sample_n = 0;  // metrics + flight only, no tracing
  Observability untraced(opts);
  EXPECT_FALSE(untraced.ShouldTrace(0));
}

TEST(ObservabilityTest, DisabledScopeIsEmptyAndHooksNoOp) {
  ObsOptions opts;
  opts.enabled = false;
  Observability obs(opts);
  EXPECT_FALSE(obs.enabled());
  EXPECT_FALSE(obs.ShouldTrace(0));

  Tracer tracer;
  Scope scope = obs.MakeScope(&tracer, /*lane=*/0, /*query_id=*/1);
  EXPECT_EQ(scope.tracer, nullptr);
  EXPECT_EQ(scope.metrics, nullptr);
  EXPECT_EQ(scope.flight, nullptr);
  EXPECT_EQ(MetricsOf(&scope), nullptr);
  EXPECT_EQ(MetricsOf(nullptr), nullptr);

  // The per-site hooks run through the same null checks the stack uses.
  CountFault(&scope, static_cast<FaultSite>(0));
  CountFault(nullptr, static_cast<FaultSite>(0));
  SimClock clock;
  { Span span(&scope, &clock, "noop"); }
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(ObservabilityTest, CountFaultIncrementsThePerSiteCounter) {
  ObsOptions opts;
  opts.enabled = true;
  Observability obs(opts);
  Scope scope = obs.MakeScope(nullptr, 0, 0);
  CountFault(&scope, static_cast<FaultSite>(0));
  CountFault(&scope, static_cast<FaultSite>(0));
  EXPECT_EQ(obs.stack()->fault_injected[0]->Value(), 2u);
}

}  // namespace
}  // namespace svqa::obs
