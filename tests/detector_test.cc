#include "vision/detector.h"

#include <gtest/gtest.h>

namespace svqa::vision {
namespace {

Scene MakeScene(int id = 1) {
  Scene scene;
  scene.id = id;
  SceneObject dog;
  dog.category = "dog";
  dog.box = {0.1f, 0.1f, 0.2f, 0.2f};
  SceneObject person;
  person.category = "wizard";
  person.instance = "harry-potter";
  person.box = {0.5f, 0.4f, 0.2f, 0.4f};
  scene.objects = {dog, person};
  scene.relations = {SceneRelation{1, 0, "watch"}};
  return scene;
}

TEST(SceneTest, PredicateBetween) {
  const Scene scene = MakeScene();
  EXPECT_EQ(scene.PredicateBetween(1, 0), "watch");
  EXPECT_EQ(scene.PredicateBetween(0, 1), "");  // direction matters
  EXPECT_EQ(scene.PredicateBetween(0, 0), "");
}

TEST(DetectorTest, NoiselessDetectionIsFaithful) {
  DetectorOptions opts;
  opts.miss_rate = 0;
  opts.misclassify_rate = 0;
  opts.identity_loss_rate = 0;
  opts.box_jitter = 0;
  SimulatedDetector detector(opts);
  const Scene scene = MakeScene();
  const auto dets = detector.Detect(scene);
  ASSERT_EQ(dets.size(), 2u);
  EXPECT_EQ(dets[0].label, "dog");
  EXPECT_EQ(dets[0].truth_index, 0);
  EXPECT_EQ(dets[1].label, "harry-potter");  // identity retained
  EXPECT_EQ(dets[1].truth_index, 1);
  EXPECT_EQ(dets[0].box, scene.objects[0].box);
}

TEST(DetectorTest, Deterministic) {
  SimulatedDetector a, b;
  const Scene scene = MakeScene();
  const auto da = a.Detect(scene);
  const auto db = b.Detect(scene);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].label, db[i].label);
    EXPECT_EQ(da[i].box, db[i].box);
  }
}

TEST(DetectorTest, SeedChangesNoise) {
  DetectorOptions o1;
  o1.seed = 1;
  DetectorOptions o2;
  o2.seed = 2;
  const Scene scene = MakeScene();
  EXPECT_NE(SimulatedDetector(o1).Detect(scene)[0].box,
            SimulatedDetector(o2).Detect(scene)[0].box);
}

TEST(DetectorTest, MissRateDropsObjects) {
  DetectorOptions opts;
  opts.miss_rate = 1.0;
  SimulatedDetector detector(opts);
  EXPECT_TRUE(detector.Detect(MakeScene()).empty());
}

TEST(DetectorTest, MisclassificationUsesConfusionTable) {
  DetectorOptions opts;
  opts.miss_rate = 0;
  opts.misclassify_rate = 1.0;
  opts.identity_loss_rate = 0;
  SimulatedDetector detector(opts);
  const auto dets = detector.Detect(MakeScene());
  ASSERT_EQ(dets.size(), 2u);
  EXPECT_EQ(dets[0].label, "cat");  // dog -> cat in the table
}

TEST(DetectorTest, IdentityLossFallsBackToCategory) {
  DetectorOptions opts;
  opts.miss_rate = 0;
  opts.misclassify_rate = 0;
  opts.identity_loss_rate = 1.0;
  SimulatedDetector detector(opts);
  const auto dets = detector.Detect(MakeScene());
  ASSERT_EQ(dets.size(), 2u);
  EXPECT_EQ(dets[1].label, "wizard");  // name lost, category kept
}

TEST(DetectorTest, MissRateIsApproximatelyHonored) {
  DetectorOptions opts;
  opts.miss_rate = 0.3;
  SimulatedDetector detector(opts);
  int total = 0;
  for (int id = 0; id < 2000; ++id) {
    total += static_cast<int>(detector.Detect(MakeScene(id)).size());
  }
  EXPECT_NEAR(static_cast<double>(total) / (2000 * 2), 0.7, 0.03);
}

TEST(DetectorTest, BoxesStayInUnitSquare) {
  DetectorOptions opts;
  opts.box_jitter = 0.5;
  SimulatedDetector detector(opts);
  for (int id = 0; id < 100; ++id) {
    for (const auto& d : detector.Detect(MakeScene(id))) {
      for (float c : d.box) {
        EXPECT_GE(c, 0.0f);
        EXPECT_LE(c, 1.0f);
      }
    }
  }
}

TEST(FeatureTest, DeterministicPerCategoryInstance) {
  const auto a = MakeFeature("dog", "", 1);
  const auto b = MakeFeature("dog", "", 1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, MakeFeature("cat", "", 1));
  EXPECT_NE(a, MakeFeature("dog", "rex", 1));
  EXPECT_NE(a, MakeFeature("dog", "", 2));
}

}  // namespace
}  // namespace svqa::vision
