int Unused() { return 0; }
