#ifndef FIXTURE_GUARDED_MUTEX_H_
#define FIXTURE_GUARDED_MUTEX_H_

namespace fixture {

class SharedCounter {
 public:
  void Add(int delta);

 private:
  Mutex mu_;
  int value_ SVQA_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

#endif  // FIXTURE_GUARDED_MUTEX_H_
