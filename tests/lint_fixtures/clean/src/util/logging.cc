// The sanctioned sink: src/util/logging.* owns the library's one
// serialized stderr write, so the raw-logging rule exempts it.
#include <cstdio>

namespace fixture {

void Emit(const char* msg) {
  std::fputs(msg, stderr);
  std::fputc('\n', stderr);
}

}  // namespace fixture
