// svqa-lint: allow-file(virtual-time)
#include <chrono>

// svqa-lint: allow(layer-dag)
#include "serve/server.h"

namespace fixture {

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// svqa-lint: allow(nodiscard-type)
class Result {
 public:
  int v = 0;
};

int Get(const Result& r) {
  // svqa-lint: allow(unchecked-result)
  return r.ValueOrDie();
}

}  // namespace fixture
