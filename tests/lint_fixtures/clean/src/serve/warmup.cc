// Frozen-mutation suppression with rationale: construction of a graph
// that is still private to its builder is legitimate in serve — no
// reader can observe it until Publish() swaps the snapshot in.

namespace fixture {

void Seed(Graph& g) {
  // Pre-publish construction; the graph is not yet visible to readers.
  // svqa-lint: allow(frozen-mutation)
  g.AddVertex("root", "concept");
}

int Plain() { return AddVertex(1); }  // free function: some other API

}  // namespace fixture
