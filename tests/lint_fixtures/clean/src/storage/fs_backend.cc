// Raw file I/O is legal inside src/storage: the StorageEnv backends own
// the fopen/fsync/rename durability dance every other layer inherits.
// Reads (ifstream) are legal everywhere.
#include <cstdio>
#include <fstream>

namespace fixture {

void TouchRaw(const char* path) {
  std::ofstream out(path);
  std::FILE* f = std::fopen(path, "rb");
  if (f != nullptr) {
    (void)std::fclose(f);
  }
  std::ifstream in(path);
  (void)out;
  (void)in;
}

}  // namespace fixture
