#ifndef FIXTURE_UNGUARDED_MUTEX_H_
#define FIXTURE_UNGUARDED_MUTEX_H_

namespace fixture {

class SharedCounter {
 public:
  void Add(int delta);

 private:
  Mutex mu_;
  int value_ = 0;
};

}  // namespace fixture

#endif  // FIXTURE_UNGUARDED_MUTEX_H_
