namespace fixture {

class Result {
 public:
  int v = 0;
};

int Get(const Result& r) {
  return r.ValueOrDie();
}

}  // namespace fixture
