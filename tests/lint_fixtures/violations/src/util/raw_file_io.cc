// Seeded durable-io violations: write-capable raw file APIs outside
// src/storage (writes must route through storage::StorageEnv).
#include <cstdio>
#include <fstream>

namespace fixture {

void WriteLog(const char* path) {
  std::ofstream out(path);
  std::FILE* f = std::fopen(path, "w");
  if (f != nullptr) {
    (void)std::fclose(f);
  }
  (void)out;
}

}  // namespace fixture
