namespace fixture {

// svqa-lint: allow(no-such-rule)
int F() { return 0; }

}  // namespace fixture
