#include <chrono>
#include <ctime>

namespace fixture {

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long WallSeconds() { return time(nullptr); }

}  // namespace fixture
