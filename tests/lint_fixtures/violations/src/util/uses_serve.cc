#include "serve/server.h"

int Connect() { return 1; }
