// Seeded raw-logging violations: console writes outside util::logging
// (messages must route through SVQA_LOG so they honor the process log
// level and stay line-atomic under concurrent workers).
#include <cstdio>
#include <iostream>

namespace fixture {

void Report(int n) {
  std::cerr << "n=" << n << "\n";
  std::printf("n=%d\n", n);
  std::fprintf(stderr, "n=%d\n", n);
}

}  // namespace fixture
