// Seeded frozen-mutation violations: the request path must not call
// the mutating Graph API.
#include "util/status.h"

namespace fixture {

void Rebuild(Graph& g, Graph* h) {
  g.AddVertex("a", "thing");
  (void)h->AddEdge(0, 1, "is-a");
}

}  // namespace fixture
