#include "text/embedding.h"

#include <gtest/gtest.h>

#include <cmath>

namespace svqa::text {
namespace {

class EmbeddingTest : public ::testing::Test {
 protected:
  EmbeddingModel model_{SynonymLexicon::Default(), /*seed=*/42};
};

TEST_F(EmbeddingTest, VectorsAreUnitNorm) {
  for (const char* w : {"dog", "girlfriend", "zebra", "xqzy"}) {
    const Embedding v = model_.Embed(w);
    double norm = 0;
    for (float x : v) norm += static_cast<double>(x) * x;
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-5) << w;
  }
}

TEST_F(EmbeddingTest, Deterministic) {
  EmbeddingModel other(SynonymLexicon::Default(), 42);
  EXPECT_EQ(model_.Embed("wizard"), other.Embed("wizard"));
}

TEST_F(EmbeddingTest, SeedChangesVectors) {
  EmbeddingModel other(SynonymLexicon::Default(), 43);
  EXPECT_NE(model_.Embed("wizard"), other.Embed("wizard"));
}

TEST_F(EmbeddingTest, SelfSimilarityIsOne) {
  EXPECT_NEAR(model_.Similarity("dog", "dog"), 1.0, 1e-6);
}

TEST_F(EmbeddingTest, SynonymsScoreHigh) {
  EXPECT_GT(model_.Similarity("dog", "puppy"), 0.6);
  EXPECT_GT(model_.Similarity("girlfriend", "girlfriend-of"), 0.6);
  EXPECT_GT(model_.Similarity("worn", "wear"), 0.6);
}

TEST_F(EmbeddingTest, HypernymsScoreModerately) {
  const double s = model_.Similarity("dog", "animal");
  EXPECT_GT(s, 0.15);
  EXPECT_LT(s, 0.9);
}

TEST_F(EmbeddingTest, UnrelatedWordsScoreLow) {
  EXPECT_LT(model_.Similarity("frisbee", "girlfriend"), 0.4);
  EXPECT_LT(model_.Similarity("xqzy", "wvut"), 0.4);
}

TEST_F(EmbeddingTest, SynonymBeatsUnrelated) {
  EXPECT_GT(model_.Similarity("dog", "puppy"),
            model_.Similarity("dog", "umbrella"));
}

TEST_F(EmbeddingTest, MostSimilarPicksSynonym) {
  const std::vector<std::string> candidates = {"on", "near",
                                               "girlfriend-of", "wear"};
  auto [idx, score] = model_.MostSimilar("girlfriend", candidates);
  ASSERT_GE(idx, 0);
  EXPECT_EQ(candidates[static_cast<std::size_t>(idx)], "girlfriend-of");
  EXPECT_GT(score, 0.5);
}

TEST_F(EmbeddingTest, MostSimilarEmptyCandidates) {
  auto [idx, score] = model_.MostSimilar("dog", {});
  EXPECT_EQ(idx, -1);
  EXPECT_DOUBLE_EQ(score, 0.0);
}

TEST_F(EmbeddingTest, PhraseEmbeddingAveragesWords) {
  // A phrase containing a word is closer to that word than an unrelated
  // one.
  EXPECT_GT(model_.Similarity("kind of clothes", "clothes"),
            model_.Similarity("kind of clothes", "bicycle"));
}

TEST_F(EmbeddingTest, EmptyPhraseIsZeroVector) {
  const Embedding v = model_.EmbedPhrase("");
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(CosineTest, ZeroVectorScoresZero) {
  Embedding zero{};
  Embedding one{};
  one[0] = 1.0f;
  EXPECT_DOUBLE_EQ(CosineSimilarity(zero, one), 0.0);
}

TEST(CosineTest, OppositeVectorsScoreMinusOne) {
  Embedding a{}, b{};
  a[3] = 1.0f;
  b[3] = -2.0f;
  EXPECT_NEAR(CosineSimilarity(a, b), -1.0, 1e-9);
}

}  // namespace
}  // namespace svqa::text
