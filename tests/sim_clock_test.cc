#include "util/sim_clock.h"

#include <gtest/gtest.h>

namespace svqa {
namespace {

TEST(SimClockTest, StartsAtZero) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.ElapsedMicros(), 0);
  EXPECT_DOUBLE_EQ(clock.OpCount(CostKind::kVertexCompare), 0);
}

TEST(SimClockTest, ChargeAccumulatesCostAndCount) {
  SimClock clock;
  clock.Charge(CostKind::kVertexCompare, 10);
  const double unit =
      clock.model().MicrosFor(CostKind::kVertexCompare, 1.0);
  EXPECT_DOUBLE_EQ(clock.ElapsedMicros(), 10 * unit);
  EXPECT_DOUBLE_EQ(clock.OpCount(CostKind::kVertexCompare), 10);
}

TEST(SimClockTest, ChargeMicrosIsDirect) {
  SimClock clock;
  clock.ChargeMicros(1500);
  EXPECT_DOUBLE_EQ(clock.ElapsedMillis(), 1.5);
  EXPECT_DOUBLE_EQ(clock.ElapsedSeconds(), 0.0015);
}

TEST(SimClockTest, ResetClearsEverything) {
  SimClock clock;
  clock.Charge(CostKind::kLevenshtein, 5);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.ElapsedMicros(), 0);
  EXPECT_DOUBLE_EQ(clock.OpCount(CostKind::kLevenshtein), 0);
}

TEST(SimClockTest, MergeSerialAddsTimes) {
  SimClock a, b;
  a.ChargeMicros(100);
  b.ChargeMicros(50);
  b.Charge(CostKind::kCacheProbe, 3);
  a.MergeSerial(b);
  EXPECT_DOUBLE_EQ(
      a.ElapsedMicros(),
      150 + b.model().MicrosFor(CostKind::kCacheProbe, 3.0));
  EXPECT_DOUBLE_EQ(a.OpCount(CostKind::kCacheProbe), 3);
}

TEST(SimClockTest, MergeParallelTakesMaxTimeButAddsCounts) {
  SimClock a, b;
  a.ChargeMicros(100);
  b.ChargeMicros(250);
  a.Charge(CostKind::kEdgeTraverse, 2);
  b.Charge(CostKind::kEdgeTraverse, 5);
  const double a_total = a.ElapsedMicros();
  const double b_total = b.ElapsedMicros();
  a.MergeParallel(b);
  EXPECT_DOUBLE_EQ(a.ElapsedMicros(), std::max(a_total, b_total));
  EXPECT_DOUBLE_EQ(a.OpCount(CostKind::kEdgeTraverse), 7);
}

TEST(SimClockTest, MergeParallelKeepsOwnTimeWhenLarger) {
  SimClock a, b;
  a.ChargeMicros(500);
  b.ChargeMicros(10);
  a.MergeParallel(b);
  EXPECT_DOUBLE_EQ(a.ElapsedMicros(), 500);
}

TEST(SimClockTest, SummaryMentionsChargedKinds) {
  SimClock clock;
  clock.Charge(CostKind::kModelLoad);
  const std::string summary = clock.Summary();
  EXPECT_NE(summary.find("model-load"), std::string::npos);
  EXPECT_EQ(summary.find("levenshtein"), std::string::npos);
}

TEST(CostModelTest, DefaultsArePositive) {
  CostModel model;
  for (int i = 0; i < static_cast<int>(CostKind::kNumKinds); ++i) {
    EXPECT_GT(model.MicrosFor(static_cast<CostKind>(i)), 0.0);
  }
}

TEST(CostModelTest, NeuralInferenceDwarfsGraphOps) {
  // The central latency asymmetry of the paper: per-image inference is
  // orders of magnitude more expensive than a graph primitive.
  CostModel model;
  EXPECT_GT(model.MicrosFor(CostKind::kNeuralImageInference),
            1000 * model.MicrosFor(CostKind::kVertexCompare));
}

}  // namespace
}  // namespace svqa
