#include "query/query_graph.h"

#include <gtest/gtest.h>

#include "query/spoc.h"

namespace svqa::query {
namespace {

nlp::SpocElement El(std::string head, bool variable = false) {
  nlp::SpocElement e;
  e.text = head;
  e.head = std::move(head);
  e.is_variable = variable;
  return e;
}

nlp::Spoc MakeSpoc(const std::string& s, const std::string& p,
                   const std::string& o, bool object_var = false) {
  nlp::Spoc spoc;
  spoc.subject = El(s);
  spoc.predicate = p;
  spoc.object = El(o, object_var);
  return spoc;
}

text::SynonymLexicon Lex() { return text::SynonymLexicon::Default(); }

TEST(DependencyKindTest, Names) {
  EXPECT_EQ(DependencyKindName(DependencyKind::kS2S), "S2S");
  EXPECT_EQ(DependencyKindName(DependencyKind::kS2O), "S2O");
  EXPECT_EQ(DependencyKindName(DependencyKind::kO2S), "O2S");
  EXPECT_EQ(DependencyKindName(DependencyKind::kO2O), "O2O");
}

TEST(ElementsOverlapTest, SynonymHeadsOverlap) {
  const auto lex = Lex();
  EXPECT_TRUE(ElementsOverlap(El("dog"), El("puppy"), lex));
  EXPECT_TRUE(ElementsOverlap(El("dog"), El("dog"), lex));
  EXPECT_FALSE(ElementsOverlap(El("dog"), El("cat"), lex));
}

TEST(ElementsOverlapTest, VariablesNeverJoin) {
  const auto lex = Lex();
  EXPECT_FALSE(ElementsOverlap(El("dog", true), El("dog"), lex));
  EXPECT_FALSE(ElementsOverlap(El("dog"), El("dog", true), lex));
}

TEST(ElementsOverlapTest, EmptyNeverJoins) {
  const auto lex = Lex();
  EXPECT_FALSE(ElementsOverlap(El(""), El("dog"), lex));
}

TEST(ElementsOverlapTest, OwnersMustAgree) {
  const auto lex = Lex();
  nlp::SpocElement a = El("girlfriend");
  a.owner = "harry potter";
  nlp::SpocElement b = El("girlfriend");
  b.owner = "draco malfoy";
  EXPECT_FALSE(ElementsOverlap(a, b, lex));
  b.owner = "harry potter";
  EXPECT_TRUE(ElementsOverlap(a, b, lex));
  b.owner.clear();  // one-sided owner still matches
  EXPECT_TRUE(ElementsOverlap(a, b, lex));
}

TEST(MatchSpocsTest, PrefersSubjectSubject) {
  const auto lex = Lex();
  const auto consumer = MakeSpoc("wizard", "wear", "robe");
  const auto producer = MakeSpoc("wizard", "hang-out", "person");
  auto kind = MatchSpocs(consumer, producer, lex);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, DependencyKind::kS2S);
}

TEST(MatchSpocsTest, ObjectToSubject) {
  const auto lex = Lex();
  const auto consumer = MakeSpoc("wizard", "hang-out", "person");
  const auto producer = MakeSpoc("person", "hold", "phone");
  auto kind = MatchSpocs(consumer, producer, lex);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, DependencyKind::kO2S);
}

TEST(MatchSpocsTest, SubjectToObject) {
  const auto lex = Lex();
  const auto consumer = MakeSpoc("person", "hold", "phone");
  const auto producer = MakeSpoc("wizard", "hang-out", "person");
  auto kind = MatchSpocs(consumer, producer, lex);
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, DependencyKind::kS2O);
}

TEST(MatchSpocsTest, NoOverlapIsNull) {
  const auto lex = Lex();
  EXPECT_FALSE(MatchSpocs(MakeSpoc("dog", "chase", "cat"),
                          MakeSpoc("person", "hold", "phone"), lex)
                   .has_value());
}

TEST(QueryGraphTest, StartVerticesHaveZeroInDegree) {
  QueryGraph g("q", nlp::QuestionType::kReasoning,
               {MakeSpoc("wizard", "wear", "clothes", true),
                MakeSpoc("wizard", "hang-out", "person"),
                MakeSpoc("person", "hold", "phone")},
               {QueryEdge{1, 0, DependencyKind::kS2S},
                QueryEdge{2, 1, DependencyKind::kO2S}});
  EXPECT_EQ(g.StartVertices(), (std::vector<int>{2}));
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.InDegree(2), 0u);
  EXPECT_EQ(g.EdgesFromProducer(1).size(), 1u);
  EXPECT_EQ(g.EdgesFromProducer(0).size(), 0u);
}

TEST(QueryGraphTest, TopologicalOrderRespectsEdges) {
  QueryGraph g("q", nlp::QuestionType::kReasoning,
               {MakeSpoc("a", "p", "b"), MakeSpoc("c", "p", "d"),
                MakeSpoc("e", "p", "f")},
               {QueryEdge{1, 0, DependencyKind::kS2S},
                QueryEdge{2, 1, DependencyKind::kS2S}});
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<int>{2, 1, 0}));
}

TEST(QueryGraphTest, CycleDetected) {
  QueryGraph g("q", nlp::QuestionType::kReasoning,
               {MakeSpoc("a", "p", "b"), MakeSpoc("c", "p", "d")},
               {QueryEdge{0, 1, DependencyKind::kS2S},
                QueryEdge{1, 0, DependencyKind::kS2S}});
  EXPECT_TRUE(g.TopologicalOrder().status().IsInvalidArgument());
}

TEST(QueryGraphTest, ToStringShowsStructure) {
  QueryGraph g("q", nlp::QuestionType::kCounting,
               {MakeSpoc("wizard", "hang-out", "person")}, {});
  const std::string s = g.ToString();
  EXPECT_NE(s.find("counting"), std::string::npos);
  EXPECT_NE(s.find("hang-out"), std::string::npos);
}

TEST(QueryGraphTest, EmptyGraphBehaves) {
  QueryGraph g;
  EXPECT_EQ(g.size(), 0u);
  EXPECT_TRUE(g.StartVertices().empty());
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_TRUE(order->empty());
}

}  // namespace
}  // namespace svqa::query
