#include "nlp/spoc_extractor.h"

#include <gtest/gtest.h>

#include "nlp/clause_splitter.h"
#include "text/tokenizer.h"

namespace svqa::nlp {
namespace {

class SpocExtractorTest : public ::testing::Test {
 protected:
  SpocExtractorTest() : extractor_(&lexicon_) {}

  SpocExtraction Extract(const std::string& sentence) {
    auto tagged = tagger_.Tag(text::Tokenize(sentence));
    auto parse = parser_.Parse(tagged);
    EXPECT_TRUE(parse.ok()) << parse.status();
    auto extraction = extractor_.Extract(*parse);
    EXPECT_TRUE(extraction.ok()) << extraction.status();
    return std::move(extraction).ValueOrDie();
  }

  text::SynonymLexicon lexicon_ = text::SynonymLexicon::Default();
  PosTagger tagger_ = PosTagger::Default();
  DependencyParser parser_;
  SpocExtractor extractor_;
};

TEST_F(SpocExtractorTest, FlagshipQuestion) {
  const auto extraction = Extract(
      "what kind of clothes are worn by the wizard who is most frequently "
      "hanging out with harry potter's girlfriend");
  EXPECT_EQ(extraction.type, QuestionType::kReasoning);
  ASSERT_EQ(extraction.spocs.size(), 2u);

  // Main clause, active-normalized: [wizard, wear, clothes(var, kind)].
  const Spoc& main = extraction.spocs[0];
  EXPECT_EQ(main.subject.head, "wizard");
  EXPECT_EQ(main.predicate, "wear");
  EXPECT_EQ(main.object.head, "clothes");
  EXPECT_TRUE(main.object.is_variable);
  EXPECT_TRUE(main.object.want_kind);
  EXPECT_TRUE(main.constraint.empty());

  // Condition clause with coreference resolved and the constraint.
  const Spoc& cond = extraction.spocs[1];
  EXPECT_EQ(cond.subject.head, "wizard");
  EXPECT_EQ(cond.predicate, "hang-out");
  EXPECT_EQ(cond.object.head, "girlfriend");
  EXPECT_EQ(cond.object.owner, "harry potter");
  EXPECT_EQ(cond.constraint, "most frequently");
}

TEST_F(SpocExtractorTest, QuestionTypeDetection) {
  EXPECT_EQ(Extract("does a dog appear near a car").type,
            QuestionType::kJudgment);
  EXPECT_EQ(Extract("how many wizards are hanging out with the person")
                .type,
            QuestionType::kCounting);
  EXPECT_EQ(Extract("what kind of clothes is worn by the wizard").type,
            QuestionType::kReasoning);
}

TEST_F(SpocExtractorTest, LocativeVerbUsesPreposition) {
  const auto extraction =
      Extract("does the cat that is sitting on the bed appear near the car");
  ASSERT_EQ(extraction.spocs.size(), 2u);
  EXPECT_EQ(extraction.spocs[0].predicate, "near");  // appear near -> near
  EXPECT_EQ(extraction.spocs[0].subject.head, "cat");
  EXPECT_EQ(extraction.spocs[0].object.head, "car");
  EXPECT_EQ(extraction.spocs[1].predicate, "on");  // sitting on -> on
  EXPECT_EQ(extraction.spocs[1].object.head, "bed");
}

TEST_F(SpocExtractorTest, NonLocativeVerbKeepsLemma) {
  const auto extraction =
      Extract("the wizard is hanging out with the person");
  EXPECT_EQ(extraction.spocs[0].predicate, "hang-out");
}

TEST_F(SpocExtractorTest, PassiveWithoutAgentKeepsSurfaceSubject) {
  // "were situated in the car": passive morphology, no by-agent; the
  // subject stays the surface subject and the object is the oblique.
  const auto extraction =
      Extract("what kind of animals is carried by the pets that were "
              "situated in the car");
  ASSERT_EQ(extraction.spocs.size(), 2u);
  const Spoc& main = extraction.spocs[0];
  EXPECT_EQ(main.subject.head, "pet");
  EXPECT_EQ(main.predicate, "carry");
  EXPECT_EQ(main.object.head, "animal");
  EXPECT_TRUE(main.object.want_kind);
  const Spoc& cond = extraction.spocs[1];
  EXPECT_EQ(cond.subject.head, "pet");
  EXPECT_EQ(cond.predicate, "in");
  EXPECT_EQ(cond.object.head, "car");
}

TEST_F(SpocExtractorTest, CompoundNamesJoinIntoHead) {
  tagger_.RegisterEntityNames({"ginny-weasley"});
  const auto extraction =
      Extract("how many wizards are hanging out with ginny weasley");
  ASSERT_EQ(extraction.spocs.size(), 1u);
  EXPECT_EQ(extraction.spocs[0].object.head, "ginny-weasley");
  EXPECT_TRUE(extraction.spocs[0].subject.is_variable);
  EXPECT_EQ(extraction.spocs[0].subject.head, "wizard");
}

TEST_F(SpocExtractorTest, HowManyKindsCountsCategories) {
  const auto extraction = Extract(
      "how many kinds of animals are chased by the dogs that are sitting "
      "on the grass");
  EXPECT_EQ(extraction.type, QuestionType::kCounting);
  const Spoc& main = extraction.spocs[0];
  EXPECT_EQ(main.subject.head, "dog");
  EXPECT_EQ(main.predicate, "chase");
  EXPECT_EQ(main.object.head, "animal");
  EXPECT_TRUE(main.object.is_variable);
  EXPECT_TRUE(main.object.want_kind);
}

TEST_F(SpocExtractorTest, SingularizesHeads) {
  const auto extraction = Extract("the dogs chase the cats");
  EXPECT_EQ(extraction.spocs[0].subject.head, "dog");
  EXPECT_EQ(extraction.spocs[0].object.head, "cat");
}

TEST_F(SpocExtractorTest, SpocToStringContainsRoles) {
  const auto extraction = Extract("the dog chases the cat");
  const std::string s = extraction.spocs[0].ToString();
  EXPECT_NE(s.find("p=chase"), std::string::npos);
  EXPECT_NE(s.find("s=the dog"), std::string::npos);
}

TEST_F(SpocExtractorTest, ClauseSplitterResolvesPronouns) {
  auto tagged = tagger_.Tag(text::Tokenize(
      "what kind of clothes are worn by the wizard who is hanging out "
      "with the person"));
  auto parse = parser_.Parse(tagged);
  ASSERT_TRUE(parse.ok());
  const auto clauses = SplitClauses(*parse);
  ASSERT_EQ(clauses.size(), 2u);
  // The relative marker is replaced by its antecedent.
  EXPECT_NE(clauses[1].find("wizard is hanging out"), std::string::npos);
  EXPECT_EQ(ClauseCount(*parse), 2u);
}

TEST_F(SpocExtractorTest, ForeignWordBreaksExtraction) {
  // "magus" is FW; the clause loses its agent, reproducing Fig. 8(a).
  auto tagged = tagger_.Tag(
      text::Tokenize("what kind of clothes are worn by the magus"));
  auto parse = parser_.Parse(tagged);
  ASSERT_TRUE(parse.ok());
  auto extraction = extractor_.Extract(*parse);
  // Either extraction fails or the subject/object is degraded — it must
  // not resolve "magus" as a noun head.
  if (extraction.ok()) {
    for (const auto& spoc : extraction->spocs) {
      EXPECT_NE(spoc.subject.head, "magus");
      EXPECT_NE(spoc.object.head, "magus");
    }
  }
}

}  // namespace
}  // namespace svqa::nlp
