// Parallel-vs-serial equivalence of BatchExecutor: answers must be
// byte-identical across modes and worker counts, simulated latencies
// must not depend on the worker count, and threaded latencies must be
// exactly serial when no shared mutable state (cache/memos) is enabled.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "data/mvqa_generator.h"
#include "exec/batch_executor.h"
#include "text/lexicon.h"
#include "util/fault_injector.h"

namespace svqa::exec {
namespace {

/// Full structural equality of two answers, provenance included.
void ExpectSameAnswer(const Answer& a, const Answer& b, int query) {
  EXPECT_EQ(a.type, b.type) << "query " << query;
  EXPECT_EQ(a.text, b.text) << "query " << query;
  EXPECT_EQ(a.yes, b.yes) << "query " << query;
  EXPECT_EQ(a.count, b.count) << "query " << query;
  EXPECT_EQ(a.entities, b.entities) << "query " << query;
  ASSERT_EQ(a.provenance.size(), b.provenance.size()) << "query " << query;
  for (std::size_t i = 0; i < a.provenance.size(); ++i) {
    EXPECT_EQ(a.provenance[i].image, b.provenance[i].image);
    EXPECT_EQ(a.provenance[i].subject, b.provenance[i].subject);
    EXPECT_EQ(a.provenance[i].predicate, b.provenance[i].predicate);
    EXPECT_EQ(a.provenance[i].object, b.provenance[i].object);
  }
}

class BatchParallelFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::MvqaOptions opts;
    opts.world.num_scenes = 120;
    opts.world.seed = 77;
    dataset_ = new data::MvqaDataset(data::MvqaGenerator(opts).Generate());
    merged_ = &dataset_->perfect_merged;
    embeddings_ = new text::EmbeddingModel(text::SynonymLexicon::Default());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete embeddings_;
    merged_ = nullptr;
  }

  /// A randomized batch of gold query graphs (repeats allowed, so the
  /// cache sees real reuse).
  static std::vector<query::QueryGraph> RandomBatch(unsigned seed,
                                                    std::size_t n) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> pick(
        0, dataset_->questions.size() - 1);
    std::vector<query::QueryGraph> graphs;
    graphs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      graphs.push_back(dataset_->questions[pick(rng)].gold_graph);
    }
    return graphs;
  }

  /// Runs `graphs` through a fresh cache + executor + batch executor.
  static BatchResult Run(const std::vector<query::QueryGraph>& graphs,
                         BatchOptions bopts, bool enable_cache = true,
                         bool memoize = true) {
    KeyCentricCache cache(KeyCentricCacheOptions{});
    ExecutorOptions eopts;
    eopts.memoize_similarity = memoize;
    eopts.matcher.memoize_similarity = memoize;
    QueryGraphExecutor executor(merged_, embeddings_,
                                enable_cache ? &cache : nullptr, eopts);
    return BatchExecutor(&executor, bopts).ExecuteAll(graphs);
  }

  static data::MvqaDataset* dataset_;
  static aggregator::MergedGraph* merged_;
  static text::EmbeddingModel* embeddings_;
};

data::MvqaDataset* BatchParallelFixture::dataset_ = nullptr;
aggregator::MergedGraph* BatchParallelFixture::merged_ = nullptr;
text::EmbeddingModel* BatchParallelFixture::embeddings_ = nullptr;

TEST_F(BatchParallelFixture, SimulatedIsIdenticalAcrossWorkerCounts) {
  // Simulated mode executes in schedule order regardless of the worker
  // count, so answers AND per-query virtual latencies are reproducible
  // bit-for-bit — the Exp-5 guarantee.
  for (unsigned seed : {1u, 2u, 3u}) {
    const auto graphs = RandomBatch(seed, 40);
    BatchOptions serial;
    serial.num_workers = 1;
    const BatchResult base = Run(graphs, serial);
    for (std::size_t workers : {2u, 8u}) {
      BatchOptions bopts;
      bopts.num_workers = workers;
      const BatchResult result = Run(graphs, bopts);
      ASSERT_EQ(result.outcomes.size(), base.outcomes.size());
      for (std::size_t i = 0; i < base.outcomes.size(); ++i) {
        EXPECT_EQ(result.outcomes[i].status.ok(),
                  base.outcomes[i].status.ok());
        ExpectSameAnswer(result.outcomes[i].answer, base.outcomes[i].answer,
                         static_cast<int>(i));
        EXPECT_DOUBLE_EQ(result.outcomes[i].latency_micros,
                         base.outcomes[i].latency_micros)
            << "workers=" << workers << " query=" << i;
      }
      EXPECT_LE(result.total_micros, base.total_micros);
    }
  }
}

TEST_F(BatchParallelFixture, LeastLoadedBeatsRoundRobinMakespan) {
  // The simulated makespan uses greedy least-loaded assignment, which is
  // never worse than dealing queries round-robin over the same latencies
  // in the same order.
  const auto graphs = RandomBatch(9, 60);
  BatchOptions bopts;
  bopts.use_scheduler = false;  // schedule order == input order
  bopts.num_workers = 4;
  const BatchResult result = Run(graphs, bopts);

  std::vector<double> rr(bopts.num_workers, 0.0);
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    rr[i % rr.size()] += result.outcomes[i].latency_micros;
  }
  const double rr_makespan = *std::max_element(rr.begin(), rr.end());
  EXPECT_LE(result.total_micros, rr_makespan + 1e-6);

  // And it is a valid makespan: at least the largest single query and
  // at least sum/workers.
  double sum = 0, largest = 0;
  for (const auto& o : result.outcomes) {
    sum += o.latency_micros;
    largest = std::max(largest, o.latency_micros);
  }
  EXPECT_GE(result.total_micros, largest - 1e-6);
  EXPECT_GE(result.total_micros,
            sum / static_cast<double>(bopts.num_workers) - 1e-6);
}

TEST_F(BatchParallelFixture, ThreadedAnswersAreByteIdenticalToSerial) {
  // Real threads, one shared executor + cache: answer content must not
  // depend on scheduling. (Latencies may: hit/miss interleaving is
  // real in threaded mode when a shared cache is on.)
  for (unsigned seed : {11u, 12u}) {
    const auto graphs = RandomBatch(seed, 40);
    BatchOptions serial;
    serial.num_workers = 1;
    const BatchResult base = Run(graphs, serial);
    for (std::size_t workers : {2u, 8u}) {
      BatchOptions bopts;
      bopts.mode = BatchMode::kThreaded;
      bopts.num_workers = workers;
      const BatchResult result = Run(graphs, bopts);
      ASSERT_EQ(result.outcomes.size(), base.outcomes.size());
      for (std::size_t i = 0; i < base.outcomes.size(); ++i) {
        EXPECT_EQ(result.outcomes[i].status.ok(),
                  base.outcomes[i].status.ok());
        ExpectSameAnswer(result.outcomes[i].answer, base.outcomes[i].answer,
                         static_cast<int>(i));
      }
    }
  }
}

TEST_F(BatchParallelFixture, ThreadedLatenciesExactWithoutSharedState) {
  // With the cache and all memos off the executor touches no shared
  // mutable state, so each query's virtual latency is a pure function
  // of the query — identical across modes and worker counts.
  const auto graphs = RandomBatch(21, 30);
  BatchOptions serial;
  serial.num_workers = 1;
  const BatchResult base =
      Run(graphs, serial, /*enable_cache=*/false, /*memoize=*/false);
  BatchOptions bopts;
  bopts.mode = BatchMode::kThreaded;
  bopts.num_workers = 8;
  const BatchResult result =
      Run(graphs, bopts, /*enable_cache=*/false, /*memoize=*/false);
  ASSERT_EQ(result.outcomes.size(), base.outcomes.size());
  double sum = 0;
  for (std::size_t i = 0; i < base.outcomes.size(); ++i) {
    ExpectSameAnswer(result.outcomes[i].answer, base.outcomes[i].answer,
                     static_cast<int>(i));
    EXPECT_DOUBLE_EQ(result.outcomes[i].latency_micros,
                     base.outcomes[i].latency_micros);
    sum += base.outcomes[i].latency_micros;
  }
  // The measured per-worker loads partition the serial work.
  EXPECT_EQ(result.worker_micros.size(), 8u);
  double load_sum = 0;
  for (const double w : result.worker_micros) load_sum += w;
  EXPECT_NEAR(load_sum, sum, 1e-3);
  EXPECT_LE(result.total_micros, sum + 1e-6);
  // Aggregate op accounting also matches the serial run.
  EXPECT_DOUBLE_EQ(result.ops.ElapsedMicros(), base.ops.ElapsedMicros());
}

TEST_F(BatchParallelFixture, ThreadedEmptyBatchAndPoolReuse) {
  QueryGraphExecutor executor(merged_, embeddings_);
  BatchOptions bopts;
  bopts.mode = BatchMode::kThreaded;
  bopts.num_workers = 4;
  BatchExecutor batch(&executor, bopts);
  const BatchResult empty = batch.ExecuteAll({});
  EXPECT_TRUE(empty.outcomes.empty());
  EXPECT_DOUBLE_EQ(empty.total_micros, 0);
  // Same instance runs further batches on its reused pool.
  const auto graphs = RandomBatch(31, 10);
  const BatchResult again = batch.ExecuteAll(graphs);
  ASSERT_EQ(again.outcomes.size(), graphs.size());
  for (const auto& o : again.outcomes) EXPECT_TRUE(o.status.ok());
}

TEST_F(BatchParallelFixture, MidBatchFailureLeavesSiblingsByteIdentical) {
  // Permanent injected faults kill a subset of queries mid-batch. Every
  // slot must still end with a definitive Status, and the surviving
  // siblings' answers must be byte-identical to the serial run under
  // the same fault policy. Cache and memos are off so each query's
  // fault schedule is a pure function of the query itself — the serial
  // and threaded runs then see identical verdicts slot for slot.
  FaultConfig config;
  config.rates[static_cast<int>(FaultSite::kMatcherScan)] = 0.3;
  config.transient_fraction = 0.0;  // permanent: retries cannot heal these
  FaultInjector injector(4242, config);

  const auto graphs = RandomBatch(17, 40);
  BatchOptions serial;
  serial.num_workers = 1;
  serial.resilience.fault_policy = &injector;
  const BatchResult base =
      Run(graphs, serial, /*enable_cache=*/false, /*memoize=*/false);

  std::size_t failed = 0;
  for (const auto& o : base.outcomes) {
    if (!o.status.ok()) {
      ++failed;
      EXPECT_EQ(o.status.code(), StatusCode::kInternal) << o.status;
      EXPECT_EQ(o.diagnostics.attempts, 1);  // permanent: no retries burned
    }
  }
  ASSERT_GT(failed, 0u);                    // the batch really was wounded
  ASSERT_LT(failed, base.outcomes.size());  // ...but not wiped out

  for (std::size_t workers : {2u, 8u}) {
    BatchOptions bopts;
    bopts.mode = BatchMode::kThreaded;
    bopts.num_workers = workers;
    bopts.resilience.fault_policy = &injector;
    const BatchResult result =
        Run(graphs, bopts, /*enable_cache=*/false, /*memoize=*/false);
    ASSERT_EQ(result.outcomes.size(), base.outcomes.size());
    for (std::size_t i = 0; i < base.outcomes.size(); ++i) {
      EXPECT_EQ(result.outcomes[i].status, base.outcomes[i].status)
          << "workers=" << workers << " query=" << i;
      if (base.outcomes[i].status.ok()) {
        ExpectSameAnswer(result.outcomes[i].answer, base.outcomes[i].answer,
                         static_cast<int>(i));
        EXPECT_DOUBLE_EQ(result.outcomes[i].latency_micros,
                         base.outcomes[i].latency_micros);
      }
    }
  }
}

TEST(BatchModeNameTest, Names) {
  EXPECT_STREQ(BatchModeName(BatchMode::kSimulated), "simulated");
  EXPECT_STREQ(BatchModeName(BatchMode::kThreaded), "threaded");
}

}  // namespace
}  // namespace svqa::exec
