// Video support (§II: video data = collection of images): episode
// generation, flattening, and cross-frame identity counting.

#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "data/kg_builder.h"
#include "data/world.h"
#include "text/lexicon.h"

namespace svqa {
namespace {

data::World EpisodeWorld(int scenes = 200, int episode_length = 4) {
  data::WorldOptions opts;
  opts.num_scenes = scenes;
  opts.episode_length = episode_length;
  opts.seed = 51;
  return data::WorldGenerator(opts).Generate();
}

TEST(VideoTest, DefaultWorldHasNoEpisodes) {
  data::WorldOptions opts;
  opts.num_scenes = 50;
  const data::World world = data::WorldGenerator(opts).Generate();
  EXPECT_TRUE(world.episodes.empty());
}

TEST(VideoTest, EpisodesCoverContiguousSceneRanges) {
  const data::World world = EpisodeWorld();
  ASSERT_FALSE(world.episodes.empty());
  for (const auto& [first, last] : world.episodes) {
    ASSERT_LE(first, last);
    ASSERT_LT(last, static_cast<int>(world.scenes.size()));
    EXPECT_LE(last - first + 1, 4);
  }
}

TEST(VideoTest, FramesOfAnEpisodeShareTheCast) {
  const data::World world = EpisodeWorld();
  for (const auto& [first, last] : world.episodes) {
    std::set<std::string> cast_of_first;
    for (const auto& obj : world.scenes[first].objects) {
      if (!obj.instance.empty()) cast_of_first.insert(obj.instance);
    }
    for (int id = first + 1; id <= last; ++id) {
      std::set<std::string> cast;
      for (const auto& obj : world.scenes[id].objects) {
        if (!obj.instance.empty()) cast.insert(obj.instance);
      }
      EXPECT_EQ(cast, cast_of_first) << "episode frame " << id;
    }
  }
}

TEST(VideoTest, VideosPackageEpisodes) {
  const data::World world = EpisodeWorld();
  const auto videos = world.Videos();
  ASSERT_EQ(videos.size(), world.episodes.size());
  std::size_t total_frames = 0;
  for (const auto& video : videos) total_frames += video.frames.size();
  const auto flattened = vision::FlattenVideos(videos);
  EXPECT_EQ(flattened.size(), total_frames);
}

TEST(VideoTest, IngestVideosAnswersLikeIngestFrames) {
  const data::World world = EpisodeWorld(120, 3);
  const graph::Graph kg =
      data::BuildKnowledgeGraph(world, text::SynonymLexicon::Default());
  const auto videos = world.Videos();
  ASSERT_FALSE(videos.empty());

  core::SvqaEngine by_video;
  ASSERT_TRUE(by_video.IngestVideos(kg, videos).ok());
  core::SvqaEngine by_frames;
  ASSERT_TRUE(by_frames.Ingest(kg, vision::FlattenVideos(videos)).ok());

  const char* questions[] = {
      "how many wizards are hanging out with dean thomas?",
      "what kind of clothes is worn by harry potter?",
  };
  for (const char* q : questions) {
    auto a = by_video.Ask(q);
    auto b = by_frames.Ask(q);
    ASSERT_EQ(a.ok(), b.ok()) << q;
    if (a.ok()) {
      EXPECT_EQ(a->text, b->text) << q;
    }
  }
}

TEST(VideoTest, CrossFrameReDetectionsDoNotInflateCounts) {
  // The same pair appearing in every frame of an episode counts once:
  // compare an episode world with a single-frame world of the same cast
  // structure — counting answers are per-identity, not per-frame.
  const data::World world = EpisodeWorld(240, 4);
  const graph::Graph kg =
      data::BuildKnowledgeGraph(world, text::SynonymLexicon::Default());
  core::SvqaEngine engine;
  ASSERT_TRUE(engine.Ingest(kg, world.scenes).ok());

  auto count =
      engine.Ask("how many wizards are hanging out with dean thomas?");
  ASSERT_TRUE(count.ok());
  // Wizard count is bounded by the cast size, not the frame count.
  int wizards = 0;
  for (const auto& c : world.characters) {
    if (c.category == "wizard") ++wizards;
  }
  EXPECT_LE(count->count, wizards);
}

}  // namespace
}  // namespace svqa
