#include "graph/traversal.h"

#include <gtest/gtest.h>

namespace svqa::graph {
namespace {

Graph MakeForkGraph() {
  // 0 -> 1 -> 2, 0 -> 3; 4 isolated.
  Graph g;
  for (int i = 0; i < 5; ++i) {
    g.AddVertex("v" + std::to_string(i), "t");
  }
  // Helper cannot ASSERT (non-void); edges between fresh distinct
  // vertices cannot fail.
  (void)g.AddEdge(0, 1, "e");
  (void)g.AddEdge(1, 2, "e");
  (void)g.AddEdge(0, 3, "e");
  return g;
}

TEST(BreadthFirstTest, VisitsInDepthOrder) {
  Graph g = MakeForkGraph();
  std::vector<std::pair<VertexId, int>> visits;
  BreadthFirst(g, 0, [&](VertexId v, int depth) {
    visits.emplace_back(v, depth);
    return true;
  });
  ASSERT_EQ(visits.size(), 4u);
  EXPECT_EQ(visits[0], (std::pair<VertexId, int>{0, 0}));
  EXPECT_EQ(visits[1].second, 1);
  EXPECT_EQ(visits[2].second, 1);
  EXPECT_EQ(visits[3], (std::pair<VertexId, int>{2, 2}));
}

TEST(BreadthFirstTest, EarlyStop) {
  Graph g = MakeForkGraph();
  int count = 0;
  BreadthFirst(g, 0, [&](VertexId, int) {
    ++count;
    return count < 2;
  });
  EXPECT_EQ(count, 2);
}

TEST(BreadthFirstTest, InvalidStartIsNoop) {
  Graph g = MakeForkGraph();
  int count = 0;
  BreadthFirst(g, 42, [&](VertexId, int) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST(HopDistanceTest, SelfIsZero) {
  Graph g = MakeForkGraph();
  EXPECT_EQ(HopDistance(g, 1, 1), 0);
}

TEST(HopDistanceTest, UndirectedDistances) {
  Graph g = MakeForkGraph();
  EXPECT_EQ(HopDistance(g, 0, 2), 2);
  EXPECT_EQ(HopDistance(g, 2, 0), 2);  // traverses in-edges too
  EXPECT_EQ(HopDistance(g, 3, 2), 3);  // 3 - 0 - 1 - 2
}

TEST(HopDistanceTest, UnreachableIsMinusOne) {
  Graph g = MakeForkGraph();
  EXPECT_EQ(HopDistance(g, 0, 4), -1);
  EXPECT_EQ(HopDistance(g, 0, 99), -1);
}

TEST(ConnectedComponentsTest, CountsComponents) {
  Graph g = MakeForkGraph();
  auto [comp, n] = ConnectedComponents(g);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[4]);
}

TEST(ConnectedComponentsTest, EmptyGraph) {
  Graph g;
  auto [comp, n] = ConnectedComponents(g);
  EXPECT_EQ(n, 0);
  EXPECT_TRUE(comp.empty());
}

}  // namespace
}  // namespace svqa::graph
