#include <gtest/gtest.h>

#include "aggregator/category_stats.h"
#include "aggregator/merger.h"
#include "aggregator/subgraph_cache.h"
#include "data/kg_builder.h"
#include "data/world.h"
#include "text/lexicon.h"

namespace svqa::aggregator {
namespace {

graph::Graph MakeSceneGraph(int image, int dogs, int cats) {
  graph::Graph g;
  for (int i = 0; i < dogs; ++i) {
    g.AddVertex("dog#" + std::to_string(i), "dog", image);
  }
  for (int i = 0; i < cats; ++i) {
    g.AddVertex("cat#" + std::to_string(i), "cat", image);
  }
  return g;
}

TEST(CategoryStatsTest, AggregatesAcrossSceneGraphs) {
  const auto g1 = MakeSceneGraph(0, 3, 1);
  const auto g2 = MakeSceneGraph(1, 2, 0);
  const auto stats = CountCategories({&g1, &g2});
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].category, "dog");
  EXPECT_EQ(stats[0].count, 5u);
  EXPECT_EQ(stats[1].category, "cat");
  EXPECT_EQ(stats[1].count, 1u);
}

TEST(CategoryStatsTest, CoverageComputation) {
  std::vector<graph::CategoryCount> counts = {
      {"dog", 10}, {"cat", 6}, {"rare", 2}};
  const CoverageStats cov = ComputeCoverage(counts, 5);
  EXPECT_NEAR(cov.type_fraction, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cov.vertex_fraction, 16.0 / 18.0, 1e-9);
}

TEST(CategoryStatsTest, CoverageEmpty) {
  const CoverageStats cov = ComputeCoverage({}, 5);
  EXPECT_DOUBLE_EQ(cov.type_fraction, 0.0);
  EXPECT_DOUBLE_EQ(cov.vertex_fraction, 0.0);
}

class AggregatorFixture : public ::testing::Test {
 protected:
  AggregatorFixture() {
    data::WorldOptions opts;
    opts.num_scenes = 120;
    opts.seed = 11;
    world_ = data::WorldGenerator(opts).Generate();
    kg_ = data::BuildKnowledgeGraph(world_,
                                    text::SynonymLexicon::Default());
    for (const auto& scene : world_.scenes) {
      vision::SceneGraphResult r;
      r.graph = data::PerfectSceneGraph(scene);
      r.scene_id = scene.id;
      scene_graphs_.push_back(std::move(r));
    }
  }

  data::World world_;
  graph::Graph kg_;
  std::vector<vision::SceneGraphResult> scene_graphs_;
};

TEST_F(AggregatorFixture, SubgraphCacheBuildsFrequentCategories) {
  std::vector<const graph::Graph*> sgs;
  for (const auto& r : scene_graphs_) sgs.push_back(&r.graph);
  const auto stats = CountCategories(sgs);

  SubgraphCacheOptions opts;  // threshold 5, k = 2 (paper values)
  SubgraphCache cache = SubgraphCache::Build(kg_, stats, opts);
  EXPECT_GT(cache.num_cached_subgraphs(), 0u);
  // Frequent categories like "wizard" must be cached with a non-trivial
  // 2-hop neighborhood.
  const graph::SubgraphRef* wizard = cache.SubgraphFor("wizard");
  ASSERT_NE(wizard, nullptr);
  EXPECT_GT(wizard->size(), 1u);
}

TEST_F(AggregatorFixture, SubgraphCacheFindsKnownLabels) {
  std::vector<const graph::Graph*> sgs;
  for (const auto& r : scene_graphs_) sgs.push_back(&r.graph);
  SubgraphCache cache =
      SubgraphCache::Build(kg_, CountCategories(sgs), SubgraphCacheOptions{});

  auto hit = cache.FindVertex(kg_, "dog");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(kg_.vertex(*hit).label, "dog");
  EXPECT_FALSE(cache.FindVertex(kg_, "unobtainium").has_value());
}

TEST_F(AggregatorFixture, MergePreservesComponentsAndLinks) {
  GraphMerger merger;
  auto merged = merger.Merge(kg_, scene_graphs_);
  ASSERT_TRUE(merged.ok()) << merged.status();

  std::size_t scene_vertices = 0, scene_edges = 0;
  for (const auto& r : scene_graphs_) {
    scene_vertices += r.graph.num_vertices();
    scene_edges += r.graph.num_edges();
  }
  EXPECT_EQ(merged->graph.num_vertices(),
            kg_.num_vertices() + scene_vertices);
  EXPECT_EQ(merged->kg_vertex_count, kg_.num_vertices());
  // Edges: KG + scene + links.
  EXPECT_EQ(merged->graph.num_edges(), kg_.num_edges() + scene_edges +
                                           merged->entity_links +
                                           merged->concept_links);
  EXPECT_GT(merged->entity_links, 0u);
  EXPECT_GT(merged->concept_links, 0u);
  EXPECT_TRUE(merged->graph.CheckConsistency().ok());
}

TEST_F(AggregatorFixture, NamedEntitiesLinkToKgVertices) {
  GraphMerger merger;
  auto merged = merger.Merge(kg_, scene_graphs_).ValueOrDie();
  // Pick a scene-graph vertex labeled with a character name and verify
  // its same-as link ends at the KG character vertex.
  bool checked = false;
  for (graph::VertexId v = merged.kg_vertex_count;
       v < merged.graph.num_vertices() && !checked; ++v) {
    const auto& vx = merged.graph.vertex(v);
    if (vx.label.find('#') != std::string::npos) continue;
    for (const auto& he : merged.graph.OutEdges(v)) {
      if (merged.graph.EdgeLabelName(he.label) == kSameAsEdge) {
        EXPECT_LT(he.neighbor, merged.kg_vertex_count);
        EXPECT_EQ(merged.graph.vertex(he.neighbor).label, vx.label);
        checked = true;
      }
    }
  }
  EXPECT_TRUE(checked);
}

TEST_F(AggregatorFixture, AnonymousObjectsLinkToConcepts) {
  GraphMerger merger;
  auto merged = merger.Merge(kg_, scene_graphs_).ValueOrDie();
  bool checked = false;
  for (graph::VertexId v = merged.kg_vertex_count;
       v < merged.graph.num_vertices() && !checked; ++v) {
    const auto& vx = merged.graph.vertex(v);
    if (vx.label.find('#') == std::string::npos) continue;
    for (const auto& he : merged.graph.OutEdges(v)) {
      if (merged.graph.EdgeLabelName(he.label) == kInstanceOfEdge) {
        EXPECT_EQ(merged.graph.vertex(he.neighbor).label, vx.category);
        checked = true;
      }
    }
  }
  EXPECT_TRUE(checked);
}

TEST_F(AggregatorFixture, CacheReducesVirtualLinkCost) {
  MergerOptions with_cache;
  with_cache.use_cache = true;
  MergerOptions without_cache;
  without_cache.use_cache = false;

  SimClock clock_with, clock_without;
  ASSERT_TRUE(
      GraphMerger(with_cache).Merge(kg_, scene_graphs_, &clock_with).ok());
  ASSERT_TRUE(GraphMerger(without_cache)
                  .Merge(kg_, scene_graphs_, &clock_without)
                  .ok());
  EXPECT_LT(clock_with.ElapsedMicros(), clock_without.ElapsedMicros());
}

TEST_F(AggregatorFixture, MergeIsDeterministic) {
  GraphMerger merger;
  auto a = merger.Merge(kg_, scene_graphs_).ValueOrDie();
  auto b = merger.Merge(kg_, scene_graphs_).ValueOrDie();
  EXPECT_EQ(a.graph.num_vertices(), b.graph.num_vertices());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.entity_links, b.entity_links);
  EXPECT_EQ(a.concept_links, b.concept_links);
}

TEST_F(AggregatorFixture, PaperCoverageObservationHoldsApproximately) {
  // §III-B: with threshold 5, the frequent categories should cover the
  // majority of scene-graph vertices (paper: ~82%).
  std::vector<const graph::Graph*> sgs;
  for (const auto& r : scene_graphs_) sgs.push_back(&r.graph);
  const auto cov = ComputeCoverage(CountCategories(sgs), 5);
  EXPECT_GT(cov.vertex_fraction, 0.6);
}

}  // namespace
}  // namespace svqa::aggregator
